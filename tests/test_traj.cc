#include <set>

#include "graph/dijkstra.h"
#include "gtest/gtest.h"
#include "test_helpers.h"
#include "traj/map_matcher.h"
#include "traj/trace_synthesizer.h"
#include "traj/trajectory.h"
#include "traj/trajectory_store.h"
#include "traj/trip_generator.h"
#include "util/rng.h"

namespace netclus::traj {
namespace {

TEST(Trajectory, PrefixDistancesFollowArcWeights) {
  graph::RoadNetwork net = test::MakeLineNetwork(5, 100.0);
  Trajectory t(net, {0, 1, 2, 3});
  EXPECT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t.prefix(0), 0.0);
  EXPECT_DOUBLE_EQ(t.prefix(3), 300.0);
  EXPECT_DOUBLE_EQ(t.AlongDistance(1, 3), 200.0);
  EXPECT_DOUBLE_EQ(t.LengthMeters(), 300.0);
}

TEST(Trajectory, NonAdjacentFallsBackToEuclidean) {
  graph::RoadNetwork net = test::MakeLineNetwork(5, 100.0);
  Trajectory t(net, {0, 4});  // not adjacent: 400 m apart in a line
  EXPECT_DOUBLE_EQ(t.LengthMeters(), 400.0);
}

TEST(TrajectoryStore, AddAndPostings) {
  graph::RoadNetwork net = test::MakeLineNetwork(6);
  TrajectoryStore store(&net);
  const TrajId a = store.Add({0, 1, 2});
  const TrajId b = store.Add({2, 3});
  EXPECT_EQ(store.live_count(), 2u);
  EXPECT_EQ(store.total_count(), 2u);
  const auto at2 = store.postings(2);
  ASSERT_EQ(at2.size(), 2u);
  EXPECT_EQ(at2[0].traj, a);
  EXPECT_EQ(at2[0].pos, 2u);
  EXPECT_EQ(at2[1].traj, b);
  EXPECT_EQ(at2[1].pos, 0u);
}

TEST(TrajectoryStore, RemoveIsLazyAndIdempotent) {
  graph::RoadNetwork net = test::MakeLineNetwork(4);
  TrajectoryStore store(&net);
  const TrajId a = store.Add({0, 1});
  store.Add({1, 2});
  store.Remove(a);
  store.Remove(a);
  EXPECT_EQ(store.live_count(), 1u);
  EXPECT_FALSE(store.is_alive(a));
  // Postings still physically present until Compact.
  EXPECT_EQ(store.postings(0).size(), 1u);
  store.Compact();
  EXPECT_EQ(store.postings(0).size(), 0u);
  EXPECT_EQ(store.postings(1).size(), 1u);
}

TEST(TrajectoryStore, Statistics) {
  graph::RoadNetwork net = test::MakeLineNetwork(10, 100.0);
  TrajectoryStore store(&net);
  store.Add({0, 1, 2});
  store.Add({0, 1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(store.MeanNodeCount(), 4.0);
  EXPECT_DOUBLE_EQ(store.MeanLengthMeters(), 300.0);
  EXPECT_GT(store.MemoryBytes(), 0u);
}

TEST(TripGenerator, ProducesRequestedCount) {
  graph::RoadNetwork net = test::MakeGridNetwork(15, 15, 150.0);
  TrajectoryStore store(&net);
  TripGeneratorConfig config;
  config.num_trajectories = 200;
  config.min_od_distance_m = 300.0;
  const auto ids = GenerateTrips(config, &store);
  EXPECT_EQ(ids.size(), 200u);
  EXPECT_EQ(store.live_count(), 200u);
}

TEST(TripGenerator, DeterministicForSameSeed) {
  graph::RoadNetwork net = test::MakeGridNetwork(12, 12, 150.0);
  TrajectoryStore s1(&net), s2(&net);
  TripGeneratorConfig config;
  config.num_trajectories = 50;
  GenerateTrips(config, &s1);
  GenerateTrips(config, &s2);
  ASSERT_EQ(s1.live_count(), s2.live_count());
  for (TrajId t = 0; t < s1.total_count(); ++t) {
    EXPECT_EQ(s1.trajectory(t).nodes(), s2.trajectory(t).nodes());
  }
}

TEST(TripGenerator, RoutesAreConnectedPaths) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 120.0);
  TrajectoryStore store(&net);
  TripGeneratorConfig config;
  config.num_trajectories = 40;
  config.min_od_distance_m = 300.0;
  GenerateTrips(config, &store);
  for (TrajId t = 0; t < store.total_count(); ++t) {
    const auto& nodes = store.trajectory(t).nodes();
    for (size_t i = 1; i < nodes.size(); ++i) {
      bool adjacent = false;
      for (const graph::Arc& arc : net.OutArcs(nodes[i - 1])) {
        if (arc.to == nodes[i]) {
          adjacent = true;
          break;
        }
      }
      EXPECT_TRUE(adjacent) << "trajectory " << t << " hop " << i;
    }
  }
}

TEST(TripGenerator, LengthFilterRespected) {
  graph::RoadNetwork net = test::MakeGridNetwork(20, 20, 150.0);
  TrajectoryStore store(&net);
  TripGeneratorConfig config;
  config.num_trajectories = 30;
  config.min_od_distance_m = 200.0;
  config.min_length_m = 1500.0;
  config.max_length_m = 2500.0;
  GenerateTrips(config, &store);
  EXPECT_GT(store.live_count(), 0u);
  for (TrajId t = 0; t < store.total_count(); ++t) {
    const double len = store.trajectory(t).LengthMeters();
    EXPECT_GE(len, 1000.0);  // Euclidean pre-filter tolerance
    EXPECT_LE(len, 3000.0);
  }
}

TEST(TripGenerator, ZeroDeviationGivesShortestPaths) {
  graph::RoadNetwork net = test::MakeGridNetwork(12, 12, 100.0);
  graph::DijkstraEngine engine(&net);
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const auto src = static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    const auto dst = static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    const auto path = RoutePerturbed(net, src, dst, 0.0, i);
    if (src == dst) continue;
    ASSERT_FALSE(path.empty());
    double total = 0.0;
    for (size_t j = 1; j < path.size(); ++j) {
      total += engine.PointToPoint(path[j - 1], path[j]);
    }
    EXPECT_NEAR(total, engine.PointToPoint(src, dst), 1e-6);
  }
}

TEST(TripGenerator, DeviationDiversifiesRoutesWithBoundedStretch) {
  // On a uniform grid, many distinct paths share the shortest length, so
  // deviation shows up as *route diversity* (different trips pick different
  // paths between the same OD pair) rather than extra length; the stretch
  // must stay bounded regardless.
  graph::RoadNetwork net = test::MakeGridNetwork(15, 15, 100.0);
  graph::DijkstraEngine engine(&net);
  const graph::NodeId src = 0;
  const graph::NodeId dst = 15 * 15 - 1;  // opposite corner
  std::set<std::vector<graph::NodeId>> distinct_routes;
  for (int trip = 0; trip < 12; ++trip) {
    const auto path = RoutePerturbed(net, src, dst, 0.8, 1000 + trip);
    ASSERT_FALSE(path.empty());
    double total = 0.0;
    for (size_t j = 1; j < path.size(); ++j) {
      total += engine.PointToPoint(path[j - 1], path[j]);
    }
    const double shortest = engine.PointToPoint(src, dst);
    EXPECT_GE(total, shortest - 1e-6);
    EXPECT_LE(total, 1.8 * shortest);  // plausible detours, not random walks
    distinct_routes.insert(path);
  }
  EXPECT_GE(distinct_routes.size(), 3u) << "deviation should diversify routes";
  // Zero deviation: all trips take the identical (deterministic) path.
  std::set<std::vector<graph::NodeId>> base_routes;
  for (int trip = 0; trip < 5; ++trip) {
    base_routes.insert(RoutePerturbed(net, src, dst, 0.0, 2000 + trip));
  }
  EXPECT_EQ(base_routes.size(), 1u);
}

TEST(TraceSynthesizer, SamplesCoverRouteAtRequestedInterval) {
  graph::RoadNetwork net = test::MakeLineNetwork(20, 100.0);
  std::vector<graph::NodeId> route;
  for (graph::NodeId i = 0; i < 20; ++i) route.push_back(i);
  TraceSynthesizerConfig config;
  config.speed_mps = 10.0;
  config.sampling_interval_s = 10.0;  // 100 m per sample over 1900 m
  config.noise_sigma_m = 0.0;
  const GpsTrace trace = SynthesizeTrace(net, route, config);
  ASSERT_GE(trace.size(), 19u);
  EXPECT_DOUBLE_EQ(trace.front().position.x, 0.0);
  EXPECT_NEAR(trace.back().position.x, 1900.0, 1e-6);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].timestamp_s, trace[i - 1].timestamp_s);
  }
}

TEST(TraceSynthesizer, NoiseIsBoundedInDistribution) {
  graph::RoadNetwork net = test::MakeLineNetwork(10, 100.0);
  std::vector<graph::NodeId> route = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  TraceSynthesizerConfig config;
  config.noise_sigma_m = 15.0;
  const GpsTrace trace = SynthesizeTrace(net, route, config);
  double max_dev = 0.0;
  for (const GpsSample& s : trace) {
    max_dev = std::max(max_dev, std::abs(s.position.y));
  }
  EXPECT_GT(max_dev, 0.0);
  EXPECT_LT(max_dev, 15.0 * 6);  // 6 sigma
}

TEST(MapMatcher, RecoversCleanRouteExactly) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 150.0);
  graph::DijkstraEngine engine(&net);
  const std::vector<graph::NodeId> route = engine.ShortestPath(0, 99);
  ASSERT_FALSE(route.empty());
  TraceSynthesizerConfig synth;
  synth.noise_sigma_m = 0.0;
  synth.sampling_interval_s = 8.0;
  const GpsTrace trace = SynthesizeTrace(net, route, synth);
  MapMatcher matcher(&net);
  const MatchResult match = matcher.Match(trace);
  ASSERT_FALSE(match.path.empty());
  EXPECT_EQ(match.path.front(), route.front());
  EXPECT_EQ(match.path.back(), route.back());
}

class MapMatcherNoise : public ::testing::TestWithParam<double> {};

TEST_P(MapMatcherNoise, RecoversMostOfTheRouteUnderNoise) {
  graph::RoadNetwork net = test::MakeGridNetwork(12, 12, 150.0);
  graph::DijkstraEngine engine(&net);
  util::Rng rng(11);
  int total_nodes = 0, recovered_nodes = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto src = static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    const auto dst = static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    const std::vector<graph::NodeId> route = engine.ShortestPath(src, dst);
    if (route.size() < 5) continue;
    TraceSynthesizerConfig synth;
    synth.noise_sigma_m = GetParam();
    synth.sampling_interval_s = 6.0;
    synth.seed = 100 + trial;
    const GpsTrace trace = SynthesizeTrace(net, route, synth);
    MapMatcher matcher(&net);
    const MatchResult match = matcher.Match(trace);
    ASSERT_FALSE(match.path.empty());
    const std::set<graph::NodeId> truth(route.begin(), route.end());
    for (graph::NodeId v : match.path) {
      ++total_nodes;
      if (truth.count(v) > 0) ++recovered_nodes;
    }
  }
  ASSERT_GT(total_nodes, 0);
  const double precision =
      static_cast<double>(recovered_nodes) / static_cast<double>(total_nodes);
  EXPECT_GE(precision, 0.75) << "noise sigma " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, MapMatcherNoise,
                         ::testing::Values(5.0, 15.0, 30.0));

TEST(MapMatcher, EmptyTraceYieldsEmptyResult) {
  graph::RoadNetwork net = test::MakeGridNetwork(5, 5);
  MapMatcher matcher(&net);
  EXPECT_TRUE(matcher.Match({}).path.empty());
}

TEST(MapMatcher, FarAwaySamplesAreDropped) {
  graph::RoadNetwork net = test::MakeGridNetwork(5, 5, 100.0);
  MapMatcher matcher(&net);
  GpsTrace trace;
  trace.push_back({{50.0, 50.0}, 0.0});
  trace.push_back({{90000.0, 90000.0}, 10.0});  // nowhere near the network
  trace.push_back({{150.0, 50.0}, 20.0});
  const MatchResult match = matcher.Match(trace);
  EXPECT_EQ(match.dropped_samples, 1u);
  EXPECT_FALSE(match.path.empty());
}

}  // namespace
}  // namespace netclus::traj
