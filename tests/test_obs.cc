// Tests for the observability layer (src/obs): metrics registry exactness
// under concurrency, Prometheus/JSON export goldens, deterministic head
// sampling, the lock-free span ring, span parenting across scheduler lane
// hops, and the slow-query log threshold.
//
// Like test_serve, this file must be TSan-clean — the CI tsan job runs it
// under -fsanitize=thread; the registry and ring tests exist precisely to
// prove their lock-free claims.
#include <atomic>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "test_helpers.h"
#include "traj/trip_generator.h"
#include "util/logging.h"

namespace netclus {
namespace {

// --- metrics registry -------------------------------------------------------

TEST(MetricsRegistry, InstrumentsAreIdempotentOnNameAndLabels) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("netclus_x_total", {{"lane", "fast"}});
  obs::Counter* b = reg.GetCounter("netclus_x_total", {{"lane", "fast"}});
  obs::Counter* c = reg.GetCounter("netclus_x_total", {{"lane", "heavy"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, ConcurrentBumpsAreExact) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  obs::Counter* shared = reg.GetCounter("netclus_shared_total");
  obs::Gauge* gauge = reg.GetGauge("netclus_shared_gauge");
  obs::Histogram* hist = reg.GetHistogram("netclus_shared_seconds");
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Registration races with bumping on other threads by design.
      obs::Counter* mine = reg.GetCounter(
          "netclus_per_thread_total", {{"t", std::to_string(t)}});
      for (int i = 0; i < kPerThread; ++i) {
        shared->Increment();
        mine->Increment();
        gauge->Add(1.0);
        hist->Observe(0.001 * (1 + i % 7));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(shared->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(gauge->Value(), double(kThreads) * kPerThread);
  EXPECT_EQ(hist->view().count(), uint64_t{kThreads} * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.GetCounter("netclus_per_thread_total",
                             {{"t", std::to_string(t)}})
                  ->Value(),
              uint64_t{kPerThread});
  }
}

TEST(MetricsRegistry, PrometheusGolden) {
  obs::MetricsRegistry reg;
  reg.GetCounter("netclus_test_total", {}, "A test counter")->Increment(3);
  reg.GetGauge("netclus_test_gauge", {{"lane", "fast"}})->Set(1.5);
  reg.RegisterProvider("netclus_test_polled_total", {}, "", /*counter=*/true,
                       [] { return 7.0; });
  // Sorted by name, HELP only when non-empty, TYPE from the entry kind.
  EXPECT_EQ(reg.ExportPrometheus(),
            "# TYPE netclus_test_gauge gauge\n"
            "netclus_test_gauge{lane=\"fast\"} 1.5\n"
            "# TYPE netclus_test_polled_total counter\n"
            "netclus_test_polled_total 7\n"
            "# HELP netclus_test_total A test counter\n"
            "# TYPE netclus_test_total counter\n"
            "netclus_test_total 3\n");
}

TEST(MetricsRegistry, JsonGolden) {
  obs::MetricsRegistry reg;
  reg.GetCounter("netclus_test_total", {}, "A test counter")->Increment(3);
  reg.GetGauge("netclus_test_gauge", {{"lane", "fast"}})->Set(1.5);
  EXPECT_EQ(reg.ExportJson(),
            "{\"metrics\":["
            "{\"name\":\"netclus_test_gauge\",\"labels\":{\"lane\":\"fast\"},"
            "\"type\":\"gauge\",\"value\":1.5},"
            "{\"name\":\"netclus_test_total\",\"labels\":{},"
            "\"type\":\"counter\",\"value\":3}"
            "]}");
}

TEST(MetricsRegistry, PrometheusHistogramIsCumulativeWithInfBucket) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("netclus_test_seconds");
  h->Observe(0.001);
  h->Observe(0.001);
  h->Observe(0.5);
  const std::string prom = reg.ExportPrometheus();
  EXPECT_NE(prom.find("# TYPE netclus_test_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("netclus_test_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("netclus_test_seconds_count 3"), std::string::npos);
  // Cumulative: every emitted bucket value is <= the +Inf total and
  // non-decreasing in emission order.
  uint64_t last = 0;
  size_t pos = 0;
  while ((pos = prom.find("_bucket{le=", pos)) != std::string::npos) {
    const size_t space = prom.find(' ', pos);
    const uint64_t v = std::stoull(prom.substr(space + 1));
    EXPECT_GE(v, last);
    EXPECT_LE(v, 3u);
    last = v;
    ++pos;
  }
}

TEST(MetricsRegistry, LabelValuesAreEscaped) {
  obs::MetricsRegistry reg;
  reg.GetCounter("netclus_esc_total", {{"path", "a\"b\\c\nd"}})->Increment();
  const std::string prom = reg.ExportPrometheus();
  EXPECT_NE(prom.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

// --- sampling ---------------------------------------------------------------

TEST(MetricsRegistry, ProviderReRegistrationRacesWithExport) {
  // Regression: Export used to read Entry::provider (a std::function)
  // without mu_ while RegisterProvider replaced it in place — a data
  // race the TSan CI leg now pins. Export snapshots the mutable entry
  // fields under the lock and only then invokes the callbacks.
  obs::MetricsRegistry reg;
  reg.RegisterProvider("netclus_test_live", {}, "polled", false,
                       [] { return 0.0; });
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    double v = 1.0;
    while (!stop.load(std::memory_order_relaxed)) {
      reg.RegisterProvider("netclus_test_live", {}, "polled", false,
                           [v] { return v; });
      v += 1.0;
    }
  });
  for (int i = 0; i < 200; ++i) {
    const std::string out = reg.ExportPrometheus();
    EXPECT_NE(out.find("netclus_test_live"), std::string::npos);
  }
  stop.store(true);
  writer.join();

  // Replacement is visible: the latest callback feeds the next export,
  // and the entry count did not grow with re-registration.
  reg.RegisterProvider("netclus_test_live", {}, "polled", false,
                       [] { return 42.0; });
  EXPECT_NE(reg.ExportPrometheus().find("netclus_test_live 42"),
            std::string::npos);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Tracer, HeadSamplingIsDeterministicInSeedAndRate) {
  obs::Tracer a(0.5, 1234, 64);
  obs::Tracer b(0.5, 1234, 64);
  obs::Tracer c(0.5, 99, 64);
  int kept = 0;
  bool differs = false;
  for (uint64_t id = 1; id <= 4000; ++id) {
    EXPECT_EQ(a.Sampled(id), b.Sampled(id));
    if (a.Sampled(id) != c.Sampled(id)) differs = true;
    if (a.Sampled(id)) ++kept;
  }
  EXPECT_TRUE(differs);  // a different seed reshuffles the kept set
  // The hash is uniform: 50% rate keeps ~50% of ids.
  EXPECT_GT(kept, 4000 * 0.4);
  EXPECT_LT(kept, 4000 * 0.6);
}

TEST(Tracer, SampleRateExtremes) {
  obs::Tracer none(0.0, 7, 64);
  obs::Tracer all(1.0, 7, 64);
  for (uint64_t id = 1; id <= 256; ++id) {
    EXPECT_FALSE(none.Sampled(id));
    EXPECT_TRUE(all.Sampled(id));
  }
  none.SetSampleRate(1.0);
  EXPECT_TRUE(none.Sampled(1));
}

// --- span ring --------------------------------------------------------------

TEST(SpanRing, BoundedOverwriteKeepsNewest) {
  obs::SpanRing ring(64);  // already a power of two
  EXPECT_EQ(ring.capacity(), 64u);
  for (uint64_t i = 0; i < 200; ++i) {
    obs::Span span;
    span.trace_id = i;
    ring.Push(span);
  }
  EXPECT_EQ(ring.pushed(), 200u);
  const std::vector<obs::Span> got = ring.Snapshot();
  ASSERT_EQ(got.size(), 64u);
  // Oldest-first snapshot of the newest 64 spans.
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].trace_id, 200 - 64 + i);
  }
}

TEST(SpanRing, ConcurrentPushersStayTornFree) {
  obs::SpanRing ring(256);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        obs::Span span;
        // Payload words derived from one value: a torn read would mix
        // words from different spans and break the invariant below.
        span.trace_id = uint64_t(t) * kPerThread + i;
        span.start_ns = span.trace_id * 3;
        span.duration_ns = span.trace_id * 7;
        ring.Push(span);
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const obs::Span& s : ring.Snapshot()) {
        ASSERT_EQ(s.start_ns, s.trace_id * 3);
        ASSERT_EQ(s.duration_ns, s.trace_id * 7);
      }
    }
  });
  for (std::thread& t : pool) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.pushed(), uint64_t{kThreads} * kPerThread);
  for (const obs::Span& s : ring.Snapshot()) {
    EXPECT_EQ(s.start_ns, s.trace_id * 3);
    EXPECT_EQ(s.duration_ns, s.trace_id * 7);
  }
}

// --- trace context ----------------------------------------------------------

TEST(TraceContext, UnsampledTailKeepSynthesizesCoarseSpans) {
  obs::Tracer tracer(0.0, 0, 64);
  obs::TraceContext ctx;
  ctx.Start(&tracer, 42, tracer.Sampled(42));
  EXPECT_FALSE(ctx.sampled());
  ctx.AddSpan(obs::SpanName::kAdmit, 0, ctx.start_ns(), ctx.start_ns() + 10);
  ctx.Finish(/*lane=*/1, /*tail_keep=*/true,
             /*queue_end_ns=*/ctx.start_ns() + 5);
  const std::vector<obs::Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);  // Queue + Request only; AddSpan was a no-op
  std::set<obs::SpanName> names;
  for (const obs::Span& s : spans) {
    EXPECT_EQ(s.trace_id, 42u);
    EXPECT_TRUE(s.flags & obs::kFlagTailKept);
    names.insert(s.name);
  }
  EXPECT_TRUE(names.count(obs::SpanName::kRequest));
  EXPECT_TRUE(names.count(obs::SpanName::kQueue));
}

TEST(TraceContext, UnsampledFastRequestRecordsNothing) {
  obs::Tracer tracer(0.0, 0, 64);
  obs::TraceContext ctx;
  ctx.Start(&tracer, 43, tracer.Sampled(43));
  ctx.Finish(0, /*tail_keep=*/false, ctx.start_ns());
  EXPECT_EQ(tracer.recorded(), 0u);
}

// --- end-to-end through the server ------------------------------------------

Engine MakeEngine(uint32_t dim = 8, uint64_t seed = 311) {
  graph::RoadNetwork net = test::MakeGridNetwork(dim, dim, 100.0);
  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  Engine::Options options;
  options.index.gamma = 0.75;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 2000.0;
  Engine engine(std::move(net), std::move(sites), options);
  util::Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    const auto src = static_cast<graph::NodeId>(
        rng.UniformInt(engine.network().num_nodes()));
    const auto dst = static_cast<graph::NodeId>(
        rng.UniformInt(engine.network().num_nodes()));
    if (src == dst) continue;
    auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3, seed + i);
    if (path.size() >= 2) engine.AddTrajectory(std::move(path));
  }
  engine.BuildIndex();
  return engine;
}

Engine::QuerySpec Spec(uint32_t k, double tau_m) {
  Engine::QuerySpec spec;
  spec.k = k;
  spec.tau_m = tau_m;
  return spec;
}

TEST(ServerObs, SpansLinkAcrossLaneHopsAndNestInRequest) {
  Engine engine = MakeEngine();
  serve::ServerOptions options;
  options.trace_sample = 1.0;  // every request records full stage spans
  options.trace_seed = 0;
  auto server = engine.Serve(options);

  serve::Request request;
  request.spec = Spec(3, 800.0);
  request.trace_id = 777;  // caller-assigned id, propagated to every span
  request.staleness = serve::StalenessPolicy::Fresh();
  serve::ServeResult result = server->SubmitAsync(std::move(request)).get();
  ASSERT_EQ(result.status, serve::StatusCode::kOk);

  std::vector<obs::Span> ours;
  for (const obs::Span& s : server->tracer().Snapshot()) {
    if (s.trace_id == 777) ours.push_back(s);
  }
  ASSERT_GE(ours.size(), 3u);

  const obs::Span* request_span = nullptr;
  std::set<obs::SpanName> names;
  std::set<uint8_t> lanes;
  for (const obs::Span& s : ours) {
    names.insert(s.name);
    if (s.name == obs::SpanName::kRequest) {
      request_span = &s;
    } else {
      lanes.insert(s.lane);
    }
    EXPECT_FALSE(s.flags & obs::kFlagTailKept);
  }
  ASSERT_NE(request_span, nullptr);
  // A fresh first-time spec walks Admit (priority lane) then CoverBuild
  // (heavy lane): the stage spans must cross at least two lanes while
  // staying inside the request window.
  EXPECT_TRUE(names.count(obs::SpanName::kQueue));
  EXPECT_TRUE(names.count(obs::SpanName::kAdmit));
  EXPECT_TRUE(names.count(obs::SpanName::kCoverBuild));
  EXPECT_GE(lanes.size(), 2u);
  const uint64_t req_end =
      request_span->start_ns + request_span->duration_ns;
  for (const obs::Span& s : ours) {
    EXPECT_GE(s.start_ns, request_span->start_ns);
    EXPECT_LE(s.start_ns + s.duration_ns, req_end);
  }

  const std::string trace = server->DumpTraces();
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"cat\":\"netclus\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);

  const std::string prom = server->DumpMetrics();
  EXPECT_NE(prom.find("netclus_serve_queries_total 1"), std::string::npos);
  EXPECT_NE(prom.find("netclus_sched_workers"), std::string::npos);
  EXPECT_NE(prom.find("netclus_serve_latency_seconds_count"),
            std::string::npos);
  server->Shutdown();
}

TEST(ServerObs, SlowQueryThresholdGatesTheLog) {
  Engine engine = MakeEngine();
  std::mutex mu;
  std::vector<std::string> lines;
  util::SetLogSink([&](util::LogLevel, const std::string& line) {
    // Already serialized under the logging mutex; the local mutex guards
    // against the vector outliving concurrent late completions.
    const std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });

  auto count_slow = [&] {
    const std::lock_guard<std::mutex> lock(mu);
    size_t n = 0;
    for (const std::string& l : lines) {
      if (l.find(" slow_query ") != std::string::npos) ++n;
    }
    return n;
  };

  {
    // Threshold 0 disables the slow-query log entirely.
    serve::ServerOptions options;
    options.slow_query_ms = 0.0;
    auto server = engine.Serve(options);
    ASSERT_EQ(server->Submit(Spec(3, 800.0)).status, serve::StatusCode::kOk);
    server->Shutdown();
    EXPECT_EQ(count_slow(), 0u);
  }
  {
    // A sub-microsecond threshold makes every query slow; the record
    // carries the linkable trace id and the latency field.
    serve::ServerOptions options;
    options.slow_query_ms = 0.0001;
    auto server = engine.Serve(options);
    ASSERT_EQ(server->Submit(Spec(3, 800.0)).status, serve::StatusCode::kOk);
    server->Shutdown();
    EXPECT_GE(count_slow(), 1u);
    const std::lock_guard<std::mutex> lock(mu);
    bool fields_ok = false;
    for (const std::string& l : lines) {
      if (l.find(" slow_query ") == std::string::npos) continue;
      fields_ok = l.find("trace_id=") != std::string::npos &&
                  l.find("latency_ms=") != std::string::npos &&
                  l.find("status=") != std::string::npos;
      if (fields_ok) break;
    }
    EXPECT_TRUE(fields_ok);
  }
  util::SetLogSink(nullptr);
}

TEST(ServerObs, EngineDumpMetricsCoversExecStages) {
  Engine engine = MakeEngine();
  (void)engine.Run(Spec(3, 800.0));
  const std::string prom = engine.DumpMetrics();
  EXPECT_NE(prom.find("netclus_exec_stage_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("stage=\"plan\""), std::string::npos);
  const std::string json = engine.DumpMetrics(obs::ExportFormat::kJson);
  EXPECT_EQ(json.rfind("{\"metrics\":[", 0), 0u);
}

}  // namespace
}  // namespace netclus
