// Property tests for the paper's theoretical guarantees:
//   Theorem 2  — U is monotone and submodular;
//   Lemma 2    — U(Q_k) >= (k/n) U(S);
//   Theorem 3  — Inc-Greedy >= max{1 - 1/e, k/n} of OPT;
//   Theorem 7  — with all nodes as sites and tau >= 4R_p, every trajectory
//                is covered by some representative (U(S_hat) = m);
//   Sec. 7.1   — CostGreedy >= (1 - 1/e)/2 of the budgeted OPT (checked
//                against brute force on tiny instances);
//   Sec. 7.3   — warm-started greedy keeps the (1 - 1/e) bound on the
//                *extra* utility.
#include <algorithm>
#include <memory>
#include <sstream>

#include "gtest/gtest.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "test_helpers.h"
#include "tops/coverage.h"
#include "tops/ilp_export.h"
#include "tops/inc_greedy.h"
#include "tops/optimal.h"
#include "tops/variants.h"
#include "util/rng.h"

namespace netclus::tops {
namespace {

CoverageIndex RandomInstance(uint64_t seed, uint32_t num_sites,
                             uint32_t num_trajs, double tau_m = 700.0) {
  graph::RoadNetwork net = test::MakeRandomNetwork(35, seed);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, num_trajs, 3, 9, seed + 1);
  SiteSet sites = SiteSet::SampleNodes(net, num_sites, seed + 2);
  CoverageConfig cc;
  cc.tau_m = tau_m;
  return CoverageIndex::Build(store, sites, cc);
}

class BoundProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundProperty, UtilityIsMonotone) {
  const CoverageIndex cov = RandomInstance(GetParam(), 14, 40);
  const PreferenceFunction psi = PreferenceFunction::Linear();
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    // Random Q ⊂ R: U(Q) <= U(R).
    std::vector<SiteId> r;
    for (SiteId s = 0; s < cov.num_sites(); ++s) {
      if (rng.Bernoulli(0.5)) r.push_back(s);
    }
    std::vector<SiteId> q;
    for (SiteId s : r) {
      if (rng.Bernoulli(0.6)) q.push_back(s);
    }
    EXPECT_LE(UtilityOf(cov, psi, q), UtilityOf(cov, psi, r) + 1e-9);
  }
}

TEST_P(BoundProperty, UtilityIsSubmodular) {
  // Theorem 2 via the lattice form: U(Q) + U(R) >= U(Q∪R) + U(Q∩R).
  const CoverageIndex cov = RandomInstance(GetParam() + 10, 12, 40);
  const PreferenceFunction psi = PreferenceFunction::Linear();
  util::Rng rng(GetParam() + 10);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SiteId> q, r, uni, inter;
    for (SiteId s = 0; s < cov.num_sites(); ++s) {
      const bool in_q = rng.Bernoulli(0.4);
      const bool in_r = rng.Bernoulli(0.4);
      if (in_q) q.push_back(s);
      if (in_r) r.push_back(s);
      if (in_q || in_r) uni.push_back(s);
      if (in_q && in_r) inter.push_back(s);
    }
    const double lhs = UtilityOf(cov, psi, q) + UtilityOf(cov, psi, r);
    const double rhs = UtilityOf(cov, psi, uni) + UtilityOf(cov, psi, inter);
    EXPECT_GE(lhs, rhs - 1e-9);
  }
}

TEST_P(BoundProperty, Lemma2GreedyPrefixBound) {
  // U(Q_k) >= (k/n) U(S) for every prefix of the greedy selection.
  const CoverageIndex cov = RandomInstance(GetParam() + 20, 15, 50);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  const size_t n = cov.num_sites();
  std::vector<SiteId> all(n);
  for (SiteId s = 0; s < n; ++s) all[s] = s;
  const double full = UtilityOf(cov, psi, all);
  GreedyConfig config;
  config.k = static_cast<uint32_t>(n);
  const Selection greedy = IncGreedy(cov, psi, config);
  double prefix_utility = 0.0;
  for (size_t k = 1; k <= greedy.sites.size(); ++k) {
    prefix_utility += greedy.marginal_gains[k - 1];
    EXPECT_GE(prefix_utility + 1e-9,
              static_cast<double>(k) / static_cast<double>(n) * full)
        << "k=" << k;
  }
}

TEST_P(BoundProperty, Theorem3GreedyVsOptimal) {
  const CoverageIndex cov = RandomInstance(GetParam() + 30, 12, 40);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  for (const uint32_t k : {2u, 4u}) {
    GreedyConfig gc;
    gc.k = k;
    const Selection greedy = IncGreedy(cov, psi, gc);
    OptimalConfig oc;
    oc.k = k;
    oc.time_limit_s = 30.0;
    const OptimalResult opt = SolveOptimal(cov, psi, oc);
    ASSERT_TRUE(opt.proven_optimal);
    const double bound =
        std::max(1.0 - 1.0 / M_E,
                 static_cast<double>(k) / static_cast<double>(cov.num_sites()));
    EXPECT_GE(greedy.utility, bound * opt.selection.utility - 1e-6);
  }
}

TEST_P(BoundProperty, ExistingServicesKeepBoundOnExtraUtility) {
  // Sec. 7.3: U'(Q) = U(Q ∪ ES) - U(ES) is within (1 - 1/e) of the best
  // possible extra utility.
  const CoverageIndex cov = RandomInstance(GetParam() + 40, 10, 35);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  const std::vector<SiteId> es = {0, 3};
  GreedyConfig config;
  config.k = 3;
  config.existing_services = es;
  const Selection greedy = IncGreedy(cov, psi, config);
  const double base = greedy.base_utility;
  // Brute-force best extra utility over all 3-subsets of the remainder.
  double best_extra = 0.0;
  const size_t n = cov.num_sites();
  for (SiteId a = 0; a < n; ++a) {
    for (SiteId b = a + 1; b < n; ++b) {
      for (SiteId c = b + 1; c < n; ++c) {
        std::vector<SiteId> q = {0, 3, a, b, c};
        best_extra = std::max(best_extra, UtilityOf(cov, psi, q) - base);
      }
    }
  }
  EXPECT_GE(greedy.utility - base, (1.0 - 1.0 / M_E) * best_extra - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundProperty, ::testing::Values(5, 55, 555));

TEST(Theorem7, AllNodeSitesCoverEveryTrajectoryInClusteredSpace) {
  // With S = V and tau >= 4 R_p, each trajectory is covered by the
  // representative of a cluster it passes through, so the clustered
  // problem's full-set utility equals m (binary psi).
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  auto store = std::make_unique<traj::TrajectoryStore>(&net);
  test::FillRandomWalks(store.get(), 50, 4, 12, 91);
  SiteSet sites = SiteSet::AllNodes(net);
  index::MultiIndexConfig config;
  config.gamma = 0.5;
  config.tau_min_m = 400.0;
  config.tau_max_m = 2500.0;
  const index::MultiIndex multi = index::MultiIndex::Build(*store, sites, config);
  const index::QueryEngine engine(&multi, store.get(), &sites);
  for (const double tau : {400.0, 800.0, 1600.0}) {
    const size_t p = multi.InstanceFor(tau);
    ASSERT_LE(4.0 * multi.instance(p).radius_m(), tau + 1e-9);
    std::vector<SiteId> reps;
    const CoverageIndex approx =
        engine.BuildApproxCoverage(tau, p, &reps, nullptr);
    // Union of all representative covers = every live trajectory.
    std::vector<bool> covered(store->total_count(), false);
    for (SiteId r = 0; r < approx.num_sites(); ++r) {
      for (const CoverEntry& e : approx.TC(r)) covered[e.id] = true;
    }
    size_t count = 0;
    for (traj::TrajId t = 0; t < store->total_count(); ++t) {
      if (covered[t]) ++count;
    }
    EXPECT_EQ(count, store->live_count()) << "tau=" << tau;
  }
}

TEST(CostBound, GreedyWithGuardWithinHalfOneMinusInvE) {
  // Brute-force budgeted optimum on tiny instances.
  util::Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    const CoverageIndex cov = RandomInstance(700 + trial, 8, 25);
    const PreferenceFunction psi = PreferenceFunction::Binary();
    CostConfig config;
    config.budget = 3.0;
    config.site_costs = DrawNormalCosts(8, 1.0, 0.5, 0.3, 80 + trial);
    const CostResult got = CostGreedy(cov, psi, config);
    // Enumerate all subsets within budget.
    double best = 0.0;
    for (uint32_t mask = 0; mask < (1u << 8); ++mask) {
      double cost = 0.0;
      std::vector<SiteId> subset;
      for (uint32_t s = 0; s < 8; ++s) {
        if (mask & (1u << s)) {
          cost += config.site_costs[s];
          subset.push_back(s);
        }
      }
      if (cost <= config.budget) {
        best = std::max(best, UtilityOf(cov, psi, subset));
      }
    }
    EXPECT_GE(got.selection.utility, 0.5 * (1.0 - 1.0 / M_E) * best - 1e-6);
  }
}

TEST(CostCapacity, CombinedExtensionRespectsBothConstraints) {
  const CoverageIndex cov = RandomInstance(801, 15, 60);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  CostCapacityConfig config;
  config.budget = 4.0;
  config.site_costs = DrawNormalCosts(15, 1.0, 0.4, 0.2, 82);
  config.site_capacities.assign(15, 6.0);
  const CostResult got = CostCapacityGreedy(cov, psi, config);
  EXPECT_LE(got.total_cost, config.budget + 1e-9);
  // Capacity: utility per site bounded by its cap under binary psi.
  EXPECT_LE(got.selection.utility,
            6.0 * static_cast<double>(got.selection.sites.size()) + 1e-9);
}

TEST(CostCapacity, ReducesToCostGreedyWithInfiniteCapacity) {
  const CoverageIndex cov = RandomInstance(803, 12, 50);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  CostCapacityConfig both;
  both.budget = 4.0;
  both.site_costs = DrawNormalCosts(12, 1.0, 0.4, 0.2, 84);
  both.site_capacities.assign(12, 1e12);
  CostConfig cost_only;
  cost_only.budget = both.budget;
  cost_only.site_costs = both.site_costs;
  const CostResult combined = CostCapacityGreedy(cov, psi, both);
  const CostResult plain = CostGreedy(cov, psi, cost_only);
  EXPECT_NEAR(combined.selection.utility, plain.selection.utility, 1e-9);
}

TEST(CostCapacity, TinyCapacitiesThrottleUtility) {
  const CoverageIndex cov = RandomInstance(805, 12, 50);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  CostCapacityConfig config;
  config.budget = 6.0;
  config.site_costs.assign(12, 1.0);
  config.site_capacities.assign(12, 1.0);
  const CostResult got = CostCapacityGreedy(cov, psi, config);
  // At most budget/1 sites, each serving at most 1 trajectory.
  EXPECT_LE(got.selection.utility, 6.0 + 1e-9);
}

TEST(IlpExport, EmitsWellFormedLpWithExpectedCounts) {
  const CoverageIndex cov = RandomInstance(901, 6, 12);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  std::ostringstream os;
  const IlpStats stats = ExportTopsLp(cov, psi, 3, os);
  const std::string lp = os.str();
  EXPECT_NE(lp.find("Maximize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("card:"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
  // x vars for all sites plus linearization indicators.
  EXPECT_GE(stats.num_binary_vars, cov.num_sites());
  EXPECT_GT(stats.num_constraints, 0u);
  // One U bound per covered trajectory.
  size_t covered = 0;
  for (traj::TrajId t = 0; t < cov.num_trajectories(); ++t) {
    if (!cov.SC(t).empty()) ++covered;
  }
  for (size_t i = 0, pos = 0; i < covered; ++i) {
    pos = lp.find(" U", pos);
    ASSERT_NE(pos, std::string::npos);
    ++pos;
  }
}

TEST(IlpExport, BigMLinearizationUsesBoundedCoefficients) {
  const CoverageIndex cov = RandomInstance(903, 8, 20);
  std::ostringstream os;
  ExportTopsLp(cov, PreferenceFunction::Linear(), 2, os);
  // M = 2 suffices because scores live in [0,1]; no huge constants.
  EXPECT_EQ(os.str().find("1e+06"), std::string::npos);
  EXPECT_EQ(os.str().find("100000"), std::string::npos);
}

}  // namespace
}  // namespace netclus::tops
