// Differential suite for the query planning & staged execution layer
// (src/exec) and its serving-side cover sharing (serve::CoverCache).
//
// The load-bearing property: the planner/executor path is bit-identical
// to the pre-refactor monolithic pipeline for every variant (plain TOPS
// under several ψ, existing services, FM and the FM+ES fallback,
// TOPS-COST, TOPS-CAPACITY), at 1 and 4 threads, under every distance
// backend, and with cover sharing on or off. `LegacyTops`/`LegacyCost`/
// `LegacyCapacity` below are line-for-line replicas of the pre-refactor
// query.cc pipeline built from the still-public pieces
// (QueryEngine::BuildApproxCoverage + the solver family), so the
// executor is checked against the original algorithm, not against
// itself.
//
// The serving replay tests at the bottom must also be TSan-clean (the CI
// tsan job runs this file under -fsanitize=thread).
#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "exec/cover_build.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "gtest/gtest.h"
#include "serve/cover_cache.h"
#include "serve/query_cache.h"
#include "serve/server.h"
#include "test_helpers.h"
#include "tops/variants.h"
#include "traj/trip_generator.h"

namespace netclus {
namespace {

using tops::PreferenceFunction;
using tops::SiteId;

Engine MakeEngine(graph::spf::BackendKind backend =
                      graph::spf::BackendKind::kDefault,
                  uint32_t threads = 0, uint32_t dim = 12,
                  uint64_t seed = 4711) {
  graph::RoadNetwork net = test::MakeGridNetwork(dim, dim, 100.0);
  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  Engine::Options options;
  options.index.gamma = 0.75;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 3000.0;
  options.distance_backend = backend;
  options.threads = threads;
  Engine engine(std::move(net), std::move(sites), options);
  util::Rng rng(seed);
  for (int i = 0; i < 90; ++i) {
    const auto src =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    const auto dst =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    if (src == dst) continue;
    auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3, seed + i);
    if (path.size() >= 2) engine.AddTrajectory(std::move(path));
  }
  engine.BuildIndex();
  return engine;
}

// ---------------------------------------------------------------------------
// Replicas of the pre-refactor query.cc pipeline (the "legacy path").
// ---------------------------------------------------------------------------

index::QueryResult FinishLegacy(const tops::Selection& clustered,
                                const std::vector<SiteId>& rep_sites,
                                size_t instance) {
  index::QueryResult out;
  out.selection = clustered;
  out.selection.sites.clear();
  for (SiteId rep_index : clustered.sites) {
    out.selection.sites.push_back(rep_sites[rep_index]);
  }
  out.instance_used = instance;
  out.clusters_considered = rep_sites.size();
  return out;
}

index::QueryResult LegacyTops(const Engine& engine,
                              const PreferenceFunction& psi,
                              const index::QueryConfig& config) {
  const index::MultiIndex& index = engine.index();
  const index::QueryEngine query(&index, &engine.store(), &engine.sites());
  const size_t p = index.InstanceFor(config.tau_m);
  std::vector<SiteId> rep_sites;
  const tops::CoverageIndex approx = query.BuildApproxCoverage(
      config.tau_m, p, &rep_sites, nullptr, config.threads);

  std::unordered_map<SiteId, SiteId> rep_index_of;
  for (SiteId i = 0; i < rep_sites.size(); ++i) rep_index_of[rep_sites[i]] = i;
  const index::ClusterIndex& instance = index.instance(p);
  std::vector<SiteId> existing_reps;
  for (SiteId es : config.existing_services) {
    const uint32_t g = instance.cluster_of(engine.sites().node(es));
    const SiteId rep = instance.cluster(g).representative;
    if (rep == tops::kInvalidSite) continue;
    auto it = rep_index_of.find(rep);
    if (it != rep_index_of.end()) existing_reps.push_back(it->second);
  }

  tops::Selection clustered;
  if (config.use_fm_sketch && psi.is_binary() && existing_reps.empty()) {
    tops::FmGreedyConfig fm_config;
    fm_config.k = config.k;
    fm_config.num_sketches = config.fm_copies;
    clustered = FmGreedy(approx, fm_config).selection;
  } else {
    tops::GreedyConfig greedy_config;
    greedy_config.k = config.k;
    greedy_config.existing_services = existing_reps;
    greedy_config.threads = config.threads;
    clustered = IncGreedy(approx, psi, greedy_config);
  }
  return FinishLegacy(clustered, rep_sites, p);
}

index::QueryResult LegacyCost(const Engine& engine,
                              const PreferenceFunction& psi,
                              const index::QueryConfig& config,
                              const std::vector<double>& site_costs,
                              double budget) {
  const index::MultiIndex& index = engine.index();
  const index::QueryEngine query(&index, &engine.store(), &engine.sites());
  const size_t p = index.InstanceFor(config.tau_m);
  std::vector<SiteId> rep_sites;
  const tops::CoverageIndex approx = query.BuildApproxCoverage(
      config.tau_m, p, &rep_sites, nullptr, config.threads);
  tops::CostConfig cost_config;
  cost_config.budget = budget;
  for (SiteId site : rep_sites) {
    cost_config.site_costs.push_back(site_costs[site]);
  }
  const tops::CostResult cost = CostGreedy(approx, psi, cost_config);
  return FinishLegacy(cost.selection, rep_sites, p);
}

index::QueryResult LegacyCapacity(const Engine& engine,
                                  const PreferenceFunction& psi,
                                  const index::QueryConfig& config,
                                  const std::vector<double>& capacities) {
  const index::MultiIndex& index = engine.index();
  const index::QueryEngine query(&index, &engine.store(), &engine.sites());
  const size_t p = index.InstanceFor(config.tau_m);
  std::vector<SiteId> rep_sites;
  const tops::CoverageIndex approx = query.BuildApproxCoverage(
      config.tau_m, p, &rep_sites, nullptr, config.threads);
  tops::CapacityConfig capacity_config;
  capacity_config.k = config.k;
  for (SiteId site : rep_sites) {
    capacity_config.site_capacities.push_back(capacities[site]);
  }
  const tops::CapacityResult capacity =
      CapacityGreedy(approx, psi, capacity_config);
  return FinishLegacy(capacity.selection, rep_sites, p);
}

void ExpectBitIdentical(const index::QueryResult& expected,
                        const index::QueryResult& actual,
                        const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(expected.selection.sites, actual.selection.sites);
  EXPECT_EQ(expected.selection.marginal_gains, actual.selection.marginal_gains);
  EXPECT_EQ(expected.selection.utility, actual.selection.utility);
  EXPECT_EQ(expected.selection.base_utility, actual.selection.base_utility);
  EXPECT_EQ(expected.instance_used, actual.instance_used);
  EXPECT_EQ(expected.clusters_considered, actual.clusters_considered);
}

// ---------------------------------------------------------------------------
// Tentpole acceptance: executor ≡ legacy, across variants × threads ×
// distance backends.
// ---------------------------------------------------------------------------

TEST(Exec, ExecutorMatchesLegacyAcrossVariantsThreadsAndBackends) {
  for (const graph::spf::BackendKind backend :
       {graph::spf::BackendKind::kDijkstra,
        graph::spf::BackendKind::kBidirectional,
        graph::spf::BackendKind::kContractionHierarchies}) {
    for (const uint32_t threads : {1u, 4u}) {
      SCOPED_TRACE("backend " + std::to_string(static_cast<int>(backend)) +
                   " threads " + std::to_string(threads));
      const Engine engine = MakeEngine(backend, threads);
      const std::vector<double> costs =
          tops::DrawNormalCosts(engine.sites().size(), 1.0, 0.4, 0.1, 63);
      const std::vector<double> caps(engine.sites().size(), 8.0);

      // A reusable ES set: the plain answer's sites, reversed so the
      // caller order is deliberately non-canonical.
      std::vector<SiteId> es =
          engine.TopK(3, 800.0, PreferenceFunction::Binary()).selection.sites;
      std::reverse(es.begin(), es.end());

      struct Case {
        const char* name;
        PreferenceFunction psi;
        uint32_t k;
        double tau;
        bool use_fm;
        std::vector<SiteId> es;
      };
      const std::vector<Case> cases = {
          {"binary", PreferenceFunction::Binary(), 5, 800.0, false, {}},
          {"linear", PreferenceFunction::Linear(), 4, 600.0, false, {}},
          {"convex2", PreferenceFunction::ConvexProbability(2.0), 5, 1000.0,
           false, {}},
          {"exponential", PreferenceFunction::Exponential(3.0), 3, 1400.0,
           false, {}},
          {"existing-services", PreferenceFunction::Binary(), 3, 800.0, false,
           es},
          {"fm", PreferenceFunction::Binary(), 5, 900.0, true, {}},
          {"fm-es-fallback", PreferenceFunction::Binary(), 3, 900.0, true, es},
      };
      for (const Case& c : cases) {
        index::QueryConfig config;
        config.k = c.k;
        config.tau_m = c.tau;
        config.use_fm_sketch = c.use_fm;
        config.existing_services = c.es;
        config.threads = threads;
        ExpectBitIdentical(LegacyTops(engine, c.psi, config),
                           engine.TopK(c.k, c.tau, c.psi, c.use_fm, c.es),
                           c.name);
      }

      index::QueryConfig vconfig;
      vconfig.tau_m = 800.0;
      vconfig.threads = threads;
      ExpectBitIdentical(
          LegacyCost(engine, PreferenceFunction::Binary(), vconfig, costs, 4.0),
          engine.TopKWithBudget(4.0, 800.0, PreferenceFunction::Binary(),
                                costs),
          "cost");
      vconfig.k = 4;
      ExpectBitIdentical(
          LegacyCapacity(engine, PreferenceFunction::Binary(), vconfig, caps),
          engine.TopKWithCapacity(4, 800.0, PreferenceFunction::Binary(),
                                  caps),
          "capacity");
    }
  }
}

// ---------------------------------------------------------------------------
// Batch cover sharing.
// ---------------------------------------------------------------------------

std::vector<Engine::QuerySpec> DuplicateTauBatch(size_t count) {
  // ≤ 4 distinct τ values across the batch — the acceptance shape.
  const double taus[] = {600.0, 900.0, 1200.0, 1500.0};
  std::vector<Engine::QuerySpec> specs;
  for (size_t i = 0; i < count; ++i) {
    Engine::QuerySpec spec;
    spec.k = 2 + static_cast<uint32_t>(i % 5);
    spec.tau_m = taus[i % 4];
    if (i % 7 == 3) spec.psi = PreferenceFunction::Linear();
    specs.push_back(spec);
  }
  return specs;
}

TEST(Exec, TopKBatchSharesCoversAndMatchesSequentialTopK) {
  for (const uint32_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const Engine engine = MakeEngine(graph::spf::BackendKind::kDefault, threads);
    const std::vector<Engine::QuerySpec> specs = DuplicateTauBatch(32);

    const auto before = engine.ExecStats();
    const std::vector<index::QueryResult> batch = engine.TopKBatch(specs);
    const auto after = engine.ExecStats();
    ASSERT_EQ(batch.size(), specs.size());

    // Exactly one cover build per distinct τ (all four map to distinct
    // (instance, τ) keys here), every other query shared.
    EXPECT_EQ(after.covers_built - before.covers_built, 4u);
    EXPECT_EQ(after.covers_shared - before.covers_shared, specs.size() - 4);

    for (size_t i = 0; i < specs.size(); ++i) {
      const index::QueryResult single = engine.TopK(
          specs[i].k, specs[i].tau_m, specs[i].psi, specs[i].use_fm,
          specs[i].existing_services);
      ExpectBitIdentical(single, batch[i], "spec " + std::to_string(i));
      // Attribution: each of the 8 sharers of a τ reports 1/8 of the
      // transient bytes a private build would have charged, and flags the
      // sharing. The cover is deterministic, so the private build's bytes
      // are exactly the single-query measurement.
      EXPECT_TRUE(batch[i].cover_shared);
      EXPECT_FALSE(single.cover_shared);
      EXPECT_EQ(batch[i].transient_bytes, single.transient_bytes / 8);
      // Self-consistent timing invariants only (never compare wall clocks
      // across separate runs — load skew makes that flaky).
      EXPECT_GT(batch[i].cover_build_seconds, 0.0);
      EXPECT_LE(batch[i].cover_build_seconds, batch[i].total_seconds);
      // Every sharer of a τ group reports the same amortized build cost
      // (spec i % 4 is the group's first member).
      EXPECT_EQ(batch[i].cover_build_seconds,
                batch[i % 4].cover_build_seconds);
    }
  }
}

TEST(Exec, SingleQueryAttributionIsUnshared) {
  const Engine engine = MakeEngine();
  const index::QueryResult result =
      engine.TopK(5, 800.0, PreferenceFunction::Binary());
  EXPECT_FALSE(result.cover_shared);
  EXPECT_GT(result.transient_bytes, 0u);
  EXPECT_GT(result.cover_build_seconds, 0.0);
  EXPECT_GE(result.total_seconds, result.cover_build_seconds);
}

// ---------------------------------------------------------------------------
// Plan canonicalization & fingerprints.
// ---------------------------------------------------------------------------

TEST(Exec, PlanKeyCanonicalizesEquivalentRequests) {
  exec::PlanRequest a;
  a.k = 5;
  a.tau_m = 800.0;
  a.existing_services = {3, 1, 2};
  exec::PlanRequest b = a;
  b.existing_services = {2, 3, 1, 1};
  EXPECT_EQ(exec::CanonicalPlanKey(a, 2), exec::CanonicalPlanKey(b, 2));
  EXPECT_EQ(exec::CanonicalPlanKey(a, 2).Fingerprint(),
            exec::CanonicalPlanKey(b, 2).Fingerprint());

  // ψ normalization: ConvexProbability(1) is bit-equivalent to Linear.
  exec::PlanRequest convex1 = a;
  convex1.psi = PreferenceFunction::ConvexProbability(1.0);
  exec::PlanRequest linear = a;
  linear.psi = PreferenceFunction::Linear();
  EXPECT_EQ(exec::CanonicalPlanKey(convex1, 2),
            exec::CanonicalPlanKey(linear, 2));

  // -0.0 τ folds onto 0.0 (they compare equal everywhere execution looks).
  exec::PlanRequest zero = a;
  zero.tau_m = 0.0;
  exec::PlanRequest negzero = a;
  negzero.tau_m = -0.0;
  EXPECT_EQ(exec::CanonicalPlanKey(zero, 0), exec::CanonicalPlanKey(negzero, 0));

  // fm_copies is irrelevant — and therefore canonicalized away — when FM
  // is off.
  exec::PlanRequest copies = a;
  copies.fm_copies = 99;
  EXPECT_EQ(exec::CanonicalPlanKey(a, 2), exec::CanonicalPlanKey(copies, 2));
  copies.use_fm = true;
  exec::PlanRequest fm = a;
  fm.use_fm = true;
  EXPECT_FALSE(exec::CanonicalPlanKey(fm, 2) ==
               exec::CanonicalPlanKey(copies, 2));

  // Genuinely different requests split.
  exec::PlanRequest other_tau = a;
  other_tau.tau_m = 900.0;
  EXPECT_FALSE(exec::CanonicalPlanKey(a, 2) ==
               exec::CanonicalPlanKey(other_tau, 2));
  EXPECT_FALSE(exec::CanonicalPlanKey(a, 2) == exec::CanonicalPlanKey(a, 3));
}

TEST(Exec, PsiNormalizationIsBitExact) {
  // NormalizePsi rewrites ConvexProbability(1) → Linear; the cache then
  // serves either spelling from one entry, so their scores must be
  // bit-for-bit equal (std::pow(x, 1.0) == x). This pins the platform
  // assumption the normalization relies on.
  const PreferenceFunction convex1 = PreferenceFunction::ConvexProbability(1.0);
  const PreferenceFunction linear = PreferenceFunction::Linear();
  EXPECT_EQ(exec::NormalizePsi(convex1).kind(), linear.kind());
  EXPECT_EQ(exec::NormalizePsi(PreferenceFunction::ConvexProbability(2.0)).kind(),
            PreferenceFunction::Kind::kConvexProbability);
  for (double tau : {1.0, 750.0, 3333.3}) {
    for (int i = 0; i <= 1000; ++i) {
      const double d = tau * static_cast<double>(i) / 1000.0 * 1.001;
      EXPECT_EQ(convex1.Score(d, tau), linear.Score(d, tau))
          << "d=" << d << " tau=" << tau;
    }
  }
}

TEST(Exec, PlannerResolvesInstanceSolverAndFallback) {
  const Engine engine = MakeEngine();
  exec::ExecContext ctx;
  const exec::Planner planner(&ctx);

  exec::PlanRequest request;
  request.k = 5;
  request.tau_m = 800.0;
  const exec::QueryPlan plain = planner.Plan(request, engine.index(), 1);
  EXPECT_EQ(plain.instance, engine.index().InstanceFor(800.0));
  EXPECT_EQ(plain.solver, exec::SolverKind::kIncGreedy);
  EXPECT_TRUE(plain.cacheable);
  EXPECT_FALSE(plain.fm_fallback);

  request.use_fm = true;
  const exec::QueryPlan fm = planner.Plan(request, engine.index(), 1);
  EXPECT_EQ(fm.solver, exec::SolverKind::kFmGreedy);

  request.existing_services = {1, 2};
  const exec::QueryPlan fallback = planner.Plan(request, engine.index(), 1);
  EXPECT_EQ(fallback.solver, exec::SolverKind::kIncGreedy);
  EXPECT_TRUE(fallback.fm_fallback);

  exec::PlanRequest cost;
  cost.variant = exec::QueryVariant::kTopsCost;
  const exec::QueryPlan cost_plan = planner.Plan(cost, engine.index(), 1);
  EXPECT_EQ(cost_plan.solver, exec::SolverKind::kCostGreedy);
  EXPECT_FALSE(cost_plan.cacheable);

  // Batch-aware thread allocation: one thread per query once the batch
  // covers the worker budget, the full budget otherwise.
  exec::PlanRequest threaded = request;
  threaded.threads = 4;
  EXPECT_EQ(planner.Plan(threaded, engine.index(), 8).threads, 1u);
  EXPECT_EQ(planner.Plan(threaded, engine.index(), 2).threads, 4u);
}

TEST(Exec, FmFallbackRespectsExistingServices) {
  const Engine engine = MakeEngine();
  const std::vector<SiteId> es =
      engine.TopK(2, 800.0, PreferenceFunction::Binary()).selection.sites;
  // FM + ES falls back to Inc-Greedy, so the answer equals the non-FM
  // query (and never re-selects the existing services).
  const index::QueryResult with_fm =
      engine.TopK(3, 800.0, PreferenceFunction::Binary(), /*use_fm=*/true, es);
  const index::QueryResult without_fm =
      engine.TopK(3, 800.0, PreferenceFunction::Binary(), /*use_fm=*/false, es);
  ExpectBitIdentical(without_fm, with_fm, "fallback equals inc-greedy");
  for (SiteId s : with_fm.selection.sites) {
    EXPECT_EQ(std::find(es.begin(), es.end(), s), es.end());
  }
  EXPECT_GE(engine.ExecStats().fm_fallbacks, 1u);
}

TEST(Exec, StatsRegistryAccumulatesStagesAndInstances) {
  const Engine engine = MakeEngine();
  (void)engine.TopK(5, 600.0, PreferenceFunction::Binary());
  (void)engine.TopK(5, 1500.0, PreferenceFunction::Binary());
  const exec::StatsRegistry::Snapshot stats = engine.ExecStats();
  EXPECT_EQ(stats.plan.count, 2u);
  EXPECT_EQ(stats.cover_build.count, 2u);
  EXPECT_EQ(stats.solve.count, 2u);
  EXPECT_EQ(stats.assemble.count, 2u);
  EXPECT_EQ(stats.covers_built, 2u);
  EXPECT_GT(stats.cover_build.ewma_seconds, 0.0);
  // The two τ land on different instances; both are accounted.
  const size_t p_small = engine.index().InstanceFor(600.0);
  const size_t p_large = engine.index().InstanceFor(1500.0);
  ASSERT_NE(p_small, p_large);
  ASSERT_GT(stats.instances.size(), std::max(p_small, p_large));
  EXPECT_EQ(stats.instances[p_small].cover_builds, 1u);
  EXPECT_EQ(stats.instances[p_large].cover_builds, 1u);
  EXPECT_GT(stats.instances[p_small].last_cover_bytes, 0u);
}

// ---------------------------------------------------------------------------
// CoverCache (serve): build-once semantics, eviction, on/off equivalence.
// ---------------------------------------------------------------------------

TEST(CoverCache, BuildsOncePerKeyAcrossConcurrentCallers) {
  serve::CoverCache::Options options;
  options.capacity = 8;
  options.respect_env = false;  // the test must not depend on the CI matrix
  serve::CoverCache cache(options);
  ASSERT_TRUE(cache.enabled());

  const Engine engine = MakeEngine();
  const exec::CoverKey key{0, 123};
  std::atomic<int> builds{0};
  const auto build = [&]() -> exec::CoverPtr {
    builds.fetch_add(1);
    return std::make_shared<exec::BuiltCover>(exec::BuildCover(
        engine.index(), engine.store(), 800.0, /*instance=*/0, /*threads=*/1));
  };

  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  std::vector<exec::CoverPtr> got(kThreads);
  std::vector<uint8_t> reused(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      bool r = false;
      got[t] = cache.GetOrBuild(7, key, build, &r);
      reused[t] = r ? 1 : 0;
    });
  }
  for (auto& t : pool) t.join();

  EXPECT_EQ(builds.load(), 1);
  int builders = 0;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(got[t], nullptr);
    EXPECT_EQ(got[t], got[0]);  // pointer-equal: genuinely shared
    if (!reused[t]) ++builders;
  }
  EXPECT_EQ(builders, 1);
  const serve::CoverCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(CoverCache, VersionIsPartOfTheKeyAndLruEvicts) {
  serve::CoverCache::Options options;
  options.capacity = 2;
  options.shards = 1;
  options.respect_env = false;
  serve::CoverCache cache(options);
  const Engine engine = MakeEngine();
  int builds = 0;
  const auto build = [&]() -> exec::CoverPtr {
    ++builds;
    return std::make_shared<exec::BuiltCover>(exec::BuildCover(
        engine.index(), engine.store(), 700.0, 0, 1));
  };
  bool reused = false;
  const exec::CoverKey key{0, 42};
  (void)cache.GetOrBuild(1, key, build, &reused);
  (void)cache.GetOrBuild(2, key, build, &reused);  // new version: rebuild
  EXPECT_EQ(builds, 2);
  (void)cache.GetOrBuild(2, key, build, &reused);
  EXPECT_TRUE(reused);
  EXPECT_EQ(builds, 2);
  (void)cache.GetOrBuild(3, key, build, &reused);  // evicts version 1
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_GE(cache.stats().evictions, 1u);
  (void)cache.GetOrBuild(1, key, build, &reused);  // must rebuild
  EXPECT_FALSE(reused);
  EXPECT_EQ(builds, 4);
}

TEST(CoverCache, DisabledCacheDegeneratesToPlainBuilds) {
  serve::CoverCache::Options options;
  options.capacity = 0;
  options.respect_env = false;
  serve::CoverCache cache(options);
  EXPECT_FALSE(cache.enabled());
  int builds = 0;
  bool reused = true;
  const auto build = [&]() -> exec::CoverPtr {
    ++builds;
    return std::make_shared<exec::BuiltCover>();
  };
  (void)cache.GetOrBuild(1, exec::CoverKey{0, 1}, build, &reused);
  (void)cache.GetOrBuild(1, exec::CoverKey{0, 1}, build, &reused);
  EXPECT_EQ(builds, 2);
  EXPECT_FALSE(reused);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0u);
}

// ---------------------------------------------------------------------------
// Serving-layer cover sharing: bit-identical on/off, shared across
// concurrent readers, TSan-clean.
// ---------------------------------------------------------------------------

index::QueryResult ServeReplay(const serve::ServeResult& served,
                               const Engine::QuerySpec& spec) {
  const Engine::QuerySpec canon = serve::CanonicalizeSpec(spec);
  return served.snapshot->query().Tops(canon.psi, canon.ToConfig(1));
}

TEST(Serving, CoverCacheOnOffIsBitIdentical) {
  const Engine engine = MakeEngine();
  serve::ServerOptions with;
  with.cover_cache.respect_env = false;  // force ON regardless of CI matrix
  serve::ServerOptions without;
  without.cover_cache.capacity = 0;
  without.cover_cache.respect_env = false;
  auto on = engine.Serve(with);
  auto off = engine.Serve(without);

  const std::vector<Engine::QuerySpec> specs = DuplicateTauBatch(24);
  for (const Engine::QuerySpec& spec : specs) {
    const serve::ServeResult a = on->Submit(spec);
    const serve::ServeResult b = off->Submit(spec);
    ExpectBitIdentical(b.result, a.result, "cover cache on/off");
  }
  // The duplicate-τ stream reused covers on the enabled server only.
  EXPECT_GT(on->stats().cover_cache.hits, 0u);
  EXPECT_EQ(on->stats().cover_cache.misses, 4u);
  EXPECT_EQ(off->stats().cover_cache.hits + off->stats().cover_cache.misses,
            0u);
}

TEST(Serving, ConcurrentDuplicateTauTrafficSharesCoversAndReplays) {
  const Engine engine = MakeEngine();
  serve::ServerOptions options;
  options.cover_cache.respect_env = false;
  options.updates.max_batch = 16;
  auto server = engine.Serve(options);

  const std::vector<Engine::QuerySpec> specs = DuplicateTauBatch(8);
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 24;
  std::vector<std::vector<std::pair<size_t, serve::ServeResult>>> recorded(
      kReaders);
  std::atomic<bool> start{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int q = 0; q < kQueriesPerReader; ++q) {
        const size_t spec_index = (r * 3 + q) % specs.size();
        recorded[r].emplace_back(spec_index,
                                 server->Submit(specs[spec_index]));
      }
    });
  }
  // A live update stream publishes new versions mid-traffic, implicitly
  // invalidating cached covers (the version is part of the key).
  start.store(true, std::memory_order_release);
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 6; ++i) {
      server->MutateAddTrajectory({0, 1, 2, 14, 26, 27});
    }
    server->Flush();
  }
  for (auto& t : readers) t.join();
  server->Shutdown();

  for (int r = 0; r < kReaders; ++r) {
    for (const auto& [spec_index, served] : recorded[r]) {
      ExpectBitIdentical(ServeReplay(served, specs[spec_index]), served.result,
                         "reader replay");
    }
  }
  const serve::ServerStats stats = server->stats();
  // Duplicate-τ traffic means most queries reused a cover (result-cache
  // hits never even reach the cover stage, so hits + result hits bound
  // the total from below loosely).
  EXPECT_GT(stats.cover_cache.hits, 0u);
  EXPECT_GT(stats.exec.covers_shared, 0u);
  EXPECT_GT(stats.exec.solve.count, 0u);
}

TEST(Serving, PermutedExistingServicesHitTheResultCache) {
  const Engine engine = MakeEngine();
  auto server = engine.Serve();
  const std::vector<SiteId> es =
      engine.TopK(3, 800.0, PreferenceFunction::Binary()).selection.sites;
  ASSERT_GE(es.size(), 3u);

  Engine::QuerySpec spec;
  spec.k = 4;
  spec.tau_m = 800.0;
  spec.existing_services = es;
  const serve::ServeResult first = server->Submit(spec);
  EXPECT_FALSE(first.cache_hit);

  // Permute + duplicate the ES list: same canonical query, so the result
  // cache must hit with the bit-identical answer.
  spec.existing_services = {es[2], es[0], es[1], es[0]};
  const serve::ServeResult second = server->Submit(spec);
  EXPECT_TRUE(second.cache_hit);
  ExpectBitIdentical(first.result, second.result, "permuted ES cache hit");

  // ψ spelling normalization: ConvexProbability(1) ≡ Linear.
  Engine::QuerySpec linear;
  linear.k = 4;
  linear.tau_m = 800.0;
  linear.psi = PreferenceFunction::Linear();
  Engine::QuerySpec convex1 = linear;
  convex1.psi = PreferenceFunction::ConvexProbability(1.0);
  const serve::ServeResult lin = server->Submit(linear);
  EXPECT_FALSE(lin.cache_hit);
  const serve::ServeResult cvx = server->Submit(convex1);
  EXPECT_TRUE(cvx.cache_hit);
  ExpectBitIdentical(lin.result, cvx.result, "psi normalization cache hit");
}

}  // namespace
}  // namespace netclus
