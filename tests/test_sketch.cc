#include <cmath>

#include "gtest/gtest.h"
#include "sketch/fm_sketch.h"
#include "util/rng.h"

namespace netclus::sketch {
namespace {

TEST(FmSketch, EmptyEstimatesZero) {
  FmSketch sk(30);
  EXPECT_DOUBLE_EQ(sk.Estimate(), 0.0);
  EXPECT_TRUE(sk.IsEmpty());
}

TEST(FmSketch, AddIsIdempotent) {
  FmSketch a(30), b(30);
  for (int rep = 0; rep < 5; ++rep) {
    for (uint64_t x = 0; x < 100; ++x) a.Add(x);
  }
  for (uint64_t x = 0; x < 100; ++x) b.Add(x);
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

class FmAccuracy : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(FmAccuracy, EstimateWithinExpectedError) {
  const auto [copies, n] = GetParam();
  FmSketch sk(copies);
  for (uint64_t x = 0; x < n; ++x) sk.Add(x * 0x9e3779b9ULL + 12345);
  const double estimate = sk.Estimate();
  // FM error is multiplicative; allow generous slack scaled by the
  // theoretical standard error, plus extra for small f.
  const double tolerance = 4.0 * FmSketch::StandardErrorFraction(copies) + 0.35;
  EXPECT_NEAR(estimate / static_cast<double>(n), 1.0, tolerance)
      << "f=" << copies << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FmAccuracy,
    ::testing::Combine(::testing::Values(10u, 30u, 64u, 128u),
                       ::testing::Values(100ull, 1000ull, 20000ull)));

TEST(FmSketch, ErrorShrinksWithMoreCopies) {
  // Mean absolute relative error over several trials must shrink from f=2
  // to f=64.
  auto mean_error = [](uint32_t copies) {
    double total = 0.0;
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
      FmSketch sk(copies, 1000 + t);
      const uint64_t n = 5000;
      for (uint64_t x = 0; x < n; ++x) sk.Add(x + t * 1000000ULL);
      total += std::abs(sk.Estimate() / n - 1.0);
    }
    return total / trials;
  };
  EXPECT_LT(mean_error(64), mean_error(2));
}

TEST(FmSketch, MergeEqualsUnionSemantics) {
  FmSketch a(30), b(30), both(30);
  for (uint64_t x = 0; x < 500; ++x) {
    a.Add(x);
    both.Add(x);
  }
  for (uint64_t x = 300; x < 900; ++x) {
    b.Add(x);
    both.Add(x);
  }
  FmSketch merged = a.Union(b);
  EXPECT_DOUBLE_EQ(merged.Estimate(), both.Estimate());
  // UnionEstimate agrees without materializing.
  EXPECT_DOUBLE_EQ(a.UnionEstimate(b), both.Estimate());
  // Merge in place agrees too.
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), both.Estimate());
}

TEST(FmSketch, UnionIsMonotone) {
  FmSketch a(30), b(30);
  for (uint64_t x = 0; x < 1000; ++x) a.Add(x);
  for (uint64_t x = 1000; x < 1400; ++x) b.Add(x);
  EXPECT_GE(a.UnionEstimate(b), a.Estimate());
  EXPECT_GE(a.UnionEstimate(b), b.Estimate());
}

TEST(FmSketch, DisjointUnionApproximatesSum) {
  FmSketch a(128), b(128);
  for (uint64_t x = 0; x < 4000; ++x) a.Add(x);
  for (uint64_t x = 100000; x < 104000; ++x) b.Add(x);
  const double est = a.UnionEstimate(b);
  EXPECT_NEAR(est / 8000.0, 1.0, 0.45);
}

TEST(FmSketch, ClearResets) {
  FmSketch sk(16);
  sk.Add(1);
  EXPECT_FALSE(sk.IsEmpty());
  sk.Clear();
  EXPECT_TRUE(sk.IsEmpty());
  EXPECT_DOUBLE_EQ(sk.Estimate(), 0.0);
}

TEST(FmSketch, MemoryIsLogarithmicNotLinear) {
  // The point of the sketch (Sec. 3.5): O(f) 32-bit words regardless of how
  // many elements were inserted.
  FmSketch sk(30);
  const uint64_t before = sk.MemoryBytes();
  for (uint64_t x = 0; x < 100000; ++x) sk.Add(x);
  EXPECT_EQ(sk.MemoryBytes(), before);
  EXPECT_EQ(sk.MemoryBytes(), 30u * sizeof(uint32_t));
}

TEST(FmSketch, DifferentSeedsGiveIndependentEstimates) {
  FmSketch a(8, 1), b(8, 2);
  for (uint64_t x = 0; x < 1000; ++x) {
    a.Add(x);
    b.Add(x);
  }
  // Estimates differ (independent hash families) but both are in range.
  EXPECT_GT(a.Estimate(), 100.0);
  EXPECT_GT(b.Estimate(), 100.0);
}

TEST(FmSketchDeath, MergeRequiresSameShape) {
  FmSketch a(8, 1), b(16, 1), c(8, 2);
  EXPECT_DEATH(a.Merge(b), "Check failed");
  EXPECT_DEATH(a.Merge(c), "Check failed");
}

}  // namespace
}  // namespace netclus::sketch
