#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"
#include "netclus/index_io.h"
#include "netclus/query.h"
#include "test_helpers.h"
#include "tops/site_set.h"

namespace netclus::index {
namespace {

struct Fixture {
  graph::RoadNetwork net;
  std::unique_ptr<traj::TrajectoryStore> store;
  tops::SiteSet sites;
  std::unique_ptr<MultiIndex> index;

  explicit Fixture(uint64_t seed = 71) {
    net = test::MakeGridNetwork(10, 10, 100.0);
    store = std::make_unique<traj::TrajectoryStore>(&net);
    test::FillRandomWalks(store.get(), 40, 4, 12, seed);
    sites = tops::SiteSet::AllNodes(net);
    MultiIndexConfig config;
    config.gamma = 0.75;
    config.tau_min_m = 300.0;
    config.tau_max_m = 2500.0;
    index = std::make_unique<MultiIndex>(
        MultiIndex::Build(*store, sites, config));
  }
};

TEST(IndexIo, RoundTripPreservesStructure) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);

  MultiIndex loaded;
  std::string error;
  ASSERT_TRUE(ReadIndex(ss, f.net.num_nodes(), f.store->total_count(), &loaded,
                        &error))
      << error;
  ASSERT_EQ(loaded.num_instances(), f.index->num_instances());
  EXPECT_DOUBLE_EQ(loaded.tau_min_m(), f.index->tau_min_m());
  EXPECT_DOUBLE_EQ(loaded.tau_max_m(), f.index->tau_max_m());
  for (size_t p = 0; p < loaded.num_instances(); ++p) {
    const ClusterIndex& a = f.index->instance(p);
    const ClusterIndex& b = loaded.instance(p);
    ASSERT_EQ(a.num_clusters(), b.num_clusters()) << "instance " << p;
    EXPECT_DOUBLE_EQ(a.radius_m(), b.radius_m());
    for (uint32_t g = 0; g < a.num_clusters(); ++g) {
      EXPECT_EQ(a.cluster(g).center, b.cluster(g).center);
      EXPECT_EQ(a.cluster(g).representative, b.cluster(g).representative);
      EXPECT_EQ(a.cluster(g).tl.size(), b.cluster(g).tl.size());
      EXPECT_EQ(a.cluster(g).cl.size(), b.cluster(g).cl.size());
    }
    for (graph::NodeId v = 0; v < f.net.num_nodes(); ++v) {
      EXPECT_EQ(a.cluster_of(v), b.cluster_of(v));
      EXPECT_FLOAT_EQ(a.node_rt_m(v), b.node_rt_m(v));
    }
  }
}

TEST(IndexIo, LoadedIndexAnswersQueriesIdentically) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);
  MultiIndex loaded;
  std::string error;
  ASSERT_TRUE(ReadIndex(ss, f.net.num_nodes(), f.store->total_count(), &loaded,
                        &error))
      << error;

  const QueryEngine original(f.index.get(), f.store.get(), &f.sites);
  const QueryEngine restored(&loaded, f.store.get(), &f.sites);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  for (const double tau : {400.0, 800.0, 1600.0}) {
    QueryConfig config;
    config.k = 4;
    config.tau_m = tau;
    const QueryResult a = original.Tops(psi, config);
    const QueryResult b = restored.Tops(psi, config);
    EXPECT_EQ(a.selection.sites, b.selection.sites) << "tau " << tau;
    EXPECT_DOUBLE_EQ(a.selection.utility, b.selection.utility);
    EXPECT_EQ(a.instance_used, b.instance_used);
  }
}

TEST(IndexIo, LoadedIndexAbsorbsFurtherUpdates) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);
  MultiIndex loaded;
  std::string error;
  ASSERT_TRUE(ReadIndex(ss, f.net.num_nodes(), f.store->total_count(), &loaded,
                        &error))
      << error;
  const traj::TrajId t = f.store->Add({0, 1, 2, 12, 13});
  loaded.AddTrajectory(*f.store, t);
  for (size_t p = 0; p < loaded.num_instances(); ++p) {
    EXPECT_FALSE(loaded.instance(p).cluster_sequence(t).empty());
  }
}

// Satellite of the serving PR: persistence must round-trip an index that
// has absorbed dynamic updates (Sec. 6) since its build — the serving
// deployment saves whatever the update pipeline has produced.
TEST(IndexIo, RoundTripAfterDynamicUpdatesPreservesTopK) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  auto store = std::make_unique<traj::TrajectoryStore>(&net);
  test::FillRandomWalks(store.get(), 40, 4, 12, 71);
  // Sampled sites so a later AddSite introduces a genuinely new one.
  tops::SiteSet sites = tops::SiteSet::SampleNodes(net, 40, 5);
  MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 300.0;
  config.tau_max_m = 2500.0;
  MultiIndex index = MultiIndex::Build(*store, sites, config);

  // Dynamic updates after the build: adds, removes, and a new site.
  for (int i = 0; i < 8; ++i) {
    const traj::TrajId t = store->Add({0, 1, 2, 12, 22, 23});
    index.AddTrajectory(*store, t);
    if (i % 3 == 0) {
      index.RemoveTrajectory(t);
      store->Remove(t);
    }
  }
  index.RemoveTrajectory(5);  // a build-time trajectory
  store->Remove(5);
  graph::NodeId fresh_node = 0;
  while (sites.SiteAtNode(fresh_node) != tops::kInvalidSite) ++fresh_node;
  const tops::SiteId fresh_site = sites.Add(fresh_node);
  index.AddSite(*store, sites, fresh_site);

  std::stringstream ss;
  WriteIndex(index, ss);
  MultiIndex loaded;
  std::string error;
  ASSERT_TRUE(ReadIndex(ss, net.num_nodes(), store->total_count(), &loaded,
                        &error))
      << error;

  // Identical TopK on the updated original and the loaded copy.
  const QueryEngine original(&index, store.get(), &sites);
  const QueryEngine reloaded(&loaded, store.get(), &sites);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  for (const double tau : {500.0, 900.0, 1500.0}) {
    QueryConfig qc;
    qc.k = 5;
    qc.tau_m = tau;
    const QueryResult a = original.Tops(psi, qc);
    const QueryResult b = reloaded.Tops(psi, qc);
    EXPECT_EQ(a.selection.sites, b.selection.sites) << "tau " << tau;
    EXPECT_EQ(a.selection.utility, b.selection.utility) << "tau " << tau;
    EXPECT_EQ(a.selection.marginal_gains, b.selection.marginal_gains);
  }
}

TEST(IndexIo, RejectsCorpusMismatch) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);
  MultiIndex loaded;
  std::string error;
  EXPECT_FALSE(ReadIndex(ss, f.net.num_nodes() + 5, f.store->total_count(),
                         &loaded, &error));
  EXPECT_NE(error.find("nodes"), std::string::npos);
}

TEST(IndexIo, RejectsMalformedInput) {
  MultiIndex loaded;
  std::string error;
  std::stringstream empty("");
  EXPECT_FALSE(ReadIndex(empty, 10, 10, &loaded, &error));
  std::stringstream bad_header("bogus v1\n");
  EXPECT_FALSE(ReadIndex(bad_header, 10, 10, &loaded, &error));
  std::stringstream truncated("netclus-index v1\nmeta 0.75 300 2500 1.0 3\n");
  EXPECT_FALSE(ReadIndex(truncated, 10, 10, &loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(IndexIo, FileRoundTrip) {
  Fixture f;
  const std::string path = "/tmp/netclus_index_io_test.idx";
  std::string error;
  ASSERT_TRUE(SaveIndex(*f.index, path, &error)) << error;
  MultiIndex loaded;
  ASSERT_TRUE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                        &loaded, &error))
      << error;
  EXPECT_EQ(loaded.num_instances(), f.index->num_instances());
  std::remove(path.c_str());
}

// --- v1 hardening ----------------------------------------------------------

// A file cut off mid-stream must fail with an error, never yield a
// partially-initialized index (the old reader's silent stream failure) or
// crash.
TEST(IndexIo, TruncatedV1FailsCleanly) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);
  const std::string full = ss.str();
  for (const double fraction : {0.1, 0.25, 0.5, 0.75, 0.95}) {
    const size_t cut = static_cast<size_t>(full.size() * fraction);
    std::stringstream truncated(full.substr(0, cut));
    MultiIndex loaded;
    std::string error;
    EXPECT_FALSE(ReadIndex(truncated, f.net.num_nodes(),
                           f.store->total_count(), &loaded, &error))
        << "cut at " << cut;
    EXPECT_FALSE(error.empty());
  }
}

// A corrupt length field must fail fast instead of driving a huge
// allocation (resize bomb) before the stream runs dry.
TEST(IndexIo, AbsurdCountsV1Fail) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);
  std::string text = ss.str();
  const size_t pos = text.find("node_cluster ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("node_cluster 100").size(),
               "node_cluster 99999999999999");
  std::stringstream corrupt(text);
  MultiIndex loaded;
  std::string error;
  EXPECT_FALSE(ReadIndex(corrupt, f.net.num_nodes(), f.store->total_count(),
                         &loaded, &error));
  EXPECT_FALSE(error.empty());
}

// Ids planted out of range in a structurally-valid file must be rejected
// at load, not fault at query time: a CL entry referencing a nonexistent
// cluster is the query engine's unchecked `instance.cluster(nb.cluster)`.
TEST(IndexIo, OutOfRangeClClusterIdFails) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);
  std::string text = ss.str();
  // Find a non-empty cl list and corrupt its first cluster id.
  size_t pos = 0;
  size_t edit = std::string::npos;
  while ((pos = text.find("\n cl ", pos)) != std::string::npos) {
    const size_t count_begin = pos + 5;
    const size_t count_end = text.find_first_of(" \n", count_begin);
    ASSERT_NE(count_end, std::string::npos);
    if (text[count_end] == ' ' &&
        text.substr(count_begin, count_end - count_begin) != "0") {
      edit = count_end + 1;  // first cl entry's cluster id
      break;
    }
    pos = count_begin;
  }
  ASSERT_NE(edit, std::string::npos) << "no non-empty cl list in fixture";
  const size_t id_end = text.find(' ', edit);
  text.replace(edit, id_end - edit, "999999");
  std::stringstream corrupt(text);
  MultiIndex loaded;
  std::string error;
  EXPECT_FALSE(ReadIndex(corrupt, f.net.num_nodes(), f.store->total_count(),
                         &loaded, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

// Duplicate trajectory ids inside one TL list would corrupt TlList's
// live-entry accounting after a RemoveTrajectory (tombstones hide every
// occurrence but are counted once) — the loader must reject them.
TEST(IndexIo, DuplicateTlEntryFails) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);
  std::string text = ss.str();
  // Find a non-empty tl list, duplicate its first entry, bump the count.
  size_t pos = 0;
  size_t count_begin = std::string::npos, count_end = std::string::npos;
  while ((pos = text.find("\n tl ", pos)) != std::string::npos) {
    count_begin = pos + 5;
    count_end = text.find_first_of(" \n", count_begin);
    ASSERT_NE(count_end, std::string::npos);
    if (text[count_end] == ' ' &&
        text.substr(count_begin, count_end - count_begin) != "0") {
      break;
    }
    pos = count_begin;
    count_begin = std::string::npos;
  }
  ASSERT_NE(count_begin, std::string::npos) << "no non-empty tl in fixture";
  const size_t traj_end = text.find(' ', count_end + 1);
  const size_t dr_end = text.find_first_of(" \n", traj_end + 1);
  const std::string entry = text.substr(count_end, dr_end - count_end);
  text.insert(dr_end, entry);  // " traj dr" duplicated
  const unsigned long count =
      std::stoul(text.substr(count_begin, count_end - count_begin));
  text.replace(count_begin, count_end - count_begin,
               std::to_string(count + 1));

  std::stringstream corrupt(text);
  MultiIndex loaded;
  std::string error;
  EXPECT_FALSE(ReadIndex(corrupt, f.net.num_nodes(), f.store->total_count(),
                         &loaded, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

// --- v2 binary format ------------------------------------------------------

void ExpectIndexesEquivalent(const MultiIndex& a, const MultiIndex& b) {
  ASSERT_EQ(a.num_instances(), b.num_instances());
  EXPECT_EQ(a.tau_min_m(), b.tau_min_m());
  EXPECT_EQ(a.tau_max_m(), b.tau_max_m());
  for (size_t p = 0; p < a.num_instances(); ++p) {
    const ClusterIndex& x = a.instance(p);
    const ClusterIndex& y = b.instance(p);
    ASSERT_EQ(x.num_clusters(), y.num_clusters()) << "instance " << p;
    ASSERT_EQ(x.num_nodes(), y.num_nodes());
    ASSERT_EQ(x.num_sequences(), y.num_sequences());
    EXPECT_EQ(x.radius_m(), y.radius_m());
    for (uint32_t g = 0; g < x.num_clusters(); ++g) {
      EXPECT_EQ(x.cluster(g).center, y.cluster(g).center);
      EXPECT_EQ(x.cluster(g).representative, y.cluster(g).representative);
      EXPECT_EQ(x.cluster(g).rep_rt_m, y.cluster(g).rep_rt_m);
      EXPECT_EQ(x.cluster(g).sites, y.cluster(g).sites);
      ASSERT_EQ(x.cluster(g).tl.size(), y.cluster(g).tl.size());
      auto yi = y.cluster(g).tl.begin();
      for (const TlEntry& e : x.cluster(g).tl) {
        EXPECT_EQ(e.traj, yi->traj);
        EXPECT_EQ(e.dr_m, yi->dr_m);
        ++yi;
      }
      ASSERT_EQ(x.cluster(g).cl.size(), y.cluster(g).cl.size());
      for (size_t i = 0; i < x.cluster(g).cl.size(); ++i) {
        EXPECT_EQ(x.cluster(g).cl[i].cluster, y.cluster(g).cl[i].cluster);
        EXPECT_EQ(x.cluster(g).cl[i].dr_m, y.cluster(g).cl[i].dr_m);
      }
    }
    for (graph::NodeId v = 0; v < x.num_nodes(); ++v) {
      EXPECT_EQ(x.cluster_of(v), y.cluster_of(v));
      EXPECT_EQ(x.node_rt_m(v), y.node_rt_m(v));
    }
    for (traj::TrajId t = 0; t < x.num_sequences(); ++t) {
      EXPECT_EQ(x.cluster_sequence(t), y.cluster_sequence(t));
    }
  }
}

// v1 -> v2 -> v1: the binary format is lossless, so re-serializing the
// reloaded index to text reproduces the original text byte for byte.
TEST(IndexIoV2, V1ToV2ToV1IsLossless) {
  Fixture f;
  std::stringstream v1_text;
  WriteIndex(*f.index, v1_text);

  const std::string path = "/tmp/netclus_index_v2_roundtrip.idx";
  std::string error;
  ASSERT_TRUE(SaveIndex(*f.index, path, &error, IndexFileFormat::kBinaryV2))
      << error;
  MultiIndex reloaded;
  ASSERT_TRUE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                        &reloaded, &error))
      << error;
  ExpectIndexesEquivalent(*f.index, reloaded);

  std::stringstream v1_again;
  WriteIndex(reloaded, v1_again);
  EXPECT_EQ(v1_text.str(), v1_again.str());
  std::remove(path.c_str());
}

// mmap and copy loads must produce indexes that answer bit-identically
// (and identically to the in-memory index they came from).
TEST(IndexIoV2, MmapAndCopyLoadsAnswerIdentically) {
  Fixture f;
  const std::string path = "/tmp/netclus_index_v2_mmap.idx";
  std::string error;
  ASSERT_TRUE(SaveIndex(*f.index, path, &error)) << error;

  MultiIndex copy_loaded, mmap_loaded;
  ASSERT_TRUE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                        &copy_loaded, &error, nullptr, nullptr,
                        IndexLoadMode::kCopy))
      << error;
  ASSERT_TRUE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                        &mmap_loaded, &error, nullptr, nullptr,
                        IndexLoadMode::kMmap))
      << error;
  ExpectIndexesEquivalent(copy_loaded, mmap_loaded);

  const QueryEngine original(f.index.get(), f.store.get(), &f.sites);
  const QueryEngine via_copy(&copy_loaded, f.store.get(), &f.sites);
  const QueryEngine via_mmap(&mmap_loaded, f.store.get(), &f.sites);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  for (const double tau : {400.0, 800.0, 1600.0}) {
    QueryConfig config;
    config.k = 4;
    config.tau_m = tau;
    const QueryResult a = original.Tops(psi, config);
    const QueryResult b = via_copy.Tops(psi, config);
    const QueryResult c = via_mmap.Tops(psi, config);
    EXPECT_EQ(a.selection.sites, b.selection.sites) << "tau " << tau;
    EXPECT_EQ(a.selection.sites, c.selection.sites) << "tau " << tau;
    EXPECT_EQ(a.selection.utility, b.selection.utility);
    EXPECT_EQ(a.selection.utility, c.selection.utility);
    EXPECT_EQ(a.selection.marginal_gains, c.selection.marginal_gains);
  }
  std::remove(path.c_str());
}

// A v2 index that absorbed dynamic updates saves its live state
// (overlays + tombstones folded in) and keeps answering identically.
TEST(IndexIoV2, RoundTripAfterDynamicUpdates) {
  Fixture f;
  for (int i = 0; i < 6; ++i) {
    const traj::TrajId t = f.store->Add({0, 1, 2, 12, 22});
    f.index->AddTrajectory(*f.store, t);
    if (i % 2 == 0) {
      f.index->RemoveTrajectory(t);
      f.store->Remove(t);
    }
  }
  f.index->RemoveTrajectory(7);
  f.store->Remove(7);

  const std::string path = "/tmp/netclus_index_v2_updates.idx";
  std::string error;
  ASSERT_TRUE(SaveIndex(*f.index, path, &error)) << error;
  MultiIndex loaded;
  ASSERT_TRUE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                        &loaded, &error))
      << error;
  ExpectIndexesEquivalent(*f.index, loaded);
  std::remove(path.c_str());
}

TEST(IndexIoV2, TruncatedFileFails) {
  Fixture f;
  const std::vector<uint8_t> image = EncodeIndexV2(*f.index, nullptr);
  const std::string path = "/tmp/netclus_index_v2_trunc.idx";
  for (const double fraction : {0.05, 0.3, 0.6, 0.9, 0.999}) {
    const size_t cut = static_cast<size_t>(image.size() * fraction);
    {
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(image.data()),
                static_cast<std::streamsize>(cut));
    }
    MultiIndex loaded;
    std::string error;
    EXPECT_FALSE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                           &loaded, &error))
        << "cut at " << cut;
    EXPECT_FALSE(error.empty());
  }
  std::remove(path.c_str());
}

TEST(IndexIoV2, CorruptPayloadFailsChecksum) {
  Fixture f;
  std::vector<uint8_t> image = EncodeIndexV2(*f.index, nullptr);
  image[image.size() / 2] ^= 0x40;  // flip one bit mid-file
  const std::string path = "/tmp/netclus_index_v2_corrupt.idx";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
  }
  MultiIndex loaded;
  std::string error;
  EXPECT_FALSE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                         &loaded, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(IndexIoV2, RejectsCorpusMismatch) {
  Fixture f;
  const std::string path = "/tmp/netclus_index_v2_mismatch.idx";
  std::string error;
  ASSERT_TRUE(SaveIndex(*f.index, path, &error)) << error;
  MultiIndex loaded;
  EXPECT_FALSE(LoadIndex(path, f.net.num_nodes() + 3, f.store->total_count(),
                         &loaded, &error));
  EXPECT_NE(error.find("nodes"), std::string::npos);
  std::remove(path.c_str());
}

// --- v3 binary format (blocked postings + Elias-Fano offsets) --------------

// SaveIndex defaults to v3 and stamps the v3 magic; both binary magics
// sniff as binary images.
TEST(IndexIoV3, DefaultFormatIsV3) {
  Fixture f;
  const std::string path = "/tmp/netclus_index_v3_default.idx";
  std::string error;
  ASSERT_TRUE(SaveIndex(*f.index, path, &error)) << error;
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  EXPECT_EQ(std::string(magic, 8), "NCIXBIN3");
  EXPECT_TRUE(IsBinaryIndexImage(reinterpret_cast<const uint8_t*>(magic), 8));

  const std::vector<uint8_t> v2 = EncodeIndexV2(*f.index, nullptr);
  EXPECT_TRUE(IsBinaryIndexImage(v2.data(), v2.size()));
  EXPECT_EQ(std::memcmp(v2.data(), "NCIXBIN2", 8), 0);
  std::remove(path.c_str());
}

// v2 -> load -> v3 -> load: both containers carry identical logical
// state, so a chain through both formats lands back on the original
// text serialization byte for byte.
TEST(IndexIoV3, V2ToV3RoundTripIsLossless) {
  Fixture f;
  std::stringstream v1_text;
  WriteIndex(*f.index, v1_text);

  const std::string v2_path = "/tmp/netclus_index_v3_chain_a.idx";
  const std::string v3_path = "/tmp/netclus_index_v3_chain_b.idx";
  std::string error;
  ASSERT_TRUE(SaveIndex(*f.index, v2_path, &error, IndexFileFormat::kBinaryV2))
      << error;
  MultiIndex via_v2;
  ASSERT_TRUE(LoadIndex(v2_path, f.net.num_nodes(), f.store->total_count(),
                        &via_v2, &error))
      << error;
  ASSERT_TRUE(SaveIndex(via_v2, v3_path, &error, IndexFileFormat::kBinaryV3))
      << error;
  MultiIndex via_v3;
  ASSERT_TRUE(LoadIndex(v3_path, f.net.num_nodes(), f.store->total_count(),
                        &via_v3, &error))
      << error;
  ExpectIndexesEquivalent(*f.index, via_v3);

  std::stringstream v1_again;
  WriteIndex(via_v3, v1_again);
  EXPECT_EQ(v1_text.str(), v1_again.str());

  // And back down: a v3-loaded index re-saves as v2 losslessly (the
  // writer re-encodes blocked arenas into flat ones).
  ASSERT_TRUE(SaveIndex(via_v3, v2_path, &error, IndexFileFormat::kBinaryV2))
      << error;
  MultiIndex down;
  ASSERT_TRUE(LoadIndex(v2_path, f.net.num_nodes(), f.store->total_count(),
                        &down, &error))
      << error;
  ExpectIndexesEquivalent(*f.index, down);
  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
}

// copy load, mmap load, and mmap load under a page budget smaller than
// the index file must all answer bit-identically.
TEST(IndexIoV3, MmapCopyAndPageBudgetAnswerIdentically) {
  Fixture f;
  const std::string path = "/tmp/netclus_index_v3_mmap.idx";
  std::string error;
  ASSERT_TRUE(SaveIndex(*f.index, path, &error, IndexFileFormat::kBinaryV3))
      << error;

  MultiIndex copy_loaded, mmap_loaded, budget_loaded;
  ASSERT_TRUE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                        &copy_loaded, &error, nullptr, nullptr,
                        IndexLoadMode::kCopy))
      << error;
  ASSERT_TRUE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                        &mmap_loaded, &error, nullptr, nullptr,
                        IndexLoadMode::kMmap))
      << error;
  setenv("NETCLUS_PAGE_BUDGET", "64k", 1);
  ASSERT_TRUE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                        &budget_loaded, &error, nullptr, nullptr,
                        IndexLoadMode::kMmap))
      << error;
  unsetenv("NETCLUS_PAGE_BUDGET");
  ExpectIndexesEquivalent(copy_loaded, mmap_loaded);
  ExpectIndexesEquivalent(copy_loaded, budget_loaded);

  const QueryEngine original(f.index.get(), f.store.get(), &f.sites);
  const QueryEngine via_mmap(&mmap_loaded, f.store.get(), &f.sites);
  const QueryEngine via_budget(&budget_loaded, f.store.get(), &f.sites);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  for (const double tau : {400.0, 800.0, 1600.0}) {
    QueryConfig config;
    config.k = 4;
    config.tau_m = tau;
    const QueryResult a = original.Tops(psi, config);
    const QueryResult b = via_mmap.Tops(psi, config);
    const QueryResult c = via_budget.Tops(psi, config);
    EXPECT_EQ(a.selection.sites, b.selection.sites) << "tau " << tau;
    EXPECT_EQ(a.selection.sites, c.selection.sites) << "tau " << tau;
    EXPECT_EQ(a.selection.utility, b.selection.utility);
    EXPECT_EQ(a.selection.utility, c.selection.utility);
    EXPECT_EQ(a.selection.marginal_gains, c.selection.marginal_gains);
  }
  std::remove(path.c_str());
}

// A v3 index that absorbed dynamic updates saves its live state and
// reloads identically (the writer re-freezes overlays into blocks).
TEST(IndexIoV3, RoundTripAfterDynamicUpdates) {
  Fixture f;
  for (int i = 0; i < 6; ++i) {
    const traj::TrajId t = f.store->Add({0, 1, 2, 12, 22});
    f.index->AddTrajectory(*f.store, t);
    if (i % 2 == 0) {
      f.index->RemoveTrajectory(t);
      f.store->Remove(t);
    }
  }
  f.index->RemoveTrajectory(7);
  f.store->Remove(7);

  const std::string path = "/tmp/netclus_index_v3_updates.idx";
  std::string error;
  ASSERT_TRUE(SaveIndex(*f.index, path, &error, IndexFileFormat::kBinaryV3))
      << error;
  MultiIndex loaded;
  ASSERT_TRUE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                        &loaded, &error))
      << error;
  ExpectIndexesEquivalent(*f.index, loaded);
  std::remove(path.c_str());
}

TEST(IndexIoV3, TruncatedAndCorruptFilesFail) {
  Fixture f;
  std::vector<uint8_t> image = EncodeIndexV3(*f.index, nullptr);
  const std::string path = "/tmp/netclus_index_v3_corrupt.idx";
  for (const double fraction : {0.05, 0.3, 0.6, 0.9, 0.999}) {
    const size_t cut = static_cast<size_t>(image.size() * fraction);
    {
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(image.data()),
                static_cast<std::streamsize>(cut));
    }
    MultiIndex loaded;
    std::string error;
    EXPECT_FALSE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                           &loaded, &error))
        << "cut at " << cut;
    EXPECT_FALSE(error.empty());
  }
  {
    std::vector<uint8_t> flipped = image;
    flipped[flipped.size() / 2] ^= 0x40;
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(flipped.data()),
              static_cast<std::streamsize>(flipped.size()));
  }
  MultiIndex loaded;
  std::string error;
  EXPECT_FALSE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                         &loaded, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

// A header whose version field disagrees with its magic is corrupt, not
// a future format: v3 magic + version 2 must be rejected up front.
TEST(IndexIoV3, MagicVersionMismatchFails) {
  Fixture f;
  std::vector<uint8_t> image = EncodeIndexV3(*f.index, nullptr);
  const uint32_t v2 = 2;
  std::memcpy(image.data() + 12, &v2, sizeof(v2));  // magic(8) + endian(4)
  const std::string path = "/tmp/netclus_index_v3_vmismatch.idx";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
  }
  MultiIndex loaded;
  std::string error;
  EXPECT_FALSE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                         &loaded, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netclus::index
