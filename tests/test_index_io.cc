#include <sstream>

#include "gtest/gtest.h"
#include "netclus/index_io.h"
#include "netclus/query.h"
#include "test_helpers.h"
#include "tops/site_set.h"

namespace netclus::index {
namespace {

struct Fixture {
  graph::RoadNetwork net;
  std::unique_ptr<traj::TrajectoryStore> store;
  tops::SiteSet sites;
  std::unique_ptr<MultiIndex> index;

  explicit Fixture(uint64_t seed = 71) {
    net = test::MakeGridNetwork(10, 10, 100.0);
    store = std::make_unique<traj::TrajectoryStore>(&net);
    test::FillRandomWalks(store.get(), 40, 4, 12, seed);
    sites = tops::SiteSet::AllNodes(net);
    MultiIndexConfig config;
    config.gamma = 0.75;
    config.tau_min_m = 300.0;
    config.tau_max_m = 2500.0;
    index = std::make_unique<MultiIndex>(
        MultiIndex::Build(*store, sites, config));
  }
};

TEST(IndexIo, RoundTripPreservesStructure) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);

  MultiIndex loaded;
  std::string error;
  ASSERT_TRUE(ReadIndex(ss, f.net.num_nodes(), f.store->total_count(), &loaded,
                        &error))
      << error;
  ASSERT_EQ(loaded.num_instances(), f.index->num_instances());
  EXPECT_DOUBLE_EQ(loaded.tau_min_m(), f.index->tau_min_m());
  EXPECT_DOUBLE_EQ(loaded.tau_max_m(), f.index->tau_max_m());
  for (size_t p = 0; p < loaded.num_instances(); ++p) {
    const ClusterIndex& a = f.index->instance(p);
    const ClusterIndex& b = loaded.instance(p);
    ASSERT_EQ(a.num_clusters(), b.num_clusters()) << "instance " << p;
    EXPECT_DOUBLE_EQ(a.radius_m(), b.radius_m());
    for (uint32_t g = 0; g < a.num_clusters(); ++g) {
      EXPECT_EQ(a.cluster(g).center, b.cluster(g).center);
      EXPECT_EQ(a.cluster(g).representative, b.cluster(g).representative);
      EXPECT_EQ(a.cluster(g).tl.size(), b.cluster(g).tl.size());
      EXPECT_EQ(a.cluster(g).cl.size(), b.cluster(g).cl.size());
    }
    for (graph::NodeId v = 0; v < f.net.num_nodes(); ++v) {
      EXPECT_EQ(a.cluster_of(v), b.cluster_of(v));
      EXPECT_FLOAT_EQ(a.node_rt_m(v), b.node_rt_m(v));
    }
  }
}

TEST(IndexIo, LoadedIndexAnswersQueriesIdentically) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);
  MultiIndex loaded;
  std::string error;
  ASSERT_TRUE(ReadIndex(ss, f.net.num_nodes(), f.store->total_count(), &loaded,
                        &error))
      << error;

  const QueryEngine original(f.index.get(), f.store.get(), &f.sites);
  const QueryEngine restored(&loaded, f.store.get(), &f.sites);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  for (const double tau : {400.0, 800.0, 1600.0}) {
    QueryConfig config;
    config.k = 4;
    config.tau_m = tau;
    const QueryResult a = original.Tops(psi, config);
    const QueryResult b = restored.Tops(psi, config);
    EXPECT_EQ(a.selection.sites, b.selection.sites) << "tau " << tau;
    EXPECT_DOUBLE_EQ(a.selection.utility, b.selection.utility);
    EXPECT_EQ(a.instance_used, b.instance_used);
  }
}

TEST(IndexIo, LoadedIndexAbsorbsFurtherUpdates) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);
  MultiIndex loaded;
  std::string error;
  ASSERT_TRUE(ReadIndex(ss, f.net.num_nodes(), f.store->total_count(), &loaded,
                        &error))
      << error;
  const traj::TrajId t = f.store->Add({0, 1, 2, 12, 13});
  loaded.AddTrajectory(*f.store, t);
  for (size_t p = 0; p < loaded.num_instances(); ++p) {
    EXPECT_FALSE(loaded.instance(p).cluster_sequence(t).empty());
  }
}

// Satellite of the serving PR: persistence must round-trip an index that
// has absorbed dynamic updates (Sec. 6) since its build — the serving
// deployment saves whatever the update pipeline has produced.
TEST(IndexIo, RoundTripAfterDynamicUpdatesPreservesTopK) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  auto store = std::make_unique<traj::TrajectoryStore>(&net);
  test::FillRandomWalks(store.get(), 40, 4, 12, 71);
  // Sampled sites so a later AddSite introduces a genuinely new one.
  tops::SiteSet sites = tops::SiteSet::SampleNodes(net, 40, 5);
  MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 300.0;
  config.tau_max_m = 2500.0;
  MultiIndex index = MultiIndex::Build(*store, sites, config);

  // Dynamic updates after the build: adds, removes, and a new site.
  for (int i = 0; i < 8; ++i) {
    const traj::TrajId t = store->Add({0, 1, 2, 12, 22, 23});
    index.AddTrajectory(*store, t);
    if (i % 3 == 0) {
      index.RemoveTrajectory(t);
      store->Remove(t);
    }
  }
  index.RemoveTrajectory(5);  // a build-time trajectory
  store->Remove(5);
  graph::NodeId fresh_node = 0;
  while (sites.SiteAtNode(fresh_node) != tops::kInvalidSite) ++fresh_node;
  const tops::SiteId fresh_site = sites.Add(fresh_node);
  index.AddSite(*store, sites, fresh_site);

  std::stringstream ss;
  WriteIndex(index, ss);
  MultiIndex loaded;
  std::string error;
  ASSERT_TRUE(ReadIndex(ss, net.num_nodes(), store->total_count(), &loaded,
                        &error))
      << error;

  // Identical TopK on the updated original and the loaded copy.
  const QueryEngine original(&index, store.get(), &sites);
  const QueryEngine reloaded(&loaded, store.get(), &sites);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  for (const double tau : {500.0, 900.0, 1500.0}) {
    QueryConfig qc;
    qc.k = 5;
    qc.tau_m = tau;
    const QueryResult a = original.Tops(psi, qc);
    const QueryResult b = reloaded.Tops(psi, qc);
    EXPECT_EQ(a.selection.sites, b.selection.sites) << "tau " << tau;
    EXPECT_EQ(a.selection.utility, b.selection.utility) << "tau " << tau;
    EXPECT_EQ(a.selection.marginal_gains, b.selection.marginal_gains);
  }
}

TEST(IndexIo, RejectsCorpusMismatch) {
  Fixture f;
  std::stringstream ss;
  WriteIndex(*f.index, ss);
  MultiIndex loaded;
  std::string error;
  EXPECT_FALSE(ReadIndex(ss, f.net.num_nodes() + 5, f.store->total_count(),
                         &loaded, &error));
  EXPECT_NE(error.find("nodes"), std::string::npos);
}

TEST(IndexIo, RejectsMalformedInput) {
  MultiIndex loaded;
  std::string error;
  std::stringstream empty("");
  EXPECT_FALSE(ReadIndex(empty, 10, 10, &loaded, &error));
  std::stringstream bad_header("bogus v1\n");
  EXPECT_FALSE(ReadIndex(bad_header, 10, 10, &loaded, &error));
  std::stringstream truncated("netclus-index v1\nmeta 0.75 300 2500 1.0 3\n");
  EXPECT_FALSE(ReadIndex(truncated, 10, 10, &loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(IndexIo, FileRoundTrip) {
  Fixture f;
  const std::string path = "/tmp/netclus_index_io_test.idx";
  std::string error;
  ASSERT_TRUE(SaveIndex(*f.index, path, &error)) << error;
  MultiIndex loaded;
  ASSERT_TRUE(LoadIndex(path, f.net.num_nodes(), f.store->total_count(),
                        &loaded, &error))
      << error;
  EXPECT_EQ(loaded.num_instances(), f.index->num_instances());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netclus::index
