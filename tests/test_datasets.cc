#include "data/datasets.h"
#include "graph/scc.h"
#include "gtest/gtest.h"

namespace netclus::data {
namespace {

class CatalogTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CatalogTest, SmallScaleDatasetIsWellFormed) {
  Dataset d = MakeByName(GetParam(), 0.05);
  EXPECT_EQ(d.name, GetParam());
  EXPECT_GT(d.num_nodes(), 10u);
  EXPECT_GT(d.num_trajectories(), 0u);
  EXPECT_GT(d.num_sites(), 0u);
  EXPECT_LE(d.num_sites(), d.num_nodes());
  uint32_t components = 0;
  graph::StronglyConnectedComponents(*d.network, &components);
  EXPECT_EQ(components, 1u);
  // Every trajectory node is a valid node.
  for (traj::TrajId t = 0; t < d.store->total_count(); ++t) {
    for (graph::NodeId v : d.store->trajectory(t).nodes()) {
      EXPECT_LT(v, d.num_nodes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, CatalogTest,
                         ::testing::Values("beijing-small", "beijing-lite",
                                           "newyork", "atlanta", "bangalore"));

TEST(Catalog, DeterministicAcrossCalls) {
  Dataset a = MakeBeijingSmall(0.2);
  Dataset b = MakeBeijingSmall(0.2);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_trajectories(), b.num_trajectories());
  for (traj::TrajId t = 0; t < a.store->total_count(); ++t) {
    EXPECT_EQ(a.store->trajectory(t).nodes(), b.store->trajectory(t).nodes());
  }
  EXPECT_EQ(a.sites.nodes(), b.sites.nodes());
}

TEST(Catalog, ScaleGrowsTheDataset) {
  Dataset small = MakeBeijingSmall(0.1);
  Dataset large = MakeBeijingSmall(0.5);
  EXPECT_LT(small.num_nodes(), large.num_nodes());
  EXPECT_LT(small.num_trajectories(), large.num_trajectories());
}

TEST(Catalog, UnknownNameDies) {
  EXPECT_DEATH(MakeByName("mars", 1.0), "unknown dataset");
}

TEST(Catalog, LengthClassedTrajectoriesHonorWindow) {
  Dataset d = MakeBeijingLite(0.08);
  const auto ids = AddTrajectoriesWithLength(&d, 20, 2000.0, 3000.0, 5);
  EXPECT_GT(ids.size(), 0u);
  for (traj::TrajId t : ids) {
    const double len = d.store->trajectory(t).LengthMeters();
    EXPECT_GE(len, 1500.0);
    EXPECT_LE(len, 3600.0);
  }
}

}  // namespace
}  // namespace netclus::data
