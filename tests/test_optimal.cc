#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "test_helpers.h"
#include "tops/coverage.h"
#include "tops/inc_greedy.h"
#include "tops/optimal.h"
#include "util/rng.h"

namespace netclus::tops {
namespace {

// Exhaustive reference: enumerate all k-subsets (tiny instances only).
double BruteForceOptimum(const CoverageIndex& cov, const PreferenceFunction& psi,
                         uint32_t k) {
  const size_t n = cov.num_sites();
  std::vector<SiteId> subset(k);
  double best = 0.0;
  // Iterative combination enumeration.
  std::vector<uint32_t> idx(k);
  for (uint32_t i = 0; i < k; ++i) idx[i] = i;
  if (k > n) return 0.0;
  while (true) {
    for (uint32_t i = 0; i < k; ++i) subset[i] = idx[i];
    best = std::max(best, UtilityOf(cov, psi, subset));
    // next combination
    int pos = static_cast<int>(k) - 1;
    while (pos >= 0 && idx[pos] == n - k + pos) --pos;
    if (pos < 0) break;
    ++idx[pos];
    for (uint32_t j = pos + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
  return best;
}

// A CoverageIndex is self-contained after Build, so the network and store
// can be scoped to this helper.
CoverageIndex RandomInstance(uint64_t seed, uint32_t num_sites,
                             uint32_t num_trajs) {
  graph::RoadNetwork net = test::MakeRandomNetwork(30, seed);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, num_trajs, 3, 7, seed + 1);
  SiteSet sites = SiteSet::SampleNodes(net, num_sites, seed + 2);
  CoverageConfig cc;
  cc.tau_m = 700.0;
  return CoverageIndex::Build(store, sites, cc);
}

class OptimalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimalProperty, MatchesBruteForceOnTinyInstances) {
  const CoverageIndex cov = RandomInstance(GetParam(), 8, 15);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  for (uint32_t k = 1; k <= 4; ++k) {
    OptimalConfig config;
    config.k = k;
    const OptimalResult got = SolveOptimal(cov, psi, config);
    ASSERT_TRUE(got.proven_optimal);
    EXPECT_NEAR(got.selection.utility, BruteForceOptimum(cov, psi, k), 1e-9)
        << "k=" << k;
  }
}

TEST_P(OptimalProperty, MatchesBruteForceWithLinearPreference) {
  const CoverageIndex cov = RandomInstance(GetParam() + 50, 7, 12);
  const PreferenceFunction psi = PreferenceFunction::Linear();
  OptimalConfig config;
  config.k = 3;
  const OptimalResult got = SolveOptimal(cov, psi, config);
  ASSERT_TRUE(got.proven_optimal);
  EXPECT_NEAR(got.selection.utility, BruteForceOptimum(cov, psi, 3), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalProperty, ::testing::Values(1, 7, 42));

TEST(Optimal, AlwaysAtLeastGreedy) {
  const CoverageIndex cov = RandomInstance(1234, 15, 40);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  GreedyConfig gc;
  gc.k = 5;
  const Selection greedy = IncGreedy(cov, psi, gc);
  OptimalConfig oc;
  oc.k = 5;
  const OptimalResult optimal = SolveOptimal(cov, psi, oc);
  EXPECT_GE(optimal.selection.utility, greedy.utility - 1e-9);
}

TEST(Optimal, UtilityMonotoneInK) {
  const CoverageIndex cov = RandomInstance(555, 10, 25);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  double prev = 0.0;
  for (uint32_t k = 1; k <= 5; ++k) {
    OptimalConfig config;
    config.k = k;
    const OptimalResult got = SolveOptimal(cov, psi, config);
    EXPECT_GE(got.selection.utility, prev - 1e-9);
    prev = got.selection.utility;
  }
}

TEST(Optimal, TimeLimitProducesAnytimeResult) {
  const CoverageIndex cov = RandomInstance(777, 25, 60);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  OptimalConfig config;
  config.k = 8;
  config.time_limit_s = 0.0;  // immediate timeout
  const OptimalResult got = SolveOptimal(cov, psi, config);
  // Still returns the greedy warm start as incumbent.
  EXPECT_EQ(got.selection.sites.size(), 8u);
  EXPECT_GT(got.selection.utility, 0.0);
  EXPECT_GE(got.upper_bound, got.selection.utility - 1e-9);
}

TEST(Optimal, ReportsExploredNodes) {
  const CoverageIndex cov = RandomInstance(888, 10, 20);
  OptimalConfig config;
  config.k = 3;
  const OptimalResult got =
      SolveOptimal(cov, PreferenceFunction::Binary(), config);
  EXPECT_GT(got.nodes_explored, 0u);
}

}  // namespace
}  // namespace netclus::tops
