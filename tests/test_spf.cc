// Differential distance-oracle suite for the pluggable shortest-path
// subsystem (src/graph/spf/), plus the backend-equivalence end-to-end
// tests over the Engine API.
//
// The contract under test: every backend (bidirectional Dijkstra,
// Contraction Hierarchies) returns *bit-identical* distances to the plain
// Dijkstra oracle — on strongly connected city networks, on tie-heavy
// graphs with zero-weight edges, and on disconnected graphs with
// unreachable pairs. Seeds follow the replay convention of
// docs/testing.md (NETCLUS_TEST_SEED / NETCLUS_TEST_ROUNDS).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "api/engine.h"
#include "data/datasets.h"
#include "graph/dijkstra.h"
#include "graph/spf/bidirectional_dijkstra.h"
#include "graph/spf/contraction_hierarchy.h"
#include "graph/spf/distance_backend.h"
#include "gtest/gtest.h"
#include "test_helpers.h"
#include "traj/trip_generator.h"

namespace netclus {
namespace {

using graph::DijkstraEngine;
using graph::NodeId;
using graph::kInfDistance;
namespace spf = graph::spf;

constexpr uint64_t kSuiteSeedBase = 0x5bfbeefULL;

// Walks `path` and sums the lightest arc between consecutive nodes;
// returns kInfDistance on a broken path.
double PathLength(const graph::RoadNetwork& net,
                  const std::vector<NodeId>& path) {
  double total = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    double best = kInfDistance;
    for (const graph::Arc& arc : net.OutArcs(path[i])) {
      if (arc.to == path[i + 1]) best = std::min(best, double{arc.weight});
    }
    if (best == kInfDistance) return kInfDistance;
    total += best;
  }
  return total;
}

TEST(SpfDifferential, BackendNamesRoundTrip) {
  for (const spf::BackendKind kind :
       {spf::BackendKind::kDijkstra, spf::BackendKind::kBidirectional,
        spf::BackendKind::kContractionHierarchies}) {
    const auto parsed = spf::ParseBackendName(spf::BackendName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(spf::ParseBackendName("astar").has_value());
  EXPECT_EQ(spf::ResolveBackendKind(spf::BackendKind::kBidirectional),
            spf::BackendKind::kBidirectional);
}

// The headline differential: 50 seeded random graphs, 1k (s, t) pairs
// each, distances bit-identical across all three backends — including
// unreachable pairs (family 2) and zero-weight ties (families 1, 2).
TEST(SpfDifferential, PointToPointMatchesDijkstraOracle) {
  const size_t rounds = test::FuzzRounds(50);
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t seed = test::FuzzSeed(kSuiteSeedBase, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    const graph::RoadNetwork net = test::MakeSpfTestGraph(seed);
    DijkstraEngine oracle(&net);
    spf::BidirectionalQuery bidir(&net);
    const auto ch = spf::ContractionHierarchy::Build(&net);
    const auto ch_query = ch->MakeQuery();

    size_t unreachable = 0;
    for (const auto& [s, t] : test::MakeQueryPairs(net, 1000, seed)) {
      const double expected = oracle.PointToPoint(s, t);
      if (expected == kInfDistance) ++unreachable;
      // EXPECT_EQ, not EXPECT_NEAR: the contract is bit-identical.
      EXPECT_EQ(bidir.PointToPoint(s, t), expected) << "s=" << s << " t=" << t;
      EXPECT_EQ(ch_query->PointToPoint(s, t), expected)
          << "s=" << s << " t=" << t;
    }
    // Family 2 graphs are two islands: roughly half the pairs must have
    // exercised the unreachable code path.
    if (seed % 3 == 2) {
      EXPECT_GT(unreachable, 100u);
    }
  }
}

// One-to-many primitives: full searches, bounded searches, and bounded
// round trips agree node-for-node and bit-for-bit.
TEST(SpfDifferential, OneToManyMatchesDijkstraOracle) {
  const size_t rounds = test::FuzzRounds(12);
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t seed = test::FuzzSeed(kSuiteSeedBase + 1, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    const graph::RoadNetwork net = test::MakeSpfTestGraph(seed);
    DijkstraEngine oracle(&net);
    spf::BidirectionalQuery bidir(&net);
    const auto ch = spf::ContractionHierarchy::Build(&net);
    const auto ch_query = ch->MakeQuery();

    util::Rng rng(seed);
    for (int probe = 0; probe < 8; ++probe) {
      const auto source =
          static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
      const auto dir = probe % 2 == 0 ? graph::Direction::kForward
                                      : graph::Direction::kReverse;
      // Interleave a point-to-point on the same workspace: the
      // bidirectional search must not leave state (heap leftovers, stale
      // labels) that corrupts the batched one-to-many that follows.
      ch_query->PointToPoint(
          source, static_cast<NodeId>(rng.UniformInt(net.num_nodes())));
      // Full search: element-wise bit equality, unreachable included.
      const std::vector<double> expected_full = oracle.FullSearch(source, dir);
      EXPECT_EQ(bidir.FullSearch(source, dir), expected_full);
      EXPECT_EQ(ch_query->FullSearch(source, dir), expected_full);

      // Bounded search: same (node, distance) set. Settle order may
      // legitimately differ on zero-weight ties, so compare sorted.
      const double radius = rng.Uniform(200.0, 2500.0);
      auto by_node = [](std::vector<graph::Settled> settled) {
        std::sort(settled.begin(), settled.end(),
                  [](const graph::Settled& a, const graph::Settled& b) {
                    return a.node < b.node;
                  });
        return settled;
      };
      const auto expected_ball = by_node(oracle.BoundedSearch(source, radius, dir));
      for (spf::DistanceQuery* other :
           {static_cast<spf::DistanceQuery*>(&bidir), ch_query.get()}) {
        const auto ball = by_node(other->BoundedSearch(source, radius, dir));
        ASSERT_EQ(ball.size(), expected_ball.size());
        for (size_t i = 0; i < ball.size(); ++i) {
          EXPECT_EQ(ball[i].node, expected_ball[i].node);
          EXPECT_EQ(ball[i].distance, expected_ball[i].distance);
        }
      }

      // Bounded round trip: both backends must produce the identical
      // id-sorted (node, out, back) triples.
      const auto expected_rt = oracle.BoundedRoundTrip(source, radius);
      for (spf::DistanceQuery* other :
           {static_cast<spf::DistanceQuery*>(&bidir), ch_query.get()}) {
        const auto rt = other->BoundedRoundTrip(source, radius);
        ASSERT_EQ(rt.size(), expected_rt.size());
        for (size_t i = 0; i < rt.size(); ++i) {
          EXPECT_EQ(rt[i].node, expected_rt[i].node);
          EXPECT_EQ(rt[i].out_distance, expected_rt[i].out_distance);
          EXPECT_EQ(rt[i].back_distance, expected_rt[i].back_distance);
        }
      }
    }
  }
}

// ShortestPath: each backend may pick a different tie-equivalent route,
// but every returned path must be a real path of exactly the shortest
// length, and reachability must agree.
TEST(SpfDifferential, ShortestPathsAreValidAndOptimal) {
  const size_t rounds = test::FuzzRounds(10);
  for (size_t round = 0; round < rounds; ++round) {
    const uint64_t seed = test::FuzzSeed(kSuiteSeedBase + 2, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    const graph::RoadNetwork net = test::MakeSpfTestGraph(seed);
    DijkstraEngine oracle(&net);
    spf::BidirectionalQuery bidir(&net);
    const auto ch = spf::ContractionHierarchy::Build(&net);
    const auto ch_query = ch->MakeQuery();

    for (const auto& [s, t] : test::MakeQueryPairs(net, 60, seed)) {
      const double expected = oracle.PointToPoint(s, t);
      for (spf::DistanceQuery* backend :
           {static_cast<spf::DistanceQuery*>(&oracle),
            static_cast<spf::DistanceQuery*>(&bidir), ch_query.get()}) {
        const std::vector<NodeId> path = backend->ShortestPath(s, t);
        if (expected == kInfDistance) {
          EXPECT_TRUE(path.empty());
          continue;
        }
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.front(), s);
        EXPECT_EQ(path.back(), t);
        EXPECT_EQ(PathLength(net, path), expected);
      }
    }
  }
}

// CH serialization: the full hierarchy round-trips through the index-file
// backend section, and the loaded copy answers identically.
TEST(SpfDifferential, ContractionHierarchySerializationRoundTrips) {
  const uint64_t seed = test::FuzzSeed(kSuiteSeedBase + 3, 0);
  SCOPED_TRACE(test::SeedTrace(seed));
  const graph::RoadNetwork net = test::MakeSpfTestGraph(seed);
  const auto ch = spf::ContractionHierarchy::Build(&net);

  std::stringstream stream;
  ch->WriteTo(stream);
  std::unique_ptr<spf::ContractionHierarchy> loaded;
  std::string error;
  ASSERT_TRUE(spf::ContractionHierarchy::ReadFrom(stream, &net, &loaded, &error))
      << error;
  EXPECT_EQ(loaded->num_shortcuts(), ch->num_shortcuts());

  const auto original = ch->MakeQuery();
  const auto reloaded = loaded->MakeQuery();
  for (const auto& [s, t] : test::MakeQueryPairs(net, 200, seed)) {
    EXPECT_EQ(reloaded->PointToPoint(s, t), original->PointToPoint(s, t));
  }

  // A hierarchy for a different network must be rejected.
  const graph::RoadNetwork other = test::MakeLineNetwork(7);
  std::stringstream stream2;
  ch->WriteTo(stream2);
  EXPECT_FALSE(
      spf::ContractionHierarchy::ReadFrom(stream2, &other, &loaded, &error));
}

// ---------------------------------------------------------------------------
// Backend-equivalence end-to-end: identical TopK / TopKBatch rankings
// through the full Engine pipeline under all three backends, at 1 and 4
// threads.
// ---------------------------------------------------------------------------

Engine MakeBackendEngine(spf::BackendKind kind, uint32_t threads,
                         uint64_t seed) {
  graph::RoadNetwork net = test::MakeGridNetwork(12, 12, 110.0);
  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  Engine::Options options;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 3000.0;
  options.threads = threads;
  options.distance_backend = kind;
  Engine engine(std::move(net), std::move(sites), options);
  util::Rng rng(seed);
  for (int i = 0; i < 70; ++i) {
    const auto src =
        static_cast<NodeId>(rng.UniformInt(engine.network().num_nodes()));
    const auto dst =
        static_cast<NodeId>(rng.UniformInt(engine.network().num_nodes()));
    if (src == dst) continue;
    auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3, seed + i);
    if (path.size() >= 2) engine.AddTrajectory(std::move(path));
  }
  engine.BuildIndex();
  return engine;
}

TEST(SpfEngineEquivalence, TopKIdenticalAcrossBackendsAndThreads) {
  const uint64_t seed = test::FuzzSeed(kSuiteSeedBase + 4, 0);
  SCOPED_TRACE(test::SeedTrace(seed));
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();

  std::vector<Engine::QuerySpec> specs;
  for (uint32_t k : {3u, 5u}) {
    for (double tau : {500.0, 900.0, 1600.0}) {
      Engine::QuerySpec spec;
      spec.k = k;
      spec.tau_m = tau;
      specs.push_back(spec);
    }
  }

  // Reference: plain Dijkstra, serial.
  const Engine reference =
      MakeBackendEngine(spf::BackendKind::kDijkstra, 1, seed);
  const auto expected_single = reference.TopK(5, 800.0, psi);
  const auto expected_batch = reference.TopKBatch(specs);

  for (const spf::BackendKind kind :
       {spf::BackendKind::kDijkstra, spf::BackendKind::kBidirectional,
        spf::BackendKind::kContractionHierarchies,
        // kDefault resolves NETCLUS_SPF: under the CI backend matrix this
        // re-runs the pipeline through each env-selected backend.
        spf::BackendKind::kDefault}) {
    for (const uint32_t threads : {1u, 4u}) {
      SCOPED_TRACE(testing::Message()
                   << "backend=" << spf::BackendName(kind)
                   << " threads=" << threads);
      const Engine engine = MakeBackendEngine(kind, threads, seed);
      const auto single = engine.TopK(5, 800.0, psi);
      EXPECT_EQ(single.selection.sites, expected_single.selection.sites);
      EXPECT_EQ(single.selection.utility, expected_single.selection.utility);

      const auto batch = engine.TopKBatch(specs);
      ASSERT_EQ(batch.size(), expected_batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(batch[i].selection.sites, expected_batch[i].selection.sites)
            << "spec " << i;
        EXPECT_EQ(batch[i].selection.utility,
                  expected_batch[i].selection.utility)
            << "spec " << i;
      }
    }
  }
}

// Exact baselines flow through the backend too: covering sets built by CH
// match the Dijkstra-built ones entry for entry.
TEST(SpfEngineEquivalence, ExactCoverageIdenticalAcrossBackends) {
  const uint64_t seed = test::FuzzSeed(kSuiteSeedBase + 5, 0);
  SCOPED_TRACE(test::SeedTrace(seed));
  const Engine reference =
      MakeBackendEngine(spf::BackendKind::kDijkstra, 1, seed);
  const Engine ch_engine =
      MakeBackendEngine(spf::BackendKind::kContractionHierarchies, 1, seed);

  const tops::CoverageIndex expected = reference.BuildCoverage(700.0);
  const tops::CoverageIndex actual = ch_engine.BuildCoverage(700.0);
  ASSERT_EQ(actual.num_sites(), expected.num_sites());
  for (tops::SiteId s = 0; s < expected.num_sites(); ++s) {
    const auto expected_tc = expected.TC(s);
    const auto actual_tc = actual.TC(s);
    ASSERT_EQ(actual_tc.size(), expected_tc.size()) << "site " << s;
    for (size_t i = 0; i < expected_tc.size(); ++i) {
      EXPECT_EQ(actual_tc[i].id, expected_tc[i].id);
      EXPECT_EQ(actual_tc[i].dr_m, expected_tc[i].dr_m);
    }
  }

  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const tops::Selection a = reference.ExactGreedy(4, 700.0, psi);
  const tops::Selection b = ch_engine.ExactGreedy(4, 700.0, psi);
  EXPECT_EQ(a.sites, b.sites);
  EXPECT_EQ(a.utility, b.utility);
}

// Save/load carries the backend: an engine that persists its index under
// CH hands the hierarchy to the loading engine (no re-contraction), and
// the loaded engine answers identically.
TEST(SpfEngineEquivalence, IndexFileCarriesBackend) {
  const uint64_t seed = test::FuzzSeed(kSuiteSeedBase + 6, 0);
  SCOPED_TRACE(test::SeedTrace(seed));
  Engine saver =
      MakeBackendEngine(spf::BackendKind::kContractionHierarchies, 1, seed);
  const std::string path = testing::TempDir() + "/spf_index_with_backend.txt";
  std::string error;
  ASSERT_TRUE(saver.SaveIndexToFile(path, &error)) << error;

  Engine loader = MakeBackendEngine(spf::BackendKind::kDijkstra, 1, seed);
  ASSERT_TRUE(loader.LoadIndexFromFile(path, &error)) << error;
  EXPECT_EQ(loader.distance_backend().kind(),
            spf::BackendKind::kContractionHierarchies);

  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const auto expected = saver.TopK(5, 800.0, psi);
  const auto actual = loader.TopK(5, 800.0, psi);
  EXPECT_EQ(actual.selection.sites, expected.selection.sites);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netclus
