#include <algorithm>
#include <numeric>

#include "gtest/gtest.h"
#include "test_helpers.h"
#include "tops/coverage.h"
#include "tops/inc_greedy.h"
#include "tops/variants.h"
#include "util/rng.h"

namespace netclus::tops {
namespace {

CoverageIndex RandomInstance(uint64_t seed, uint32_t num_sites,
                             uint32_t num_trajs, double tau_m = 600.0) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 120.0);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, num_trajs, 4, 12, seed);
  SiteSet sites = SiteSet::SampleNodes(net, num_sites, seed + 1);
  CoverageConfig cc;
  cc.tau_m = tau_m;
  return CoverageIndex::Build(store, sites, cc);
}

// --- TOPS-COST ---------------------------------------------------------------

TEST(CostGreedy, RespectsBudget) {
  const CoverageIndex cov = RandomInstance(1, 20, 60);
  CostConfig config;
  config.budget = 3.0;
  config.site_costs = DrawNormalCosts(20, 1.0, 0.5, 0.1, 2);
  const CostResult got = CostGreedy(cov, PreferenceFunction::Binary(), config);
  EXPECT_LE(got.total_cost, config.budget + 1e-9);
  double sum = 0.0;
  for (SiteId s : got.selection.sites) sum += config.site_costs[s];
  EXPECT_NEAR(sum, got.total_cost, 1e-9);
}

TEST(CostGreedy, UnitCostsWithBudgetKBehavesLikeTopsRelaxation) {
  const CoverageIndex cov = RandomInstance(3, 20, 60);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  CostConfig config;
  config.budget = 5.0;
  config.site_costs.assign(20, 1.0);
  const CostResult cost = CostGreedy(cov, psi, config);
  GreedyConfig gc;
  gc.k = 5;
  const Selection greedy = IncGreedy(cov, psi, gc);
  // Unit costs and B = k: cost-effectiveness greedy ranks by marginal gain
  // like Inc-Greedy (Sec. 7.1's reduction). Tie-breaking rules differ, so
  // the utilities agree up to a small wobble rather than exactly.
  EXPECT_EQ(cost.selection.sites.size(), greedy.sites.size());
  EXPECT_NEAR(cost.selection.utility, greedy.utility, 0.03 * greedy.utility);
}

TEST(CostGreedy, SingleSiteGuardBeatsRatioTrap) {
  // The classic Khuller trap: one site with huge utility but cost = budget,
  // vs a cheap site with tiny utility and great ratio. The plain ratio
  // greedy takes the cheap site first and can't afford the big one; the
  // s_max guard must rescue the solution.
  std::vector<std::vector<CoverEntry>> tc(2);
  tc[0] = {{0, 0.0f}};  // cheap site covers 1 trajectory
  tc[1] = {{1, 0.0f}, {2, 0.0f}, {3, 0.0f}, {4, 0.0f}, {5, 0.0f}};
  const CoverageIndex cov = CoverageIndex::FromCovers(std::move(tc), 6, 6, 100.0);
  CostConfig config;
  config.budget = 1.0;
  config.site_costs = {0.01, 1.0};  // ratios: 100 vs 5
  const CostResult got = CostGreedy(cov, PreferenceFunction::Binary(), config);
  EXPECT_TRUE(got.used_single_site_guard);
  ASSERT_EQ(got.selection.sites.size(), 1u);
  EXPECT_EQ(got.selection.sites[0], 1u);
  EXPECT_NEAR(got.selection.utility, 5.0, 1e-9);
}

TEST(CostGreedy, HigherVarianceCostsRaiseUtility) {
  // Fig. 7a: with mean 1 and larger sigma, more cheap sites exist, so the
  // same budget buys more coverage.
  const CoverageIndex cov = RandomInstance(5, 30, 120);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  double last = -1.0;
  double util_low = 0.0, util_high = 0.0;
  for (const double sigma : {0.0, 1.0}) {
    CostConfig config;
    config.budget = 5.0;
    config.site_costs = DrawNormalCosts(30, 1.0, sigma, 0.1, 7);
    const CostResult got = CostGreedy(cov, psi, config);
    if (sigma == 0.0) util_low = got.selection.utility;
    else util_high = got.selection.utility;
    last = got.selection.utility;
  }
  (void)last;
  EXPECT_GE(util_high, util_low - 1e-9);
}

TEST(DrawNormalCosts, RespectsFloorAndDeterminism) {
  const auto a = DrawNormalCosts(100, 1.0, 2.0, 0.1, 9);
  const auto b = DrawNormalCosts(100, 1.0, 2.0, 0.1, 9);
  EXPECT_EQ(a, b);
  for (double c : a) EXPECT_GE(c, 0.1);
}

// --- TOPS-CAPACITY -----------------------------------------------------------

TEST(CapacityGreedy, ServedCountsRespectCapacities) {
  const CoverageIndex cov = RandomInstance(11, 20, 80);
  CapacityConfig config;
  config.k = 5;
  config.site_capacities.assign(20, 7.0);
  const CapacityResult got =
      CapacityGreedy(cov, PreferenceFunction::Binary(), config);
  EXPECT_EQ(got.selection.sites.size(), 5u);
  ASSERT_EQ(got.served_counts.size(), 5u);
  for (uint32_t served : got.served_counts) EXPECT_LE(served, 7u);
  EXPECT_LE(got.selection.utility, 5.0 * 7.0 + 1e-9);
}

TEST(CapacityGreedy, InfiniteCapacityMatchesPlainGreedyUtility) {
  const CoverageIndex cov = RandomInstance(13, 20, 80);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  CapacityConfig config;
  config.k = 5;
  config.site_capacities.assign(20, 1e9);
  const CapacityResult capacity = CapacityGreedy(cov, psi, config);
  GreedyConfig gc;
  gc.k = 5;
  const Selection greedy = IncGreedy(cov, psi, gc);
  EXPECT_NEAR(capacity.selection.utility, greedy.utility, 1e-9);
}

TEST(CapacityGreedy, UtilityGrowsWithCapacity) {
  const CoverageIndex cov = RandomInstance(15, 20, 100);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  double prev = -1.0;
  for (const double cap : {1.0, 5.0, 20.0, 1000.0}) {
    CapacityConfig config;
    config.k = 5;
    config.site_capacities.assign(20, cap);
    const CapacityResult got = CapacityGreedy(cov, psi, config);
    EXPECT_GE(got.selection.utility, prev - 1e-9) << "cap=" << cap;
    prev = got.selection.utility;
  }
}

TEST(CapacityGreedy, ZeroCapacityYieldsZeroUtility) {
  const CoverageIndex cov = RandomInstance(17, 10, 40);
  CapacityConfig config;
  config.k = 3;
  config.site_capacities.assign(10, 0.0);
  const CapacityResult got =
      CapacityGreedy(cov, PreferenceFunction::Binary(), config);
  EXPECT_DOUBLE_EQ(got.selection.utility, 0.0);
}

TEST(DrawNormalCapacities, FloorsAtOne) {
  const auto caps = DrawNormalCapacities(50, 1.0, 10.0, 21);
  for (double c : caps) EXPECT_GE(c, 1.0);
}

// --- TOPS4 market share --------------------------------------------------------

TEST(MarketShareGreedy, ReachesRequestedShare) {
  const CoverageIndex cov = RandomInstance(23, 30, 100, 800.0);
  MarketShareConfig config;
  config.beta = 0.4;
  const MarketShareResult got = MarketShareGreedy(cov, config);
  EXPECT_TRUE(got.reached_target);
  EXPECT_GE(got.covered_fraction, 0.4 - 1e-9);
  EXPECT_FALSE(got.selection.sites.empty());
}

TEST(MarketShareGreedy, HigherShareNeedsAtLeastAsManySites) {
  const CoverageIndex cov = RandomInstance(25, 30, 100, 800.0);
  size_t prev = 0;
  for (const double beta : {0.2, 0.4, 0.6}) {
    MarketShareConfig config;
    config.beta = beta;
    const MarketShareResult got = MarketShareGreedy(cov, config);
    if (!got.reached_target) break;  // saturated coverage; stop comparing
    EXPECT_GE(got.selection.sites.size(), prev);
    prev = got.selection.sites.size();
  }
}

TEST(MarketShareGreedy, UnreachableShareReportsHonestly) {
  // A single site covering one of three trajectories cannot reach 90%.
  std::vector<std::vector<CoverEntry>> tc(1);
  tc[0] = {{0, 0.0f}};
  const CoverageIndex cov = CoverageIndex::FromCovers(std::move(tc), 3, 3, 100.0);
  MarketShareConfig config;
  config.beta = 0.9;
  const MarketShareResult got = MarketShareGreedy(cov, config);
  EXPECT_FALSE(got.reached_target);
  EXPECT_NEAR(got.covered_fraction, 1.0 / 3.0, 1e-9);
}

TEST(MarketShareGreedy, MaxSitesCapStops) {
  const CoverageIndex cov = RandomInstance(27, 30, 100, 800.0);
  MarketShareConfig config;
  config.beta = 1.0;
  config.max_sites = 2;
  const MarketShareResult got = MarketShareGreedy(cov, config);
  EXPECT_LE(got.selection.sites.size(), 2u);
}

}  // namespace
}  // namespace netclus::tops
