#include "gtest/gtest.h"
#include "netclus/jaccard.h"
#include "test_helpers.h"
#include "tops/coverage.h"

namespace netclus::index {
namespace {

tops::CoverageIndex MakeInstance(uint64_t seed, double tau_m) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 80, 4, 12, seed);
  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  tops::CoverageConfig cc;
  cc.tau_m = tau_m;
  return tops::CoverageIndex::Build(store, sites, cc);
}

TEST(Jaccard, EverySiteEndsUpClustered) {
  const tops::CoverageIndex cov = MakeInstance(81, 500.0);
  JaccardConfig config;
  config.alpha = 0.8;
  const JaccardResult got = JaccardCluster(cov, config);
  EXPECT_FALSE(got.oom);
  EXPECT_GT(got.num_clusters, 0u);
  for (uint32_t c : got.site_cluster) EXPECT_LT(c, got.num_clusters);
}

TEST(Jaccard, LooserAlphaGivesFewerClusters) {
  const tops::CoverageIndex cov = MakeInstance(83, 500.0);
  JaccardConfig tight;
  tight.alpha = 0.2;
  JaccardConfig loose;
  loose.alpha = 0.95;
  const JaccardResult tight_result = JaccardCluster(cov, tight);
  const JaccardResult loose_result = JaccardCluster(cov, loose);
  EXPECT_GE(tight_result.num_clusters, loose_result.num_clusters);
}

TEST(Jaccard, LargerTauCostsMoreMemory) {
  // Table 12's blow-up: covering sets (and pairwise overlap work) grow with
  // tau.
  const tops::CoverageIndex small = MakeInstance(85, 300.0);
  const tops::CoverageIndex large = MakeInstance(85, 1200.0);
  JaccardConfig config;
  config.alpha = 0.8;
  const JaccardResult small_result = JaccardCluster(small, config);
  const JaccardResult large_result = JaccardCluster(large, config);
  EXPECT_GT(large_result.memory_bytes, small_result.memory_bytes);
}

TEST(Jaccard, MemoryBudgetTriggersOom) {
  const tops::CoverageIndex cov = MakeInstance(87, 800.0);
  JaccardConfig config;
  config.alpha = 0.8;
  config.memory_budget_bytes = 1024;
  const JaccardResult got = JaccardCluster(cov, config);
  EXPECT_TRUE(got.oom);
}

TEST(Jaccard, IdenticalCoversMergeIntoOneCluster) {
  // Three sites with identical covers and one disjoint site.
  std::vector<std::vector<tops::CoverEntry>> tc(4);
  tc[0] = {{0, 1.0f}, {1, 1.0f}};
  tc[1] = {{0, 1.0f}, {1, 1.0f}};
  tc[2] = {{0, 1.0f}, {1, 1.0f}};
  tc[3] = {{5, 1.0f}};
  const tops::CoverageIndex cov =
      tops::CoverageIndex::FromCovers(std::move(tc), 6, 6, 100.0);
  JaccardConfig config;
  config.alpha = 0.1;  // only near-identical covers merge
  const JaccardResult got = JaccardCluster(cov, config);
  EXPECT_EQ(got.num_clusters, 2u);
  EXPECT_EQ(got.site_cluster[0], got.site_cluster[1]);
  EXPECT_EQ(got.site_cluster[1], got.site_cluster[2]);
  EXPECT_NE(got.site_cluster[3], got.site_cluster[0]);
}

}  // namespace
}  // namespace netclus::index
