// Tests for the work-stealing staged scheduler behind the async serving
// path (src/util/scheduler.h): lane priority, drain-on-shutdown with
// transitive submissions, post-shutdown rejection, and multi-producer
// counting. The whole file must be TSan-clean (the CI tsan job runs it
// under -fsanitize=thread).
#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/scheduler.h"

namespace netclus::util {
namespace {

using Lane = StagedScheduler::Lane;

StagedScheduler::Options Workers(uint32_t n) {
  StagedScheduler::Options options;
  options.workers = n;
  return options;
}

TEST(StagedScheduler, RunsEverySubmittedTask) {
  StagedScheduler sched(Workers(4));
  std::atomic<int> ran{0};
  constexpr int kTasks = 500;
  for (int i = 0; i < kTasks; ++i) {
    const Lane lane = static_cast<Lane>(i % StagedScheduler::kLanes);
    ASSERT_TRUE(sched.Submit(lane, [&] { ran.fetch_add(1); }));
  }
  sched.Shutdown();  // drain barrier
  EXPECT_EQ(ran.load(), kTasks);
  const StagedScheduler::Stats stats = sched.stats();
  EXPECT_EQ(stats.executed, static_cast<uint64_t>(kTasks));
  EXPECT_EQ(stats.injected[0] + stats.injected[1] + stats.injected[2],
            static_cast<uint64_t>(kTasks));
}

TEST(StagedScheduler, FastLaneClaimedBeforeQueuedHeavyWork) {
  // One worker, blocked on a gate; while it is busy, queue heavy work
  // first and fast work second. The free worker must still claim the
  // fast task first — lane order, not FIFO arrival, decides.
  StagedScheduler sched(Workers(1));
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> blocker_running{false};
  ASSERT_TRUE(sched.Submit(Lane::kHeavy, [&, opened] {
    blocker_running.store(true);
    opened.wait();
  }));
  while (!blocker_running.load()) std::this_thread::yield();

  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sched.Submit(Lane::kHeavy, [&, i] {
      const std::lock_guard<std::mutex> lock(mu);
      order.push_back(100 + i);
    }));
  }
  EXPECT_EQ(sched.QueueDepth(Lane::kHeavy), 3u);
  ASSERT_TRUE(sched.Submit(Lane::kFast, [&] {
    const std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
  }));
  gate.set_value();
  sched.Shutdown();

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1);  // fast beat the three earlier heavy tasks
  EXPECT_EQ((std::vector<int>{order[1], order[2], order[3]}),
            (std::vector<int>{100, 101, 102}));
  EXPECT_EQ(sched.QueueDepth(Lane::kHeavy), 0u);
}

TEST(StagedScheduler, ShutdownDrainsTransitiveSubmissions) {
  StagedScheduler sched(Workers(2));
  std::atomic<int> ran{0};
  // Each root task fans out children from the worker thread; Shutdown is
  // called while roots are still queued, and must drain the whole tree.
  constexpr int kRoots = 16, kChildren = 8;
  for (int r = 0; r < kRoots; ++r) {
    ASSERT_TRUE(sched.Submit(Lane::kNormal, [&] {
      ran.fetch_add(1);
      EXPECT_TRUE(sched.OnWorker());
      for (int c = 0; c < kChildren; ++c) {
        // Worker-side submits stay allowed during the drain.
        EXPECT_TRUE(sched.Submit(Lane::kFast, [&] { ran.fetch_add(1); }));
      }
    }));
  }
  sched.Shutdown();
  EXPECT_EQ(ran.load(), kRoots * (1 + kChildren));
}

TEST(StagedScheduler, WorkerSideSubmitRacesWithStealingSibling) {
  // Regression: Submit()'s worker fast path used to push the task onto
  // the worker's own deque *before* bumping the injector-side
  // outstanding count. A sibling could steal and finish the task in
  // that window, decrementing the count first — size_t underflow — and
  // the shutdown drain then saw "outstanding work" forever or exited
  // with tasks unrun. Tiny leaf tasks, several stealing siblings and
  // many rounds maximize the window; the count must balance exactly.
  constexpr int kRounds = 20, kRoots = 8, kLeaves = 64;
  for (int round = 0; round < kRounds; ++round) {
    StagedScheduler sched(Workers(4));
    std::atomic<int> ran{0};
    for (int r = 0; r < kRoots; ++r) {
      ASSERT_TRUE(sched.Submit(Lane::kNormal, [&] {
        for (int i = 0; i < kLeaves; ++i) {
          EXPECT_TRUE(sched.Submit(Lane::kFast, [&] { ran.fetch_add(1); }));
        }
        ran.fetch_add(1);
      }));
    }
    sched.Shutdown();  // must drain exactly, not hang and not drop
    ASSERT_EQ(ran.load(), kRoots * (1 + kLeaves));
    ASSERT_EQ(sched.stats().executed,
              static_cast<uint64_t>(kRoots * (1 + kLeaves)));
  }
}

TEST(StagedScheduler, RejectsExternalSubmitsAfterShutdown) {
  StagedScheduler sched(Workers(2));
  std::atomic<int> ran{0};
  ASSERT_TRUE(sched.Submit(Lane::kFast, [&] { ran.fetch_add(1); }));
  sched.Shutdown();
  EXPECT_TRUE(sched.stopping());
  EXPECT_FALSE(sched.Submit(Lane::kFast, [&] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 1);
  sched.Shutdown();  // idempotent
  EXPECT_FALSE(sched.OnWorker());
}

TEST(StagedScheduler, ManyProducersManyWorkers) {
  StagedScheduler sched(Workers(4));
  std::atomic<int> ran{0};
  constexpr int kProducers = 6, kPerProducer = 200;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!sched.Submit(Lane::kNormal, [&] { ran.fetch_add(1); })) {
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  sched.Shutdown();
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace netclus::util
