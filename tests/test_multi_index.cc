#include <cmath>

#include "gtest/gtest.h"
#include "netclus/multi_index.h"
#include "test_helpers.h"
#include "tops/site_set.h"

namespace netclus::index {
namespace {

struct Fixture {
  graph::RoadNetwork net;
  std::unique_ptr<traj::TrajectoryStore> store;
  tops::SiteSet sites;

  explicit Fixture(uint64_t seed = 51) {
    net = test::MakeGridNetwork(12, 12, 100.0);
    store = std::make_unique<traj::TrajectoryStore>(&net);
    test::FillRandomWalks(store.get(), 60, 4, 12, seed);
    sites = tops::SiteSet::AllNodes(net);
  }
};

TEST(MultiIndex, InstanceCountFollowsFormula) {
  Fixture f;
  MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 400.0;
  config.tau_max_m = 4000.0;
  const MultiIndex index = MultiIndex::Build(*f.store, f.sites, config);
  const uint32_t expected =
      static_cast<uint32_t>(std::floor(std::log(4000.0 / 400.0) /
                                       std::log1p(0.75))) + 1;
  EXPECT_EQ(index.num_instances(), expected);
}

TEST(MultiIndex, RadiiGrowGeometrically) {
  Fixture f;
  MultiIndexConfig config;
  config.gamma = 0.5;
  config.tau_min_m = 400.0;
  config.tau_max_m = 3000.0;
  const MultiIndex index = MultiIndex::Build(*f.store, f.sites, config);
  EXPECT_NEAR(index.instance(0).radius_m(), 100.0, 1e-9);  // tau_min / 4
  for (size_t p = 1; p < index.num_instances(); ++p) {
    EXPECT_NEAR(index.instance(p).radius_m(),
                index.instance(p - 1).radius_m() * 1.5, 1e-6);
  }
}

TEST(MultiIndex, ClusterCountsFallAcrossInstances) {
  Fixture f;
  MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 300.0;
  config.tau_max_m = 5000.0;
  const MultiIndex index = MultiIndex::Build(*f.store, f.sites, config);
  for (size_t p = 1; p < index.num_instances(); ++p) {
    EXPECT_LE(index.instance(p).num_clusters(),
              index.instance(p - 1).num_clusters());
  }
}

TEST(MultiIndex, InstanceForMapsTauRangesCorrectly) {
  Fixture f;
  MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 400.0;
  config.tau_max_m = 6000.0;
  const MultiIndex index = MultiIndex::Build(*f.store, f.sites, config);
  // At tau = tau_min the finest instance serves; the supported range of
  // instance p is [4 R_p, 4 R_p (1+gamma)).
  EXPECT_EQ(index.InstanceFor(400.0), 0u);
  EXPECT_EQ(index.InstanceFor(100.0), 0u);   // below range: clamp to finest
  EXPECT_EQ(index.InstanceFor(1e9), index.num_instances() - 1);  // clamp up
  for (size_t p = 0; p < index.num_instances(); ++p) {
    const double r = index.instance(p).radius_m();
    const size_t got = index.InstanceFor(4.0 * r * 1.001);
    EXPECT_EQ(got, p) << "tau just above 4R of instance " << p;
  }
}

TEST(MultiIndex, SupportedTauGuaranteesSameClusterCoverage) {
  // For instance p and tau >= 4 R_p, any site covers any trajectory through
  // its cluster: d_r(T, s) <= d_r(T,c) + d_r(c,s) <= 2R + 2R = 4R <= tau.
  Fixture f;
  MultiIndexConfig config;
  config.gamma = 0.5;
  config.tau_min_m = 400.0;
  config.tau_max_m = 2000.0;
  const MultiIndex index = MultiIndex::Build(*f.store, f.sites, config);
  const size_t p = index.InstanceFor(800.0);
  EXPECT_LE(4.0 * index.instance(p).radius_m(), 800.0 + 1e-9);
}

TEST(MultiIndex, AutoTauRangeIsSane) {
  Fixture f;
  double tau_min = 0.0, tau_max = 0.0;
  MultiIndex::EstimateTauRange(*f.store, f.sites, 7, &tau_min, &tau_max);
  EXPECT_GT(tau_min, 0.0);
  EXPECT_GT(tau_max, tau_min);
  // Grid of 100 m blocks: nearest site round trip is 200 m.
  EXPECT_NEAR(tau_min, 200.0, 1e-6);
  // Diameter-ish round trip on a 12x12 grid of 100 m blocks.
  EXPECT_LE(tau_max, 2.0 * 2.0 * 22.0 * 100.0);
}

TEST(MultiIndex, MaxInstancesCapRespected) {
  Fixture f;
  MultiIndexConfig config;
  config.gamma = 0.25;
  config.tau_min_m = 100.0;
  config.tau_max_m = 100000.0;
  config.max_instances = 4;
  const MultiIndex index = MultiIndex::Build(*f.store, f.sites, config);
  EXPECT_EQ(index.num_instances(), 4u);
}

TEST(MultiIndex, UpdatesFanOutToAllInstances) {
  Fixture f;
  MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 400.0;
  config.tau_max_m = 3000.0;
  MultiIndex index = MultiIndex::Build(*f.store, f.sites, config);
  const traj::TrajId t = f.store->Add({0, 1, 2, 13, 14});
  index.AddTrajectory(*f.store, t);
  for (size_t p = 0; p < index.num_instances(); ++p) {
    EXPECT_FALSE(index.instance(p).cluster_sequence(t).empty()) << p;
  }
  index.RemoveTrajectory(t);
  for (size_t p = 0; p < index.num_instances(); ++p) {
    EXPECT_TRUE(index.instance(p).cluster_sequence(t).empty()) << p;
  }
}

// Satellite regression of the serving PR: removing an id the index has
// never seen — or removing the same id twice — must be a safe no-op, not
// UB; the serving update pipeline feeds client-supplied ids straight in.
TEST(MultiIndex, RemoveUnknownOrAlreadyRemovedTrajectoryIsANoOp) {
  Fixture f;
  MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 400.0;
  config.tau_max_m = 3000.0;
  MultiIndex index = MultiIndex::Build(*f.store, f.sites, config);

  auto tl_sizes = [&] {
    std::vector<size_t> sizes;
    for (size_t p = 0; p < index.num_instances(); ++p) {
      for (uint32_t g = 0; g < index.instance(p).num_clusters(); ++g) {
        sizes.push_back(index.instance(p).cluster(g).tl.size());
      }
    }
    return sizes;
  };

  index.RemoveTrajectory(500000);  // never existed: nothing to undo
  const std::vector<size_t> before = tl_sizes();

  const traj::TrajId t = 7;
  index.RemoveTrajectory(t);
  const std::vector<size_t> after_once = tl_sizes();
  index.RemoveTrajectory(t);  // double remove: second is a no-op
  EXPECT_EQ(tl_sizes(), after_once);
  EXPECT_NE(before, after_once);  // the first remove did real work

  // Clone is a deep copy: removing from the clone leaves the original
  // untouched (the serving layer's copy-on-write batches rely on this).
  MultiIndex clone = index.Clone();
  clone.RemoveTrajectory(9);
  EXPECT_EQ(tl_sizes(), after_once);
  EXPECT_FALSE(index.instance(0).cluster_sequence(9).empty());
  EXPECT_TRUE(clone.instance(0).cluster_sequence(9).empty());
}

TEST(MultiIndex, MemoryBytesIsSumOfInstances) {
  Fixture f;
  MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 400.0;
  config.tau_max_m = 3000.0;
  const MultiIndex index = MultiIndex::Build(*f.store, f.sites, config);
  uint64_t sum = 0;
  for (size_t p = 0; p < index.num_instances(); ++p) {
    sum += index.instance(p).MemoryBytes();
  }
  EXPECT_EQ(index.MemoryBytes(), sum);
  EXPECT_GT(sum, 0u);
}

TEST(MultiIndex, SmallerGammaMeansMoreInstancesAndMoreMemory) {
  // Table 7's tradeoff: finer resolution ladders cost more space.
  Fixture f;
  MultiIndexConfig fine;
  fine.gamma = 0.25;
  fine.tau_min_m = 300.0;
  fine.tau_max_m = 4000.0;
  MultiIndexConfig coarse = fine;
  coarse.gamma = 1.0;
  const MultiIndex fine_index = MultiIndex::Build(*f.store, f.sites, fine);
  const MultiIndex coarse_index = MultiIndex::Build(*f.store, f.sites, coarse);
  EXPECT_GT(fine_index.num_instances(), coarse_index.num_instances());
  EXPECT_GT(fine_index.MemoryBytes(), coarse_index.MemoryBytes());
}

}  // namespace
}  // namespace netclus::index
