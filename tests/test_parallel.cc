// The parallel execution subsystem: ThreadPool lifecycle, the deterministic
// chunked helpers, and end-to-end determinism of the solver stack across
// thread counts (threads=1 must be bit-identical to threads=8).
#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "gtest/gtest.h"
#include "test_helpers.h"
#include "tops/coverage.h"
#include "tops/inc_greedy.h"
#include "traj/trip_generator.h"
#include "util/parallel.h"

namespace netclus {
namespace {

TEST(ThreadPool, StartupAndShutdown) {
  for (unsigned threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }
  // Zero is clamped to one worker.
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    util::ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destruction drains the queue: all 100 tasks run before join.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WorkerThreadsAreFlagged) {
  EXPECT_FALSE(util::ThreadPool::OnWorkerThread());
  std::atomic<bool> flagged{false};
  std::atomic<bool> done{false};
  {
    util::ThreadPool pool(2);
    pool.Submit([&] {
      flagged = util::ThreadPool::OnWorkerThread();
      done = true;
    });
    while (!done) std::this_thread::yield();
  }
  EXPECT_TRUE(flagged.load());
  EXPECT_FALSE(util::ThreadPool::OnWorkerThread());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 3u, 8u}) {
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    util::ParallelFor(threads, n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, ZeroItemsIsANoop) {
  bool called = false;
  util::ParallelFor(8, 0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      util::ParallelFor(
          4, 1000,
          [](size_t begin, size_t) {
            if (begin >= 500) throw std::runtime_error("chunk failed");
          },
          /*grain=*/10),
      std::runtime_error);
}

TEST(ParallelFor, LowestChunkExceptionWins) {
  // Every chunk throws its begin index; the rethrown one must be chunk 0's
  // regardless of scheduling.
  for (int repeat = 0; repeat < 5; ++repeat) {
    try {
      util::ParallelFor(
          8, 640, [](size_t begin, size_t) { throw begin; }, /*grain=*/10);
      FAIL() << "expected an exception";
    } catch (size_t begin) {
      EXPECT_EQ(begin, 0u);
    }
  }
}

TEST(ParallelMap, PreservesIndexOrder) {
  for (unsigned threads : {1u, 8u}) {
    const auto out = util::ParallelMap<int>(
        threads, 257, [](size_t i) { return static_cast<int>(i * 3); });
    ASSERT_EQ(out.size(), 257u);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * 3));
    }
  }
}

TEST(ParallelReduce, FloatingPointSumsAreBitIdenticalAcrossThreadCounts) {
  // A sum whose value depends on association order: with a fixed grain the
  // chunk layout and combine order never change, so every thread count must
  // produce the exact same bits.
  const size_t n = 100000;
  std::vector<double> values(n);
  util::Rng rng(7);
  for (double& v : values) v = rng.Uniform(-1e9, 1e9);

  auto sum_at = [&](unsigned threads) {
    return util::ParallelReduce<double>(
        threads, n, 0.0,
        [&](size_t begin, size_t end) {
          double acc = 0.0;
          for (size_t i = begin; i < end; ++i) acc += values[i];
          return acc;
        },
        [](double acc, double partial) { return acc + partial; },
        /*grain=*/1024);
  };

  const double reference = sum_at(1);
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(sum_at(threads), reference);
  }
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  const int out = util::ParallelReduce<int>(
      8, 0, -7, [](size_t, size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(out, -7);
}

TEST(Threads, ResolveZeroUsesDefault) {
  EXPECT_EQ(util::ResolveThreads(0), util::DefaultThreads());
  EXPECT_EQ(util::ResolveThreads(5), 5u);
  EXPECT_GE(util::DefaultThreads(), 1u);
}

TEST(Threads, ExplicitCountsAreClamped) {
  // A config typo must not turn into an unbounded std::thread spawn.
  EXPECT_EQ(util::ResolveThreads(100000), 256u);
  util::ParallelFor(100000, 64, [](size_t, size_t) {});  // must not throw
}

// --- solver determinism across thread counts -------------------------------

struct Corpus {
  graph::RoadNetwork net;
  std::unique_ptr<traj::TrajectoryStore> store;
  tops::SiteSet sites;
};

Corpus MakeCorpus() {
  Corpus c{test::MakeGridNetwork(14, 14, 100.0), nullptr, {}};
  c.store = std::make_unique<traj::TrajectoryStore>(&c.net);
  test::FillRandomWalks(c.store.get(), 160, 6, 28, 1234);
  c.sites = tops::SiteSet::SampleNodes(c.net, 120, 99);
  return c;
}

TEST(Determinism, CoverageBuildIdenticalAcrossThreadCounts) {
  const Corpus corpus = MakeCorpus();
  tops::CoverageConfig serial;
  serial.tau_m = 700.0;
  serial.threads = 1;
  const auto reference =
      tops::CoverageIndex::Build(*corpus.store, corpus.sites, serial);

  tops::CoverageConfig parallel = serial;
  parallel.threads = 8;
  const auto threaded =
      tops::CoverageIndex::Build(*corpus.store, corpus.sites, parallel);

  ASSERT_EQ(threaded.num_sites(), reference.num_sites());
  for (tops::SiteId s = 0; s < reference.num_sites(); ++s) {
    const auto a = reference.TC(s);
    const auto b = threaded.TC(s);
    ASSERT_EQ(a.size(), b.size()) << "site " << s;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].dr_m, b[i].dr_m);
    }
  }
}

TEST(Determinism, IncGreedyIdenticalAcrossThreadCounts) {
  const Corpus corpus = MakeCorpus();
  tops::CoverageConfig coverage_config;
  coverage_config.tau_m = 700.0;
  const auto coverage =
      tops::CoverageIndex::Build(*corpus.store, corpus.sites, coverage_config);
  const auto psi = tops::PreferenceFunction::Linear();

  tops::GreedyConfig serial;
  serial.k = 8;
  serial.threads = 1;
  const tops::Selection reference = IncGreedy(coverage, psi, serial);

  tops::GreedyConfig parallel = serial;
  parallel.threads = 8;
  // Force the chunked ParallelReduce argmax (the corpus is far below the
  // default serial cutoff, which would otherwise hide a fold regression).
  parallel.argmax_serial_cutoff = 0;
  const tops::Selection threaded = IncGreedy(coverage, psi, parallel);

  EXPECT_EQ(threaded.sites, reference.sites);
  EXPECT_EQ(threaded.utility, reference.utility);  // bit-exact, not NEAR
  ASSERT_EQ(threaded.marginal_gains.size(), reference.marginal_gains.size());
  for (size_t i = 0; i < reference.marginal_gains.size(); ++i) {
    EXPECT_EQ(threaded.marginal_gains[i], reference.marginal_gains[i]);
  }

  // The chunked argmax must also agree at threads=1 (same fold, one worker).
  tops::GreedyConfig chunked_serial = parallel;
  chunked_serial.threads = 1;
  const tops::Selection chunked = IncGreedy(coverage, psi, chunked_serial);
  EXPECT_EQ(chunked.sites, reference.sites);
  EXPECT_EQ(chunked.utility, reference.utility);
}

Engine MakeThreadedEngine(uint32_t threads) {
  graph::RoadNetwork net = test::MakeGridNetwork(12, 12, 100.0);
  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  Engine::Options options;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 3000.0;
  options.threads = threads;
  Engine engine(std::move(net), std::move(sites), options);
  util::Rng rng(17);
  for (int i = 0; i < 90; ++i) {
    const auto src =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    const auto dst =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    if (src == dst) continue;
    auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3, 400 + i);
    if (path.size() >= 2) engine.AddTrajectory(std::move(path));
  }
  engine.BuildIndex();
  return engine;
}

std::vector<Engine::QuerySpec> MakeSpecs() {
  std::vector<Engine::QuerySpec> specs;
  for (const double tau : {400.0, 600.0, 900.0, 1400.0}) {
    for (const uint32_t k : {3u, 5u}) {
      Engine::QuerySpec spec;
      spec.k = k;
      spec.tau_m = tau;
      spec.psi = (k == 3) ? tops::PreferenceFunction::Binary()
                          : tops::PreferenceFunction::Linear();
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

TEST(Determinism, TopKBatchIdenticalAcrossThreadCounts) {
  const Engine serial = MakeThreadedEngine(1);
  const Engine threaded = MakeThreadedEngine(8);
  const auto specs = MakeSpecs();

  const auto a = serial.TopKBatch(specs);
  const auto b = threaded.TopKBatch(specs);
  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(a[i].selection.sites, b[i].selection.sites) << "query " << i;
    EXPECT_EQ(a[i].selection.utility, b[i].selection.utility) << "query " << i;
    EXPECT_EQ(a[i].instance_used, b[i].instance_used);
  }
}

TEST(Determinism, TopKBatchMatchesSequentialTopK) {
  const Engine engine = MakeThreadedEngine(8);
  const auto specs = MakeSpecs();
  const auto batch = engine.TopKBatch(specs);
  ASSERT_EQ(batch.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const auto single = engine.TopK(specs[i].k, specs[i].tau_m, specs[i].psi);
    EXPECT_EQ(batch[i].selection.sites, single.selection.sites) << "query " << i;
    EXPECT_EQ(batch[i].selection.utility, single.selection.utility);
  }
}

TEST(Determinism, IndexBuildIdenticalAcrossThreadCounts) {
  const Engine serial = MakeThreadedEngine(1);
  const Engine threaded = MakeThreadedEngine(8);
  const auto& a = serial.index();
  const auto& b = threaded.index();
  ASSERT_EQ(a.num_instances(), b.num_instances());
  for (size_t p = 0; p < a.num_instances(); ++p) {
    const auto& ia = a.instance(p);
    const auto& ib = b.instance(p);
    ASSERT_EQ(ia.num_clusters(), ib.num_clusters()) << "instance " << p;
    for (uint32_t g = 0; g < ia.num_clusters(); ++g) {
      const auto& ca = ia.cluster(g);
      const auto& cb = ib.cluster(g);
      EXPECT_EQ(ca.center, cb.center);
      EXPECT_EQ(ca.representative, cb.representative);
      EXPECT_EQ(ca.rep_rt_m, cb.rep_rt_m);
      ASSERT_EQ(ca.tl.size(), cb.tl.size());
      for (size_t i = 0; i < ca.tl.size(); ++i) {
        EXPECT_EQ(ca.tl[i].traj, cb.tl[i].traj);
        EXPECT_EQ(ca.tl[i].dr_m, cb.tl[i].dr_m);
      }
      ASSERT_EQ(ca.cl.size(), cb.cl.size());
      for (size_t i = 0; i < ca.cl.size(); ++i) {
        EXPECT_EQ(ca.cl[i].cluster, cb.cl[i].cluster);
        EXPECT_EQ(ca.cl[i].dr_m, cb.cl[i].dr_m);
      }
    }
  }
}

}  // namespace
}  // namespace netclus
