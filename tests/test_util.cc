#include <cstdlib>
#include <set>
#include <sstream>

#include "gtest/gtest.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace netclus::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit over 1000 draws
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint32_t v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(21);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(SplitMix64, KnownToBeStable) {
  // Lock the mixing function: downstream hashing (FM sketches, trip
  // perturbation) depends on it never changing.
  EXPECT_EQ(SplitMix64(0), 16294208416658607535ULL);
  EXPECT_EQ(SplitMix64(1), 10451216379200822465ULL);
}

TEST(Strings, SplitBasic) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitNoDelimiter) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(Strings, StartsWithAndToLower) {
  EXPECT_TRUE(StartsWith("netclus", "net"));
  EXPECT_FALSE(StartsWith("net", "netclus"));
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(Memory, TrackerAddAndTotal) {
  MemoryTracker tracker;
  tracker.Add("tc", 100);
  tracker.Add("tc", 50);
  tracker.Add("sc", 30);
  EXPECT_EQ(tracker.Bytes("tc"), 150u);
  EXPECT_EQ(tracker.TotalBytes(), 180u);
  tracker.Add("tc", -200);  // clamps at zero
  EXPECT_EQ(tracker.Bytes("tc"), 0u);
}

TEST(Memory, BudgetTripsWhenExceeded) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Charge(400));
  EXPECT_TRUE(budget.Charge(600));
  EXPECT_FALSE(budget.Charge(1));
  EXPECT_TRUE(budget.exceeded());
}

TEST(Memory, ZeroBudgetIsUnlimited) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.Charge(1ull << 40));
  EXPECT_FALSE(budget.exceeded());
}

TEST(Memory, HumanBytesFormatting) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.00 GB");
}

TEST(Memory, VmRssIsPositiveOnLinux) {
  EXPECT_GT(ReadVmRssBytes(), 0u);
  // VmHWM is not exposed in every container; when present it must be at
  // least on the order of the current RSS.
  const uint64_t hwm = ReadVmHwmBytes();
  if (hwm > 0) {
    EXPECT_GE(hwm, ReadVmRssBytes() / 2);
  }
}

TEST(Memory, VectorBytesUsesCapacity) {
  std::vector<uint64_t> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 800u);
}

TEST(Table, TextRenderingAligns) {
  Table t({"name", "value"});
  t.Row().Cell("alpha").Cell(42);
  t.Row().Cell("b").Cell(3.14159, 3);
  std::ostringstream os;
  t.PrintText(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.142"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.Row().Cell(1).Cell(2);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, MarkdownRendering) {
  Table t({"a"});
  t.Row().Cell("x");
  std::ostringstream os;
  t.PrintMarkdown(os);
  EXPECT_EQ(os.str(), "| a |\n|---|\n| x |\n");
}

TEST(Flags, EnvParsing) {
  setenv("NETCLUS_TEST_INT", "42", 1);
  setenv("NETCLUS_TEST_DBL", "2.5", 1);
  setenv("NETCLUS_TEST_STR", "hello", 1);
  setenv("NETCLUS_TEST_BOOL", "true", 1);
  EXPECT_EQ(GetEnvInt("NETCLUS_TEST_INT", 0), 42);
  EXPECT_DOUBLE_EQ(GetEnvDouble("NETCLUS_TEST_DBL", 0.0), 2.5);
  EXPECT_EQ(GetEnvString("NETCLUS_TEST_STR", ""), "hello");
  EXPECT_TRUE(GetEnvBool("NETCLUS_TEST_BOOL", false));
  EXPECT_EQ(GetEnvInt("NETCLUS_TEST_MISSING", 7), 7);
  EXPECT_EQ(GetEnvInt("NETCLUS_TEST_STR", 7), 7);  // unparseable -> default
}

TEST(Logging, LevelFiltering) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  NC_LOG_INFO << "suppressed";  // must not crash, just be dropped
  SetLogLevel(saved);
}

TEST(Logging, ParseLevelNames) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("bogus"), LogLevel::kInfo);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  double x = 0.0;
  for (int i = 0; i < 100000; ++i) x += i * 1e-9;
  EXPECT_GE(timer.Seconds(), 0.0);
  EXPECT_GT(x, 0.0);
  timer.Reset();
  EXPECT_LT(timer.Seconds(), 1.0);
}

TEST(Timer, ScopedAccumulator) {
  double sink = 0.0;
  {
    ScopedAccumulator acc(&sink);
  }
  EXPECT_GE(sink, 0.0);
}

TEST(LatencyHistogram, EmptyAndBasicStats) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.PercentileSeconds(0.5), 0.0);
  EXPECT_EQ(h.MeanSeconds(), 0.0);

  h.Record(1e-3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.MeanSeconds(), 1e-3, 1e-9);
  // Geometric buckets: the percentile lands within the bucket holding the
  // sample (relative error bounded by the ~24%/bucket growth factor).
  EXPECT_NEAR(h.PercentileSeconds(0.5), 1e-3, 0.3e-3);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(LatencyHistogram, PercentilesSeparateFastAndSlow) {
  LatencyHistogram h;
  // 95 fast samples at ~1 ms, 5 slow ones at ~1 s.
  for (int i = 0; i < 95; ++i) h.Record(1e-3);
  for (int i = 0; i < 5; ++i) h.Record(1.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.PercentileSeconds(0.50), 1e-3, 0.3e-3);
  EXPECT_NEAR(h.PercentileSeconds(0.95), 1e-3, 0.3e-3);
  EXPECT_NEAR(h.PercentileSeconds(0.99), 1.0, 0.3);
  EXPECT_GT(h.PercentileSeconds(0.99), h.PercentileSeconds(0.50));
  // Clamping: absurd samples land in the extreme buckets, not UB.
  h.Record(0.0);
  h.Record(1e6);
  EXPECT_EQ(h.count(), 102u);
}

// Satellite regression (index-format PR): percentile edge cases must
// clamp/return 0 instead of walking past the buckets or feeding
// unrepresentable values into integer casts.
TEST(LatencyHistogram, PercentileEdgeCases) {
  LatencyHistogram h;
  // Empty histogram: every p — including out-of-range and NaN — is 0.
  EXPECT_EQ(h.PercentileSeconds(0.0), 0.0);
  EXPECT_EQ(h.PercentileSeconds(1.0), 0.0);
  EXPECT_EQ(h.PercentileSeconds(-3.0), 0.0);
  EXPECT_EQ(h.PercentileSeconds(7.0), 0.0);
  EXPECT_EQ(h.PercentileSeconds(std::numeric_limits<double>::quiet_NaN()), 0.0);

  h.Record(1e-3);
  h.Record(1.0);
  // p0 resolves to the first non-empty bucket, p100 to the last.
  EXPECT_NEAR(h.PercentileSeconds(0.0), 1e-3, 0.3e-3);
  EXPECT_NEAR(h.PercentileSeconds(1.0), 1.0, 0.3);
  // Out-of-range p clamps to [0, 1] rather than reading past the walk.
  EXPECT_EQ(h.PercentileSeconds(-1.0), h.PercentileSeconds(0.0));
  EXPECT_EQ(h.PercentileSeconds(2.0), h.PercentileSeconds(1.0));
  // NaN p behaves like p = 0 (the clamp is written NaN-safe).
  EXPECT_EQ(h.PercentileSeconds(std::numeric_limits<double>::quiet_NaN()),
            h.PercentileSeconds(0.0));
}

// Serving-scale tails (async serving PR): p999 must resolve the 1-in-1000
// sample, and samples beyond the bucket range are tracked as an explicit
// overflow count instead of being clamped into the last bucket (which
// would silently drag the reported tail *down* to 100 s).
TEST(LatencyHistogram, P999AndOverflowCount) {
  LatencyHistogram h;
  for (int i = 0; i < 997; ++i) h.Record(1e-3);
  for (int i = 0; i < 3; ++i) h.Record(5.0);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.overflow_count(), 0u);
  // p99 is still in the fast mass; the nearest-rank p999 (sample 999 of
  // 1000) reaches the slow tail.
  EXPECT_NEAR(h.PercentileSeconds(0.99), 1e-3, 0.3e-3);
  EXPECT_NEAR(h.PercentileSeconds(0.999), 5.0, 1.5);
  EXPECT_GT(h.PercentileSeconds(0.999), h.PercentileSeconds(0.99));

  // Overflow: > kMaxSeconds samples are counted but kept out of the
  // buckets; a percentile whose rank lands among them reports the range
  // ceiling, and mid percentiles are unaffected.
  h.Record(1e6);
  h.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 1002u);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_NEAR(h.PercentileSeconds(0.5), 1e-3, 0.3e-3);
  EXPECT_EQ(h.PercentileSeconds(1.0), LatencyHistogram::kMaxSeconds);

  h.Reset();
  EXPECT_EQ(h.overflow_count(), 0u);
}

}  // namespace
}  // namespace netclus::util
