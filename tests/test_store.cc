// The compressed posting subsystem (src/store): varint/zigzag codecs,
// arena round-trips, lazy views, and the differential guarantees the
// index relies on — compressed traversal must yield exactly what the raw
// vector representation yields, entry for entry, and copies must share
// frozen arena blocks instead of duplicating them.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

#include "gtest/gtest.h"
#include "netclus/cluster_index.h"
#include "netclus/jaccard.h"
#include "store/arena.h"
#include "store/binary_io.h"
#include "store/buffer_pool.h"
#include "store/mmap_file.h"
#include "store/rank_select.h"
#include "store/simd/bulk_varint.h"
#include "test_helpers.h"
#include "tops/coverage.h"
#include "tops/fm_greedy.h"
#include "tops/inc_greedy.h"

namespace netclus::store {
namespace {

TEST(Varint, RoundTripsEdgeValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 31) - 1,
                             1ull << 31,
                             (1ull << 32) - 1,
                             1ull << 63,
                             ~0ull};
  for (const uint64_t v : values) {
    std::vector<uint8_t> bytes;
    PutVarint64(bytes, v);
    uint64_t decoded = 0;
    const uint8_t* end =
        GetVarint64(bytes.data(), bytes.data() + bytes.size(), &decoded);
    ASSERT_NE(end, nullptr) << v;
    EXPECT_EQ(end, bytes.data() + bytes.size());
    EXPECT_EQ(decoded, v);
  }
}

TEST(Varint, RejectsTruncatedInput) {
  std::vector<uint8_t> bytes;
  PutVarint64(bytes, ~0ull);
  uint64_t decoded = 0;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(GetVarint64(bytes.data(), bytes.data() + cut, &decoded), nullptr)
        << "cut " << cut;
  }
}

TEST(Varint, ZigZagRoundTripsSigns) {
  const int64_t values[] = {0, 1, -1, 63, -64, 1ll << 40, -(1ll << 40),
                            std::numeric_limits<int64_t>::max(),
                            std::numeric_limits<int64_t>::min()};
  for (const int64_t v : values) EXPECT_EQ(UnZigZag64(ZigZag64(v)), v) << v;
}

TEST(PostingArena, U32ListsRoundTripFuzz) {
  for (size_t round = 0; round < test::FuzzRounds(12); ++round) {
    const uint64_t seed = test::FuzzSeed(0xa12e, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    util::Rng rng(seed);
    std::vector<std::vector<uint32_t>> lists(rng.UniformInt(1, 40));
    for (auto& list : lists) {
      const size_t len = rng.UniformInt(static_cast<uint64_t>(30));
      for (size_t i = 0; i < len; ++i) {
        // Mixed magnitudes so deltas of both signs and widths occur.
        list.push_back(static_cast<uint32_t>(
            rng.UniformInt(rng.UniformInt(2) == 0 ? 100ull : ~0u)));
      }
    }
    PostingArenaBuilder builder;
    for (const auto& list : lists) builder.AddU32List(list);
    const PostingArena arena = builder.Finish();
    ASSERT_EQ(arena.num_lists(), lists.size());
    uint64_t entries = 0;
    for (size_t i = 0; i < lists.size(); ++i) {
      const PostingListView view = arena.U32List(i);
      EXPECT_EQ(view.Materialize(), lists[i]) << "list " << i;
      if (!lists[i].empty()) {
        EXPECT_EQ(view[lists[i].size() - 1], lists[i].back());
      }
      entries += lists[i].size();
    }
    EXPECT_EQ(arena.total_entries(), entries);
  }
}

TEST(PostingArena, PairListsRoundTripFuzz) {
  using Entry = netclus::tops::CoverEntry;
  for (size_t round = 0; round < test::FuzzRounds(12); ++round) {
    const uint64_t seed = test::FuzzSeed(0xb34f, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    util::Rng rng(seed);
    std::vector<std::vector<Entry>> lists(rng.UniformInt(1, 30));
    for (auto& list : lists) {
      const size_t len = rng.UniformInt(static_cast<uint64_t>(25));
      for (size_t i = 0; i < len; ++i) {
        Entry e;
        e.id = static_cast<uint32_t>(rng.UniformInt(~0u));
        // Arbitrary float bit patterns must round-trip exactly, including
        // zero, denormals, infinities, and NaN payloads.
        const uint32_t bits = static_cast<uint32_t>(rng.UniformInt(~0u));
        std::memcpy(&e.dr_m, &bits, sizeof(bits));
        list.push_back(e);
      }
    }
    PostingArenaBuilder builder;
    for (const auto& list : lists) builder.AddPairList(list);
    const PostingArena arena = builder.Finish();
    for (size_t i = 0; i < lists.size(); ++i) {
      const auto view = arena.PairList<Entry>(i);
      ASSERT_EQ(view.size(), lists[i].size());
      size_t k = 0;
      for (const Entry& e : view) {
        EXPECT_EQ(e.id, lists[i][k].id);
        EXPECT_EQ(std::memcmp(&e.dr_m, &lists[i][k].dr_m, sizeof(float)), 0);
        ++k;
      }
    }
  }
}

TEST(PostingArena, FromBlocksValidatesMalformedInput) {
  PostingArenaBuilder builder(ListLayout::kFlat);
  builder.AddU32List({1, 5, 3});
  builder.AddU32List({});
  PostingArena arena = builder.Finish();

  // A valid round-trip through FromBlocks.
  PostingArena reloaded;
  std::string error;
  ASSERT_TRUE(PostingArena::FromBlocks(arena.data_block(),
                                       arena.offsets_block(), 2,
                                       ListKind::kU32, &reloaded, &error))
      << error;
  EXPECT_EQ(reloaded.U32List(0).Materialize(),
            (std::vector<uint32_t>{1, 5, 3}));

  // Wrong list count -> offset table size mismatch.
  EXPECT_FALSE(PostingArena::FromBlocks(arena.data_block(),
                                        arena.offsets_block(), 3,
                                        ListKind::kU32, &reloaded, &error));
  // Truncated data block -> offsets no longer cover it.
  std::vector<uint8_t> short_data(arena.data_block().data(),
                                  arena.data_block().data() +
                                      arena.data_block().size() - 1);
  EXPECT_FALSE(PostingArena::FromBlocks(ByteBlock::FromVector(short_data),
                                        arena.offsets_block(), 2,
                                        ListKind::kU32, &reloaded, &error));
  // Pair walk over a u32 stream -> entry count cannot match.
  EXPECT_FALSE(PostingArena::FromBlocks(arena.data_block(),
                                        arena.offsets_block(), 2,
                                        ListKind::kPair, &reloaded, &error));

  // A crafted count near 2^64 must be rejected up front, not overflow the
  // validation walk's loop bound into accepting a list that claims 2^63
  // entries (which would later drive iterators off the end).
  std::vector<uint8_t> huge_count;
  PutVarint64(huge_count, 1ull << 63);
  std::vector<uint8_t> huge_offsets(16, 0);
  const uint64_t huge_end = huge_count.size();
  std::memcpy(huge_offsets.data() + 8, &huge_end, sizeof(huge_end));
  for (const ListKind kind : {ListKind::kU32, ListKind::kPair}) {
    EXPECT_FALSE(PostingArena::FromBlocks(
        ByteBlock::FromVector(huge_count), ByteBlock::FromVector(huge_offsets),
        1, kind, &reloaded, &error))
        << static_cast<int>(kind);
    EXPECT_NE(error.find("implausible"), std::string::npos) << error;
  }
}

// --- blocked codec + SIMD kernels ------------------------------------------

// EF-encoded offset table for hand-crafted blocked arenas.
ByteBlock EfOffsets(const std::vector<uint64_t>& offsets) {
  std::vector<uint8_t> bytes;
  EliasFanoView::Encode(offsets, &bytes);
  return ByteBlock::FromVector(std::move(bytes));
}

std::vector<uint32_t> RandomU32List(util::Rng& rng, size_t max_len) {
  std::vector<uint32_t> list(rng.UniformInt(static_cast<uint64_t>(max_len)));
  for (auto& v : list) {
    // Vary the magnitude so deltas span every varint width (1..5 bytes).
    const unsigned width = static_cast<unsigned>(rng.UniformInt(33));
    v = static_cast<uint32_t>(
        rng.UniformInt(width == 0 ? 1ull : (1ull << width)));
  }
  return list;
}

// Every kernel must decode the exact same varint grammar as the scalar
// reference: same values, same resume pointer, including partial decodes.
// Inputs sit in exact-size heap buffers so ASan turns any speculative
// read past `end` (the mmap-tail hazard) into a hard failure.
TEST(BulkVarint, KernelsMatchScalarFuzz) {
  std::vector<simd::Kernel> kernels;
  for (simd::Kernel k : {simd::Kernel::kSse4, simd::Kernel::kAvx2}) {
    if (simd::Supports(k)) kernels.push_back(k);
  }
  for (size_t round = 0; round < test::FuzzRounds(30); ++round) {
    const uint64_t seed = test::FuzzSeed(0x51d3, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    util::Rng rng(seed);
    const size_t count = rng.UniformInt(600ull);
    std::vector<uint32_t> values(count);
    std::vector<uint8_t> enc;
    for (auto& v : values) {
      const unsigned width = static_cast<unsigned>(rng.UniformInt(33));
      v = static_cast<uint32_t>(
          rng.UniformInt(width == 0 ? 1ull : (1ull << width)));
      PutVarint64(enc, v);
    }
    std::vector<uint8_t> exact(enc);
    const uint8_t* begin = exact.data();
    const uint8_t* end = exact.data() + exact.size();

    std::vector<uint32_t> ref(count + 1, 0xdeadbeef);
    const uint8_t* ref_end =
        simd::BulkDecodeVarint32Scalar(begin, end, ref.data(), count);
    ASSERT_EQ(ref_end, end);
    for (size_t i = 0; i < count; ++i) ASSERT_EQ(ref[i], values[i]) << i;

    for (const simd::Kernel k : kernels) {
      SCOPED_TRACE(simd::KernelName(k));
      auto fn = k == simd::Kernel::kSse4 ? simd::BulkDecodeVarint32Sse4
                                         : simd::BulkDecodeVarint32Avx2;
      std::vector<uint32_t> out(count + 1, 0xabababab);
      EXPECT_EQ(fn(begin, end, out.data(), count), end);
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], values[i]) << "entry " << i;
      }
      // Partial decode: the window machinery must still stop exactly
      // after `prefix` varints even when more follow in bounds.
      const size_t prefix = count == 0 ? 0 : rng.UniformInt(count);
      std::vector<uint32_t> pa(prefix + 1, 1), pb(prefix + 1, 2);
      const uint8_t* ea =
          simd::BulkDecodeVarint32Scalar(begin, end, pa.data(), prefix);
      const uint8_t* eb = fn(begin, end, pb.data(), prefix);
      EXPECT_EQ(ea, eb);
      for (size_t i = 0; i < prefix; ++i) ASSERT_EQ(pa[i], pb[i]) << i;
    }
  }
}

TEST(BulkVarint, AllKernelsRejectTruncatedAndOverlongInput) {
  std::vector<uint8_t> good;
  PutVarint64(good, 0xffffffffull);  // 5 bytes, final byte 0x0f
  ASSERT_EQ(good.size(), 5u);

  std::vector<const uint8_t* (*)(const uint8_t*, const uint8_t*, uint32_t*,
                                 size_t)>
      kernels{simd::BulkDecodeVarint32Scalar};
  if (simd::Supports(simd::Kernel::kSse4)) {
    kernels.push_back(simd::BulkDecodeVarint32Sse4);
  }
  if (simd::Supports(simd::Kernel::kAvx2)) {
    kernels.push_back(simd::BulkDecodeVarint32Avx2);
  }

  uint32_t out[4] = {};
  for (size_t ki = 0; ki < kernels.size(); ++ki) {
    SCOPED_TRACE(ki);
    // Truncation at every cut point.
    for (size_t cut = 0; cut < good.size(); ++cut) {
      std::vector<uint8_t> t(good.begin(), good.begin() + cut);
      EXPECT_EQ(kernels[ki](t.data(), t.data() + t.size(), out, 1), nullptr)
          << "cut " << cut;
    }
    // A 5-byte varint whose final byte exceeds 0x0f encodes > 32 bits.
    std::vector<uint8_t> wide = {0x80, 0x80, 0x80, 0x80, 0x10};
    EXPECT_EQ(kernels[ki](wide.data(), wide.data() + wide.size(), out, 1),
              nullptr);
    // An overlong (6+ byte) encoding never fits the 32-bit grammar.
    std::vector<uint8_t> overlong = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
    EXPECT_EQ(
        kernels[ki](overlong.data(), overlong.data() + overlong.size(), out, 1),
        nullptr);
  }
}

// The blocked layout must be observationally identical to flat across
// every access path (iterator, ForEach, operator[]) and every kernel.
TEST(PostingArena, BlockedMatchesFlatFuzz) {
  std::vector<simd::Kernel> kernels{simd::Kernel::kScalar};
  for (simd::Kernel k : {simd::Kernel::kSse4, simd::Kernel::kAvx2}) {
    if (simd::Supports(k)) kernels.push_back(k);
  }
  for (size_t round = 0; round < test::FuzzRounds(8); ++round) {
    const uint64_t seed = test::FuzzSeed(0xb10c, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    util::Rng rng(seed);
    std::vector<std::vector<uint32_t>> lists(rng.UniformInt(1, 10));
    for (auto& list : lists) list = RandomU32List(rng, 700);

    PostingArenaBuilder flat_builder(ListLayout::kFlat);
    PostingArenaBuilder blocked_builder(ListLayout::kBlocked);
    for (const auto& list : lists) {
      flat_builder.AddU32List(list);
      blocked_builder.AddU32List(list);
    }
    const PostingArena flat = flat_builder.Finish();
    const PostingArena blocked = blocked_builder.Finish();
    ASSERT_EQ(flat.layout(), ListLayout::kFlat);
    ASSERT_EQ(blocked.layout(), ListLayout::kBlocked);
    EXPECT_EQ(flat.total_entries(), blocked.total_entries());

    for (const simd::Kernel k : kernels) {
      ASSERT_TRUE(simd::ForceKernel(k));
      SCOPED_TRACE(simd::KernelName(k));
      for (size_t i = 0; i < lists.size(); ++i) {
        const PostingListView fv = flat.U32List(i);
        const PostingListView bv = blocked.U32List(i);
        ASSERT_EQ(bv.size(), lists[i].size());
        EXPECT_EQ(bv.Materialize(), lists[i]) << "list " << i;
        std::vector<uint32_t> via_foreach;
        bv.ForEach([&](uint32_t v) { via_foreach.push_back(v); });
        EXPECT_EQ(via_foreach, lists[i]) << "list " << i;
        if (!lists[i].empty()) {
          // Random access hops the skip headers.
          for (int probe = 0; probe < 4; ++probe) {
            const size_t j = rng.UniformInt(lists[i].size());
            EXPECT_EQ(bv[j], lists[i][j]) << "list " << i << " [" << j << "]";
            EXPECT_EQ(fv[j], lists[i][j]);
          }
        }
      }
    }
  }
  simd::ResetKernelFromEnv();
}

TEST(PostingArena, BlockedPairListsMatchFlatFuzz) {
  using Entry = netclus::tops::CoverEntry;
  std::vector<simd::Kernel> kernels{simd::Kernel::kScalar};
  for (simd::Kernel k : {simd::Kernel::kSse4, simd::Kernel::kAvx2}) {
    if (simd::Supports(k)) kernels.push_back(k);
  }
  for (size_t round = 0; round < test::FuzzRounds(6); ++round) {
    const uint64_t seed = test::FuzzSeed(0xbea7, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    util::Rng rng(seed);
    std::vector<std::vector<Entry>> lists(rng.UniformInt(1, 8));
    for (auto& list : lists) {
      const size_t len = rng.UniformInt(400ull);
      for (size_t i = 0; i < len; ++i) {
        Entry e;
        e.id = static_cast<uint32_t>(rng.UniformInt(~0u));
        const uint32_t bits = static_cast<uint32_t>(rng.UniformInt(~0u));
        std::memcpy(&e.dr_m, &bits, sizeof(bits));
        list.push_back(e);
      }
    }
    PostingArenaBuilder flat_builder(ListLayout::kFlat);
    PostingArenaBuilder blocked_builder(ListLayout::kBlocked);
    for (const auto& list : lists) {
      flat_builder.AddPairList(list);
      blocked_builder.AddPairList(list);
    }
    const PostingArena flat = flat_builder.Finish();
    const PostingArena blocked = blocked_builder.Finish();
    for (const simd::Kernel k : kernels) {
      ASSERT_TRUE(simd::ForceKernel(k));
      SCOPED_TRACE(simd::KernelName(k));
      for (size_t i = 0; i < lists.size(); ++i) {
        const auto fv = flat.PairList<Entry>(i);
        const auto bv = blocked.PairList<Entry>(i);
        ASSERT_EQ(fv.size(), lists[i].size());
        ASSERT_EQ(bv.size(), lists[i].size());
        size_t n = 0;
        bv.ForEach([&](const Entry& e) {
          ASSERT_LT(n, lists[i].size());
          EXPECT_EQ(e.id, lists[i][n].id);
          EXPECT_EQ(std::memcmp(&e.dr_m, &lists[i][n].dr_m, sizeof(float)), 0);
          ++n;
        });
        EXPECT_EQ(n, lists[i].size());
        size_t m = 0;
        for (const Entry& e : bv) {
          EXPECT_EQ(e.id, lists[i][m].id);
          ++m;
        }
        EXPECT_EQ(m, lists[i].size());
      }
    }
  }
  simd::ResetKernelFromEnv();
}

// Malformed blocked images must be rejected at FromBlocks with a clean
// error — the lazy views assume validated streams and would otherwise
// walk off the mapping.
TEST(PostingArena, BlockedRejectsMalformedInput) {
  PostingArena reloaded;
  std::string error;

  // Every truncation of a valid multi-block list fails: depending on
  // where the cut lands the count turns implausible, a skip header or
  // payload truncates, or the block walk stops short of the list end.
  std::vector<uint32_t> big(300);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint32_t>(i * 2654435761u);
  }
  PostingArenaBuilder builder(ListLayout::kBlocked);
  builder.AddU32List(big);
  const PostingArena arena = builder.Finish();
  const ByteBlock& data = arena.data_block();
  for (size_t cut = 0; cut < data.size(); cut += 7) {
    std::vector<uint8_t> prefix(data.data(), data.data() + cut);
    EXPECT_FALSE(PostingArena::FromBlocks(
        ByteBlock::FromVector(std::move(prefix)), EfOffsets({0, cut}), 1,
        ListKind::kU32, ListLayout::kBlocked, &reloaded, &error))
        << "cut " << cut;
  }

  // And the untruncated image round-trips.
  ASSERT_TRUE(PostingArena::FromBlocks(arena.data_block(),
                                       arena.offsets_block(), 1,
                                       ListKind::kU32, ListLayout::kBlocked,
                                       &reloaded, &error))
      << error;
  EXPECT_EQ(reloaded.U32List(0).Materialize(), big);

  // Trailing bytes after the final block.
  std::vector<uint8_t> padded(data.data(), data.data() + data.size());
  padded.push_back(0x00);
  EXPECT_FALSE(PostingArena::FromBlocks(
      ByteBlock::FromVector(padded), EfOffsets({0, padded.size()}), 1,
      ListKind::kU32, ListLayout::kBlocked, &reloaded, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  // A skip header whose payload length lies past the list end.
  std::vector<uint8_t> lying;
  PutVarint64(lying, 2);    // count
  lying.push_back(0x02);    // first-value delta (zigzag 1)
  PutVarint64(lying, 200);  // payload claims 200 bytes; only 1 follows
  lying.push_back(0x02);
  EXPECT_FALSE(PostingArena::FromBlocks(
      ByteBlock::FromVector(lying), EfOffsets({0, lying.size()}), 1,
      ListKind::kU32, ListLayout::kBlocked, &reloaded, &error));
  EXPECT_NE(error.find("lying payload"), std::string::npos) << error;

  // A payload varint exceeding 32 bits (final byte > 0x0f).
  std::vector<uint8_t> wide;
  PutVarint64(wide, 2);  // count
  wide.push_back(0x00);  // first-value delta
  PutVarint64(wide, 5);  // payload bytes
  const uint8_t over[5] = {0x80, 0x80, 0x80, 0x80, 0x10};
  wide.insert(wide.end(), over, over + sizeof(over));
  EXPECT_FALSE(PostingArena::FromBlocks(
      ByteBlock::FromVector(wide), EfOffsets({0, wide.size()}), 1,
      ListKind::kU32, ListLayout::kBlocked, &reloaded, &error));
  EXPECT_NE(error.find("malformed block payload"), std::string::npos) << error;
}

// --- Elias-Fano offsets ----------------------------------------------------

TEST(EliasFano, RoundTripFuzz) {
  for (size_t round = 0; round < test::FuzzRounds(20); ++round) {
    const uint64_t seed = test::FuzzSeed(0xef0f, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    util::Rng rng(seed);
    // Non-decreasing with runs of duplicates — empty lists in an offset
    // table produce exactly such plateaus.
    std::vector<uint64_t> values(rng.UniformInt(1, 500));
    uint64_t acc = 0;
    for (auto& v : values) {
      if (rng.UniformInt(4ull) != 0) {
        acc += rng.UniformInt(1ull << rng.UniformInt(20));
      }
      v = acc;
    }
    std::vector<uint8_t> bytes;
    EliasFanoView::Encode(values, &bytes);
    EliasFanoView view;
    std::string error;
    ASSERT_TRUE(
        EliasFanoView::Parse(bytes.data(), bytes.size(), &view, &error))
        << error;
    ASSERT_EQ(view.size(), values.size());
    EXPECT_EQ(view.universe(), values.back());
    EXPECT_EQ(view.serialized_bytes(), bytes.size());
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(view.Get(i), values[i]) << i;
    }
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      uint64_t a = 0, b = 0;
      view.GetPair(i, &a, &b);
      ASSERT_EQ(a, values[i]) << i;
      ASSERT_EQ(b, values[i + 1]) << i;
    }
    // The point of EF offsets: strictly smaller than the plain u64 table
    // once lists are plentiful.
    if (values.size() >= 64) {
      EXPECT_LT(bytes.size(), values.size() * sizeof(uint64_t));
    }
  }
}

TEST(EliasFano, RejectsMalformedImages) {
  const std::vector<uint64_t> values{0, 3, 3, 10, 900, 4096};
  std::vector<uint8_t> bytes;
  EliasFanoView::Encode(values, &bytes);
  EliasFanoView view;
  std::string error;
  ASSERT_TRUE(EliasFanoView::Parse(bytes.data(), bytes.size(), &view, &error));

  // Every truncation fails (short header or bit-array size mismatch).
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(EliasFanoView::Parse(bytes.data(), cut, &view, &error))
        << "cut " << cut;
  }
  // A lying count: n bumped without resizing the arrays — caught by the
  // high-bit population check even when the byte sizes happen to match.
  std::vector<uint8_t> lying_n = bytes;
  const uint64_t n_plus = values.size() + 1;
  std::memcpy(lying_n.data(), &n_plus, sizeof(n_plus));
  EXPECT_FALSE(
      EliasFanoView::Parse(lying_n.data(), lying_n.size(), &view, &error));
  // An absurd low-bit width.
  std::vector<uint8_t> wide_l = bytes;
  const uint64_t l64 = 64;
  std::memcpy(wide_l.data() + 16, &l64, sizeof(l64));
  EXPECT_FALSE(
      EliasFanoView::Parse(wide_l.data(), wide_l.size(), &view, &error));
  EXPECT_NE(error.find("low-bit"), std::string::npos) << error;
}

// --- buffer pool -----------------------------------------------------------

TEST(BufferPool, ParsesHumanByteSizes) {
  uint64_t bytes = 0;
  EXPECT_TRUE(BufferPool::ParseByteSize("123", &bytes));
  EXPECT_EQ(bytes, 123u);
  EXPECT_TRUE(BufferPool::ParseByteSize("64k", &bytes));
  EXPECT_EQ(bytes, 64ull << 10);
  EXPECT_TRUE(BufferPool::ParseByteSize("16MiB", &bytes));
  EXPECT_EQ(bytes, 16ull << 20);
  EXPECT_TRUE(BufferPool::ParseByteSize("2g", &bytes));
  EXPECT_EQ(bytes, 2ull << 30);
  EXPECT_TRUE(BufferPool::ParseByteSize("1tb", &bytes));
  EXPECT_EQ(bytes, 1ull << 40);
  EXPECT_TRUE(BufferPool::ParseByteSize("512B", &bytes));
  EXPECT_EQ(bytes, 512u);
  EXPECT_FALSE(BufferPool::ParseByteSize("", &bytes));
  EXPECT_FALSE(BufferPool::ParseByteSize("lots", &bytes));
  EXPECT_FALSE(BufferPool::ParseByteSize("16Q", &bytes));
  EXPECT_FALSE(BufferPool::ParseByteSize("-5", &bytes));
}

TEST(BufferPool, BoundsResidencyAndSurvivesEviction) {
  // A 1 MiB file of deterministic bytes, mapped with a 2-frame budget.
  const std::string path = "/tmp/netclus_buffer_pool_test.bin";
  std::vector<uint8_t> content(1 << 20);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>((i * 131) ^ (i >> 8));
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
              content.size());
    std::fclose(f);
  }

  std::string error;
  auto file = MappedFile::Open(path, &error, 128 << 10);
  ASSERT_NE(file, nullptr) << error;
  BufferPool* pool = file->pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(BufferPool::Find(file->data() + 100), pool);
  EXPECT_EQ(BufferPool::Find(content.data()), nullptr);

  const uint64_t frame = pool->GetStats().frame_bytes;
  const uint64_t budget_frames = std::max<uint64_t>(1, (128 << 10) / frame);

  // Touch every frame: tracked residency must stay within the budget.
  for (size_t off = 0; off < file->size(); off += frame) {
    pool->Touch(file->data() + off, 1);
  }
  BufferPool::Stats stats = pool->GetStats();
  EXPECT_LE(stats.resident_bytes, budget_frames * frame);
  EXPECT_EQ(stats.faults, file->size() / frame);
  EXPECT_GE(stats.evictions, stats.faults - budget_frames);

  // Evicted pages re-fault with identical contents (read-only mapping).
  EXPECT_EQ(std::memcmp(file->data(), content.data(), content.size()), 0);

  // Pinned frames survive eviction pressure; the budget is a soft cap
  // (budget + pinned) so pinning can never deadlock the pool.
  pool->Pin(file->data(), 1);
  EXPECT_EQ(pool->GetStats().pinned_frames, 1u);
  for (int pass = 0; pass < 3; ++pass) {
    for (size_t off = 0; off < file->size(); off += frame) {
      pool->Touch(file->data() + off, 1);
    }
  }
  stats = pool->GetStats();
  EXPECT_LE(stats.resident_bytes, (budget_frames + 1) * frame);

  pool->Unpin(file->data(), 1);
  EXPECT_EQ(pool->GetStats().pinned_frames, 0u);
  pool->DropAll();
  EXPECT_EQ(pool->GetStats().resident_bytes, 0u);
  // The data still reads back intact after a full drop.
  EXPECT_EQ(std::memcmp(file->data(), content.data(), content.size()), 0);

  file.reset();
  std::remove(path.c_str());
}

// An arena whose bytes live inside a pooled mapping reports list accesses
// to the pool (residency accounting) and decodes identically.
TEST(BufferPool, PooledArenaDecodesIdentically) {
  PostingArenaBuilder builder(ListLayout::kBlocked);
  std::vector<std::vector<uint32_t>> lists;
  util::Rng rng(0x9001);
  for (int i = 0; i < 20; ++i) {
    lists.push_back(RandomU32List(rng, 2000));
    builder.AddU32List(lists.back());
  }
  PostingArena arena = builder.Finish();

  // Serialize data + offsets into one file, mimicking the index image.
  const std::string path = "/tmp/netclus_pooled_arena_test.bin";
  const size_t data_size = arena.data_block().size();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(arena.data_block().data(), 1, data_size, f),
              data_size);
    ASSERT_EQ(std::fwrite(arena.offsets_block().data(), 1,
                          arena.offsets_block().size(), f),
              arena.offsets_block().size());
    std::fclose(f);
  }
  std::string error;
  auto file = MappedFile::Open(path, &error, 64 << 10);
  ASSERT_NE(file, nullptr) << error;
  ByteBlock image = MappedFile::Block(file);
  PostingArena pooled;
  ASSERT_TRUE(PostingArena::FromBlocks(
      image.Slice(0, data_size),
      image.Slice(data_size, image.size() - data_size), lists.size(),
      ListKind::kU32, ListLayout::kBlocked, &pooled, &error))
      << error;
  // The offset table is pinned at attach so extent lookups never re-fault.
  EXPECT_GE(file->pool()->GetStats().pinned_frames, 1u);

  const uint64_t touches_before = file->pool()->GetStats().touches;
  for (size_t i = 0; i < lists.size(); ++i) {
    EXPECT_EQ(pooled.U32List(i).Materialize(), lists[i]) << i;
  }
  EXPECT_GT(file->pool()->GetStats().touches, touches_before);

  pooled = PostingArena();
  image = ByteBlock();
  file.reset();
  std::remove(path.c_str());
}

TEST(ByteReader, SticksAtFailureInsteadOfOverreading) {
  ByteWriter w;
  w.U32(7);
  w.U64(9);
  ByteReader r(ByteBlock::FromVector(w.TakeBytes()));
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 9u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // past the end: zero + sticky failure
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace netclus::store

namespace netclus::tops {
namespace {

struct CoverageFixture {
  graph::RoadNetwork net;
  std::unique_ptr<traj::TrajectoryStore> store;
  SiteSet sites;

  explicit CoverageFixture(uint64_t seed) {
    net = test::MakeGridNetwork(8, 8, 100.0);
    store = std::make_unique<traj::TrajectoryStore>(&net);
    test::FillRandomWalks(store.get(), 30, 4, 10, seed);
    sites = SiteSet::SampleNodes(net, 24, seed ^ 0x5);
  }
};

// The compressed coverage index must be indistinguishable from the raw
// one: same sets through the views, same solver outputs bit for bit.
TEST(CoverageCompression, DifferentialAgainstRawFuzz) {
  for (size_t round = 0; round < test::FuzzRounds(6); ++round) {
    const uint64_t seed = test::FuzzSeed(0xc0ffee, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    CoverageFixture f(seed);
    CoverageConfig config;
    config.tau_m = 700.0;
    const CoverageIndex raw = CoverageIndex::Build(*f.store, f.sites, config);
    config.compress_postings = true;
    const CoverageIndex packed =
        CoverageIndex::Build(*f.store, f.sites, config);
    ASSERT_TRUE(packed.compressed());
    ASSERT_FALSE(raw.compressed());
    ASSERT_EQ(raw.num_sites(), packed.num_sites());
    ASSERT_EQ(raw.num_trajectories(), packed.num_trajectories());

    for (SiteId s = 0; s < raw.num_sites(); ++s) {
      const auto a = raw.TC(s);
      const auto b = packed.TC(s);
      ASSERT_EQ(a.size(), b.size()) << "site " << s;
      auto bi = b.begin();
      for (const CoverEntry& e : a) {
        EXPECT_EQ(e.id, bi->id);
        EXPECT_EQ(e.dr_m, bi->dr_m);
        ++bi;
      }
    }
    for (traj::TrajId t = 0; t < raw.num_trajectories(); ++t) {
      const auto a = raw.SC(t);
      const auto b = packed.SC(t);
      ASSERT_EQ(a.size(), b.size()) << "traj " << t;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].dr_m, b[i].dr_m);
      }
    }

    // Compression reduces the resident footprint.
    EXPECT_LT(packed.MemoryBytes(), raw.MemoryBytes());

    // Solvers traverse the compressed postings and produce bit-identical
    // selections and utilities.
    const PreferenceFunction psi = PreferenceFunction::Binary();
    GreedyConfig gc;
    gc.k = 4;
    const Selection ga = IncGreedy(raw, psi, gc);
    const Selection gb = IncGreedy(packed, psi, gc);
    EXPECT_EQ(ga.sites, gb.sites);
    EXPECT_EQ(ga.utility, gb.utility);
    EXPECT_EQ(ga.marginal_gains, gb.marginal_gains);

    FmGreedyConfig fmc;
    fmc.k = 4;
    const FmGreedyResult fa = FmGreedy(raw, fmc);
    const FmGreedyResult fb = FmGreedy(packed, fmc);
    EXPECT_EQ(fa.selection.sites, fb.selection.sites);
    EXPECT_EQ(fa.estimated_utility, fb.estimated_utility);

    index::JaccardConfig jc;
    const index::JaccardResult ja = JaccardCluster(raw, jc);
    const index::JaccardResult jb = JaccardCluster(packed, jc);
    EXPECT_EQ(ja.num_clusters, jb.num_clusters);
    EXPECT_EQ(ja.site_cluster, jb.site_cluster);
  }
}

}  // namespace
}  // namespace netclus::tops

namespace netclus::index {
namespace {

struct InstanceFixture {
  graph::RoadNetwork net;
  std::unique_ptr<traj::TrajectoryStore> store;
  tops::SiteSet sites;

  explicit InstanceFixture(uint64_t seed = 77) {
    net = test::MakeGridNetwork(9, 9, 100.0);
    store = std::make_unique<traj::TrajectoryStore>(&net);
    test::FillRandomWalks(store.get(), 35, 4, 12, seed);
    sites = tops::SiteSet::AllNodes(net);
  }
};

// TL lists behind the compressed arena must behave exactly like the old
// vector lists across Sec. 6 updates: adds land, removes disappear,
// re-adds resurrect, sizes stay consistent.
TEST(TlOverlay, DynamicUpdatesMatchVectorSemantics) {
  InstanceFixture f;
  ClusterIndexConfig config;
  config.radius_m = 200.0;
  ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);

  auto tl_trajs = [&](uint32_t g) {
    std::set<traj::TrajId> out;
    for (const TlEntry& e : index.cluster(g).tl) out.insert(e.traj);
    return out;
  };

  // Remove a frozen trajectory: it vanishes from every TL it was in.
  const traj::TrajId victim = 3;
  std::vector<uint32_t> crossed = index.cluster_sequence(victim);
  std::sort(crossed.begin(), crossed.end());
  crossed.erase(std::unique(crossed.begin(), crossed.end()), crossed.end());
  ASSERT_FALSE(crossed.empty());
  const uint32_t g0 = crossed[0];
  const size_t before = index.cluster(g0).tl.size();
  ASSERT_TRUE(tl_trajs(g0).count(victim));
  index.RemoveTrajectory(victim);
  EXPECT_EQ(index.cluster(g0).tl.size(), before - 1);
  EXPECT_FALSE(tl_trajs(g0).count(victim));
  EXPECT_TRUE(index.cluster_sequence(victim).empty());
  // Double remove: no-op.
  index.RemoveTrajectory(victim);
  EXPECT_EQ(index.cluster(g0).tl.size(), before - 1);

  // Re-add the same id: overlay entry becomes live again.
  index.AddTrajectory(*f.store, victim);
  EXPECT_EQ(index.cluster(g0).tl.size(), before);
  EXPECT_TRUE(tl_trajs(g0).count(victim));
  EXPECT_FALSE(index.cluster_sequence(victim).empty());

  // And removing it again tombstones the overlay copy too.
  index.RemoveTrajectory(victim);
  EXPECT_FALSE(tl_trajs(g0).count(victim));

  // A brand-new trajectory lands in extra and iterates.
  const traj::TrajId fresh = f.store->Add({0, 1, 2, 11, 20});
  index.AddTrajectory(*f.store, fresh);
  const uint32_t gf = index.cluster_of(0);
  EXPECT_TRUE(tl_trajs(gf).count(fresh));
}

// Copies of an instance (the serving layer's snapshot clones) must share
// the frozen arena bytes — copy-on-write, not deep copy.
TEST(ArenaSharing, CopiesShareFrozenBlocks) {
  InstanceFixture f;
  ClusterIndexConfig config;
  config.radius_m = 250.0;
  const ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  ClusterIndex copy = index;  // what MultiIndex::Clone does per instance
  EXPECT_EQ(index.cc_arena_id(), copy.cc_arena_id());

  // Divergent updates stay private to the copy...
  copy.RemoveTrajectory(0);
  EXPECT_TRUE(copy.cluster_sequence(0).empty());
  EXPECT_FALSE(index.cluster_sequence(0).empty());
  // ...and do not unshare the frozen bytes.
  EXPECT_EQ(index.cc_arena_id(), copy.cc_arena_id());
}

}  // namespace
}  // namespace netclus::index
