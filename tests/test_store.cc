// The compressed posting subsystem (src/store): varint/zigzag codecs,
// arena round-trips, lazy views, and the differential guarantees the
// index relies on — compressed traversal must yield exactly what the raw
// vector representation yields, entry for entry, and copies must share
// frozen arena blocks instead of duplicating them.
#include <cstring>
#include <set>

#include "gtest/gtest.h"
#include "netclus/cluster_index.h"
#include "netclus/jaccard.h"
#include "store/arena.h"
#include "store/binary_io.h"
#include "test_helpers.h"
#include "tops/coverage.h"
#include "tops/fm_greedy.h"
#include "tops/inc_greedy.h"

namespace netclus::store {
namespace {

TEST(Varint, RoundTripsEdgeValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 31) - 1,
                             1ull << 31,
                             (1ull << 32) - 1,
                             1ull << 63,
                             ~0ull};
  for (const uint64_t v : values) {
    std::vector<uint8_t> bytes;
    PutVarint64(bytes, v);
    uint64_t decoded = 0;
    const uint8_t* end =
        GetVarint64(bytes.data(), bytes.data() + bytes.size(), &decoded);
    ASSERT_NE(end, nullptr) << v;
    EXPECT_EQ(end, bytes.data() + bytes.size());
    EXPECT_EQ(decoded, v);
  }
}

TEST(Varint, RejectsTruncatedInput) {
  std::vector<uint8_t> bytes;
  PutVarint64(bytes, ~0ull);
  uint64_t decoded = 0;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(GetVarint64(bytes.data(), bytes.data() + cut, &decoded), nullptr)
        << "cut " << cut;
  }
}

TEST(Varint, ZigZagRoundTripsSigns) {
  const int64_t values[] = {0, 1, -1, 63, -64, 1ll << 40, -(1ll << 40),
                            std::numeric_limits<int64_t>::max(),
                            std::numeric_limits<int64_t>::min()};
  for (const int64_t v : values) EXPECT_EQ(UnZigZag64(ZigZag64(v)), v) << v;
}

TEST(PostingArena, U32ListsRoundTripFuzz) {
  for (size_t round = 0; round < test::FuzzRounds(12); ++round) {
    const uint64_t seed = test::FuzzSeed(0xa12e, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    util::Rng rng(seed);
    std::vector<std::vector<uint32_t>> lists(rng.UniformInt(1, 40));
    for (auto& list : lists) {
      const size_t len = rng.UniformInt(static_cast<uint64_t>(30));
      for (size_t i = 0; i < len; ++i) {
        // Mixed magnitudes so deltas of both signs and widths occur.
        list.push_back(static_cast<uint32_t>(
            rng.UniformInt(rng.UniformInt(2) == 0 ? 100ull : ~0u)));
      }
    }
    PostingArenaBuilder builder;
    for (const auto& list : lists) builder.AddU32List(list);
    const PostingArena arena = builder.Finish();
    ASSERT_EQ(arena.num_lists(), lists.size());
    uint64_t entries = 0;
    for (size_t i = 0; i < lists.size(); ++i) {
      const PostingListView view = arena.U32List(i);
      EXPECT_EQ(view.Materialize(), lists[i]) << "list " << i;
      if (!lists[i].empty()) {
        EXPECT_EQ(view[lists[i].size() - 1], lists[i].back());
      }
      entries += lists[i].size();
    }
    EXPECT_EQ(arena.total_entries(), entries);
  }
}

TEST(PostingArena, PairListsRoundTripFuzz) {
  using Entry = netclus::tops::CoverEntry;
  for (size_t round = 0; round < test::FuzzRounds(12); ++round) {
    const uint64_t seed = test::FuzzSeed(0xb34f, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    util::Rng rng(seed);
    std::vector<std::vector<Entry>> lists(rng.UniformInt(1, 30));
    for (auto& list : lists) {
      const size_t len = rng.UniformInt(static_cast<uint64_t>(25));
      for (size_t i = 0; i < len; ++i) {
        Entry e;
        e.id = static_cast<uint32_t>(rng.UniformInt(~0u));
        // Arbitrary float bit patterns must round-trip exactly, including
        // zero, denormals, infinities, and NaN payloads.
        const uint32_t bits = static_cast<uint32_t>(rng.UniformInt(~0u));
        std::memcpy(&e.dr_m, &bits, sizeof(bits));
        list.push_back(e);
      }
    }
    PostingArenaBuilder builder;
    for (const auto& list : lists) builder.AddPairList(list);
    const PostingArena arena = builder.Finish();
    for (size_t i = 0; i < lists.size(); ++i) {
      const auto view = arena.PairList<Entry>(i);
      ASSERT_EQ(view.size(), lists[i].size());
      size_t k = 0;
      for (const Entry& e : view) {
        EXPECT_EQ(e.id, lists[i][k].id);
        EXPECT_EQ(std::memcmp(&e.dr_m, &lists[i][k].dr_m, sizeof(float)), 0);
        ++k;
      }
    }
  }
}

TEST(PostingArena, FromBlocksValidatesMalformedInput) {
  PostingArenaBuilder builder;
  builder.AddU32List({1, 5, 3});
  builder.AddU32List({});
  PostingArena arena = builder.Finish();

  // A valid round-trip through FromBlocks.
  PostingArena reloaded;
  std::string error;
  ASSERT_TRUE(PostingArena::FromBlocks(arena.data_block(),
                                       arena.offsets_block(), 2,
                                       ListKind::kU32, &reloaded, &error))
      << error;
  EXPECT_EQ(reloaded.U32List(0).Materialize(),
            (std::vector<uint32_t>{1, 5, 3}));

  // Wrong list count -> offset table size mismatch.
  EXPECT_FALSE(PostingArena::FromBlocks(arena.data_block(),
                                        arena.offsets_block(), 3,
                                        ListKind::kU32, &reloaded, &error));
  // Truncated data block -> offsets no longer cover it.
  std::vector<uint8_t> short_data(arena.data_block().data(),
                                  arena.data_block().data() +
                                      arena.data_block().size() - 1);
  EXPECT_FALSE(PostingArena::FromBlocks(ByteBlock::FromVector(short_data),
                                        arena.offsets_block(), 2,
                                        ListKind::kU32, &reloaded, &error));
  // Pair walk over a u32 stream -> entry count cannot match.
  EXPECT_FALSE(PostingArena::FromBlocks(arena.data_block(),
                                        arena.offsets_block(), 2,
                                        ListKind::kPair, &reloaded, &error));

  // A crafted count near 2^64 must be rejected up front, not overflow the
  // validation walk's loop bound into accepting a list that claims 2^63
  // entries (which would later drive iterators off the end).
  std::vector<uint8_t> huge_count;
  PutVarint64(huge_count, 1ull << 63);
  std::vector<uint8_t> huge_offsets(16, 0);
  const uint64_t huge_end = huge_count.size();
  std::memcpy(huge_offsets.data() + 8, &huge_end, sizeof(huge_end));
  for (const ListKind kind : {ListKind::kU32, ListKind::kPair}) {
    EXPECT_FALSE(PostingArena::FromBlocks(
        ByteBlock::FromVector(huge_count), ByteBlock::FromVector(huge_offsets),
        1, kind, &reloaded, &error))
        << static_cast<int>(kind);
    EXPECT_NE(error.find("implausible"), std::string::npos) << error;
  }
}

TEST(ByteReader, SticksAtFailureInsteadOfOverreading) {
  ByteWriter w;
  w.U32(7);
  w.U64(9);
  ByteReader r(ByteBlock::FromVector(w.TakeBytes()));
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 9u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // past the end: zero + sticky failure
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace netclus::store

namespace netclus::tops {
namespace {

struct CoverageFixture {
  graph::RoadNetwork net;
  std::unique_ptr<traj::TrajectoryStore> store;
  SiteSet sites;

  explicit CoverageFixture(uint64_t seed) {
    net = test::MakeGridNetwork(8, 8, 100.0);
    store = std::make_unique<traj::TrajectoryStore>(&net);
    test::FillRandomWalks(store.get(), 30, 4, 10, seed);
    sites = SiteSet::SampleNodes(net, 24, seed ^ 0x5);
  }
};

// The compressed coverage index must be indistinguishable from the raw
// one: same sets through the views, same solver outputs bit for bit.
TEST(CoverageCompression, DifferentialAgainstRawFuzz) {
  for (size_t round = 0; round < test::FuzzRounds(6); ++round) {
    const uint64_t seed = test::FuzzSeed(0xc0ffee, round);
    SCOPED_TRACE(test::SeedTrace(seed));
    CoverageFixture f(seed);
    CoverageConfig config;
    config.tau_m = 700.0;
    const CoverageIndex raw = CoverageIndex::Build(*f.store, f.sites, config);
    config.compress_postings = true;
    const CoverageIndex packed =
        CoverageIndex::Build(*f.store, f.sites, config);
    ASSERT_TRUE(packed.compressed());
    ASSERT_FALSE(raw.compressed());
    ASSERT_EQ(raw.num_sites(), packed.num_sites());
    ASSERT_EQ(raw.num_trajectories(), packed.num_trajectories());

    for (SiteId s = 0; s < raw.num_sites(); ++s) {
      const auto a = raw.TC(s);
      const auto b = packed.TC(s);
      ASSERT_EQ(a.size(), b.size()) << "site " << s;
      auto bi = b.begin();
      for (const CoverEntry& e : a) {
        EXPECT_EQ(e.id, bi->id);
        EXPECT_EQ(e.dr_m, bi->dr_m);
        ++bi;
      }
    }
    for (traj::TrajId t = 0; t < raw.num_trajectories(); ++t) {
      const auto a = raw.SC(t);
      const auto b = packed.SC(t);
      ASSERT_EQ(a.size(), b.size()) << "traj " << t;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].dr_m, b[i].dr_m);
      }
    }

    // Compression reduces the resident footprint.
    EXPECT_LT(packed.MemoryBytes(), raw.MemoryBytes());

    // Solvers traverse the compressed postings and produce bit-identical
    // selections and utilities.
    const PreferenceFunction psi = PreferenceFunction::Binary();
    GreedyConfig gc;
    gc.k = 4;
    const Selection ga = IncGreedy(raw, psi, gc);
    const Selection gb = IncGreedy(packed, psi, gc);
    EXPECT_EQ(ga.sites, gb.sites);
    EXPECT_EQ(ga.utility, gb.utility);
    EXPECT_EQ(ga.marginal_gains, gb.marginal_gains);

    FmGreedyConfig fmc;
    fmc.k = 4;
    const FmGreedyResult fa = FmGreedy(raw, fmc);
    const FmGreedyResult fb = FmGreedy(packed, fmc);
    EXPECT_EQ(fa.selection.sites, fb.selection.sites);
    EXPECT_EQ(fa.estimated_utility, fb.estimated_utility);

    index::JaccardConfig jc;
    const index::JaccardResult ja = JaccardCluster(raw, jc);
    const index::JaccardResult jb = JaccardCluster(packed, jc);
    EXPECT_EQ(ja.num_clusters, jb.num_clusters);
    EXPECT_EQ(ja.site_cluster, jb.site_cluster);
  }
}

}  // namespace
}  // namespace netclus::tops

namespace netclus::index {
namespace {

struct InstanceFixture {
  graph::RoadNetwork net;
  std::unique_ptr<traj::TrajectoryStore> store;
  tops::SiteSet sites;

  explicit InstanceFixture(uint64_t seed = 77) {
    net = test::MakeGridNetwork(9, 9, 100.0);
    store = std::make_unique<traj::TrajectoryStore>(&net);
    test::FillRandomWalks(store.get(), 35, 4, 12, seed);
    sites = tops::SiteSet::AllNodes(net);
  }
};

// TL lists behind the compressed arena must behave exactly like the old
// vector lists across Sec. 6 updates: adds land, removes disappear,
// re-adds resurrect, sizes stay consistent.
TEST(TlOverlay, DynamicUpdatesMatchVectorSemantics) {
  InstanceFixture f;
  ClusterIndexConfig config;
  config.radius_m = 200.0;
  ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);

  auto tl_trajs = [&](uint32_t g) {
    std::set<traj::TrajId> out;
    for (const TlEntry& e : index.cluster(g).tl) out.insert(e.traj);
    return out;
  };

  // Remove a frozen trajectory: it vanishes from every TL it was in.
  const traj::TrajId victim = 3;
  std::vector<uint32_t> crossed = index.cluster_sequence(victim);
  std::sort(crossed.begin(), crossed.end());
  crossed.erase(std::unique(crossed.begin(), crossed.end()), crossed.end());
  ASSERT_FALSE(crossed.empty());
  const uint32_t g0 = crossed[0];
  const size_t before = index.cluster(g0).tl.size();
  ASSERT_TRUE(tl_trajs(g0).count(victim));
  index.RemoveTrajectory(victim);
  EXPECT_EQ(index.cluster(g0).tl.size(), before - 1);
  EXPECT_FALSE(tl_trajs(g0).count(victim));
  EXPECT_TRUE(index.cluster_sequence(victim).empty());
  // Double remove: no-op.
  index.RemoveTrajectory(victim);
  EXPECT_EQ(index.cluster(g0).tl.size(), before - 1);

  // Re-add the same id: overlay entry becomes live again.
  index.AddTrajectory(*f.store, victim);
  EXPECT_EQ(index.cluster(g0).tl.size(), before);
  EXPECT_TRUE(tl_trajs(g0).count(victim));
  EXPECT_FALSE(index.cluster_sequence(victim).empty());

  // And removing it again tombstones the overlay copy too.
  index.RemoveTrajectory(victim);
  EXPECT_FALSE(tl_trajs(g0).count(victim));

  // A brand-new trajectory lands in extra and iterates.
  const traj::TrajId fresh = f.store->Add({0, 1, 2, 11, 20});
  index.AddTrajectory(*f.store, fresh);
  const uint32_t gf = index.cluster_of(0);
  EXPECT_TRUE(tl_trajs(gf).count(fresh));
}

// Copies of an instance (the serving layer's snapshot clones) must share
// the frozen arena bytes — copy-on-write, not deep copy.
TEST(ArenaSharing, CopiesShareFrozenBlocks) {
  InstanceFixture f;
  ClusterIndexConfig config;
  config.radius_m = 250.0;
  const ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  ClusterIndex copy = index;  // what MultiIndex::Clone does per instance
  EXPECT_EQ(index.cc_arena_id(), copy.cc_arena_id());

  // Divergent updates stay private to the copy...
  copy.RemoveTrajectory(0);
  EXPECT_TRUE(copy.cluster_sequence(0).empty());
  EXPECT_FALSE(index.cluster_sequence(0).empty());
  // ...and do not unshare the frozen bytes.
  EXPECT_EQ(index.cc_arena_id(), copy.cc_arena_id());
}

}  // namespace
}  // namespace netclus::index
