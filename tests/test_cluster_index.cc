#include <algorithm>
#include <set>

#include "graph/dijkstra.h"
#include "gtest/gtest.h"
#include "netclus/cluster_index.h"
#include "test_helpers.h"
#include "tops/site_set.h"

namespace netclus::index {
namespace {

struct Fixture {
  graph::RoadNetwork net;
  std::unique_ptr<traj::TrajectoryStore> store;
  tops::SiteSet sites;

  explicit Fixture(uint64_t seed = 41, uint32_t dim = 10) {
    net = test::MakeGridNetwork(dim, dim, 100.0);
    store = std::make_unique<traj::TrajectoryStore>(&net);
    test::FillRandomWalks(store.get(), 40, 4, 12, seed);
    sites = tops::SiteSet::AllNodes(net);
  }
};

TEST(ClusterIndex, EveryClusterWithSitesHasRepresentative) {
  Fixture f;
  ClusterIndexConfig config;
  config.radius_m = 200.0;
  const ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  EXPECT_GT(index.num_clusters(), 0u);
  for (uint32_t g = 0; g < index.num_clusters(); ++g) {
    const Cluster& cluster = index.cluster(g);
    // All nodes are sites here, so every cluster must have a rep.
    ASSERT_FALSE(cluster.sites.empty());
    EXPECT_NE(cluster.representative, tops::kInvalidSite);
  }
}

TEST(ClusterIndex, RepresentativeIsClosestSiteToCenter) {
  Fixture f;
  ClusterIndexConfig config;
  config.radius_m = 250.0;
  const ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  for (uint32_t g = 0; g < index.num_clusters(); ++g) {
    const Cluster& cluster = index.cluster(g);
    for (tops::SiteId s : cluster.sites) {
      EXPECT_GE(index.node_rt_m(f.sites.node(s)) + 1e-6,
                index.node_rt_m(f.sites.node(cluster.representative)));
    }
    EXPECT_FLOAT_EQ(cluster.rep_rt_m,
                    index.node_rt_m(f.sites.node(cluster.representative)));
  }
}

TEST(ClusterIndex, MostFrequentedRuleSelectsBusiestSite) {
  Fixture f;
  ClusterIndexConfig config;
  config.radius_m = 250.0;
  config.representative_rule = RepresentativeRule::kMostFrequented;
  const ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  for (uint32_t g = 0; g < index.num_clusters(); ++g) {
    const Cluster& cluster = index.cluster(g);
    const size_t rep_postings =
        f.store->postings(f.sites.node(cluster.representative)).size();
    for (tops::SiteId s : cluster.sites) {
      EXPECT_LE(f.store->postings(f.sites.node(s)).size(), rep_postings);
    }
  }
}

TEST(ClusterIndex, TrajectoryListsCoverEveryCrossedCluster) {
  Fixture f;
  ClusterIndexConfig config;
  config.radius_m = 200.0;
  const ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  for (traj::TrajId t = 0; t < f.store->total_count(); ++t) {
    const traj::Trajectory& trajectory = f.store->trajectory(t);
    std::set<uint32_t> crossed;
    for (size_t i = 0; i < trajectory.size(); ++i) {
      crossed.insert(index.cluster_of(trajectory.node(i)));
    }
    for (uint32_t g : crossed) {
      const auto& tl = index.cluster(g).tl;
      auto it = std::find_if(tl.begin(), tl.end(),
                             [&](const TlEntry& e) { return e.traj == t; });
      ASSERT_NE(it, tl.end()) << "traj " << t << " missing from TL of " << g;
      // TL distance is the min member-node round trip to the center.
      float expected = std::numeric_limits<float>::infinity();
      for (size_t i = 0; i < trajectory.size(); ++i) {
        if (index.cluster_of(trajectory.node(i)) == g) {
          expected = std::min(expected, index.node_rt_m(trajectory.node(i)));
        }
      }
      EXPECT_FLOAT_EQ(it->dr_m, expected);
    }
  }
}

TEST(ClusterIndex, CompressedSequenceCollapsesConsecutiveDuplicates) {
  Fixture f;
  ClusterIndexConfig config;
  config.radius_m = 300.0;
  const ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  for (traj::TrajId t = 0; t < f.store->total_count(); ++t) {
    const auto& seq = index.cluster_sequence(t);
    ASSERT_FALSE(seq.empty());
    for (size_t i = 1; i < seq.size(); ++i) EXPECT_NE(seq[i], seq[i - 1]);
    // Sequence matches the assignment walk.
    const traj::Trajectory& trajectory = f.store->trajectory(t);
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < trajectory.size(); ++i) {
      const uint32_t g = index.cluster_of(trajectory.node(i));
      if (expected.empty() || expected.back() != g) expected.push_back(g);
    }
    EXPECT_EQ(seq, expected);
  }
  // Compression really compresses at this radius.
  EXPECT_LT(index.stats().compressed_postings, index.stats().raw_postings);
}

TEST(ClusterIndex, NeighborListsRespectHorizonAndSorting) {
  Fixture f;
  ClusterIndexConfig config;
  config.radius_m = 150.0;
  config.gamma = 0.5;
  const ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  const double horizon = 4.0 * config.radius_m * (1.0 + config.gamma);
  graph::DijkstraEngine engine(&f.net);
  for (uint32_t g = 0; g < index.num_clusters(); ++g) {
    const Cluster& cluster = index.cluster(g);
    float prev = 0.0f;
    for (const ClEntry& e : cluster.cl) {
      EXPECT_GE(e.dr_m, prev);
      prev = e.dr_m;
      EXPECT_LE(e.dr_m, horizon + 1e-3);
      const graph::NodeId other_center = index.cluster(e.cluster).center;
      const double expected = engine.PointToPoint(cluster.center, other_center) +
                              engine.PointToPoint(other_center, cluster.center);
      EXPECT_NEAR(e.dr_m, expected, 1e-3);
    }
  }
}

TEST(ClusterIndex, AddTrajectoryUpdatesTlAndSequence) {
  Fixture f;
  ClusterIndexConfig config;
  config.radius_m = 200.0;
  ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  const traj::TrajId t = f.store->Add({0, 1, 2, 3, 4});
  index.AddTrajectory(*f.store, t);
  EXPECT_FALSE(index.cluster_sequence(t).empty());
  const uint32_t g = index.cluster_of(0);
  const auto& tl = index.cluster(g).tl;
  EXPECT_NE(std::find_if(tl.begin(), tl.end(),
                         [&](const TlEntry& e) { return e.traj == t; }),
            tl.end());
}

TEST(ClusterIndex, RemoveTrajectoryPurgesTl) {
  Fixture f;
  ClusterIndexConfig config;
  config.radius_m = 200.0;
  ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  const traj::TrajId victim = 0;
  index.RemoveTrajectory(victim);
  for (uint32_t g = 0; g < index.num_clusters(); ++g) {
    for (const TlEntry& e : index.cluster(g).tl) EXPECT_NE(e.traj, victim);
  }
  EXPECT_TRUE(index.cluster_sequence(victim).empty());
}

TEST(ClusterIndex, RemoveRepresentativeElectsReplacement) {
  Fixture f;
  ClusterIndexConfig config;
  config.radius_m = 250.0;
  ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  // Find a cluster with at least two sites.
  for (uint32_t g = 0; g < index.num_clusters(); ++g) {
    if (index.cluster(g).sites.size() < 2) continue;
    const tops::SiteId rep = index.cluster(g).representative;
    index.RemoveSite(*f.store, f.sites, rep);
    const tops::SiteId new_rep = index.cluster(g).representative;
    EXPECT_NE(new_rep, rep);
    EXPECT_NE(new_rep, tops::kInvalidSite);
    return;
  }
  FAIL() << "no multi-site cluster found";
}

TEST(ClusterIndex, AddCloserSiteBecomesRepresentative) {
  Fixture f;
  // Use a sparse site set so clusters have room for new sites.
  f.sites = tops::SiteSet::SampleNodes(f.net, 5, 77);
  ClusterIndexConfig config;
  config.radius_m = 400.0;
  ClusterIndex index = ClusterIndex::Build(*f.store, f.sites, config);
  // Adding a site at some cluster's center must make it the representative
  // (round trip 0 is minimal).
  const uint32_t g = 0;
  const graph::NodeId center = index.cluster(g).center;
  const tops::SiteId s = f.sites.Add(center);
  index.AddSite(*f.store, f.sites, s);
  EXPECT_EQ(index.cluster(g).representative, s);
  EXPECT_FLOAT_EQ(index.cluster(g).rep_rt_m, 0.0f);
}

TEST(ClusterIndex, MemoryShrinksWithCoarserRadius) {
  Fixture f(43, 12);
  ClusterIndexConfig fine;
  fine.radius_m = 80.0;
  ClusterIndexConfig coarse;
  coarse.radius_m = 700.0;
  const ClusterIndex fine_index = ClusterIndex::Build(*f.store, f.sites, fine);
  const ClusterIndex coarse_index = ClusterIndex::Build(*f.store, f.sites, coarse);
  EXPECT_GT(fine_index.num_clusters(), coarse_index.num_clusters());
  EXPECT_GT(fine_index.MemoryBytes(), 0u);
  // Coarser instances compress trajectories into fewer postings.
  EXPECT_LE(coarse_index.stats().compressed_postings,
            fine_index.stats().compressed_postings);
}

}  // namespace
}  // namespace netclus::index
