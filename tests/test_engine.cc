// End-to-end tests of the public Engine API: the paper's whole pipeline
// (Fig. 2) from raw GPS traces through map-matching, offline index
// construction, online queries, and dynamic updates.
#include <algorithm>
#include <cstdlib>

#include "api/engine.h"
#include "gtest/gtest.h"
#include "store/simd/bulk_varint.h"
#include "test_helpers.h"
#include "traj/trace_synthesizer.h"
#include "traj/trip_generator.h"

namespace netclus {
namespace {

Engine MakeEngine(uint32_t dim = 12, uint64_t seed = 91) {
  graph::RoadNetwork net = test::MakeGridNetwork(dim, dim, 100.0);
  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  Engine::Options options;
  options.index.gamma = 0.75;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 3000.0;
  Engine engine(std::move(net), std::move(sites), options);
  util::Rng rng(seed);
  for (int i = 0; i < 80; ++i) {
    const auto src =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    const auto dst =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    if (src == dst) continue;
    auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3, seed + i);
    if (path.size() >= 2) engine.AddTrajectory(std::move(path));
  }
  return engine;
}

TEST(Engine, FullPipelineProducesResults) {
  Engine engine = MakeEngine();
  engine.BuildIndex();
  ASSERT_TRUE(engine.index_built());
  const auto result = engine.TopK(5, 600.0, tops::PreferenceFunction::Binary());
  EXPECT_EQ(result.selection.sites.size(), 5u);
  EXPECT_GT(result.selection.utility, 0.0);
}

TEST(Engine, GpsTraceIngestionRunsTheMatcher) {
  Engine engine = MakeEngine();
  // Synthesize a trace along a known route and ingest it.
  graph::DijkstraEngine dijkstra(&engine.network());
  const auto route = dijkstra.ShortestPath(0, 143);
  ASSERT_FALSE(route.empty());
  traj::TraceSynthesizerConfig synth;
  synth.noise_sigma_m = 10.0;
  const traj::GpsTrace trace =
      SynthesizeTrace(engine.network(), route, synth);
  const size_t before = engine.store().live_count();
  const auto id = engine.AddGpsTrace(trace);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(engine.store().live_count(), before + 1);
  const auto& matched = engine.store().trajectory(*id);
  EXPECT_EQ(matched.node(0), route.front());
  EXPECT_EQ(matched.node(matched.size() - 1), route.back());
}

TEST(Engine, ExactBaselinesAgreeWithEvaluate) {
  Engine engine = MakeEngine();
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const tops::Selection greedy = engine.ExactGreedy(4, 600.0, psi);
  EXPECT_EQ(greedy.sites.size(), 4u);
  const double eval = engine.EvaluateExact(greedy.sites, 600.0, psi);
  EXPECT_NEAR(eval, greedy.utility, 1e-6);
}

TEST(Engine, NetClusStaysCloseToExactGreedy) {
  Engine engine = MakeEngine();
  engine.BuildIndex();
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const auto netclus = engine.TopK(5, 600.0, psi);
  const tops::Selection greedy = engine.ExactGreedy(5, 600.0, psi);
  const double netclus_utility =
      engine.EvaluateExact(netclus.selection.sites, 600.0, psi);
  // Both heuristics; NetClus may slightly beat greedy, but large excess or
  // large shortfall would indicate a bug.
  EXPECT_LE(netclus_utility, 1.1 * greedy.utility + 1.0);
  EXPECT_GE(netclus_utility, 0.5 * greedy.utility);
}

TEST(Engine, OptimalBeatsGreedyOnSmallInstance) {
  Engine engine = MakeEngine(8, 95);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const auto optimal = engine.ExactOptimal(3, 600.0, psi, 30.0);
  const auto greedy = engine.ExactGreedy(3, 600.0, psi);
  EXPECT_TRUE(optimal.proven_optimal);
  EXPECT_GE(optimal.selection.utility, greedy.utility - 1e-9);
}

TEST(Engine, DynamicUpdatesKeepIndexConsistent) {
  Engine engine = MakeEngine();
  engine.BuildIndex();
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  // Add trajectories after the build; the index must absorb them.
  std::vector<traj::TrajId> added;
  for (int i = 0; i < 50; ++i) {
    added.push_back(engine.AddTrajectory({0, 1, 2, 12, 13, 14}));
  }
  const auto result = engine.TopK(1, 600.0, psi);
  const double utility = engine.EvaluateExact(result.selection.sites, 600.0, psi);
  EXPECT_GT(utility, 50.0 * 0.9);  // the flooded corner dominates
  // Remove them again; utility drops back.
  for (traj::TrajId t : added) engine.RemoveTrajectory(t);
  const auto after = engine.TopK(1, 600.0, psi);
  const double after_utility =
      engine.EvaluateExact(after.selection.sites, 600.0, psi);
  EXPECT_LT(after_utility, utility);
}

TEST(Engine, RemovingUnknownTrajectoryIsADocumentedNoOp) {
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  Engine engine = MakeEngine();
  engine.BuildIndex();
  const size_t live = engine.store().live_count();

  engine.RemoveTrajectory(1u << 30);  // far beyond any allocated id
  EXPECT_EQ(engine.store().live_count(), live);
  engine.RemoveSite(1u << 30);  // unknown site id: same no-op contract
  engine.RemoveTrajectory(0);
  engine.RemoveTrajectory(0);  // double remove: second is a no-op
  EXPECT_EQ(engine.store().live_count(), live - 1);

  // The bogus removals left engine bit-identical to a control that only
  // performed the one legitimate removal (MakeEngine is deterministic).
  Engine control = MakeEngine();
  control.BuildIndex();
  control.RemoveTrajectory(0);
  const auto after = engine.TopK(3, 600.0, psi);
  const auto expected = control.TopK(3, 600.0, psi);
  EXPECT_EQ(after.selection.sites, expected.selection.sites);
  EXPECT_EQ(after.selection.marginal_gains, expected.selection.marginal_gains);
  EXPECT_EQ(after.selection.utility, expected.selection.utility);
}

TEST(Engine, SiteUpdatesChangeTheCandidatePool) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  // Start with a deliberately tiny site pool far from the action.
  tops::SiteSet sites({99});
  Engine::Options options;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 2000.0;
  Engine engine(std::move(net), std::move(sites), options);
  for (int i = 0; i < 30; ++i) {
    engine.AddTrajectory({0, 1, 2, 3, 10, 11, 12, 13});
  }
  engine.BuildIndex();
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const auto before = engine.TopK(1, 400.0, psi);
  const double before_utility =
      engine.EvaluateExact(before.selection.sites, 400.0, psi);
  // Add a site right on the busy corridor.
  const tops::SiteId hot = engine.AddSite(1);
  const auto after = engine.TopK(1, 400.0, psi);
  const double after_utility =
      engine.EvaluateExact(after.selection.sites, 400.0, psi);
  EXPECT_GE(after_utility, before_utility);
  EXPECT_EQ(after.selection.sites[0], hot);
  // Removing it restores the old answer.
  engine.RemoveSite(hot);
  const auto restored = engine.TopK(1, 400.0, psi);
  EXPECT_NE(restored.selection.sites[0], hot);
}

TEST(Engine, CostAndCapacityQueriesWork) {
  Engine engine = MakeEngine();
  engine.BuildIndex();
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const auto costs = tops::DrawNormalCosts(engine.sites().size(), 1.0, 0.3, 0.1, 7);
  const auto cost_result = engine.TopKWithBudget(3.0, 600.0, psi, costs);
  double spent = 0.0;
  for (tops::SiteId s : cost_result.selection.sites) spent += costs[s];
  EXPECT_LE(spent, 3.0 + 1e-9);

  const std::vector<double> caps(engine.sites().size(), 5.0);
  const auto cap_result = engine.TopKWithCapacity(4, 600.0, psi, caps);
  EXPECT_EQ(cap_result.selection.sites.size(), 4u);
  EXPECT_LE(cap_result.selection.utility, 20.0 + 1e-9);
}

TEST(Engine, IndexPersistenceRoundTrip) {
  Engine engine = MakeEngine();
  engine.BuildIndex();
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const auto before = engine.TopK(5, 600.0, psi);

  const std::string path = "/tmp/netclus_engine_persist_test.idx";
  std::string error;
  ASSERT_TRUE(engine.SaveIndexToFile(path, &error)) << error;

  // A second engine over the identical corpus loads instead of rebuilding.
  Engine fresh = MakeEngine();
  ASSERT_FALSE(fresh.index_built());
  ASSERT_TRUE(fresh.LoadIndexFromFile(path, &error)) << error;
  ASSERT_TRUE(fresh.index_built());
  const auto after = fresh.TopK(5, 600.0, psi);
  EXPECT_EQ(before.selection.sites, after.selection.sites);
  EXPECT_DOUBLE_EQ(before.selection.utility, after.selection.utility);
  std::remove(path.c_str());
}

TEST(Engine, LoadRejectsMismatchedCorpus) {
  Engine engine = MakeEngine();
  engine.BuildIndex();
  const std::string path = "/tmp/netclus_engine_mismatch_test.idx";
  std::string error;
  ASSERT_TRUE(engine.SaveIndexToFile(path, &error)) << error;
  Engine other = MakeEngine(9, 123);  // different grid size
  EXPECT_FALSE(other.LoadIndexFromFile(path, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(Engine, CoverageRespectsMemoryBudget) {
  Engine engine = MakeEngine();
  const auto cov = engine.BuildCoverage(600.0, /*memory_budget_bytes=*/512);
  EXPECT_TRUE(cov.oom());
}

// Same corpus as MakeEngine, caller-controlled options (backend, threads,
// load mode) for the persistence differential below.
Engine MakeEngineWith(Engine::Options options, uint32_t dim = 12,
                      uint64_t seed = 91) {
  graph::RoadNetwork net = test::MakeGridNetwork(dim, dim, 100.0);
  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  options.index.gamma = 0.75;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 3000.0;
  Engine engine(std::move(net), std::move(sites), options);
  util::Rng rng(seed);
  for (int i = 0; i < 80; ++i) {
    const auto src =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    const auto dst =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    if (src == dst) continue;
    auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3, seed + i);
    if (path.size() >= 2) engine.AddTrajectory(std::move(path));
  }
  return engine;
}

// The Table 9 / Table 11 acceptance property of the v2 format: an index
// saved to the binary file and loaded back — by heap copy or zero-copy
// mmap, at 1 or 4 worker threads, under every distance backend — answers
// TopK and TopKBatch bit-identically to the in-memory index it came from.
TEST(Engine, SaveLoadV2BitIdenticalAcrossBackendsThreadsAndModes) {
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  std::vector<Engine::QuerySpec> specs;
  for (uint32_t i = 0; i < 6; ++i) {
    Engine::QuerySpec spec;
    spec.k = 3 + i % 3;
    spec.tau_m = 500.0 + 200.0 * i;
    spec.use_fm = i % 2 == 1;
    specs.push_back(spec);
  }
  const std::string path = "/tmp/netclus_engine_v2_diff.idx";
  for (const auto backend : {graph::spf::BackendKind::kDijkstra,
                             graph::spf::BackendKind::kBidirectional,
                             graph::spf::BackendKind::kContractionHierarchies}) {
    SCOPED_TRACE(static_cast<int>(backend));
    Engine::Options base;
    base.distance_backend = backend;
    Engine built = MakeEngineWith(base);
    built.BuildIndex();
    const auto ref_single = built.TopK(5, 700.0, psi);
    const auto ref_batch = built.TopKBatch(specs);
    std::string error;
    ASSERT_TRUE(built.SaveIndexToFile(path, &error)) << error;

    for (const auto mode :
         {index::IndexLoadMode::kCopy, index::IndexLoadMode::kMmap}) {
      for (const uint32_t threads : {1u, 4u}) {
        SCOPED_TRACE(static_cast<int>(mode) * 10 + static_cast<int>(threads));
        Engine::Options options = base;
        options.threads = threads;
        options.index_load_mode = mode;
        Engine fresh = MakeEngineWith(options);
        ASSERT_TRUE(fresh.LoadIndexFromFile(path, &error)) << error;

        const auto single = fresh.TopK(5, 700.0, psi);
        EXPECT_EQ(single.selection.sites, ref_single.selection.sites);
        EXPECT_EQ(single.selection.utility, ref_single.selection.utility);
        EXPECT_EQ(single.selection.marginal_gains,
                  ref_single.selection.marginal_gains);

        const auto batch = fresh.TopKBatch(specs);
        ASSERT_EQ(batch.size(), ref_batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          EXPECT_EQ(batch[i].selection.sites, ref_batch[i].selection.sites)
              << "spec " << i;
          EXPECT_EQ(batch[i].selection.utility, ref_batch[i].selection.utility);
          EXPECT_EQ(batch[i].selection.marginal_gains,
                    ref_batch[i].selection.marginal_gains);
        }
      }
    }
  }
  std::remove(path.c_str());
}

// The v3 acceptance property: TopK answers are bit-identical across
// every SIMD kernel the host supports, with and without a page budget
// smaller than the index file, in both load modes. The kernels decode
// the same grammar and the pool only changes residency, so any
// divergence here is a codec or eviction bug.
TEST(Engine, SaveLoadV3BitIdenticalAcrossSimdKernelsAndPageBudget) {
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  std::vector<Engine::QuerySpec> specs;
  for (uint32_t i = 0; i < 4; ++i) {
    Engine::QuerySpec spec;
    spec.k = 3 + i % 3;
    spec.tau_m = 500.0 + 250.0 * i;
    spec.use_fm = i % 2 == 1;
    specs.push_back(spec);
  }
  const std::string path = "/tmp/netclus_engine_v3_diff.idx";
  Engine built = MakeEngineWith(Engine::Options());
  built.BuildIndex();
  const auto ref_single = built.TopK(5, 700.0, psi);
  const auto ref_batch = built.TopKBatch(specs);
  std::string error;
  ASSERT_TRUE(built.SaveIndexToFile(path, &error)) << error;

  std::vector<store::simd::Kernel> kernels;
  for (const auto k :
       {store::simd::Kernel::kScalar, store::simd::Kernel::kSse4,
        store::simd::Kernel::kAvx2}) {
    if (store::simd::Supports(k)) kernels.push_back(k);
  }
  ASSERT_GE(kernels.size(), 1u);

  for (const store::simd::Kernel kernel : kernels) {
    ASSERT_TRUE(store::simd::ForceKernel(kernel));
    for (const char* budget : {"", "16MiB"}) {
      if (budget[0] != '\0') {
        setenv("NETCLUS_PAGE_BUDGET", budget, 1);
      } else {
        unsetenv("NETCLUS_PAGE_BUDGET");
      }
      for (const auto mode :
           {index::IndexLoadMode::kCopy, index::IndexLoadMode::kMmap}) {
        SCOPED_TRACE(std::string(store::simd::KernelName(kernel)) + "/" +
                     (budget[0] ? budget : "unlimited") + "/mode" +
                     std::to_string(static_cast<int>(mode)));
        Engine::Options options;
        options.index_load_mode = mode;
        Engine fresh = MakeEngineWith(options);
        ASSERT_TRUE(fresh.LoadIndexFromFile(path, &error)) << error;

        const auto single = fresh.TopK(5, 700.0, psi);
        EXPECT_EQ(single.selection.sites, ref_single.selection.sites);
        EXPECT_EQ(single.selection.utility, ref_single.selection.utility);
        EXPECT_EQ(single.selection.marginal_gains,
                  ref_single.selection.marginal_gains);

        const auto batch = fresh.TopKBatch(specs);
        ASSERT_EQ(batch.size(), ref_batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          EXPECT_EQ(batch[i].selection.sites, ref_batch[i].selection.sites)
              << "spec " << i;
          EXPECT_EQ(batch[i].selection.utility, ref_batch[i].selection.utility);
          EXPECT_EQ(batch[i].selection.marginal_gains,
                    ref_batch[i].selection.marginal_gains);
        }
      }
    }
  }
  store::simd::ResetKernelFromEnv();
  unsetenv("NETCLUS_PAGE_BUDGET");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netclus
