// Shared fixtures and reference implementations for the test suite,
// including the seeded property/fuzz harness (see docs/testing.md for the
// seed-replay convention).
#ifndef NETCLUS_TESTS_TEST_HELPERS_H_
#define NETCLUS_TESTS_TEST_HELPERS_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/road_network.h"
#include "tops/coverage.h"
#include "tops/site_set.h"
#include "traj/trajectory_store.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/strings.h"

namespace netclus::test {

/// Directed path 0 -> 1 -> ... -> n-1 with uniform edge length, plus the
/// reverse edges so round trips are finite.
inline graph::RoadNetwork MakeLineNetwork(size_t n, double edge_m = 100.0) {
  graph::RoadNetworkBuilder builder;
  for (size_t i = 0; i < n; ++i) {
    builder.AddNode({static_cast<double>(i) * edge_m, 0.0});
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    builder.AddBidirectional(static_cast<graph::NodeId>(i),
                             static_cast<graph::NodeId>(i + 1), edge_m);
  }
  return std::move(builder).Build();
}

/// Small two-way grid with unit block length.
inline graph::RoadNetwork MakeGridNetwork(uint32_t rows, uint32_t cols,
                                          double block_m = 100.0) {
  graph::RoadNetworkBuilder builder;
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      builder.AddNode({c * block_m, r * block_m});
    }
  }
  auto id = [cols](uint32_t r, uint32_t c) {
    return static_cast<graph::NodeId>(r * cols + c);
  };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddBidirectional(id(r, c), id(r, c + 1), block_m);
      if (r + 1 < rows) builder.AddBidirectional(id(r, c), id(r + 1, c), block_m);
    }
  }
  return std::move(builder).Build();
}

/// Random strongly-connected-ish directed network for property tests;
/// a ring (guaranteeing strong connectivity) plus random chords.
inline graph::RoadNetwork MakeRandomNetwork(uint32_t num_nodes, uint64_t seed) {
  util::Rng rng(seed);
  graph::RoadNetworkBuilder builder;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    builder.AddNode({rng.Uniform(0.0, 5000.0), rng.Uniform(0.0, 5000.0)});
  }
  for (uint32_t i = 0; i < num_nodes; ++i) {
    builder.AddEdge(i, (i + 1) % num_nodes, rng.Uniform(50.0, 400.0));
  }
  const uint32_t chords = num_nodes * 2;
  for (uint32_t c = 0; c < chords; ++c) {
    const auto u = static_cast<graph::NodeId>(rng.UniformInt(num_nodes));
    const auto v = static_cast<graph::NodeId>(rng.UniformInt(num_nodes));
    if (u != v) builder.AddEdge(u, v, rng.Uniform(50.0, 600.0));
  }
  return std::move(builder).Build();
}

/// O(V*E) Bellman-Ford reference distances.
inline std::vector<double> BellmanFord(const graph::RoadNetwork& net,
                                       graph::NodeId source) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(net.num_nodes(), inf);
  dist[source] = 0.0;
  for (size_t round = 0; round + 1 < net.num_nodes(); ++round) {
    bool changed = false;
    for (graph::NodeId u = 0; u < net.num_nodes(); ++u) {
      if (dist[u] == inf) continue;
      for (const graph::Arc& arc : net.OutArcs(u)) {
        if (dist[u] + arc.weight < dist[arc.to]) {
          dist[arc.to] = dist[u] + arc.weight;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

/// Brute-force single-point detour distance: min over trajectory nodes of
/// d(v, s) + d(s, v), using Bellman-Ford reference distances.
inline double BruteSinglePointDetour(const graph::RoadNetwork& net,
                                     const traj::Trajectory& trajectory,
                                     graph::NodeId site_node) {
  const std::vector<double> from_site = BellmanFord(net, site_node);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < trajectory.size(); ++i) {
    const graph::NodeId v = trajectory.node(i);
    const std::vector<double> from_v = BellmanFord(net, v);
    best = std::min(best, from_v[site_node] + from_site[v]);
  }
  return best;
}

/// Brute-force pairwise detour distance with along-path baseline and both
/// legs <= tau, clamped at zero.
inline double BrutePairwiseDetour(const graph::RoadNetwork& net,
                                  const traj::Trajectory& trajectory,
                                  graph::NodeId site_node, double tau_m) {
  const std::vector<double> from_site = BellmanFord(net, site_node);
  double best = std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < trajectory.size(); ++k) {
    const std::vector<double> from_vk = BellmanFord(net, trajectory.node(k));
    const double leave = from_vk[site_node];
    if (leave > tau_m) continue;
    for (size_t l = k; l < trajectory.size(); ++l) {
      const double rejoin = from_site[trajectory.node(l)];
      if (rejoin > tau_m) continue;
      const double detour =
          std::max(0.0, leave + rejoin - trajectory.AlongDistance(k, l));
      best = std::min(best, detour);
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Seeded property/fuzz harness (docs/testing.md)
//
// Property tests iterate `FuzzRounds(n)` rounds; round i derives its seed
// with `FuzzSeed(base, i)`. Both respect env overrides so a CI failure
// replays locally with a single variable:
//   NETCLUS_TEST_SEED=<seed>  pin every round to one seed
//   NETCLUS_TEST_ROUNDS=<n>   shrink/grow the round count
// Wrap each round in SCOPED_TRACE(SeedTrace(seed)) so failures print the
// exact replay command.
// ---------------------------------------------------------------------------

/// Number of rounds a property test should run (env-overridable). When a
/// seed is pinned via NETCLUS_TEST_SEED, one round is enough.
inline size_t FuzzRounds(size_t default_rounds) {
  if (util::GetEnvInt("NETCLUS_TEST_SEED", -1) >= 0) return 1;
  return static_cast<size_t>(util::GetEnvInt(
      "NETCLUS_TEST_ROUNDS", static_cast<int64_t>(default_rounds)));
}

/// Seed for round `round` of a property test (env-overridable).
inline uint64_t FuzzSeed(uint64_t base, size_t round) {
  const int64_t pinned = util::GetEnvInt("NETCLUS_TEST_SEED", -1);
  if (pinned >= 0) return static_cast<uint64_t>(pinned);
  // SplitMix-style spread so adjacent rounds land far apart. Masked to 63
  // bits: the replay env var parses through GetEnvInt (int64), so a seed
  // with the top bit set would not round-trip.
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (round + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return (z ^ (z >> 31)) & 0x7fffffffffffffffULL;
}

/// SCOPED_TRACE message carrying the replay command for a failed round.
inline std::string SeedTrace(uint64_t seed) {
  return util::StrFormat(
      "fuzz seed %llu (replay: NETCLUS_TEST_SEED=%llu ctest -R <test>)",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(seed));
}

/// Random directed graph family for the distance-oracle differential
/// suite. Three sub-families by seed so the suite always exercises:
///  * strongly connected city networks from graph/generators (the shapes
///    the index actually sees);
///  * ring + chord graphs with ~6% zero-weight edges (tie-heavy);
///  * two disconnected islands (unreachable pairs) with zero-weight edges.
inline graph::RoadNetwork MakeSpfTestGraph(uint64_t seed) {
  util::Rng rng(seed ^ 0x5fbful);
  switch (seed % 3) {
    case 0: {
      graph::RandomCityConfig config;
      config.num_nodes = 120 + static_cast<uint32_t>(seed % 5) * 40;
      config.neighbors = 2 + static_cast<uint32_t>(seed % 2);
      config.one_way_fraction = 0.3;
      config.seed = seed;
      return GenerateRandomCity(config);
    }
    case 1: {
      // Ring (strongly connected) + chords, some of them zero-weight.
      const uint32_t n = 80 + static_cast<uint32_t>(seed % 7) * 20;
      graph::RoadNetworkBuilder builder;
      for (uint32_t i = 0; i < n; ++i) {
        builder.AddNode({rng.Uniform(0.0, 4000.0), rng.Uniform(0.0, 4000.0)});
      }
      for (uint32_t i = 0; i < n; ++i) {
        builder.AddEdge(i, (i + 1) % n, rng.Uniform(40.0, 300.0));
      }
      for (uint32_t c = 0; c < n * 2; ++c) {
        const auto u = static_cast<graph::NodeId>(rng.UniformInt(n));
        const auto v = static_cast<graph::NodeId>(rng.UniformInt(n));
        if (u == v) continue;
        const double w =
            rng.Uniform(0.0, 1.0) < 0.06 ? 0.0 : rng.Uniform(40.0, 500.0);
        builder.AddEdge(u, v, w);
      }
      return std::move(builder).Build();
    }
    default: {
      // Two islands, only internally connected: every cross pair is
      // unreachable, so backends must agree on kInfDistance too.
      const uint32_t half = 50 + static_cast<uint32_t>(seed % 5) * 15;
      graph::RoadNetworkBuilder builder;
      for (uint32_t i = 0; i < 2 * half; ++i) {
        builder.AddNode({rng.Uniform(0.0, 4000.0), rng.Uniform(0.0, 4000.0)});
      }
      for (uint32_t island = 0; island < 2; ++island) {
        const uint32_t base = island * half;
        for (uint32_t i = 0; i < half; ++i) {
          builder.AddEdge(base + i, base + (i + 1) % half,
                          rng.Uniform(40.0, 300.0));
        }
        for (uint32_t c = 0; c < half; ++c) {
          const auto u = base + static_cast<graph::NodeId>(rng.UniformInt(half));
          const auto v = base + static_cast<graph::NodeId>(rng.UniformInt(half));
          if (u == v) continue;
          const double w =
              rng.Uniform(0.0, 1.0) < 0.08 ? 0.0 : rng.Uniform(40.0, 400.0);
          builder.AddEdge(u, v, w);
        }
      }
      return std::move(builder).Build();
    }
  }
}

/// `count` random (s, t) query pairs over `net`, seed-deterministic.
inline std::vector<std::pair<graph::NodeId, graph::NodeId>> MakeQueryPairs(
    const graph::RoadNetwork& net, size_t count, uint64_t seed) {
  util::Rng rng(seed ^ 0xbeefULL);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(
        static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes())),
        static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes())));
  }
  return pairs;
}

/// Fills `store` with random-walk trajectories over its network.
inline void FillRandomWalks(traj::TrajectoryStore* store, uint32_t count,
                            uint32_t min_len, uint32_t max_len, uint64_t seed) {
  util::Rng rng(seed);
  const graph::RoadNetwork& net = store->network();
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t len =
        static_cast<uint32_t>(rng.UniformInt(min_len, max_len));
    graph::NodeId cur =
        static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    std::vector<graph::NodeId> nodes{cur};
    for (uint32_t step = 1; step < len; ++step) {
      const auto arcs = net.OutArcs(cur);
      if (arcs.empty()) break;
      cur = arcs[rng.UniformInt(arcs.size())].to;
      nodes.push_back(cur);
    }
    store->Add(std::move(nodes));
  }
}

}  // namespace netclus::test

#endif  // NETCLUS_TESTS_TEST_HELPERS_H_
