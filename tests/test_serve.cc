// Tests for the concurrent serving subsystem (src/serve): snapshot
// isolation, the single-writer update pipeline, the sharded query cache,
// and the NetClusServer facade.
//
// The load-bearing property is at the bottom: with >= 4 reader threads
// submitting queries while the update pipeline publishes new snapshot
// versions, every answer is bit-identical to a serial replay of the same
// spec on the snapshot version that served it. The whole file must also
// be TSan-clean (the CI tsan job runs it under -fsanitize=thread).
#include <atomic>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "gtest/gtest.h"
#include "serve/query_cache.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/update_pipeline.h"
#include "test_helpers.h"
#include "traj/trip_generator.h"

namespace netclus {
namespace {

Engine MakeEngine(uint32_t dim = 10, uint64_t seed = 311) {
  graph::RoadNetwork net = test::MakeGridNetwork(dim, dim, 100.0);
  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  Engine::Options options;
  options.index.gamma = 0.75;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 2000.0;
  Engine engine(std::move(net), std::move(sites), options);
  util::Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    const auto src =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    const auto dst =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    if (src == dst) continue;
    auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3, seed + i);
    if (path.size() >= 2) engine.AddTrajectory(std::move(path));
  }
  engine.BuildIndex();
  return engine;
}

Engine::QuerySpec Spec(uint32_t k, double tau_m) {
  Engine::QuerySpec spec;
  spec.k = k;
  spec.tau_m = tau_m;
  return spec;
}

// Serial replay of a spec on the exact snapshot that served it, in the
// same canonical form the server executes.
index::QueryResult Replay(const serve::ServeResult& served,
                          const Engine::QuerySpec& spec) {
  const Engine::QuerySpec canon = serve::CanonicalizeSpec(spec);
  return served.snapshot->query().Tops(canon.psi, canon.ToConfig(/*threads=*/1));
}

void ExpectBitIdentical(const index::QueryResult& expected,
                        const index::QueryResult& actual) {
  EXPECT_EQ(expected.selection.sites, actual.selection.sites);
  EXPECT_EQ(expected.selection.marginal_gains, actual.selection.marginal_gains);
  EXPECT_EQ(expected.selection.utility, actual.selection.utility);
  EXPECT_EQ(expected.instance_used, actual.instance_used);
  EXPECT_EQ(expected.clusters_considered, actual.clusters_considered);
}

TEST(SnapshotRegistry, PublishAndAcquireAreVersioned) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const serve::SnapshotPtr snap = server->snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_EQ(snap->store().live_count(), engine.store().live_count());
  EXPECT_EQ(snap->sites().size(), engine.sites().size());
  EXPECT_EQ(snap->index().num_instances(), engine.index().num_instances());
}

TEST(NetClusServer, SubmitMatchesEngineAndCaches) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const Engine::QuerySpec spec = Spec(5, 700.0);

  const serve::ServeResult first = server->Submit(spec);
  EXPECT_EQ(first.snapshot_version, 1u);
  EXPECT_FALSE(first.cache_hit);
  const auto direct = engine.TopK(spec.k, spec.tau_m, spec.psi);
  ExpectBitIdentical(direct, first.result);

  const serve::ServeResult second = server->Submit(spec);
  EXPECT_TRUE(second.cache_hit);
  ExpectBitIdentical(first.result, second.result);

  const serve::ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries_served, 2u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_GE(stats.latency_p99_ms, 0.0);
}

TEST(NetClusServer, BatchSharesOneVersionAndKeepsOrder) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  std::vector<Engine::QuerySpec> specs = {Spec(1, 500.0), Spec(3, 700.0),
                                          Spec(5, 900.0), Spec(2, 1100.0)};
  const auto answers = server->SubmitBatch(specs);
  ASSERT_EQ(answers.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(answers[i].snapshot_version, answers[0].snapshot_version);
    EXPECT_EQ(answers[i].result.selection.sites.size(), specs[i].k);
    ExpectBitIdentical(Replay(answers[i], specs[i]), answers[i].result);
  }
}

TEST(UpdatePipeline, PreassignedTrajectoryIdsMatchTheStore) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const auto base_count = server->snapshot()->store().total_count();
  const std::vector<graph::NodeId> path = {0, 1, 2, 12, 22};
  const serve::UpdateTicket t1 = server->MutateAddTrajectory(path);
  const serve::UpdateTicket t2 = server->MutateAddTrajectory({5, 6, 7});
  ASSERT_TRUE(t1.accepted);
  ASSERT_TRUE(t2.accepted);
  EXPECT_EQ(t1.traj, static_cast<traj::TrajId>(base_count));
  EXPECT_EQ(t2.traj, static_cast<traj::TrajId>(base_count + 1));
  server->Flush();
  const serve::SnapshotPtr snap = server->snapshot();
  ASSERT_GT(snap->version(), 1u);
  ASSERT_TRUE(snap->store().is_alive(t1.traj));
  EXPECT_EQ(snap->store().trajectory(t1.traj).nodes(), path);
}

TEST(UpdatePipeline, SnapshotIsolationLeavesOldReadersUntouched) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const Engine::QuerySpec spec = Spec(1, 600.0);

  const serve::ServeResult before = server->Submit(spec);
  const serve::SnapshotPtr old_snap = before.snapshot;

  // Flood one corner so the k=1 answer must change.
  for (int i = 0; i < 50; ++i) {
    server->MutateAddTrajectory({0, 1, 2, 10, 11, 12});
  }
  server->Flush();

  const serve::ServeResult after = server->Submit(spec);
  EXPECT_GT(after.snapshot_version, before.snapshot_version);
  EXPECT_GT(after.result.selection.utility, before.result.selection.utility);

  // The retained old snapshot still answers exactly as it did: immutable.
  ExpectBitIdentical(before.result, Replay(before, spec));
  EXPECT_EQ(old_snap->store().live_count(), engine.store().live_count());
}

TEST(UpdatePipeline, RemovesAndSiteAddsFlowThrough) {
  // A sampled (not all-nodes) site pool, so the AddSite below introduces
  // a site at a genuinely site-less node — the assertion would be vacuous
  // against MakeEngine's AllNodes pool.
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  tops::SiteSet sites = tops::SiteSet::SampleNodes(net, 30, 9);
  Engine::Options options;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 2000.0;
  Engine engine(std::move(net), std::move(sites), options);
  for (int i = 0; i < 30; ++i) {
    engine.AddTrajectory({0, 1, 2, 12, 22, 23});
  }
  engine.BuildIndex();
  auto server = engine.Serve();
  const size_t live_before = server->snapshot()->store().live_count();
  const size_t sites_before = server->snapshot()->sites().size();
  graph::NodeId fresh_node = 0;
  while (engine.sites().SiteAtNode(fresh_node) != tops::kInvalidSite) {
    ++fresh_node;
  }

  const serve::UpdateTicket added = server->MutateAddTrajectory({3, 4, 5, 15});
  server->MutateRemoveTrajectory(added.traj);  // remove the one just queued
  server->MutateRemoveTrajectory(0);           // remove a pre-existing one
  const serve::UpdateTicket site = server->MutateAddSite(fresh_node);
  ASSERT_TRUE(site.accepted);
  server->Flush();

  const serve::SnapshotPtr snap = server->snapshot();
  EXPECT_EQ(snap->store().live_count(), live_before - 1);
  EXPECT_FALSE(snap->store().is_alive(added.traj));
  EXPECT_FALSE(snap->store().is_alive(0));
  EXPECT_EQ(snap->sites().size(), sites_before + 1);
  EXPECT_NE(snap->sites().SiteAtNode(fresh_node), tops::kInvalidSite);
  // The originating engine's site pool is untouched: isolation.
  EXPECT_EQ(engine.sites().SiteAtNode(fresh_node), tops::kInvalidSite);
}

TEST(UpdatePipeline, RejectsInvalidOpsAtEnqueueNotOnTheWriter) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const size_t nodes = engine.network().num_nodes();

  // A client-supplied out-of-range node must bounce the op with
  // accepted = false — never abort the writer thread mid-apply.
  const serve::UpdateTicket bad_traj = server->MutateAddTrajectory(
      {0, static_cast<graph::NodeId>(nodes + 5)});
  EXPECT_FALSE(bad_traj.accepted);
  const serve::UpdateTicket empty_traj = server->MutateAddTrajectory({});
  EXPECT_FALSE(empty_traj.accepted);
  const serve::UpdateTicket bad_site =
      server->MutateAddSite(static_cast<graph::NodeId>(nodes));
  EXPECT_FALSE(bad_site.accepted);

  // Garbage τ from a client (NaN, inf) must select some instance and
  // answer, never abort the service (UBSan guards the cast path).
  const auto nan_q =
      server->Submit(Spec(2, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_GE(nan_q.result.selection.utility, 0.0);
  const auto inf_q =
      server->Submit(Spec(2, std::numeric_limits<double>::infinity()));
  EXPECT_GE(inf_q.result.selection.utility, 0.0);

  // Rejected ops do not consume sequence numbers or trajectory ids: the
  // next valid add gets the id the store will really assign.
  const auto base_count = server->snapshot()->store().total_count();
  const serve::UpdateTicket good = server->MutateAddTrajectory({0, 1, 2});
  ASSERT_TRUE(good.accepted);
  EXPECT_EQ(good.traj, static_cast<traj::TrajId>(base_count));
  server->Flush();
  EXPECT_TRUE(server->snapshot()->store().is_alive(good.traj));
  EXPECT_EQ(server->stats().updates.ops_rejected, 3u);
}

// Satellite regression: unknown / double removes must be safe no-ops at
// every layer (Engine, store, MultiIndex, and through the pipeline).
TEST(DynamicUpdates, RemovingUnknownTrajectoryIsANoOpEverywhere) {
  Engine engine = MakeEngine();
  const size_t live = engine.store().live_count();

  engine.RemoveTrajectory(999999);  // unknown id: logged no-op
  engine.RemoveTrajectory(0);
  engine.RemoveTrajectory(0);  // second remove of the same id: no-op
  EXPECT_EQ(engine.store().live_count(), live - 1);

  auto server = engine.Serve();
  server->MutateRemoveTrajectory(888888);  // unknown id through the pipeline
  server->Flush();
  EXPECT_EQ(server->snapshot()->store().live_count(), live - 1);
  // The pipeline's bogus remove changed nothing: the served answer is
  // bit-identical to querying the engine (which saw only the real remove).
  const auto after = server->Submit(Spec(3, 600.0));
  ExpectBitIdentical(engine.TopK(3, 600.0, tops::PreferenceFunction::Binary()),
                     after.result);
}

TEST(QueryCache, CanonicalizationAndLru) {
  serve::QueryCache::Options options;
  options.capacity = 2;
  options.shards = 1;
  serve::QueryCache cache(options);
  Engine::QuerySpec spec = Spec(5, 800.0);

  // Permuted + duplicated existing services canonicalize to the same key.
  spec.existing_services = {3, 1, 2};
  const serve::QueryKey a = serve::CanonicalQueryKey(7, spec);
  spec.existing_services = {2, 3, 1, 1};
  const serve::QueryKey b = serve::CanonicalQueryKey(7, spec);
  EXPECT_EQ(a, b);
  EXPECT_EQ(serve::QueryKeyHash()(a), serve::QueryKeyHash()(b));
  // A version bump changes the key: publishes implicitly invalidate.
  const serve::QueryKey c = serve::CanonicalQueryKey(8, spec);
  EXPECT_FALSE(a == c);

  index::QueryResult r;
  r.selection.utility = 42.0;
  EXPECT_FALSE(cache.Lookup(a).has_value());
  cache.Insert(a, r);
  ASSERT_TRUE(cache.Lookup(b).has_value());
  EXPECT_EQ(cache.Lookup(b)->selection.utility, 42.0);

  // Fill past capacity; the LRU tail (key `a`) must be evicted after `c`
  // and `d` are touched more recently.
  spec.existing_services.clear();
  const serve::QueryKey d = serve::CanonicalQueryKey(9, spec);
  cache.Insert(c, r);
  cache.Insert(d, r);
  EXPECT_FALSE(cache.Lookup(a).has_value());
  const serve::QueryCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

// Satellite regression (index-format PR): a shard count of zero (config
// typo, zeroed struct) must not divide-by-zero in ShardFor — the
// constructor clamps shards to >= 1 and the cache stays functional.
TEST(QueryCache, ZeroShardsClampsInsteadOfCrashing) {
  serve::QueryCache::Options options;
  options.capacity = 8;
  options.shards = 0;
  serve::QueryCache cache(options);
  EXPECT_TRUE(cache.enabled());

  Engine::QuerySpec spec = Spec(4, 700.0);
  const serve::QueryKey key = serve::CanonicalQueryKey(1, spec);
  index::QueryResult r;
  r.selection.utility = 7.0;
  EXPECT_FALSE(cache.Lookup(key).has_value());  // exercises ShardFor
  cache.Insert(key, r);
  ASSERT_TRUE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.Lookup(key)->selection.utility, 7.0);
}

// More shards than capacity: per-shard budgets must not round every shard
// up to one entry and overshoot the total.
TEST(QueryCache, ShardCountShrinksToCapacity) {
  serve::QueryCache::Options options;
  options.capacity = 2;
  options.shards = 64;
  serve::QueryCache cache(options);
  Engine::QuerySpec spec = Spec(4, 700.0);
  index::QueryResult r;
  for (uint64_t version = 1; version <= 16; ++version) {
    cache.Insert(serve::CanonicalQueryKey(version, spec), r);
  }
  EXPECT_LE(cache.stats().entries, 2u);
}

TEST(NetClusServer, ServerAndRetainedSnapshotsOutliveTheEngine) {
  auto engine = std::make_unique<Engine>(MakeEngine());
  auto server = engine->Serve();
  const Engine::QuerySpec spec = Spec(3, 700.0);
  const serve::ServeResult held = server->Submit(spec);
  engine.reset();  // the server copied network/corpus/sites: self-contained

  ExpectBitIdentical(held.result, Replay(held, spec));  // retained snapshot
  server->MutateAddTrajectory({0, 1, 2, 12});           // pipeline still works
  server->Flush();
  EXPECT_GT(server->snapshot()->version(), 1u);
  const auto fresh = server->Submit(spec);
  EXPECT_EQ(fresh.result.selection.sites.size(), 3u);
}

TEST(NetClusServer, GracefulShutdownDrainsThenRejectsWrites) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  for (int i = 0; i < 40; ++i) {
    server->MutateAddTrajectory({10, 11, 12, 13});
  }
  server->Shutdown();
  const serve::ServerStats stats = server->stats();
  EXPECT_EQ(stats.updates.ops_applied, 40u);  // drained, not dropped
  EXPECT_GE(stats.snapshot_version, 2u);

  const serve::UpdateTicket late = server->MutateAddTrajectory({1, 2});
  EXPECT_FALSE(late.accepted);
  // Reads keep working against the final snapshot.
  const auto result = server->Submit(Spec(2, 600.0));
  EXPECT_EQ(result.result.selection.sites.size(), 2u);
  server->Shutdown();  // idempotent
}

// Acceptance: >= 4 reader threads + a live update stream; every answer is
// bit-identical to a serial replay at its snapshot version.
TEST(NetClusServer, ConcurrentServingMatchesSerialReplayAtEveryVersion) {
  Engine engine = MakeEngine();
  serve::ServerOptions options;
  options.updates.max_batch = 16;
  auto server = engine.Serve(options);

  const std::vector<Engine::QuerySpec> specs = {
      Spec(1, 500.0), Spec(3, 700.0), Spec(5, 900.0),
      Spec(2, 1100.0), Spec(4, 600.0)};

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 30;
  std::vector<std::vector<std::pair<size_t, serve::ServeResult>>> recorded(
      kReaders);
  std::atomic<bool> start{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int q = 0; q < kQueriesPerReader; ++q) {
        const size_t spec_index = (r + q) % specs.size();
        recorded[r].emplace_back(spec_index, server->Submit(specs[spec_index]));
      }
    });
  }

  // The writer: stream trajectory updates while the readers run.
  start.store(true, std::memory_order_release);
  util::Rng rng(77);
  std::vector<traj::TrajId> added;
  for (int batch = 0; batch < 8; ++batch) {
    for (int i = 0; i < 10; ++i) {
      const auto src = static_cast<graph::NodeId>(
          rng.UniformInt(engine.network().num_nodes()));
      const auto dst = static_cast<graph::NodeId>(
          rng.UniformInt(engine.network().num_nodes()));
      if (src == dst) continue;
      auto path =
          traj::RoutePerturbed(engine.network(), src, dst, 0.3, 9000 + batch * 10 + i);
      if (path.size() < 2) continue;
      const serve::UpdateTicket t = server->MutateAddTrajectory(std::move(path));
      if (t.accepted) added.push_back(t.traj);
    }
    if (batch % 3 == 2 && !added.empty()) {
      server->MutateRemoveTrajectory(added[added.size() / 2]);
    }
    server->Flush();
  }
  for (std::thread& t : readers) t.join();
  server->Shutdown();

  // Serial replay: every recorded answer must be bit-identical to a fresh
  // serial computation on the snapshot version that served it.
  uint64_t min_version = ~0ull, max_version = 0;
  size_t total = 0;
  for (int r = 0; r < kReaders; ++r) {
    for (const auto& [spec_index, served] : recorded[r]) {
      ExpectBitIdentical(Replay(served, specs[spec_index]), served.result);
      min_version = std::min(min_version, served.snapshot_version);
      max_version = std::max(max_version, served.snapshot_version);
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kReaders) * kQueriesPerReader);
  // The update stream published while reads were in flight, so readers
  // must have observed more than one version on any realistic schedule;
  // at minimum the final version exceeds the initial one.
  EXPECT_GT(server->snapshot()->version(), 1u);
  EXPECT_GE(max_version, min_version);

  const serve::ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries_served, total);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, total);
  EXPECT_GT(stats.updates.batches_published, 0u);
  EXPECT_EQ(stats.updates.ops_enqueued, stats.updates.ops_applied);
}

// --- serving API v2 (async) --------------------------------------------------

TEST(NetClusServerAsync, SubmitAsyncMatchesSerialReplay) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const Engine::QuerySpec spec = Spec(4, 800.0);

  serve::Request request;
  request.spec = spec;
  const serve::Response first = server->SubmitAsync(request).get();
  ASSERT_EQ(first.status, serve::StatusCode::kOk);
  EXPECT_FALSE(first.stale);
  EXPECT_FALSE(first.shed);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.snapshot_version, 1u);
  EXPECT_GE(first.queue_seconds, 0.0);
  ASSERT_NE(first.snapshot, nullptr);
  ExpectBitIdentical(Replay(first, spec), first.result);

  // Callback flavor; the repeated canonical spec hits the result cache.
  serve::Request again;
  again.spec = spec;
  again.priority = serve::Priority::kInteractive;
  std::promise<serve::Response> done;
  server->SubmitAsync(std::move(again), [&done](serve::Response response) {
    done.set_value(std::move(response));
  });
  const serve::Response second = done.get_future().get();
  ASSERT_EQ(second.status, serve::StatusCode::kOk);
  EXPECT_TRUE(second.cache_hit);
  ExpectBitIdentical(first.result, second.result);
  EXPECT_EQ(server->stats().queries_served, 2u);
}

TEST(NetClusServerAsync, DeadlineExpiredRequestsAreShedNotAnswered) {
  Engine engine = MakeEngine();
  serve::ServerOptions options;
  options.scheduler_workers = 1;
  auto server = engine.Serve(options);

  serve::Request late;
  late.spec = Spec(3, 700.0);
  // Expires before the first stage can possibly start (scheduling alone
  // takes longer), so the check at the stage boundary always sheds it.
  late.soft_deadline_seconds = 1e-9;
  const serve::Response shed = server->SubmitAsync(std::move(late)).get();
  EXPECT_EQ(shed.status, serve::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(shed.snapshot, nullptr);
  EXPECT_GE(server->stats().exec.shed_deadline, 1u);

  // A generous deadline answers normally — and is never counted served
  // twice.
  serve::Request fine;
  fine.spec = Spec(3, 700.0);
  fine.soft_deadline_seconds = 60.0;
  const serve::Response ok = server->SubmitAsync(std::move(fine)).get();
  ASSERT_EQ(ok.status, serve::StatusCode::kOk);
  ExpectBitIdentical(Replay(ok, Spec(3, 700.0)), ok.result);
  EXPECT_EQ(server->stats().queries_served, 1u);
}

TEST(NetClusServerAsync, AdmissionControlRejectsWhenQueueFull) {
  Engine engine = MakeEngine();
  {
    // Capacity 0: every request of that priority is refused at enqueue,
    // deterministically, before any stage runs.
    serve::ServerOptions options;
    options.admission_capacity = {0, 0, 0};
    auto server = engine.Serve(options);
    serve::Request request;
    request.spec = Spec(2, 600.0);
    const serve::Response r = server->SubmitAsync(std::move(request)).get();
    EXPECT_EQ(r.status, serve::StatusCode::kOverloaded);
    EXPECT_TRUE(r.shed);
    EXPECT_EQ(server->stats().exec.shed_overload, 1u);
    EXPECT_EQ(server->stats().queries_served, 0u);
  }
  {
    // Saturating burst against a one-deep queue and one worker: the
    // first request holds the only admission slot until it completes
    // (its fresh answer needs a cover build), so the burst behind it is
    // rejected. Every response is either kOk (and replay-identical) or
    // kOverloaded with shed set — never silently wrong.
    serve::ServerOptions options;
    options.scheduler_workers = 1;
    options.admission_capacity = {1, 1, 1};
    auto server = engine.Serve(options);
    constexpr int kBurst = 16;
    std::vector<std::future<serve::Response>> pending;
    pending.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      serve::Request request;
      request.spec = Spec(3, 1200.0);
      pending.push_back(server->SubmitAsync(std::move(request)));
    }
    int ok = 0, rejected = 0;
    for (auto& f : pending) {
      const serve::Response r = f.get();
      if (r.status == serve::StatusCode::kOk) {
        EXPECT_FALSE(r.shed);
        ExpectBitIdentical(Replay(r, Spec(3, 1200.0)), r.result);
        ++ok;
      } else {
        EXPECT_EQ(r.status, serve::StatusCode::kOverloaded);
        EXPECT_TRUE(r.shed);
        ++rejected;
      }
    }
    EXPECT_EQ(ok + rejected, kBurst);
    EXPECT_GE(ok, 1);
    EXPECT_GE(rejected, 1);
    EXPECT_EQ(server->stats().exec.shed_overload,
              static_cast<uint64_t>(rejected));
  }
}

TEST(NetClusServerAsync, StaleServeFlagsVersionCorrectly) {
  Engine engine = MakeEngine();
  serve::ServerOptions options;
  options.shed_builds_over = 0;  // always prefer stale over a new build
  auto server = engine.Serve(options);
  const Engine::QuerySpec spec = Spec(4, 900.0);

  // Warm version 1 (fills the result and cover caches).
  serve::Request warm;
  warm.spec = spec;
  const serve::Response v1 = server->SubmitAsync(std::move(warm)).get();
  ASSERT_EQ(v1.status, serve::StatusCode::kOk);
  EXPECT_FALSE(v1.stale);
  ASSERT_EQ(v1.snapshot_version, 1u);

  server->MutateAddTrajectory({0, 1, 2, 12, 22});
  server->Flush();
  ASSERT_GE(server->snapshot()->version(), 2u);
  const uint64_t current = server->snapshot()->version();

  // A lag-tolerant request is served from version 1 under backpressure:
  // flagged stale + shed, versioned, and bit-identical to the version-1
  // answer it repeats — never a silently wrong "fresh" result.
  serve::Request lax;
  lax.spec = spec;
  lax.staleness = serve::StalenessPolicy::AllowStaleVersion(4);
  const serve::Response stale = server->SubmitAsync(std::move(lax)).get();
  ASSERT_EQ(stale.status, serve::StatusCode::kOk);
  EXPECT_TRUE(stale.stale);
  EXPECT_TRUE(stale.shed);
  EXPECT_TRUE(stale.cache_hit);
  EXPECT_EQ(stale.snapshot_version, 1u);
  ExpectBitIdentical(v1.result, stale.result);
  ASSERT_NE(stale.snapshot, nullptr);  // v1 retained by the history window
  ExpectBitIdentical(Replay(stale, spec), stale.result);
  EXPECT_EQ(server->stats().exec.stale_served, 1u);
  EXPECT_GE(server->stats().cache.stale_hits, 1u);

  // A fresh-policy request is never stale-served: it pays the build and
  // answers at the current version.
  serve::Request fresh;
  fresh.spec = spec;
  const serve::Response now = server->SubmitAsync(std::move(fresh)).get();
  ASSERT_EQ(now.status, serve::StatusCode::kOk);
  EXPECT_FALSE(now.stale);
  EXPECT_FALSE(now.shed);
  EXPECT_EQ(now.snapshot_version, current);
  ExpectBitIdentical(Replay(now, spec), now.result);
}

TEST(NetClusServerAsync, ShutdownCompletesInFlightRequests) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const std::vector<Engine::QuerySpec> specs = {
      Spec(1, 500.0), Spec(3, 700.0), Spec(5, 900.0),
      Spec(2, 1100.0), Spec(4, 600.0)};
  constexpr int kInFlight = 24;
  std::vector<std::future<serve::Response>> pending;
  pending.reserve(kInFlight);
  for (int i = 0; i < kInFlight; ++i) {
    serve::Request request;
    request.spec = specs[i % specs.size()];
    pending.push_back(server->SubmitAsync(std::move(request)));
  }
  // Shutdown drains: every request admitted above must complete kOk and
  // stay replay-identical; none may be dropped or left hanging.
  server->Shutdown();
  for (int i = 0; i < kInFlight; ++i) {
    const serve::Response r = pending[i].get();
    ASSERT_EQ(r.status, serve::StatusCode::kOk);
    ExpectBitIdentical(Replay(r, specs[i % specs.size()]), r.result);
  }
  // After shutdown the async surface refuses, the blocking shim answers
  // inline (v1 behavior).
  serve::Request late;
  late.spec = specs[0];
  EXPECT_EQ(server->SubmitAsync(std::move(late)).get().status,
            serve::StatusCode::kShutdown);
  const serve::ServeResult inline_read = server->Submit(specs[0]);
  EXPECT_EQ(inline_read.status, serve::StatusCode::kOk);
  EXPECT_EQ(inline_read.result.selection.sites.size(), 1u);
}

TEST(NetClusServerAsync, InvalidSpecMapsToStatusNotException) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();

  serve::Request bad;
  bad.spec.variant = exec::QueryVariant::kTopsCost;
  bad.spec.site_costs = {1.0, 2.0};  // not site-indexed
  bad.spec.budget = 10.0;
  const serve::Response r = server->SubmitAsync(std::move(bad)).get();
  EXPECT_EQ(r.status, serve::StatusCode::kInvalidSpec);
  EXPECT_EQ(r.snapshot, nullptr);

  // The blocking shim maps the same validation failure to a status too.
  Engine::QuerySpec bad_capacity;
  bad_capacity.variant = exec::QueryVariant::kTopsCapacity;
  bad_capacity.site_capacities = {3.0};
  EXPECT_EQ(server->Submit(bad_capacity).status,
            serve::StatusCode::kInvalidSpec);
  EXPECT_EQ(server->stats().queries_served, 0u);

  // A well-formed cost spec flows through the same unified path.
  serve::Request cost;
  cost.spec.variant = exec::QueryVariant::kTopsCost;
  cost.spec.tau_m = 800.0;
  cost.spec.site_costs.assign(engine.sites().size(), 1.0);
  cost.spec.budget = 3.0;
  const serve::Response priced = server->SubmitAsync(std::move(cost)).get();
  ASSERT_EQ(priced.status, serve::StatusCode::kOk);
  EXPECT_FALSE(priced.result.selection.sites.empty());
}

}  // namespace
}  // namespace netclus
