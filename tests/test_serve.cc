// Tests for the concurrent serving subsystem (src/serve): snapshot
// isolation, the single-writer update pipeline, the sharded query cache,
// and the NetClusServer facade.
//
// The load-bearing property is at the bottom: with >= 4 reader threads
// submitting queries while the update pipeline publishes new snapshot
// versions, every answer is bit-identical to a serial replay of the same
// spec on the snapshot version that served it. The whole file must also
// be TSan-clean (the CI tsan job runs it under -fsanitize=thread).
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <future>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "exec/cover_build.h"
#include "gtest/gtest.h"
#include "serve/cover_cache.h"
#include "serve/delta.h"
#include "serve/query_cache.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/standing.h"
#include "serve/update_pipeline.h"
#include "test_helpers.h"
#include "traj/trip_generator.h"
#include "util/flags.h"

namespace netclus {
namespace {

Engine MakeEngine(uint32_t dim = 10, uint64_t seed = 311) {
  graph::RoadNetwork net = test::MakeGridNetwork(dim, dim, 100.0);
  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  Engine::Options options;
  options.index.gamma = 0.75;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 2000.0;
  Engine engine(std::move(net), std::move(sites), options);
  util::Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    const auto src =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    const auto dst =
        static_cast<graph::NodeId>(rng.UniformInt(engine.network().num_nodes()));
    if (src == dst) continue;
    auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3, seed + i);
    if (path.size() >= 2) engine.AddTrajectory(std::move(path));
  }
  engine.BuildIndex();
  return engine;
}

Engine::QuerySpec Spec(uint32_t k, double tau_m) {
  Engine::QuerySpec spec;
  spec.k = k;
  spec.tau_m = tau_m;
  return spec;
}

// Serial replay of a spec on the exact snapshot that served it, in the
// same canonical form the server executes.
index::QueryResult Replay(const serve::ServeResult& served,
                          const Engine::QuerySpec& spec) {
  const Engine::QuerySpec canon = serve::CanonicalizeSpec(spec);
  return served.snapshot->query().Tops(canon.psi, canon.ToConfig(/*threads=*/1));
}

void ExpectBitIdentical(const index::QueryResult& expected,
                        const index::QueryResult& actual) {
  EXPECT_EQ(expected.selection.sites, actual.selection.sites);
  EXPECT_EQ(expected.selection.marginal_gains, actual.selection.marginal_gains);
  EXPECT_EQ(expected.selection.utility, actual.selection.utility);
  EXPECT_EQ(expected.instance_used, actual.instance_used);
  EXPECT_EQ(expected.clusters_considered, actual.clusters_considered);
}

TEST(SnapshotRegistry, PublishAndAcquireAreVersioned) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const serve::SnapshotPtr snap = server->snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_EQ(snap->store().live_count(), engine.store().live_count());
  EXPECT_EQ(snap->sites().size(), engine.sites().size());
  EXPECT_EQ(snap->index().num_instances(), engine.index().num_instances());
}

TEST(NetClusServer, SubmitMatchesEngineAndCaches) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const Engine::QuerySpec spec = Spec(5, 700.0);

  const serve::ServeResult first = server->Submit(spec);
  EXPECT_EQ(first.snapshot_version, 1u);
  EXPECT_FALSE(first.cache_hit);
  const auto direct = engine.TopK(spec.k, spec.tau_m, spec.psi);
  ExpectBitIdentical(direct, first.result);

  const serve::ServeResult second = server->Submit(spec);
  EXPECT_TRUE(second.cache_hit);
  ExpectBitIdentical(first.result, second.result);

  const serve::ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries_served, 2u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_GE(stats.latency_p99_ms, 0.0);
}

TEST(NetClusServer, BatchSharesOneVersionAndKeepsOrder) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  std::vector<Engine::QuerySpec> specs = {Spec(1, 500.0), Spec(3, 700.0),
                                          Spec(5, 900.0), Spec(2, 1100.0)};
  const auto answers = server->SubmitBatch(specs);
  ASSERT_EQ(answers.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(answers[i].snapshot_version, answers[0].snapshot_version);
    EXPECT_EQ(answers[i].result.selection.sites.size(), specs[i].k);
    ExpectBitIdentical(Replay(answers[i], specs[i]), answers[i].result);
  }
}

TEST(UpdatePipeline, PreassignedTrajectoryIdsMatchTheStore) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const auto base_count = server->snapshot()->store().total_count();
  const std::vector<graph::NodeId> path = {0, 1, 2, 12, 22};
  const serve::UpdateTicket t1 = server->MutateAddTrajectory(path);
  const serve::UpdateTicket t2 = server->MutateAddTrajectory({5, 6, 7});
  ASSERT_TRUE(t1.accepted);
  ASSERT_TRUE(t2.accepted);
  EXPECT_EQ(t1.traj, static_cast<traj::TrajId>(base_count));
  EXPECT_EQ(t2.traj, static_cast<traj::TrajId>(base_count + 1));
  server->Flush();
  const serve::SnapshotPtr snap = server->snapshot();
  ASSERT_GT(snap->version(), 1u);
  ASSERT_TRUE(snap->store().is_alive(t1.traj));
  EXPECT_EQ(snap->store().trajectory(t1.traj).nodes(), path);
}

TEST(UpdatePipeline, SnapshotIsolationLeavesOldReadersUntouched) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const Engine::QuerySpec spec = Spec(1, 600.0);

  const serve::ServeResult before = server->Submit(spec);
  const serve::SnapshotPtr old_snap = before.snapshot;

  // Flood one corner so the k=1 answer must change.
  for (int i = 0; i < 50; ++i) {
    server->MutateAddTrajectory({0, 1, 2, 10, 11, 12});
  }
  server->Flush();

  const serve::ServeResult after = server->Submit(spec);
  EXPECT_GT(after.snapshot_version, before.snapshot_version);
  EXPECT_GT(after.result.selection.utility, before.result.selection.utility);

  // The retained old snapshot still answers exactly as it did: immutable.
  ExpectBitIdentical(before.result, Replay(before, spec));
  EXPECT_EQ(old_snap->store().live_count(), engine.store().live_count());
}

TEST(UpdatePipeline, RemovesAndSiteAddsFlowThrough) {
  // A sampled (not all-nodes) site pool, so the AddSite below introduces
  // a site at a genuinely site-less node — the assertion would be vacuous
  // against MakeEngine's AllNodes pool.
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  tops::SiteSet sites = tops::SiteSet::SampleNodes(net, 30, 9);
  Engine::Options options;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 2000.0;
  Engine engine(std::move(net), std::move(sites), options);
  for (int i = 0; i < 30; ++i) {
    engine.AddTrajectory({0, 1, 2, 12, 22, 23});
  }
  engine.BuildIndex();
  auto server = engine.Serve();
  const size_t live_before = server->snapshot()->store().live_count();
  const size_t sites_before = server->snapshot()->sites().size();
  graph::NodeId fresh_node = 0;
  while (engine.sites().SiteAtNode(fresh_node) != tops::kInvalidSite) {
    ++fresh_node;
  }

  const serve::UpdateTicket added = server->MutateAddTrajectory({3, 4, 5, 15});
  server->MutateRemoveTrajectory(added.traj);  // remove the one just queued
  server->MutateRemoveTrajectory(0);           // remove a pre-existing one
  const serve::UpdateTicket site = server->MutateAddSite(fresh_node);
  ASSERT_TRUE(site.accepted);
  server->Flush();

  const serve::SnapshotPtr snap = server->snapshot();
  EXPECT_EQ(snap->store().live_count(), live_before - 1);
  EXPECT_FALSE(snap->store().is_alive(added.traj));
  EXPECT_FALSE(snap->store().is_alive(0));
  EXPECT_EQ(snap->sites().size(), sites_before + 1);
  EXPECT_NE(snap->sites().SiteAtNode(fresh_node), tops::kInvalidSite);
  // The originating engine's site pool is untouched: isolation.
  EXPECT_EQ(engine.sites().SiteAtNode(fresh_node), tops::kInvalidSite);
}

TEST(UpdatePipeline, RejectsInvalidOpsAtEnqueueNotOnTheWriter) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const size_t nodes = engine.network().num_nodes();

  // A client-supplied out-of-range node must bounce the op with
  // accepted = false — never abort the writer thread mid-apply.
  const serve::UpdateTicket bad_traj = server->MutateAddTrajectory(
      {0, static_cast<graph::NodeId>(nodes + 5)});
  EXPECT_FALSE(bad_traj.accepted);
  const serve::UpdateTicket empty_traj = server->MutateAddTrajectory({});
  EXPECT_FALSE(empty_traj.accepted);
  const serve::UpdateTicket bad_site =
      server->MutateAddSite(static_cast<graph::NodeId>(nodes));
  EXPECT_FALSE(bad_site.accepted);

  // Garbage τ from a client (NaN, inf) must select some instance and
  // answer, never abort the service (UBSan guards the cast path).
  const auto nan_q =
      server->Submit(Spec(2, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_GE(nan_q.result.selection.utility, 0.0);
  const auto inf_q =
      server->Submit(Spec(2, std::numeric_limits<double>::infinity()));
  EXPECT_GE(inf_q.result.selection.utility, 0.0);

  // Rejected ops do not consume sequence numbers or trajectory ids: the
  // next valid add gets the id the store will really assign.
  const auto base_count = server->snapshot()->store().total_count();
  const serve::UpdateTicket good = server->MutateAddTrajectory({0, 1, 2});
  ASSERT_TRUE(good.accepted);
  EXPECT_EQ(good.traj, static_cast<traj::TrajId>(base_count));
  server->Flush();
  EXPECT_TRUE(server->snapshot()->store().is_alive(good.traj));
  EXPECT_EQ(server->stats().updates.ops_rejected, 3u);
}

// Satellite regression: unknown / double removes must be safe no-ops at
// every layer (Engine, store, MultiIndex, and through the pipeline).
TEST(DynamicUpdates, RemovingUnknownTrajectoryIsANoOpEverywhere) {
  Engine engine = MakeEngine();
  const size_t live = engine.store().live_count();

  engine.RemoveTrajectory(999999);  // unknown id: logged no-op
  engine.RemoveTrajectory(0);
  engine.RemoveTrajectory(0);  // second remove of the same id: no-op
  EXPECT_EQ(engine.store().live_count(), live - 1);

  auto server = engine.Serve();
  server->MutateRemoveTrajectory(888888);  // unknown id through the pipeline
  server->Flush();
  EXPECT_EQ(server->snapshot()->store().live_count(), live - 1);
  // The pipeline's bogus remove changed nothing: the served answer is
  // bit-identical to querying the engine (which saw only the real remove).
  const auto after = server->Submit(Spec(3, 600.0));
  ExpectBitIdentical(engine.TopK(3, 600.0, tops::PreferenceFunction::Binary()),
                     after.result);
}

TEST(QueryCache, CanonicalizationAndLru) {
  serve::QueryCache::Options options;
  options.capacity = 2;
  options.shards = 1;
  serve::QueryCache cache(options);
  Engine::QuerySpec spec = Spec(5, 800.0);

  // Permuted + duplicated existing services canonicalize to the same key.
  spec.existing_services = {3, 1, 2};
  const serve::QueryKey a = serve::CanonicalQueryKey(7, spec);
  spec.existing_services = {2, 3, 1, 1};
  const serve::QueryKey b = serve::CanonicalQueryKey(7, spec);
  EXPECT_EQ(a, b);
  EXPECT_EQ(serve::QueryKeyHash()(a), serve::QueryKeyHash()(b));
  // A version bump changes the key: publishes implicitly invalidate.
  const serve::QueryKey c = serve::CanonicalQueryKey(8, spec);
  EXPECT_FALSE(a == c);

  index::QueryResult r;
  r.selection.utility = 42.0;
  EXPECT_FALSE(cache.Lookup(a).has_value());
  cache.Insert(a, r);
  ASSERT_TRUE(cache.Lookup(b).has_value());
  EXPECT_EQ(cache.Lookup(b)->selection.utility, 42.0);

  // Fill past capacity; the LRU tail (key `a`) must be evicted after `c`
  // and `d` are touched more recently.
  spec.existing_services.clear();
  const serve::QueryKey d = serve::CanonicalQueryKey(9, spec);
  cache.Insert(c, r);
  cache.Insert(d, r);
  EXPECT_FALSE(cache.Lookup(a).has_value());
  const serve::QueryCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

// Satellite regression (index-format PR): a shard count of zero (config
// typo, zeroed struct) must not divide-by-zero in ShardFor — the
// constructor clamps shards to >= 1 and the cache stays functional.
TEST(QueryCache, ZeroShardsClampsInsteadOfCrashing) {
  serve::QueryCache::Options options;
  options.capacity = 8;
  options.shards = 0;
  serve::QueryCache cache(options);
  EXPECT_TRUE(cache.enabled());

  Engine::QuerySpec spec = Spec(4, 700.0);
  const serve::QueryKey key = serve::CanonicalQueryKey(1, spec);
  index::QueryResult r;
  r.selection.utility = 7.0;
  EXPECT_FALSE(cache.Lookup(key).has_value());  // exercises ShardFor
  cache.Insert(key, r);
  ASSERT_TRUE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.Lookup(key)->selection.utility, 7.0);
}

// More shards than capacity: per-shard budgets must not round every shard
// up to one entry and overshoot the total.
TEST(QueryCache, ShardCountShrinksToCapacity) {
  serve::QueryCache::Options options;
  options.capacity = 2;
  options.shards = 64;
  serve::QueryCache cache(options);
  Engine::QuerySpec spec = Spec(4, 700.0);
  index::QueryResult r;
  for (uint64_t version = 1; version <= 16; ++version) {
    cache.Insert(serve::CanonicalQueryKey(version, spec), r);
  }
  EXPECT_LE(cache.stats().entries, 2u);
}

TEST(NetClusServer, ServerAndRetainedSnapshotsOutliveTheEngine) {
  auto engine = std::make_unique<Engine>(MakeEngine());
  auto server = engine->Serve();
  const Engine::QuerySpec spec = Spec(3, 700.0);
  const serve::ServeResult held = server->Submit(spec);
  engine.reset();  // the server copied network/corpus/sites: self-contained

  ExpectBitIdentical(held.result, Replay(held, spec));  // retained snapshot
  server->MutateAddTrajectory({0, 1, 2, 12});           // pipeline still works
  server->Flush();
  EXPECT_GT(server->snapshot()->version(), 1u);
  const auto fresh = server->Submit(spec);
  EXPECT_EQ(fresh.result.selection.sites.size(), 3u);
}

TEST(NetClusServer, GracefulShutdownDrainsThenRejectsWrites) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  for (int i = 0; i < 40; ++i) {
    server->MutateAddTrajectory({10, 11, 12, 13});
  }
  server->Shutdown();
  const serve::ServerStats stats = server->stats();
  EXPECT_EQ(stats.updates.ops_applied, 40u);  // drained, not dropped
  EXPECT_GE(stats.snapshot_version, 2u);

  const serve::UpdateTicket late = server->MutateAddTrajectory({1, 2});
  EXPECT_FALSE(late.accepted);
  // Reads keep working against the final snapshot.
  const auto result = server->Submit(Spec(2, 600.0));
  EXPECT_EQ(result.result.selection.sites.size(), 2u);
  server->Shutdown();  // idempotent
}

// Acceptance: >= 4 reader threads + a live update stream; every answer is
// bit-identical to a serial replay at its snapshot version.
TEST(NetClusServer, ConcurrentServingMatchesSerialReplayAtEveryVersion) {
  Engine engine = MakeEngine();
  serve::ServerOptions options;
  options.updates.max_batch = 16;
  auto server = engine.Serve(options);

  const std::vector<Engine::QuerySpec> specs = {
      Spec(1, 500.0), Spec(3, 700.0), Spec(5, 900.0),
      Spec(2, 1100.0), Spec(4, 600.0)};

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 30;
  std::vector<std::vector<std::pair<size_t, serve::ServeResult>>> recorded(
      kReaders);
  std::atomic<bool> start{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int q = 0; q < kQueriesPerReader; ++q) {
        const size_t spec_index = (r + q) % specs.size();
        recorded[r].emplace_back(spec_index, server->Submit(specs[spec_index]));
      }
    });
  }

  // The writer: stream trajectory updates while the readers run.
  start.store(true, std::memory_order_release);
  util::Rng rng(77);
  std::vector<traj::TrajId> added;
  for (int batch = 0; batch < 8; ++batch) {
    for (int i = 0; i < 10; ++i) {
      const auto src = static_cast<graph::NodeId>(
          rng.UniformInt(engine.network().num_nodes()));
      const auto dst = static_cast<graph::NodeId>(
          rng.UniformInt(engine.network().num_nodes()));
      if (src == dst) continue;
      auto path =
          traj::RoutePerturbed(engine.network(), src, dst, 0.3, 9000 + batch * 10 + i);
      if (path.size() < 2) continue;
      const serve::UpdateTicket t = server->MutateAddTrajectory(std::move(path));
      if (t.accepted) added.push_back(t.traj);
    }
    if (batch % 3 == 2 && !added.empty()) {
      server->MutateRemoveTrajectory(added[added.size() / 2]);
    }
    server->Flush();
  }
  for (std::thread& t : readers) t.join();
  server->Shutdown();

  // Serial replay: every recorded answer must be bit-identical to a fresh
  // serial computation on the snapshot version that served it.
  uint64_t min_version = ~0ull, max_version = 0;
  size_t total = 0;
  for (int r = 0; r < kReaders; ++r) {
    for (const auto& [spec_index, served] : recorded[r]) {
      ExpectBitIdentical(Replay(served, specs[spec_index]), served.result);
      min_version = std::min(min_version, served.snapshot_version);
      max_version = std::max(max_version, served.snapshot_version);
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kReaders) * kQueriesPerReader);
  // The update stream published while reads were in flight, so readers
  // must have observed more than one version on any realistic schedule;
  // at minimum the final version exceeds the initial one.
  EXPECT_GT(server->snapshot()->version(), 1u);
  EXPECT_GE(max_version, min_version);

  const serve::ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries_served, total);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, total);
  EXPECT_GT(stats.updates.batches_published, 0u);
  EXPECT_EQ(stats.updates.ops_enqueued, stats.updates.ops_applied);
}

// --- serving API v2 (async) --------------------------------------------------

TEST(NetClusServerAsync, SubmitAsyncMatchesSerialReplay) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const Engine::QuerySpec spec = Spec(4, 800.0);

  serve::Request request;
  request.spec = spec;
  const serve::Response first = server->SubmitAsync(request).get();
  ASSERT_EQ(first.status, serve::StatusCode::kOk);
  EXPECT_FALSE(first.stale);
  EXPECT_FALSE(first.shed);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.snapshot_version, 1u);
  EXPECT_GE(first.queue_seconds, 0.0);
  ASSERT_NE(first.snapshot, nullptr);
  ExpectBitIdentical(Replay(first, spec), first.result);

  // Callback flavor; the repeated canonical spec hits the result cache.
  serve::Request again;
  again.spec = spec;
  again.priority = serve::Priority::kInteractive;
  std::promise<serve::Response> done;
  server->SubmitAsync(std::move(again), [&done](serve::Response response) {
    done.set_value(std::move(response));
  });
  const serve::Response second = done.get_future().get();
  ASSERT_EQ(second.status, serve::StatusCode::kOk);
  EXPECT_TRUE(second.cache_hit);
  ExpectBitIdentical(first.result, second.result);
  EXPECT_EQ(server->stats().queries_served, 2u);
}

TEST(NetClusServerAsync, DeadlineExpiredRequestsAreShedNotAnswered) {
  Engine engine = MakeEngine();
  serve::ServerOptions options;
  options.scheduler_workers = 1;
  auto server = engine.Serve(options);

  serve::Request late;
  late.spec = Spec(3, 700.0);
  // Expires before the first stage can possibly start (scheduling alone
  // takes longer), so the check at the stage boundary always sheds it.
  late.soft_deadline_seconds = 1e-9;
  const serve::Response shed = server->SubmitAsync(std::move(late)).get();
  EXPECT_EQ(shed.status, serve::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(shed.snapshot, nullptr);
  EXPECT_GE(server->stats().exec.shed_deadline, 1u);

  // A generous deadline answers normally — and is never counted served
  // twice.
  serve::Request fine;
  fine.spec = Spec(3, 700.0);
  fine.soft_deadline_seconds = 60.0;
  const serve::Response ok = server->SubmitAsync(std::move(fine)).get();
  ASSERT_EQ(ok.status, serve::StatusCode::kOk);
  ExpectBitIdentical(Replay(ok, Spec(3, 700.0)), ok.result);
  EXPECT_EQ(server->stats().queries_served, 1u);
}

TEST(NetClusServerAsync, AdmissionControlRejectsWhenQueueFull) {
  Engine engine = MakeEngine();
  {
    // Capacity 0: every request of that priority is refused at enqueue,
    // deterministically, before any stage runs.
    serve::ServerOptions options;
    options.admission_capacity = {0, 0, 0};
    auto server = engine.Serve(options);
    serve::Request request;
    request.spec = Spec(2, 600.0);
    const serve::Response r = server->SubmitAsync(std::move(request)).get();
    EXPECT_EQ(r.status, serve::StatusCode::kOverloaded);
    EXPECT_TRUE(r.shed);
    EXPECT_EQ(server->stats().exec.shed_overload, 1u);
    EXPECT_EQ(server->stats().queries_served, 0u);
  }
  {
    // Saturating burst against a one-deep queue and one worker: the
    // first request holds the only admission slot until it completes
    // (its fresh answer needs a cover build), so the burst behind it is
    // rejected. Every response is either kOk (and replay-identical) or
    // kOverloaded with shed set — never silently wrong.
    serve::ServerOptions options;
    options.scheduler_workers = 1;
    options.admission_capacity = {1, 1, 1};
    auto server = engine.Serve(options);
    constexpr int kBurst = 16;
    std::vector<std::future<serve::Response>> pending;
    pending.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      serve::Request request;
      request.spec = Spec(3, 1200.0);
      pending.push_back(server->SubmitAsync(std::move(request)));
    }
    int ok = 0, rejected = 0;
    for (auto& f : pending) {
      const serve::Response r = f.get();
      if (r.status == serve::StatusCode::kOk) {
        EXPECT_FALSE(r.shed);
        ExpectBitIdentical(Replay(r, Spec(3, 1200.0)), r.result);
        ++ok;
      } else {
        EXPECT_EQ(r.status, serve::StatusCode::kOverloaded);
        EXPECT_TRUE(r.shed);
        ++rejected;
      }
    }
    EXPECT_EQ(ok + rejected, kBurst);
    EXPECT_GE(ok, 1);
    EXPECT_GE(rejected, 1);
    EXPECT_EQ(server->stats().exec.shed_overload,
              static_cast<uint64_t>(rejected));
  }
}

TEST(NetClusServerAsync, StaleServeFlagsVersionCorrectly) {
  Engine engine = MakeEngine();
  serve::ServerOptions options;
  options.shed_builds_over = 0;  // always prefer stale over a new build
  auto server = engine.Serve(options);
  const Engine::QuerySpec spec = Spec(4, 900.0);

  // Warm version 1 (fills the result and cover caches).
  serve::Request warm;
  warm.spec = spec;
  const serve::Response v1 = server->SubmitAsync(std::move(warm)).get();
  ASSERT_EQ(v1.status, serve::StatusCode::kOk);
  EXPECT_FALSE(v1.stale);
  ASSERT_EQ(v1.snapshot_version, 1u);

  server->MutateAddTrajectory({0, 1, 2, 12, 22});
  server->Flush();
  ASSERT_GE(server->snapshot()->version(), 2u);
  const uint64_t current = server->snapshot()->version();

  // A lag-tolerant request is served from version 1 under backpressure:
  // flagged stale + shed, versioned, and bit-identical to the version-1
  // answer it repeats — never a silently wrong "fresh" result.
  serve::Request lax;
  lax.spec = spec;
  lax.staleness = serve::StalenessPolicy::AllowStaleVersion(4);
  const serve::Response stale = server->SubmitAsync(std::move(lax)).get();
  ASSERT_EQ(stale.status, serve::StatusCode::kOk);
  EXPECT_TRUE(stale.stale);
  EXPECT_TRUE(stale.shed);
  EXPECT_TRUE(stale.cache_hit);
  EXPECT_EQ(stale.snapshot_version, 1u);
  ExpectBitIdentical(v1.result, stale.result);
  ASSERT_NE(stale.snapshot, nullptr);  // v1 retained by the history window
  ExpectBitIdentical(Replay(stale, spec), stale.result);
  EXPECT_EQ(server->stats().exec.stale_served, 1u);
  EXPECT_GE(server->stats().cache.stale_hits, 1u);

  // A fresh-policy request is never stale-served: it pays the build and
  // answers at the current version.
  serve::Request fresh;
  fresh.spec = spec;
  const serve::Response now = server->SubmitAsync(std::move(fresh)).get();
  ASSERT_EQ(now.status, serve::StatusCode::kOk);
  EXPECT_FALSE(now.stale);
  EXPECT_FALSE(now.shed);
  EXPECT_EQ(now.snapshot_version, current);
  ExpectBitIdentical(Replay(now, spec), now.result);
}

TEST(NetClusServerAsync, ShutdownCompletesInFlightRequests) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const std::vector<Engine::QuerySpec> specs = {
      Spec(1, 500.0), Spec(3, 700.0), Spec(5, 900.0),
      Spec(2, 1100.0), Spec(4, 600.0)};
  constexpr int kInFlight = 24;
  std::vector<std::future<serve::Response>> pending;
  pending.reserve(kInFlight);
  for (int i = 0; i < kInFlight; ++i) {
    serve::Request request;
    request.spec = specs[i % specs.size()];
    pending.push_back(server->SubmitAsync(std::move(request)));
  }
  // Shutdown drains: every request admitted above must complete kOk and
  // stay replay-identical; none may be dropped or left hanging.
  server->Shutdown();
  for (int i = 0; i < kInFlight; ++i) {
    const serve::Response r = pending[i].get();
    ASSERT_EQ(r.status, serve::StatusCode::kOk);
    ExpectBitIdentical(Replay(r, specs[i % specs.size()]), r.result);
  }
  // After shutdown the async surface refuses, the blocking shim answers
  // inline (v1 behavior).
  serve::Request late;
  late.spec = specs[0];
  EXPECT_EQ(server->SubmitAsync(std::move(late)).get().status,
            serve::StatusCode::kShutdown);
  const serve::ServeResult inline_read = server->Submit(specs[0]);
  EXPECT_EQ(inline_read.status, serve::StatusCode::kOk);
  EXPECT_EQ(inline_read.result.selection.sites.size(), 1u);
}

TEST(NetClusServerAsync, InvalidSpecMapsToStatusNotException) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();

  serve::Request bad;
  bad.spec.variant = exec::QueryVariant::kTopsCost;
  bad.spec.site_costs = {1.0, 2.0};  // not site-indexed
  bad.spec.budget = 10.0;
  const serve::Response r = server->SubmitAsync(std::move(bad)).get();
  EXPECT_EQ(r.status, serve::StatusCode::kInvalidSpec);
  EXPECT_EQ(r.snapshot, nullptr);

  // The blocking shim maps the same validation failure to a status too.
  Engine::QuerySpec bad_capacity;
  bad_capacity.variant = exec::QueryVariant::kTopsCapacity;
  bad_capacity.site_capacities = {3.0};
  EXPECT_EQ(server->Submit(bad_capacity).status,
            serve::StatusCode::kInvalidSpec);
  EXPECT_EQ(server->stats().queries_served, 0u);

  // A well-formed cost spec flows through the same unified path.
  serve::Request cost;
  cost.spec.variant = exec::QueryVariant::kTopsCost;
  cost.spec.tau_m = 800.0;
  cost.spec.site_costs.assign(engine.sites().size(), 1.0);
  cost.spec.budget = 3.0;
  const serve::Response priced = server->SubmitAsync(std::move(cost)).get();
  ASSERT_EQ(priced.status, serve::StatusCode::kOk);
  EXPECT_FALSE(priced.result.selection.sites.empty());
}

// --- delta-aware carryover, standing queries, cache accounting --------------

// Satellite regression: LookupStale's counters must partition exactly.
// A lag-0 find is an ordinary fresh hit, a lagged find is a stale hit,
// and a fully failed ladder is one miss (it used to count lag-0 finds as
// stale — inflating the stale-serving metric — and failed ladders as
// nothing at all).
TEST(QueryCache, LookupStaleCountsFreshStaleAndMissExactly) {
  serve::QueryCache::Options options;
  options.capacity = 64;
  options.shards = 4;
  serve::QueryCache cache(options);
  const Engine::QuerySpec spec = Spec(3, 700.0);
  index::QueryResult result;
  result.selection.utility = 5.0;
  cache.Insert(serve::CanonicalQueryKey(3, spec), result);

  // Found at lag 0: the fresh version answered — hits, not stale_hits.
  uint64_t served = 0;
  ASSERT_TRUE(cache.LookupStale(serve::CanonicalQueryKey(3, spec), 4, &served)
                  .has_value());
  EXPECT_EQ(served, 3u);
  serve::QueryCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.stale_hits, 0u);
  EXPECT_EQ(s.misses, 0u);

  // Found at lag 2: a genuine stale serve.
  ASSERT_TRUE(cache.LookupStale(serve::CanonicalQueryKey(5, spec), 2, &served)
                  .has_value());
  EXPECT_EQ(served, 3u);
  s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.stale_hits, 1u);
  EXPECT_EQ(s.misses, 0u);

  // Whole ladder fails (versions 9, 8, 7 all absent): exactly one miss.
  EXPECT_FALSE(cache.LookupStale(serve::CanonicalQueryKey(9, spec), 2, &served)
                   .has_value());
  s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.stale_hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

exec::CoverPtr FakeCover(uint64_t bytes) {
  auto cover = std::make_shared<exec::BuiltCover>();
  cover->bytes = bytes;
  return cover;
}

exec::CoverKey TauKey(double tau_m) {
  exec::CoverKey key;
  key.instance = 0;
  key.tau_bits = std::bit_cast<uint64_t>(tau_m);
  return key;
}

// Satellite regression: eviction must never evict an in-flight build.
// Evicting one breaks the build-once rendezvous — a second caller for the
// same key would miss and start a duplicate build. Hammer one single-slot
// shard with more distinct keys than capacity from several threads and
// assert no key ever had two builders at once, and that the byte ledger
// balances when the dust settles. Run under TSan by the CI tsan job.
TEST(CoverCache, EvictionNeverBreaksBuildOnceRendezvous) {
  serve::CoverCache::Options options;
  options.capacity = 1;  // four keys fight over one completed slot
  options.shards = 1;
  options.respect_env = false;  // the CI matrix sets NETCLUS_COVER_CACHE=0
  serve::CoverCache cache(options);

  constexpr int kThreads = 4;
  constexpr int kKeys = 4;
  constexpr int kIters = 25;
  std::array<std::atomic<int>, kKeys> building{};
  std::atomic<bool> concurrent_build{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int key_index = (t + i) % kKeys;
        bool reused = false;
        cache.GetOrBuild(
            1, TauKey(100.0 * (1 + key_index)),
            [&building, &concurrent_build, key_index] {
              if (building[key_index].fetch_add(1) != 0) {
                concurrent_build.store(true);
              }
              std::this_thread::sleep_for(std::chrono::microseconds(200));
              building[key_index].fetch_sub(1);
              return FakeCover(64 + key_index);
            },
            &reused);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_FALSE(concurrent_build.load());  // rendezvous held throughout
  serve::CoverCache::Stats s = cache.stats();
  EXPECT_GT(s.evictions, 0u);   // the capacity fight really happened
  EXPECT_LE(s.entries, 1u);     // capacity enforced once builds completed
  cache.Clear();
  s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);  // nothing leaked or double-subtracted
}

// Satellite regression: a failing builder's cleanup must erase only its
// OWN entry. Interleaving: builder A's entry vanishes underneath it
// (Clear — the one way left now that eviction skips in-flight builds),
// builder B re-inserts the same key, then A throws. A's cleanup used to
// erase any in-flight-looking entry for the key — killing B's build
// rendezvous; with the build-id check it leaves B alone.
TEST(CoverCache, FailedBuilderOnlyCleansUpItsOwnEntry) {
  serve::CoverCache::Options options;
  options.capacity = 4;
  options.shards = 1;
  options.respect_env = false;
  serve::CoverCache cache(options);
  const exec::CoverKey key = TauKey(500.0);

  std::promise<void> gate_a, gate_b;
  std::shared_future<void> wait_a = gate_a.get_future().share();
  std::shared_future<void> wait_b = gate_b.get_future().share();
  std::atomic<bool> a_started{false}, b_started{false};
  std::atomic<bool> a_threw{false};
  exec::CoverPtr b_cover;
  bool b_reused = true;

  std::thread a([&] {
    bool reused = false;
    try {
      cache.GetOrBuild(
          1, key,
          [&]() -> exec::CoverPtr {
            a_started.store(true);
            wait_a.wait();
            throw std::runtime_error("transient build failure");
          },
          &reused);
    } catch (const std::runtime_error&) {
      a_threw.store(true);
    }
  });
  while (!a_started.load()) std::this_thread::yield();

  cache.Clear();  // A's entry is gone; the key slot is free again
  std::thread b([&] {
    b_cover = cache.GetOrBuild(
        1, key,
        [&] {
          b_started.store(true);
          wait_b.wait();
          return FakeCover(77);
        },
        &b_reused);
  });
  while (!b_started.load()) std::this_thread::yield();

  gate_a.set_value();  // A fails while B's entry for the key is in flight
  a.join();
  gate_b.set_value();
  b.join();

  EXPECT_TRUE(a_threw.load());  // the failure still propagated to A's caller
  ASSERT_NE(b_cover, nullptr);
  EXPECT_FALSE(b_reused);
  EXPECT_EQ(b_cover->bytes, 77u);
  // B's entry survived A's cleanup: resident, counted, servable.
  EXPECT_NE(cache.TryGet(1, key), nullptr);
  const serve::CoverCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.resident_bytes, 77u);
}

// A grid engine over a sampled (not all-nodes) site pool, with a fixed
// deterministic corpus: trajectory ids 0..29 are guaranteed live, and
// site-less nodes exist for AddSite. Two calls build bit-identical twins.
Engine MakeSampledEngine() {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  tops::SiteSet sites = tops::SiteSet::SampleNodes(net, 30, 9);
  Engine::Options options;
  options.index.gamma = 0.75;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 2000.0;
  Engine engine(std::move(net), std::move(sites), options);
  for (int i = 0; i < 30; ++i) {
    const auto c = static_cast<graph::NodeId>(i % 9);
    engine.AddTrajectory({c, static_cast<graph::NodeId>(c + 10),
                          static_cast<graph::NodeId>(c + 11),
                          static_cast<graph::NodeId>(c + 21)});
  }
  engine.BuildIndex();
  return engine;
}

// The writer publishes one DeltaSummary per batch classifying each op:
// trajectory adds and effective removes dirty every instance (their TL
// postings land in all of them), no-op removes dirty nothing, and a site
// add dirties exactly the instances whose cluster representative moved.
TEST(UpdatePipeline, DeltaSummaryClassifiesOps) {
  Engine engine = MakeSampledEngine();
  graph::NodeId fresh_node = 0;
  while (engine.sites().SiteAtNode(fresh_node) != tops::kInvalidSite) {
    ++fresh_node;
  }

  serve::ServerOptions options;
  std::mutex mu;
  std::vector<serve::DeltaSummary> deltas;
  options.updates.on_publish = [&](uint64_t, uint64_t,
                                   const serve::DeltaSummary& delta) {
    const std::lock_guard<std::mutex> lock(mu);
    deltas.push_back(delta);
  };
  auto server = engine.Serve(options);
  const size_t instances = server->snapshot()->index().num_instances();

  server->MutateRemoveTrajectory(999999);  // unknown id: provable no-op
  server->Flush();
  const serve::UpdateTicket added = server->MutateAddTrajectory({0, 1, 2, 12});
  server->Flush();
  server->MutateRemoveTrajectory(added.traj);  // effective remove
  server->Flush();
  server->MutateAddSite(fresh_node);
  server->Flush();

  const std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(deltas.size(), 4u);
  for (const serve::DeltaSummary& d : deltas) {
    EXPECT_EQ(d.dirty.size(), instances);
  }
  // No-op remove: clean everywhere — the publish changed nothing.
  EXPECT_TRUE(deltas[0].AllClean());
  EXPECT_EQ(deltas[0].noop_removes, 1u);
  // Trajectory add / effective remove: every instance dirty.
  EXPECT_EQ(deltas[1].DirtyCount(), instances);
  EXPECT_EQ(deltas[1].traj_adds, 1u);
  EXPECT_EQ(deltas[2].DirtyCount(), instances);
  EXPECT_EQ(deltas[2].traj_removes, 1u);
  // Site add: dirty exactly where a cluster representative changed.
  EXPECT_EQ(deltas[3].site_adds, 1u);
  EXPECT_EQ(deltas[3].DirtyCount(), deltas[3].rep_changes);
}

// Tentpole invariant underlying carryover: a publish that leaves an
// instance untouched leaves its covers byte-equal — rebuildable from the
// new snapshot with identical contents at any thread count.
TEST(NetClusServer, CleanPublishKeepsCoversByteEqual) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  const serve::SnapshotPtr before = server->snapshot();
  server->MutateRemoveTrajectory(424242);  // no-op: every instance clean
  server->Flush();
  const serve::SnapshotPtr after = server->snapshot();
  ASSERT_GT(after->version(), before->version());

  for (size_t p = 0; p < before->index().num_instances(); ++p) {
    const double tau_m = 400.0 + 150.0 * static_cast<double>(p);
    const exec::BuiltCover old_cover =
        exec::BuildCover(before->index(), before->store(), tau_m, p, 1);
    const exec::BuiltCover new_cover =
        exec::BuildCover(after->index(), after->store(), tau_m, p, 4);
    ASSERT_EQ(old_cover.rep_sites, new_cover.rep_sites);
    ASSERT_EQ(old_cover.approx.num_sites(), new_cover.approx.num_sites());
    for (size_t s = 0; s < old_cover.approx.num_sites(); ++s) {
      const auto old_list = old_cover.approx.TC(static_cast<tops::SiteId>(s));
      const auto new_list = new_cover.approx.TC(static_cast<tops::SiteId>(s));
      ASSERT_EQ(old_list.size(), new_list.size());
      auto old_it = old_list.begin();
      auto new_it = new_list.begin();
      for (size_t i = 0; i < old_list.size(); ++i, ++old_it, ++new_it) {
        ASSERT_EQ((*old_it).id, (*new_it).id);
        ASSERT_EQ((*old_it).dr_m, (*new_it).dr_m);
      }
    }
  }
}

// Tentpole: a clean publish carries both caches forward — the next query
// at the new version is a (non-stale) cache hit, bit-identical to a
// from-scratch replay there; a dirty publish carries nothing and the next
// query recomputes.
TEST(NetClusServer, CarryoverKeepsCachesWarmAcrossCleanPublishes) {
  Engine engine = MakeEngine();
  serve::ServerOptions options;
  options.carryover = 1;
  auto server = engine.Serve(options);
  const Engine::QuerySpec spec = Spec(4, 800.0);

  const serve::ServeResult v1 = server->Submit(spec);  // warms both caches
  ASSERT_EQ(v1.snapshot_version, 1u);
  ASSERT_FALSE(v1.cache_hit);

  server->MutateRemoveTrajectory(999999);  // clean publish: version 2
  server->Flush();
  ASSERT_EQ(server->snapshot()->version(), 2u);

  const serve::ServeResult v2 = server->Submit(spec);
  EXPECT_EQ(v2.snapshot_version, 2u);
  EXPECT_TRUE(v2.cache_hit);  // carried entry answered at the NEW version
  EXPECT_FALSE(v2.stale);     // a carry is not a stale serve
  ExpectBitIdentical(v1.result, v2.result);
  ExpectBitIdentical(Replay(v2, spec), v2.result);  // == from-scratch at v2

  serve::ServerStats stats = server->stats();
  EXPECT_GE(stats.cache.carried, 1u);
  // The cover cache may be disabled for the whole suite run
  // (NETCLUS_COVER_CACHE=0 in the CI exec matrix) — no covers to carry.
  if (netclus::util::GetEnvBool("NETCLUS_COVER_CACHE", true)) {
    EXPECT_GE(stats.cover_cache.carried, 1u);
  }
  EXPECT_EQ(stats.cache.stale_hits, 0u);
  EXPECT_GE(stats.carryover_publishes, 1u);
  EXPECT_GE(stats.carryover_clean_partitions,
            server->snapshot()->index().num_instances());

  // A trajectory add dirties every instance: nothing carries, and the
  // next submit pays a fresh compute that still matches replay.
  server->MutateAddTrajectory({0, 1, 2, 12});
  server->Flush();
  const uint64_t carried_before = server->stats().cache.carried;
  const serve::ServeResult v3 = server->Submit(spec);
  EXPECT_EQ(v3.snapshot_version, 3u);
  EXPECT_FALSE(v3.cache_hit);
  ExpectBitIdentical(Replay(v3, spec), v3.result);
  EXPECT_EQ(server->stats().cache.carried, carried_before);
}

// Acceptance: twin servers over bit-identical engines, carryover on vs
// off, fed the same mirrored update stream (one op per publish, so
// version numbers mean the same state on both) while 1 then 4 reader
// threads submit. Every answer must be bit-identical to a from-scratch
// serial replay at its served version; answers the two servers produce
// for the same (spec, version) must match each other; and only the
// carryover server carries entries.
TEST(NetClusServer, CarryoverDifferentialUnderLiveUpdates) {
  for (const int readers : {1, 4}) {
    Engine engine_on = MakeSampledEngine();
    Engine engine_off = MakeSampledEngine();
    std::vector<graph::NodeId> fresh_nodes;
    for (graph::NodeId node = 0; fresh_nodes.size() < 2; ++node) {
      if (engine_on.sites().SiteAtNode(node) == tops::kInvalidSite) {
        fresh_nodes.push_back(node);
      }
    }
    serve::ServerOptions on_options, off_options;
    on_options.carryover = 1;
    off_options.carryover = 0;
    auto server_on = engine_on.Serve(on_options);
    auto server_off = engine_off.Serve(off_options);

    const std::vector<Engine::QuerySpec> specs = {
        Spec(2, 500.0), Spec(4, 800.0), Spec(3, 1200.0)};
    for (const Engine::QuerySpec& spec : specs) {  // warm both caches at v1
      server_on->Submit(spec);
      server_off->Submit(spec);
    }

    constexpr int kQueriesPerReader = 45;
    std::vector<std::vector<std::pair<size_t, serve::ServeResult>>> rec_on(
        readers),
        rec_off(readers);
    std::vector<std::thread> threads;
    threads.reserve(readers);
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        for (int q = 0; q < kQueriesPerReader; ++q) {
          const size_t spec_index = (r + q) % specs.size();
          rec_on[r].emplace_back(spec_index,
                                 server_on->Submit(specs[spec_index]));
          rec_off[r].emplace_back(spec_index,
                                  server_off->Submit(specs[spec_index]));
        }
      });
    }

    // Mirrored stream, one op per publish: no-op removes (clean — full
    // carry), site adds (partially clean), trajectory adds and effective
    // removes (all instances dirty — nothing carries).
    const auto mirror = [&](const std::function<void(serve::NetClusServer&)>&
                                op) {
      op(*server_on);
      op(*server_off);
      server_on->Flush();
      server_off->Flush();
    };
    mirror([](serve::NetClusServer& s) { s.MutateRemoveTrajectory(777777); });
    mirror([](serve::NetClusServer& s) {
      s.MutateAddTrajectory({5, 15, 25, 35});
    });
    mirror([&](serve::NetClusServer& s) { s.MutateAddSite(fresh_nodes[0]); });
    mirror([](serve::NetClusServer& s) { s.MutateRemoveTrajectory(0); });
    mirror([](serve::NetClusServer& s) { s.MutateRemoveTrajectory(888888); });
    mirror([](serve::NetClusServer& s) {
      s.MutateAddTrajectory({40, 50, 51, 61});
    });
    mirror([&](serve::NetClusServer& s) { s.MutateAddSite(fresh_nodes[1]); });
    mirror([](serve::NetClusServer& s) { s.MutateRemoveTrajectory(666666); });
    for (std::thread& t : threads) t.join();

    // Both servers applied the identical op sequence one op per publish,
    // so equal version numbers denote equal corpus states.
    ASSERT_EQ(server_on->snapshot()->version(),
              server_off->snapshot()->version());

    // Oracle 1: every recorded answer, both servers, replays bit-identically
    // from scratch on the exact snapshot that served it.
    std::map<std::pair<size_t, uint64_t>, index::QueryResult> on_answers;
    for (int r = 0; r < readers; ++r) {
      for (const auto& [spec_index, served] : rec_on[r]) {
        ExpectBitIdentical(Replay(served, specs[spec_index]), served.result);
        on_answers.emplace(std::make_pair(spec_index, served.snapshot_version),
                           served.result);
      }
      for (const auto& [spec_index, served] : rec_off[r]) {
        ExpectBitIdentical(Replay(served, specs[spec_index]), served.result);
        // Oracle 2: where the carryover server answered the same spec at
        // the same version, the two answers are bit-identical.
        const auto match =
            on_answers.find({spec_index, served.snapshot_version});
        if (match != on_answers.end()) {
          ExpectBitIdentical(match->second, served.result);
        }
      }
    }
    // Oracle 3: at the common final version, the servers agree exactly.
    for (const Engine::QuerySpec& spec : specs) {
      ExpectBitIdentical(server_on->Submit(spec).result,
                         server_off->Submit(spec).result);
    }

    // The clean publishes really carried entries — and only where enabled.
    const serve::ServerStats on_stats = server_on->stats();
    const serve::ServerStats off_stats = server_off->stats();
    EXPECT_GE(on_stats.cache.carried, 1u);
    if (netclus::util::GetEnvBool("NETCLUS_COVER_CACHE", true)) {
      EXPECT_GE(on_stats.cover_cache.carried, 1u);
    }
    EXPECT_GT(on_stats.carryover_publishes, 0u);
    EXPECT_EQ(off_stats.cache.carried, 0u);
    EXPECT_EQ(off_stats.cover_cache.carried, 0u);
    EXPECT_EQ(off_stats.carryover_publishes, 0u);
  }
}

TEST(StandingQueries, InitialPushThenDeltaGatedReevaluation) {
  Engine engine = MakeEngine();
  serve::ServerOptions options;
  options.carryover = 1;
  auto server = engine.Serve(options);
  const Engine::QuerySpec spec = Spec(3, 700.0);

  std::mutex mu;
  std::vector<serve::StandingUpdate> log;
  const auto snapshot_log = [&] {
    const std::lock_guard<std::mutex> lock(mu);
    return log;
  };
  const uint64_t id = server->RegisterStanding(
      spec, serve::StalenessPolicy::Fresh(),
      [&](const serve::StandingUpdate& update) {
        const std::lock_guard<std::mutex> lock(mu);
        log.push_back(update);
      });
  ASSERT_NE(id, 0u);

  // The initial result arrives synchronously, diff-empty, at version 1,
  // and matches a direct submit bit-identically.
  std::vector<serve::StandingUpdate> seen = snapshot_log();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_TRUE(seen[0].first);
  EXPECT_EQ(seen[0].version, 1u);
  EXPECT_TRUE(seen[0].added.empty());
  EXPECT_TRUE(seen[0].removed.empty());
  ExpectBitIdentical(server->Submit(spec).result, seen[0].result);

  // Clean publish: skipped without evaluating — no push.
  server->MutateRemoveTrajectory(999999);
  server->Flush();
  EXPECT_EQ(snapshot_log().size(), 1u);
  EXPECT_GE(server->stats().standing.skipped_clean, 1u);
  EXPECT_EQ(server->stats().standing.evaluations, 1u);

  // Dirty publish under a zero staleness budget: re-evaluated; a push
  // arrives iff the top-k membership changed, and any push matches a
  // direct submit at the (unchanged-since) current version.
  for (int i = 0; i < 40; ++i) {
    server->MutateAddTrajectory({0, 1, 2, 12, 22});
  }
  server->Flush();
  EXPECT_GE(server->stats().standing.evaluations, 2u);
  seen = snapshot_log();
  if (seen.size() > 1) {
    EXPECT_FALSE(seen.back().first);
    EXPECT_FALSE(seen.back().added.empty() && seen.back().removed.empty());
    ExpectBitIdentical(server->Submit(spec).result, seen.back().result);
  }

  // Unregister stops deliveries; the id is single-use.
  EXPECT_TRUE(server->UnregisterStanding(id));
  EXPECT_FALSE(server->UnregisterStanding(id));
  const size_t deliveries = snapshot_log().size();
  server->MutateAddTrajectory({5, 6, 7});
  server->Flush();
  EXPECT_EQ(snapshot_log().size(), deliveries);
  EXPECT_EQ(server->stats().standing.active, 0u);

  // An invalid spec is refused with id 0, not an exception.
  Engine::QuerySpec bad;
  bad.variant = exec::QueryVariant::kTopsCost;
  bad.site_costs = {1.0};  // not site-indexed
  bad.budget = 5.0;
  EXPECT_EQ(server->RegisterStanding(bad, serve::StalenessPolicy::Fresh(),
                                     [](const serve::StandingUpdate&) {}),
            0u);
}

TEST(StandingQueries, StalenessBudgetCoalescesDirtyPublishes) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  std::atomic<uint64_t> deliveries{0};
  const uint64_t id = server->RegisterStanding(
      Spec(3, 700.0), serve::StalenessPolicy::AllowStaleVersion(2),
      [&](const serve::StandingUpdate&) { ++deliveries; });
  ASSERT_NE(id, 0u);
  EXPECT_EQ(deliveries.load(), 1u);  // the initial push
  EXPECT_EQ(server->stats().standing.evaluations, 1u);

  // Three dirty publishes against a budget of 2: the first two defer
  // (coalesce), the third exceeds the budget and re-evaluates.
  for (int i = 0; i < 3; ++i) {
    server->MutateAddTrajectory({0, 1, 2, 12});
    server->Flush();
  }
  const serve::StandingQueryRegistry::Stats stats = server->stats().standing;
  EXPECT_EQ(stats.deferred, 2u);
  EXPECT_EQ(stats.evaluations, 2u);
  EXPECT_EQ(stats.skipped_clean, 0u);
  server->UnregisterStanding(id);
}

TEST(StandingQueries, CallbackCanUnregisterItself) {
  Engine engine = MakeEngine();
  auto server = engine.Serve();
  std::atomic<uint64_t> deliveries{0};
  // The callback unregisters its own query reentrantly — from the very
  // first (synchronous, in-Register) push.
  const uint64_t id = server->RegisterStanding(
      Spec(2, 600.0), serve::StalenessPolicy::Fresh(),
      [&](const serve::StandingUpdate& update) {
        ++deliveries;
        EXPECT_TRUE(server->UnregisterStanding(update.query_id));
      });
  ASSERT_NE(id, 0u);
  EXPECT_EQ(deliveries.load(), 1u);
  EXPECT_EQ(server->stats().standing.active, 0u);
  EXPECT_FALSE(server->UnregisterStanding(id));  // already gone

  // Publishes after the self-unregister deliver nothing.
  server->MutateAddTrajectory({0, 1, 2, 12});
  server->Flush();
  EXPECT_EQ(deliveries.load(), 1u);
}

}  // namespace
}  // namespace netclus
