#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "test_helpers.h"
#include "tops/inc_greedy.h"
#include "tops/variants.h"

namespace netclus::index {
namespace {

struct Fixture {
  graph::RoadNetwork net;
  std::unique_ptr<traj::TrajectoryStore> store;
  tops::SiteSet sites;
  std::unique_ptr<MultiIndex> index;

  explicit Fixture(uint64_t seed = 61, uint32_t dim = 14, uint32_t trajs = 120) {
    net = test::MakeGridNetwork(dim, dim, 100.0);
    store = std::make_unique<traj::TrajectoryStore>(&net);
    test::FillRandomWalks(store.get(), trajs, 5, 16, seed);
    sites = tops::SiteSet::AllNodes(net);
    MultiIndexConfig config;
    config.gamma = 0.75;
    config.tau_min_m = 300.0;
    config.tau_max_m = 4000.0;
    index = std::make_unique<MultiIndex>(
        MultiIndex::Build(*store, sites, config));
  }

  QueryEngine engine() const { return QueryEngine(index.get(), store.get(), &sites); }
};

TEST(Query, ApproxCoversAreSubsetsOfExactCovers) {
  // T̂C(r) ⊆ TC(r) because d̂_r >= d_r (Sec. 5.1).
  Fixture f;
  const double tau = 800.0;
  const size_t p = f.index->InstanceFor(tau);
  std::vector<tops::SiteId> rep_sites;
  const tops::CoverageIndex approx =
      f.engine().BuildApproxCoverage(tau, p, &rep_sites, nullptr);

  tops::CoverageConfig cc;
  cc.tau_m = tau;
  tops::SiteSet rep_set([&] {
    std::vector<graph::NodeId> nodes;
    for (tops::SiteId s : rep_sites) nodes.push_back(f.sites.node(s));
    return nodes;
  }());
  const tops::CoverageIndex exact =
      tops::CoverageIndex::Build(*f.store, rep_set, cc);

  ASSERT_EQ(approx.num_sites(), exact.num_sites());
  for (tops::SiteId r = 0; r < approx.num_sites(); ++r) {
    const auto approx_tc = approx.TC(r);
    const auto exact_tc = exact.TC(r);
    std::set<uint32_t> exact_ids;
    for (const tops::CoverEntry& e : exact_tc) exact_ids.insert(e.id);
    for (const tops::CoverEntry& e : approx_tc) {
      EXPECT_TRUE(exact_ids.count(e.id))
          << "rep " << r << " traj " << e.id << " in T^C but not TC";
      // And the estimate upper-bounds the true detour.
      auto it = std::find_if(exact_tc.begin(), exact_tc.end(),
                             [&](const tops::CoverEntry& x) { return x.id == e.id; });
      if (it != exact_tc.end()) {
        EXPECT_GE(e.dr_m + 1e-3, it->dr_m);
      }
    }
  }
}

TEST(Query, ReturnsKDistinctRealSites) {
  Fixture f;
  QueryEngine engine = f.engine();
  QueryConfig config;
  config.k = 6;
  config.tau_m = 800.0;
  const QueryResult got = engine.Tops(tops::PreferenceFunction::Binary(), config);
  EXPECT_EQ(got.selection.sites.size(), 6u);
  std::set<tops::SiteId> unique(got.selection.sites.begin(),
                                got.selection.sites.end());
  EXPECT_EQ(unique.size(), 6u);
  for (tops::SiteId s : got.selection.sites) EXPECT_LT(s, f.sites.size());
  EXPECT_GT(got.selection.utility, 0.0);
  EXPECT_GT(got.clusters_considered, 0u);
  EXPECT_EQ(got.instance_used, f.index->InstanceFor(800.0));
}

TEST(Query, UtilityWithinFractionOfExactGreedy) {
  // Sec. 8.4: NetClus utilities are within ~93% of Inc-Greedy on average.
  // On small synthetic instances we assert a loose 60% to stay robust.
  Fixture f;
  const double tau = 800.0;
  QueryEngine engine = f.engine();
  QueryConfig config;
  config.k = 5;
  config.tau_m = tau;
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const QueryResult netclus = engine.Tops(psi, config);
  const double netclus_exact_utility = tops::CoverageIndex::EvaluateSelection(
      *f.store, f.sites, netclus.selection.sites, tau, psi);

  tops::CoverageConfig cc;
  cc.tau_m = tau;
  const tops::CoverageIndex cov = tops::CoverageIndex::Build(*f.store, f.sites, cc);
  tops::GreedyConfig gc;
  gc.k = 5;
  const tops::Selection greedy = IncGreedy(cov, psi, gc);

  EXPECT_GE(netclus_exact_utility, 0.6 * greedy.utility);
  // Both are heuristics: NetClus occasionally edges out Inc-Greedy (its
  // restricted candidate pool can dodge a greedy mistake), so only a large
  // excess would indicate a bug.
  EXPECT_LE(netclus_exact_utility, 1.1 * greedy.utility + 1.0);
}

TEST(Query, WorksAcrossTauSweep) {
  Fixture f;
  QueryEngine engine = f.engine();
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  double prev_utility = 0.0;
  for (const double tau : {300.0, 600.0, 1200.0, 2400.0}) {
    QueryConfig config;
    config.k = 5;
    config.tau_m = tau;
    const QueryResult got = engine.Tops(psi, config);
    EXPECT_EQ(got.selection.sites.size(), 5u) << "tau " << tau;
    // Larger tau covers at least as much (checked on exact re-evaluation).
    const double exact = tops::CoverageIndex::EvaluateSelection(
        *f.store, f.sites, got.selection.sites, tau, psi);
    EXPECT_GE(exact, prev_utility * 0.8) << "tau " << tau;  // loose monotonicity
    prev_utility = exact;
  }
}

TEST(Query, CoarserInstancesForLargerTau) {
  Fixture f;
  QueryEngine engine = f.engine();
  QueryConfig small;
  small.k = 3;
  small.tau_m = 320.0;
  QueryConfig large = small;
  large.tau_m = 3000.0;
  const auto got_small = engine.Tops(tops::PreferenceFunction::Binary(), small);
  const auto got_large = engine.Tops(tops::PreferenceFunction::Binary(), large);
  EXPECT_LT(got_small.instance_used, got_large.instance_used);
  EXPECT_GE(got_small.clusters_considered, got_large.clusters_considered);
}

TEST(Query, FmVariantSelectsReasonableSites) {
  Fixture f;
  QueryEngine engine = f.engine();
  QueryConfig config;
  config.k = 5;
  config.tau_m = 800.0;
  config.use_fm_sketch = true;
  config.fm_copies = 30;
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const QueryResult fm = engine.Tops(psi, config);
  EXPECT_EQ(fm.selection.sites.size(), 5u);
  config.use_fm_sketch = false;
  const QueryResult exact = engine.Tops(psi, config);
  const double fm_utility = tops::CoverageIndex::EvaluateSelection(
      *f.store, f.sites, fm.selection.sites, 800.0, psi);
  const double exact_utility = tops::CoverageIndex::EvaluateSelection(
      *f.store, f.sites, exact.selection.sites, 800.0, psi);
  EXPECT_GE(fm_utility, 0.5 * exact_utility);
}

TEST(Query, ExistingServicesShiftSelection) {
  Fixture f;
  QueryEngine engine = f.engine();
  QueryConfig config;
  config.k = 3;
  config.tau_m = 800.0;
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const QueryResult plain = engine.Tops(psi, config);
  // Install the plain answer as existing services; the next query must not
  // re-select them.
  config.existing_services = plain.selection.sites;
  const QueryResult next = engine.Tops(psi, config);
  for (tops::SiteId s : next.selection.sites) {
    EXPECT_EQ(std::find(plain.selection.sites.begin(), plain.selection.sites.end(),
                        s),
              plain.selection.sites.end());
  }
}

TEST(Query, CostVariantStaysInBudget) {
  Fixture f;
  QueryEngine engine = f.engine();
  QueryConfig config;
  config.tau_m = 800.0;
  const std::vector<double> costs =
      tops::DrawNormalCosts(f.sites.size(), 1.0, 0.4, 0.1, 63);
  const QueryResult got =
      engine.TopsCost(tops::PreferenceFunction::Binary(), config, costs, 4.0);
  double total = 0.0;
  for (tops::SiteId s : got.selection.sites) total += costs[s];
  EXPECT_LE(total, 4.0 + 1e-9);
  EXPECT_GT(got.selection.utility, 0.0);
}

TEST(Query, CapacityVariantRespectsK) {
  Fixture f;
  QueryEngine engine = f.engine();
  QueryConfig config;
  config.k = 4;
  config.tau_m = 800.0;
  const std::vector<double> caps(f.sites.size(), 10.0);
  const QueryResult got =
      engine.TopsCapacity(tops::PreferenceFunction::Binary(), config, caps);
  EXPECT_EQ(got.selection.sites.size(), 4u);
  EXPECT_LE(got.selection.utility, 4.0 * 10.0 + 1e-9);
}

TEST(Query, DynamicTrajectoryUpdatesChangeAnswers) {
  Fixture f(71, 10, 30);
  // Flood one corner with new trajectories; the answer should move there.
  QueryEngine engine = f.engine();
  QueryConfig config;
  config.k = 1;
  config.tau_m = 600.0;
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const QueryResult before = engine.Tops(psi, config);
  for (int i = 0; i < 200; ++i) {
    const traj::TrajId t = f.store->Add({0, 1, 2, 10, 11, 12});
    f.index->AddTrajectory(*f.store, t);
  }
  const QueryResult after = engine.Tops(psi, config);
  const double before_utility = tops::CoverageIndex::EvaluateSelection(
      *f.store, f.sites, before.selection.sites, 600.0, psi);
  const double after_utility = tops::CoverageIndex::EvaluateSelection(
      *f.store, f.sites, after.selection.sites, 600.0, psi);
  EXPECT_GE(after_utility, before_utility);
  // The chosen site now covers the flooded corner.
  const graph::NodeId chosen = f.sites.node(after.selection.sites[0]);
  EXPECT_LT(f.net.EuclideanMeters(chosen, 1), 700.0);
}

TEST(Query, TransientMemoryIsBounded) {
  Fixture f;
  QueryEngine engine = f.engine();
  QueryConfig config;
  config.k = 5;
  config.tau_m = 800.0;
  const QueryResult got = engine.Tops(tops::PreferenceFunction::Binary(), config);
  EXPECT_GT(got.transient_bytes, 0u);
  EXPECT_GT(got.total_seconds, 0.0);
  EXPECT_GE(got.total_seconds, got.cover_build_seconds);
}

}  // namespace
}  // namespace netclus::index
