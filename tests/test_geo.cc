#include <algorithm>

#include "geo/bbox.h"
#include "geo/geodesy.h"
#include "geo/point.h"
#include "geo/polyline.h"
#include "geo/spatial_grid.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace netclus::geo {
namespace {

TEST(Geodesy, HaversineKnownDistance) {
  // Beijing Tiananmen to Beijing Capital Airport: ~25.1 km great circle.
  const LatLon tiananmen{39.9087, 116.3975};
  const LatLon airport{40.0801, 116.5846};
  const double d = HaversineMeters(tiananmen, airport);
  EXPECT_NEAR(d, 25100.0, 600.0);
}

TEST(Geodesy, HaversineZeroForSamePoint) {
  const LatLon p{39.9, 116.4};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(Geodesy, HaversineSymmetric) {
  const LatLon a{39.9, 116.4}, b{40.1, 116.6};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(Projector, RoundTripIsIdentity) {
  const Projector proj({39.9, 116.4});
  const LatLon p{39.95, 116.47};
  const LatLon back = proj.Unproject(proj.Project(p));
  EXPECT_NEAR(back.lat, p.lat, 1e-9);
  EXPECT_NEAR(back.lon, p.lon, 1e-9);
}

TEST(Projector, DistancesMatchHaversineAtCityScale) {
  const Projector proj({39.9, 116.4});
  const LatLon a{39.91, 116.41}, b{39.97, 116.52};
  const double planar = Distance(proj.Project(a), proj.Project(b));
  const double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 0.002);
}

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0}, b{3.0, 5.0};
  EXPECT_EQ((a + b), (Point{4.0, 7.0}));
  EXPECT_EQ((b - a), (Point{2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(DistanceSq(a, b), 13.0);
}

TEST(Polyline, ProjectOntoSegmentInterior) {
  const SegmentProjection p =
      ProjectOntoSegment({5.0, 3.0}, {0.0, 0.0}, {10.0, 0.0});
  EXPECT_NEAR(p.t, 0.5, 1e-12);
  EXPECT_NEAR(p.distance, 3.0, 1e-12);
  EXPECT_NEAR(p.closest.x, 5.0, 1e-12);
}

TEST(Polyline, ProjectOntoSegmentClampsToEndpoints) {
  const SegmentProjection p =
      ProjectOntoSegment({-4.0, 3.0}, {0.0, 0.0}, {10.0, 0.0});
  EXPECT_DOUBLE_EQ(p.t, 0.0);
  EXPECT_NEAR(p.distance, 5.0, 1e-12);
}

TEST(Polyline, ProjectOntoDegenerateSegment) {
  const SegmentProjection p = ProjectOntoSegment({3.0, 4.0}, {0.0, 0.0}, {0.0, 0.0});
  EXPECT_NEAR(p.distance, 5.0, 1e-12);
}

TEST(Polyline, LengthAndInterpolation) {
  const std::vector<Point> line = {{0, 0}, {10, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(PolylineLength(line), 20.0);
  const Point mid = InterpolateAlong(line, 15.0);
  EXPECT_NEAR(mid.x, 10.0, 1e-12);
  EXPECT_NEAR(mid.y, 5.0, 1e-12);
  EXPECT_EQ(InterpolateAlong(line, -1.0).x, 0.0);
  EXPECT_EQ(InterpolateAlong(line, 999.0).y, 10.0);
}

TEST(BBox, ExtendAndContains) {
  BBox box;
  EXPECT_TRUE(box.Empty());
  box.Extend({0, 0});
  box.Extend({10, 20});
  EXPECT_FALSE(box.Empty());
  EXPECT_TRUE(box.Contains({5, 5}));
  EXPECT_FALSE(box.Contains({11, 5}));
  EXPECT_DOUBLE_EQ(box.Width(), 10.0);
  EXPECT_DOUBLE_EQ(box.Height(), 20.0);
  EXPECT_EQ(box.Center().x, 5.0);
}

class PointGridProperty : public ::testing::TestWithParam<double> {};

TEST_P(PointGridProperty, RadiusQueryMatchesBruteForce) {
  util::Rng rng(31);
  std::vector<Point> pts(500);
  for (auto& p : pts) p = {rng.Uniform(0.0, 2000.0), rng.Uniform(0.0, 2000.0)};
  PointGrid grid(GetParam());
  grid.Build(pts);
  for (int q = 0; q < 50; ++q) {
    const Point center{rng.Uniform(0.0, 2000.0), rng.Uniform(0.0, 2000.0)};
    const double radius = rng.Uniform(10.0, 600.0);
    auto got = grid.QueryRadius(center, radius);
    std::sort(got.begin(), got.end());
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < pts.size(); ++i) {
      if (Distance(center, pts[i]) <= radius) expected.push_back(i);
    }
    EXPECT_EQ(got, expected) << "cell=" << GetParam() << " radius=" << radius;
  }
}

TEST_P(PointGridProperty, NearestMatchesBruteForce) {
  util::Rng rng(37);
  std::vector<Point> pts(300);
  for (auto& p : pts) p = {rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
  PointGrid grid(GetParam());
  grid.Build(pts);
  for (int q = 0; q < 100; ++q) {
    const Point center{rng.Uniform(-100.0, 1100.0), rng.Uniform(-100.0, 1100.0)};
    const uint32_t got = grid.Nearest(center);
    uint32_t expected = 0;
    for (uint32_t i = 1; i < pts.size(); ++i) {
      if (DistanceSq(center, pts[i]) < DistanceSq(center, pts[expected])) {
        expected = i;
      }
    }
    ASSERT_NE(got, PointGrid::kNotFound);
    EXPECT_NEAR(Distance(center, pts[got]), Distance(center, pts[expected]), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, PointGridProperty,
                         ::testing::Values(50.0, 250.0, 1000.0));

TEST(PointGrid, EmptyGridNearestReturnsNotFound) {
  PointGrid grid(100.0);
  EXPECT_EQ(grid.Nearest({0, 0}), PointGrid::kNotFound);
}

TEST(PointGrid, KNearestOrderedByDistance) {
  std::vector<Point> pts = {{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}};
  PointGrid grid(15.0);
  grid.Build(pts);
  const auto got = grid.KNearest({12.0, 0.0}, 3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 1u);  // dist 2
  EXPECT_EQ(got[1], 2u);  // dist 8
  EXPECT_EQ(got[2], 0u);  // dist 12
}

TEST(PointGrid, KNearestExactOrder) {
  std::vector<Point> pts = {{0, 0}, {10, 0}, {20, 0}};
  PointGrid grid(5.0);
  grid.Build(pts);
  const auto got = grid.KNearest({12.0, 0.0}, 3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 1u);  // dist 2
  EXPECT_EQ(got[1], 2u);  // dist 8
  EXPECT_EQ(got[2], 0u);  // dist 12
}

TEST(PointGrid, KNearestMoreThanAvailable) {
  std::vector<Point> pts = {{0, 0}, {5, 5}};
  PointGrid grid(10.0);
  grid.Build(pts);
  EXPECT_EQ(grid.KNearest({1, 1}, 10).size(), 2u);
}

TEST(SegmentGrid, FindsOverlappingSegments) {
  std::vector<Point> a = {{0, 0}, {100, 100}, {500, 500}};
  std::vector<Point> b = {{50, 0}, {100, 200}, {600, 500}};
  SegmentGrid grid(50.0);
  grid.Build(a, b);
  const auto near_origin = grid.QueryRadius({10, 10}, 30.0);
  EXPECT_NE(std::find(near_origin.begin(), near_origin.end(), 0u),
            near_origin.end());
  EXPECT_EQ(std::find(near_origin.begin(), near_origin.end(), 2u),
            near_origin.end());
}

TEST(SegmentGrid, DeduplicatesAcrossCells) {
  // A long segment spans many cells; one query overlapping several of those
  // cells must return the id once.
  std::vector<Point> a = {{0, 0}};
  std::vector<Point> b = {{1000, 0}};
  SegmentGrid grid(50.0);
  grid.Build(a, b);
  const auto got = grid.QueryRadius({500, 10}, 300.0);
  EXPECT_EQ(got.size(), 1u);
}

}  // namespace
}  // namespace netclus::geo
