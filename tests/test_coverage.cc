#include <algorithm>

#include "graph/dijkstra.h"
#include "gtest/gtest.h"
#include "test_helpers.h"
#include "tops/coverage.h"
#include "tops/inc_greedy.h"
#include "tops/preference.h"
#include "tops/site_set.h"
#include "util/rng.h"

namespace netclus::tops {
namespace {

using traj::TrajectoryStore;

TEST(SiteSet, BasicMapping) {
  graph::RoadNetwork net = test::MakeLineNetwork(10);
  SiteSet sites({3, 7, 3});  // duplicate dropped
  EXPECT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites.node(0), 3u);
  EXPECT_EQ(sites.SiteAtNode(7), 1u);
  EXPECT_EQ(sites.SiteAtNode(5), kInvalidSite);
  const SiteId added = sites.Add(5);
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(sites.Add(5), 2u);  // re-add returns existing
}

TEST(SiteSet, AllNodesAndSample) {
  graph::RoadNetwork net = test::MakeLineNetwork(20);
  EXPECT_EQ(SiteSet::AllNodes(net).size(), 20u);
  const SiteSet sample = SiteSet::SampleNodes(net, 5, 1);
  EXPECT_EQ(sample.size(), 5u);
  for (SiteId s = 0; s < sample.size(); ++s) EXPECT_LT(sample.node(s), 20u);
}

TEST(Preference, BinaryIsStepFunction) {
  const PreferenceFunction psi = PreferenceFunction::Binary();
  EXPECT_DOUBLE_EQ(psi.Score(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(psi.Score(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(psi.Score(100.01, 100.0), 0.0);
  EXPECT_TRUE(psi.is_binary());
}

TEST(Preference, AllKindsAreNonIncreasingAndNormalized) {
  const double tau = 500.0;
  const std::vector<PreferenceFunction> kinds = {
      PreferenceFunction::Binary(), PreferenceFunction::Linear(),
      PreferenceFunction::Exponential(3.0),
      PreferenceFunction::ConvexProbability(2.0),
      PreferenceFunction::NegativeDistance(5000.0)};
  for (const auto& psi : kinds) {
    EXPECT_DOUBLE_EQ(psi.Score(0.0, tau), 1.0) << psi.name();
    double prev = 1.0;
    for (double d = 0.0; d <= tau; d += 25.0) {
      const double score = psi.Score(d, tau);
      EXPECT_LE(score, prev + 1e-12) << psi.name() << " at " << d;
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
      prev = score;
    }
  }
}

TEST(Preference, ConvexProbabilityIsConvex) {
  const PreferenceFunction psi = PreferenceFunction::ConvexProbability(2.0);
  const double tau = 1000.0;
  // Midpoint convexity on a few triples.
  for (double a = 0.0; a + 400.0 <= tau; a += 100.0) {
    const double b = a + 400.0;
    const double mid = psi.Score((a + b) / 2.0, tau);
    const double chord = (psi.Score(a, tau) + psi.Score(b, tau)) / 2.0;
    EXPECT_LE(mid, chord + 1e-12);
  }
}

TEST(Preference, NegativeDistanceIgnoresTau) {
  const PreferenceFunction psi = PreferenceFunction::NegativeDistance(1000.0);
  EXPECT_DOUBLE_EQ(psi.Score(500.0, 1.0), 0.5);  // tau irrelevant
  EXPECT_DOUBLE_EQ(psi.Score(2000.0, 1.0), 0.0);  // clamped
}

// --- coverage construction -------------------------------------------------

TEST(Coverage, LineNetworkSinglePointDetours) {
  // Line 0-1-2-3-4, 100 m edges, two-way. One trajectory {0,1,2}; site at 4.
  graph::RoadNetwork net = test::MakeLineNetwork(5, 100.0);
  TrajectoryStore store(&net);
  store.Add({0, 1, 2});
  SiteSet sites({4, 2});
  CoverageConfig config;
  config.tau_m = 1000.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, config);
  // Site 0 (node 4): nearest trajectory node is 2, round trip 2*200 = 400.
  ASSERT_EQ(cov.TC(0).size(), 1u);
  EXPECT_NEAR(cov.TC(0)[0].dr_m, 400.0, 1e-3);
  // Site 1 (node 2): on the trajectory, detour 0.
  ASSERT_EQ(cov.TC(1).size(), 1u);
  EXPECT_NEAR(cov.TC(1)[0].dr_m, 0.0, 1e-6);
}

TEST(Coverage, TauCutsOffFarSites) {
  graph::RoadNetwork net = test::MakeLineNetwork(5, 100.0);
  TrajectoryStore store(&net);
  store.Add({0, 1});
  SiteSet sites({4});
  CoverageConfig config;
  config.tau_m = 500.0;  // nearest round trip is 2*300 = 600 > tau
  const CoverageIndex cov = CoverageIndex::Build(store, sites, config);
  EXPECT_EQ(cov.TC(0).size(), 0u);
}

class CoverageProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverageProperty, SinglePointMatchesBruteForce) {
  graph::RoadNetwork net = test::MakeRandomNetwork(40, GetParam());
  TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 15, 3, 8, GetParam() + 1);
  SiteSet sites = SiteSet::SampleNodes(net, 10, GetParam() + 2);
  CoverageConfig config;
  config.tau_m = 700.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, config);
  for (SiteId s = 0; s < sites.size(); ++s) {
    // Build expected cover by brute force.
    for (traj::TrajId t = 0; t < store.total_count(); ++t) {
      const double expected =
          test::BruteSinglePointDetour(net, store.trajectory(t), sites.node(s));
      const auto tc = cov.TC(s);
      auto it = std::find_if(tc.begin(), tc.end(),
                             [&](const CoverEntry& e) { return e.id == t; });
      if (expected <= config.tau_m) {
        ASSERT_NE(it, tc.end()) << "site " << s << " traj " << t;
        EXPECT_NEAR(it->dr_m, expected, 0.5);
      } else {
        EXPECT_EQ(it, tc.end()) << "site " << s << " traj " << t;
      }
    }
  }
}

TEST_P(CoverageProperty, PairwiseMatchesBruteForce) {
  graph::RoadNetwork net = test::MakeRandomNetwork(30, GetParam() + 50);
  TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 10, 3, 7, GetParam() + 51);
  SiteSet sites = SiteSet::SampleNodes(net, 8, GetParam() + 52);
  CoverageConfig config;
  config.tau_m = 600.0;
  config.detour = DetourMode::kPairwise;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, config);
  for (SiteId s = 0; s < sites.size(); ++s) {
    for (traj::TrajId t = 0; t < store.total_count(); ++t) {
      const double expected = test::BrutePairwiseDetour(
          net, store.trajectory(t), sites.node(s), config.tau_m);
      const auto tc = cov.TC(s);
      auto it = std::find_if(tc.begin(), tc.end(),
                             [&](const CoverEntry& e) { return e.id == t; });
      if (expected <= config.tau_m) {
        ASSERT_NE(it, tc.end()) << "site " << s << " traj " << t;
        EXPECT_NEAR(it->dr_m, expected, 0.5);
      } else {
        EXPECT_EQ(it, tc.end());
      }
    }
  }
}

TEST_P(CoverageProperty, PairwiseNeverExceedsSinglePoint) {
  graph::RoadNetwork net = test::MakeRandomNetwork(35, GetParam() + 80);
  TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 12, 3, 9, GetParam() + 81);
  SiteSet sites = SiteSet::SampleNodes(net, 8, GetParam() + 82);
  CoverageConfig single;
  single.tau_m = 800.0;
  CoverageConfig pairwise = single;
  pairwise.detour = DetourMode::kPairwise;
  const CoverageIndex cov_single = CoverageIndex::Build(store, sites, single);
  const CoverageIndex cov_pair = CoverageIndex::Build(store, sites, pairwise);
  for (SiteId s = 0; s < sites.size(); ++s) {
    for (const CoverEntry& e : cov_single.TC(s)) {
      const auto tc = cov_pair.TC(s);
      auto it = std::find_if(tc.begin(), tc.end(), [&](const CoverEntry& p) {
        return p.id == e.id;
      });
      // Pairwise detour (leave/rejoin) can only improve on the round trip.
      ASSERT_NE(it, tc.end());
      EXPECT_LE(it->dr_m, e.dr_m + 0.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageProperty, ::testing::Values(11, 22, 33));

TEST(Coverage, TcAndScAreMutuallyConsistent) {
  graph::RoadNetwork net = test::MakeGridNetwork(8, 8, 120.0);
  TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 30, 4, 10, 3);
  SiteSet sites = SiteSet::SampleNodes(net, 20, 4);
  CoverageConfig config;
  config.tau_m = 500.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, config);
  size_t tc_total = 0, sc_total = 0;
  for (SiteId s = 0; s < sites.size(); ++s) {
    for (const CoverEntry& e : cov.TC(s)) {
      ++tc_total;
      const auto sc = cov.SC(e.id);
      auto it = std::find_if(sc.begin(), sc.end(), [&](const CoverEntry& c) {
        return c.id == s;
      });
      ASSERT_NE(it, sc.end());
      EXPECT_EQ(it->dr_m, e.dr_m);
    }
  }
  for (traj::TrajId t = 0; t < store.total_count(); ++t) {
    sc_total += cov.SC(t).size();
  }
  EXPECT_EQ(tc_total, sc_total);
  EXPECT_EQ(cov.stats().cover_entries, tc_total);
}

TEST(Coverage, CoversAreSortedByDistance) {
  graph::RoadNetwork net = test::MakeGridNetwork(7, 7, 100.0);
  TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 25, 4, 9, 5);
  SiteSet sites = SiteSet::SampleNodes(net, 15, 6);
  CoverageConfig config;
  config.tau_m = 600.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, config);
  for (SiteId s = 0; s < sites.size(); ++s) {
    const auto tc = cov.TC(s);
    for (size_t i = 1; i < tc.size(); ++i) EXPECT_GE(tc[i].dr_m, tc[i - 1].dr_m);
  }
  for (traj::TrajId t = 0; t < store.total_count(); ++t) {
    const auto sc = cov.SC(t);
    for (size_t i = 1; i < sc.size(); ++i) EXPECT_GE(sc[i].dr_m, sc[i - 1].dr_m);
  }
}

TEST(Coverage, DeletedTrajectoriesAreSkipped) {
  graph::RoadNetwork net = test::MakeLineNetwork(6, 100.0);
  TrajectoryStore store(&net);
  const traj::TrajId a = store.Add({0, 1, 2});
  store.Add({3, 4, 5});
  store.Remove(a);
  SiteSet sites({1, 4});
  CoverageConfig config;
  // tau below the 400 m round trip from node 1 to the live trajectory's
  // nearest node (3), so site 0 could only have covered the deleted one.
  config.tau_m = 300.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, config);
  EXPECT_EQ(cov.TC(0).size(), 0u);
  EXPECT_EQ(cov.TC(1).size(), 1u);
  EXPECT_EQ(cov.num_live_trajectories(), 1u);
}

TEST(Coverage, MemoryBudgetTriggersOom) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 100, 5, 12, 7);
  SiteSet sites = SiteSet::AllNodes(net);
  CoverageConfig config;
  config.tau_m = 800.0;
  config.memory_budget_bytes = 1024;  // absurdly small
  const CoverageIndex cov = CoverageIndex::Build(store, sites, config);
  EXPECT_TRUE(cov.oom());
}

TEST(Coverage, SiteWeightSumsPreferenceScores) {
  graph::RoadNetwork net = test::MakeLineNetwork(5, 100.0);
  TrajectoryStore store(&net);
  store.Add({0, 1});
  store.Add({1, 2});
  SiteSet sites({1});
  CoverageConfig config;
  config.tau_m = 1000.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, config);
  const PreferenceFunction binary = PreferenceFunction::Binary();
  EXPECT_DOUBLE_EQ(cov.SiteWeight(0, binary), 2.0);
  const PreferenceFunction linear = PreferenceFunction::Linear();
  // Both trajectories pass through node 1: detour 0, score 1 each.
  EXPECT_DOUBLE_EQ(cov.SiteWeight(0, linear), 2.0);
}

TEST(Coverage, FromCoversBuildsConsistentInverse) {
  std::vector<std::vector<CoverEntry>> tc(2);
  tc[0] = {{0, 10.0f}, {1, 20.0f}};
  tc[1] = {{1, 5.0f}};
  const CoverageIndex cov = CoverageIndex::FromCovers(std::move(tc), 3, 3, 100.0);
  EXPECT_EQ(cov.num_sites(), 2u);
  EXPECT_EQ(cov.num_trajectories(), 3u);
  ASSERT_EQ(cov.SC(1).size(), 2u);
  EXPECT_EQ(cov.SC(1)[0].id, 1u);  // dr 5 sorts first
  EXPECT_EQ(cov.SC(2).size(), 0u);
}

TEST(Coverage, EvaluateSelectionMatchesIndexUtility) {
  graph::RoadNetwork net = test::MakeGridNetwork(8, 8, 120.0);
  TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 40, 4, 10, 9);
  SiteSet sites = SiteSet::SampleNodes(net, 12, 10);
  CoverageConfig config;
  config.tau_m = 500.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, config);
  const PreferenceFunction psi = PreferenceFunction::Linear();
  const std::vector<SiteId> selection = {0, 3, 7};
  const double via_index = UtilityOf(cov, psi, selection);
  const double via_eval = CoverageIndex::EvaluateSelection(
      store, sites, selection, config.tau_m, psi, DetourMode::kSinglePoint);
  EXPECT_NEAR(via_index, via_eval, 1e-3);
}

}  // namespace
}  // namespace netclus::tops
