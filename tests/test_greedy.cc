#include <algorithm>

#include "gtest/gtest.h"
#include "test_helpers.h"
#include "tops/coverage.h"
#include "tops/fm_greedy.h"
#include "tops/inc_greedy.h"
#include "tops/optimal.h"
#include "util/rng.h"

namespace netclus::tops {
namespace {

// The paper's Example 1 (Tables 2 and 3), encoded with a linear preference
// ψ = 1 - d_r/τ at τ = 1 so that the detour distances below reproduce the
// exact preference scores of Table 2:
//   ψ(T1,s1)=0.4  ψ(T1,s2)=0.11  ψ(T1,s3)=0
//   ψ(T2,s1)=0    ψ(T2,s2)=0.5   ψ(T2,s3)=0.6
CoverageIndex MakeExample1() {
  std::vector<std::vector<CoverEntry>> tc(3);
  tc[0] = {{0, 0.60f}};                 // s1 covers T1 with score 0.4
  tc[1] = {{0, 0.89f}, {1, 0.50f}};     // s2: T1 -> 0.11, T2 -> 0.5
  tc[2] = {{1, 0.40f}};                 // s3: T2 -> 0.6
  return CoverageIndex::FromCovers(std::move(tc), 2, 2, 1.0);
}

TEST(IncGreedy, ReproducesPaperExample1) {
  const CoverageIndex cov = MakeExample1();
  const PreferenceFunction psi = PreferenceFunction::Linear();
  GreedyConfig config;
  config.k = 2;
  const Selection got = IncGreedy(cov, psi, config);
  // Table 3: Inc-Greedy selects {s2 first (weight 0.61), then s1}, U = 0.9.
  ASSERT_EQ(got.sites.size(), 2u);
  EXPECT_EQ(got.sites[0], 1u);  // s2
  EXPECT_EQ(got.sites[1], 0u);  // s1
  EXPECT_NEAR(got.utility, 0.9, 1e-6);
  EXPECT_NEAR(got.marginal_gains[0], 0.61, 1e-6);
  EXPECT_NEAR(got.marginal_gains[1], 0.29, 1e-6);
}

TEST(Optimal, ReproducesPaperExample1Optimum) {
  const CoverageIndex cov = MakeExample1();
  const PreferenceFunction psi = PreferenceFunction::Linear();
  OptimalConfig config;
  config.k = 2;
  const OptimalResult got = SolveOptimal(cov, psi, config);
  // Table 3: OPT selects {s1, s3} with U = 1.0.
  EXPECT_TRUE(got.proven_optimal);
  EXPECT_NEAR(got.selection.utility, 1.0, 1e-6);
  std::vector<SiteId> sorted = got.selection.sites;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<SiteId>{0u, 2u}));
}

TEST(IncGreedy, MarginalGainsAreNonIncreasing) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 120.0);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 80, 4, 12, 13);
  SiteSet sites = SiteSet::SampleNodes(net, 30, 14);
  CoverageConfig cc;
  cc.tau_m = 500.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, cc);
  GreedyConfig config;
  config.k = 10;
  const Selection got = IncGreedy(cov, PreferenceFunction::Binary(), config);
  for (size_t i = 1; i < got.marginal_gains.size(); ++i) {
    EXPECT_LE(got.marginal_gains[i], got.marginal_gains[i - 1] + 1e-9);
  }
  // Utility equals the sum of marginal gains and the exact re-evaluation.
  double sum = 0.0;
  for (double g : got.marginal_gains) sum += g;
  EXPECT_NEAR(got.utility, sum, 1e-9);
  EXPECT_NEAR(got.utility, UtilityOf(cov, PreferenceFunction::Binary(), got.sites),
              1e-9);
}

TEST(IncGreedy, UtilityIsMonotoneInK) {
  graph::RoadNetwork net = test::MakeGridNetwork(9, 9, 120.0);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 60, 4, 10, 15);
  SiteSet sites = SiteSet::SampleNodes(net, 25, 16);
  CoverageConfig cc;
  cc.tau_m = 500.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, cc);
  double prev = 0.0;
  for (uint32_t k = 1; k <= 8; ++k) {
    GreedyConfig config;
    config.k = k;
    const Selection got = IncGreedy(cov, PreferenceFunction::Binary(), config);
    EXPECT_GE(got.utility, prev - 1e-9);
    prev = got.utility;
  }
}

TEST(IncGreedy, KLargerThanSitesSelectsAll) {
  const CoverageIndex cov = MakeExample1();
  GreedyConfig config;
  config.k = 100;
  const Selection got = IncGreedy(cov, PreferenceFunction::Linear(), config);
  EXPECT_EQ(got.sites.size(), 3u);
  EXPECT_NEAR(got.utility, 1.0, 1e-6);  // s1 + s3 saturate both trajectories
}

TEST(IncGreedy, SelectionsAreDistinct) {
  graph::RoadNetwork net = test::MakeGridNetwork(8, 8, 120.0);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 50, 4, 10, 17);
  SiteSet sites = SiteSet::SampleNodes(net, 20, 18);
  CoverageConfig cc;
  cc.tau_m = 600.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, cc);
  GreedyConfig config;
  config.k = 12;
  const Selection got = IncGreedy(cov, PreferenceFunction::Binary(), config);
  std::vector<SiteId> sorted = got.sites;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(IncGreedy, ExistingServicesDiscountMarginals) {
  const CoverageIndex cov = MakeExample1();
  const PreferenceFunction psi = PreferenceFunction::Linear();
  GreedyConfig config;
  config.k = 1;
  config.existing_services = {1};  // s2 already exists
  const Selection got = IncGreedy(cov, psi, config);
  // With s2 given (base utility 0.61), the best addition is s1:
  // gain(s1) = 0.4 - 0.11 = 0.29 vs gain(s3) = 0.6 - 0.5 = 0.1.
  ASSERT_EQ(got.sites.size(), 1u);
  EXPECT_EQ(got.sites[0], 0u);
  EXPECT_NEAR(got.base_utility, 0.61, 1e-6);
  EXPECT_NEAR(got.utility, 0.9, 1e-6);
}

TEST(IncGreedy, ExistingServicesNeverReduceUtility) {
  graph::RoadNetwork net = test::MakeGridNetwork(8, 8, 120.0);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 50, 4, 10, 19);
  SiteSet sites = SiteSet::SampleNodes(net, 20, 20);
  CoverageConfig cc;
  cc.tau_m = 500.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, cc);
  GreedyConfig plain;
  plain.k = 4;
  const Selection without = IncGreedy(cov, PreferenceFunction::Binary(), plain);
  GreedyConfig with_es = plain;
  with_es.existing_services = {0, 1};
  const Selection with = IncGreedy(cov, PreferenceFunction::Binary(), with_es);
  EXPECT_GE(with.utility, without.utility - 1e-9);
}

TEST(IncGreedy, TieBreaksPreferHigherWeightThenHigherIndex) {
  // Two disjoint sites with identical covers sizes but different weights
  // under a linear ψ; then two fully identical sites.
  std::vector<std::vector<CoverEntry>> tc(3);
  tc[0] = {{0, 0.8f}};             // weight 0.2
  tc[1] = {{1, 0.2f}};             // weight 0.8 -> picked first
  tc[2] = {{2, 0.2f}};             // weight 0.8, same, higher index wins
  const CoverageIndex cov =
      CoverageIndex::FromCovers(std::move(tc), 3, 3, 1.0);
  GreedyConfig config;
  config.k = 1;
  const Selection got = IncGreedy(cov, PreferenceFunction::Linear(), config);
  EXPECT_EQ(got.sites[0], 2u);  // marginal tie at 0.8 -> max weight tie -> max index
}

class GreedyApproximation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyApproximation, GreedyWithinTheoreticalBoundOfOptimal) {
  graph::RoadNetwork net = test::MakeRandomNetwork(40, GetParam());
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 30, 3, 8, GetParam() + 1);
  SiteSet sites = SiteSet::SampleNodes(net, 12, GetParam() + 2);
  CoverageConfig cc;
  cc.tau_m = 700.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, cc);
  const PreferenceFunction psi = PreferenceFunction::Binary();
  GreedyConfig config;
  config.k = 4;
  const Selection greedy = IncGreedy(cov, psi, config);
  OptimalConfig oc;
  oc.k = 4;
  oc.time_limit_s = 30.0;
  const OptimalResult optimal = SolveOptimal(cov, psi, oc);
  ASSERT_TRUE(optimal.proven_optimal);
  EXPECT_GE(greedy.utility, (1.0 - 1.0 / M_E) * optimal.selection.utility - 1e-6);
  EXPECT_LE(greedy.utility, optimal.selection.utility + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyApproximation,
                         ::testing::Values(101, 202, 303, 404));

// --- FM-greedy ---------------------------------------------------------------

TEST(FmGreedy, SelectsKSitesWithPositiveUtility) {
  graph::RoadNetwork net = test::MakeGridNetwork(9, 9, 120.0);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 80, 4, 12, 23);
  SiteSet sites = SiteSet::SampleNodes(net, 25, 24);
  CoverageConfig cc;
  cc.tau_m = 500.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, cc);
  FmGreedyConfig config;
  config.k = 5;
  config.num_sketches = 30;
  const FmGreedyResult got = FmGreedy(cov, config);
  EXPECT_EQ(got.selection.sites.size(), 5u);
  EXPECT_GT(got.selection.utility, 0.0);
  EXPECT_GT(got.estimated_utility, 0.0);
  EXPECT_GT(got.union_operations, 0u);
}

class FmGreedyQuality : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FmGreedyQuality, UtilityWithinToleranceOfExactGreedy) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 120.0);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 120, 4, 12, 25);
  SiteSet sites = SiteSet::SampleNodes(net, 30, 26);
  CoverageConfig cc;
  cc.tau_m = 500.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, cc);
  GreedyConfig gc;
  gc.k = 5;
  const Selection exact = IncGreedy(cov, PreferenceFunction::Binary(), gc);
  FmGreedyConfig fc;
  fc.k = 5;
  fc.num_sketches = GetParam();
  const FmGreedyResult fm = FmGreedy(cov, fc);
  // Paper Table 8: error shrinks with f; even f=30 stays within ~10%.
  const double tolerance = GetParam() >= 30 ? 0.15 : 0.60;
  EXPECT_GE(fm.selection.utility, (1.0 - tolerance) * exact.utility)
      << "f=" << GetParam();
  EXPECT_LE(fm.selection.utility, exact.utility + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SketchCounts, FmGreedyQuality,
                         ::testing::Values(4u, 30u, 64u));

TEST(FmGreedy, EarlyTerminationDoesFewerUnionsThanBruteScan) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 120.0);
  traj::TrajectoryStore store(&net);
  test::FillRandomWalks(&store, 100, 4, 12, 27);
  SiteSet sites = SiteSet::SampleNodes(net, 40, 28);
  CoverageConfig cc;
  cc.tau_m = 500.0;
  const CoverageIndex cov = CoverageIndex::Build(store, sites, cc);
  FmGreedyConfig config;
  config.k = 5;
  const FmGreedyResult got = FmGreedy(cov, config);
  // Brute force would do k * n = 200 unions; early termination must save
  // at least a few.
  EXPECT_LT(got.union_operations, 5u * 40u);
}

}  // namespace
}  // namespace netclus::tops
