#include <algorithm>
#include <set>

#include "graph/dijkstra.h"
#include "gtest/gtest.h"
#include "netclus/gdsp.h"
#include "test_helpers.h"

namespace netclus::index {
namespace {

class GdspInvariants
    : public ::testing::TestWithParam<std::tuple<double, GdspStrategy>> {};

TEST_P(GdspInvariants, PartitionCoversAllNodesWithinTwoR) {
  const auto [radius, strategy] = GetParam();
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  GdspConfig config;
  config.radius_m = radius;
  config.strategy = strategy;
  const GdspResult got = GreedyGdsp(net, config);

  ASSERT_EQ(got.assignment.size(), net.num_nodes());
  ASSERT_EQ(got.rt_to_center.size(), net.num_nodes());
  ASSERT_FALSE(got.centers.empty());

  graph::DijkstraEngine engine(&net);
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
    const uint32_t g = got.assignment[v];
    ASSERT_LT(g, got.centers.size());
    const graph::NodeId center = got.centers[g];
    // Dominance: round trip center -> v -> center within 2R.
    const double out = engine.PointToPoint(center, v);
    const double back = engine.PointToPoint(v, center);
    EXPECT_LE(out + back, 2.0 * radius + 1e-6) << "node " << v;
    EXPECT_NEAR(got.rt_to_center[v], out + back, 1e-3);
  }
  // Centers are members of their own clusters with distance 0.
  for (uint32_t g = 0; g < got.centers.size(); ++g) {
    EXPECT_EQ(got.assignment[got.centers[g]], g);
    EXPECT_FLOAT_EQ(got.rt_to_center[got.centers[g]], 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RadiiAndStrategies, GdspInvariants,
    ::testing::Combine(::testing::Values(100.0, 250.0, 600.0),
                       ::testing::Values(GdspStrategy::kLazyExact,
                                         GdspStrategy::kFmSketch)));

TEST(Gdsp, LargerRadiusYieldsFewerClusters) {
  graph::RoadNetwork net = test::MakeGridNetwork(12, 12, 100.0);
  size_t prev = net.num_nodes() + 1;
  for (const double radius : {50.0, 150.0, 400.0, 1000.0}) {
    GdspConfig config;
    config.radius_m = radius;
    const GdspResult got = GreedyGdsp(net, config);
    EXPECT_LE(got.centers.size(), prev) << "R=" << radius;
    prev = got.centers.size();
  }
}

TEST(Gdsp, TinyRadiusMakesSingletons) {
  graph::RoadNetwork net = test::MakeGridNetwork(6, 6, 100.0);
  GdspConfig config;
  config.radius_m = 10.0;  // 2R = 20 < block length: nobody dominates anybody
  const GdspResult got = GreedyGdsp(net, config);
  EXPECT_EQ(got.centers.size(), net.num_nodes());
}

TEST(Gdsp, HugeRadiusMakesOneCluster) {
  graph::RoadNetwork net = test::MakeGridNetwork(5, 5, 100.0);
  GdspConfig config;
  config.radius_m = 1e6;
  const GdspResult got = GreedyGdsp(net, config);
  EXPECT_EQ(got.centers.size(), 1u);
}

TEST(Gdsp, MeanDominatingSetSizeGrowsWithRadius) {
  graph::RoadNetwork net = test::MakeGridNetwork(10, 10, 100.0);
  double prev = 0.0;
  for (const double radius : {100.0, 300.0, 700.0}) {
    GdspConfig config;
    config.radius_m = radius;
    const GdspResult got = GreedyGdsp(net, config);
    EXPECT_GE(got.mean_dominating_set_size, prev);
    prev = got.mean_dominating_set_size;
  }
}

TEST(Gdsp, GreedyPicksHighestCoverageFirstOnAsymmetricInstance) {
  // A star: hub adjacent to all leaves (within 2R), leaves far from each
  // other. Exact greedy must pick the hub first, giving exactly 1 cluster.
  graph::RoadNetworkBuilder builder;
  const graph::NodeId hub = builder.AddNode({0, 0});
  for (int i = 0; i < 6; ++i) {
    const double angle = i * M_PI / 3.0;
    const graph::NodeId leaf =
        builder.AddNode({100.0 * std::cos(angle), 100.0 * std::sin(angle)});
    builder.AddBidirectional(hub, leaf, 100.0);
  }
  graph::RoadNetwork net = std::move(builder).Build();
  GdspConfig config;
  config.radius_m = 100.0;  // 2R = 200 = hub round trip to any leaf
  const GdspResult got = GreedyGdsp(net, config);
  EXPECT_EQ(got.centers.size(), 1u);
  EXPECT_EQ(got.centers[0], hub);
}

TEST(Gdsp, LazyExactAndFmProduceSimilarClusterCounts) {
  graph::RoadNetwork net = test::MakeGridNetwork(12, 12, 100.0);
  GdspConfig exact;
  exact.radius_m = 250.0;
  exact.strategy = GdspStrategy::kLazyExact;
  GdspConfig fm = exact;
  fm.strategy = GdspStrategy::kFmSketch;
  fm.fm_copies = 64;
  const GdspResult exact_result = GreedyGdsp(net, exact);
  const GdspResult fm_result = GreedyGdsp(net, fm);
  // Theorem 5: FM adds a (1+eps) factor; with f=64 the counts stay close.
  EXPECT_LE(fm_result.centers.size(), exact_result.centers.size() * 2);
  EXPECT_GE(fm_result.centers.size(), exact_result.centers.size() / 2);
}

TEST(Gdsp, DeterministicAcrossRuns) {
  graph::RoadNetwork net = test::MakeGridNetwork(8, 8, 100.0);
  GdspConfig config;
  config.radius_m = 200.0;
  const GdspResult a = GreedyGdsp(net, config);
  const GdspResult b = GreedyGdsp(net, config);
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Gdsp, OneWayLoopRespectsRoundTripDistances) {
  // Directed cycle 0 -> 1 -> 2 -> 3 -> 0 with 100 m edges: round trip
  // between any two distinct nodes is the full loop (400 m).
  graph::RoadNetworkBuilder builder;
  for (int i = 0; i < 4; ++i) builder.AddNode({i * 100.0, 0});
  for (int i = 0; i < 4; ++i) builder.AddEdge(i, (i + 1) % 4, 100.0);
  graph::RoadNetwork net = std::move(builder).Build();
  // 2R = 300 < 400: all singletons despite forward proximity.
  GdspConfig small;
  small.radius_m = 150.0;
  EXPECT_EQ(GreedyGdsp(net, small).centers.size(), 4u);
  // 2R = 400: one cluster dominates everything.
  GdspConfig big;
  big.radius_m = 200.0;
  EXPECT_EQ(GreedyGdsp(net, big).centers.size(), 1u);
}

}  // namespace
}  // namespace netclus::index
