#include <sstream>

#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/road_network.h"
#include "graph/scc.h"
#include "gtest/gtest.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace netclus::graph {
namespace {

TEST(RoadNetwork, BuilderProducesCorrectCsr) {
  RoadNetworkBuilder builder;
  const NodeId a = builder.AddNode({0, 0});
  const NodeId b = builder.AddNode({100, 0});
  const NodeId c = builder.AddNode({100, 100});
  builder.AddEdge(a, b);
  builder.AddEdge(b, c);
  builder.AddEdge(a, c, 250.0);
  RoadNetwork net = std::move(builder).Build();
  EXPECT_EQ(net.num_nodes(), 3u);
  EXPECT_EQ(net.num_edges(), 3u);
  ASSERT_EQ(net.OutArcs(a).size(), 2u);
  EXPECT_EQ(net.OutArcs(a)[0].to, b);
  EXPECT_FLOAT_EQ(net.OutArcs(a)[0].weight, 100.0f);
  EXPECT_EQ(net.OutArcs(a)[1].to, c);
  EXPECT_FLOAT_EQ(net.OutArcs(a)[1].weight, 250.0f);
  EXPECT_EQ(net.OutArcs(c).size(), 0u);
  // Reverse view.
  ASSERT_EQ(net.InArcs(c).size(), 2u);
  EXPECT_EQ(net.InArcs(c)[0].to, a);
  EXPECT_EQ(net.InArcs(c)[1].to, b);
}

TEST(RoadNetwork, SelfLoopsDropped) {
  RoadNetworkBuilder builder;
  const NodeId a = builder.AddNode({0, 0});
  builder.AddEdge(a, a);
  RoadNetwork net = std::move(builder).Build();
  EXPECT_EQ(net.num_edges(), 0u);
}

TEST(RoadNetwork, DefaultWeightIsEuclidean) {
  RoadNetworkBuilder builder;
  const NodeId a = builder.AddNode({0, 0});
  const NodeId b = builder.AddNode({30, 40});
  builder.AddEdge(a, b);
  RoadNetwork net = std::move(builder).Build();
  EXPECT_FLOAT_EQ(net.OutArcs(a)[0].weight, 50.0f);
}

TEST(RoadNetwork, SplitEdgeInsertsMidpointSite) {
  RoadNetworkBuilder builder;
  const NodeId a = builder.AddNode({0, 0});
  const NodeId b = builder.AddNode({100, 0});
  builder.AddBidirectional(a, b);
  const NodeId w = builder.SplitEdge(a, b, 0.25);
  RoadNetwork net = std::move(builder).Build();
  EXPECT_EQ(net.num_nodes(), 3u);
  EXPECT_NEAR(net.position(w).x, 25.0, 1e-9);
  // a->w (25) and w->b (75) in both directions; original edge gone.
  DijkstraEngine engine(&net);
  EXPECT_NEAR(engine.PointToPoint(a, b), 100.0, 1e-6);
  EXPECT_NEAR(engine.PointToPoint(a, w), 25.0, 1e-6);
  EXPECT_NEAR(engine.PointToPoint(b, w), 75.0, 1e-6);
  EXPECT_NEAR(engine.PointToPoint(w, a), 25.0, 1e-6);
}

TEST(RoadNetwork, BoundsAndTotals) {
  RoadNetwork net = test::MakeGridNetwork(3, 4, 100.0);
  const geo::BBox box = net.Bounds();
  EXPECT_DOUBLE_EQ(box.Width(), 300.0);
  EXPECT_DOUBLE_EQ(box.Height(), 200.0);
  EXPECT_GT(net.TotalEdgeLengthMeters(), 0.0);
  EXPECT_GT(net.MemoryBytes(), 0u);
}

class DijkstraProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraProperty, FullSearchMatchesBellmanFord) {
  RoadNetwork net = test::MakeRandomNetwork(60, GetParam());
  DijkstraEngine engine(&net);
  util::Rng rng(GetParam() * 3 + 1);
  for (int trial = 0; trial < 4; ++trial) {
    const NodeId src = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    const std::vector<double> got = engine.FullSearch(src, Direction::kForward);
    const std::vector<double> expected = test::BellmanFord(net, src);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (expected[v] == std::numeric_limits<double>::infinity()) {
        EXPECT_EQ(got[v], kInfDistance);
      } else {
        EXPECT_NEAR(got[v], expected[v], 1e-6) << "src=" << src << " v=" << v;
      }
    }
  }
}

TEST_P(DijkstraProperty, ReverseSearchMatchesForwardOnTransposedPairs) {
  RoadNetwork net = test::MakeRandomNetwork(50, GetParam() + 100);
  DijkstraEngine engine(&net);
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    // d(s, t) via forward search from s equals reverse-search dist at s
    // when searching backwards from t.
    const std::vector<double> fwd = engine.FullSearch(s, Direction::kForward);
    const std::vector<double> rev = engine.FullSearch(t, Direction::kReverse);
    EXPECT_NEAR(fwd[t], rev[s], 1e-6);
  }
}

TEST_P(DijkstraProperty, BoundedSearchIsPrefixOfFullSearch) {
  RoadNetwork net = test::MakeRandomNetwork(60, GetParam() + 200);
  DijkstraEngine engine(&net);
  util::Rng rng(GetParam() + 5);
  const NodeId src = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
  const double radius = 500.0;
  const std::vector<Settled> bounded =
      engine.BoundedSearch(src, radius, Direction::kForward);
  const std::vector<double> full = engine.FullSearch(src, Direction::kForward);
  // Every settled node matches the full distance and respects the bound.
  for (const Settled& s : bounded) {
    EXPECT_NEAR(s.distance, full[s.node], 1e-6);
    EXPECT_LE(s.distance, radius);
  }
  // Every node within radius appears.
  size_t expected_count = 0;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (full[v] <= radius) ++expected_count;
  }
  EXPECT_EQ(bounded.size(), expected_count);
  // Non-decreasing distance order.
  for (size_t i = 1; i < bounded.size(); ++i) {
    EXPECT_GE(bounded[i].distance, bounded[i - 1].distance);
  }
}

// Regression: the point-to-point early exit must not settle the tie-cost
// frontier. A star of many leaves at exactly the target's distance used to
// be scanned leaf by leaf (heap tie-break pops lower ids first) before the
// target itself popped; the fix returns as soon as the heap minimum
// reaches the target's final label. Pins visited-node counts so the
// behavior cannot silently regress.
TEST(Dijkstra, PointToPointEarlyExitSkipsTieCostFrontier) {
  RoadNetworkBuilder builder;
  const NodeId s = builder.AddNode({0.0, 0.0});
  // 50 decoy leaves, ids below the target so ties pop before it.
  for (int i = 0; i < 50; ++i) {
    const NodeId leaf =
        builder.AddNode({100.0 * std::cos(i), 100.0 * std::sin(i)});
    builder.AddEdge(s, leaf, 100.0);
  }
  const NodeId t = builder.AddNode({100.0, 0.0});
  builder.AddEdge(s, t, 100.0);
  RoadNetwork net = std::move(builder).Build();

  DijkstraEngine engine(&net);
  EXPECT_EQ(engine.PointToPoint(s, t), 100.0);
  // Only the source settles: every leaf ties with t at 100 and must be
  // skipped by the early exit (pre-fix this was the whole star, 51).
  EXPECT_LE(engine.last_settled_count(), 2u);

  // Same guarantee for the path variant.
  const std::vector<NodeId> path = engine.ShortestPath(s, t);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path.front(), s);
  EXPECT_EQ(path.back(), t);

  // A target beyond the frontier still settles the whole tie layer —
  // the exit only fires once the target's label is provably final.
  RoadNetworkBuilder far_builder;
  const NodeId fs = far_builder.AddNode({0.0, 0.0});
  std::vector<NodeId> leaves;
  for (int i = 0; i < 20; ++i) {
    const NodeId leaf =
        far_builder.AddNode({100.0 * std::cos(i), 100.0 * std::sin(i)});
    far_builder.AddEdge(fs, leaf, 100.0);
    leaves.push_back(leaf);
  }
  const NodeId ft = far_builder.AddNode({300.0, 0.0});
  far_builder.AddEdge(leaves.back(), ft, 100.0);
  RoadNetwork far_net = std::move(far_builder).Build();
  DijkstraEngine far_engine(&far_net);
  EXPECT_EQ(far_engine.PointToPoint(fs, ft), 200.0);
  // Source + all 20 tie-cost leaves settle before the target's label
  // becomes provably final.
  EXPECT_EQ(far_engine.last_settled_count(), 21u);
}

TEST_P(DijkstraProperty, PointToPointMatchesFullSearch) {
  RoadNetwork net = test::MakeRandomNetwork(50, GetParam() + 300);
  DijkstraEngine engine(&net);
  util::Rng rng(GetParam() + 17);
  for (int trial = 0; trial < 8; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    const std::vector<double> full = engine.FullSearch(s, Direction::kForward);
    EXPECT_NEAR(engine.PointToPoint(s, t), full[t], 1e-6);
  }
}

TEST_P(DijkstraProperty, ShortestPathIsConnectedAndHasCorrectLength) {
  RoadNetwork net = test::MakeRandomNetwork(50, GetParam() + 400);
  DijkstraEngine engine(&net);
  util::Rng rng(GetParam() + 23);
  for (int trial = 0; trial < 8; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(net.num_nodes()));
    const std::vector<NodeId> path = engine.ShortestPath(s, t);
    const double expected = engine.PointToPoint(s, t);
    if (expected == kInfDistance) {
      EXPECT_TRUE(path.empty());
      continue;
    }
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    // Each hop is a real arc; total length equals the shortest distance.
    double total = 0.0;
    for (size_t i = 1; i < path.size(); ++i) {
      double hop = kInfDistance;
      for (const Arc& arc : net.OutArcs(path[i - 1])) {
        if (arc.to == path[i]) hop = std::min(hop, static_cast<double>(arc.weight));
      }
      ASSERT_NE(hop, kInfDistance) << "non-adjacent hop in path";
      total += hop;
    }
    EXPECT_NEAR(total, expected, 1e-6);
  }
}

TEST_P(DijkstraProperty, BoundedRoundTripLegsAreConsistent) {
  RoadNetwork net = test::MakeRandomNetwork(60, GetParam() + 500);
  DijkstraEngine engine(&net);
  const NodeId src = 0;
  const double radius = 900.0;
  const std::vector<RoundTrip> rts = engine.BoundedRoundTrip(src, radius);
  const std::vector<double> fwd = engine.FullSearch(src, Direction::kForward);
  const std::vector<double> rev = engine.FullSearch(src, Direction::kReverse);
  for (const RoundTrip& rt : rts) {
    EXPECT_NEAR(rt.out_distance, fwd[rt.node], 1e-6);
    EXPECT_NEAR(rt.back_distance, rev[rt.node], 1e-6);
    EXPECT_LE(rt.total(), radius + 1e-9);
  }
  // Completeness: every node whose two legs sum within radius is present.
  size_t expected = 0;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (fwd[v] + rev[v] <= radius) ++expected;
  }
  EXPECT_EQ(rts.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraProperty, ::testing::Values(1, 2, 3, 4, 5));

TEST(Dijkstra, SourceIsSettledFirst) {
  RoadNetwork net = test::MakeLineNetwork(5);
  DijkstraEngine engine(&net);
  const auto settled = engine.BoundedSearch(0, 1000.0, Direction::kForward);
  ASSERT_FALSE(settled.empty());
  EXPECT_EQ(settled[0].node, 0u);
  EXPECT_DOUBLE_EQ(settled[0].distance, 0.0);
}

TEST(Dijkstra, ZeroRadiusSettlesOnlySource) {
  RoadNetwork net = test::MakeLineNetwork(5);
  DijkstraEngine engine(&net);
  const auto settled = engine.BoundedSearch(2, 0.0, Direction::kForward);
  EXPECT_EQ(settled.size(), 1u);
}

TEST(Dijkstra, PointToPointSameNode) {
  RoadNetwork net = test::MakeLineNetwork(3);
  DijkstraEngine engine(&net);
  EXPECT_DOUBLE_EQ(engine.PointToPoint(1, 1), 0.0);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  RoadNetworkBuilder builder;
  builder.AddNode({0, 0});
  builder.AddNode({100, 0});
  builder.AddEdge(0, 1);  // one-way only
  RoadNetwork net = std::move(builder).Build();
  DijkstraEngine engine(&net);
  EXPECT_EQ(engine.PointToPoint(1, 0), kInfDistance);
}

TEST(Scc, IdentifiesComponents) {
  // Two 2-cycles joined by a one-way bridge: two SCCs.
  RoadNetworkBuilder builder;
  for (int i = 0; i < 4; ++i) builder.AddNode({i * 100.0, 0});
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);  // bridge
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 2);
  RoadNetwork net = std::move(builder).Build();
  uint32_t count = 0;
  const auto comp = StronglyConnectedComponents(net, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Scc, RestrictKeepsLargestComponent) {
  RoadNetworkBuilder builder;
  for (int i = 0; i < 5; ++i) builder.AddNode({i * 100.0, 0});
  // 3-cycle {0,1,2} and 2-cycle {3,4}, bridge 2->3.
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 3);
  RoadNetwork net = std::move(builder).Build();
  std::vector<NodeId> mapping;
  RoadNetwork largest = RestrictToLargestScc(net, &mapping);
  EXPECT_EQ(largest.num_nodes(), 3u);
  EXPECT_NE(mapping[0], kInvalidNode);
  EXPECT_EQ(mapping[3], kInvalidNode);
}

TEST(Scc, SingleComponentRoundTripsEverywhere) {
  RoadNetwork net = test::MakeGridNetwork(4, 4);
  uint32_t count = 0;
  StronglyConnectedComponents(net, &count);
  EXPECT_EQ(count, 1u);
}

class GeneratorTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorTest, AllGeneratorsProduceStronglyConnectedNetworks) {
  RoadNetwork net;
  switch (GetParam()) {
    case 0: {
      GridCityConfig config;
      config.rows = 20;
      config.cols = 20;
      net = GenerateGridCity(config);
      break;
    }
    case 1: {
      StarCityConfig config;
      config.nodes_per_ray = 20;
      config.core_rows = 8;
      config.core_cols = 8;
      net = GenerateStarCity(config);
      break;
    }
    case 2: {
      PolycentricCityConfig config;
      config.patch_rows = 8;
      config.patch_cols = 8;
      net = GeneratePolycentricCity(config);
      break;
    }
    case 3: {
      RandomCityConfig config;
      config.num_nodes = 500;
      net = GenerateRandomCity(config);
      break;
    }
  }
  ASSERT_GT(net.num_nodes(), 50u);
  uint32_t count = 0;
  StronglyConnectedComponents(net, &count);
  EXPECT_EQ(count, 1u) << "generator " << GetParam();
  // Degree sanity: no isolated nodes.
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    EXPECT_GT(net.OutArcs(u).size() + net.InArcs(u).size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, GeneratorTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(Generators, DeterministicForSameSeed) {
  GridCityConfig config;
  config.rows = 10;
  config.cols = 10;
  RoadNetwork a = GenerateGridCity(config);
  RoadNetwork b = GenerateGridCity(config);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    EXPECT_EQ(a.position(u).x, b.position(u).x);
  }
}

TEST(Generators, SeedChangesNetwork) {
  GridCityConfig config;
  config.rows = 10;
  config.cols = 10;
  RoadNetwork a = GenerateGridCity(config);
  config.seed = 999;
  RoadNetwork b = GenerateGridCity(config);
  bool any_different = a.num_edges() != b.num_edges();
  for (NodeId u = 0; !any_different && u < a.num_nodes(); ++u) {
    any_different = a.position(u).x != b.position(u).x;
  }
  EXPECT_TRUE(any_different);
}

TEST(GraphIo, RoundTripPreservesStructure) {
  RoadNetwork net = test::MakeRandomNetwork(40, 7);
  std::stringstream ss;
  WriteGraph(net, ss);
  RoadNetwork loaded;
  std::string error;
  ASSERT_TRUE(ReadGraph(ss, &loaded, &error)) << error;
  ASSERT_EQ(loaded.num_nodes(), net.num_nodes());
  ASSERT_EQ(loaded.num_edges(), net.num_edges());
  DijkstraEngine e1(&net), e2(&loaded);
  const auto d1 = e1.FullSearch(0, Direction::kForward);
  const auto d2 = e2.FullSearch(0, Direction::kForward);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (d1[v] == kInfDistance) {
      EXPECT_EQ(d2[v], kInfDistance);
    } else {
      EXPECT_NEAR(d1[v], d2[v], 1e-3);
    }
  }
}

TEST(GraphIo, RejectsMalformedInput) {
  RoadNetwork net;
  std::string error;
  std::stringstream empty("");
  EXPECT_FALSE(ReadGraph(empty, &net, &error));
  std::stringstream bad_header("bogus v9\n");
  EXPECT_FALSE(ReadGraph(bad_header, &net, &error));
  std::stringstream truncated("netclus-graph v1\nnodes 3\n0 0\n");
  EXPECT_FALSE(ReadGraph(truncated, &net, &error));
  std::stringstream bad_edge(
      "netclus-graph v1\nnodes 2\n0 0\n1 1\nedges 1\n0 7 10\n");
  EXPECT_FALSE(ReadGraph(bad_edge, &net, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace netclus::graph
