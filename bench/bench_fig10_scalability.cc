// Fig. 10: scalability with the number of candidate sites and the number
// of trajectories (k = 5, τ = 0.8 km).
// Paper: INCG grows steeply in both dimensions; NetClus stays about an
// order of magnitude faster throughout.
//
// Section (c) goes beyond the paper: thread scaling of the offline index
// build and of batched online queries (threads ∈ {1, 2, 4, 8}), reporting
// speedup over the serial run. Results are thread-count-invariant
// (docs/parallelism.md), so only the timings move.
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Fig. 10", "Scalability vs #sites (a) and #trajectories (b)",
      "runtimes grow with both; NetClus roughly an order of magnitude "
      "faster than INCG at every size");

  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const double tau = 800.0;
  const uint32_t k = 5;

  std::printf("\n(a) runtime vs number of candidate sites\n");
  util::Table by_sites({"sites", "INCG_s", "NetClus_ms"});
  {
    data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
    for (const double frac : {0.4, 0.6, 0.8, 1.0}) {
      const size_t count = static_cast<size_t>(frac * d.network->num_nodes());
      d.sites = tops::SiteSet::SampleNodes(*d.network, count, 9000 + count);
      const index::MultiIndex index = bench::BuildIndex(d);
      const bench::ExactRun incg = bench::RunExactGreedy(d, k, tau, psi, false);
      const bench::NetClusRun netclus =
          bench::RunNetClus(d, index, k, tau, psi, false);
      by_sites.Row()
          .Cell(static_cast<uint64_t>(count))
          .Cell(incg.total_seconds, 2)
          .Cell(netclus.total_seconds * 1e3, 1);
    }
  }
  by_sites.PrintText(std::cout);

  std::printf("\n(b) runtime vs number of trajectories\n");
  util::Table by_trajs({"trajectories", "INCG_s", "NetClus_ms"});
  for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
    // Regenerate the dataset with a scaled trajectory count (sites fixed to
    // all nodes). Dataset scale controls both, so scale trajectories by
    // removing a suffix.
    data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
    const size_t keep = static_cast<size_t>(frac * d.store->total_count());
    for (traj::TrajId t = static_cast<traj::TrajId>(keep);
         t < d.store->total_count(); ++t) {
      d.store->Remove(t);
    }
    d.store->Compact();
    const index::MultiIndex index = bench::BuildIndex(d);
    const bench::ExactRun incg = bench::RunExactGreedy(d, k, tau, psi, false);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, k, tau, psi, false);
    by_trajs.Row()
        .Cell(static_cast<uint64_t>(d.store->live_count()))
        .Cell(incg.total_seconds, 2)
        .Cell(netclus.total_seconds * 1e3, 1);
  }
  by_trajs.PrintText(std::cout);

  std::printf("\n(c) thread scaling: offline build and batched queries\n");
  util::Table by_threads({"threads", "build_s", "build_speedup", "batch_s",
                          "batch_speedup"});
  {
    data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
    const size_t batch = 64;
    // The first sweep entry is the speedup baseline, whatever it is.
    double build_base = 0.0, batch_base = 0.0;
    bool have_base = false;
    for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
      util::WallTimer build_timer;
      const index::MultiIndex index =
          bench::BuildIndex(d, 0.75, 400.0, 6000.0, threads);
      const double build_s = build_timer.Seconds();
      const double batch_s = bench::RunQueryBatch(d, index, batch, psi, threads);
      if (!have_base) {
        build_base = build_s;
        batch_base = batch_s;
        have_base = true;
      }
      by_threads.Row()
          .Cell(static_cast<uint64_t>(threads))
          .Cell(build_s, 2)
          .Cell(build_base / build_s, 2)
          .Cell(batch_s, 3)
          .Cell(batch_base / batch_s, 2);
    }
  }
  by_threads.PrintText(std::cout);
  return 0;
}
