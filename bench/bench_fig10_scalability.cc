// Fig. 10: scalability with the number of candidate sites and the number
// of trajectories (k = 5, τ = 0.8 km).
// Paper: INCG grows steeply in both dimensions; NetClus stays about an
// order of magnitude faster throughout.
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Fig. 10", "Scalability vs #sites (a) and #trajectories (b)",
      "runtimes grow with both; NetClus roughly an order of magnitude "
      "faster than INCG at every size");

  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const double tau = 800.0;
  const uint32_t k = 5;

  std::printf("\n(a) runtime vs number of candidate sites\n");
  util::Table by_sites({"sites", "INCG_s", "NetClus_ms"});
  {
    data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
    for (const double frac : {0.4, 0.6, 0.8, 1.0}) {
      const size_t count = static_cast<size_t>(frac * d.network->num_nodes());
      d.sites = tops::SiteSet::SampleNodes(*d.network, count, 9000 + count);
      const index::MultiIndex index = bench::BuildIndex(d);
      const bench::ExactRun incg = bench::RunExactGreedy(d, k, tau, psi, false);
      const bench::NetClusRun netclus =
          bench::RunNetClus(d, index, k, tau, psi, false);
      by_sites.Row()
          .Cell(static_cast<uint64_t>(count))
          .Cell(incg.total_seconds, 2)
          .Cell(netclus.total_seconds * 1e3, 1);
    }
  }
  by_sites.PrintText(std::cout);

  std::printf("\n(b) runtime vs number of trajectories\n");
  util::Table by_trajs({"trajectories", "INCG_s", "NetClus_ms"});
  for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
    // Regenerate the dataset with a scaled trajectory count (sites fixed to
    // all nodes). Dataset scale controls both, so scale trajectories by
    // removing a suffix.
    data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
    const size_t keep = static_cast<size_t>(frac * d.store->total_count());
    for (traj::TrajId t = static_cast<traj::TrajId>(keep);
         t < d.store->total_count(); ++t) {
      d.store->Remove(t);
    }
    d.store->Compact();
    const index::MultiIndex index = bench::BuildIndex(d);
    const bench::ExactRun incg = bench::RunExactGreedy(d, k, tau, psi, false);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, k, tau, psi, false);
    by_trajs.Row()
        .Cell(static_cast<uint64_t>(d.store->live_count()))
        .Cell(incg.total_seconds, 2)
        .Cell(netclus.total_seconds * 1e3, 1);
  }
  by_trajs.PrintText(std::cout);
  return 0;
}
