// Fig. 8: the TOPS2 variant (convex coverage-probability preference).
// Paper: NetClus utility stays close to INCG while being about an order of
// magnitude faster, for k in {5, 10, 20} and tau in {0.4, 0.8} km.
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Fig. 8", "TOPS2 (convex probability psi): utility and running time",
      "NetClus utility close to INCG across k and tau; about an order of "
      "magnitude faster");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::ConvexProbability(2.0);
  const index::MultiIndex index = bench::BuildIndex(d);
  const size_t m = d.num_trajectories();

  util::Table table({"tau_km", "k", "INCG_%", "NetClus_%", "INCG_ms",
                     "NetClus_ms"});
  for (const double tau : {400.0, 800.0}) {
    for (const uint32_t k : {5u, 10u, 20u}) {
      const bench::ExactRun incg =
          bench::RunExactGreedy(d, k, tau, psi, false);
      const bench::NetClusRun netclus =
          bench::RunNetClus(d, index, k, tau, psi, false);
      table.Row()
          .Cell(tau / 1000.0, 1)
          .Cell(static_cast<uint64_t>(k))
          .Cell(bench::Percent(incg.utility, m), 1)
          .Cell(bench::Percent(netclus.utility, m), 1)
          .Cell(incg.total_seconds * 1e3, 0)
          .Cell(netclus.total_seconds * 1e3, 1);
    }
  }
  table.PrintText(std::cout);
  return 0;
}
