// Fig. 11: effect of city geometry (k = 5, τ = 0.8 km).
// Paper: polycentric Bangalore yields the highest utility % (flow
// concentrates between district centers), star-shaped New York sits in the
// middle, and mesh-like Atlanta the lowest (flow spread out); running
// times are comparable, with the smallest network fastest.
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Fig. 11", "Effect of city geometries (NYK / ATL / BNG)",
      "utility: Bangalore (polycentric) > New York (star) > Atlanta "
      "(mesh); NetClus tracks INCG on all three");

  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const double tau = util::GetEnvDouble("NETCLUS_TAU_M", 800.0);
  const uint32_t k = static_cast<uint32_t>(util::GetEnvInt("NETCLUS_K", 5));

  util::Table table({"city", "nodes", "trajectories", "INCG_%", "NetClus_%",
                     "INCG_s", "NetClus_ms"});
  for (const char* name : {"newyork", "atlanta", "bangalore"}) {
    data::Dataset d = bench::MakeDataset(name, 0.25);
    const index::MultiIndex index = bench::BuildIndex(d);
    const bench::ExactRun incg = bench::RunExactGreedy(d, k, tau, psi, false);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, k, tau, psi, false);
    const size_t m = d.num_trajectories();
    table.Row()
        .Cell(name)
        .Cell(static_cast<uint64_t>(d.num_nodes()))
        .Cell(static_cast<uint64_t>(m))
        .Cell(bench::Percent(incg.utility, m), 1)
        .Cell(bench::Percent(netclus.utility, m), 1)
        .Cell(incg.total_seconds, 2)
        .Cell(netclus.total_seconds * 1e3, 1);
  }
  table.PrintText(std::cout);
  return 0;
}
