// Fig. 5: solution quality (utility as % of trajectories) vs k and vs τ.
// Paper: utility grows concavely in k and saturates in τ; NetClus stays
// within ~93% of Inc-Greedy on average; FM variants track their exact
// counterparts; INCG/FMG cannot run beyond τ = 1.2 km (memory).
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Fig. 5", "Quality: utility vs k (a) and vs tau (b)",
      "concave growth in k, saturation in tau; NetClus within ~93% of "
      "INCG; INCG/FMG infeasible beyond the memory cutoff");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const index::MultiIndex index = bench::BuildIndex(d);
  const uint64_t budget_bytes = static_cast<uint64_t>(
      util::GetEnvInt("NETCLUS_MEM_BUDGET_MB", 16)) << 20;
  const size_t m = d.num_trajectories();

  std::printf("\n(a) utility vs k at tau = 0.8 km\n");
  util::Table by_k({"k", "INCG_%", "FMG_%", "NetClus_%", "FMNetClus_%"});
  for (const uint32_t k : {1u, 5u, 10u, 15u, 20u, 25u}) {
    const bench::ExactRun incg =
        bench::RunExactGreedy(d, k, 800.0, psi, false, 30, budget_bytes);
    const bench::ExactRun fmg =
        bench::RunExactGreedy(d, k, 800.0, psi, true, 30, budget_bytes);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, k, 800.0, psi, false);
    const bench::NetClusRun fm_netclus =
        bench::RunNetClus(d, index, k, 800.0, psi, true);
    by_k.Row()
        .Cell(static_cast<uint64_t>(k))
        .Cell(incg.oom ? std::string("OOM")
                       : util::StrFormat("%.1f", bench::Percent(incg.utility, m)))
        .Cell(fmg.oom ? std::string("OOM")
                      : util::StrFormat("%.1f", bench::Percent(fmg.utility, m)))
        .Cell(bench::Percent(netclus.utility, m), 1)
        .Cell(bench::Percent(fm_netclus.utility, m), 1);
  }
  by_k.PrintText(std::cout);

  std::printf("\n(b) utility vs tau at k = 5\n");
  util::Table by_tau({"tau_km", "INCG_%", "FMG_%", "NetClus_%", "FMNetClus_%"});
  for (const double tau : {100.0, 200.0, 400.0, 800.0, 1200.0, 1600.0, 2000.0,
                           4000.0, 8000.0}) {
    const bench::ExactRun incg =
        bench::RunExactGreedy(d, 5, tau, psi, false, 30, budget_bytes);
    const bench::ExactRun fmg =
        bench::RunExactGreedy(d, 5, tau, psi, true, 30, budget_bytes);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, 5, tau, psi, false);
    const bench::NetClusRun fm_netclus =
        bench::RunNetClus(d, index, 5, tau, psi, true);
    by_tau.Row()
        .Cell(tau / 1000.0, 1)
        .Cell(incg.oom ? std::string("OOM")
                       : util::StrFormat("%.1f", bench::Percent(incg.utility, m)))
        .Cell(fmg.oom ? std::string("OOM")
                      : util::StrFormat("%.1f", bench::Percent(fmg.utility, m)))
        .Cell(bench::Percent(netclus.utility, m), 1)
        .Cell(bench::Percent(fm_netclus.utility, m), 1);
  }
  by_tau.PrintText(std::cout);
  return 0;
}
