// Table 12: the rejected alternative — Jaccard-similarity clustering of
// sites by their trajectory covers (Appendix B.1).
// Paper: time and memory grow steeply with τ and the method runs out of
// memory at τ = 2.4 km, which motivates NetClus's distance-based GDSP
// clustering (whose cost is τ-independent per instance).
#include "bench_common.h"

#include "netclus/jaccard.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Table 12", "Jaccard-similarity clustering cost vs tau (alpha = 0.8)",
      "time and memory blow up with tau, ending in OOM — the reason "
      "NetClus clusters by network distance instead");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  const double alpha = util::GetEnvDouble("NETCLUS_JACCARD_ALPHA", 0.8);
  const uint64_t budget_bytes = static_cast<uint64_t>(
      util::GetEnvInt("NETCLUS_MEM_BUDGET_MB", 32)) << 20;

  util::Table table({"tau_km", "clusters", "time_s", "memory", "status"});
  for (const double tau : {200.0, 400.0, 800.0, 1200.0, 1600.0, 2400.0,
                           4000.0}) {
    tops::CoverageConfig cc;
    cc.tau_m = tau;
    cc.memory_budget_bytes = budget_bytes;
    util::WallTimer timer;
    const tops::CoverageIndex coverage =
        tops::CoverageIndex::Build(*d.store, d.sites, cc);
    if (coverage.oom()) {
      table.Row()
          .Cell(tau / 1000.0, 1)
          .Cell("-")
          .Cell("-")
          .Cell("-")
          .Cell("Out of memory (covering sets)");
      continue;
    }
    index::JaccardConfig config;
    config.alpha = alpha;
    config.memory_budget_bytes = budget_bytes;
    const index::JaccardResult result = JaccardCluster(coverage, config);
    table.Row()
        .Cell(tau / 1000.0, 1)
        .Cell(result.oom ? std::string("-")
                         : util::StrFormat("%zu", result.num_clusters))
        .Cell(timer.Seconds(), 2)
        .Cell(util::HumanBytes(result.memory_bytes))
        .Cell(result.oom ? "Out of memory" : "ok");
  }
  table.PrintText(std::cout);
  return 0;
}
