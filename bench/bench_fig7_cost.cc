// Fig. 7a + Fig. 9: TOPS-COST under normally distributed site costs.
// Paper: with budget B = 5 and mean cost 1.0, utility and the number of
// selected sites rise with the cost standard deviation (more cheap sites
// become affordable); running time stays near the unconstrained case.
#include "bench_common.h"

#include "tops/variants.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Fig. 7a / Fig. 9", "TOPS-COST: utility, #sites, time vs cost stddev",
      "utility and number of selected sites rise with cost stddev; NetClus "
      "tracks INCG closely and stays an order of magnitude faster");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  const double tau = util::GetEnvDouble("NETCLUS_TAU_M", 800.0);
  const double budget = util::GetEnvDouble("NETCLUS_BUDGET", 5.0);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const index::MultiIndex index = bench::BuildIndex(d);
  const index::QueryEngine engine(&index, d.store.get(), &d.sites);
  const size_t m = d.num_trajectories();

  // Exact covering sets once (costs change per row, covers don't).
  tops::CoverageConfig cc;
  cc.tau_m = tau;
  util::WallTimer cover_timer;
  const tops::CoverageIndex coverage =
      tops::CoverageIndex::Build(*d.store, d.sites, cc);
  const double cover_seconds = cover_timer.Seconds();

  util::Table table({"cost_stddev", "INCG_%", "NetClus_%", "INCG_sites",
                     "NetClus_sites", "INCG_ms", "NetClus_ms"});
  for (const double sigma : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const std::vector<double> costs =
        tops::DrawNormalCosts(d.sites.size(), 1.0, sigma, 0.1, 1000 + sigma * 10);
    tops::CostConfig cost_config;
    cost_config.budget = budget;
    cost_config.site_costs = costs;
    util::WallTimer incg_timer;
    const tops::CostResult incg = CostGreedy(coverage, psi, cost_config);
    const double incg_ms = (cover_seconds + incg_timer.Seconds()) * 1e3;

    index::QueryConfig query;
    query.tau_m = tau;
    util::WallTimer netclus_timer;
    const index::QueryResult netclus = engine.TopsCost(psi, query, costs, budget);
    const double netclus_ms = netclus_timer.Millis();
    const double netclus_utility = tops::CoverageIndex::EvaluateSelection(
        *d.store, d.sites, netclus.selection.sites, tau, psi);

    table.Row()
        .Cell(sigma, 1)
        .Cell(bench::Percent(incg.selection.utility, m), 1)
        .Cell(bench::Percent(netclus_utility, m), 1)
        .Cell(static_cast<uint64_t>(incg.selection.sites.size()))
        .Cell(static_cast<uint64_t>(netclus.selection.sites.size()))
        .Cell(incg_ms, 0)
        .Cell(netclus_ms, 1);
  }
  table.PrintText(std::cout);
  return 0;
}
