// Table 9: memory footprint of the four algorithms vs τ.
// Paper: INCG/FMG footprints (covering sets) grow sharply with τ and blow
// past the budget beyond τ = 1.2 km; NetClus/FMNetClus footprints stay
// small and *shrink* for large τ because coarser instances compress more.
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Table 9", "Memory footprint of different algorithms vs tau",
      "covering-set footprint grows with tau and hits OOM; NetClus stays "
      "flat/shrinking (coarser instances)");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const index::MultiIndex index = bench::BuildIndex(d);
  const uint64_t budget_bytes = static_cast<uint64_t>(
      util::GetEnvInt("NETCLUS_MEM_BUDGET_MB", 16)) << 20;
  const uint32_t k = 5;

  std::printf("memory budget (paper: 32 GB testbed): %s\n",
              util::HumanBytes(budget_bytes).c_str());
  util::Table table({"tau_km", "INCG", "FMG", "NetClus", "FMNetClus",
                     "NetClus_instance"});
  for (const double tau : {100.0, 200.0, 400.0, 800.0, 1200.0, 1600.0, 2400.0,
                           4000.0, 8000.0}) {
    const bench::ExactRun incg =
        bench::RunExactGreedy(d, k, tau, psi, false, 30, budget_bytes);
    const bench::ExactRun fmg =
        bench::RunExactGreedy(d, k, tau, psi, true, 30, budget_bytes);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, k, tau, psi, false);
    const bench::NetClusRun fm_netclus =
        bench::RunNetClus(d, index, k, tau, psi, true);
    // NetClus per-query memory: the resolved instance + transient covers.
    const uint64_t instance_bytes =
        index.instance(netclus.instance_used).MemoryBytes();
    table.Row()
        .Cell(tau / 1000.0, 1)
        .Cell(incg.oom ? std::string("Out of memory")
                       : util::HumanBytes(incg.memory_bytes))
        .Cell(fmg.oom ? std::string("Out of memory")
                      : util::HumanBytes(fmg.memory_bytes))
        .Cell(util::HumanBytes(netclus.transient_bytes + instance_bytes))
        .Cell(util::HumanBytes(fm_netclus.transient_bytes + instance_bytes))
        .Cell(static_cast<uint64_t>(netclus.instance_used));
  }
  table.PrintText(std::cout);
  std::printf("whole-process VmRSS at exit: %s\n",
              util::HumanBytes(util::ReadVmRssBytes()).c_str());
  return 0;
}
