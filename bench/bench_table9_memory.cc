// Table 9: memory footprint of the four algorithms vs τ.
// Paper: INCG/FMG footprints (covering sets) grow sharply with τ and blow
// past the budget beyond τ = 1.2 km; NetClus/FMNetClus footprints stay
// small and *shrink* for large τ because coarser instances compress more.
//
// Besides the paper's table, this bench reports the compact-storage
// numbers of the v2 index work: raw vs compressed posting bytes (index
// TL/CC arenas and covering sets) plus whole-process resident bytes, and
// writes them to BENCH_table9.json (override with NETCLUS_BENCH_JSON) so
// CI tracks the compression ratio across PRs.
#include <fstream>

#include "bench_common.h"

#include "netclus/index_io.h"
#include "store/arena.h"

int main(int argc, char** argv) {
  using namespace netclus;
  bench::PrintHeader(
      "Table 9", "Memory footprint of different algorithms vs tau",
      "covering-set footprint grows with tau and hits OOM; NetClus stays "
      "flat/shrinking (coarser instances)");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const index::MultiIndex index = bench::BuildIndex(d);
  const uint64_t budget_bytes = static_cast<uint64_t>(
      util::GetEnvInt("NETCLUS_MEM_BUDGET_MB", 16)) << 20;
  const uint32_t k = 5;

  std::printf("memory budget (paper: 32 GB testbed): %s\n",
              util::HumanBytes(budget_bytes).c_str());
  util::Table table({"tau_km", "INCG", "FMG", "NetClus", "FMNetClus",
                     "NetClus_instance"});
  for (const double tau : {100.0, 200.0, 400.0, 800.0, 1200.0, 1600.0, 2400.0,
                           4000.0, 8000.0}) {
    const bench::ExactRun incg =
        bench::RunExactGreedy(d, k, tau, psi, false, 30, budget_bytes);
    const bench::ExactRun fmg =
        bench::RunExactGreedy(d, k, tau, psi, true, 30, budget_bytes);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, k, tau, psi, false);
    const bench::NetClusRun fm_netclus =
        bench::RunNetClus(d, index, k, tau, psi, true);
    // NetClus per-query memory: the resolved instance + transient covers.
    const uint64_t instance_bytes =
        index.instance(netclus.instance_used).MemoryBytes();
    table.Row()
        .Cell(tau / 1000.0, 1)
        .Cell(incg.oom ? std::string("Out of memory")
                       : util::HumanBytes(incg.memory_bytes))
        .Cell(fmg.oom ? std::string("Out of memory")
                      : util::HumanBytes(fmg.memory_bytes))
        .Cell(util::HumanBytes(netclus.transient_bytes + instance_bytes))
        .Cell(util::HumanBytes(fm_netclus.transient_bytes + instance_bytes))
        .Cell(static_cast<uint64_t>(netclus.instance_used));
  }
  table.PrintText(std::cout);

  // --- compact posting storage (v2 index format) ---------------------------
  // Index postings: what the TL/CC lists cost as delta-varint arenas vs
  // the vector-of-vectors representation they replaced.
  const uint64_t raw_bytes = index.PostingsBytesRaw();
  const uint64_t packed_bytes = index.PostingsBytesCompressed();
  const double ratio = packed_bytes == 0
                           ? 0.0
                           : static_cast<double>(raw_bytes) /
                                 static_cast<double>(packed_bytes);
  std::printf("\nindex postings (all instances): raw %s, compressed %s, "
              "ratio %.2fx\n",
              util::HumanBytes(raw_bytes).c_str(),
              util::HumanBytes(packed_bytes).c_str(), ratio);

  // Covering sets: the same arena codec applied to TC/SC at a mid τ.
  tops::CoverageConfig cov_config;
  cov_config.tau_m = 800.0;
  tops::CoverageIndex coverage =
      tops::CoverageIndex::Build(*d.store, d.sites, cov_config);
  const uint64_t cov_raw = coverage.MemoryBytes();
  coverage.Compress();
  const uint64_t cov_packed = coverage.MemoryBytes();
  const double cov_ratio = cov_packed == 0
                               ? 0.0
                               : static_cast<double>(cov_raw) /
                                     static_cast<double>(cov_packed);
  std::printf("covering sets (tau = 0.8 km): raw %s, compressed %s, "
              "ratio %.2fx\n",
              util::HumanBytes(cov_raw).c_str(),
              util::HumanBytes(cov_packed).c_str(), cov_ratio);

  // --- v3 blocked format: file sizes and Elias-Fano offset tables ----------
  // File-level comparison: flat varints + plain u64 offsets (v2) against
  // 128-entry blocks with skip headers + EF offsets (v3).
  const std::vector<uint8_t> v2_image = index::EncodeIndexV2(index, nullptr);
  const std::vector<uint8_t> v3_image = index::EncodeIndexV3(index, nullptr);
  std::printf("\nindex image: v2 (flat) %s, v3 (blocked+EF) %s\n",
              util::HumanBytes(v2_image.size()).c_str(),
              util::HumanBytes(v3_image.size()).c_str());

  // Offset tables in isolation: rebuild instance-0's TL lists into flat
  // and blocked arenas; the flat offsets block is the plain u64 table,
  // the blocked one is its Elias-Fano replacement.
  const index::ClusterIndex& inst0 = index.instance(0);
  store::PostingArenaBuilder flat_tl(store::ListLayout::kFlat);
  store::PostingArenaBuilder blocked_tl(store::ListLayout::kBlocked);
  for (uint32_t g = 0; g < inst0.num_clusters(); ++g) {
    std::vector<index::TlEntry> list;
    inst0.cluster(g).tl.ForEach(
        [&](const index::TlEntry& e) { list.push_back(e); });
    flat_tl.AddPairList(list);
    blocked_tl.AddPairList(list);
  }
  const uint64_t plain_offset_bytes = flat_tl.Finish().offsets_block().size();
  const uint64_t ef_offset_bytes = blocked_tl.Finish().offsets_block().size();
  const double ef_ratio =
      ef_offset_bytes == 0 ? 0.0
                           : static_cast<double>(plain_offset_bytes) /
                                 static_cast<double>(ef_offset_bytes);
  std::printf("TL offset table (instance 0, %u lists): plain u64 %s, "
              "Elias-Fano %s, ratio %.2fx\n",
              inst0.num_clusters(),
              util::HumanBytes(plain_offset_bytes).c_str(),
              util::HumanBytes(ef_offset_bytes).c_str(), ef_ratio);

  const uint64_t vmrss = util::ReadVmRssBytes();
  std::printf("whole-process VmRSS at exit: %s\n",
              util::HumanBytes(vmrss).c_str());

  const std::string json_path = bench::JsonOutPath(argc, argv, "BENCH_table9.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"table9_memory\",\n"
       << "  \"index_postings_raw_bytes\": " << raw_bytes << ",\n"
       << "  \"index_postings_compressed_bytes\": " << packed_bytes << ",\n"
       << "  \"index_postings_compression_ratio\": " << ratio << ",\n"
       << "  \"coverage_raw_bytes\": " << cov_raw << ",\n"
       << "  \"coverage_compressed_bytes\": " << cov_packed << ",\n"
       << "  \"coverage_compression_ratio\": " << cov_ratio << ",\n"
       << "  \"index_file_v2_bytes\": " << v2_image.size() << ",\n"
       << "  \"index_file_v3_bytes\": " << v3_image.size() << ",\n"
       << "  \"tl_offsets_plain_bytes\": " << plain_offset_bytes << ",\n"
       << "  \"tl_offsets_ef_bytes\": " << ef_offset_bytes << ",\n"
       << "  \"tl_offsets_ef_ratio\": " << ef_ratio << ",\n"
       << "  \"vmrss_bytes\": " << vmrss << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
