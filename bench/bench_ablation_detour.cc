// Ablation: single-point vs pairwise detour semantics (DESIGN.md).
// The pairwise (leave at v_k, rejoin at v_l, along-path baseline) distance
// is never larger, so it covers at least as many trajectories and yields
// at least the utility of the single-point round trip — at ~l x the
// covering-set construction cost.
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Ablation", "Detour semantics: single-point vs pairwise",
      "pairwise covers >= single-point at higher build cost; selections "
      "mostly agree");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.12);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const uint32_t k = 5;

  util::Table table({"tau_km", "mode", "cover_entries", "build_s",
                     "utility_%"});
  for (const double tau : {400.0, 800.0, 1200.0}) {
    for (const auto mode :
         {tops::DetourMode::kSinglePoint, tops::DetourMode::kPairwise}) {
      tops::CoverageConfig cc;
      cc.tau_m = tau;
      cc.detour = mode;
      const tops::CoverageIndex coverage =
          tops::CoverageIndex::Build(*d.store, d.sites, cc);
      tops::GreedyConfig gc;
      gc.k = k;
      const tops::Selection sel = IncGreedy(coverage, psi, gc);
      table.Row()
          .Cell(tau / 1000.0, 1)
          .Cell(mode == tops::DetourMode::kSinglePoint ? "single-point"
                                                       : "pairwise")
          .Cell(coverage.stats().cover_entries)
          .Cell(coverage.stats().build_seconds, 2)
          .Cell(bench::Percent(sel.utility, d.num_trajectories()), 2);
    }
  }
  table.PrintText(std::cout);
  return 0;
}
