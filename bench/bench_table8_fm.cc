// Table 8: variation across the number of FM sketch copies, f.
// Paper: small f ⇒ large utility error but big solver speed-up; error
// falls and speed-up shrinks as f grows; around f≈100 the sketches stop
// paying off. f = 30 (error < 5%, speed-up > 5x) is the paper's choice.
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Table 8", "Variation across the number of FM sketches, f",
      "relative error vs exact NetClus decreases with f while the solver "
      "speed-up decreases; very large f is slower than exact");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  const uint32_t k = static_cast<uint32_t>(util::GetEnvInt("NETCLUS_K", 5));
  const double tau = util::GetEnvDouble("NETCLUS_TAU_M", 800.0);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const index::MultiIndex index = bench::BuildIndex(d);

  const bench::NetClusRun exact =
      bench::RunNetClus(d, index, k, tau, psi, /*use_fm=*/false);

  util::Table table({"f", "NetClus_utility", "FM_utility", "rel_error_%",
                     "NetClus_solve_ms", "FM_solve_ms", "speedup"});
  for (const uint32_t f : {1u, 2u, 4u, 10u, 20u, 30u, 40u, 50u, 100u}) {
    const bench::NetClusRun fm =
        bench::RunNetClus(d, index, k, tau, psi, /*use_fm=*/true, f);
    const double rel_error =
        exact.utility <= 0.0 ? 0.0
                             : 100.0 * (exact.utility - fm.utility) / exact.utility;
    table.Row()
        .Cell(static_cast<uint64_t>(f))
        .Cell(exact.utility, 1)
        .Cell(fm.utility, 1)
        .Cell(rel_error, 2)
        .Cell(exact.solve_seconds * 1e3, 2)
        .Cell(fm.solve_seconds * 1e3, 2)
        .Cell(fm.solve_seconds > 0 ? exact.solve_seconds / fm.solve_seconds : 0.0,
              2);
  }
  table.PrintText(std::cout);
  return 0;
}
