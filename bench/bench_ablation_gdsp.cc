// Ablation: Greedy-GDSP selection strategy — exact lazy greedy (Minoux)
// vs the paper's FM-sketch estimation (Sec. 4.1.2, Theorem 5).
// Expected: similar cluster counts (FM within the (1+eps) factor), with
// the exact strategy typically faster because it avoids per-node sketch
// construction.
#include "bench_common.h"

#include "netclus/gdsp.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Ablation", "Greedy-GDSP: lazy-exact vs FM-sketch strategy",
      "cluster counts within the (1+eps) factor of each other; build time "
      "comparison");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.15);
  util::Table table({"R_m", "strategy", "clusters", "build_s"});
  for (const double radius : {100.0, 200.0, 400.0, 800.0}) {
    for (const auto strategy :
         {index::GdspStrategy::kLazyExact, index::GdspStrategy::kFmSketch}) {
      index::GdspConfig config;
      config.radius_m = radius;
      config.strategy = strategy;
      config.fm_copies = 30;
      const index::GdspResult result = GreedyGdsp(*d.network, config);
      table.Row()
          .Cell(radius, 0)
          .Cell(strategy == index::GdspStrategy::kLazyExact ? "lazy-exact"
                                                            : "fm-sketch")
          .Cell(static_cast<uint64_t>(result.centers.size()))
          .Cell(result.build_seconds, 2);
    }
  }
  table.PrintText(std::cout);
  return 0;
}
