// Shortest-path backend comparison: covering-set builds, batched
// one-to-many searches, and point-to-point latency under each spf backend
// (dijkstra / bidir / ch) on the synthetic datasets.
//
// The headline number is the covering-set build — the dominant cost of the
// INCG baseline (Sec. 8.6) and of every τ sweep: CH answers each site's
// round-trip ball with one small upward search plus a linear PHAST sweep,
// so on large radii it beats the heap-driven Dijkstra ball by a growing
// factor (>= 2x expected on the largest dataset at the default τ, plus a
// one-off preprocessing cost amortized over all sites).
//
// Rows also land in BENCH_spf.json (override path with NETCLUS_BENCH_JSON)
// so CI tracks the per-backend perf trajectory.
#include <cmath>
#include <fstream>

#include "bench_common.h"

#include "graph/generators.h"
#include "graph/spf/distance_backend.h"
#include "traj/trip_generator.h"
#include "util/rng.h"

namespace {

using namespace netclus;
namespace spf = graph::spf;

// The largest dataset: a network-heavy shape (big grid, moderate corpus)
// matching the paper's full-size networks, where covering-set builds are
// bound by the per-site searches rather than by posting-list scatter.
// This is the regime the CH backend exists for and the row the >= 2x
// acceptance bar reads.
data::Dataset MakeBeijingXl(double base_scale) {
  const double scale = base_scale * util::DatasetScale();
  graph::GridCityConfig grid;
  grid.rows = std::max<uint32_t>(
      24, static_cast<uint32_t>(std::lround(84.0 * std::sqrt(scale))));
  grid.cols = grid.rows;
  grid.block_m = 150.0;
  grid.one_way_fraction = 0.25;
  grid.edge_drop_fraction = 0.05;
  grid.seed = 1031;
  data::Dataset d;
  d.name = "beijing-xl";
  d.network = std::make_unique<graph::RoadNetwork>(graph::GenerateGridCity(grid));
  d.store = std::make_unique<traj::TrajectoryStore>(d.network.get());
  traj::TripGeneratorConfig trips;
  // Corpus scales with the grid SIDE, not the node count: route length in
  // nodes grows with the side too, so posting density per node — the
  // backend-independent share of a covering build — stays flat and the
  // dataset keeps its search-bound shape at every NETCLUS_SCALE.
  trips.num_trajectories = std::max<uint32_t>(
      200, static_cast<uint32_t>(std::lround(1000.0 * std::sqrt(scale))));
  trips.min_od_distance_m = 2000.0;
  trips.seed = 1033;
  traj::GenerateTrips(trips, d.store.get());
  d.sites = tops::SiteSet::AllNodes(*d.network);
  return d;
}

struct CellResult {
  std::string dataset;
  std::string backend;
  double tau_m = 0.0;
  double preprocess_s = 0.0;       // backend build (CH contraction)
  uint64_t backend_bytes = 0;      // preprocessed structure footprint
  double cover_build_s = 0.0;      // CoverageIndex::Build wall time
  uint64_t cover_entries = 0;
  double p2p_us = 0.0;             // mean point-to-point latency
  double speedup_vs_dijkstra = 0.0;
};

double MeanPointToPointMicros(const spf::DistanceBackend& backend,
                              const graph::RoadNetwork& net, size_t queries) {
  const auto query = backend.MakeQuery();
  util::Rng rng(4242);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  pairs.reserve(queries);
  for (size_t i = 0; i < queries; ++i) {
    pairs.emplace_back(
        static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes())),
        static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes())));
  }
  util::WallTimer timer;
  double checksum = 0.0;
  for (const auto& [s, t] : pairs) {
    const double d = query->PointToPoint(s, t);
    if (d != graph::kInfDistance) checksum += d;
  }
  const double micros = timer.Seconds() * 1e6 / static_cast<double>(queries);
  // Keep the loop observable.
  if (checksum < 0.0) std::printf("impossible checksum\n");
  return micros;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "SPF backends", "Distance-backend comparison (dijkstra / bidir / ch)",
      "CH covering-set builds >= 2x faster than plain Dijkstra on the "
      "largest dataset; bidir/CH win point-to-point");

  const double tau_m = util::GetEnvDouble("NETCLUS_SPF_TAU_M", 8000.0);
  const size_t p2p_queries =
      static_cast<size_t>(util::GetEnvInt("NETCLUS_SPF_P2P", 400));

  // Ordered small to large; the acceptance criterion reads the last one.
  const std::vector<std::pair<std::string, double>> dataset_specs = {
      {"newyork", 0.15}, {"atlanta", 0.15}, {"beijing-lite", 0.30},
      {"beijing-xl", 1.0}};

  std::vector<CellResult> cells;
  util::Table table({"dataset", "backend", "tau_km", "preprocess_s",
                     "backend_mem", "cover_build_s", "cover_entries", "p2p_us",
                     "speedup_vs_dijkstra"});
  for (const auto& [name, base_scale] : dataset_specs) {
    const data::Dataset d = name == "beijing-xl"
                                ? MakeBeijingXl(base_scale)
                                : bench::MakeDataset(name, base_scale);
    std::printf("\n%s: %zu nodes, %zu trajectories, %zu sites\n",
                name.c_str(), d.num_nodes(), d.num_trajectories(),
                d.num_sites());
    double dijkstra_cover_s = 0.0;
    for (const spf::BackendKind kind :
         {spf::BackendKind::kDijkstra, spf::BackendKind::kBidirectional,
          spf::BackendKind::kContractionHierarchies}) {
      CellResult cell;
      cell.dataset = name;
      cell.backend = spf::BackendName(kind);
      cell.tau_m = tau_m;

      util::WallTimer preprocess;
      const std::shared_ptr<const spf::DistanceBackend> backend =
          spf::MakeBackend(kind, d.network.get());
      cell.preprocess_s = preprocess.Seconds();
      cell.backend_bytes = backend->MemoryBytes();

      tops::CoverageConfig config;
      config.tau_m = tau_m;
      config.backend = backend.get();
      util::WallTimer cover_timer;
      const tops::CoverageIndex coverage =
          tops::CoverageIndex::Build(*d.store, d.sites, config);
      cell.cover_build_s = cover_timer.Seconds();
      cell.cover_entries = coverage.stats().cover_entries;

      cell.p2p_us = MeanPointToPointMicros(*backend, *d.network, p2p_queries);

      if (kind == spf::BackendKind::kDijkstra) {
        dijkstra_cover_s = cell.cover_build_s;
      }
      cell.speedup_vs_dijkstra =
          cell.cover_build_s > 0.0 ? dijkstra_cover_s / cell.cover_build_s
                                   : 0.0;
      cells.push_back(cell);
      table.Row()
          .Cell(cell.dataset)
          .Cell(cell.backend)
          .Cell(cell.tau_m / 1000.0, 1)
          .Cell(cell.preprocess_s, 3)
          .Cell(util::HumanBytes(cell.backend_bytes))
          .Cell(cell.cover_build_s, 3)
          .Cell(cell.cover_entries)
          .Cell(cell.p2p_us, 2)
          .Cell(util::StrFormat("%.2fx", cell.speedup_vs_dijkstra));
    }
  }
  std::printf("\n");
  table.PrintText(std::cout);

  const std::string json_path = bench::JsonOutPath(argc, argv, "BENCH_spf.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"spf_backends\",\n  \"tau_m\": " << tau_m
       << ",\n  \"rows\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    json << "    {\"dataset\": \"" << c.dataset << "\", \"backend\": \""
         << c.backend << "\", \"tau_m\": " << c.tau_m
         << ", \"preprocess_s\": " << c.preprocess_s
         << ", \"backend_bytes\": " << c.backend_bytes
         << ", \"cover_build_s\": " << c.cover_build_s
         << ", \"cover_entries\": " << c.cover_entries
         << ", \"p2p_us\": " << c.p2p_us
         << ", \"speedup_vs_dijkstra\": " << c.speedup_vs_dijkstra << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());
  return json.good() ? 0 : 1;
}
