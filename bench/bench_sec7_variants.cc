// Sec. 7.4/7.5 variants the paper defines but does not plot:
//  * TOPS3 — minimize user inconvenience (normalized negative-distance ψ,
//    effectively τ = ∞): every trajectory gets served, the objective
//    minimizes total deviation;
//  * TOPS4 — smallest site set capturing a β market share (set-cover
//    greedy, bound 1 + ln n);
//  * Sec. 7.5 — the combined cost+capacity extension.
#include "bench_common.h"

#include "tops/variants.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Sec. 7 variants", "TOPS3, TOPS4, and the combined cost+capacity TOPS",
      "TOPS3 deviation falls as k grows; TOPS4 site count grows "
      "superlinearly with beta; combined extension respects both limits");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.15);
  const size_t m = d.num_trajectories();
  const geo::BBox bounds = d.network->Bounds();
  const double dmax = 2.0 * (bounds.Width() + bounds.Height());

  std::printf("\nTOPS3: minimize expected deviation (k sweep)\n");
  {
    // tau = "infinity": anything reachable counts; the normalized score
    // (dmax - d)/dmax makes maximization equivalent to minimizing total
    // deviation (see preference.h).
    tops::CoverageConfig cc;
    cc.tau_m = dmax;
    const tops::CoverageIndex cov =
        tops::CoverageIndex::Build(*d.store, d.sites, cc);
    const tops::PreferenceFunction psi =
        tops::PreferenceFunction::NegativeDistance(dmax);
    util::Table table({"k", "mean_deviation_m", "served_%"});
    for (const uint32_t k : {1u, 2u, 5u, 10u, 20u}) {
      tops::GreedyConfig gc;
      gc.k = k;
      const tops::Selection sel = IncGreedy(cov, psi, gc);
      // Score s = (dmax - dev)/dmax  =>  dev = dmax (1 - s). Trajectories
      // with score 0 are unreachable/maximal-deviation.
      double total_dev = 0.0;
      size_t served = 0;
      std::vector<double> best(cov.num_trajectories(), 0.0);
      for (tops::SiteId s : sel.sites) {
        for (const tops::CoverEntry& e : cov.TC(s)) {
          best[e.id] = std::max(best[e.id], psi.Score(e.dr_m, cc.tau_m));
        }
      }
      for (double b : best) {
        if (b > 0.0) {
          ++served;
          total_dev += dmax * (1.0 - b);
        }
      }
      table.Row()
          .Cell(static_cast<uint64_t>(k))
          .Cell(served == 0 ? 0.0 : total_dev / served, 0)
          .Cell(100.0 * served / m, 1);
    }
    table.PrintText(std::cout);
  }

  std::printf("\nTOPS4: minimum sites for a beta market share (tau = 0.8)\n");
  {
    tops::CoverageConfig cc;
    cc.tau_m = 800.0;
    const tops::CoverageIndex cov =
        tops::CoverageIndex::Build(*d.store, d.sites, cc);
    util::Table table({"beta", "sites_needed", "covered_%", "reached"});
    for (const double beta : {0.2, 0.4, 0.6, 0.8, 0.95}) {
      tops::MarketShareConfig config;
      config.beta = beta;
      const tops::MarketShareResult got = MarketShareGreedy(cov, config);
      table.Row()
          .Cell(beta, 2)
          .Cell(static_cast<uint64_t>(got.selection.sites.size()))
          .Cell(100.0 * got.covered_fraction, 1)
          .Cell(got.reached_target ? "yes" : "no");
    }
    table.PrintText(std::cout);
  }

  std::printf("\nSec. 7.5: combined cost + capacity (budget sweep, cap = 3%% of m)\n");
  {
    tops::CoverageConfig cc;
    cc.tau_m = 800.0;
    const tops::CoverageIndex cov =
        tops::CoverageIndex::Build(*d.store, d.sites, cc);
    const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
    tops::CostCapacityConfig config;
    config.site_costs = tops::DrawNormalCosts(d.sites.size(), 1.0, 0.4, 0.1, 11);
    config.site_capacities.assign(d.sites.size(), 0.03 * static_cast<double>(m));
    util::Table table({"budget", "sites", "spent", "served_%"});
    for (const double budget : {2.0, 4.0, 8.0, 16.0}) {
      config.budget = budget;
      const tops::CostResult got = CostCapacityGreedy(cov, psi, config);
      table.Row()
          .Cell(budget, 1)
          .Cell(static_cast<uint64_t>(got.selection.sites.size()))
          .Cell(got.total_cost, 2)
          .Cell(bench::Percent(got.selection.utility, m), 1);
    }
    table.PrintText(std::cout);
  }
  return 0;
}
