// Table 10: dynamic-update cost (Sec. 6).
// Paper: adding trajectories costs more than adding candidate sites (a
// trajectory touches many clusters across all instances; a site touches
// one cluster per instance); both scale roughly linearly with batch size.
#include "bench_common.h"

#include "traj/trip_generator.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Table 10", "Index update cost (batched additions)",
      "trajectory additions cost more than site additions; both roughly "
      "linear in the batch size");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  index::MultiIndex index = bench::BuildIndex(d);

  // Pre-generate the update stream (generation excluded from timings).
  // Batches consume 1+2+3+4+5 units of *fresh* trajectories, so the
  // stream must hold 15 units; the generator can come up short (rejected
  // OD pairs), so each batch clamps to what is actually left and reports
  // the count it really consumed.
  const uint32_t unit = static_cast<uint32_t>(
      util::GetEnvInt("NETCLUS_UPDATE_UNIT", 1000));
  traj::TripGeneratorConfig trips;
  trips.num_trajectories = unit * 15;
  trips.num_hotspots = 12;
  trips.seed = 4242;
  const std::vector<traj::TrajId> new_trajs = GenerateTrips(trips, d.store.get());

  util::Rng rng(4343);
  util::Table table({"batch", "add_trajectories_s", "us_per_add_traj",
                     "add_sites_s", "us_per_add_site",
                     "remove_trajectories_s", "us_per_remove"});
  size_t consumed = 0;  // cursor into new_trajs; never rewound, so every
                        // batch applies trajectories the index has not seen
  for (uint32_t batch = 1; batch <= 5; ++batch) {
    const uint32_t requested = unit * batch;
    const uint32_t count = static_cast<uint32_t>(
        std::min<size_t>(requested, new_trajs.size() - consumed));
    if (count < requested) {
      NC_LOG_WARNING << "update stream short: batch " << batch << " gets "
                     << count << " of " << requested << " trajectories";
    }

    // Trajectory additions.
    std::vector<traj::TrajId> ids;
    ids.reserve(count);
    util::WallTimer add_traj_timer;
    for (uint32_t i = 0; i < count; ++i) {
      index.AddTrajectory(*d.store, new_trajs[consumed + i]);
      ids.push_back(new_trajs[consumed + i]);
    }
    const double add_traj_s = add_traj_timer.Seconds();
    consumed += count;

    // Site additions (at random nodes; duplicates collapse in the set).
    util::WallTimer add_site_timer;
    for (uint32_t i = 0; i < count; ++i) {
      const auto node = static_cast<graph::NodeId>(
          rng.UniformInt(d.network->num_nodes()));
      const tops::SiteId s = d.sites.Add(node);
      index.AddSite(*d.store, d.sites, s);
    }
    const double add_site_s = add_site_timer.Seconds();

    // Trajectory removals (undo this batch, keeping the index consistent
    // for the next round; the consumed cursor stays advanced, so the next
    // batch still draws fresh ids).
    util::WallTimer remove_timer;
    for (traj::TrajId t : ids) {
      index.RemoveTrajectory(t);
      d.store->Remove(t);
    }
    const double remove_s = remove_timer.Seconds();

    const double per_op = count > 0 ? 1e6 / static_cast<double>(count) : 0.0;
    table.Row()
        .Cell(static_cast<uint64_t>(count))
        .Cell(add_traj_s, 3)
        .Cell(add_traj_s * per_op, 1)
        .Cell(add_site_s, 3)
        .Cell(add_site_s * per_op, 1)
        .Cell(remove_s, 3)
        .Cell(remove_s * per_op, 1);
  }
  table.PrintText(std::cout);
  return 0;
}
