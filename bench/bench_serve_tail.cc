// Tail latency and sustained throughput of serving API v2 (src/serve)
// under a mixed read/update workload with zipf-skewed query keys.
//
// Two modes per cell, same engine, same query stream:
//  * blocking — the v1 shim: each reader thread calls Submit() and waits
//    for the answer before issuing the next query. Every snapshot publish
//    invalidates the result/cover caches at the new version, so readers
//    repeatedly stall behind fresh cover builds.
//  * async — SubmitAsync() with a bounded in-flight window per reader,
//    priority classes, and StalenessPolicy::AllowStaleVersion: under
//    backpressure the scheduler sheds cover *builds* and serves
//    stale-but-versioned answers from the caches, so cache-hit traffic
//    never queues behind builds.
//
// Reported per cell: completed (kOk) queries, wall time, QPS, latency
// p50/p95/p99/p999, stale-serve share, and shed rate. The summary line
// prints the async/blocking QPS speedup at the widest mixed cell.
//
// paper_shape: at 8 readers with updates flowing, async sustains >= 5x
// the blocking QPS because stale-tolerant requests ride the caches
// instead of re-paying a cover build after every snapshot publish; shed
// and stale responses are always flagged, never silently wrong.
//
// Knobs: NETCLUS_SERVE_UPDATE_KIND=traj|site picks what the update
// stream mutates (site publishes leave most partitions clean, so
// delta-aware carryover keeps the caches warm); NETCLUS_CARRYOVER=0|1
// pins carryover off/on (the CI serve leg runs both values). Besides the
// stdout table, rows are written as JSON to BENCH_serve_tail.json
// (override with NETCLUS_BENCH_JSON) so CI can track the tail-latency
// trajectory.
#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "serve/server.h"
#include "traj/trip_generator.h"

namespace {

using namespace netclus;

// Zipf(s) over ranks [0, n): precomputed CDF + binary search. Rank 0 is
// the hottest key; with s ~= 1.1 a handful of specs dominate the stream,
// which is what makes result/cover caching (and stale serving) matter.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  size_t Sample(util::Rng& rng) const {
    const double u = rng.Uniform();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// Bounded in-flight window for one async reader: Acquire before each
// SubmitAsync, Release from the completion callback, Drain at the end.
class InFlightWindow {
 public:
  explicit InFlightWindow(size_t limit) : limit_(limit) {}

  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return in_flight_ < limit_; });
    ++in_flight_;
  }

  void Release() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    cv_.notify_all();
  }

  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return in_flight_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const size_t limit_;
  size_t in_flight_ = 0;
};

struct CellResult {
  std::string mode;
  uint32_t readers = 0;
  uint32_t update_batch = 0;
  int carryover = 1;
  uint64_t ok = 0;
  uint64_t stale = 0;
  uint64_t shed = 0;  // kOverloaded + kDeadlineExceeded + stale-served
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0;
  double stale_rate = 0.0;
  double shed_rate = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t carried = 0;  // cache entries re-keyed across publishes
  uint64_t snapshots = 0;
};

CellResult RunCell(const Engine& engine,
                   const std::vector<std::vector<graph::NodeId>>& update_pool,
                   const std::vector<graph::NodeId>& site_pool,
                   const std::string& update_kind, bool async,
                   uint32_t readers, uint32_t update_batch, size_t queries,
                   uint32_t publish_ms, uint64_t stale_lag, int carryover) {
  serve::ServerOptions options;
  options.updates.max_batch = 64;
  options.carryover = carryover;
  auto server = engine.Serve(options);

  // 64 distinct specs, zipf-ranked: rank r maps to a fixed (k, τ) pair so
  // the hot set is stable across the run and across modes.
  constexpr size_t kSpecPool = 64;
  auto spec_for = [](size_t rank) {
    Engine::QuerySpec spec;
    spec.k = 2 + static_cast<uint32_t>(rank % 5);
    spec.tau_m = 500.0 + 60.0 * static_cast<double>(rank % 32);
    return spec;
  };
  const ZipfSampler zipf(kSpecPool, 1.1);

  std::atomic<bool> readers_done{false};
  std::atomic<uint64_t> ok{0}, stale{0}, shed{0};
  util::WallTimer timer;

  std::thread writer;
  if (update_batch > 0 && update_kind == "traj") {
    writer = std::thread([&] {
      size_t cursor = 0;
      while (!readers_done.load(std::memory_order_acquire)) {
        std::vector<traj::TrajId> added;
        for (uint32_t i = 0; i < update_batch; ++i) {
          const auto& path = update_pool[cursor++ % update_pool.size()];
          const serve::UpdateTicket t = server->MutateAddTrajectory(path);
          if (t.accepted) added.push_back(t.traj);
        }
        if (!added.empty()) server->MutateRemoveTrajectory(added.front());
        server->Flush();  // publish: fresh answers now need new covers
        // Bounded publish rate: an unpaced Flush loop on a small box is
        // a version-churn microbenchmark, not a serving workload.
        std::this_thread::sleep_for(std::chrono::milliseconds(publish_ms));
      }
    });
  } else if (update_batch > 0 && update_kind == "site") {
    // Site-add publishes leave most (instance, τ) partitions untouched:
    // the cell where delta-aware carryover keeps stale-serving traffic on
    // warm caches instead of cold-starting at every publish.
    writer = std::thread([&] {
      size_t cursor = 0;
      while (!readers_done.load(std::memory_order_acquire) &&
             cursor < site_pool.size()) {
        for (uint32_t i = 0; i < update_batch && cursor < site_pool.size();
             ++i) {
          server->MutateAddSite(site_pool[cursor++]);
        }
        server->Flush();
        std::this_thread::sleep_for(std::chrono::milliseconds(publish_ms));
      }
    });
  }

  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (uint32_t r = 0; r < readers; ++r) {
    const size_t per_reader = queries / readers + (r < queries % readers);
    pool.emplace_back([&, r, per_reader] {
      util::Rng rng(0xbeef + r);
      if (!async) {
        for (size_t q = 0; q < per_reader; ++q) {
          const serve::ServeResult res =
              server->Submit(spec_for(zipf.Sample(rng)));
          if (res.status == serve::StatusCode::kOk) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else {
            shed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        return;
      }
      InFlightWindow window(64);
      for (size_t q = 0; q < per_reader; ++q) {
        serve::Request request;
        request.spec = spec_for(zipf.Sample(rng));
        // Hot interactive traffic tolerates a few versions of lag; a
        // slice of the stream insists on fresh answers so cover builds
        // keep flowing through the heavy lane.
        if (q % 8 == 0) {
          request.priority = serve::Priority::kNormal;
          request.staleness = serve::StalenessPolicy::Fresh();
        } else {
          request.priority = serve::Priority::kInteractive;
          request.staleness = serve::StalenessPolicy::AllowStaleVersion(stale_lag);
        }
        window.Acquire();
        server->SubmitAsync(std::move(request), [&](serve::Response res) {
          if (res.status == serve::StatusCode::kOk) {
            ok.fetch_add(1, std::memory_order_relaxed);
            if (res.stale) stale.fetch_add(1, std::memory_order_relaxed);
          }
          if (res.shed) shed.fetch_add(1, std::memory_order_relaxed);
          window.Release();
        });
      }
      window.Drain();
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall = timer.Seconds();
  readers_done.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();
  server->Shutdown();

  const serve::ServerStats stats = server->stats();
  CellResult cell;
  cell.mode = async ? "async" : "blocking";
  cell.readers = readers;
  cell.update_batch = update_batch;
  cell.carryover = carryover;
  cell.ok = ok.load();
  cell.stale = stale.load();
  cell.shed = shed.load();
  cell.wall_s = wall;
  cell.qps = wall > 0.0 ? static_cast<double>(cell.ok) / wall : 0.0;
  cell.p50_ms = stats.latency_p50_ms;
  cell.p95_ms = stats.latency_p95_ms;
  cell.p99_ms = stats.latency_p99_ms;
  cell.p999_ms = stats.latency_p999_ms;
  cell.stale_rate = queries > 0
                        ? static_cast<double>(cell.stale) /
                              static_cast<double>(queries)
                        : 0.0;
  cell.shed_rate = queries > 0 ? static_cast<double>(cell.shed) /
                                     static_cast<double>(queries)
                               : 0.0;
  const uint64_t lookups = stats.cache.hits + stats.cache.misses;
  cell.cache_hit_rate =
      lookups > 0 ? static_cast<double>(stats.cache.hits) / lookups : 0.0;
  cell.carried = stats.cache.carried + stats.cover_cache.carried;
  cell.snapshots = stats.updates.batches_published;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netclus;
  bench::PrintHeader(
      "ServeTail",
      "Tail latency under mixed read/update load, blocking vs async "
      "(src/serve)",
      "async sustains >= 5x blocking QPS at 8 readers with updates "
      "flowing: stale-tolerant requests ride the caches instead of "
      "re-paying cover builds after every publish");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.15);

  graph::RoadNetwork network = *d.network;
  // Sample ~70% of nodes as the initial candidate pool (the dataset's
  // default is all-nodes, which would leave the site update stream no
  // site-less node to claim).
  tops::SiteSet sites =
      tops::SiteSet::SampleNodes(network, (network.num_nodes() * 7) / 10, 42);
  Engine::Options engine_options;
  engine_options.index.tau_min_m = 400.0;
  engine_options.index.tau_max_m = 6000.0;
  Engine engine(std::move(network), std::move(sites), engine_options);
  for (traj::TrajId t = 0; t < d.store->total_count(); ++t) {
    if (d.store->is_alive(t)) {
      engine.AddTrajectory(d.store->trajectory(t).nodes());
    }
  }
  engine.BuildIndex();
  std::printf("corpus: %zu trajectories, %zu sites, %zu index instances\n",
              engine.store().live_count(), engine.sites().size(),
              engine.index().num_instances());

  // Pre-generated update stream (excluded from timings).
  std::vector<std::vector<graph::NodeId>> update_pool;
  {
    util::Rng rng(717);
    while (update_pool.size() < 256) {
      const auto src = static_cast<graph::NodeId>(
          rng.UniformInt(engine.network().num_nodes()));
      const auto dst = static_cast<graph::NodeId>(
          rng.UniformInt(engine.network().num_nodes()));
      if (src == dst) continue;
      auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3,
                                       9000 + update_pool.size());
      if (path.size() >= 2) update_pool.push_back(std::move(path));
    }
  }
  // Site-less nodes the site update stream can claim (one per AddSite).
  std::vector<graph::NodeId> site_pool;
  for (graph::NodeId node = 0;
       node < static_cast<graph::NodeId>(engine.network().num_nodes());
       ++node) {
    if (engine.sites().SiteAtNode(node) == tops::kInvalidSite) {
      site_pool.push_back(node);
    }
  }

  const size_t queries = static_cast<size_t>(
      util::GetEnvInt("NETCLUS_SERVE_QUERIES", 512));
  const uint32_t update_batch = static_cast<uint32_t>(
      util::GetEnvInt("NETCLUS_SERVE_UPDATE_BATCH", 16));
  const uint32_t publish_ms = static_cast<uint32_t>(
      util::GetEnvInt("NETCLUS_SERVE_PUBLISH_MS", 25));
  // How many snapshot versions the lag-tolerant slice accepts. At the
  // paced publish rate this is a window of a few seconds of staleness.
  const uint64_t stale_lag = static_cast<uint64_t>(
      util::GetEnvInt("NETCLUS_SERVE_STALE_LAG", 64));
  // What the update stream mutates: "traj" (default — every publish
  // dirties everything) or "site" (most partitions stay clean, the
  // carryover showcase).
  const std::string update_kind =
      util::GetEnvString("NETCLUS_SERVE_UPDATE_KIND", "traj");
  // Delta-aware cache carryover: NETCLUS_CARRYOVER=0|1 pins it (the CI
  // serve leg runs both values); unset keeps the server default (on).
  const int carryover = static_cast<int>(
      util::GetEnvInt("NETCLUS_CARRYOVER", -1));
  const int carryover_effective = carryover < 0 ? 1 : (carryover != 0);

  std::vector<CellResult> cells;
  util::Table table({"mode", "readers", "upd_kind", "carryover", "ok",
                     "stale", "shed", "wall_s", "qps", "p50_ms", "p95_ms",
                     "p99_ms", "p999_ms", "shed_rate", "cache_hit", "carried",
                     "snapshots"});
  for (const uint32_t readers : {2u, 8u}) {
    for (const bool async : {false, true}) {
      const CellResult cell =
          RunCell(engine, update_pool, site_pool, update_kind, async, readers,
                  update_batch, queries, publish_ms, stale_lag, carryover);
      cells.push_back(cell);
      table.Row()
          .Cell(cell.mode)
          .Cell(static_cast<uint64_t>(cell.readers))
          .Cell(update_kind)
          .Cell(static_cast<uint64_t>(carryover_effective))
          .Cell(cell.ok)
          .Cell(cell.stale)
          .Cell(cell.shed)
          .Cell(cell.wall_s, 3)
          .Cell(cell.qps, 1)
          .Cell(cell.p50_ms, 2)
          .Cell(cell.p95_ms, 2)
          .Cell(cell.p99_ms, 2)
          .Cell(cell.p999_ms, 2)
          .Cell(cell.shed_rate, 2)
          .Cell(cell.cache_hit_rate, 2)
          .Cell(cell.carried)
          .Cell(cell.snapshots);
    }
  }
  table.PrintText(std::cout);

  // Headline: async vs blocking at the widest mixed cell (8 readers).
  double blocking_qps = 0.0, async_qps = 0.0;
  for (const CellResult& c : cells) {
    if (c.readers != 8) continue;
    (c.mode == "async" ? async_qps : blocking_qps) = c.qps;
  }
  if (blocking_qps > 0.0) {
    std::printf("\nasync/blocking QPS at 8 readers: %.1fx\n",
                async_qps / blocking_qps);
  }

  const std::string json_path = bench::JsonOutPath(argc, argv, "BENCH_serve_tail.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"serve_tail\",\n  \"rows\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    json << "    {\"mode\": \"" << c.mode << "\", \"readers\": " << c.readers
         << ", \"update_kind\": \"" << update_kind << "\""
         << ", \"carryover\": " << carryover_effective
         << ", \"update_batch\": " << c.update_batch << ", \"ok\": " << c.ok
         << ", \"stale\": " << c.stale << ", \"shed\": " << c.shed
         << ", \"wall_s\": " << c.wall_s << ", \"qps\": " << c.qps
         << ", \"p50_ms\": " << c.p50_ms << ", \"p95_ms\": " << c.p95_ms
         << ", \"p99_ms\": " << c.p99_ms << ", \"p999_ms\": " << c.p999_ms
         << ", \"stale_rate\": " << c.stale_rate
         << ", \"shed_rate\": " << c.shed_rate
         << ", \"cache_hit_rate\": " << c.cache_hit_rate
         << ", \"carried\": " << c.carried
         << ", \"snapshots\": " << c.snapshots << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return json.good() ? 0 : 1;
}
