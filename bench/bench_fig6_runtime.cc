// Fig. 6: running-time performance vs k and vs τ.
// Paper: NetClus/FMNetClus are up to ~36x faster than INCG/FMG (whose cost
// is dominated by covering-set construction); INCG/FMG cannot run beyond
// the memory cutoff; NetClus gets *faster* as τ grows (coarser instance),
// and times look nearly flat in k.
#include "bench_common.h"

#include "graph/spf/distance_backend.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Fig. 6", "Running time vs k (a) and vs tau (b)",
      "NetClus an order of magnitude faster than INCG; INCG OOM beyond "
      "cutoff; NetClus runtime falls as tau grows; the CH backend cuts "
      "INCG covering-set time further");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const index::MultiIndex index = bench::BuildIndex(d);
  // Per-backend column: the INCG baseline re-run on a CH distance oracle
  // (one preprocessing pass amortized over the whole sweep).
  const std::shared_ptr<const graph::spf::DistanceBackend> ch =
      graph::spf::MakeBackend(graph::spf::BackendKind::kContractionHierarchies,
                              d.network.get());
  const uint64_t budget_bytes = static_cast<uint64_t>(
      util::GetEnvInt("NETCLUS_MEM_BUDGET_MB", 16)) << 20;
  auto fmt_exact = [](const bench::ExactRun& run) {
    return run.oom ? std::string("OOM")
                   : util::StrFormat("%.0f", run.total_seconds * 1e3);
  };

  std::printf("\n(a) running time (ms) vs k at tau = 0.8 km\n");
  util::Table by_k({"k", "INCG_ms", "INCG_ch_ms", "FMG_ms", "NetClus_ms",
                    "FMNetClus_ms", "speedup_NetClus_vs_INCG"});
  for (const uint32_t k : {1u, 5u, 10u, 15u, 20u, 25u}) {
    const bench::ExactRun incg =
        bench::RunExactGreedy(d, k, 800.0, psi, false, 30, budget_bytes);
    const bench::ExactRun incg_ch = bench::RunExactGreedy(
        d, k, 800.0, psi, false, 30, budget_bytes, ch.get());
    const bench::ExactRun fmg =
        bench::RunExactGreedy(d, k, 800.0, psi, true, 30, budget_bytes);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, k, 800.0, psi, false);
    const bench::NetClusRun fm_netclus =
        bench::RunNetClus(d, index, k, 800.0, psi, true);
    by_k.Row()
        .Cell(static_cast<uint64_t>(k))
        .Cell(fmt_exact(incg))
        .Cell(fmt_exact(incg_ch))
        .Cell(fmt_exact(fmg))
        .Cell(netclus.total_seconds * 1e3, 2)
        .Cell(fm_netclus.total_seconds * 1e3, 2)
        .Cell(incg.oom || netclus.total_seconds <= 0
                  ? std::string("-")
                  : util::StrFormat("%.1fx", incg.total_seconds /
                                                 netclus.total_seconds));
  }
  by_k.PrintText(std::cout);

  std::printf("\n(b) running time (ms) vs tau at k = 5\n");
  util::Table by_tau({"tau_km", "INCG_ms", "INCG_ch_ms", "FMG_ms",
                      "NetClus_ms", "FMNetClus_ms",
                      "speedup_NetClus_vs_INCG"});
  for (const double tau : {100.0, 200.0, 400.0, 800.0, 1200.0, 1600.0, 2400.0,
                           4000.0, 8000.0}) {
    const bench::ExactRun incg =
        bench::RunExactGreedy(d, 5, tau, psi, false, 30, budget_bytes);
    const bench::ExactRun incg_ch = bench::RunExactGreedy(
        d, 5, tau, psi, false, 30, budget_bytes, ch.get());
    const bench::ExactRun fmg =
        bench::RunExactGreedy(d, 5, tau, psi, true, 30, budget_bytes);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, 5, tau, psi, false);
    const bench::NetClusRun fm_netclus =
        bench::RunNetClus(d, index, 5, tau, psi, true);
    by_tau.Row()
        .Cell(tau / 1000.0, 1)
        .Cell(fmt_exact(incg))
        .Cell(fmt_exact(incg_ch))
        .Cell(fmt_exact(fmg))
        .Cell(netclus.total_seconds * 1e3, 2)
        .Cell(fm_netclus.total_seconds * 1e3, 2)
        .Cell(incg.oom || netclus.total_seconds <= 0
                  ? std::string("-")
                  : util::StrFormat("%.1fx", incg.total_seconds /
                                                 netclus.total_seconds));
  }
  by_tau.PrintText(std::cout);
  return 0;
}
