// Fig. 4: comparison with the exact optimum on the small sample
// (Beijing-Small analogue): utility and running time vs k at τ = 0.8 km.
// Paper: all heuristics land within a few percent of OPT's utility while
// OPT's running time is orders of magnitude larger and impractical.
#include "bench_common.h"

#include "tops/optimal.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Fig. 4", "Comparison with optimal at tau = 0.8 km (Beijing-Small)",
      "INCG/FMG/NetClus/FMNetClus utilities within a few % of OPT; OPT "
      "runtime explodes with k");

  data::Dataset d = bench::MakeDataset("beijing-small", 1.0);
  const double tau = util::GetEnvDouble("NETCLUS_TAU_M", 800.0);
  const uint32_t k_max =
      static_cast<uint32_t>(util::GetEnvInt("NETCLUS_FIG4_KMAX", 15));
  const double opt_limit =
      util::GetEnvDouble("NETCLUS_OPT_TIME_LIMIT_S", 20.0);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();

  // Shared covering sets for OPT (small instance; cheap).
  tops::CoverageConfig cc;
  cc.tau_m = tau;
  const tops::CoverageIndex coverage =
      tops::CoverageIndex::Build(*d.store, d.sites, cc);
  const index::MultiIndex index = bench::BuildIndex(d, 0.75, 300.0, 4000.0);

  util::Table table({"k", "OPT_%", "INCG_%", "FMG_%", "NetClus_%",
                     "FMNetClus_%", "OPT_s", "INCG_ms", "NetClus_ms",
                     "OPT_proven"});
  const size_t m = d.num_trajectories();
  for (uint32_t k = 1; k <= k_max; k += 2) {
    tops::OptimalConfig oc;
    oc.k = k;
    oc.time_limit_s = opt_limit;
    const tops::OptimalResult opt = SolveOptimal(coverage, psi, oc);

    const bench::ExactRun incg = bench::RunExactGreedy(d, k, tau, psi, false);
    const bench::ExactRun fmg = bench::RunExactGreedy(d, k, tau, psi, true);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, k, tau, psi, false);
    const bench::NetClusRun fm_netclus =
        bench::RunNetClus(d, index, k, tau, psi, true);

    table.Row()
        .Cell(static_cast<uint64_t>(k))
        .Cell(bench::Percent(opt.selection.utility, m), 1)
        .Cell(bench::Percent(incg.utility, m), 1)
        .Cell(bench::Percent(fmg.utility, m), 1)
        .Cell(bench::Percent(netclus.utility, m), 1)
        .Cell(bench::Percent(fm_netclus.utility, m), 1)
        .Cell(opt.selection.solve_seconds, 2)
        .Cell(incg.total_seconds * 1e3, 1)
        .Cell(netclus.total_seconds * 1e3, 2)
        .Cell(opt.proven_optimal ? "yes" : "timeout");
  }
  table.PrintText(std::cout);
  return 0;
}
