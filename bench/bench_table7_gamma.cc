// Table 7: variation across the index-resolution parameter γ.
// Paper: γ↑ ⇒ offline build time and index size shrink, quality error vs
// Inc-Greedy grows; γ = 0.75 is the chosen balance (< 5% error).
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Table 7", "Variation across resolution of index instances, gamma",
      "build time and index size fall as gamma grows; relative utility "
      "error vs Inc-Greedy rises; gamma=0.75 keeps error below ~5%");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  const uint32_t k = static_cast<uint32_t>(util::GetEnvInt("NETCLUS_K", 5));
  const double tau = util::GetEnvDouble("NETCLUS_TAU_M", 800.0);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();

  // Exact baseline once.
  const bench::ExactRun incg =
      bench::RunExactGreedy(d, k, tau, psi, /*use_fm=*/false);

  util::Table table({"gamma", "instances", "build_time_s", "index_size",
                     "rel_error_%_vs_INCG"});
  for (const double gamma : {0.25, 0.50, 0.75, 1.00}) {
    const index::MultiIndex index = bench::BuildIndex(d, gamma);
    const bench::NetClusRun run =
        bench::RunNetClus(d, index, k, tau, psi, /*use_fm=*/false);
    const double rel_error =
        incg.utility <= 0.0 ? 0.0
                            : 100.0 * (incg.utility - run.utility) / incg.utility;
    table.Row()
        .Cell(gamma, 2)
        .Cell(static_cast<uint64_t>(index.num_instances()))
        .Cell(index.build_seconds(), 2)
        .Cell(util::HumanBytes(index.MemoryBytes()))
        .Cell(rel_error, 2);
  }
  table.PrintText(std::cout);
  std::printf("(baseline INCG utility: %.0f of %zu trajectories)\n",
              incg.utility, d.num_trajectories());
  return 0;
}
