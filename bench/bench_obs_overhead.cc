// Overhead of the observability layer (src/obs) on the async serving
// path: the same zipf-skewed read workload as bench_serve_tail, run at
// trace sampling 0%, 1% (the production default), and 100%, each with
// the metrics registry live (it is always on — providers are polled only
// at export time, so its steady-state cost is the per-stage histogram
// observes).
//
// Reported per cell: QPS, p50/p99 latency, spans recorded, and the
// p99/QPS delta vs the untraced baseline. The budget in
// docs/observability.md is <= 2% p99 regression at 1% sampling.
//
// paper_shape: tracing at 1% sampling costs <= 2% p99 vs untraced;
// even 100% sampling stays single-digit percent because span capture is
// a handful of atomic stores into a preallocated ring.
//
// Rows land in BENCH_obs.json (override with --out / NETCLUS_BENCH_JSON).
#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "serve/server.h"

namespace {

using namespace netclus;

class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  size_t Sample(util::Rng& rng) const {
    const double u = rng.Uniform();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

class InFlightWindow {
 public:
  explicit InFlightWindow(size_t limit) : limit_(limit) {}

  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return in_flight_ < limit_; });
    ++in_flight_;
  }

  void Release() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    cv_.notify_all();
  }

  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return in_flight_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const size_t limit_;
  size_t in_flight_ = 0;
};

struct CellResult {
  double sample_rate = 0.0;
  uint64_t ok = 0;
  uint64_t spans = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0;
  double qps_delta_pct = 0.0;  // vs the sample_rate == 0 baseline
  double p99_delta_pct = 0.0;
};

CellResult RunCell(const Engine& engine, double sample_rate, uint32_t readers,
                   size_t queries) {
  serve::ServerOptions options;
  options.trace_sample = sample_rate;
  options.trace_seed = 42;  // deterministic sampling across cells
  auto server = engine.Serve(options);

  constexpr size_t kSpecPool = 64;
  auto spec_for = [](size_t rank) {
    Engine::QuerySpec spec;
    spec.k = 2 + static_cast<uint32_t>(rank % 5);
    spec.tau_m = 500.0 + 60.0 * static_cast<double>(rank % 32);
    return spec;
  };
  const ZipfSampler zipf(kSpecPool, 1.1);

  std::atomic<uint64_t> ok{0};
  util::WallTimer timer;
  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (uint32_t r = 0; r < readers; ++r) {
    const size_t per_reader = queries / readers + (r < queries % readers);
    pool.emplace_back([&, r, per_reader] {
      util::Rng rng(0xbeef + r);
      InFlightWindow window(64);
      for (size_t q = 0; q < per_reader; ++q) {
        serve::Request request;
        request.spec = spec_for(zipf.Sample(rng));
        request.priority = serve::Priority::kInteractive;
        request.staleness = serve::StalenessPolicy::AllowStaleVersion(64);
        window.Acquire();
        server->SubmitAsync(std::move(request), [&](serve::Response res) {
          if (res.status == serve::StatusCode::kOk) {
            ok.fetch_add(1, std::memory_order_relaxed);
          }
          window.Release();
        });
      }
      window.Drain();
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall = timer.Seconds();
  const uint64_t spans = server->tracer().recorded();
  server->Shutdown();

  const serve::ServerStats stats = server->stats();
  CellResult cell;
  cell.sample_rate = sample_rate;
  cell.ok = ok.load();
  cell.spans = spans;
  cell.wall_s = wall;
  cell.qps = wall > 0.0 ? static_cast<double>(cell.ok) / wall : 0.0;
  cell.p50_ms = stats.latency_p50_ms;
  cell.p99_ms = stats.latency_p99_ms;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netclus;
  bench::PrintHeader(
      "ObsOverhead",
      "Observability overhead on the async serving path (src/obs)",
      "tracing at 1% sampling costs <= 2% p99 vs untraced; even 100% "
      "sampling stays single-digit percent (span capture is atomic "
      "stores into a preallocated ring)");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.15);

  graph::RoadNetwork network = *d.network;
  tops::SiteSet sites = d.sites;
  Engine::Options engine_options;
  engine_options.index.tau_min_m = 400.0;
  engine_options.index.tau_max_m = 6000.0;
  Engine engine(std::move(network), std::move(sites), engine_options);
  for (traj::TrajId t = 0; t < d.store->total_count(); ++t) {
    if (d.store->is_alive(t)) {
      engine.AddTrajectory(d.store->trajectory(t).nodes());
    }
  }
  engine.BuildIndex();
  std::printf("corpus: %zu trajectories, %zu sites, %zu index instances\n",
              engine.store().live_count(), engine.sites().size(),
              engine.index().num_instances());

  const size_t queries = static_cast<size_t>(
      util::GetEnvInt("NETCLUS_SERVE_QUERIES", 2048));
  const uint32_t readers =
      static_cast<uint32_t>(util::GetEnvInt("NETCLUS_SERVE_READERS", 8));

  // Warm-up pass populates the caches so the measured cells compare the
  // steady cache-hit path — the one where per-request tracing cost could
  // actually show up (cover builds dwarf it otherwise).
  (void)RunCell(engine, 0.0, readers, queries / 4);

  std::vector<CellResult> cells;
  for (const double rate : {0.0, 0.01, 1.0}) {
    cells.push_back(RunCell(engine, rate, readers, queries));
  }
  const CellResult& base = cells.front();
  for (CellResult& c : cells) {
    if (base.qps > 0.0) {
      c.qps_delta_pct = 100.0 * (c.qps - base.qps) / base.qps;
    }
    if (base.p99_ms > 0.0) {
      c.p99_delta_pct = 100.0 * (c.p99_ms - base.p99_ms) / base.p99_ms;
    }
  }

  util::Table table({"sample", "ok", "spans", "wall_s", "qps", "p50_ms",
                     "p99_ms", "qps_delta_pct", "p99_delta_pct"});
  for (const CellResult& c : cells) {
    table.Row()
        .Cell(c.sample_rate, 2)
        .Cell(c.ok)
        .Cell(c.spans)
        .Cell(c.wall_s, 3)
        .Cell(c.qps, 1)
        .Cell(c.p50_ms, 2)
        .Cell(c.p99_ms, 2)
        .Cell(c.qps_delta_pct, 2)
        .Cell(c.p99_delta_pct, 2);
  }
  table.PrintText(std::cout);
  std::printf("\np99 delta at 1%% sampling: %.2f%% (budget: <= 2%%)\n",
              cells[1].p99_delta_pct);

  const std::string json_path =
      bench::JsonOutPath(argc, argv, "BENCH_obs.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"obs_overhead\",\n  \"rows\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    json << "    {\"sample_rate\": " << c.sample_rate << ", \"ok\": " << c.ok
         << ", \"spans\": " << c.spans << ", \"wall_s\": " << c.wall_s
         << ", \"qps\": " << c.qps << ", \"p50_ms\": " << c.p50_ms
         << ", \"p99_ms\": " << c.p99_ms
         << ", \"qps_delta_pct\": " << c.qps_delta_pct
         << ", \"p99_delta_pct\": " << c.p99_delta_pct << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return json.good() ? 0 : 1;
}
