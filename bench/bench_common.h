// Shared machinery for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper's
// Section 8 on a scaled synthetic dataset (see DESIGN.md for the
// substitution rationale). Conventions:
//  * knobs come from NETCLUS_* env vars with paper defaults;
//  * NETCLUS_SCALE multiplies dataset sizes (default 1.0; each bench also
//    applies its own base scale so the full suite stays laptop-fast);
//  * every bench prints a `paper_shape:` line stating what qualitative
//    result of the paper it is expected to reproduce, then the table rows.
#ifndef NETCLUS_BENCH_BENCH_COMMON_H_
#define NETCLUS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <iostream>
#include <string>

#include "data/datasets.h"
#include "graph/spf/distance_backend.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "tops/coverage.h"
#include "tops/fm_greedy.h"
#include "tops/inc_greedy.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace netclus::bench {

inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("paper_shape: %s\n", paper_shape.c_str());
  std::printf("==============================================================\n");
}

/// Dataset with the bench's base scale times NETCLUS_SCALE.
inline data::Dataset MakeDataset(const std::string& name, double base_scale) {
  const double scale = base_scale * util::DatasetScale();
  return data::MakeByName(name, scale);
}

/// Builds a multi-resolution index with bench-appropriate τ range.
/// `threads` = 0 uses the NETCLUS_THREADS default.
inline index::MultiIndex BuildIndex(const data::Dataset& dataset,
                                    double gamma = 0.75,
                                    double tau_min_m = 400.0,
                                    double tau_max_m = 6000.0,
                                    uint32_t threads = 0) {
  index::MultiIndexConfig config;
  config.gamma = gamma;
  config.tau_min_m = tau_min_m;
  config.tau_max_m = tau_max_m;
  config.threads = threads;
  return index::MultiIndex::Build(*dataset.store, dataset.sites, config);
}

/// Answers `count` TOPS queries (varying τ and k) concurrently over a built
/// index with `threads` workers — the Engine::TopKBatch serving shape — and
/// returns the wall time in seconds.
inline double RunQueryBatch(const data::Dataset& dataset,
                            const index::MultiIndex& index, size_t count,
                            const tops::PreferenceFunction& psi,
                            uint32_t threads) {
  const index::QueryEngine engine(&index, dataset.store.get(), &dataset.sites);
  util::WallTimer timer;
  util::ParallelMap<index::QueryResult>(
      threads, count,
      [&](size_t i) {
        index::QueryConfig config;
        config.k = 3 + static_cast<uint32_t>(i % 5);
        config.tau_m = 500.0 + 250.0 * static_cast<double>(i % 8);
        config.threads = 1;  // queries are the unit of concurrency here
        return engine.Tops(psi, config);
      },
      /*grain=*/1);
  return timer.Seconds();
}

/// One Inc-Greedy (or FM-greedy) run on freshly built covering sets — the
/// paper's INCG / FMG baselines. Reports end-to-end time (covering-set
/// construction dominates, as in Sec. 8.6) and the covering-set footprint.
struct ExactRun {
  bool oom = false;
  double utility = 0.0;
  double total_seconds = 0.0;       ///< covering sets + solve
  double solve_seconds = 0.0;       ///< iterative phase only
  uint64_t memory_bytes = 0;        ///< covering sets (+ sketches for FMG)
  std::vector<tops::SiteId> sites;
};

inline ExactRun RunExactGreedy(const data::Dataset& dataset, uint32_t k,
                               double tau_m, const tops::PreferenceFunction& psi,
                               bool use_fm, uint32_t fm_copies = 30,
                               uint64_t memory_budget_bytes = 0,
                               const graph::spf::DistanceBackend* backend =
                                   nullptr) {
  ExactRun run;
  util::WallTimer timer;
  tops::CoverageConfig config;
  config.tau_m = tau_m;
  config.memory_budget_bytes = memory_budget_bytes;
  config.backend = backend;
  const tops::CoverageIndex coverage =
      tops::CoverageIndex::Build(*dataset.store, dataset.sites, config);
  if (coverage.oom()) {
    run.oom = true;
    run.total_seconds = timer.Seconds();
    return run;
  }
  run.memory_bytes = coverage.MemoryBytes();
  if (use_fm) {
    tops::FmGreedyConfig fm;
    fm.k = k;
    fm.num_sketches = fm_copies;
    const tops::FmGreedyResult result = FmGreedy(coverage, fm);
    run.utility = result.selection.utility;
    run.solve_seconds = result.selection.solve_seconds;
    run.sites = result.selection.sites;
    run.memory_bytes +=
        dataset.sites.size() * fm_copies * sizeof(uint32_t);  // sketches
  } else {
    tops::GreedyConfig greedy;
    greedy.k = k;
    const tops::Selection result = IncGreedy(coverage, psi, greedy);
    run.utility = result.utility;
    run.solve_seconds = result.solve_seconds;
    run.sites = result.sites;
  }
  run.total_seconds = timer.Seconds();
  return run;
}

/// One NetClus (or FM-NetClus) query; utility is re-evaluated exactly so
/// that quality comparisons against INCG are apples-to-apples.
struct NetClusRun {
  double utility = 0.0;          ///< exact re-evaluation of the k sites
  double total_seconds = 0.0;
  double solve_seconds = 0.0;
  uint64_t transient_bytes = 0;
  size_t instance_used = 0;
  std::vector<tops::SiteId> sites;
};

inline NetClusRun RunNetClus(const data::Dataset& dataset,
                             const index::MultiIndex& index, uint32_t k,
                             double tau_m, const tops::PreferenceFunction& psi,
                             bool use_fm, uint32_t fm_copies = 30) {
  const index::QueryEngine engine(&index, dataset.store.get(), &dataset.sites);
  index::QueryConfig config;
  config.k = k;
  config.tau_m = tau_m;
  config.use_fm_sketch = use_fm;
  config.fm_copies = fm_copies;
  const index::QueryResult result = engine.Tops(psi, config);
  NetClusRun run;
  run.total_seconds = result.total_seconds;
  run.solve_seconds = result.selection.solve_seconds;
  run.transient_bytes = result.transient_bytes;
  run.instance_used = result.instance_used;
  run.sites = result.selection.sites;
  run.utility = tops::CoverageIndex::EvaluateSelection(
      *dataset.store, dataset.sites, result.selection.sites, tau_m, psi);
  return run;
}

inline double Percent(double utility, size_t live_count) {
  return live_count == 0 ? 0.0 : 100.0 * utility / static_cast<double>(live_count);
}

/// Where a bench should write its BENCH_*.json artifact. Resolution order:
/// a `--out=PATH` argument > the NETCLUS_BENCH_JSON env var > the repo
/// root (NETCLUS_REPO_ROOT compile definition) + `default_name` > the
/// current directory + `default_name`. Benches historically wrote to their
/// cwd, which scattered artifacts under build/ and left the collected perf
/// trajectory empty — this pins them to one predictable place.
inline std::string JsonOutPath(int argc, char** argv,
                               const std::string& default_name) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) return arg.substr(6);
    if (arg == "--out" && i + 1 < argc) return argv[i + 1];
  }
  const std::string env = util::GetEnvString("NETCLUS_BENCH_JSON", "");
  if (!env.empty()) {
    // A directory-looking value gets the default file name appended.
    if (env.back() == '/') return env + default_name;
    return env;
  }
#ifdef NETCLUS_REPO_ROOT
  return std::string(NETCLUS_REPO_ROOT) + "/" + default_name;
#else
  return default_name;
#endif
}

}  // namespace netclus::bench

#endif  // NETCLUS_BENCH_BENCH_COMMON_H_
