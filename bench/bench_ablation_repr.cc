// Ablation: representative choice (Sec. 4.2).
// Paper: "the utilities returned by the two alternatives are quite
// similar, but the second [closest-to-center] is marginally better."
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Ablation", "Cluster representative rule (Sec. 4.2)",
      "closest-to-center and most-frequented yield similar utility; "
      "closest-to-center marginally better on average");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.15);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const size_t m = d.num_trajectories();

  util::Table table({"tau_km", "k", "closest_%", "most_frequented_%"});
  for (const auto rule : {index::RepresentativeRule::kClosestToCenter,
                          index::RepresentativeRule::kMostFrequented}) {
    index::MultiIndexConfig config;
    config.gamma = 0.75;
    config.tau_min_m = 400.0;
    config.tau_max_m = 6000.0;
    config.representative_rule = rule;
    const index::MultiIndex index =
        index::MultiIndex::Build(*d.store, d.sites, config);
    int row = 0;
    static std::vector<std::array<double, 2>> cells(6);
    const int col = rule == index::RepresentativeRule::kClosestToCenter ? 0 : 1;
    for (const double tau : {800.0, 1600.0}) {
      for (const uint32_t k : {5u, 10u, 20u}) {
        const bench::NetClusRun run =
            bench::RunNetClus(d, index, k, tau, psi, false);
        cells[row][col] = bench::Percent(run.utility, m);
        ++row;
      }
    }
    if (col == 1) {
      row = 0;
      for (const double tau : {800.0, 1600.0}) {
        for (const uint32_t k : {5u, 10u, 20u}) {
          table.Row()
              .Cell(tau / 1000.0, 1)
              .Cell(static_cast<uint64_t>(k))
              .Cell(cells[row][0], 2)
              .Cell(cells[row][1], 2);
          ++row;
        }
      }
    }
  }
  table.PrintText(std::cout);
  return 0;
}
