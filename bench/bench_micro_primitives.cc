// Google-benchmark micro benchmarks for the hot primitives underneath
// NetClus: bounded Dijkstra, round-trip enumeration, FM sketch operations,
// covering-set construction, and clustered-space queries.
#include <benchmark/benchmark.h>

#include "data/datasets.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "sketch/fm_sketch.h"
#include "store/arena.h"
#include "store/simd/bulk_varint.h"
#include "tops/coverage.h"
#include "tops/inc_greedy.h"
#include "util/rng.h"

namespace {

using namespace netclus;

const graph::RoadNetwork& SharedNetwork() {
  static const graph::RoadNetwork* net = [] {
    graph::GridCityConfig config;
    config.rows = 60;
    config.cols = 60;
    config.block_m = 150.0;
    return new graph::RoadNetwork(GenerateGridCity(config));
  }();
  return *net;
}

const data::Dataset& SharedDataset() {
  static const data::Dataset* dataset =
      new data::Dataset(data::MakeBeijingLite(0.08));
  return *dataset;
}

void BM_DijkstraBounded(benchmark::State& state) {
  const graph::RoadNetwork& net = SharedNetwork();
  graph::DijkstraEngine engine(&net);
  const double radius = static_cast<double>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    const auto src =
        static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    benchmark::DoNotOptimize(
        engine.BoundedSearch(src, radius, graph::Direction::kForward));
  }
  state.counters["settled"] = static_cast<double>(engine.last_settled_count());
}
BENCHMARK(BM_DijkstraBounded)->Arg(400)->Arg(800)->Arg(1600)->Arg(3200);

void BM_DijkstraRoundTrip(benchmark::State& state) {
  const graph::RoadNetwork& net = SharedNetwork();
  graph::DijkstraEngine engine(&net);
  util::Rng rng(2);
  for (auto _ : state) {
    const auto src =
        static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    benchmark::DoNotOptimize(
        engine.BoundedRoundTrip(src, static_cast<double>(state.range(0))));
  }
}
BENCHMARK(BM_DijkstraRoundTrip)->Arg(800)->Arg(1600);

void BM_DijkstraPointToPoint(benchmark::State& state) {
  const graph::RoadNetwork& net = SharedNetwork();
  graph::DijkstraEngine engine(&net);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    const auto t = static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    benchmark::DoNotOptimize(engine.PointToPoint(s, t));
  }
}
BENCHMARK(BM_DijkstraPointToPoint);

void BM_FmSketchAdd(benchmark::State& state) {
  sketch::FmSketch sk(static_cast<uint32_t>(state.range(0)));
  uint64_t x = 0;
  for (auto _ : state) {
    sk.Add(++x);
  }
}
BENCHMARK(BM_FmSketchAdd)->Arg(1)->Arg(30)->Arg(100);

void BM_FmSketchUnionEstimate(benchmark::State& state) {
  sketch::FmSketch a(static_cast<uint32_t>(state.range(0)));
  sketch::FmSketch b(static_cast<uint32_t>(state.range(0)));
  for (uint64_t x = 0; x < 10000; ++x) {
    a.Add(x);
    b.Add(x + 5000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.UnionEstimate(b));
  }
}
BENCHMARK(BM_FmSketchUnionEstimate)->Arg(30)->Arg(100);

void BM_CoverageBuild(benchmark::State& state) {
  const data::Dataset& d = SharedDataset();
  tops::CoverageConfig config;
  config.tau_m = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tops::CoverageIndex::Build(*d.store, d.sites, config));
  }
}
BENCHMARK(BM_CoverageBuild)->Arg(400)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_IncGreedySolve(benchmark::State& state) {
  const data::Dataset& d = SharedDataset();
  tops::CoverageConfig config;
  config.tau_m = 800.0;
  const tops::CoverageIndex coverage =
      tops::CoverageIndex::Build(*d.store, d.sites, config);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  tops::GreedyConfig greedy;
  greedy.k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IncGreedy(coverage, psi, greedy));
  }
}
BENCHMARK(BM_IncGreedySolve)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

// --- blocked-postings primitives (v3 index format) -------------------------

// Scalar vs SIMD bulk varint decode: the inner loop of every blocked
// list traversal. range(0) selects the kernel, range(1) the run length
// (one posting block is 128 entries; larger runs amortize dispatch),
// range(2) the stream shape: 0 = dense (all 1-byte varints, the shape of
// sorted-id delta streams, where the all-single-byte widening fast path
// runs), 1 = mixed (10% wide varints, which break up the fast windows).
// items_per_second is decoded entries/sec — the Table 11 column that
// motivates the SIMD kernels.
void BM_BulkVarintDecode(benchmark::State& state) {
  const auto kernel = static_cast<store::simd::Kernel>(state.range(0));
  if (!store::simd::Supports(kernel)) {
    state.SkipWithError("kernel unsupported on this host");
    return;
  }
  const size_t count = static_cast<size_t>(state.range(1));
  const bool mixed = state.range(2) != 0;
  util::Rng rng(7);
  std::vector<uint8_t> enc;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t v = mixed && rng.UniformInt(10ull) == 0
                           ? rng.UniformInt(1ull << 28)
                           : rng.UniformInt(128ull);
    store::PutVarint64(enc, v);
  }
  std::vector<uint32_t> out(count);
  const auto fn = kernel == store::simd::Kernel::kScalar
                      ? store::simd::BulkDecodeVarint32Scalar
                      : kernel == store::simd::Kernel::kSse4
                            ? store::simd::BulkDecodeVarint32Sse4
                            : store::simd::BulkDecodeVarint32Avx2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fn(enc.data(), enc.data() + enc.size(), out.data(), count));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count));
  state.SetLabel(std::string(store::simd::KernelName(kernel)) +
                 (mixed ? "/mixed" : "/dense"));
}
BENCHMARK(BM_BulkVarintDecode)
    ->ArgNames({"kernel", "entries", "mixed"})
    ->Args({0, 128, 0})
    ->Args({0, 16384, 0})
    ->Args({0, 16384, 1})
    ->Args({1, 128, 0})
    ->Args({1, 16384, 0})
    ->Args({1, 16384, 1})
    ->Args({2, 128, 0})
    ->Args({2, 16384, 0})
    ->Args({2, 16384, 1});

// Full list traversal through the arena views: flat iterator decode vs
// blocked ForEach (skip headers + SIMD bulk decode). range(0) selects
// the layout, range(1) the list length.
void BM_PostingListForEach(benchmark::State& state) {
  const auto layout = state.range(0) == 0 ? store::ListLayout::kFlat
                                          : store::ListLayout::kBlocked;
  const size_t len = static_cast<size_t>(state.range(1));
  util::Rng rng(11);
  std::vector<uint32_t> values(len);
  for (auto& v : values) {
    v = static_cast<uint32_t>(rng.UniformInt(1u << 24));
  }
  store::PostingArenaBuilder builder(layout);
  builder.AddU32List(values);
  const store::PostingArena arena = builder.Finish();
  for (auto _ : state) {
    uint64_t sum = 0;
    arena.U32List(0).ForEach([&](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
  state.SetLabel(layout == store::ListLayout::kFlat ? "flat" : "blocked");
}
BENCHMARK(BM_PostingListForEach)
    ->ArgNames({"layout", "entries"})
    ->Args({0, 1024})
    ->Args({0, 65536})
    ->Args({1, 1024})
    ->Args({1, 65536});

void BM_NetClusQuery(benchmark::State& state) {
  const data::Dataset& d = SharedDataset();
  static const index::MultiIndex* index = [] {
    index::MultiIndexConfig config;
    config.gamma = 0.75;
    config.tau_min_m = 400.0;
    config.tau_max_m = 6000.0;
    return new index::MultiIndex(
        index::MultiIndex::Build(*SharedDataset().store, SharedDataset().sites,
                                 config));
  }();
  const index::QueryEngine engine(index, d.store.get(), &d.sites);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  index::QueryConfig config;
  config.k = 5;
  config.tau_m = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Tops(psi, config));
  }
}
BENCHMARK(BM_NetClusQuery)->Arg(800)->Arg(1600)->Arg(3200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
