// Google-benchmark micro benchmarks for the hot primitives underneath
// NetClus: bounded Dijkstra, round-trip enumeration, FM sketch operations,
// covering-set construction, and clustered-space queries.
#include <benchmark/benchmark.h>

#include "data/datasets.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "sketch/fm_sketch.h"
#include "tops/coverage.h"
#include "tops/inc_greedy.h"
#include "util/rng.h"

namespace {

using namespace netclus;

const graph::RoadNetwork& SharedNetwork() {
  static const graph::RoadNetwork* net = [] {
    graph::GridCityConfig config;
    config.rows = 60;
    config.cols = 60;
    config.block_m = 150.0;
    return new graph::RoadNetwork(GenerateGridCity(config));
  }();
  return *net;
}

const data::Dataset& SharedDataset() {
  static const data::Dataset* dataset =
      new data::Dataset(data::MakeBeijingLite(0.08));
  return *dataset;
}

void BM_DijkstraBounded(benchmark::State& state) {
  const graph::RoadNetwork& net = SharedNetwork();
  graph::DijkstraEngine engine(&net);
  const double radius = static_cast<double>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    const auto src =
        static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    benchmark::DoNotOptimize(
        engine.BoundedSearch(src, radius, graph::Direction::kForward));
  }
  state.counters["settled"] = static_cast<double>(engine.last_settled_count());
}
BENCHMARK(BM_DijkstraBounded)->Arg(400)->Arg(800)->Arg(1600)->Arg(3200);

void BM_DijkstraRoundTrip(benchmark::State& state) {
  const graph::RoadNetwork& net = SharedNetwork();
  graph::DijkstraEngine engine(&net);
  util::Rng rng(2);
  for (auto _ : state) {
    const auto src =
        static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    benchmark::DoNotOptimize(
        engine.BoundedRoundTrip(src, static_cast<double>(state.range(0))));
  }
}
BENCHMARK(BM_DijkstraRoundTrip)->Arg(800)->Arg(1600);

void BM_DijkstraPointToPoint(benchmark::State& state) {
  const graph::RoadNetwork& net = SharedNetwork();
  graph::DijkstraEngine engine(&net);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    const auto t = static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    benchmark::DoNotOptimize(engine.PointToPoint(s, t));
  }
}
BENCHMARK(BM_DijkstraPointToPoint);

void BM_FmSketchAdd(benchmark::State& state) {
  sketch::FmSketch sk(static_cast<uint32_t>(state.range(0)));
  uint64_t x = 0;
  for (auto _ : state) {
    sk.Add(++x);
  }
}
BENCHMARK(BM_FmSketchAdd)->Arg(1)->Arg(30)->Arg(100);

void BM_FmSketchUnionEstimate(benchmark::State& state) {
  sketch::FmSketch a(static_cast<uint32_t>(state.range(0)));
  sketch::FmSketch b(static_cast<uint32_t>(state.range(0)));
  for (uint64_t x = 0; x < 10000; ++x) {
    a.Add(x);
    b.Add(x + 5000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.UnionEstimate(b));
  }
}
BENCHMARK(BM_FmSketchUnionEstimate)->Arg(30)->Arg(100);

void BM_CoverageBuild(benchmark::State& state) {
  const data::Dataset& d = SharedDataset();
  tops::CoverageConfig config;
  config.tau_m = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tops::CoverageIndex::Build(*d.store, d.sites, config));
  }
}
BENCHMARK(BM_CoverageBuild)->Arg(400)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_IncGreedySolve(benchmark::State& state) {
  const data::Dataset& d = SharedDataset();
  tops::CoverageConfig config;
  config.tau_m = 800.0;
  const tops::CoverageIndex coverage =
      tops::CoverageIndex::Build(*d.store, d.sites, config);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  tops::GreedyConfig greedy;
  greedy.k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IncGreedy(coverage, psi, greedy));
  }
}
BENCHMARK(BM_IncGreedySolve)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_NetClusQuery(benchmark::State& state) {
  const data::Dataset& d = SharedDataset();
  static const index::MultiIndex* index = [] {
    index::MultiIndexConfig config;
    config.gamma = 0.75;
    config.tau_min_m = 400.0;
    config.tau_max_m = 6000.0;
    return new index::MultiIndex(
        index::MultiIndex::Build(*SharedDataset().store, SharedDataset().sites,
                                 config));
  }();
  const index::QueryEngine engine(index, d.store.get(), &d.sites);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  index::QueryConfig config;
  config.k = 5;
  config.tau_m = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Tops(psi, config));
  }
}
BENCHMARK(BM_NetClusQuery)->Arg(800)->Arg(1600)->Arg(3200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
