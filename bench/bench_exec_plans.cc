// Query planning & cross-query cover sharing (src/exec).
//
// The online phase is dominated by building the approximate trajectory
// cover T̂C for the selected (instance, τ). This bench measures what the
// executor's cover-sharing stage buys on the acceptance workload: a
// 32-query batch containing ≤4 distinct τ values, answered
//  * per-query (the pre-refactor TopKBatch shape: every query builds its
//    own cover), vs
//  * through Executor::ExecuteBatch (plans grouped by (instance, τ), one
//    cover build per group), vs
//  * through NetClusServer::SubmitBatch with the snapshot-versioned
//    CoverCache on and off (concurrent readers rendezvous on one build).
//
// paper_shape: the shared batch builds 4 covers instead of 32 and runs
// ≥2x faster wall-clock; the serving path reports a 28/32 cover-cache
// hit rate in server stats.
//
// Besides the stdout table, rows are written as JSON to BENCH_exec.json
// (override with NETCLUS_BENCH_JSON) so CI can track the perf trajectory.
#include "bench_common.h"

#include <fstream>

#include "api/engine.h"
#include "exec/executor.h"
#include "exec/planner.h"
#include "serve/server.h"

namespace {

using namespace netclus;

std::vector<Engine::QuerySpec> MakeBatch(size_t count) {
  const double taus[] = {600.0, 900.0, 1200.0, 1500.0};
  std::vector<Engine::QuerySpec> specs;
  specs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Engine::QuerySpec spec;
    // All (k, τ) pairs distinct so the serving measurement exercises the
    // cover cache, not the result cache.
    spec.k = 2 + static_cast<uint32_t>((i / 4) % 8);
    spec.tau_m = taus[i % 4];
    specs.push_back(spec);
  }
  return specs;
}

double BestOf(int reps, const std::function<double()>& run) {
  double best = run();
  for (int r = 1; r < reps; ++r) best = std::min(best, run());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netclus;
  bench::PrintHeader(
      "Exec", "Query planning & cross-query cover sharing (src/exec)",
      "a 32-query batch with <=4 distinct tau builds 4 covers instead of "
      "32 and runs >=2x faster; the serving cover cache reports a 28/32 "
      "hit rate");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.15);
  graph::RoadNetwork network = *d.network;
  tops::SiteSet sites = d.sites;
  Engine::Options engine_options;
  engine_options.index.tau_min_m = 400.0;
  engine_options.index.tau_max_m = 6000.0;
  Engine engine(std::move(network), std::move(sites), engine_options);
  for (traj::TrajId t = 0; t < d.store->total_count(); ++t) {
    if (d.store->is_alive(t)) {
      engine.AddTrajectory(d.store->trajectory(t).nodes());
    }
  }
  engine.BuildIndex();
  std::printf("corpus: %zu trajectories, %zu sites, %zu index instances\n",
              engine.store().live_count(), engine.sites().size(),
              engine.index().num_instances());

  const size_t batch = static_cast<size_t>(
      util::GetEnvInt("NETCLUS_EXEC_BATCH", 32));
  const int reps =
      static_cast<int>(util::GetEnvInt("NETCLUS_EXEC_REPS", 3));
  const std::vector<Engine::QuerySpec> specs = MakeBatch(batch);
  size_t distinct = 0;
  {
    exec::ExecContext probe_ctx;
    const exec::Planner probe(&probe_ctx);
    std::unordered_map<exec::CoverKey, int, exec::CoverKeyHash> keys;
    for (const auto& spec : specs) {
      keys[probe
               .Plan(exec::RequestFromConfig(exec::QueryVariant::kTops,
                                             spec.psi, spec.ToConfig(0)),
                     engine.index(), specs.size())
               .cover_key()]++;
    }
    distinct = keys.size();
  }

  // Plans once; both in-process measurements execute the same plans.
  exec::ExecContext ctx;
  const exec::Planner planner(&ctx);
  std::vector<exec::QueryPlan> plans;
  plans.reserve(specs.size());
  for (const auto& spec : specs) {
    plans.push_back(planner.Plan(
        exec::RequestFromConfig(exec::QueryVariant::kTops, spec.psi,
                                spec.ToConfig(0)),
        engine.index(), specs.size()));
  }
  const exec::Executor executor(&engine.index(), &engine.store(),
                                &engine.sites(), &ctx);

  // Baseline: every query builds its own cover (pre-refactor shape).
  const double unshared_s = BestOf(reps, [&] {
    util::WallTimer timer;
    util::ParallelMap<index::QueryResult>(
        0, plans.size(), [&](size_t i) { return executor.Execute(plans[i]); },
        /*grain=*/1);
    return timer.Seconds();
  });

  // Shared: grouped batch, one cover per distinct (instance, τ).
  const double shared_s = BestOf(reps, [&] {
    util::WallTimer timer;
    (void)executor.ExecuteBatch(plans, 0);
    return timer.Seconds();
  });
  const double speedup = shared_s > 0.0 ? unshared_s / shared_s : 0.0;

  // Serving path: SubmitBatch with the CoverCache off / on. The result
  // cache is disabled so the measurement isolates cover sharing.
  const auto serve_once = [&](bool cover_cache_on) {
    serve::ServerOptions options;
    options.cache.capacity = 0;
    options.cover_cache.respect_env = false;
    if (!cover_cache_on) options.cover_cache.capacity = 0;
    auto server = engine.Serve(options);
    util::WallTimer timer;
    (void)server->SubmitBatch(specs);
    const double seconds = timer.Seconds();
    const serve::ServerStats stats = server->stats();
    server->Shutdown();
    return std::make_pair(seconds, stats);
  };
  double serve_off_s = 1e300, serve_on_s = 1e300;
  serve::ServerStats on_stats;
  for (int r = 0; r < reps; ++r) {
    serve_off_s = std::min(serve_off_s, serve_once(false).first);
    const auto [seconds, stats] = serve_once(true);
    if (seconds < serve_on_s) {
      serve_on_s = seconds;
      on_stats = stats;
    }
  }
  const uint64_t lookups = on_stats.cover_cache.hits + on_stats.cover_cache.misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(on_stats.cover_cache.hits) /
                        static_cast<double>(lookups)
                  : 0.0;

  util::Table table({"mode", "queries", "distinct_tau", "covers_built",
                     "wall_s", "speedup", "cover_hit"});
  table.Row()
      .Cell("per-query")
      .Cell(static_cast<uint64_t>(specs.size()))
      .Cell(static_cast<uint64_t>(distinct))
      .Cell(static_cast<uint64_t>(specs.size()))
      .Cell(unshared_s, 4)
      .Cell(1.0, 2)
      .Cell(0.0, 2);
  table.Row()
      .Cell("shared-batch")
      .Cell(static_cast<uint64_t>(specs.size()))
      .Cell(static_cast<uint64_t>(distinct))
      .Cell(static_cast<uint64_t>(distinct))
      .Cell(shared_s, 4)
      .Cell(speedup, 2)
      .Cell(0.0, 2);
  table.Row()
      .Cell("serve-cache-off")
      .Cell(static_cast<uint64_t>(specs.size()))
      .Cell(static_cast<uint64_t>(distinct))
      .Cell(static_cast<uint64_t>(specs.size()))
      .Cell(serve_off_s, 4)
      .Cell(1.0, 2)
      .Cell(0.0, 2);
  table.Row()
      .Cell("serve-cache-on")
      .Cell(static_cast<uint64_t>(specs.size()))
      .Cell(static_cast<uint64_t>(distinct))
      .Cell(static_cast<uint64_t>(on_stats.cover_cache.misses))
      .Cell(serve_on_s, 4)
      .Cell(serve_on_s > 0.0 ? serve_off_s / serve_on_s : 0.0, 2)
      .Cell(hit_rate, 2);
  table.PrintText(std::cout);
  std::printf("exec stats: plan ewma %.1f us, cover ewma %.1f ms, solve "
              "ewma %.1f ms\n",
              ctx.stats.snapshot().plan.ewma_seconds * 1e6,
              ctx.stats.snapshot().cover_build.ewma_seconds * 1e3,
              ctx.stats.snapshot().solve.ewma_seconds * 1e3);

  const std::string json_path = bench::JsonOutPath(argc, argv, "BENCH_exec.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"exec_plans\",\n  \"rows\": [\n"
       << "    {\"queries\": " << specs.size()
       << ", \"distinct_tau\": " << distinct
       << ", \"unshared_s\": " << unshared_s
       << ", \"shared_s\": " << shared_s << ", \"speedup\": " << speedup
       << ", \"serve_off_s\": " << serve_off_s
       << ", \"serve_on_s\": " << serve_on_s
       << ", \"cover_hit_rate\": " << hit_rate
       << ", \"cover_cache_hits\": " << on_stats.cover_cache.hits
       << ", \"cover_cache_misses\": " << on_stats.cover_cache.misses << "}\n"
       << "  ]\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());

  const bool ok = speedup >= 1.0 && json.good();
  return ok ? 0 : 1;
}
