// Table 11: per-radius indexing details on the main network.
// Paper: as R_p grows, cluster count η falls (roughly geometrically), mean
// dominating-set size |Λ| and mean trajectory-list size |TL| grow, mean
// neighbor-list size |CL| first rises then falls, and build times stay
// practical with a U-shape at the extremes.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench_common.h"

#include "graph/spf/distance_backend.h"
#include "netclus/cluster_index.h"
#include "netclus/index_io.h"
#include "netclus/query.h"
#include "store/buffer_pool.h"

int main(int argc, char** argv) {
  using namespace netclus;
  bench::PrintHeader(
      "Table 11", "Indexing details per cluster radius (gamma = 0.75)",
      "eta falls ~geometrically with R; |Lambda| and |TL| grow; |CL| rises "
      "then falls; build times practical");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  std::printf("network: %zu nodes, %zu trajectories\n\n", d.num_nodes(),
              d.num_trajectories());
  // Per-backend column: the same instance rebuilt on a CH distance oracle
  // (one contraction amortized over the whole radius sweep). The cluster
  // structure is bit-identical; only build_s changes.
  const std::shared_ptr<const graph::spf::DistanceBackend> ch =
      graph::spf::MakeBackend(graph::spf::BackendKind::kContractionHierarchies,
                              d.network.get());

  util::Table table({"R_km", "eta_clusters", "mean_Lambda", "mean_TL",
                     "mean_CL", "build_s", "build_s_ch", "memory"});
  double radius = util::GetEnvDouble("NETCLUS_T11_R0_M", 60.0);
  const int steps = static_cast<int>(util::GetEnvInt("NETCLUS_T11_STEPS", 9));
  for (int i = 0; i < steps; ++i, radius *= 1.75) {
    index::ClusterIndexConfig config;
    config.radius_m = radius;
    config.gamma = 0.75;
    const index::ClusterIndex instance =
        index::ClusterIndex::Build(*d.store, d.sites, config);
    const index::ClusterIndex instance_ch =
        index::ClusterIndex::Build(*d.store, d.sites, config, ch.get());
    NC_CHECK_EQ(instance_ch.num_clusters(), instance.num_clusters());
    table.Row()
        .Cell(radius / 1000.0, 4)
        .Cell(static_cast<uint64_t>(instance.num_clusters()))
        .Cell(instance.stats().mean_dominating_set_size, 2)
        .Cell(instance.stats().mean_tl_size, 2)
        .Cell(instance.stats().mean_cl_size, 2)
        .Cell(instance.stats().build_seconds, 2)
        .Cell(instance_ch.stats().build_seconds, 2)
        .Cell(util::HumanBytes(instance.MemoryBytes()));
  }
  table.PrintText(std::cout);

  // --- index persistence: v1 text vs v2 binary (copy / mmap) ---------------
  // The startup-latency leg of the v2 format work: Engine::Load boils down
  // to LoadIndex, so this times the full multi-resolution index through
  // the text parser, the binary heap-copy loader, and the zero-copy mmap
  // loader. Acceptance: mmap load >= 5x faster than text on this (the
  // largest Table 11) dataset.
  std::printf("\nindex persistence (full multi-resolution index):\n");
  const index::MultiIndex full = bench::BuildIndex(d);
  const std::string text_path = "/tmp/netclus_bench_t11_v1.idx";
  const std::string bin_path = "/tmp/netclus_bench_t11_v2.idx";
  std::string error;
  NC_CHECK(index::SaveIndex(full, text_path, &error,
                            index::IndexFileFormat::kTextV1))
      << error;
  NC_CHECK(index::SaveIndex(full, bin_path, &error,
                            index::IndexFileFormat::kBinaryV2))
      << error;
  const size_t nodes = d.num_nodes();
  const size_t trajs = d.store->total_count();

  auto time_load = [&](const std::string& path, index::IndexLoadMode mode) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      index::MultiIndex loaded;
      util::WallTimer timer;
      NC_CHECK(index::LoadIndex(path, nodes, trajs, &loaded, &error, nullptr,
                                nullptr, mode))
          << error;
      best = std::min(best, timer.Seconds());
    }
    return best;
  };
  const double text_s = time_load(text_path, index::IndexLoadMode::kAuto);
  const double copy_s = time_load(bin_path, index::IndexLoadMode::kCopy);
  const double mmap_s = time_load(bin_path, index::IndexLoadMode::kMmap);
  const double speedup = mmap_s > 0.0 ? text_s / mmap_s : 0.0;

  auto file_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return static_cast<uint64_t>(in.tellg());
  };
  util::Table io_table({"format", "file_bytes", "load_s"});
  io_table.Row()
      .Cell(std::string("v1 text"))
      .Cell(util::HumanBytes(file_bytes(text_path)))
      .Cell(text_s, 4);
  io_table.Row()
      .Cell(std::string("v2 binary (copy)"))
      .Cell(util::HumanBytes(file_bytes(bin_path)))
      .Cell(copy_s, 4);
  io_table.Row()
      .Cell(std::string("v2 binary (mmap)"))
      .Cell(util::HumanBytes(file_bytes(bin_path)))
      .Cell(mmap_s, 4);
  io_table.PrintText(std::cout);
  std::printf("mmap load speedup over v1 text: %.1fx\n", speedup);

  // --- v3 blocked format: larger-than-budget serving -----------------------
  // The v3 leg of the index work: save the same index as blocked postings
  // + EF offsets, mmap it under a page budget deliberately smaller than
  // the file, and serve a zipf-skewed query mix. Reported: cold (pool
  // dropped before each query, every list re-faults) and warm p50/p99
  // latencies, plus the pool's residency counters — the proof that the
  // working set stays bounded while answers stay exact.
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const std::string v3_path = "/tmp/netclus_bench_t11_v3.idx";
  NC_CHECK(index::SaveIndex(full, v3_path, &error,
                            index::IndexFileFormat::kBinaryV3))
      << error;
  const double v3_copy_s = time_load(v3_path, index::IndexLoadMode::kCopy);
  const double v3_mmap_s = time_load(v3_path, index::IndexLoadMode::kMmap);
  const uint64_t v3_bytes = file_bytes(v3_path);
  std::printf("\nv3 binary (blocked+EF): %s, load copy %.4fs, mmap %.4fs\n",
              util::HumanBytes(v3_bytes).c_str(), v3_copy_s, v3_mmap_s);

  // Budget: a quarter of the file, floored at two frames.
  const uint64_t budget = std::max<uint64_t>(128 << 10, v3_bytes / 4);
  NC_CHECK_LT(budget, v3_bytes);  // must exercise eviction, not fit in RAM
  setenv("NETCLUS_PAGE_BUDGET", std::to_string(budget).c_str(), 1);
  index::MultiIndex budgeted;
  NC_CHECK(index::LoadIndex(v3_path, nodes, trajs, &budgeted, &error, nullptr,
                            nullptr, index::IndexLoadMode::kMmap))
      << error;
  unsetenv("NETCLUS_PAGE_BUDGET");
  store::BufferPool* pool = store::BufferPool::Find(
      static_cast<const uint8_t*>(budgeted.instance(0).cc_arena_id()));
  NC_CHECK(pool != nullptr);

  const index::QueryEngine engine(&budgeted, d.store.get(), &d.sites);
  // Zipf-skewed tau mix: rank r is drawn with p ~ 1/(r+1), so a couple of
  // radii dominate (hot instances) while the tail still forces the pool
  // to swap cold instances in and out.
  const std::vector<double> taus = {800.0,  1600.0, 400.0,  3200.0,
                                    1200.0, 2400.0, 600.0,  4800.0};
  std::vector<double> cdf(taus.size());
  double norm = 0.0;
  for (size_t r = 0; r < taus.size(); ++r) norm += 1.0 / (r + 1.0);
  double acc = 0.0;
  for (size_t r = 0; r < taus.size(); ++r) {
    acc += 1.0 / ((r + 1.0) * norm);
    cdf[r] = acc;
  }
  util::Rng rng(23);
  auto next_tau = [&] {
    const double u = rng.Uniform();
    for (size_t r = 0; r < cdf.size(); ++r) {
      if (u <= cdf[r]) return taus[r];
    }
    return taus.back();
  };
  auto run_query = [&](double tau) {
    index::QueryConfig config;
    config.k = 5;
    config.tau_m = tau;
    util::WallTimer timer;
    const auto result = engine.Tops(psi, config);
    NC_CHECK(!result.selection.sites.empty());
    return timer.Seconds() * 1000.0;
  };
  auto percentile = [](std::vector<double> xs, double q) {
    std::sort(xs.begin(), xs.end());
    return xs.empty() ? 0.0 : xs[static_cast<size_t>(q * (xs.size() - 1))];
  };

  std::vector<double> cold_ms, warm_ms;
  for (int i = 0; i < 30; ++i) {
    pool->DropAll();  // every posting access below re-faults from disk
    cold_ms.push_back(run_query(next_tau()));
  }
  for (int i = 0; i < 150; ++i) warm_ms.push_back(run_query(next_tau()));
  const store::BufferPool::Stats ps = pool->GetStats();

  util::Table v3_table(
      {"regime", "queries", "p50_ms", "p99_ms"});
  v3_table.Row()
      .Cell(std::string("mmap-cold"))
      .Cell(static_cast<uint64_t>(cold_ms.size()))
      .Cell(percentile(cold_ms, 0.5), 3)
      .Cell(percentile(cold_ms, 0.99), 3);
  v3_table.Row()
      .Cell(std::string("warm (zipf)"))
      .Cell(static_cast<uint64_t>(warm_ms.size()))
      .Cell(percentile(warm_ms, 0.5), 3)
      .Cell(percentile(warm_ms, 0.99), 3);
  v3_table.PrintText(std::cout);
  std::printf("page budget %s (file %s): resident %s, faults %llu, "
              "evictions %llu\n",
              util::HumanBytes(budget).c_str(),
              util::HumanBytes(v3_bytes).c_str(),
              util::HumanBytes(ps.resident_bytes).c_str(),
              static_cast<unsigned long long>(ps.faults),
              static_cast<unsigned long long>(ps.evictions));

  const std::string json_path = bench::JsonOutPath(argc, argv, "BENCH_table11.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"table11_index\",\n"
       << "  \"v1_text_bytes\": " << file_bytes(text_path) << ",\n"
       << "  \"v2_binary_bytes\": " << file_bytes(bin_path) << ",\n"
       << "  \"v3_binary_bytes\": " << v3_bytes << ",\n"
       << "  \"load_v1_text_s\": " << text_s << ",\n"
       << "  \"load_v2_copy_s\": " << copy_s << ",\n"
       << "  \"load_v2_mmap_s\": " << mmap_s << ",\n"
       << "  \"load_v3_copy_s\": " << v3_copy_s << ",\n"
       << "  \"load_v3_mmap_s\": " << v3_mmap_s << ",\n"
       << "  \"mmap_speedup_over_text\": " << speedup << ",\n"
       << "  \"page_budget_bytes\": " << budget << ",\n"
       << "  \"pool_resident_bytes\": " << ps.resident_bytes << ",\n"
       << "  \"pool_faults\": " << ps.faults << ",\n"
       << "  \"pool_evictions\": " << ps.evictions << ",\n"
       << "  \"cold_p50_ms\": " << percentile(cold_ms, 0.5) << ",\n"
       << "  \"cold_p99_ms\": " << percentile(cold_ms, 0.99) << ",\n"
       << "  \"warm_p50_ms\": " << percentile(warm_ms, 0.5) << ",\n"
       << "  \"warm_p99_ms\": " << percentile(warm_ms, 0.99) << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  std::remove(v3_path.c_str());
  return 0;
}
