// Table 11: per-radius indexing details on the main network.
// Paper: as R_p grows, cluster count η falls (roughly geometrically), mean
// dominating-set size |Λ| and mean trajectory-list size |TL| grow, mean
// neighbor-list size |CL| first rises then falls, and build times stay
// practical with a U-shape at the extremes.
#include <cstdio>
#include <fstream>

#include "bench_common.h"

#include "graph/spf/distance_backend.h"
#include "netclus/cluster_index.h"
#include "netclus/index_io.h"

int main(int argc, char** argv) {
  using namespace netclus;
  bench::PrintHeader(
      "Table 11", "Indexing details per cluster radius (gamma = 0.75)",
      "eta falls ~geometrically with R; |Lambda| and |TL| grow; |CL| rises "
      "then falls; build times practical");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  std::printf("network: %zu nodes, %zu trajectories\n\n", d.num_nodes(),
              d.num_trajectories());
  // Per-backend column: the same instance rebuilt on a CH distance oracle
  // (one contraction amortized over the whole radius sweep). The cluster
  // structure is bit-identical; only build_s changes.
  const std::shared_ptr<const graph::spf::DistanceBackend> ch =
      graph::spf::MakeBackend(graph::spf::BackendKind::kContractionHierarchies,
                              d.network.get());

  util::Table table({"R_km", "eta_clusters", "mean_Lambda", "mean_TL",
                     "mean_CL", "build_s", "build_s_ch", "memory"});
  double radius = util::GetEnvDouble("NETCLUS_T11_R0_M", 60.0);
  const int steps = static_cast<int>(util::GetEnvInt("NETCLUS_T11_STEPS", 9));
  for (int i = 0; i < steps; ++i, radius *= 1.75) {
    index::ClusterIndexConfig config;
    config.radius_m = radius;
    config.gamma = 0.75;
    const index::ClusterIndex instance =
        index::ClusterIndex::Build(*d.store, d.sites, config);
    const index::ClusterIndex instance_ch =
        index::ClusterIndex::Build(*d.store, d.sites, config, ch.get());
    NC_CHECK_EQ(instance_ch.num_clusters(), instance.num_clusters());
    table.Row()
        .Cell(radius / 1000.0, 4)
        .Cell(static_cast<uint64_t>(instance.num_clusters()))
        .Cell(instance.stats().mean_dominating_set_size, 2)
        .Cell(instance.stats().mean_tl_size, 2)
        .Cell(instance.stats().mean_cl_size, 2)
        .Cell(instance.stats().build_seconds, 2)
        .Cell(instance_ch.stats().build_seconds, 2)
        .Cell(util::HumanBytes(instance.MemoryBytes()));
  }
  table.PrintText(std::cout);

  // --- index persistence: v1 text vs v2 binary (copy / mmap) ---------------
  // The startup-latency leg of the v2 format work: Engine::Load boils down
  // to LoadIndex, so this times the full multi-resolution index through
  // the text parser, the binary heap-copy loader, and the zero-copy mmap
  // loader. Acceptance: mmap load >= 5x faster than text on this (the
  // largest Table 11) dataset.
  std::printf("\nindex persistence (full multi-resolution index):\n");
  const index::MultiIndex full = bench::BuildIndex(d);
  const std::string text_path = "/tmp/netclus_bench_t11_v1.idx";
  const std::string bin_path = "/tmp/netclus_bench_t11_v2.idx";
  std::string error;
  NC_CHECK(index::SaveIndex(full, text_path, &error,
                            index::IndexFileFormat::kTextV1))
      << error;
  NC_CHECK(index::SaveIndex(full, bin_path, &error,
                            index::IndexFileFormat::kBinaryV2))
      << error;
  const size_t nodes = d.num_nodes();
  const size_t trajs = d.store->total_count();

  auto time_load = [&](const std::string& path, index::IndexLoadMode mode) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      index::MultiIndex loaded;
      util::WallTimer timer;
      NC_CHECK(index::LoadIndex(path, nodes, trajs, &loaded, &error, nullptr,
                                nullptr, mode))
          << error;
      best = std::min(best, timer.Seconds());
    }
    return best;
  };
  const double text_s = time_load(text_path, index::IndexLoadMode::kAuto);
  const double copy_s = time_load(bin_path, index::IndexLoadMode::kCopy);
  const double mmap_s = time_load(bin_path, index::IndexLoadMode::kMmap);
  const double speedup = mmap_s > 0.0 ? text_s / mmap_s : 0.0;

  auto file_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return static_cast<uint64_t>(in.tellg());
  };
  util::Table io_table({"format", "file_bytes", "load_s"});
  io_table.Row()
      .Cell(std::string("v1 text"))
      .Cell(util::HumanBytes(file_bytes(text_path)))
      .Cell(text_s, 4);
  io_table.Row()
      .Cell(std::string("v2 binary (copy)"))
      .Cell(util::HumanBytes(file_bytes(bin_path)))
      .Cell(copy_s, 4);
  io_table.Row()
      .Cell(std::string("v2 binary (mmap)"))
      .Cell(util::HumanBytes(file_bytes(bin_path)))
      .Cell(mmap_s, 4);
  io_table.PrintText(std::cout);
  std::printf("mmap load speedup over v1 text: %.1fx\n", speedup);

  const std::string json_path = bench::JsonOutPath(argc, argv, "BENCH_table11.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"table11_index\",\n"
       << "  \"v1_text_bytes\": " << file_bytes(text_path) << ",\n"
       << "  \"v2_binary_bytes\": " << file_bytes(bin_path) << ",\n"
       << "  \"load_v1_text_s\": " << text_s << ",\n"
       << "  \"load_v2_copy_s\": " << copy_s << ",\n"
       << "  \"load_v2_mmap_s\": " << mmap_s << ",\n"
       << "  \"mmap_speedup_over_text\": " << speedup << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  return 0;
}
