// Table 11: per-radius indexing details on the main network.
// Paper: as R_p grows, cluster count η falls (roughly geometrically), mean
// dominating-set size |Λ| and mean trajectory-list size |TL| grow, mean
// neighbor-list size |CL| first rises then falls, and build times stay
// practical with a U-shape at the extremes.
#include "bench_common.h"

#include "graph/spf/distance_backend.h"
#include "netclus/cluster_index.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Table 11", "Indexing details per cluster radius (gamma = 0.75)",
      "eta falls ~geometrically with R; |Lambda| and |TL| grow; |CL| rises "
      "then falls; build times practical");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  std::printf("network: %zu nodes, %zu trajectories\n\n", d.num_nodes(),
              d.num_trajectories());
  // Per-backend column: the same instance rebuilt on a CH distance oracle
  // (one contraction amortized over the whole radius sweep). The cluster
  // structure is bit-identical; only build_s changes.
  const std::shared_ptr<const graph::spf::DistanceBackend> ch =
      graph::spf::MakeBackend(graph::spf::BackendKind::kContractionHierarchies,
                              d.network.get());

  util::Table table({"R_km", "eta_clusters", "mean_Lambda", "mean_TL",
                     "mean_CL", "build_s", "build_s_ch", "memory"});
  double radius = util::GetEnvDouble("NETCLUS_T11_R0_M", 60.0);
  const int steps = static_cast<int>(util::GetEnvInt("NETCLUS_T11_STEPS", 9));
  for (int i = 0; i < steps; ++i, radius *= 1.75) {
    index::ClusterIndexConfig config;
    config.radius_m = radius;
    config.gamma = 0.75;
    const index::ClusterIndex instance =
        index::ClusterIndex::Build(*d.store, d.sites, config);
    const index::ClusterIndex instance_ch =
        index::ClusterIndex::Build(*d.store, d.sites, config, ch.get());
    NC_CHECK_EQ(instance_ch.num_clusters(), instance.num_clusters());
    table.Row()
        .Cell(radius / 1000.0, 4)
        .Cell(static_cast<uint64_t>(instance.num_clusters()))
        .Cell(instance.stats().mean_dominating_set_size, 2)
        .Cell(instance.stats().mean_tl_size, 2)
        .Cell(instance.stats().mean_cl_size, 2)
        .Cell(instance.stats().build_seconds, 2)
        .Cell(instance_ch.stats().build_seconds, 2)
        .Cell(util::HumanBytes(instance.MemoryBytes()));
  }
  table.PrintText(std::cout);
  return 0;
}
