// Serving throughput: sustained mixed read/write workload against
// NetClusServer (src/serve).
//
// Sweeps client (reader) threads × update stream intensity. Each cell
// boots a fresh server from the same built engine, splits a fixed query
// budget across the reader threads, and — in the mixed cells — streams
// trajectory add/remove batches through the update pipeline while the
// readers run. Reported per cell: wall time, QPS, latency percentiles,
// cache hit rate, and snapshots published.
//
// paper_shape: read throughput scales with reader threads (flat on a
// 1-core container) and degrades only mildly when updates stream in,
// because readers never block on the writer (snapshot isolation).
//
// Besides the stdout table, rows are written as JSON to BENCH_serve.json
// (override with NETCLUS_BENCH_JSON) so CI can track the perf trajectory.
#include "bench_common.h"

#include <atomic>
#include <fstream>
#include <thread>

#include "api/engine.h"
#include "serve/server.h"
#include "traj/trip_generator.h"

namespace {

using namespace netclus;

struct CellResult {
  uint32_t readers = 0;
  uint32_t update_batch = 0;  // ops per streamed batch (0 = read-only)
  size_t queries = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t snapshots = 0;
  uint64_t updates_applied = 0;
};

CellResult RunCell(const Engine& engine,
                   const std::vector<std::vector<graph::NodeId>>& update_pool,
                   uint32_t readers, uint32_t update_batch, size_t queries) {
  serve::ServerOptions options;
  options.updates.max_batch = 64;
  auto server = engine.Serve(options);

  // Spec for the q-th query of reader r. Spread over 40 τ values × 5 k
  // values so the read-scaling cells measure query execution, not just
  // cache-hit lookups (8 distinct specs against a 4096-entry cache would
  // turn the sweep into an LRU microbenchmark); repeats still occur, so
  // the cache-hit column stays meaningful.
  auto spec_for = [](uint32_t r, size_t q) {
    Engine::QuerySpec spec;
    const size_t mix = r * 131 + q;
    spec.k = 2 + static_cast<uint32_t>(mix % 5);
    spec.tau_m = 500.0 + 25.0 * static_cast<double>(mix % 40);
    return spec;
  };

  std::atomic<bool> readers_done{false};
  util::WallTimer timer;

  // The update stream: batches of adds (and a trailing remove per batch)
  // as long as any reader is still querying.
  std::thread writer;
  if (update_batch > 0) {
    writer = std::thread([&] {
      size_t cursor = 0;
      while (!readers_done.load(std::memory_order_acquire)) {
        std::vector<traj::TrajId> added;
        for (uint32_t i = 0; i < update_batch; ++i) {
          const auto& path = update_pool[cursor++ % update_pool.size()];
          const serve::UpdateTicket t = server->MutateAddTrajectory(path);
          if (t.accepted) added.push_back(t.traj);
        }
        if (!added.empty()) server->MutateRemoveTrajectory(added.front());
        server->Flush();
      }
    });
  }

  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (uint32_t r = 0; r < readers; ++r) {
    // Exact split: the first (queries % readers) readers take one extra,
    // so every cell serves the same total regardless of thread count.
    const size_t per_reader = queries / readers + (r < queries % readers);
    pool.emplace_back([&, r, per_reader] {
      for (size_t q = 0; q < per_reader; ++q) {
        (void)server->Submit(spec_for(r, q));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  // Stop the clock when the last reader finishes: the writer's final
  // batch drain is not read-path interference and must not bias the
  // mixed-cell QPS downward.
  const double wall = timer.Seconds();
  readers_done.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();
  server->Shutdown();

  const serve::ServerStats stats = server->stats();
  CellResult cell;
  cell.readers = readers;
  cell.update_batch = update_batch;
  cell.queries = stats.queries_served;
  cell.wall_s = wall;
  cell.qps = wall > 0.0 ? static_cast<double>(stats.queries_served) / wall : 0.0;
  cell.p50_ms = stats.latency_p50_ms;
  cell.p95_ms = stats.latency_p95_ms;
  cell.p99_ms = stats.latency_p99_ms;
  const uint64_t lookups = stats.cache.hits + stats.cache.misses;
  cell.cache_hit_rate =
      lookups > 0 ? static_cast<double>(stats.cache.hits) / lookups : 0.0;
  cell.snapshots = stats.updates.batches_published;  // publishes during the run
  cell.updates_applied = stats.updates.ops_applied;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netclus;
  bench::PrintHeader(
      "Serve", "Sustained mixed read/write serving throughput (src/serve)",
      "read QPS scales with reader threads and survives a live update "
      "stream; snapshot isolation keeps readers off the writer's path");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.15);

  // The server serves an Engine, so copy the dataset into one. The
  // network is copied (not moved): d.store keeps reading its own network
  // while the trajectories are transferred below.
  graph::RoadNetwork network = *d.network;
  tops::SiteSet sites = d.sites;
  Engine::Options engine_options;
  engine_options.index.tau_min_m = 400.0;
  engine_options.index.tau_max_m = 6000.0;
  Engine engine(std::move(network), std::move(sites), engine_options);
  for (traj::TrajId t = 0; t < d.store->total_count(); ++t) {
    if (d.store->is_alive(t)) {
      engine.AddTrajectory(d.store->trajectory(t).nodes());
    }
  }
  engine.BuildIndex();
  std::printf("corpus: %zu trajectories, %zu sites, %zu index instances\n",
              engine.store().live_count(), engine.sites().size(),
              engine.index().num_instances());

  // Pre-generate the update stream (excluded from timings).
  std::vector<std::vector<graph::NodeId>> update_pool;
  {
    util::Rng rng(515);
    while (update_pool.size() < 256) {
      const auto src = static_cast<graph::NodeId>(
          rng.UniformInt(engine.network().num_nodes()));
      const auto dst = static_cast<graph::NodeId>(
          rng.UniformInt(engine.network().num_nodes()));
      if (src == dst) continue;
      auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3,
                                       7000 + update_pool.size());
      if (path.size() >= 2) update_pool.push_back(std::move(path));
    }
  }

  const size_t queries = static_cast<size_t>(
      util::GetEnvInt("NETCLUS_SERVE_QUERIES", 256));
  std::vector<CellResult> cells;
  util::Table table({"readers", "update_batch", "queries", "wall_s", "qps",
                     "p50_ms", "p95_ms", "p99_ms", "cache_hit", "snapshots"});
  for (const uint32_t update_batch : {0u, 16u}) {
    for (const uint32_t readers : {1u, 2u, 4u, 8u}) {
      const CellResult cell =
          RunCell(engine, update_pool, readers, update_batch, queries);
      cells.push_back(cell);
      table.Row()
          .Cell(static_cast<uint64_t>(cell.readers))
          .Cell(static_cast<uint64_t>(cell.update_batch))
          .Cell(static_cast<uint64_t>(cell.queries))
          .Cell(cell.wall_s, 3)
          .Cell(cell.qps, 1)
          .Cell(cell.p50_ms, 2)
          .Cell(cell.p95_ms, 2)
          .Cell(cell.p99_ms, 2)
          .Cell(cell.cache_hit_rate, 2)
          .Cell(cell.snapshots);
    }
  }
  table.PrintText(std::cout);

  // JSON for the perf trajectory (one object per cell).
  const std::string json_path = bench::JsonOutPath(argc, argv, "BENCH_serve.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"serve_qps\",\n  \"rows\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    json << "    {\"readers\": " << c.readers
         << ", \"update_batch\": " << c.update_batch
         << ", \"queries\": " << c.queries
         << ", \"wall_s\": " << c.wall_s << ", \"qps\": " << c.qps
         << ", \"p50_ms\": " << c.p50_ms << ", \"p95_ms\": " << c.p95_ms
         << ", \"p99_ms\": " << c.p99_ms
         << ", \"cache_hit_rate\": " << c.cache_hit_rate
         << ", \"snapshots\": " << c.snapshots
         << ", \"updates_applied\": " << c.updates_applied << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());
  return json.good() ? 0 : 1;
}
