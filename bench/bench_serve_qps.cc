// Serving throughput: sustained mixed read/write workload against
// NetClusServer (src/serve).
//
// Sweeps client (reader) threads × update stream kind × delta-aware
// cache carryover. Each cell boots a fresh server from the same built
// engine, splits a fixed query budget across the reader threads, and —
// in the mixed cells — streams updates through the pipeline while the
// readers run:
//  * none — read-only baseline;
//  * traj — trajectory add/remove batches: every publish dirties every
//    index instance, so carryover has (correctly) nothing to carry;
//  * site — paced AddSite stream: a site add leaves most (instance, τ)
//    partitions untouched, so with carryover on the caches stay warm
//    across publishes (cache_hit > 0 and `carried` grows) while with it
//    off every publish resets them to cold (cache_hit ~ 0).
// Reported per cell: wall time, QPS, latency percentiles, cache hit
// rate, entries carried across publishes, and snapshots published.
//
// paper_shape: read throughput scales with reader threads (flat on a
// 1-core container) and degrades only mildly when updates stream in,
// because readers never block on the writer (snapshot isolation);
// carryover keeps the hit rate nonzero under a site-update stream.
//
// NETCLUS_CARRYOVER=0|1 restricts the carryover sweep to one setting
// (the CI serve leg runs both and uploads distinct JSONs); unset sweeps
// both. Besides the stdout table, rows are written as JSON to
// BENCH_serve.json (override with NETCLUS_BENCH_JSON) so CI can track
// the perf trajectory.
#include "bench_common.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include "api/engine.h"
#include "serve/server.h"
#include "traj/trip_generator.h"

namespace {

using namespace netclus;

struct CellResult {
  uint32_t readers = 0;
  std::string update_kind;  // none | traj | site
  int carryover = 1;
  uint32_t update_batch = 0;  // ops per streamed batch (0 = read-only)
  size_t queries = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t carried = 0;  // query+cover cache entries re-keyed across publishes
  uint64_t snapshots = 0;
  uint64_t updates_applied = 0;
};

CellResult RunCell(const Engine& engine,
                   const std::vector<std::vector<graph::NodeId>>& update_pool,
                   const std::vector<graph::NodeId>& site_pool,
                   uint32_t readers, const std::string& update_kind,
                   int carryover, size_t queries) {
  serve::ServerOptions options;
  options.updates.max_batch = 64;
  options.carryover = carryover;
  auto server = engine.Serve(options);

  // One site per publish: a site add dirties only the instances whose
  // cluster representative it displaces, so single-site publishes leave
  // most partitions clean — the carryover case. Batching several sites
  // per publish would union their dirt and mostly erase it.
  const uint32_t update_batch =
      update_kind == "traj" ? 16u : (update_kind == "site" ? 1u : 0u);

  // Spec for the q-th query of reader r. Spread over 40 τ values × 5 k
  // values so the read-scaling cells measure query execution, not just
  // cache-hit lookups (8 distinct specs against a 4096-entry cache would
  // turn the sweep into an LRU microbenchmark); repeats still occur, so
  // the cache-hit column stays meaningful.
  auto spec_for = [](uint32_t r, size_t q) {
    Engine::QuerySpec spec;
    const size_t mix = r * 131 + q;
    spec.k = 2 + static_cast<uint32_t>(mix % 5);
    spec.tau_m = 500.0 + 25.0 * static_cast<double>(mix % 40);
    return spec;
  };

  std::atomic<bool> readers_done{false};
  util::WallTimer timer;

  // The update stream, paced by Flush: trajectory batches (adds plus a
  // trailing remove) or site adds, as long as any reader is querying.
  std::thread writer;
  if (update_kind == "traj") {
    writer = std::thread([&] {
      size_t cursor = 0;
      while (!readers_done.load(std::memory_order_acquire)) {
        std::vector<traj::TrajId> added;
        for (uint32_t i = 0; i < update_batch; ++i) {
          const auto& path = update_pool[cursor++ % update_pool.size()];
          const serve::UpdateTicket t = server->MutateAddTrajectory(path);
          if (t.accepted) added.push_back(t.traj);
        }
        if (!added.empty()) server->MutateRemoveTrajectory(added.front());
        server->Flush();
      }
    });
  } else if (update_kind == "site") {
    writer = std::thread([&] {
      size_t cursor = 0;
      while (!readers_done.load(std::memory_order_acquire) &&
             cursor < site_pool.size()) {
        for (uint32_t i = 0; i < update_batch && cursor < site_pool.size();
             ++i) {
          server->MutateAddSite(site_pool[cursor++]);
        }
        server->Flush();
        // Pace the publishes: sites arrive far less often than queries.
        // The pace must also exceed typical query latency — carryover
        // re-keys entries from the superseded version only, so results
        // inserted for an already-buried version can never carry (or
        // hit) no matter what the delta says.
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    });
  }

  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (uint32_t r = 0; r < readers; ++r) {
    // Exact split: the first (queries % readers) readers take one extra,
    // so every cell serves the same total regardless of thread count.
    const size_t per_reader = queries / readers + (r < queries % readers);
    pool.emplace_back([&, r, per_reader] {
      for (size_t q = 0; q < per_reader; ++q) {
        (void)server->Submit(spec_for(r, q));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  // Stop the clock when the last reader finishes: the writer's final
  // batch drain is not read-path interference and must not bias the
  // mixed-cell QPS downward.
  const double wall = timer.Seconds();
  readers_done.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();
  server->Shutdown();

  const serve::ServerStats stats = server->stats();
  CellResult cell;
  cell.readers = readers;
  cell.update_kind = update_kind;
  cell.carryover = carryover;
  cell.update_batch = update_batch;
  cell.queries = stats.queries_served;
  cell.wall_s = wall;
  cell.qps = wall > 0.0 ? static_cast<double>(stats.queries_served) / wall : 0.0;
  cell.p50_ms = stats.latency_p50_ms;
  cell.p95_ms = stats.latency_p95_ms;
  cell.p99_ms = stats.latency_p99_ms;
  const uint64_t lookups = stats.cache.hits + stats.cache.misses;
  cell.cache_hit_rate =
      lookups > 0 ? static_cast<double>(stats.cache.hits) / lookups : 0.0;
  cell.carried = stats.cache.carried + stats.cover_cache.carried;
  cell.snapshots = stats.updates.batches_published;  // publishes during the run
  cell.updates_applied = stats.updates.ops_applied;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netclus;
  bench::PrintHeader(
      "Serve", "Sustained mixed read/write serving throughput (src/serve)",
      "read QPS scales with reader threads and survives a live update "
      "stream; snapshot isolation keeps readers off the writer's path, and "
      "delta-aware carryover keeps the caches warm across site publishes");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.15);

  // The server serves an Engine, so copy the dataset into one. The
  // network is copied (not moved): d.store keeps reading its own network
  // while the trajectories are transferred below.
  graph::RoadNetwork network = *d.network;
  // Sample ~70% of nodes as the initial candidate pool (the dataset's
  // default is all-nodes, which would leave the site update stream no
  // site-less node to claim).
  tops::SiteSet sites =
      tops::SiteSet::SampleNodes(network, (network.num_nodes() * 7) / 10, 42);
  Engine::Options engine_options;
  engine_options.index.tau_min_m = 400.0;
  engine_options.index.tau_max_m = 6000.0;
  Engine engine(std::move(network), std::move(sites), engine_options);
  for (traj::TrajId t = 0; t < d.store->total_count(); ++t) {
    if (d.store->is_alive(t)) {
      engine.AddTrajectory(d.store->trajectory(t).nodes());
    }
  }
  engine.BuildIndex();
  std::printf("corpus: %zu trajectories, %zu sites, %zu index instances\n",
              engine.store().live_count(), engine.sites().size(),
              engine.index().num_instances());

  // Pre-generate the trajectory update stream (excluded from timings).
  std::vector<std::vector<graph::NodeId>> update_pool;
  {
    util::Rng rng(515);
    while (update_pool.size() < 256) {
      const auto src = static_cast<graph::NodeId>(
          rng.UniformInt(engine.network().num_nodes()));
      const auto dst = static_cast<graph::NodeId>(
          rng.UniformInt(engine.network().num_nodes()));
      if (src == dst) continue;
      auto path = traj::RoutePerturbed(engine.network(), src, dst, 0.3,
                                       7000 + update_pool.size());
      if (path.size() >= 2) update_pool.push_back(std::move(path));
    }
  }
  // Site-less nodes the site stream can claim (each AddSite consumes one).
  std::vector<graph::NodeId> site_pool;
  for (graph::NodeId node = 0;
       node < static_cast<graph::NodeId>(engine.network().num_nodes());
       ++node) {
    if (engine.sites().SiteAtNode(node) == tops::kInvalidSite) {
      site_pool.push_back(node);
    }
  }

  const size_t queries = static_cast<size_t>(
      util::GetEnvInt("NETCLUS_SERVE_QUERIES", 256));
  // NETCLUS_CARRYOVER set → bench only that setting (the CI serve leg
  // runs the bench once per value); unset → sweep off and on.
  const int carryover_env = static_cast<int>(
      util::GetEnvInt("NETCLUS_CARRYOVER", -1));
  const std::vector<int> carryover_sweep =
      carryover_env < 0 ? std::vector<int>{0, 1}
                        : std::vector<int>{carryover_env != 0 ? 1 : 0};

  std::vector<CellResult> cells;
  util::Table table({"readers", "upd_kind", "carryover", "queries", "wall_s",
                     "qps", "p50_ms", "p95_ms", "p99_ms", "cache_hit",
                     "carried", "snapshots"});
  const auto run_row = [&](uint32_t readers, const std::string& kind,
                           int carryover) {
    const CellResult cell = RunCell(engine, update_pool, site_pool, readers,
                                    kind, carryover, queries);
    cells.push_back(cell);
    table.Row()
        .Cell(static_cast<uint64_t>(cell.readers))
        .Cell(cell.update_kind)
        .Cell(static_cast<uint64_t>(cell.carryover))
        .Cell(static_cast<uint64_t>(cell.queries))
        .Cell(cell.wall_s, 3)
        .Cell(cell.qps, 1)
        .Cell(cell.p50_ms, 2)
        .Cell(cell.p95_ms, 2)
        .Cell(cell.p99_ms, 2)
        .Cell(cell.cache_hit_rate, 2)
        .Cell(cell.carried)
        .Cell(cell.snapshots);
  };
  for (const uint32_t readers : {1u, 2u, 4u, 8u}) {
    // Read-only baseline: carryover has no publishes to act on.
    run_row(readers, "none", 1);
  }
  for (const std::string kind : {"traj", "site"}) {
    for (const int carryover : carryover_sweep) {
      for (const uint32_t readers : {1u, 2u, 4u, 8u}) {
        run_row(readers, kind, carryover);
      }
    }
  }
  table.PrintText(std::cout);

  // Headline: the carryover effect at the widest site-update cell.
  double site_hit_on = -1.0, site_hit_off = -1.0;
  for (const CellResult& c : cells) {
    if (c.update_kind != "site" || c.readers != 8) continue;
    (c.carryover ? site_hit_on : site_hit_off) = c.cache_hit_rate;
  }
  if (site_hit_on >= 0.0 && site_hit_off >= 0.0) {
    std::printf(
        "\ncache hit rate under the site-update stream at 8 readers: "
        "%.2f with carryover vs %.2f without\n",
        site_hit_on, site_hit_off);
  }

  // JSON for the perf trajectory (one object per cell).
  const std::string json_path = bench::JsonOutPath(argc, argv, "BENCH_serve.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"serve_qps\",\n  \"rows\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    json << "    {\"readers\": " << c.readers
         << ", \"update_kind\": \"" << c.update_kind << "\""
         << ", \"carryover\": " << c.carryover
         << ", \"update_batch\": " << c.update_batch
         << ", \"queries\": " << c.queries
         << ", \"wall_s\": " << c.wall_s << ", \"qps\": " << c.qps
         << ", \"p50_ms\": " << c.p50_ms << ", \"p95_ms\": " << c.p95_ms
         << ", \"p99_ms\": " << c.p99_ms
         << ", \"cache_hit_rate\": " << c.cache_hit_rate
         << ", \"carried\": " << c.carried
         << ", \"snapshots\": " << c.snapshots
         << ", \"updates_applied\": " << c.updates_applied << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());
  return json.good() ? 0 : 1;
}
