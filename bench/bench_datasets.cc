// Table 6: dataset summary. Prints the catalog at the bench scale so every
// other bench's workload is documented in the output logs.
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader("Table 6", "Summary of datasets",
                     "one real-analogue (Beijing) + one small sample + three "
                     "topology-controlled synthetic cities");
  util::Table table(
      {"dataset", "paper_counterpart", "nodes", "edges", "trajectories",
       "sites", "mean_traj_nodes", "mean_traj_km"});
  const struct {
    const char* name;
    const char* counterpart;
    double base_scale;
  } rows[] = {
      {"beijing-small", "Beijing-Small (1k traj / 50 sites)", 1.0},
      {"beijing-lite", "Beijing (123k traj / 269k sites)", 0.20},
      {"newyork", "New York (MNTG synthetic)", 0.25},
      {"atlanta", "Atlanta (MNTG synthetic)", 0.25},
      {"bangalore", "Bangalore (MNTG synthetic)", 0.25},
  };
  for (const auto& row : rows) {
    data::Dataset d = bench::MakeDataset(row.name, row.base_scale);
    table.Row()
        .Cell(row.name)
        .Cell(row.counterpart)
        .Cell(static_cast<uint64_t>(d.num_nodes()))
        .Cell(static_cast<uint64_t>(d.network->num_edges()))
        .Cell(static_cast<uint64_t>(d.num_trajectories()))
        .Cell(static_cast<uint64_t>(d.num_sites()))
        .Cell(d.store->MeanNodeCount(), 1)
        .Cell(d.store->MeanLengthMeters() / 1000.0, 2);
  }
  table.PrintText(std::cout);
  return 0;
}
