// Fig. 7b: TOPS-CAPACITY under normally distributed site capacities.
// Paper: utility rises with mean capacity (mean swept from 0.1% to 100% of
// the trajectory count, stddev 10% of the mean); NetClus matches INCG.
#include "bench_common.h"

#include "tops/variants.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Fig. 7b", "TOPS-CAPACITY: utility vs mean site capacity",
      "utility rises with mean capacity toward the unconstrained TOPS "
      "level; NetClus has almost the same utility as INCG");

  data::Dataset d = bench::MakeDataset("beijing-lite", 0.20);
  const double tau = util::GetEnvDouble("NETCLUS_TAU_M", 800.0);
  const uint32_t k = static_cast<uint32_t>(util::GetEnvInt("NETCLUS_K", 5));
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const index::MultiIndex index = bench::BuildIndex(d);
  const index::QueryEngine engine(&index, d.store.get(), &d.sites);
  const size_t m = d.num_trajectories();

  tops::CoverageConfig cc;
  cc.tau_m = tau;
  const tops::CoverageIndex coverage =
      tops::CoverageIndex::Build(*d.store, d.sites, cc);

  util::Table table({"mean_cap_%of_m", "INCG_%", "NetClus_%"});
  for (const double cap_percent : {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0}) {
    const double mean_cap = cap_percent / 100.0 * static_cast<double>(m);
    const std::vector<double> caps = tops::DrawNormalCapacities(
        d.sites.size(), mean_cap, 0.1 * mean_cap, 77);
    tops::CapacityConfig capacity_config;
    capacity_config.k = k;
    capacity_config.site_capacities = caps;
    const tops::CapacityResult incg =
        CapacityGreedy(coverage, psi, capacity_config);

    index::QueryConfig query;
    query.k = k;
    query.tau_m = tau;
    const index::QueryResult netclus = engine.TopsCapacity(psi, query, caps);
    // Capacity semantics cap the served count, so score the clustered
    // answer by its own (capped) utility rather than unconstrained
    // re-evaluation.
    table.Row()
        .Cell(cap_percent, 1)
        .Cell(bench::Percent(incg.selection.utility, m), 2)
        .Cell(bench::Percent(netclus.selection.utility, m), 2);
  }
  table.PrintText(std::cout);
  return 0;
}
