// Fig. 12: effect of trajectory length (k = 5, τ = 0.8 km).
// Paper: longer trajectories pass more candidate sites, so they are easier
// to cover (higher utility %) and cost more marginal-utility updates
// (higher runtime). Length classes are expressed as fractions of the
// network diameter because the synthetic city is smaller than Beijing.
#include "bench_common.h"

int main() {
  using namespace netclus;
  bench::PrintHeader(
      "Fig. 12", "Effect of trajectory length (per-length-class corpora)",
      "longer trajectories -> higher utility % and higher runtime");

  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const double tau = util::GetEnvDouble("NETCLUS_TAU_M", 800.0);
  const uint32_t k = static_cast<uint32_t>(util::GetEnvInt("NETCLUS_K", 5));
  const uint32_t per_class = static_cast<uint32_t>(
      util::GetEnvInt("NETCLUS_FIG12_TRAJS", 2000));

  // Base dataset provides the network; each class gets a fresh corpus.
  data::Dataset base = bench::MakeDataset("beijing-lite", 0.20);
  const geo::BBox bounds = base.network->Bounds();
  const double diameter = std::max(bounds.Width(), bounds.Height());

  util::Table table({"length_class_km", "trajectories", "INCG_%", "NetClus_%",
                     "INCG_s", "NetClus_ms"});
  const double class_fracs[][2] = {{0.30, 0.40}, {0.45, 0.55},
                                   {0.60, 0.70}, {0.75, 0.90}};
  for (const auto& frac : class_fracs) {
    data::Dataset d;
    d.name = base.name;
    d.network = std::make_unique<graph::RoadNetwork>(*base.network);
    d.store = std::make_unique<traj::TrajectoryStore>(d.network.get());
    d.sites = base.sites;
    const double lo = frac[0] * diameter;
    const double hi = frac[1] * diameter;
    data::AddTrajectoriesWithLength(&d, per_class, lo, hi,
                                    static_cast<uint64_t>(lo));
    if (d.store->live_count() == 0) continue;
    const index::MultiIndex index = bench::BuildIndex(d);
    const bench::ExactRun incg = bench::RunExactGreedy(d, k, tau, psi, false);
    const bench::NetClusRun netclus =
        bench::RunNetClus(d, index, k, tau, psi, false);
    const size_t m = d.num_trajectories();
    table.Row()
        .Cell(util::StrFormat("%.1f-%.1f", lo / 1000.0, hi / 1000.0))
        .Cell(static_cast<uint64_t>(m))
        .Cell(bench::Percent(incg.utility, m), 1)
        .Cell(bench::Percent(netclus.utility, m), 1)
        .Cell(incg.total_seconds, 2)
        .Cell(netclus.total_seconds * 1e3, 1);
  }
  table.PrintText(std::cout);
  return 0;
}
