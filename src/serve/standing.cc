#include "serve/standing.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace netclus::serve {

namespace {

/// Membership diff of two top-k site lists (selection order is part of
/// the result but not of the subscription contract — a pure reordering
/// with identical membership is not a change worth waking a subscriber
/// for; the full result rides along in the update anyway).
void DiffSites(const std::vector<tops::SiteId>& before,
               const std::vector<tops::SiteId>& after,
               std::vector<tops::SiteId>* added,
               std::vector<tops::SiteId>* removed) {
  std::vector<tops::SiteId> a = before;
  std::vector<tops::SiteId> b = after;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(*added));
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(*removed));
}

}  // namespace

uint64_t StandingQueryRegistry::Register(Engine::QuerySpec spec,
                                         size_t instance,
                                         uint64_t max_version_lag,
                                         StandingCallback callback,
                                         uint64_t version,
                                         const Evaluator& evaluate) {
  const nc::RecursiveMutexLock lock(mu_);
  const uint64_t id = next_id_++;
  Entry& entry = entries_[id];
  entry.spec = std::move(spec);
  entry.instance = instance;
  entry.max_version_lag = max_version_lag;
  entry.callback = std::move(callback);
  ++registered_total_;
  // Initial delivery: the subscriber always gets a baseline result to
  // diff subsequent pushes against.
  EvaluateLocked(id, entry, version, /*first=*/true, evaluate);
  return id;
}

bool StandingQueryRegistry::Unregister(uint64_t id) {
  const nc::RecursiveMutexLock lock(mu_);
  return entries_.erase(id) != 0;
}

void StandingQueryRegistry::OnPublish(uint64_t new_version,
                                      const DeltaSummary& delta,
                                      const Evaluator& evaluate) {
  const nc::RecursiveMutexLock lock(mu_);
  // Snapshot the ids first: a callback may Unregister itself (or register
  // a new query, which must not be evaluated as part of this publish).
  std::vector<uint64_t> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());  // deterministic evaluation order
  for (const uint64_t id : ids) {
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // unregistered by a callback
    Entry& entry = it->second;
    if (!delta.IsDirty(entry.instance) && entry.pending_dirty == 0) {
      // Clean instance, nothing pending: the answer at new_version is
      // bit-identical to the last evaluation — advance without work.
      entry.last_eval_version = new_version;
      ++skipped_clean_;
      continue;
    }
    if (delta.IsDirty(entry.instance)) ++entry.pending_dirty;
    if (entry.pending_dirty <= entry.max_version_lag) {
      // Within the staleness budget: coalesce into a later publish.
      ++deferred_;
      continue;
    }
    EvaluateLocked(id, entry, new_version, /*first=*/false, evaluate);
  }
}

void StandingQueryRegistry::EvaluateLocked(uint64_t id, Entry& entry,
                                           uint64_t version, bool first,
                                           const Evaluator& evaluate) {
  StandingUpdate update;
  update.query_id = id;
  update.version = version;
  update.first = first;
  update.result = evaluate(entry.spec);
  ++evaluations_;
  // The first push is the baseline: no previous result to diff against,
  // so added/removed stay empty (see StandingUpdate).
  if (!first) {
    DiffSites(entry.last_sites, update.result.selection.sites, &update.added,
              &update.removed);
  }
  entry.last_eval_version = version;
  entry.pending_dirty = 0;
  if (!first && update.added.empty() && update.removed.empty()) {
    // Same membership — the re-evaluation confirmed the answer; nothing
    // to wake the subscriber for.
    return;
  }
  entry.last_sites = update.result.selection.sites;
  ++pushes_;
  // Invoke through a copy: the callback may Unregister(id), erasing
  // `entry` (and with it the stored std::function) mid-call.
  const StandingCallback callback = entry.callback;
  callback(update);
}

size_t StandingQueryRegistry::size() const {
  const nc::RecursiveMutexLock lock(mu_);
  return entries_.size();
}

StandingQueryRegistry::Stats StandingQueryRegistry::stats() const {
  const nc::RecursiveMutexLock lock(mu_);
  Stats s;
  s.registered_total = registered_total_;
  s.active = entries_.size();
  s.evaluations = evaluations_;
  s.pushes = pushes_;
  s.skipped_clean = skipped_clean_;
  s.deferred = deferred_;
  return s;
}

}  // namespace netclus::serve
