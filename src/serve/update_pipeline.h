// Single-writer update pipeline (dynamic updates, Sec. 6, as a service).
//
// Clients enqueue AddTrajectory / RemoveTrajectory / AddSite operations;
// a dedicated writer thread drains the queue in FIFO order, folds up to
// `max_batch` operations into one copy-on-write application — clone the
// published store / sites / index, apply the paper's incremental routines
// to the clones — and publishes the result as the next IndexSnapshot.
// Readers keep querying the previous snapshot throughout; they observe a
// batch all-or-nothing, never an intermediate state.
//
// Because the writer is single and FIFO, trajectory ids are assigned
// deterministically (the store allocates them sequentially), so Enqueue
// can return the id an AddTrajectory *will* receive before the batch is
// applied — callers can issue a RemoveTrajectory for it immediately and
// the pipeline will sequence the two correctly.
#ifndef NETCLUS_SERVE_UPDATE_PIPELINE_H_
#define NETCLUS_SERVE_UPDATE_PIPELINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "serve/delta.h"
#include "serve/snapshot.h"
#include "util/thread_annotations.h"

namespace netclus::serve {

/// One queued mutation.
struct UpdateOp {
  enum class Kind : uint8_t {
    kAddTrajectory,     ///< `nodes` is the map-matched node sequence
    kRemoveTrajectory,  ///< `traj` is the id to tombstone
    kAddSite,           ///< `node` hosts the new candidate site
  };

  static UpdateOp AddTrajectory(std::vector<graph::NodeId> nodes);
  static UpdateOp RemoveTrajectory(traj::TrajId traj);
  static UpdateOp AddSite(graph::NodeId node);

  Kind kind = Kind::kAddTrajectory;
  std::vector<graph::NodeId> nodes;
  traj::TrajId traj = traj::kInvalidTraj;
  graph::NodeId node = graph::kInvalidNode;
};

/// Receipt for an enqueued op.
struct UpdateTicket {
  /// False when the pipeline is shut down, the queue is at max_queue
  /// (backpressure), or the op was rejected up front (an empty
  /// trajectory, or any node outside the network).
  bool accepted = false;
  /// FIFO position (1-based) among accepted ops; Flush()/WaitFor use it.
  uint64_t sequence = 0;
  /// For kAddTrajectory: the trajectory id the store will assign.
  traj::TrajId traj = traj::kInvalidTraj;
};

class UpdatePipeline {
 public:
  struct Options {
    /// Max operations folded into one published snapshot. Larger batches
    /// amortize the O(corpus + index) copy-on-write cost over more ops.
    size_t max_batch = 256;
    /// Backpressure: Enqueue rejects (accepted = false) once this many
    /// ops are pending. Every batch pays a full copy-on-write clone, so
    /// an unbounded queue would let a fast client outrun the writer and
    /// grow memory without limit.
    size_t max_queue = 65536;
    /// Invoked on the writer thread immediately after each Publish, with
    /// the superseded and new version numbers and the batch's dirtiness
    /// summary (see delta.h). The new version is already visible to
    /// readers when this runs; the hook must not call back into the
    /// pipeline (it runs on the writer, so Flush would deadlock). The
    /// serving layer uses it for cache carryover and standing queries.
    std::function<void(uint64_t old_version, uint64_t new_version,
                       const DeltaSummary& delta)>
        on_publish;
  };

  struct Stats {
    uint64_t ops_enqueued = 0;
    uint64_t ops_applied = 0;
    uint64_t ops_rejected = 0;       ///< rejected at Enqueue
    uint64_t batches_published = 0;
    double apply_seconds = 0.0;      ///< total clone+apply+publish time
  };

  /// `registry` must outlive the pipeline and already hold an initial
  /// snapshot (the pipeline clones from whatever is current).
  UpdatePipeline(SnapshotRegistry* registry, Options options);
  ~UpdatePipeline();

  UpdatePipeline(const UpdatePipeline&) = delete;
  UpdatePipeline& operator=(const UpdatePipeline&) = delete;

  /// Queues an op; returns immediately. Thread-safe.
  UpdateTicket Enqueue(UpdateOp op) EXCLUDES(mu_);

  /// Blocks until every op accepted before the call has been applied and
  /// its snapshot published.
  void Flush() EXCLUDES(mu_);

  /// Blocks until the op with the given ticket has been published (no-op
  /// for rejected tickets).
  void WaitFor(const UpdateTicket& ticket) EXCLUDES(mu_);

  /// Drains the queue, publishes the final snapshot, and joins the writer
  /// thread. Ops enqueued after Shutdown are rejected. Idempotent.
  void Shutdown() EXCLUDES(mu_);

  Stats stats() const EXCLUDES(mu_);

  /// Ops accepted but not yet applied — the pipeline's backlog gauge.
  size_t QueueDepth() const EXCLUDES(mu_) {
    const nc::MutexLock lock(mu_);
    return queue_.size();
  }

 private:
  void WriterLoop() EXCLUDES(mu_);
  void ApplyBatch(std::vector<UpdateOp> batch) EXCLUDES(mu_);

  SnapshotRegistry* registry_;
  Options options_;
  /// The network all snapshot versions share; Enqueue validates node ids
  /// against it so a client-supplied id can never abort the writer.
  const graph::RoadNetwork* network_;

  mutable nc::Mutex mu_;
  nc::CondVar queue_cv_;    ///< writer waits for work
  nc::CondVar applied_cv_;  ///< Flush/WaitFor wait for progress
  std::deque<UpdateOp> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Writer joined; Shutdown's completion signal.
  bool drained_ GUARDED_BY(mu_) = false;
  /// Sequence for the next accepted op.
  uint64_t next_sequence_ GUARDED_BY(mu_) = 1;
  /// Highest sequence published.
  uint64_t applied_sequence_ GUARDED_BY(mu_) = 0;
  /// Id the next AddTrajectory will get.
  traj::TrajId next_traj_id_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);

  std::thread writer_ GUARDED_BY(mu_);
};

}  // namespace netclus::serve

#endif  // NETCLUS_SERVE_UPDATE_PIPELINE_H_
