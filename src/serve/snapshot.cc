#include "serve/snapshot.h"

#include <utility>

#include "util/logging.h"

namespace netclus::serve {

IndexSnapshot::IndexSnapshot(uint64_t version,
                             std::shared_ptr<const graph::RoadNetwork> network,
                             std::shared_ptr<const traj::TrajectoryStore> store,
                             std::shared_ptr<const tops::SiteSet> sites,
                             std::shared_ptr<const index::MultiIndex> index)
    : version_(version),
      network_(std::move(network)),
      store_(std::move(store)),
      sites_(std::move(sites)),
      index_(std::move(index)),
      query_(index_.get(), store_.get(), sites_.get()) {
  NC_CHECK(network_ != nullptr);
  NC_CHECK(store_ != nullptr);
  NC_CHECK(sites_ != nullptr);
  NC_CHECK(index_ != nullptr);
  NC_CHECK_EQ(&store_->network(), network_.get());
}

SnapshotRegistry::SnapshotRegistry(SnapshotPtr initial) {
  if (initial != nullptr) Publish(std::move(initial));
}

SnapshotPtr SnapshotRegistry::Acquire() const {
  const nc::MutexLock lock(mu_);
  return current_;
}

SnapshotPtr SnapshotRegistry::AcquireVersion(uint64_t version) const {
  const nc::MutexLock lock(mu_);
  if (current_ != nullptr && current_->version() == version) return current_;
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if ((*it)->version() == version) return *it;
  }
  return nullptr;
}

uint64_t SnapshotRegistry::current_version() const {
  const nc::MutexLock lock(mu_);
  return current_ == nullptr ? 0 : current_->version();
}

void SnapshotRegistry::Publish(SnapshotPtr next) {
  NC_CHECK(next != nullptr);
  const nc::MutexLock lock(mu_);
  if (current_ != nullptr) {
    NC_CHECK_GT(next->version(), current_->version())
        << "snapshot versions must be monotonic";
    history_.push_back(std::move(current_));
    while (history_.size() > history_limit_) history_.pop_front();
  }
  current_ = std::move(next);
}

void SnapshotRegistry::set_history_limit(size_t limit) {
  const nc::MutexLock lock(mu_);
  history_limit_ = limit;
  while (history_.size() > history_limit_) history_.pop_front();
}

}  // namespace netclus::serve
