// Per-publish dirtiness summary for delta-aware cache carryover.
//
// A publish replaces the whole snapshot, but Sec. 6's incremental update
// routines touch far less than the whole index. A cover (exec::BuiltCover)
// for (instance p, τ) is a pure function of instance p's cluster records:
// the TL entries d(T, c), the CL entries d(c, c), each cluster's
// representative r_i and d(c_i, r_i). So a publish leaves a partition's
// cover byte-equal exactly when it leaves instance p's records untouched:
//
//  * AddTrajectory appends TL postings to every instance (the new
//    trajectory's crossed clusters exist at every resolution), so a
//    trajectory add dirties ALL instances. No τ-level refinement helps:
//    a crossed cluster's d(T, c) ≤ 4R_p < τ for every τ instance p
//    serves, so the new trajectory enters every cover at that instance.
//  * RemoveTrajectory of a live id tombstones TL postings in every
//    instance — all dirty. Removing an id that is not alive is a
//    documented store/index no-op — nothing dirty.
//  * AddSite touches exactly one cluster per instance (the cluster of the
//    hosting node) and changes that instance's covers only when the
//    cluster's representative election changes: covers record only
//    (representative, rep_rt_m) per cluster, never the member-site list.
//    The pipeline compares (representative, rep_rt_m) before/after the
//    apply and dirties just the instances where they moved.
//
// Query results inherit the same guarantee: the solver's candidate set is
// the cover's representative list, existing services map through
// cluster_of (unchanged when the instance is clean), and a strictly
// larger SiteSet only relaxes validation. An untouched instance therefore
// answers bit-identically at both versions — which is what lets the
// caches re-key entries instead of rebuilding them (CarryForward), and
// what the differential test in test_serve pins.
#ifndef NETCLUS_SERVE_DELTA_H_
#define NETCLUS_SERVE_DELTA_H_

#include <cstdint>
#include <vector>

namespace netclus::serve {

/// What one published batch touched, per NetClus resolution instance.
/// Instance p owns the τ-partition [4R_p, 4R_p(1+γ)); "instance dirty"
/// and "τ-partition touched" are the same statement.
struct DeltaSummary {
  /// dirty[p] == true → instance p's cluster records changed; covers and
  /// cached results for any τ resolving to p must not carry forward.
  std::vector<bool> dirty;

  // Batch composition, for metrics and the slow-path explanation.
  uint64_t traj_adds = 0;
  uint64_t traj_removes = 0;  ///< effective removes (id was alive)
  uint64_t noop_removes = 0;  ///< removes of dead/unknown ids (no effect)
  uint64_t site_adds = 0;
  uint64_t rep_changes = 0;  ///< (instance, cluster) representative moves

  explicit DeltaSummary(size_t num_instances = 0) : dirty(num_instances) {}

  void MarkAllDirty() { dirty.assign(dirty.size(), true); }
  void MarkInstanceDirty(size_t p) {
    if (p < dirty.size()) dirty[p] = true;
  }

  /// Conservative: an instance outside the tracked range reads dirty, so
  /// a summary sized for an older index never carries a newer partition.
  bool IsDirty(size_t p) const { return p >= dirty.size() || dirty[p]; }

  bool AllClean() const {
    for (bool d : dirty) {
      if (d) return false;
    }
    return true;
  }

  size_t DirtyCount() const {
    size_t n = 0;
    for (bool d : dirty) n += d ? 1 : 0;
    return n;
  }
};

}  // namespace netclus::serve

#endif  // NETCLUS_SERVE_DELTA_H_
