#include "serve/query_cache.h"

#include <algorithm>
#include <memory>

#include "exec/planner.h"
#include "util/logging.h"
#include "util/rng.h"

namespace netclus::serve {

size_t QueryKeyHash::operator()(const QueryKey& key) const {
  return static_cast<size_t>(
      util::SplitMix64(util::SplitMix64(key.version) ^ key.plan.Fingerprint()));
}

Engine::QuerySpec CanonicalizeSpec(const Engine::QuerySpec& spec) {
  Engine::QuerySpec canon = spec;
  std::sort(canon.existing_services.begin(), canon.existing_services.end());
  canon.existing_services.erase(
      std::unique(canon.existing_services.begin(),
                  canon.existing_services.end()),
      canon.existing_services.end());
  return canon;
}

QueryKey CanonicalQueryKey(uint64_t version, const Engine::QuerySpec& spec,
                           size_t instance) {
  QueryKey key;
  key.version = version;
  // Derive through the same spec → config → request chain the execution
  // path uses, so key and execution cannot diverge on a field.
  key.plan = exec::CanonicalPlanKey(
      exec::RequestFromConfig(exec::QueryVariant::kTops, spec.psi,
                              spec.ToConfig(/*threads=*/0)),
      instance);
  return key;
}

QueryCache::QueryCache(Options options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  // A tiny budget spread over many shards would round each shard up to
  // one entry and overshoot the total; shrink the shard count instead so
  // Σ per-shard capacity never exceeds Options::capacity.
  if (options_.capacity > 0 && options_.shards > options_.capacity) {
    options_.shards = options_.capacity;
  }
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ =
      options_.capacity == 0 ? 0 : options_.capacity / options_.shards;
}

QueryCache::Shard& QueryCache::ShardFor(const QueryKey& key) {
  // Shard on the plan fingerprint only, never the version: CarryForward
  // re-keys entries to the next version in place, which must not move
  // them across shards (the map hash still covers the full key).
  return *shards_[static_cast<size_t>(key.plan.Fingerprint()) %
                  shards_.size()];
}

std::optional<index::QueryResult> QueryCache::Lookup(const QueryKey& key) {
  if (!enabled()) return std::nullopt;  // no phantom miss counts
  Shard& shard = ShardFor(key);
  const nc::MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

std::optional<index::QueryResult> QueryCache::LookupStale(
    const QueryKey& key, uint64_t max_lag, uint64_t* served_version) {
  if (!enabled()) return std::nullopt;
  QueryKey probe = key;
  for (uint64_t lag = 0; lag <= max_lag && probe.version >= 1; ++lag) {
    Shard& shard = ShardFor(probe);
    {
      const nc::MutexLock lock(shard.mu);
      auto it = shard.map.find(probe);
      if (it != shard.map.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        // A find at lag 0 served the FRESH version — it is an ordinary
        // hit, not a stale serve; counting it as stale would inflate
        // netclus_query_cache_stale_hits_total on every backpressure
        // probe that happened to be cache-warm.
        if (lag == 0) {
          hits_.fetch_add(1, std::memory_order_relaxed);
        } else {
          stale_hits_.fetch_add(1, std::memory_order_relaxed);
        }
        if (served_version != nullptr) *served_version = probe.version;
        return it->second->second;
      }
    }
    --probe.version;
  }
  // The whole ladder failed: one miss for the one resolved probe (these
  // used to be invisible, understating miss pressure under backpressure).
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void QueryCache::Insert(const QueryKey& key, const index::QueryResult& result) {
  if (!enabled()) return;
  Shard& shard = ShardFor(key);
  const nc::MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = result;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, result);
  shard.map.emplace(key, shard.lru.begin());
  entries_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
}

size_t QueryCache::CarryForward(uint64_t old_version, uint64_t new_version,
                                const DeltaSummary& delta) {
  if (!enabled() || new_version <= old_version) return 0;
  size_t carried = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const nc::MutexLock lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
      if (it->first.version != old_version) continue;
      if (delta.IsDirty(static_cast<size_t>(it->first.plan.instance))) {
        continue;
      }
      const QueryKey fresh{new_version, it->first.plan};
      if (shard.map.find(fresh) != shard.map.end()) continue;
      shard.map.erase(it->first);
      it->first.version = new_version;
      shard.map.emplace(fresh, it);
      ++carried;
    }
  }
  carried_.fetch_add(carried, std::memory_order_relaxed);
  return carried;
}

void QueryCache::Clear() {
  for (auto& shard : shards_) {
    const nc::MutexLock lock(shard->mu);
    entries_.fetch_sub(shard->lru.size(), std::memory_order_relaxed);
    shard->map.clear();
    shard->lru.clear();
  }
}

QueryCache::Stats QueryCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.stale_hits = stale_hits_.load(std::memory_order_relaxed);
  s.carried = carried_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace netclus::serve
