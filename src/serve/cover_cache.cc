#include "serve/cover_cache.h"

#include "util/flags.h"
#include "util/rng.h"

namespace netclus::serve {

size_t CoverCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = util::SplitMix64(key.version);
  h = util::SplitMix64(h ^ exec::CoverKeyHash()(key.cover));
  return static_cast<size_t>(h);
}

CoverCache::CoverCache(Options options) : options_(options) {
  if (options_.respect_env &&
      !util::GetEnvBool("NETCLUS_COVER_CACHE", true)) {
    options_.capacity = 0;
  }
  if (options_.shards == 0) options_.shards = 1;
  if (options_.capacity > 0 && options_.shards > options_.capacity) {
    options_.shards = options_.capacity;
  }
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ =
      options_.capacity == 0 ? 0 : options_.capacity / options_.shards;
}

CoverCache::Shard& CoverCache::ShardFor(const Key& key) {
  return *shards_[KeyHash()(key) % shards_.size()];
}

void CoverCache::EvictLocked(Shard& shard) {
  while (shard.lru.size() > per_shard_capacity_) {
    const Entry& tail = shard.lru.back().second;
    resident_bytes_.fetch_sub(tail.bytes, std::memory_order_relaxed);
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
}

exec::CoverPtr CoverCache::GetOrBuild(
    uint64_t version, const exec::CoverKey& cover_key,
    const std::function<exec::CoverPtr()>& build, bool* reused) {
  if (!enabled()) {
    *reused = false;
    return build();
  }
  const Key key{version, cover_key};
  Shard& shard = ShardFor(key);
  std::promise<exec::CoverPtr> promise;
  std::shared_future<exec::CoverPtr> future;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      future = it->second->second.future;
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      builder = true;
      Entry entry;
      entry.future = promise.get_future().share();
      future = entry.future;
      shard.lru.emplace_front(key, std::move(entry));
      shard.map.emplace(key, shard.lru.begin());
      entries_.fetch_add(1, std::memory_order_relaxed);
      misses_.fetch_add(1, std::memory_order_relaxed);
      EvictLocked(shard);
    }
  }
  if (!builder) {
    // Rendezvous on the (possibly in-flight) build; a hit on an entry
    // still building blocks here instead of duplicating the work.
    *reused = true;
    return future.get();
  }
  // Build outside the shard lock — other keys stay fully concurrent.
  exec::CoverPtr cover;
  try {
    cover = build();
  } catch (...) {
    // Drop the dead entry so the key is rebuilt next time (a transient
    // failure must not poison (version, instance, τ) until eviction),
    // and hand waiters the exception instead of a broken promise.
    {
      const std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end() && it->second->second.bytes == 0) {
        shard.lru.erase(it->second);
        shard.map.erase(it);
        entries_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  promise.set_value(cover);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second->second.bytes == 0) {
      it->second->second.bytes = cover->bytes;
      resident_bytes_.fetch_add(cover->bytes, std::memory_order_relaxed);
    }
  }
  *reused = false;
  return cover;
}

exec::CoverPtr CoverCache::TryGet(uint64_t version,
                                  const exec::CoverKey& cover_key) {
  if (!enabled()) return nullptr;
  const Key key{version, cover_key};
  Shard& shard = ShardFor(key);
  std::shared_future<exec::CoverPtr> future;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return nullptr;
    // bytes != 0 marks a completed build; an in-flight entry would make
    // future.get() block, which this probe must never do.
    if (it->second->second.bytes == 0) return nullptr;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    future = it->second->second.future;
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return future.get();  // ready: completed builds resolve immediately
}

exec::CoverPtr CoverCache::TryGetStale(uint64_t version,
                                       const exec::CoverKey& cover_key,
                                       uint64_t max_lag,
                                       uint64_t* served_version) {
  for (uint64_t lag = 0; lag <= max_lag && version >= lag + 1; ++lag) {
    exec::CoverPtr cover = TryGet(version - lag, cover_key);
    if (cover != nullptr) {
      if (served_version != nullptr) *served_version = version - lag;
      return cover;
    }
  }
  return nullptr;
}

void CoverCache::Clear() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->lru) {
      resident_bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
    }
    entries_.fetch_sub(shard->lru.size(), std::memory_order_relaxed);
    shard->map.clear();
    shard->lru.clear();
  }
}

CoverCache::Stats CoverCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace netclus::serve
