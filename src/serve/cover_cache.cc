#include "serve/cover_cache.h"

#include "util/flags.h"
#include "util/rng.h"

namespace netclus::serve {

size_t CoverCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = util::SplitMix64(key.version);
  h = util::SplitMix64(h ^ exec::CoverKeyHash()(key.cover));
  return static_cast<size_t>(h);
}

CoverCache::CoverCache(Options options) : options_(options) {
  if (options_.respect_env &&
      !util::GetEnvBool("NETCLUS_COVER_CACHE", true)) {
    options_.capacity = 0;
  }
  if (options_.shards == 0) options_.shards = 1;
  if (options_.capacity > 0 && options_.shards > options_.capacity) {
    options_.shards = options_.capacity;
  }
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ =
      options_.capacity == 0 ? 0 : options_.capacity / options_.shards;
}

CoverCache::Shard& CoverCache::ShardFor(const Key& key) {
  // Shard on the cover key only, never the version: CarryForward re-keys
  // entries to the next version in place, which must not move them to a
  // different shard (the map hash still covers the full key).
  return *shards_[exec::CoverKeyHash()(key.cover) % shards_.size()];
}

void CoverCache::EvictLocked(Shard& shard) {
  // Walk from the LRU tail, evicting completed entries only. Evicting an
  // in-flight entry would silently break the build-once rendezvous: the
  // next GetOrBuild for its key would miss and start a duplicate build
  // while the first is still running. When every entry is in flight
  // (capacity smaller than concurrent builds), leave the overshoot in
  // place — completions and later inserts re-run this and shrink it.
  size_t over = shard.lru.size() > per_shard_capacity_
                    ? shard.lru.size() - per_shard_capacity_
                    : 0;
  auto it = shard.lru.end();
  while (over > 0 && it != shard.lru.begin()) {
    --it;
    if (!it->second.completed) continue;
    resident_bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    shard.map.erase(it->first);
    it = shard.lru.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    --over;
  }
}

exec::CoverPtr CoverCache::GetOrBuild(
    uint64_t version, const exec::CoverKey& cover_key,
    const std::function<exec::CoverPtr()>& build, bool* reused) {
  if (!enabled()) {
    *reused = false;
    return build();
  }
  const Key key{version, cover_key};
  Shard& shard = ShardFor(key);
  std::promise<exec::CoverPtr> promise;
  std::shared_future<exec::CoverPtr> future;
  bool builder = false;
  const uint64_t build_id =
      next_build_id_.fetch_add(1, std::memory_order_relaxed);
  {
    const nc::MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      future = it->second->second.future;
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      builder = true;
      Entry entry;
      entry.future = promise.get_future().share();
      entry.build_id = build_id;
      future = entry.future;
      shard.lru.emplace_front(key, std::move(entry));
      shard.map.emplace(key, shard.lru.begin());
      entries_.fetch_add(1, std::memory_order_relaxed);
      misses_.fetch_add(1, std::memory_order_relaxed);
      EvictLocked(shard);
    }
  }
  if (!builder) {
    // Rendezvous on the (possibly in-flight) build; a hit on an entry
    // still building blocks here instead of duplicating the work.
    *reused = true;
    return future.get();
  }
  // Build outside the shard lock — other keys stay fully concurrent.
  exec::CoverPtr cover;
  try {
    cover = build();
  } catch (...) {
    // Drop the dead entry so the key is rebuilt next time (a transient
    // failure must not poison (version, instance, τ) until eviction),
    // and hand waiters the exception instead of a broken promise. Only
    // the entry carrying OUR build_id is ours to drop: if this entry was
    // cleared away and another builder re-inserted the key meanwhile,
    // erasing by key alone would kill that healthy in-flight build.
    {
      const nc::MutexLock lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end() && it->second->second.build_id == build_id) {
        shard.lru.erase(it->second);
        shard.map.erase(it);
        entries_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  promise.set_value(cover);
  {
    const nc::MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    // Same identity check as the cleanup path: complete only our own
    // entry, never a successor's re-inserted build for the same key.
    if (it != shard.map.end() && it->second->second.build_id == build_id &&
        !it->second->second.completed) {
      it->second->second.bytes = cover->bytes;
      it->second->second.completed = true;
      resident_bytes_.fetch_add(cover->bytes, std::memory_order_relaxed);
      // The shard may be over capacity with nothing evictable from when
      // every resident entry was in flight; now that one completed,
      // shrink back.
      EvictLocked(shard);
    }
  }
  *reused = false;
  return cover;
}

exec::CoverPtr CoverCache::TryGet(uint64_t version,
                                  const exec::CoverKey& cover_key) {
  if (!enabled()) return nullptr;
  const Key key{version, cover_key};
  Shard& shard = ShardFor(key);
  std::shared_future<exec::CoverPtr> future;
  {
    const nc::MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return nullptr;
    // An in-flight entry would make future.get() block, which this probe
    // must never do.
    if (!it->second->second.completed) return nullptr;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    future = it->second->second.future;
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return future.get();  // ready: completed builds resolve immediately
}

exec::CoverPtr CoverCache::TryGetStale(uint64_t version,
                                       const exec::CoverKey& cover_key,
                                       uint64_t max_lag,
                                       uint64_t* served_version) {
  for (uint64_t lag = 0; lag <= max_lag && version >= lag + 1; ++lag) {
    exec::CoverPtr cover = TryGet(version - lag, cover_key);
    if (cover != nullptr) {
      if (served_version != nullptr) *served_version = version - lag;
      return cover;
    }
  }
  return nullptr;
}

size_t CoverCache::CarryForward(uint64_t old_version, uint64_t new_version,
                                const DeltaSummary& delta) {
  if (!enabled() || new_version <= old_version) return 0;
  size_t carried = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const nc::MutexLock lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
      if (it->first.version != old_version) continue;
      // In-flight builds stay at the old key: their builder resolves the
      // entry by that key on completion, and a re-keyed in-flight entry
      // would stay "building" forever.
      if (!it->second.completed) continue;
      if (delta.IsDirty(static_cast<size_t>(it->first.cover.instance))) {
        continue;
      }
      const Key fresh{new_version, it->first.cover};
      // Someone already built (or started building) this partition at the
      // new version — their entry wins; ours ages out.
      if (shard.map.find(fresh) != shard.map.end()) continue;
      shard.map.erase(it->first);
      it->first.version = new_version;
      shard.map.emplace(fresh, it);
      ++carried;
    }
  }
  carried_.fetch_add(carried, std::memory_order_relaxed);
  return carried;
}

void CoverCache::Clear() {
  for (auto& shard : shards_) {
    const nc::MutexLock lock(shard->mu);
    for (const auto& [key, entry] : shard->lru) {
      resident_bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
    }
    entries_.fetch_sub(shard->lru.size(), std::memory_order_relaxed);
    shard->map.clear();
    shard->lru.clear();
  }
}

CoverCache::Stats CoverCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  s.carried = carried_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace netclus::serve
