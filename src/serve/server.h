// NetClusServer — the long-lived concurrent serving facade over Engine.
//
// Composition of the serve/ pieces:
//   SnapshotRegistry  — current immutable (store, sites, index) version,
//                       plus a bounded history window for stale serving;
//   UpdatePipeline    — single writer applying Sec. 6 incremental updates
//                       in batches, publishing a new snapshot per batch;
//   QueryCache        — sharded LRU over (canonical query, version);
//   CoverCache        — snapshot-versioned cover sharing across queries;
//   StagedScheduler   — work-stealing pool running the async request
//                       stages (admit/solve on the fast lanes, cover
//                       builds on the heavy lane);
//   LatencyHistogram  — per-query latency percentiles (p50..p999).
//
// Serving API v2 is asynchronous: SubmitAsync(Request) enqueues onto a
// bounded per-priority admission queue and returns a future (or invokes a
// completion callback); the request's stages then run as stealable
// scheduler tasks. Admission control rejects at enqueue (kOverloaded)
// when the priority's queue is full. Backpressure sheds cover *builds*
// first: when the heavy lane is backed up and the request's staleness
// policy permits, the server answers from a previous snapshot version via
// the result/cover caches (flagged `stale` + `shed`) instead of queueing
// a fresh build; cheap cache hits are never shed.
//
// The blocking Submit/SubmitBatch surface remains as thin shims (v1
// compatibility): Submit is SubmitAsync(...).get() with a synchronous
// inline fallback once the scheduler has shut down, and SubmitBatch
// answers inline over one pinned snapshot (a consistent view, bypassing
// admission — the caller already batched).
//
// Determinism: every kOk fresh response is bit-identical to a serial
// replay of the canonical spec on the snapshot version that served it,
// regardless of which worker ran which stage; stale responses are
// bit-identical to the same replay at their (older) served version and
// are always flagged — never silently wrong.
//
// Shutdown() is a graceful drain: in-flight async requests complete, new
// SubmitAsync calls complete with kShutdown, new mutations are rejected,
// queued mutations are applied and published, and blocking reads keep
// working inline against the final snapshot.
#ifndef NETCLUS_SERVE_SERVER_H_
#define NETCLUS_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "api/engine.h"
#include "exec/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/cover_cache.h"
#include "serve/delta.h"
#include "serve/query_cache.h"
#include "serve/snapshot.h"
#include "serve/standing.h"
#include "serve/update_pipeline.h"
#include "util/histogram.h"
#include "util/scheduler.h"
#include "util/timer.h"

namespace netclus::serve {

/// How a request ended. No exception escapes the serving boundary: spec
/// validation failures arrive as kInvalidSpec, overload as kOverloaded.
enum class StatusCode : uint8_t {
  kOk = 0,
  kOverloaded = 1,        ///< rejected at admission: priority queue full
  kDeadlineExceeded = 2,  ///< soft deadline passed before the answer
  kShutdown = 3,          ///< server shut down before/while processing
  kInvalidSpec = 4,       ///< malformed spec (site-indexed payload sizes)
};

const char* StatusName(StatusCode status);

/// Admission class. Each priority has its own bounded queue; the two
/// interactive classes map to the scheduler's faster lanes.
enum class Priority : uint8_t {
  kInteractive = 0,  ///< latency-sensitive, fast lane
  kNormal = 1,       ///< default
  kBestEffort = 2,   ///< first to feel backpressure
};
inline constexpr size_t kNumPriorities = 3;

/// How stale an answer the caller tolerates, in snapshot versions.
struct StalenessPolicy {
  /// 0 = only the version current at admission (fresh). n = any of the n
  /// preceding versions is acceptable under backpressure.
  uint64_t max_version_lag = 0;

  static StalenessPolicy Fresh() { return {}; }
  static StalenessPolicy AllowStaleVersion(uint64_t lag) { return {lag}; }
};

/// One asynchronous serving request.
struct Request {
  Engine::QuerySpec spec;
  Priority priority = Priority::kNormal;
  /// Soft deadline in seconds from SubmitAsync; 0 = none. Checked at
  /// stage boundaries (not preemptive): an expired request completes
  /// with kDeadlineExceeded instead of starting its next stage.
  double soft_deadline_seconds = 0.0;
  StalenessPolicy staleness;
  /// Trace id linking this request's spans. 0 (default) lets the server
  /// assign one; set it to propagate an upstream request id into traces
  /// and the slow-query log.
  uint64_t trace_id = 0;
};

/// One answered (or refused) query, with its serving metadata. This is
/// both the async Response and the blocking-shim result type.
struct ServeResult {
  /// Meaningful only when status == kOk.
  index::QueryResult result;
  /// The snapshot the query was answered on — retained so callers (and
  /// tests) can replay the query serially against the exact same
  /// version. May be null for a stale answer whose version aged out of
  /// the registry history (the version number still identifies it), and
  /// is null for non-kOk responses.
  SnapshotPtr snapshot;
  uint64_t snapshot_version = 0;
  StatusCode status = StatusCode::kOk;
  bool cache_hit = false;
  /// Answered from an older snapshot than the one current at admission
  /// (only ever true when the request's staleness policy permitted it).
  bool stale = false;
  /// The backpressure/admission path refused to do the full fresh work
  /// (kOverloaded / kDeadlineExceeded, or a stale kOk under load).
  bool shed = false;
  /// Admission-to-first-stage wait (async path; 0 for inline shims).
  double queue_seconds = 0.0;
  double latency_seconds = 0.0;
};

using Response = ServeResult;

struct ServerOptions {
  /// Worker threads per individual query (QueryConfig::threads; 0 =
  /// NETCLUS_THREADS default). Keep at 1 when many clients submit
  /// concurrently — the clients themselves are the parallelism.
  uint32_t query_threads = 1;
  /// Fan-out for SubmitBatch (0 = NETCLUS_THREADS default), via the PR 1
  /// thread-pool helpers.
  uint32_t batch_threads = 0;
  QueryCache::Options cache;
  /// Cross-query T̂C sharing (docs/query_planning.md): queries with the
  /// same (snapshot, instance, τ) reuse one cover build even when k, ψ,
  /// or ES differ. NETCLUS_COVER_CACHE=0 disables it.
  CoverCache::Options cover_cache;
  UpdatePipeline::Options updates;
  /// Scheduler pool size (0 = NETCLUS_SCHED_WORKERS, else
  /// min(hardware_concurrency, 8), at least 2).
  uint32_t scheduler_workers = 0;
  /// Bounded admission queue per priority (in-flight requests admitted
  /// and not yet completed); a full queue rejects with kOverloaded.
  /// 0 rejects everything of that priority — useful in tests.
  std::array<size_t, kNumPriorities> admission_capacity = {4096, 4096, 4096};
  /// Backpressure threshold: when the heavy lane has at least this many
  /// queued cover builds, requests whose staleness policy permits are
  /// answered stale instead of enqueueing another build. 0 = always
  /// prefer a stale answer over a new build when the policy allows it.
  size_t shed_builds_over = 8;
  /// Superseded snapshot versions kept acquirable for stale serving
  /// (SnapshotRegistry::set_history_limit).
  size_t snapshot_history = 4;
  /// Head-sampling fraction for request tracing, in [0, 1]. Negative
  /// (default) resolves NETCLUS_TRACE_SAMPLE (default 0.01). Slow, shed,
  /// and errored requests are tail-kept regardless of sampling.
  double trace_sample = -1.0;
  /// Seed for the deterministic sampling hash. Negative (default)
  /// resolves NETCLUS_TRACE_SEED (default 0).
  int64_t trace_seed = -1;
  /// Slow-query log threshold in milliseconds: completions at or above it
  /// emit a structured `slow_query` WARNING line. Negative (default)
  /// resolves NETCLUS_SLOW_QUERY_MS; 0 disables the log.
  double slow_query_ms = -1.0;
  /// Delta-aware cache carryover across snapshot publishes: re-key
  /// query/cover cache entries whose (instance, τ) partition a publish
  /// provably did not touch (see delta.h) instead of letting every
  /// publish reset the caches to cold. Results are bit-identical either
  /// way. Negative (default) resolves NETCLUS_CARRYOVER (default on);
  /// 0 disables, positive enables.
  int carryover = -1;
};

struct ServerStats {
  uint64_t queries_served = 0;  ///< kOk completions (fresh or stale)
  double qps = 0.0;             ///< queries_served / uptime
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_p999_ms = 0.0;
  double latency_mean_ms = 0.0;
  /// Samples beyond the histogram range (> 100 s); nonzero means the
  /// tail percentiles above are range-clamped.
  uint64_t latency_overflow = 0;
  QueryCache::Stats cache;
  CoverCache::Stats cover_cache;
  /// Planner/executor stage latencies (EWMA), queue waits, per-instance
  /// cover-build stats, and the shed/stale counters, from this server's
  /// exec::StatsRegistry.
  exec::StatsRegistry::Snapshot exec;
  UpdatePipeline::Stats updates;
  util::StagedScheduler::Stats scheduler;
  StandingQueryRegistry::Stats standing;
  /// Publishes processed by the carryover hook (0 when disabled).
  uint64_t carryover_publishes = 0;
  /// Σ untouched (instance) partitions across those publishes — the
  /// opportunity the caches carried entries within.
  uint64_t carryover_clean_partitions = 0;
  uint64_t snapshot_version = 0;
  double uptime_seconds = 0.0;
};

class NetClusServer {
 public:
  /// Boots from the engine's current state: copies the network, corpus,
  /// and sites, clones the built index, publishes version 1. The engine
  /// must have a built index; after construction the server (and any
  /// retained ServeResult/SnapshotPtr) is independent of the engine's
  /// lifetime. Once serving, route mutations through Mutate*, not
  /// through the engine.
  NetClusServer(const Engine& engine, const ServerOptions& options);
  ~NetClusServer();

  NetClusServer(const NetClusServer&) = delete;
  NetClusServer& operator=(const NetClusServer&) = delete;

  // --- reads (async v2) ----------------------------------------------------

  /// Enqueues one request; the returned future resolves when its stages
  /// complete (or it is refused — the Response::status tells). Thread-
  /// safe; never throws for spec errors (kInvalidSpec) and never blocks
  /// beyond the admission check.
  std::future<Response> SubmitAsync(Request request);

  /// Callback flavor: `done` is invoked exactly once, from a scheduler
  /// worker (or inline when refused at admission). The callback must not
  /// block for long — it runs on the serving pool.
  void SubmitAsync(Request request, std::function<void(Response)> done);

  // --- reads (blocking v1 shims) -------------------------------------------

  /// Answers one TOPS query on the current snapshot: SubmitAsync + get,
  /// with a synchronous inline fallback once the scheduler has shut
  /// down, so reads outlive Shutdown() exactly as in v1. Thread-safe.
  ServeResult Submit(const Engine::QuerySpec& spec);

  /// Answers a batch concurrently over ONE snapshot (a consistent view for
  /// the whole batch), in input order, bypassing admission. Thread-safe.
  std::vector<ServeResult> SubmitBatch(std::span<const Engine::QuerySpec> specs);

  // --- writes --------------------------------------------------------------

  /// Queues a mutation; see UpdatePipeline. Thread-safe.
  UpdateTicket Mutate(UpdateOp op);

  /// Convenience wrappers.
  UpdateTicket MutateAddTrajectory(std::vector<graph::NodeId> nodes);
  UpdateTicket MutateRemoveTrajectory(traj::TrajId id);
  UpdateTicket MutateAddSite(graph::NodeId node);

  /// Blocks until every mutation accepted so far is published.
  void Flush();

  // --- standing queries ----------------------------------------------------

  /// Registers a continuous TOPS query: `callback` is invoked immediately
  /// with the current answer (first = true), then again after any publish
  /// that may have changed it — with the top-k membership diff — subject
  /// to the delta gating and the staleness budget (see standing.h;
  /// `staleness.max_version_lag` is the number of dirty publishes the
  /// entry may coalesce before re-evaluating). Callbacks after the first
  /// run on the update pipeline's writer thread and must not block or
  /// call Flush/Mutate-and-wait. Returns the id for UnregisterStanding,
  /// or 0 when the spec fails validation. Thread-safe.
  uint64_t RegisterStanding(const Engine::QuerySpec& spec,
                            StalenessPolicy staleness,
                            StandingCallback callback);

  /// Removes a standing query; after it returns the callback will not be
  /// invoked again. Safe from within the entry's own callback. Returns
  /// false for an unknown id. Thread-safe.
  bool UnregisterStanding(uint64_t id);

  // --- lifecycle / introspection -------------------------------------------

  /// Graceful drain: in-flight async requests complete, the scheduler
  /// joins, new mutations are rejected, queued ones are applied and
  /// published. Blocking reads keep working (inline). Idempotent.
  void Shutdown();

  /// The current snapshot (never null).
  SnapshotPtr snapshot() const { return registry_.Acquire(); }

  ServerStats stats() const;

  /// Exports every registered instrument — scheduler lanes, caches,
  /// admission/shedding counters, stage and end-to-end latency histograms
  /// — as Prometheus text (default) or JSON.
  std::string DumpMetrics(
      obs::ExportFormat format = obs::ExportFormat::kPrometheusText) const {
    return ctx_->metrics.Export(format);
  }

  /// Chrome trace_event JSON of the span ring (sampled + tail-kept
  /// requests); loads directly in chrome://tracing / Perfetto.
  std::string DumpTraces() const { return tracer_->DumpChromeTrace(); }

  /// This server's metrics registry (instruments may be added by callers).
  obs::MetricsRegistry& metrics() const { return ctx_->metrics; }

  /// This server's tracer (sampling knobs, raw span access).
  obs::Tracer& tracer() const { return *tracer_; }

 private:
  struct AsyncState;

  /// Admission control + first enqueue; completes the state immediately
  /// on refusal.
  void Enqueue(std::shared_ptr<AsyncState> state);
  /// Stage 1 (fast/normal lane): queue-wait accounting, deadline check,
  /// canonicalize + plan + validate, result-cache lookup, ready-cover
  /// solve, backpressure stale-serve, or hand-off to StageBuild.
  void StageAdmit(const std::shared_ptr<AsyncState>& state);
  /// Stage 2 (heavy lane): cover build (rendezvoused through the cover
  /// cache), then solve + assemble.
  void StageBuild(const std::shared_ptr<AsyncState>& state);
  /// Solve + assemble on a ready cover against `snap`, cache the result,
  /// complete kOk.
  void FinishOnCover(const std::shared_ptr<AsyncState>& state,
                     const SnapshotPtr& snap, const exec::CoverPtr& cover,
                     bool cover_reused, bool stale);
  /// Fulfills promise/callback, releases the admission slot, and records
  /// kOk completions into the latency histogram.
  void Complete(const std::shared_ptr<AsyncState>& state, StatusCode status);

  /// The v1 synchronous path (SubmitBatch and post-shutdown Submit):
  /// plan, cache, execute inline on `snap`. Maps validation throws to
  /// kInvalidSpec.
  ServeResult AnswerInline(const Engine::QuerySpec& spec,
                           const SnapshotPtr& snap);

  /// Update-pipeline publish hook (writer thread): carry the caches
  /// forward under the delta, then delta-gate standing-query
  /// re-evaluation.
  void OnPublish(uint64_t old_version, uint64_t new_version,
                 const DeltaSummary& delta);

  /// Registers the serving-layer providers (scheduler lanes, caches,
  /// update pipeline, snapshot version, latency view) into ctx_->metrics.
  /// Called once from the constructor; providers capture `this`.
  void RegisterMetrics();

  ServerOptions options_;
  SnapshotRegistry registry_;
  QueryCache cache_;
  CoverCache cover_cache_;
  StandingQueryRegistry standing_;
  bool carryover_enabled_ = true;
  std::atomic<uint64_t> carryover_publishes_{0};
  std::atomic<uint64_t> carryover_clean_partitions_{0};
  /// Per-server execution context: stats registry + warn-once state,
  /// shared by every query's planner/executor run.
  std::shared_ptr<exec::ExecContext> ctx_;
  std::unique_ptr<UpdatePipeline> pipeline_;
  std::unique_ptr<util::StagedScheduler> scheduler_;
  /// In-flight admitted requests per priority, against
  /// ServerOptions::admission_capacity.
  std::array<std::atomic<size_t>, kNumPriorities> admitted_{};
  util::LatencyHistogram latency_;
  std::atomic<uint64_t> queries_served_{0};
  util::WallTimer uptime_;
  std::unique_ptr<obs::Tracer> tracer_;
  /// Resolved slow-query threshold in seconds; <= 0 disables the log.
  double slow_query_seconds_ = 0.0;
  obs::Counter* slow_queries_ = nullptr;  ///< owned by ctx_->metrics
};

}  // namespace netclus::serve

#endif  // NETCLUS_SERVE_SERVER_H_
