// NetClusServer — the long-lived concurrent serving facade over Engine.
//
// Composition of the serve/ pieces:
//   SnapshotRegistry  — current immutable (store, sites, index) version;
//   UpdatePipeline    — single writer applying Sec. 6 incremental updates
//                       in batches, publishing a new snapshot per batch;
//   QueryCache        — sharded LRU over (canonical query, version);
//   LatencyHistogram  — per-query latency percentiles (p50/p95/p99).
//
// Thread model: any number of client threads may call Submit /
// SubmitBatch / Mutate concurrently. A query acquires one snapshot,
// answers on it (possibly via the cache), and records its latency;
// results are bit-identical to a serial replay of the same spec on the
// same snapshot version because the query engine is deterministic.
// Mutations are asynchronous: Mutate returns a ticket, Flush() (or
// UpdatePipeline::WaitFor) barriers on publication.
//
// Shutdown() is a graceful drain: new mutations are rejected, queued ones
// are applied and published, and reads keep working against the final
// snapshot (an in-process facade has no sockets to close).
#ifndef NETCLUS_SERVE_SERVER_H_
#define NETCLUS_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "api/engine.h"
#include "exec/stats.h"
#include "serve/cover_cache.h"
#include "serve/query_cache.h"
#include "serve/snapshot.h"
#include "serve/update_pipeline.h"
#include "util/histogram.h"
#include "util/timer.h"

namespace netclus::serve {

struct ServerOptions {
  /// Worker threads per individual query (QueryConfig::threads; 0 =
  /// NETCLUS_THREADS default). Keep at 1 when many clients submit
  /// concurrently — the clients themselves are the parallelism.
  uint32_t query_threads = 1;
  /// Fan-out for SubmitBatch (0 = NETCLUS_THREADS default), via the PR 1
  /// thread-pool helpers.
  uint32_t batch_threads = 0;
  QueryCache::Options cache;
  /// Cross-query T̂C sharing (docs/query_planning.md): queries with the
  /// same (snapshot, instance, τ) reuse one cover build even when k, ψ,
  /// or ES differ. NETCLUS_COVER_CACHE=0 disables it.
  CoverCache::Options cover_cache;
  UpdatePipeline::Options updates;
};

/// One answered query, with its serving metadata.
struct ServeResult {
  index::QueryResult result;
  /// The snapshot the query was answered on — retained so callers (and
  /// tests) can replay the query serially against the exact same version.
  SnapshotPtr snapshot;
  uint64_t snapshot_version = 0;
  bool cache_hit = false;
  double latency_seconds = 0.0;
};

struct ServerStats {
  uint64_t queries_served = 0;
  double qps = 0.0;  ///< queries_served / uptime
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  QueryCache::Stats cache;
  CoverCache::Stats cover_cache;
  /// Planner/executor stage latencies (EWMA) and per-instance cover-build
  /// stats, from this server's exec::StatsRegistry.
  exec::StatsRegistry::Snapshot exec;
  UpdatePipeline::Stats updates;
  uint64_t snapshot_version = 0;
  double uptime_seconds = 0.0;
};

class NetClusServer {
 public:
  /// Boots from the engine's current state: copies the network, corpus,
  /// and sites, clones the built index, publishes version 1. The engine
  /// must have a built index; after construction the server (and any
  /// retained ServeResult/SnapshotPtr) is independent of the engine's
  /// lifetime. Once serving, route mutations through Mutate*, not
  /// through the engine.
  NetClusServer(const Engine& engine, const ServerOptions& options);
  ~NetClusServer();

  NetClusServer(const NetClusServer&) = delete;
  NetClusServer& operator=(const NetClusServer&) = delete;

  // --- reads ---------------------------------------------------------------

  /// Answers one TOPS query on the current snapshot. Thread-safe.
  ServeResult Submit(const Engine::QuerySpec& spec);

  /// Answers a batch concurrently over ONE snapshot (a consistent view for
  /// the whole batch), in input order. Thread-safe.
  std::vector<ServeResult> SubmitBatch(std::span<const Engine::QuerySpec> specs);

  // --- writes --------------------------------------------------------------

  /// Queues a mutation; see UpdatePipeline. Thread-safe.
  UpdateTicket Mutate(UpdateOp op);

  /// Convenience wrappers.
  UpdateTicket MutateAddTrajectory(std::vector<graph::NodeId> nodes);
  UpdateTicket MutateRemoveTrajectory(traj::TrajId id);
  UpdateTicket MutateAddSite(graph::NodeId node);

  /// Blocks until every mutation accepted so far is published.
  void Flush();

  // --- lifecycle / introspection -------------------------------------------

  /// Graceful drain: rejects new mutations, applies queued ones, joins the
  /// writer. Reads keep working. Idempotent.
  void Shutdown();

  /// The current snapshot (never null).
  SnapshotPtr snapshot() const { return registry_.Acquire(); }

  ServerStats stats() const;

 private:
  ServeResult Answer(const Engine::QuerySpec& spec, const SnapshotPtr& snap);

  ServerOptions options_;
  SnapshotRegistry registry_;
  QueryCache cache_;
  CoverCache cover_cache_;
  /// Per-server execution context: stats registry + warn-once state,
  /// shared by every query's planner/executor run.
  std::shared_ptr<exec::ExecContext> ctx_;
  std::unique_ptr<UpdatePipeline> pipeline_;
  util::LatencyHistogram latency_;
  std::atomic<uint64_t> queries_served_{0};
  util::WallTimer uptime_;
};

}  // namespace netclus::serve

#endif  // NETCLUS_SERVE_SERVER_H_
