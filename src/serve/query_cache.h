// Sharded LRU cache for TOPS query results.
//
// Keyed by the snapshot version plus the query plan's canonical
// fingerprint (exec::PlanKey: sorted/deduped existing services,
// normalized ψ, τ by bit pattern, the resolved resolution instance).
// Because queries over one snapshot are deterministic, a hit is
// bit-identical to recomputation; because the version is part of the key,
// a snapshot publish implicitly invalidates every cached entry — stale
// versions simply stop being requested and age out of the LRU lists.
// Delta-aware carryover (CarryForward, driven by the update pipeline's
// per-publish DeltaSummary) re-keys entries whose resolution instance the
// publish provably did not touch, so those survive the version bump
// instead of aging out; see delta.h for the dirtiness argument.
//
// Canonicalization means equivalent specs share one entry: permuted or
// duplicated existing-services lists, and ψ spellings that are bit-exact
// equivalent (e.g. ConvexProbability(1) vs Linear — see
// exec::NormalizePsi), all hit the same slot.
//
// Sharding: the key hash picks a shard; each shard is an independent
// mutex + LRU list + map, so concurrent readers on different shards never
// contend. Counters (hits / misses / evictions) are process-wide atomics.
#ifndef NETCLUS_SERVE_QUERY_CACHE_H_
#define NETCLUS_SERVE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "api/engine.h"
#include "exec/plan.h"
#include "netclus/query.h"
#include "serve/delta.h"
#include "tops/site_set.h"
#include "util/thread_annotations.h"

namespace netclus::serve {

/// Canonical cache key: the snapshot version a result was answered at
/// plus the plan fingerprint. Two QuerySpecs that answer identically on
/// the same snapshot produce equal keys; doubles are carried by bit
/// pattern inside the PlanKey, so equality and hashing always agree
/// (0.0 vs -0.0, NaN) as the shard maps require.
struct QueryKey {
  uint64_t version = 0;
  exec::PlanKey plan;

  bool operator==(const QueryKey&) const = default;
};

struct QueryKeyHash {
  size_t operator()(const QueryKey& key) const;
};

/// Returns the spec with existing_services sorted and deduplicated — the
/// form the server both keys on AND executes. Executing the canonical
/// order matters: Inc-Greedy folds existing services in input order, and
/// floating-point addition is non-associative, so permuted inputs could
/// otherwise differ in the last ulp from the cached answer they share a
/// key with.
Engine::QuerySpec CanonicalizeSpec(const Engine::QuerySpec& spec);

/// Builds the canonical key for a query against a snapshot version. Takes
/// the whole spec (not individual fields) so the key and QuerySpec::
/// ToConfig derive from the same field list: a new result-affecting spec
/// field added to one but not the other is a single obvious edit site,
/// not a silent cache collision. `instance` is the resolved resolution
/// instance (the server takes it from the plan; key-only unit tests may
/// pass 0).
QueryKey CanonicalQueryKey(uint64_t version, const Engine::QuerySpec& spec,
                           size_t instance = 0);

class QueryCache {
 public:
  struct Options {
    size_t capacity = 4096;  ///< total entries across shards (0 disables)
    size_t shards = 16;      ///< power of two recommended; >= 1
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;  ///< current resident entries
    /// LookupStale probes that hit at a *lagged* version (lag > 0) — the
    /// answers served stale under backpressure. A LookupStale that finds
    /// the entry at lag 0 served the fresh version and counts as an
    /// ordinary `hits`; a probe whose whole ladder fails counts one
    /// `misses`. So hits + misses == Lookup calls + resolved LookupStale
    /// ladders, and stale_hits is exactly the stale-served count (it used
    /// to also absorb lag-0 fresh hits, inflating the stale-serving
    /// metric).
    uint64_t stale_hits = 0;
    /// Entries re-keyed across publishes by CarryForward.
    uint64_t carried = 0;
  };

  explicit QueryCache(Options options);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// False when constructed with capacity 0: Lookup always misses (without
  /// counting) and Insert is a no-op. Callers skip key construction.
  bool enabled() const { return per_shard_capacity_ != 0; }

  /// Looks the key up, refreshing its LRU position. Thread-safe.
  std::optional<index::QueryResult> Lookup(const QueryKey& key);

  /// Backpressure probe: looks for the same plan at key.version or any of
  /// the `max_lag` preceding versions, newest first. On success sets
  /// *served_version to the version found. Counting: a lag-0 find is a
  /// fresh `hits`, a lagged find is a `stale_hits`, a fully failed ladder
  /// is one `misses` (see Stats::stale_hits). Thread-safe.
  std::optional<index::QueryResult> LookupStale(const QueryKey& key,
                                                uint64_t max_lag,
                                                uint64_t* served_version);

  /// Delta-aware carryover: re-keys entries at `old_version` whose
  /// resolution instance the publish left untouched (see delta.h) to
  /// `new_version` — their answers are bit-identical at both versions, so
  /// the next snapshot starts warm. Keys already present at the new
  /// version win; dirty-instance entries age out. Returns the number
  /// carried. Thread-safe.
  size_t CarryForward(uint64_t old_version, uint64_t new_version,
                      const DeltaSummary& delta);

  /// Inserts (or refreshes) an entry, evicting the shard's LRU tail when
  /// over budget. Thread-safe.
  void Insert(const QueryKey& key, const index::QueryResult& result);

  /// Drops every entry (counters are kept).
  void Clear();

  Stats stats() const;

 private:
  struct Shard {
    nc::Mutex mu;
    /// Most-recent first; pairs of (key, result).
    std::list<std::pair<QueryKey, index::QueryResult>> lru GUARDED_BY(mu);
    std::unordered_map<QueryKey,
                       std::list<std::pair<QueryKey,
                                           index::QueryResult>>::iterator,
                       QueryKeyHash>
        map GUARDED_BY(mu);
  };

  Shard& ShardFor(const QueryKey& key);

  Options options_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> stale_hits_{0};
  std::atomic<uint64_t> carried_{0};
};

}  // namespace netclus::serve

#endif  // NETCLUS_SERVE_QUERY_CACHE_H_
