// Snapshot-versioned cache of built approximate trajectory covers.
//
// A cover (exec::BuiltCover) depends only on (snapshot version, instance,
// τ) — not on k, ψ, FM, or existing services — so concurrent serving
// traffic whose specs differ in everything *except* (instance, τ) still
// reuses one T̂C build. Because the version is part of the key, a snapshot
// publish implicitly invalidates every cached cover; stale versions age
// out of the LRU lists. Delta-aware carryover (CarryForward) re-keys
// covers whose instance a publish provably did not touch — an untouched
// partition's cover is byte-equal at both versions (see delta.h) — so an
// update stream no longer resets the cache to cold on every batch.
//
// GetOrBuild has build-once semantics: concurrent callers for the same
// key rendezvous on one shared build (a std::shared_future per entry), so
// a thundering herd of identical-τ requests costs a single cover build —
// the property bench_exec_plans measures. Covers are immutable and
// refcounted, so an evicted entry stays valid for every query still
// holding it.
//
// The NETCLUS_COVER_CACHE environment knob (default on) disables the
// cache at construction time when set to 0 — the CI matrix runs the test
// suite both ways; results are bit-identical because BuildCover is
// deterministic.
#ifndef NETCLUS_SERVE_COVER_CACHE_H_
#define NETCLUS_SERVE_COVER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/cover_build.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "serve/delta.h"
#include "util/thread_annotations.h"

namespace netclus::serve {

class CoverCache {
 public:
  struct Options {
    /// Total resident covers across shards. 0 disables. Covers are large
    /// (Σ |T̂C| per instance), so the default stays small — distinct
    /// (instance, τ) pairs in live traffic are few.
    size_t capacity = 32;
    size_t shards = 8;
    /// When true (the default), NETCLUS_COVER_CACHE=0 in the environment
    /// disables the cache regardless of `capacity`.
    bool respect_env = true;
  };

  struct Stats {
    uint64_t hits = 0;    ///< served an existing (possibly in-flight) build
    uint64_t misses = 0;  ///< this call built the cover
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t resident_bytes = 0;  ///< Σ bytes of completed resident covers
    uint64_t carried = 0;  ///< entries re-keyed across publishes (CarryForward)
  };

  explicit CoverCache(Options options);

  CoverCache(const CoverCache&) = delete;
  CoverCache& operator=(const CoverCache&) = delete;

  /// False when capacity is 0 (or NETCLUS_COVER_CACHE=0): GetOrBuild
  /// degenerates to calling `build` without counting.
  bool enabled() const { return per_shard_capacity_ != 0; }

  /// Returns the cover for (version, key), building it via `build` (at
  /// most once across all concurrent callers of this key) on a miss.
  /// *reused is set to true when the returned cover was built by another
  /// call. Thread-safe.
  exec::CoverPtr GetOrBuild(uint64_t version, const exec::CoverKey& key,
                            const std::function<exec::CoverPtr()>& build,
                            bool* reused);

  /// Non-blocking probe: the cover for (version, key) if its build has
  /// already completed, else null — never waits on an in-flight build and
  /// never builds. Success counts a hit; failure counts nothing (no build
  /// happened, so it is not a miss). The async serving path uses this to
  /// answer without queueing behind a build.
  exec::CoverPtr TryGet(uint64_t version, const exec::CoverKey& key);

  /// TryGet over `version` and up to `max_lag` preceding versions, newest
  /// first; sets *served_version on success. Non-blocking.
  exec::CoverPtr TryGetStale(uint64_t version, const exec::CoverKey& key,
                             uint64_t max_lag, uint64_t* served_version);

  /// Delta-aware carryover: re-keys every completed entry at
  /// `old_version` whose (instance, τ) partition the publish left
  /// untouched (see delta.h) to `new_version`, so the next snapshot
  /// starts warm instead of rebuilding byte-equal covers. Entries whose
  /// instance is dirty, in-flight builds (their builder resolves the old
  /// key on completion), and keys already present at `new_version` are
  /// left alone. Returns the number of entries carried. Thread-safe;
  /// called by the serving layer from the update pipeline's on_publish
  /// hook.
  size_t CarryForward(uint64_t old_version, uint64_t new_version,
                      const DeltaSummary& delta);

  /// Drops every entry (counters are kept). In-flight builds complete
  /// normally; their waiters are unaffected.
  void Clear();

  Stats stats() const;

 private:
  struct Key {
    uint64_t version = 0;
    exec::CoverKey cover;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Entry {
    std::shared_future<exec::CoverPtr> future;
    uint64_t bytes = 0;      ///< cover size; meaningful once completed
    bool completed = false;  ///< false while the build is in flight
    /// Which GetOrBuild call owns this entry's build. The builder's
    /// completion / exception cleanup acts only on the entry carrying its
    /// own id — an entry re-inserted for the same key after an eviction
    /// belongs to a different builder and must not be touched.
    uint64_t build_id = 0;
  };
  struct Shard {
    nc::Mutex mu;
    /// Most-recent first; pairs of (key, entry).
    std::list<std::pair<Key, Entry>> lru GUARDED_BY(mu);
    std::unordered_map<Key, std::list<std::pair<Key, Entry>>::iterator,
                       KeyHash>
        map GUARDED_BY(mu);
  };

  Shard& ShardFor(const Key& key);
  /// Evicts past-capacity *completed* tail entries; caller holds the
  /// shard lock. In-flight entries are never evicted (evicting one would
  /// break the build-once rendezvous and duplicate an expensive build),
  /// so a shard may transiently overshoot capacity while every resident
  /// entry is still building; the next completion or insert shrinks it.
  void EvictLocked(Shard& shard) REQUIRES(shard.mu);

  Options options_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_build_id_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> resident_bytes_{0};
  std::atomic<uint64_t> carried_{0};
};

}  // namespace netclus::serve

#endif  // NETCLUS_SERVE_COVER_CACHE_H_
