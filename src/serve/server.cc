#include "serve/server.h"

#include <utility>

#include "exec/executor.h"
#include "exec/planner.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace netclus::serve {

NetClusServer::NetClusServer(const Engine& engine, const ServerOptions& options)
    : options_(options),
      cache_(options.cache),
      cover_cache_(options.cover_cache),
      ctx_(std::make_shared<exec::ExecContext>()) {
  NC_CHECK(engine.index_built()) << "call Engine::BuildIndex() before Serve()";
  // Snapshots are fully self-contained: the network is copied once here
  // (and shared by every subsequent version), the mutable parts are
  // copied once and from then on evolve only through the pipeline's
  // copy-on-write batches. A retained ServeResult/SnapshotPtr therefore
  // stays valid even after the originating Engine is destroyed.
  auto network = std::make_shared<const graph::RoadNetwork>(engine.network());
  auto store =
      std::make_shared<traj::TrajectoryStore>(engine.store(), network.get());
  auto sites = std::make_shared<tops::SiteSet>(engine.sites());
  auto index = std::make_shared<index::MultiIndex>(engine.index().Clone());
  registry_.Publish(std::make_shared<IndexSnapshot>(
      /*version=*/1, std::move(network), std::move(store), std::move(sites),
      std::move(index)));
  pipeline_ = std::make_unique<UpdatePipeline>(&registry_, options.updates);
  NC_LOG_INFO << "NetClusServer: serving snapshot v1 ("
              << registry_.Acquire()->store().live_count()
              << " live trajectories, "
              << registry_.Acquire()->sites().size() << " sites)";
}

NetClusServer::~NetClusServer() { Shutdown(); }

ServeResult NetClusServer::Answer(const Engine::QuerySpec& spec,
                                  const SnapshotPtr& snap) {
  util::WallTimer timer;
  ServeResult out;
  out.snapshot = snap;
  out.snapshot_version = snap->version();
  // Plan the same canonical form the cache keys on, so permuted
  // existing-services lists (and bit-equivalent ψ spellings) are one
  // query with one bit-exact answer.
  const Engine::QuerySpec canon = CanonicalizeSpec(spec);
  const exec::Planner planner(ctx_.get());
  const exec::QueryPlan plan = planner.Plan(
      exec::RequestFromConfig(exec::QueryVariant::kTops, canon.psi,
                              canon.ToConfig(options_.query_threads)),
      snap->index(), /*batch_size=*/1);
  QueryKey key;
  const bool result_cacheable = cache_.enabled() && plan.cacheable;
  if (result_cacheable) {
    key.version = snap->version();
    key.plan = plan.key;
  }
  std::optional<index::QueryResult> cached =
      result_cacheable ? cache_.Lookup(key) : std::nullopt;
  if (cached.has_value()) {
    out.result = std::move(*cached);
    out.cache_hit = true;
  } else {
    exec::CoverHooks hooks;
    if (cover_cache_.enabled()) {
      const uint64_t version = snap->version();
      hooks.acquire = [this, version](
                          const exec::CoverKey& cover_key,
                          const std::function<exec::CoverPtr()>& build,
                          bool* reused) {
        return cover_cache_.GetOrBuild(version, cover_key, build, reused);
      };
    }
    const exec::Executor executor(&snap->index(), &snap->store(),
                                  &snap->sites(), ctx_.get(), hooks);
    out.result = executor.Execute(plan);
    if (result_cacheable) cache_.Insert(key, out.result);
  }
  out.latency_seconds = timer.Seconds();
  latency_.Record(out.latency_seconds);
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

ServeResult NetClusServer::Submit(const Engine::QuerySpec& spec) {
  return Answer(spec, registry_.Acquire());
}

std::vector<ServeResult> NetClusServer::SubmitBatch(
    std::span<const Engine::QuerySpec> specs) {
  // One snapshot for the whole batch: every answer reflects the same
  // version even if the pipeline publishes mid-batch.
  const SnapshotPtr snap = registry_.Acquire();
  return util::ParallelMap<ServeResult>(
      options_.batch_threads, specs.size(),
      [&](size_t i) { return Answer(specs[i], snap); }, /*grain=*/1);
}

UpdateTicket NetClusServer::Mutate(UpdateOp op) {
  return pipeline_->Enqueue(std::move(op));
}

UpdateTicket NetClusServer::MutateAddTrajectory(
    std::vector<graph::NodeId> nodes) {
  return Mutate(UpdateOp::AddTrajectory(std::move(nodes)));
}

UpdateTicket NetClusServer::MutateRemoveTrajectory(traj::TrajId id) {
  return Mutate(UpdateOp::RemoveTrajectory(id));
}

UpdateTicket NetClusServer::MutateAddSite(graph::NodeId node) {
  return Mutate(UpdateOp::AddSite(node));
}

void NetClusServer::Flush() { pipeline_->Flush(); }

void NetClusServer::Shutdown() { pipeline_->Shutdown(); }

ServerStats NetClusServer::stats() const {
  ServerStats s;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.uptime_seconds = uptime_.Seconds();
  s.qps = s.uptime_seconds > 0.0
              ? static_cast<double>(s.queries_served) / s.uptime_seconds
              : 0.0;
  s.latency_p50_ms = latency_.PercentileSeconds(0.50) * 1e3;
  s.latency_p95_ms = latency_.PercentileSeconds(0.95) * 1e3;
  s.latency_p99_ms = latency_.PercentileSeconds(0.99) * 1e3;
  s.latency_mean_ms = latency_.MeanSeconds() * 1e3;
  s.cache = cache_.stats();
  s.cover_cache = cover_cache_.stats();
  s.exec = ctx_->stats.snapshot();
  s.updates = pipeline_->stats();
  s.snapshot_version = registry_.current_version();
  return s;
}

}  // namespace netclus::serve

namespace netclus {

std::unique_ptr<serve::NetClusServer> Engine::Serve() const {
  return Serve(serve::ServerOptions());
}

std::unique_ptr<serve::NetClusServer> Engine::Serve(
    const serve::ServerOptions& options) const {
  return std::make_unique<serve::NetClusServer>(*this, options);
}

}  // namespace netclus
