#include "serve/server.h"

#include <exception>
#include <utility>

#include "exec/executor.h"
#include "exec/planner.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace netclus::serve {

namespace {

using Lane = util::StagedScheduler::Lane;

size_t SlotOf(Priority priority) { return static_cast<size_t>(priority); }

// Request stages are cheap (plan + cache probes + solve-on-ready-cover);
// only cover builds are heavy. Interactive traffic gets the front lane.
Lane LaneOf(Priority priority) {
  return priority == Priority::kInteractive ? Lane::kFast : Lane::kNormal;
}

uint8_t LaneIdx(Lane lane) { return static_cast<uint8_t>(lane); }

const char* kLaneNames[] = {"fast", "normal", "heavy"};
const char* kPriorityNames[] = {"interactive", "normal", "best_effort"};

}  // namespace

const char* StatusName(StatusCode status) {
  switch (status) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kShutdown: return "SHUTDOWN";
    case StatusCode::kInvalidSpec: return "INVALID_SPEC";
  }
  return "UNKNOWN";
}

/// Everything one async request carries across its stages. The canonical
/// spec is stored here (not just the plan) because cost/capacity plans
/// borrow spans into the spec's vectors — the state outlives execution by
/// construction, since every stage holds the shared_ptr.
struct NetClusServer::AsyncState {
  Request request;
  Engine::QuerySpec canon;
  std::promise<Response> promise;
  std::function<void(Response)> callback;
  util::WallTimer timer;  ///< starts at SubmitAsync
  exec::QueryPlan plan;
  QueryKey key;
  bool cacheable = false;
  bool holds_slot = false;
  SnapshotPtr snap;  ///< the version current at admission
  Response response;
  /// Span collector for this request. Stages run sequentially (scheduler
  /// hand-offs provide happens-before), so it needs no lock.
  obs::TraceContext trace;
  uint64_t queue_end_ns = 0;  ///< when StageAdmit started (tail-kept spans)
  uint8_t lane = 1;           ///< lane of the most recent stage

  bool DeadlineExpired() const {
    return request.soft_deadline_seconds > 0.0 &&
           timer.Seconds() > request.soft_deadline_seconds;
  }
};

NetClusServer::NetClusServer(const Engine& engine, const ServerOptions& options)
    : options_(options),
      cache_(options.cache),
      cover_cache_(options.cover_cache),
      ctx_(std::make_shared<exec::ExecContext>()) {
  NC_CHECK(engine.index_built()) << "call Engine::BuildIndex() before Serve()";
  // Snapshots are fully self-contained: the network is copied once here
  // (and shared by every subsequent version), the mutable parts are
  // copied once and from then on evolve only through the pipeline's
  // copy-on-write batches. A retained ServeResult/SnapshotPtr therefore
  // stays valid even after the originating Engine is destroyed.
  auto network = std::make_shared<const graph::RoadNetwork>(engine.network());
  auto store =
      std::make_shared<traj::TrajectoryStore>(engine.store(), network.get());
  auto sites = std::make_shared<tops::SiteSet>(engine.sites());
  auto index = std::make_shared<index::MultiIndex>(engine.index().Clone());
  registry_.set_history_limit(options.snapshot_history);
  registry_.Publish(std::make_shared<IndexSnapshot>(
      /*version=*/1, std::move(network), std::move(store), std::move(sites),
      std::move(index)));
  carryover_enabled_ = options.carryover >= 0
                           ? options.carryover != 0
                           : util::GetEnvBool("NETCLUS_CARRYOVER", true);
  // Chain the server's publish hook (cache carryover + standing queries)
  // in front of any caller-supplied one; both run on the writer thread.
  UpdatePipeline::Options updates = options.updates;
  const auto user_hook = updates.on_publish;
  updates.on_publish = [this, user_hook](uint64_t old_version,
                                         uint64_t new_version,
                                         const DeltaSummary& delta) {
    OnPublish(old_version, new_version, delta);
    if (user_hook) user_hook(old_version, new_version, delta);
  };
  pipeline_ = std::make_unique<UpdatePipeline>(&registry_, updates);
  util::StagedScheduler::Options sched;
  sched.workers = options.scheduler_workers;
  scheduler_ = std::make_unique<util::StagedScheduler>(sched);
  const double sample =
      options.trace_sample >= 0.0
          ? options.trace_sample
          : util::GetEnvDouble("NETCLUS_TRACE_SAMPLE", 0.01);
  const uint64_t seed =
      options.trace_seed >= 0
          ? static_cast<uint64_t>(options.trace_seed)
          : static_cast<uint64_t>(util::GetEnvInt("NETCLUS_TRACE_SEED", 0));
  tracer_ = std::make_unique<obs::Tracer>(
      sample, seed,
      static_cast<size_t>(util::GetEnvInt("NETCLUS_TRACE_RING", 8192)));
  slow_query_seconds_ =
      (options.slow_query_ms >= 0.0
           ? options.slow_query_ms
           : util::GetEnvDouble("NETCLUS_SLOW_QUERY_MS", 0.0)) /
      1e3;
  RegisterMetrics();
  NC_LOG_INFO << "NetClusServer: serving snapshot v1 ("
              << registry_.Acquire()->store().live_count()
              << " live trajectories, "
              << registry_.Acquire()->sites().size() << " sites, "
              << scheduler_->workers() << " scheduler workers)";
}

NetClusServer::~NetClusServer() { Shutdown(); }

// --- async path --------------------------------------------------------------

std::future<Response> NetClusServer::SubmitAsync(Request request) {
  auto state = std::make_shared<AsyncState>();
  state->request = std::move(request);
  std::future<Response> future = state->promise.get_future();
  Enqueue(std::move(state));
  return future;
}

void NetClusServer::SubmitAsync(Request request,
                                std::function<void(Response)> done) {
  auto state = std::make_shared<AsyncState>();
  state->request = std::move(request);
  state->callback = std::move(done);
  Enqueue(std::move(state));
}

void NetClusServer::Enqueue(std::shared_ptr<AsyncState> state) {
  const uint64_t trace_id = state->request.trace_id != 0
                                ? state->request.trace_id
                                : tracer_->NextTraceId();
  state->trace.Start(tracer_.get(), trace_id, tracer_->Sampled(trace_id));
  state->lane = LaneIdx(LaneOf(state->request.priority));
  if (scheduler_->stopping()) {
    Complete(state, StatusCode::kShutdown);
    return;
  }
  const size_t slot = SlotOf(state->request.priority);
  // Admission control: one bounded in-flight budget per priority,
  // released at completion. fetch_add-then-check keeps the reject path
  // lock-free; the momentary overshoot is undone before returning.
  if (admitted_[slot].fetch_add(1, std::memory_order_acq_rel) >=
      options_.admission_capacity[slot]) {
    admitted_[slot].fetch_sub(1, std::memory_order_acq_rel);
    ctx_->stats.RecordShedOverload();
    state->response.shed = true;
    Complete(state, StatusCode::kOverloaded);
    return;
  }
  state->holds_slot = true;
  const Lane lane = LaneOf(state->request.priority);
  if (!scheduler_->Submit(lane, [this, state] { StageAdmit(state); })) {
    Complete(state, StatusCode::kShutdown);
  }
}

void NetClusServer::StageAdmit(const std::shared_ptr<AsyncState>& state) {
  Response& r = state->response;
  const uint64_t admit_start = obs::TraceNowNs();
  state->queue_end_ns = admit_start;
  state->trace.AddSpan(obs::SpanName::kQueue, state->lane,
                       state->trace.start_ns(), admit_start);
  const auto end_admit_span = [&] {
    state->trace.AddSpan(obs::SpanName::kAdmit, state->lane, admit_start,
                         obs::TraceNowNs());
  };
  r.queue_seconds = state->timer.Seconds();
  ctx_->stats.RecordQueueWait(r.queue_seconds);
  if (state->DeadlineExpired()) {
    ctx_->stats.RecordShedDeadline();
    r.shed = true;
    end_admit_span();
    Complete(state, StatusCode::kDeadlineExceeded);
    return;
  }
  state->snap = registry_.Acquire();
  const uint64_t version = state->snap->version();
  state->trace.set_snapshot_version(version);
  // Plan the same canonical form the cache keys on, so permuted
  // existing-services lists (and bit-equivalent ψ spellings) are one
  // query with one bit-exact answer.
  state->canon = CanonicalizeSpec(state->request.spec);
  try {
    const exec::Planner planner(ctx_.get());
    state->plan =
        planner.Plan(state->canon.ToRequest(options_.query_threads),
                     state->snap->index(), /*batch_size=*/1);
    exec::Executor(&state->snap->index(), &state->snap->store(),
                   &state->snap->sites(), ctx_.get())
        .ValidatePlan(state->plan);
  } catch (const std::exception& e) {
    NC_SLOG_WARNING("invalid_spec").Kv("what", e.what());
    end_admit_span();
    Complete(state, StatusCode::kInvalidSpec);
    return;
  }
  state->trace.set_plan_fingerprint(state->plan.key.Fingerprint());
  state->cacheable = cache_.enabled() && state->plan.cacheable;
  if (state->cacheable) {
    state->key.version = version;
    state->key.plan = state->plan.key;
    if (std::optional<index::QueryResult> cached = cache_.Lookup(state->key)) {
      r.result = std::move(*cached);
      r.cache_hit = true;
      r.snapshot = state->snap;
      r.snapshot_version = version;
      end_admit_span();
      Complete(state, StatusCode::kOk);
      return;
    }
  }
  const exec::CoverKey cover_key = state->plan.cover_key();
  if (cover_cache_.enabled()) {
    // A cover already built for this version means no heavy stage: solve
    // right here on the fast lane. This is what keeps cache-warm queries
    // from ever waiting behind queued builds.
    if (exec::CoverPtr cover = cover_cache_.TryGet(version, cover_key)) {
      ctx_->stats.RecordCoverShared();
      state->trace.AddFlags(obs::kFlagCoverShared);
      end_admit_span();
      FinishOnCover(state, state->snap, cover, /*cover_reused=*/true,
                    /*stale=*/false);
      return;
    }
  }
  // Backpressure: a fresh answer needs a build. If builds are backed up
  // and the policy tolerates lag, answer from a previous version — the
  // shed work is the *build*, never a cheap hit, and the response is
  // explicitly flagged stale + shed with the version it came from. This
  // runs even with the cover cache disabled: the *result* cache can
  // still serve a previous version's answer (NETCLUS_COVER_CACHE=0 used
  // to silently disable stale serving too).
  const uint64_t max_lag = state->request.staleness.max_version_lag;
  if (max_lag > 0 &&
      scheduler_->QueueDepth(Lane::kHeavy) >= options_.shed_builds_over) {
    if (state->cacheable) {
      uint64_t served_version = 0;
      if (std::optional<index::QueryResult> staler =
              cache_.LookupStale(state->key, max_lag, &served_version)) {
        r.result = std::move(*staler);
        r.cache_hit = true;
        r.shed = true;
        r.stale = served_version != version;
        r.snapshot_version = served_version;
        r.snapshot = registry_.AcquireVersion(served_version);
        if (r.stale) ctx_->stats.RecordStaleServed();
        end_admit_span();
        Complete(state, StatusCode::kOk);
        return;
      }
    }
    uint64_t cover_version = 0;
    if (exec::CoverPtr cover = cover_cache_.TryGetStale(
            version, cover_key, max_lag, &cover_version)) {
      if (SnapshotPtr old_snap = registry_.AcquireVersion(cover_version)) {
        ctx_->stats.RecordCoverShared();
        state->trace.AddFlags(obs::kFlagCoverShared);
        r.shed = true;
        end_admit_span();
        FinishOnCover(state, old_snap, cover, /*cover_reused=*/true,
                      /*stale=*/cover_version != version);
        return;
      }
    }
    // Nothing stale to serve — fall through and pay for the build.
  }
  end_admit_span();
  if (!scheduler_->Submit(Lane::kHeavy,
                          [this, state] { StageBuild(state); })) {
    Complete(state, StatusCode::kShutdown);
  }
}

void NetClusServer::StageBuild(const std::shared_ptr<AsyncState>& state) {
  state->lane = LaneIdx(Lane::kHeavy);
  if (state->DeadlineExpired()) {
    ctx_->stats.RecordShedDeadline();
    state->response.shed = true;
    Complete(state, StatusCode::kDeadlineExceeded);
    return;
  }
  const uint64_t build_start = obs::TraceNowNs();
  const SnapshotPtr& snap = state->snap;
  try {
    exec::CoverHooks hooks;
    if (cover_cache_.enabled()) {
      const uint64_t version = snap->version();
      hooks.acquire = [this, version](
                          const exec::CoverKey& cover_key,
                          const std::function<exec::CoverPtr()>& build,
                          bool* reused) {
        return cover_cache_.GetOrBuild(version, cover_key, build, reused);
      };
    }
    const exec::Executor executor(&snap->index(), &snap->store(),
                                  &snap->sites(), ctx_.get(), hooks);
    bool reused = false;
    const exec::CoverPtr cover =
        executor.ObtainCover(state->plan, state->plan.threads, &reused);
    if (reused) state->trace.AddFlags(obs::kFlagCoverShared);
    state->trace.AddSpan(obs::SpanName::kCoverBuild, state->lane, build_start,
                         obs::TraceNowNs());
    FinishOnCover(state, snap, cover, reused, /*stale=*/false);
  } catch (const std::exception& e) {
    // The serving boundary returns statuses, not exceptions; a failed
    // build is indistinguishable from a plan the executor refuses.
    NC_SLOG_ERROR("cover_build_failed").Kv("what", e.what());
    Complete(state, StatusCode::kInvalidSpec);
  }
}

void NetClusServer::FinishOnCover(const std::shared_ptr<AsyncState>& state,
                                  const SnapshotPtr& snap,
                                  const exec::CoverPtr& cover,
                                  bool cover_reused, bool stale) {
  Response& r = state->response;
  const uint64_t exec_start = obs::TraceNowNs();
  const exec::Executor executor(&snap->index(), &snap->store(), &snap->sites(),
                                ctx_.get());
  r.result = executor.ExecuteOnCover(state->plan, cover, cover_reused);
  const uint64_t exec_end = obs::TraceNowNs();
  if (state->trace.sampled()) {
    // The executor times its solve phase internally; carve the execute
    // window into Solve + Assemble from that measurement so both stages
    // show up without instrumenting executor internals.
    uint64_t solve_ns = static_cast<uint64_t>(
        r.result.selection.solve_seconds * 1e9);
    if (exec_start + solve_ns > exec_end) solve_ns = exec_end - exec_start;
    state->trace.AddSpan(obs::SpanName::kSolve, state->lane, exec_start,
                         exec_start + solve_ns);
    state->trace.AddSpan(obs::SpanName::kAssemble, state->lane,
                         exec_start + solve_ns, exec_end);
  }
  r.snapshot = snap;
  r.snapshot_version = snap->version();
  r.stale = stale;
  if (stale) ctx_->stats.RecordStaleServed();
  if (state->cacheable) {
    QueryKey key = state->key;
    key.version = snap->version();  // a stale answer caches at its version
    cache_.Insert(key, r.result);
  }
  state->trace.AddSpan(obs::SpanName::kFinish, state->lane, exec_end,
                       obs::TraceNowNs());
  Complete(state, StatusCode::kOk);
}

void NetClusServer::Complete(const std::shared_ptr<AsyncState>& state,
                             StatusCode status) {
  Response& r = state->response;
  r.status = status;
  r.latency_seconds = state->timer.Seconds();
  if (state->holds_slot) {
    admitted_[SlotOf(state->request.priority)].fetch_sub(
        1, std::memory_order_acq_rel);
    state->holds_slot = false;
  }
  if (status == StatusCode::kOk) {
    latency_.Record(r.latency_seconds);
    queries_served_.fetch_add(1, std::memory_order_relaxed);
  }
  if (r.cache_hit) state->trace.AddFlags(obs::kFlagCacheHit);
  if (r.stale) state->trace.AddFlags(obs::kFlagStale);
  if (r.shed) state->trace.AddFlags(obs::kFlagShed);
  if (status != StatusCode::kOk) state->trace.AddFlags(obs::kFlagError);
  const bool slow =
      slow_query_seconds_ > 0.0 && r.latency_seconds >= slow_query_seconds_;
  // Tail keep: slow, shed, or errored requests always leave spans, even
  // when head sampling skipped them.
  state->trace.Finish(state->lane,
                      slow || r.shed || status != StatusCode::kOk,
                      state->queue_end_ns);
  if (slow) {
    if (slow_queries_ != nullptr) slow_queries_->Increment();
    NC_SLOG_WARNING("slow_query")
        .Kv("trace_id", state->trace.trace_id())
        .Kv("latency_ms", r.latency_seconds * 1e3)
        .Kv("queue_ms", r.queue_seconds * 1e3)
        .Kv("status", StatusName(status))
        .Kv("priority", kPriorityNames[SlotOf(state->request.priority)])
        .Kv("snapshot", r.snapshot_version)
        .Kv("plan", state->plan.key.Fingerprint())
        .Kv("cache_hit", r.cache_hit)
        .Kv("stale", r.stale)
        .Kv("shed", r.shed);
  }
  if (state->callback) {
    state->callback(std::move(r));
  } else {
    state->promise.set_value(std::move(r));
  }
}

// --- blocking v1 shims --------------------------------------------------------

ServeResult NetClusServer::AnswerInline(const Engine::QuerySpec& spec,
                                        const SnapshotPtr& snap) {
  util::WallTimer timer;
  ServeResult out;
  out.snapshot = snap;
  out.snapshot_version = snap->version();
  const Engine::QuerySpec canon = CanonicalizeSpec(spec);
  try {
    const exec::Planner planner(ctx_.get());
    const exec::QueryPlan plan =
        planner.Plan(canon.ToRequest(options_.query_threads), snap->index(),
                     /*batch_size=*/1);
    QueryKey key;
    const bool result_cacheable = cache_.enabled() && plan.cacheable;
    if (result_cacheable) {
      key.version = snap->version();
      key.plan = plan.key;
    }
    std::optional<index::QueryResult> cached =
        result_cacheable ? cache_.Lookup(key) : std::nullopt;
    if (cached.has_value()) {
      out.result = std::move(*cached);
      out.cache_hit = true;
    } else {
      exec::CoverHooks hooks;
      if (cover_cache_.enabled()) {
        const uint64_t version = snap->version();
        hooks.acquire = [this, version](
                            const exec::CoverKey& cover_key,
                            const std::function<exec::CoverPtr()>& build,
                            bool* reused) {
          return cover_cache_.GetOrBuild(version, cover_key, build, reused);
        };
      }
      const exec::Executor executor(&snap->index(), &snap->store(),
                                    &snap->sites(), ctx_.get(), hooks);
      out.result = executor.Execute(plan);
      if (result_cacheable) cache_.Insert(key, out.result);
    }
  } catch (const std::exception& e) {
    NC_SLOG_WARNING("invalid_spec").Kv("what", e.what());
    out.snapshot = nullptr;
    out.snapshot_version = 0;
    out.status = StatusCode::kInvalidSpec;
    out.latency_seconds = timer.Seconds();
    return out;
  }
  out.latency_seconds = timer.Seconds();
  latency_.Record(out.latency_seconds);
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

ServeResult NetClusServer::Submit(const Engine::QuerySpec& spec) {
  if (!scheduler_->stopping()) {
    Request request;
    request.spec = spec;
    ServeResult r = SubmitAsync(std::move(request)).get();
    // A shutdown racing this call falls through to the inline path, so
    // blocking reads keep their v1 guarantee: they work for the life of
    // the server object.
    if (r.status != StatusCode::kShutdown) return r;
  }
  return AnswerInline(spec, registry_.Acquire());
}

std::vector<ServeResult> NetClusServer::SubmitBatch(
    std::span<const Engine::QuerySpec> specs) {
  // One snapshot for the whole batch: every answer reflects the same
  // version even if the pipeline publishes mid-batch. The caller already
  // batched, so this path bypasses admission and runs inline.
  const SnapshotPtr snap = registry_.Acquire();
  return util::ParallelMap<ServeResult>(
      options_.batch_threads, specs.size(),
      [&](size_t i) { return AnswerInline(specs[i], snap); }, /*grain=*/1);
}

// --- writes / lifecycle -------------------------------------------------------

UpdateTicket NetClusServer::Mutate(UpdateOp op) {
  return pipeline_->Enqueue(std::move(op));
}

UpdateTicket NetClusServer::MutateAddTrajectory(
    std::vector<graph::NodeId> nodes) {
  return Mutate(UpdateOp::AddTrajectory(std::move(nodes)));
}

UpdateTicket NetClusServer::MutateRemoveTrajectory(traj::TrajId id) {
  return Mutate(UpdateOp::RemoveTrajectory(id));
}

UpdateTicket NetClusServer::MutateAddSite(graph::NodeId node) {
  return Mutate(UpdateOp::AddSite(node));
}

void NetClusServer::Flush() { pipeline_->Flush(); }

void NetClusServer::OnPublish(uint64_t old_version, uint64_t new_version,
                              const DeltaSummary& delta) {
  if (carryover_enabled_) {
    carryover_publishes_.fetch_add(1, std::memory_order_relaxed);
    carryover_clean_partitions_.fetch_add(
        delta.dirty.size() - delta.DirtyCount(), std::memory_order_relaxed);
    // Covers first: a carried query-cache entry implies its partition is
    // clean, so its cover carries too — keeping both warm means a
    // standing-query re-evaluation below is a lookup, not a build.
    cover_cache_.CarryForward(old_version, new_version, delta);
    cache_.CarryForward(old_version, new_version, delta);
  }
  standing_.OnPublish(new_version, delta,
                      [this](const Engine::QuerySpec& spec) {
                        return AnswerInline(spec, registry_.Acquire()).result;
                      });
}

uint64_t NetClusServer::RegisterStanding(const Engine::QuerySpec& spec,
                                         StalenessPolicy staleness,
                                         StandingCallback callback) {
  const SnapshotPtr snap = registry_.Acquire();
  Engine::QuerySpec canon = CanonicalizeSpec(spec);
  exec::QueryPlan plan;
  try {
    const exec::Planner planner(ctx_.get());
    plan = planner.Plan(canon.ToRequest(options_.query_threads),
                        snap->index(), /*batch_size=*/1);
    exec::Executor(&snap->index(), &snap->store(), &snap->sites(), ctx_.get())
        .ValidatePlan(plan);
  } catch (const std::exception& e) {
    NC_SLOG_WARNING("standing_invalid_spec").Kv("what", e.what());
    return 0;
  }
  return standing_.Register(std::move(canon), plan.instance,
                            staleness.max_version_lag, std::move(callback),
                            snap->version(),
                            [this](const Engine::QuerySpec& s) {
                              return AnswerInline(s, registry_.Acquire())
                                  .result;
                            });
}

bool NetClusServer::UnregisterStanding(uint64_t id) {
  return standing_.Unregister(id);
}

void NetClusServer::Shutdown() {
  // Drain the async readers first (their stages may still acquire
  // snapshots), then the writer.
  scheduler_->Shutdown();
  pipeline_->Shutdown();
}

void NetClusServer::RegisterMetrics() {
  obs::MetricsRegistry& m = ctx_->metrics;
  // Stage histograms and the exec/shed counters were bound by
  // ExecContext's constructor (StatsRegistry::BindMetrics); everything
  // below is the serving layer's own surface. Providers capture `this`,
  // which outlives ctx_->metrics by ownership.
  for (size_t i = 0; i < util::StagedScheduler::kLanes; ++i) {
    const Lane lane = static_cast<Lane>(i);
    m.RegisterProvider("netclus_sched_queue_depth",
                       {{"lane", kLaneNames[i]}},
                       "Tasks waiting in the lane's injector queue",
                       /*counter=*/false, [this, lane]() {
                         return static_cast<double>(
                             scheduler_->QueueDepth(lane));
                       });
    m.RegisterProvider("netclus_sched_executed_total",
                       {{"lane", kLaneNames[i]}},
                       "Tasks run to completion by claim lane",
                       /*counter=*/true, [this, i]() {
                         return static_cast<double>(
                             scheduler_->stats().executed_lane[i]);
                       });
    m.RegisterProvider("netclus_sched_injected_total",
                       {{"lane", kLaneNames[i]}},
                       "External submits per lane", /*counter=*/true,
                       [this, i]() {
                         return static_cast<double>(
                             scheduler_->stats().injected[i]);
                       });
  }
  m.RegisterProvider("netclus_sched_stolen_total", {},
                     "Tasks stolen from another worker's deque",
                     /*counter=*/true, [this]() {
                       return static_cast<double>(scheduler_->stats().stolen);
                     });
  m.RegisterProvider("netclus_sched_utilization", {},
                     "Mean fraction of the pool running a task",
                     /*counter=*/false, [this]() {
                       return scheduler_->stats().utilization;
                     });
  m.RegisterProvider("netclus_sched_workers", {}, "Scheduler pool size",
                     /*counter=*/false, [this]() {
                       return static_cast<double>(scheduler_->workers());
                     });

  const auto cache_stat = [this](uint64_t QueryCache::Stats::*field) {
    return [this, field]() {
      return static_cast<double>(cache_.stats().*field);
    };
  };
  m.RegisterProvider("netclus_query_cache_hits_total", {},
                     "Result-cache hits", true,
                     cache_stat(&QueryCache::Stats::hits));
  m.RegisterProvider("netclus_query_cache_misses_total", {},
                     "Result-cache misses", true,
                     cache_stat(&QueryCache::Stats::misses));
  m.RegisterProvider("netclus_query_cache_evictions_total", {},
                     "Result-cache LRU evictions", true,
                     cache_stat(&QueryCache::Stats::evictions));
  m.RegisterProvider("netclus_query_cache_stale_hits_total", {},
                     "Successful stale-version probes", true,
                     cache_stat(&QueryCache::Stats::stale_hits));
  m.RegisterProvider("netclus_query_cache_entries", {},
                     "Resident result-cache entries", false,
                     cache_stat(&QueryCache::Stats::entries));
  m.RegisterProvider("netclus_query_cache_carried_total", {},
                     "Result-cache entries re-keyed across publishes", true,
                     cache_stat(&QueryCache::Stats::carried));

  const auto cover_stat = [this](uint64_t CoverCache::Stats::*field) {
    return [this, field]() {
      return static_cast<double>(cover_cache_.stats().*field);
    };
  };
  m.RegisterProvider("netclus_cover_cache_hits_total", {},
                     "Cover-cache hits (existing or in-flight builds)", true,
                     cover_stat(&CoverCache::Stats::hits));
  m.RegisterProvider("netclus_cover_cache_misses_total", {},
                     "Cover-cache misses (built here)", true,
                     cover_stat(&CoverCache::Stats::misses));
  m.RegisterProvider("netclus_cover_cache_evictions_total", {},
                     "Cover-cache LRU evictions", true,
                     cover_stat(&CoverCache::Stats::evictions));
  m.RegisterProvider("netclus_cover_cache_entries", {},
                     "Resident covers", false,
                     cover_stat(&CoverCache::Stats::entries));
  m.RegisterProvider("netclus_cover_cache_resident_bytes", {},
                     "Bytes of completed resident covers", false,
                     cover_stat(&CoverCache::Stats::resident_bytes));
  m.RegisterProvider("netclus_cover_cache_carried_total", {},
                     "Covers re-keyed across publishes", true,
                     cover_stat(&CoverCache::Stats::carried));

  m.RegisterProvider("netclus_carryover_publishes_total", {},
                     "Publishes processed by delta-aware cache carryover",
                     true, [this]() {
                       return static_cast<double>(carryover_publishes_.load(
                           std::memory_order_relaxed));
                     });
  m.RegisterProvider("netclus_carryover_clean_partitions_total", {},
                     "Untouched instance partitions across those publishes",
                     true, [this]() {
                       return static_cast<double>(
                           carryover_clean_partitions_.load(
                               std::memory_order_relaxed));
                     });

  const auto standing_stat =
      [this](uint64_t StandingQueryRegistry::Stats::*field) {
        return [this, field]() {
          return static_cast<double>(standing_.stats().*field);
        };
      };
  m.RegisterProvider("netclus_standing_active", {},
                     "Currently registered standing queries", false,
                     standing_stat(&StandingQueryRegistry::Stats::active));
  m.RegisterProvider(
      "netclus_standing_evaluations_total", {},
      "Standing-query evaluations run (incl. initial)", true,
      standing_stat(&StandingQueryRegistry::Stats::evaluations));
  m.RegisterProvider("netclus_standing_pushes_total", {},
                     "Standing-query callbacks invoked (changed results)",
                     true,
                     standing_stat(&StandingQueryRegistry::Stats::pushes));
  m.RegisterProvider(
      "netclus_standing_skipped_clean_total", {},
      "Publishes skipped because the entry's instance was untouched", true,
      standing_stat(&StandingQueryRegistry::Stats::skipped_clean));
  m.RegisterProvider("netclus_standing_deferred_total", {},
                     "Dirty publishes coalesced within the staleness budget",
                     true,
                     standing_stat(&StandingQueryRegistry::Stats::deferred));

  m.RegisterProvider("netclus_update_queue_depth", {},
                     "Mutations accepted but not yet applied", false,
                     [this]() {
                       return static_cast<double>(pipeline_->QueueDepth());
                     });
  const auto update_stat = [this](uint64_t UpdatePipeline::Stats::*field) {
    return [this, field]() {
      return static_cast<double>(pipeline_->stats().*field);
    };
  };
  m.RegisterProvider("netclus_update_ops_enqueued_total", {},
                     "Mutations accepted at Enqueue", true,
                     update_stat(&UpdatePipeline::Stats::ops_enqueued));
  m.RegisterProvider("netclus_update_ops_applied_total", {},
                     "Mutations applied and published", true,
                     update_stat(&UpdatePipeline::Stats::ops_applied));
  m.RegisterProvider("netclus_update_ops_rejected_total", {},
                     "Mutations rejected at Enqueue", true,
                     update_stat(&UpdatePipeline::Stats::ops_rejected));
  m.RegisterProvider("netclus_update_batches_published_total", {},
                     "Snapshot versions published by the writer", true,
                     update_stat(&UpdatePipeline::Stats::batches_published));

  m.RegisterProvider("netclus_snapshot_version", {},
                     "Currently published snapshot version", false, [this]() {
                       return static_cast<double>(registry_.current_version());
                     });
  m.RegisterProvider("netclus_serve_queries_total", {},
                     "kOk completions (fresh or stale)", true, [this]() {
                       return static_cast<double>(
                           queries_served_.load(std::memory_order_relaxed));
                     });
  for (size_t p = 0; p < kNumPriorities; ++p) {
    m.RegisterProvider("netclus_serve_admitted",
                       {{"priority", kPriorityNames[p]}},
                       "In-flight admitted requests", false, [this, p]() {
                         return static_cast<double>(
                             admitted_[p].load(std::memory_order_relaxed));
                       });
  }
  m.RegisterHistogramView("netclus_serve_latency_seconds", {},
                          "End-to-end kOk serving latency", &latency_);
  m.RegisterProvider("netclus_trace_spans_total", {},
                     "Spans pushed into the trace ring", true, [this]() {
                       return static_cast<double>(tracer_->recorded());
                     });
  slow_queries_ = m.GetCounter(
      "netclus_serve_slow_queries_total", {},
      "Completions at or above the slow-query threshold");
}

ServerStats NetClusServer::stats() const {
  ServerStats s;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.uptime_seconds = uptime_.Seconds();
  s.qps = s.uptime_seconds > 0.0
              ? static_cast<double>(s.queries_served) / s.uptime_seconds
              : 0.0;
  s.latency_p50_ms = latency_.PercentileSeconds(0.50) * 1e3;
  s.latency_p95_ms = latency_.PercentileSeconds(0.95) * 1e3;
  s.latency_p99_ms = latency_.PercentileSeconds(0.99) * 1e3;
  s.latency_p999_ms = latency_.PercentileSeconds(0.999) * 1e3;
  s.latency_mean_ms = latency_.MeanSeconds() * 1e3;
  s.latency_overflow = latency_.overflow_count();
  s.cache = cache_.stats();
  s.cover_cache = cover_cache_.stats();
  s.exec = ctx_->stats.snapshot();
  s.updates = pipeline_->stats();
  s.scheduler = scheduler_->stats();
  s.standing = standing_.stats();
  s.carryover_publishes =
      carryover_publishes_.load(std::memory_order_relaxed);
  s.carryover_clean_partitions =
      carryover_clean_partitions_.load(std::memory_order_relaxed);
  s.snapshot_version = registry_.current_version();
  return s;
}

}  // namespace netclus::serve

namespace netclus {

std::unique_ptr<serve::NetClusServer> Engine::Serve() const {
  return Serve(serve::ServerOptions());
}

std::unique_ptr<serve::NetClusServer> Engine::Serve(
    const serve::ServerOptions& options) const {
  return std::make_unique<serve::NetClusServer>(*this, options);
}

}  // namespace netclus
