#include "serve/server.h"

#include <exception>
#include <utility>

#include "exec/executor.h"
#include "exec/planner.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace netclus::serve {

namespace {

using Lane = util::StagedScheduler::Lane;

size_t SlotOf(Priority priority) { return static_cast<size_t>(priority); }

// Request stages are cheap (plan + cache probes + solve-on-ready-cover);
// only cover builds are heavy. Interactive traffic gets the front lane.
Lane LaneOf(Priority priority) {
  return priority == Priority::kInteractive ? Lane::kFast : Lane::kNormal;
}

}  // namespace

const char* StatusName(StatusCode status) {
  switch (status) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kShutdown: return "SHUTDOWN";
    case StatusCode::kInvalidSpec: return "INVALID_SPEC";
  }
  return "UNKNOWN";
}

/// Everything one async request carries across its stages. The canonical
/// spec is stored here (not just the plan) because cost/capacity plans
/// borrow spans into the spec's vectors — the state outlives execution by
/// construction, since every stage holds the shared_ptr.
struct NetClusServer::AsyncState {
  Request request;
  Engine::QuerySpec canon;
  std::promise<Response> promise;
  std::function<void(Response)> callback;
  util::WallTimer timer;  ///< starts at SubmitAsync
  exec::QueryPlan plan;
  QueryKey key;
  bool cacheable = false;
  bool holds_slot = false;
  SnapshotPtr snap;  ///< the version current at admission
  Response response;

  bool DeadlineExpired() const {
    return request.soft_deadline_seconds > 0.0 &&
           timer.Seconds() > request.soft_deadline_seconds;
  }
};

NetClusServer::NetClusServer(const Engine& engine, const ServerOptions& options)
    : options_(options),
      cache_(options.cache),
      cover_cache_(options.cover_cache),
      ctx_(std::make_shared<exec::ExecContext>()) {
  NC_CHECK(engine.index_built()) << "call Engine::BuildIndex() before Serve()";
  // Snapshots are fully self-contained: the network is copied once here
  // (and shared by every subsequent version), the mutable parts are
  // copied once and from then on evolve only through the pipeline's
  // copy-on-write batches. A retained ServeResult/SnapshotPtr therefore
  // stays valid even after the originating Engine is destroyed.
  auto network = std::make_shared<const graph::RoadNetwork>(engine.network());
  auto store =
      std::make_shared<traj::TrajectoryStore>(engine.store(), network.get());
  auto sites = std::make_shared<tops::SiteSet>(engine.sites());
  auto index = std::make_shared<index::MultiIndex>(engine.index().Clone());
  registry_.set_history_limit(options.snapshot_history);
  registry_.Publish(std::make_shared<IndexSnapshot>(
      /*version=*/1, std::move(network), std::move(store), std::move(sites),
      std::move(index)));
  pipeline_ = std::make_unique<UpdatePipeline>(&registry_, options.updates);
  util::StagedScheduler::Options sched;
  sched.workers = options.scheduler_workers;
  scheduler_ = std::make_unique<util::StagedScheduler>(sched);
  NC_LOG_INFO << "NetClusServer: serving snapshot v1 ("
              << registry_.Acquire()->store().live_count()
              << " live trajectories, "
              << registry_.Acquire()->sites().size() << " sites, "
              << scheduler_->workers() << " scheduler workers)";
}

NetClusServer::~NetClusServer() { Shutdown(); }

// --- async path --------------------------------------------------------------

std::future<Response> NetClusServer::SubmitAsync(Request request) {
  auto state = std::make_shared<AsyncState>();
  state->request = std::move(request);
  std::future<Response> future = state->promise.get_future();
  Enqueue(std::move(state));
  return future;
}

void NetClusServer::SubmitAsync(Request request,
                                std::function<void(Response)> done) {
  auto state = std::make_shared<AsyncState>();
  state->request = std::move(request);
  state->callback = std::move(done);
  Enqueue(std::move(state));
}

void NetClusServer::Enqueue(std::shared_ptr<AsyncState> state) {
  if (scheduler_->stopping()) {
    Complete(state, StatusCode::kShutdown);
    return;
  }
  const size_t slot = SlotOf(state->request.priority);
  // Admission control: one bounded in-flight budget per priority,
  // released at completion. fetch_add-then-check keeps the reject path
  // lock-free; the momentary overshoot is undone before returning.
  if (admitted_[slot].fetch_add(1, std::memory_order_acq_rel) >=
      options_.admission_capacity[slot]) {
    admitted_[slot].fetch_sub(1, std::memory_order_acq_rel);
    ctx_->stats.RecordShedOverload();
    state->response.shed = true;
    Complete(state, StatusCode::kOverloaded);
    return;
  }
  state->holds_slot = true;
  const Lane lane = LaneOf(state->request.priority);
  if (!scheduler_->Submit(lane, [this, state] { StageAdmit(state); })) {
    Complete(state, StatusCode::kShutdown);
  }
}

void NetClusServer::StageAdmit(const std::shared_ptr<AsyncState>& state) {
  Response& r = state->response;
  r.queue_seconds = state->timer.Seconds();
  ctx_->stats.RecordQueueWait(r.queue_seconds);
  if (state->DeadlineExpired()) {
    ctx_->stats.RecordShedDeadline();
    r.shed = true;
    Complete(state, StatusCode::kDeadlineExceeded);
    return;
  }
  state->snap = registry_.Acquire();
  const uint64_t version = state->snap->version();
  // Plan the same canonical form the cache keys on, so permuted
  // existing-services lists (and bit-equivalent ψ spellings) are one
  // query with one bit-exact answer.
  state->canon = CanonicalizeSpec(state->request.spec);
  try {
    const exec::Planner planner(ctx_.get());
    state->plan =
        planner.Plan(state->canon.ToRequest(options_.query_threads),
                     state->snap->index(), /*batch_size=*/1);
    exec::Executor(&state->snap->index(), &state->snap->store(),
                   &state->snap->sites(), ctx_.get())
        .ValidatePlan(state->plan);
  } catch (const std::exception& e) {
    NC_LOG_WARNING << "serve: invalid spec: " << e.what();
    Complete(state, StatusCode::kInvalidSpec);
    return;
  }
  state->cacheable = cache_.enabled() && state->plan.cacheable;
  if (state->cacheable) {
    state->key.version = version;
    state->key.plan = state->plan.key;
    if (std::optional<index::QueryResult> cached = cache_.Lookup(state->key)) {
      r.result = std::move(*cached);
      r.cache_hit = true;
      r.snapshot = state->snap;
      r.snapshot_version = version;
      Complete(state, StatusCode::kOk);
      return;
    }
  }
  const exec::CoverKey cover_key = state->plan.cover_key();
  if (cover_cache_.enabled()) {
    // A cover already built for this version means no heavy stage: solve
    // right here on the fast lane. This is what keeps cache-warm queries
    // from ever waiting behind queued builds.
    if (exec::CoverPtr cover = cover_cache_.TryGet(version, cover_key)) {
      ctx_->stats.RecordCoverShared();
      FinishOnCover(state, state->snap, cover, /*cover_reused=*/true,
                    /*stale=*/false);
      return;
    }
    // Backpressure: a fresh answer needs a build. If builds are backed up
    // and the policy tolerates lag, answer from a previous version — the
    // shed work is the *build*, never a cheap hit, and the response is
    // explicitly flagged stale + shed with the version it came from.
    const uint64_t max_lag = state->request.staleness.max_version_lag;
    if (max_lag > 0 &&
        scheduler_->QueueDepth(Lane::kHeavy) >= options_.shed_builds_over) {
      if (state->cacheable) {
        uint64_t served_version = 0;
        if (std::optional<index::QueryResult> staler =
                cache_.LookupStale(state->key, max_lag, &served_version)) {
          r.result = std::move(*staler);
          r.cache_hit = true;
          r.shed = true;
          r.stale = served_version != version;
          r.snapshot_version = served_version;
          r.snapshot = registry_.AcquireVersion(served_version);
          if (r.stale) ctx_->stats.RecordStaleServed();
          Complete(state, StatusCode::kOk);
          return;
        }
      }
      uint64_t cover_version = 0;
      if (exec::CoverPtr cover = cover_cache_.TryGetStale(
              version, cover_key, max_lag, &cover_version)) {
        if (SnapshotPtr old_snap = registry_.AcquireVersion(cover_version)) {
          ctx_->stats.RecordCoverShared();
          r.shed = true;
          FinishOnCover(state, old_snap, cover, /*cover_reused=*/true,
                        /*stale=*/cover_version != version);
          return;
        }
      }
      // Nothing stale to serve — fall through and pay for the build.
    }
  }
  if (!scheduler_->Submit(Lane::kHeavy,
                          [this, state] { StageBuild(state); })) {
    Complete(state, StatusCode::kShutdown);
  }
}

void NetClusServer::StageBuild(const std::shared_ptr<AsyncState>& state) {
  if (state->DeadlineExpired()) {
    ctx_->stats.RecordShedDeadline();
    state->response.shed = true;
    Complete(state, StatusCode::kDeadlineExceeded);
    return;
  }
  const SnapshotPtr& snap = state->snap;
  try {
    exec::CoverHooks hooks;
    if (cover_cache_.enabled()) {
      const uint64_t version = snap->version();
      hooks.acquire = [this, version](
                          const exec::CoverKey& cover_key,
                          const std::function<exec::CoverPtr()>& build,
                          bool* reused) {
        return cover_cache_.GetOrBuild(version, cover_key, build, reused);
      };
    }
    const exec::Executor executor(&snap->index(), &snap->store(),
                                  &snap->sites(), ctx_.get(), hooks);
    bool reused = false;
    const exec::CoverPtr cover =
        executor.ObtainCover(state->plan, state->plan.threads, &reused);
    FinishOnCover(state, snap, cover, reused, /*stale=*/false);
  } catch (const std::exception& e) {
    // The serving boundary returns statuses, not exceptions; a failed
    // build is indistinguishable from a plan the executor refuses.
    NC_LOG_ERROR << "serve: cover build failed: " << e.what();
    Complete(state, StatusCode::kInvalidSpec);
  }
}

void NetClusServer::FinishOnCover(const std::shared_ptr<AsyncState>& state,
                                  const SnapshotPtr& snap,
                                  const exec::CoverPtr& cover,
                                  bool cover_reused, bool stale) {
  Response& r = state->response;
  const exec::Executor executor(&snap->index(), &snap->store(), &snap->sites(),
                                ctx_.get());
  r.result = executor.ExecuteOnCover(state->plan, cover, cover_reused);
  r.snapshot = snap;
  r.snapshot_version = snap->version();
  r.stale = stale;
  if (stale) ctx_->stats.RecordStaleServed();
  if (state->cacheable) {
    QueryKey key = state->key;
    key.version = snap->version();  // a stale answer caches at its version
    cache_.Insert(key, r.result);
  }
  Complete(state, StatusCode::kOk);
}

void NetClusServer::Complete(const std::shared_ptr<AsyncState>& state,
                             StatusCode status) {
  Response& r = state->response;
  r.status = status;
  r.latency_seconds = state->timer.Seconds();
  if (state->holds_slot) {
    admitted_[SlotOf(state->request.priority)].fetch_sub(
        1, std::memory_order_acq_rel);
    state->holds_slot = false;
  }
  if (status == StatusCode::kOk) {
    latency_.Record(r.latency_seconds);
    queries_served_.fetch_add(1, std::memory_order_relaxed);
  }
  if (state->callback) {
    state->callback(std::move(r));
  } else {
    state->promise.set_value(std::move(r));
  }
}

// --- blocking v1 shims --------------------------------------------------------

ServeResult NetClusServer::AnswerInline(const Engine::QuerySpec& spec,
                                        const SnapshotPtr& snap) {
  util::WallTimer timer;
  ServeResult out;
  out.snapshot = snap;
  out.snapshot_version = snap->version();
  const Engine::QuerySpec canon = CanonicalizeSpec(spec);
  try {
    const exec::Planner planner(ctx_.get());
    const exec::QueryPlan plan =
        planner.Plan(canon.ToRequest(options_.query_threads), snap->index(),
                     /*batch_size=*/1);
    QueryKey key;
    const bool result_cacheable = cache_.enabled() && plan.cacheable;
    if (result_cacheable) {
      key.version = snap->version();
      key.plan = plan.key;
    }
    std::optional<index::QueryResult> cached =
        result_cacheable ? cache_.Lookup(key) : std::nullopt;
    if (cached.has_value()) {
      out.result = std::move(*cached);
      out.cache_hit = true;
    } else {
      exec::CoverHooks hooks;
      if (cover_cache_.enabled()) {
        const uint64_t version = snap->version();
        hooks.acquire = [this, version](
                            const exec::CoverKey& cover_key,
                            const std::function<exec::CoverPtr()>& build,
                            bool* reused) {
          return cover_cache_.GetOrBuild(version, cover_key, build, reused);
        };
      }
      const exec::Executor executor(&snap->index(), &snap->store(),
                                    &snap->sites(), ctx_.get(), hooks);
      out.result = executor.Execute(plan);
      if (result_cacheable) cache_.Insert(key, out.result);
    }
  } catch (const std::exception& e) {
    NC_LOG_WARNING << "serve: invalid spec: " << e.what();
    out.snapshot = nullptr;
    out.snapshot_version = 0;
    out.status = StatusCode::kInvalidSpec;
    out.latency_seconds = timer.Seconds();
    return out;
  }
  out.latency_seconds = timer.Seconds();
  latency_.Record(out.latency_seconds);
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

ServeResult NetClusServer::Submit(const Engine::QuerySpec& spec) {
  if (!scheduler_->stopping()) {
    Request request;
    request.spec = spec;
    ServeResult r = SubmitAsync(std::move(request)).get();
    // A shutdown racing this call falls through to the inline path, so
    // blocking reads keep their v1 guarantee: they work for the life of
    // the server object.
    if (r.status != StatusCode::kShutdown) return r;
  }
  return AnswerInline(spec, registry_.Acquire());
}

std::vector<ServeResult> NetClusServer::SubmitBatch(
    std::span<const Engine::QuerySpec> specs) {
  // One snapshot for the whole batch: every answer reflects the same
  // version even if the pipeline publishes mid-batch. The caller already
  // batched, so this path bypasses admission and runs inline.
  const SnapshotPtr snap = registry_.Acquire();
  return util::ParallelMap<ServeResult>(
      options_.batch_threads, specs.size(),
      [&](size_t i) { return AnswerInline(specs[i], snap); }, /*grain=*/1);
}

// --- writes / lifecycle -------------------------------------------------------

UpdateTicket NetClusServer::Mutate(UpdateOp op) {
  return pipeline_->Enqueue(std::move(op));
}

UpdateTicket NetClusServer::MutateAddTrajectory(
    std::vector<graph::NodeId> nodes) {
  return Mutate(UpdateOp::AddTrajectory(std::move(nodes)));
}

UpdateTicket NetClusServer::MutateRemoveTrajectory(traj::TrajId id) {
  return Mutate(UpdateOp::RemoveTrajectory(id));
}

UpdateTicket NetClusServer::MutateAddSite(graph::NodeId node) {
  return Mutate(UpdateOp::AddSite(node));
}

void NetClusServer::Flush() { pipeline_->Flush(); }

void NetClusServer::Shutdown() {
  // Drain the async readers first (their stages may still acquire
  // snapshots), then the writer.
  scheduler_->Shutdown();
  pipeline_->Shutdown();
}

ServerStats NetClusServer::stats() const {
  ServerStats s;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.uptime_seconds = uptime_.Seconds();
  s.qps = s.uptime_seconds > 0.0
              ? static_cast<double>(s.queries_served) / s.uptime_seconds
              : 0.0;
  s.latency_p50_ms = latency_.PercentileSeconds(0.50) * 1e3;
  s.latency_p95_ms = latency_.PercentileSeconds(0.95) * 1e3;
  s.latency_p99_ms = latency_.PercentileSeconds(0.99) * 1e3;
  s.latency_p999_ms = latency_.PercentileSeconds(0.999) * 1e3;
  s.latency_mean_ms = latency_.MeanSeconds() * 1e3;
  s.latency_overflow = latency_.overflow_count();
  s.cache = cache_.stats();
  s.cover_cache = cover_cache_.stats();
  s.exec = ctx_->stats.snapshot();
  s.updates = pipeline_->stats();
  s.scheduler = scheduler_->stats();
  s.snapshot_version = registry_.current_version();
  return s;
}

}  // namespace netclus::serve

namespace netclus {

std::unique_ptr<serve::NetClusServer> Engine::Serve() const {
  return Serve(serve::ServerOptions());
}

std::unique_ptr<serve::NetClusServer> Engine::Serve(
    const serve::ServerOptions& options) const {
  return std::make_unique<serve::NetClusServer>(*this, options);
}

}  // namespace netclus
