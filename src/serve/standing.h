// Standing (continuous) top-k placement queries.
//
// A standing query is a registered TOPS spec the server re-evaluates on
// snapshot publishes and whose subscriber is notified with *diffed*
// top-k results — the ROADMAP "continuous standing queries" item, and the
// consumer the delta-aware carryover machinery was built for: most
// re-evaluations land on carried-forward cache entries and cost a lookup,
// not a solve.
//
// Re-evaluation is delta-gated per entry using the publish's DeltaSummary
// (see delta.h):
//  * the entry's resolution instance is CLEAN → the answer at the new
//    version is bit-identical to the last one; skip the evaluation
//    entirely and just advance the entry's version (skipped_clean).
//  * DIRTY, but the entry's staleness budget tolerates more lag →
//    defer; the entry stays pending and is coalesced into a later
//    publish (deferred). A budget of 0 re-evaluates on every dirty
//    publish.
//  * DIRTY past the budget → evaluate at the new version, diff the
//    top-k site list against the last push, and invoke the callback only
//    when something changed (pushes vs evaluations measures how often
//    updates actually move the answer).
//
// Evaluation runs on the update pipeline's writer thread (publishes are
// the only trigger), serialized with Register/Unregister by one recursive
// mutex — a callback may Unregister itself (or register new queries), but
// must not block and must never call back into the pipeline (Flush on the
// writer thread would self-deadlock).
#ifndef NETCLUS_SERVE_STANDING_H_
#define NETCLUS_SERVE_STANDING_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "api/engine.h"
#include "netclus/query.h"
#include "serve/delta.h"
#include "tops/site_set.h"
#include "util/thread_annotations.h"

namespace netclus::serve {

/// One push to a standing-query subscriber.
struct StandingUpdate {
  uint64_t query_id = 0;
  /// Snapshot version the result was evaluated at.
  uint64_t version = 0;
  /// True for the initial result delivered at registration.
  bool first = false;
  index::QueryResult result;
  /// Top-k membership diff against the previously pushed result (both
  /// empty on the first push).
  std::vector<tops::SiteId> added;
  std::vector<tops::SiteId> removed;
};

using StandingCallback = std::function<void(const StandingUpdate&)>;

class StandingQueryRegistry {
 public:
  /// Evaluates a canonical spec at the current snapshot; supplied per
  /// call by the server (it owns the caches and execution context).
  using Evaluator = std::function<index::QueryResult(const Engine::QuerySpec&)>;

  struct Stats {
    uint64_t registered_total = 0;  ///< Register calls that stuck
    uint64_t active = 0;            ///< currently registered
    uint64_t evaluations = 0;       ///< spec evaluations run (incl. first)
    uint64_t pushes = 0;            ///< callbacks invoked (diff non-empty
                                    ///< or first)
    uint64_t skipped_clean = 0;     ///< publishes skipped: instance clean
    uint64_t deferred = 0;          ///< dirty publishes within the budget
  };

  StandingQueryRegistry() = default;
  StandingQueryRegistry(const StandingQueryRegistry&) = delete;
  StandingQueryRegistry& operator=(const StandingQueryRegistry&) = delete;

  /// Registers `spec` (already canonicalized, resolved to `instance`)
  /// and delivers the initial result: evaluates via `evaluate` at
  /// `version` and pushes it with first = true before returning. Returns
  /// the id for Unregister. `max_version_lag` is the entry's staleness
  /// budget in dirty-but-unevaluated publishes (0 = re-evaluate on every
  /// dirty publish).
  uint64_t Register(Engine::QuerySpec spec, size_t instance,
                    uint64_t max_version_lag, StandingCallback callback,
                    uint64_t version, const Evaluator& evaluate)
      EXCLUDES(mu_);

  /// Removes a standing query. Blocks while a publish evaluation is in
  /// progress (so after it returns, the callback will not fire again);
  /// reentrant from the entry's own callback. Returns false for an
  /// unknown id.
  bool Unregister(uint64_t id) EXCLUDES(mu_);

  /// Publish hook: applies the delta-gating above to every entry at
  /// `new_version`. Runs evaluations (and callbacks) inline.
  void OnPublish(uint64_t new_version, const DeltaSummary& delta,
                 const Evaluator& evaluate) EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);
  Stats stats() const EXCLUDES(mu_);

 private:
  struct Entry {
    Engine::QuerySpec spec;  ///< canonical form; owns its vectors
    size_t instance = 0;
    uint64_t max_version_lag = 0;
    StandingCallback callback;
    uint64_t last_eval_version = 0;
    /// Dirty publishes seen since last_eval_version (the deferral lag).
    uint64_t pending_dirty = 0;
    std::vector<tops::SiteId> last_sites;  ///< last pushed top-k
  };

  /// Evaluates one entry at `version` and pushes when changed (or
  /// `first`). Caller holds mu_. (Reentrant acquisitions from callbacks
  /// are invisible to the static analysis, which only tracks the
  /// outermost hold — safe because the mutex is recursive.)
  void EvaluateLocked(uint64_t id, Entry& entry, uint64_t version, bool first,
                      const Evaluator& evaluate) REQUIRES(mu_);

  /// Recursive: callbacks run under the lock and may Unregister/Register.
  mutable nc::RecursiveMutex mu_;
  std::unordered_map<uint64_t, Entry> entries_ GUARDED_BY(mu_);
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  uint64_t registered_total_ GUARDED_BY(mu_) = 0;
  uint64_t evaluations_ GUARDED_BY(mu_) = 0;
  uint64_t pushes_ GUARDED_BY(mu_) = 0;
  uint64_t skipped_clean_ GUARDED_BY(mu_) = 0;
  uint64_t deferred_ GUARDED_BY(mu_) = 0;
};

}  // namespace netclus::serve

#endif  // NETCLUS_SERVE_STANDING_H_
