#include "serve/update_pipeline.h"

#include <algorithm>
#include <utility>

#include "util/float_bits.h"
#include "util/logging.h"
#include "util/timer.h"

namespace netclus::serve {

UpdateOp UpdateOp::AddTrajectory(std::vector<graph::NodeId> nodes) {
  UpdateOp op;
  op.kind = Kind::kAddTrajectory;
  op.nodes = std::move(nodes);
  return op;
}

UpdateOp UpdateOp::RemoveTrajectory(traj::TrajId traj) {
  UpdateOp op;
  op.kind = Kind::kRemoveTrajectory;
  op.traj = traj;
  return op;
}

UpdateOp UpdateOp::AddSite(graph::NodeId node) {
  UpdateOp op;
  op.kind = Kind::kAddSite;
  op.node = node;
  return op;
}

UpdatePipeline::UpdatePipeline(SnapshotRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  NC_CHECK(registry_ != nullptr);
  NC_CHECK_GE(options_.max_batch, 1u);
  const SnapshotPtr current = registry_->Acquire();
  NC_CHECK(current != nullptr) << "publish an initial snapshot first";
  network_ = &current->network();
  next_traj_id_ = static_cast<traj::TrajId>(current->store().total_count());
  writer_ = std::thread([this] { WriterLoop(); });
}

UpdatePipeline::~UpdatePipeline() { Shutdown(); }

UpdateTicket UpdatePipeline::Enqueue(UpdateOp op) {
  UpdateTicket ticket;
  // Validate before taking the lock: the network is immutable, and the
  // O(path-length) node scan must not serialize every other Enqueue /
  // Flush / stats caller. The check also runs here rather than on the
  // writer thread because a bad node id must bounce the one op, never
  // abort the service inside TrajectoryStore::Add.
  bool valid = true;
  switch (op.kind) {
    case UpdateOp::Kind::kAddTrajectory:
      if (op.nodes.empty()) {
        NC_LOG_WARNING << "UpdatePipeline: empty trajectory; dropped";
        valid = false;
        break;
      }
      for (graph::NodeId n : op.nodes) {
        if (n >= network_->num_nodes()) {
          NC_LOG_WARNING << "UpdatePipeline: trajectory node " << n
                         << " outside the network (" << network_->num_nodes()
                         << " nodes); dropped";
          valid = false;
          break;
        }
      }
      break;
    case UpdateOp::Kind::kRemoveTrajectory:
      // Unknown / already-removed ids are applied as documented no-ops by
      // the store and index, so they are accepted here: rejecting would
      // need the writer's view of liveness, which is what the queue
      // serializes in the first place.
      break;
    case UpdateOp::Kind::kAddSite:
      if (op.node >= network_->num_nodes()) {
        NC_LOG_WARNING << "UpdatePipeline: AddSite(" << op.node
                       << ") outside the network (" << network_->num_nodes()
                       << " nodes); dropped";
        valid = false;
      }
      break;
  }

  const nc::MutexLock lock(mu_);
  if (stopping_) {
    ++stats_.ops_rejected;
    NC_LOG_WARNING << "UpdatePipeline: op enqueued after Shutdown; dropped";
    return ticket;
  }
  if (!valid) {
    ++stats_.ops_rejected;
    return ticket;
  }
  if (queue_.size() >= options_.max_queue) {
    ++stats_.ops_rejected;
    NC_LOG_WARNING << "UpdatePipeline: queue full (" << queue_.size()
                   << " pending ops); dropped — back off and retry";
    return ticket;
  }
  if (op.kind == UpdateOp::Kind::kAddTrajectory) {
    ticket.traj = next_traj_id_++;
  }
  ticket.accepted = true;
  ticket.sequence = next_sequence_++;
  ++stats_.ops_enqueued;
  queue_.push_back(std::move(op));
  queue_cv_.NotifyOne();
  return ticket;
}

void UpdatePipeline::Flush() {
  nc::MutexLock lock(mu_);
  const uint64_t target = next_sequence_ - 1;
  while (applied_sequence_ < target) applied_cv_.Wait(lock);
}

void UpdatePipeline::WaitFor(const UpdateTicket& ticket) {
  if (!ticket.accepted) return;
  nc::MutexLock lock(mu_);
  while (applied_sequence_ < ticket.sequence) applied_cv_.Wait(lock);
}

void UpdatePipeline::Shutdown() {
  // Claim the writer thread under the lock so concurrent Shutdown calls
  // (e.g. an explicit drain racing the destructor) cannot both join it;
  // the caller that loses the claim must still WAIT for the drain — a
  // Shutdown that returns early would let the destructor free members
  // the writer is still using.
  std::thread claimed;
  {
    const nc::MutexLock lock(mu_);
    stopping_ = true;
    queue_cv_.NotifyOne();
    claimed = std::move(writer_);
  }
  if (claimed.joinable()) {
    claimed.join();
    const nc::MutexLock lock(mu_);
    drained_ = true;
    applied_cv_.NotifyAll();
  } else {
    nc::MutexLock lock(mu_);
    while (!drained_) applied_cv_.Wait(lock);
  }
}

UpdatePipeline::Stats UpdatePipeline::stats() const {
  const nc::MutexLock lock(mu_);
  return stats_;
}

void UpdatePipeline::WriterLoop() {
  for (;;) {
    std::vector<UpdateOp> batch;
    {
      nc::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(lock);
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      const size_t take = std::min(options_.max_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ApplyBatch(std::move(batch));
  }
}

void UpdatePipeline::ApplyBatch(std::vector<UpdateOp> batch) {
  util::WallTimer timer;
  const SnapshotPtr base = registry_->Acquire();

  // Copy-on-write: private mutable copies of everything the batch may
  // touch. The network is shared — dynamic sites live on existing nodes.
  auto store = std::make_shared<traj::TrajectoryStore>(base->store());
  auto sites = std::make_shared<tops::SiteSet>(base->sites());
  auto index = std::make_shared<index::MultiIndex>(base->index().Clone());

  // Dirtiness is decided per op while applying (see delta.h for why each
  // op kind dirties what it does); `rep_before` is scratch for the
  // AddSite before/after representative comparison.
  DeltaSummary delta(index->num_instances());
  std::vector<std::pair<uint32_t, std::pair<tops::SiteId, float>>> rep_before;

  for (UpdateOp& op : batch) {
    switch (op.kind) {
      case UpdateOp::Kind::kAddTrajectory: {
        const traj::TrajId id = store->Add(std::move(op.nodes));
        index->AddTrajectory(*store, id);
        // The new trajectory's TL postings land in every instance.
        delta.MarkAllDirty();
        ++delta.traj_adds;
        break;
      }
      case UpdateOp::Kind::kRemoveTrajectory: {
        // An id that is not alive (unknown, or already removed) is a
        // documented no-op in both the store and the index — it dirties
        // nothing and must not invalidate carryover.
        const bool effective = op.traj < store->total_count() &&
                               store->is_alive(op.traj);
        store->Remove(op.traj);
        index->RemoveTrajectory(op.traj);
        if (effective) {
          delta.MarkAllDirty();
          ++delta.traj_removes;
        } else {
          ++delta.noop_removes;
        }
        break;
      }
      case UpdateOp::Kind::kAddSite: {
        // Node validity was checked at Enqueue against the shared network.
        // Covers see a new site only through a representative election,
        // so snapshot each instance's affected cluster (representative,
        // rep_rt_m) and dirty exactly the instances where it moved.
        rep_before.clear();
        for (size_t p = 0; p < index->num_instances(); ++p) {
          const index::ClusterIndex& inst = index->instance(p);
          const uint32_t g = inst.cluster_of(op.node);
          const index::Cluster& c = inst.cluster(g);
          rep_before.emplace_back(
              g, std::make_pair(c.representative, c.rep_rt_m));
        }
        const tops::SiteId s = sites->Add(op.node);
        index->AddSite(*store, *sites, s);
        for (size_t p = 0; p < index->num_instances(); ++p) {
          const index::Cluster& c =
              index->instance(p).cluster(rep_before[p].first);
          if (c.representative != rep_before[p].second.first ||
              !util::BitEqual(c.rep_rt_m, rep_before[p].second.second)) {
            delta.MarkInstanceDirty(p);
            ++delta.rep_changes;
          }
        }
        ++delta.site_adds;
        break;
      }
    }
  }

  const uint64_t old_version = base->version();
  const uint64_t new_version = old_version + 1;
  auto next = std::make_shared<IndexSnapshot>(
      new_version, base->network_ptr(), std::move(store), std::move(sites),
      std::move(index));
  registry_->Publish(std::move(next));

  // The hook runs after Publish (the new version is live) but before the
  // applied_sequence_ bump, so a client blocked in Flush()/WaitFor() for
  // this batch observes carried-forward caches and standing-query pushes
  // as already done when it wakes.
  if (options_.on_publish) {
    options_.on_publish(old_version, new_version, delta);
  }

  const nc::MutexLock lock(mu_);
  stats_.ops_applied += batch.size();
  ++stats_.batches_published;
  stats_.apply_seconds += timer.Seconds();
  applied_sequence_ += batch.size();
  applied_cv_.NotifyAll();
}

}  // namespace netclus::serve
