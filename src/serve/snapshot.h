// Snapshot isolation for the serving layer.
//
// An IndexSnapshot is one immutable, refcounted version of the whole
// queryable state: the trajectory corpus, the candidate sites, and the
// multi-resolution NetClus index, plus a QueryEngine wired over exactly
// those parts. Readers acquire the current snapshot once per query and
// keep it alive through a shared_ptr, so
//  * a query never blocks on a writer and never observes a half-applied
//    update (the writer mutates private copies, never a published
//    snapshot), and
//  * a published snapshot outlives every in-flight query that acquired
//    it — memory is reclaimed when the last reader drops its reference.
//
// One owned road-network copy is shared by all versions (the update
// pipeline restricts dynamic sites to existing nodes, per Sec. 6),
// while the store / sites / index are per-version copies produced by
// the UpdatePipeline's copy-on-write batches. Snapshots own everything
// they reference, so a retained SnapshotPtr stays valid regardless of
// what created it.
#ifndef NETCLUS_SERVE_SNAPSHOT_H_
#define NETCLUS_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "graph/road_network.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "tops/site_set.h"
#include "traj/trajectory_store.h"
#include "util/thread_annotations.h"

namespace netclus::serve {

class IndexSnapshot {
 public:
  /// All parts must be non-null; the store must reference `network`.
  IndexSnapshot(uint64_t version,
                std::shared_ptr<const graph::RoadNetwork> network,
                std::shared_ptr<const traj::TrajectoryStore> store,
                std::shared_ptr<const tops::SiteSet> sites,
                std::shared_ptr<const index::MultiIndex> index);

  IndexSnapshot(const IndexSnapshot&) = delete;
  IndexSnapshot& operator=(const IndexSnapshot&) = delete;

  /// Monotonically increasing publish version (1 = the initial snapshot).
  uint64_t version() const { return version_; }

  const graph::RoadNetwork& network() const { return *network_; }
  const traj::TrajectoryStore& store() const { return *store_; }
  const tops::SiteSet& sites() const { return *sites_; }
  const index::MultiIndex& index() const { return *index_; }

  /// Query engine over this snapshot's parts. Deterministic, so two
  /// queries with the same config on the same snapshot return identical
  /// results — the property the serving tests replay against.
  const index::QueryEngine& query() const { return query_; }

  /// The shared_ptr parts, for building the next version without copying
  /// what did not change.
  const std::shared_ptr<const graph::RoadNetwork>& network_ptr() const {
    return network_;
  }
  const std::shared_ptr<const traj::TrajectoryStore>& store_ptr() const {
    return store_;
  }
  const std::shared_ptr<const tops::SiteSet>& sites_ptr() const {
    return sites_;
  }
  const std::shared_ptr<const index::MultiIndex>& index_ptr() const {
    return index_;
  }

 private:
  uint64_t version_;
  std::shared_ptr<const graph::RoadNetwork> network_;
  std::shared_ptr<const traj::TrajectoryStore> store_;
  std::shared_ptr<const tops::SiteSet> sites_;
  std::shared_ptr<const index::MultiIndex> index_;
  index::QueryEngine query_;
};

using SnapshotPtr = std::shared_ptr<const IndexSnapshot>;

/// Holder of the current snapshot with atomic publish. Acquire() and
/// Publish() exchange one shared_ptr under a mutex whose critical section
/// is two refcount operations — readers never wait on an update being
/// applied, only (briefly) on the pointer swap itself.
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  explicit SnapshotRegistry(SnapshotPtr initial);

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// The current snapshot (null before the first Publish).
  SnapshotPtr Acquire() const EXCLUDES(mu_);

  /// A specific retained version, or null when it is not the current one
  /// and has aged out of the history window. Stale-serving uses this to
  /// tag responses with the exact version they were answered from.
  SnapshotPtr AcquireVersion(uint64_t version) const EXCLUDES(mu_);

  /// Version of the current snapshot (0 before the first Publish).
  uint64_t current_version() const EXCLUDES(mu_);

  /// Atomically replaces the current snapshot. `next` must be non-null
  /// and its version must exceed the current one.
  void Publish(SnapshotPtr next) EXCLUDES(mu_);

  /// Caps how many superseded versions AcquireVersion can still find
  /// (the current snapshot is always retained). Default 4; 0 disables
  /// history. Takes effect on the next Publish.
  void set_history_limit(size_t limit) EXCLUDES(mu_);

 private:
  mutable nc::Mutex mu_;
  SnapshotPtr current_ GUARDED_BY(mu_);
  /// Most-recent-last superseded versions, bounded by history_limit_.
  /// Retention here is on top of reader refcounts: a version in the
  /// history stays acquirable even with no in-flight reader.
  std::deque<SnapshotPtr> history_ GUARDED_BY(mu_);
  size_t history_limit_ GUARDED_BY(mu_) = 4;
};

}  // namespace netclus::serve

#endif  // NETCLUS_SERVE_SNAPSHOT_H_
