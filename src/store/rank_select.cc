#include "store/rank_select.h"

#include <cstring>

#include "util/strings.h"

namespace netclus::store {

namespace {

constexpr size_t kHeaderBytes = 4 * sizeof(uint64_t);

unsigned ChooseLowBits(uint64_t universe, size_t n) {
  if (n == 0 || universe / n == 0) return 0;
  const uint64_t ratio = universe / n;
  // floor(log2(ratio)): ratio >= 1 here, so 2^l <= ratio < 2^(l+1).
  unsigned l = 0;
  while ((ratio >> (l + 1)) != 0) ++l;
  return l;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

}  // namespace

void EliasFanoView::Encode(const std::vector<uint64_t>& values,
                           std::vector<uint8_t>* out) {
  const size_t n = values.size();
  const uint64_t universe = n == 0 ? 0 : values.back();
  const unsigned l = ChooseLowBits(universe, n);
  const size_t low_words = (n * l + 63) / 64;
  const size_t high_bits = n + (n == 0 ? 0 : (universe >> l)) + 1;
  const size_t high_words = (high_bits + 63) / 64;

  std::vector<uint64_t> low(low_words, 0);
  std::vector<uint64_t> high(high_words, 0);
  const uint64_t low_mask = l == 0 ? 0 : ((l == 64) ? ~uint64_t{0}
                                                    : (uint64_t{1} << l) - 1);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = values[i];
    if (l > 0) {
      const size_t bitpos = i * l;
      const size_t word = bitpos >> 6;
      const unsigned shift = bitpos & 63;
      low[word] |= (v & low_mask) << shift;
      if (shift + l > 64) low[word + 1] |= (v & low_mask) >> (64 - shift);
    }
    const uint64_t hb = (v >> l) + i;
    high[hb >> 6] |= uint64_t{1} << (hb & 63);
  }

  AppendU64(out, n);
  AppendU64(out, universe);
  AppendU64(out, l);
  AppendU64(out, 0);  // reserved
  for (const uint64_t w : low) AppendU64(out, w);
  for (const uint64_t w : high) AppendU64(out, w);
}

bool EliasFanoView::Parse(const uint8_t* data, size_t size, EliasFanoView* out,
                          std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (size < kHeaderBytes) return fail("elias-fano: short header");
  const uint64_t n = ReadU64(data);
  const uint64_t universe = ReadU64(data + 8);
  const uint64_t l = ReadU64(data + 16);
  if (l > 63) return fail("elias-fano: implausible low-bit width");
  // Sizes are recomputed from the header and must match exactly; a lying
  // header is rejected before any array access.
  const uint64_t max_vals = (size - kHeaderBytes) * 8;  // >= 1 bit per value
  if (n > max_vals + 1) return fail("elias-fano: implausible value count");
  const uint64_t low_words = (n * l + 63) / 64;
  const uint64_t high_bits = n + (n == 0 ? 0 : (universe >> l)) + 1;
  const uint64_t high_words = (high_bits + 63) / 64;
  if (high_bits > 0xffffffffull) return fail("elias-fano: sequence too large");
  const uint64_t want = kHeaderBytes + (low_words + high_words) * 8;
  if (want != size) {
    return fail(util::StrFormat("elias-fano: %zu bytes, want %llu", size,
                                static_cast<unsigned long long>(want)));
  }

  EliasFanoView view;
  view.low_ = data + kHeaderBytes;
  view.high_ = data + kHeaderBytes + low_words * 8;
  view.n_ = static_cast<size_t>(n);
  view.universe_ = universe;
  view.l_ = static_cast<unsigned>(l);
  view.high_words_ = static_cast<size_t>(high_words);
  view.serialized_bytes_ = size;

  // One pass over the high words: the set-bit count must equal n (so
  // Select(i) is total for i < n), no set bit may land past high_bits
  // (stray bits would desynchronize select), and every kSelectSample-th
  // set bit's position is sampled for Select.
  uint64_t ones = 0;
  view.samples_.reserve(static_cast<size_t>(n / kSelectSample) + 1);
  for (size_t w = 0; w < high_words; ++w) {
    uint64_t word = view.HighWord(w);
    if (w + 1 == high_words && (high_bits & 63) != 0) {
      const uint64_t valid = (uint64_t{1} << (high_bits & 63)) - 1;
      if ((word & ~valid) != 0) {
        return fail("elias-fano: set bits past the sequence end");
      }
    }
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
      if (ones % kSelectSample == 0) {
        view.samples_.push_back(static_cast<uint32_t>(w * 64 + bit));
      }
      ++ones;
      word &= word - 1;
    }
  }
  if (ones != n) {
    return fail(util::StrFormat("elias-fano: %llu high bits set, want %llu",
                                static_cast<unsigned long long>(ones),
                                static_cast<unsigned long long>(n)));
  }
  *out = std::move(view);
  return true;
}

uint64_t EliasFanoView::LowWord(size_t w) const {
  uint64_t v = 0;
  std::memcpy(&v, low_ + w * 8, sizeof(v));
  return v;
}

uint64_t EliasFanoView::HighWord(size_t w) const {
  uint64_t v = 0;
  std::memcpy(&v, high_ + w * 8, sizeof(v));
  return v;
}

uint64_t EliasFanoView::LowBits(size_t i) const {
  if (l_ == 0) return 0;
  const size_t bitpos = i * l_;
  const size_t word = bitpos >> 6;
  const unsigned shift = bitpos & 63;
  uint64_t v = LowWord(word) >> shift;
  if (shift + l_ > 64) v |= LowWord(word + 1) << (64 - shift);
  return v & ((uint64_t{1} << l_) - 1);
}

uint64_t EliasFanoView::Select(size_t i) const {
  const size_t sample = i / kSelectSample;
  uint64_t pos = samples_[sample];
  size_t need = i - sample * kSelectSample;
  size_t w = pos >> 6;
  uint64_t word = HighWord(w) & (~uint64_t{0} << (pos & 63));
  for (;;) {
    const size_t c = static_cast<size_t>(__builtin_popcountll(word));
    if (need < c) {
      while (need-- > 0) word &= word - 1;
      return w * 64 + static_cast<unsigned>(__builtin_ctzll(word));
    }
    need -= c;
    ++w;
    word = HighWord(w);
  }
}

uint64_t EliasFanoView::Get(size_t i) const {
  return ((Select(i) - i) << l_) | LowBits(i);
}

void EliasFanoView::GetPair(size_t i, uint64_t* a, uint64_t* b) const {
  const uint64_t pos = Select(i);
  *a = ((pos - i) << l_) | LowBits(i);
  // The next value's high bit is the next set bit after pos.
  size_t w = pos >> 6;
  uint64_t word = HighWord(w) & (~uint64_t{0} << (pos & 63));
  word &= word - 1;  // clear the i-th bit itself
  while (word == 0) {
    ++w;
    word = HighWord(w);
  }
  const uint64_t next = w * 64 + static_cast<unsigned>(__builtin_ctzll(word));
  *b = ((next - (i + 1)) << l_) | LowBits(i + 1);
}

}  // namespace netclus::store
