// Elias-Fano encoding of monotone sequences with select acceleration.
//
// The v2 posting arenas spend 8 bytes per list on a plain uint64 offset
// table. The offsets are non-decreasing and bounded by the data size, the
// textbook case for Elias-Fano: value i splits into `l` low bits (packed
// verbatim) and a high part (unary-coded as bit `high + i` in a bit
// vector), costing ~2 + log2(universe / n) bits per value — typically
// 10-20x smaller than the plain table. Random access is select_1(i) on
// the high bits, accelerated by sampling the position of every 64th set
// bit at parse time.
//
// Serialized layout (all fields little-endian uint64):
//
//   +-------------------+----------------------------------------------+
//   | n                 | number of values                             |
//   | universe          | values[n-1] (0 when n == 0)                  |
//   | low_bits          | l, bits per value in the low array           |
//   | reserved          | 0                                            |
//   | low words         | ceil(n * l / 64) uint64                      |
//   | high words        | ceil((n + (universe >> l) + 1) / 64) uint64  |
//   +-------------------+----------------------------------------------+
//
// The reader aliases the serialized bytes (zero copy — they may live in
// an mmap'ed index file); only the small select-sample vector is owned.
// Encoding is deterministic: the same values produce identical bytes.
#ifndef NETCLUS_STORE_RANK_SELECT_H_
#define NETCLUS_STORE_RANK_SELECT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace netclus::store {

class EliasFanoView {
 public:
  EliasFanoView() = default;

  /// Serializes `values` (must be non-decreasing) into `out` (appended).
  static void Encode(const std::vector<uint64_t>& values,
                     std::vector<uint8_t>* out);

  /// Wraps serialized bytes. Validates the header against `size`, counts
  /// the high-bit population (must equal n), and builds select samples.
  /// The bytes must outlive the view — the caller keeps the owning block
  /// alive. Returns false with a message in `error` on malformed input.
  static bool Parse(const uint8_t* data, size_t size, EliasFanoView* out,
                    std::string* error);

  size_t size() const { return n_; }
  uint64_t universe() const { return universe_; }

  /// values[i]; i < size(). O(1) plus a bounded popcount scan.
  uint64_t Get(size_t i) const;

  /// values[i] and values[i + 1] in one high-bits scan — the arena's
  /// list-extent lookup. Requires i + 1 < size().
  void GetPair(size_t i, uint64_t* a, uint64_t* b) const;

  /// Serialized footprint in bytes (0 for a default-constructed view).
  size_t serialized_bytes() const { return serialized_bytes_; }

 private:
  uint64_t LowBits(size_t i) const;
  uint64_t LowWord(size_t w) const;
  uint64_t HighWord(size_t w) const;
  /// Bit position in the high vector of the i-th set bit.
  uint64_t Select(size_t i) const;

  const uint8_t* low_ = nullptr;   // packed l-bit values
  const uint8_t* high_ = nullptr;  // unary-coded high parts
  size_t n_ = 0;
  uint64_t universe_ = 0;
  unsigned l_ = 0;
  size_t high_words_ = 0;
  size_t serialized_bytes_ = 0;
  // samples_[j] = bit position of set bit rank j * kSelectSample.
  std::vector<uint32_t> samples_;

  static constexpr size_t kSelectSample = 64;
};

}  // namespace netclus::store

#endif  // NETCLUS_STORE_RANK_SELECT_H_
