// Little-endian binary encode/decode helpers for the v2 index file.
//
// ByteWriter accumulates a byte buffer with 8-byte alignment control and
// offset patching (the header and section table are written after their
// contents are known). ByteReader is a bounds-checked cursor over a
// ByteBlock: every read either succeeds or trips a sticky failure flag —
// a truncated or hostile file can never read out of bounds, it just
// surfaces `ok() == false` at the end of the parse.
//
// All integers are little-endian; the file header carries an endianness
// probe so a big-endian reader fails loudly instead of mis-decoding.
#ifndef NETCLUS_STORE_BINARY_IO_H_
#define NETCLUS_STORE_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "store/arena.h"

namespace netclus::store {

/// FNV-1a 64-bit — the section checksum of the v2 index format. Not
/// cryptographic; guards against truncation, bit rot, and bad transfers.
inline uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

class ByteWriter {
 public:
  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

  void U8(uint8_t v) { bytes_.push_back(v); }
  void U32(uint32_t v) { Append(&v, sizeof(v)); }
  void U64(uint64_t v) { Append(&v, sizeof(v)); }
  void F32(float v) { Append(&v, sizeof(v)); }
  void F64(double v) { Append(&v, sizeof(v)); }
  void Bytes(const void* data, size_t size) { Append(data, size); }

  /// Pads with zeros to the next multiple of 8 (arena/offset sections are
  /// 8-aligned so mmap'ed uint64 loads stay aligned).
  void Align8() {
    while (bytes_.size() % 8 != 0) bytes_.push_back(0);
  }

  /// Reserves `size` zero bytes at the current position; returns the
  /// position for a later Patch.
  size_t Reserve(size_t size) {
    const size_t pos = bytes_.size();
    bytes_.resize(bytes_.size() + size, 0);
    return pos;
  }

  void PatchU32(size_t pos, uint32_t v) {
    std::memcpy(bytes_.data() + pos, &v, sizeof(v));
  }
  void PatchU64(size_t pos, uint64_t v) {
    std::memcpy(bytes_.data() + pos, &v, sizeof(v));
  }

 private:
  void Append(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(ByteBlock block)
      : block_(std::move(block)), pos_(0), ok_(true) {}

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return block_.size() - pos_; }
  const ByteBlock& block() const { return block_; }

  uint8_t U8() { return Read<uint8_t>(); }
  uint32_t U32() { return Read<uint32_t>(); }
  uint64_t U64() { return Read<uint64_t>(); }
  float F32() { return Read<float>(); }
  double F64() { return Read<double>(); }

  bool Bytes(void* out, size_t size) {
    if (!Ensure(size)) return false;
    std::memcpy(out, block_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  bool Skip(size_t size) {
    if (!Ensure(size)) return false;
    pos_ += size;
    return true;
  }

  void Align8() {
    const size_t rem = pos_ % 8;
    if (rem != 0) Skip(8 - rem);
  }

  /// A sub-block [offset, offset + size) of the underlying block, sharing
  /// its owner. Fails (empty block, ok() false) when out of bounds.
  ByteBlock SubBlock(uint64_t offset, uint64_t size) {
    if (offset > block_.size() || size > block_.size() - offset) {
      ok_ = false;
      return ByteBlock();
    }
    return block_.Slice(static_cast<size_t>(offset), static_cast<size_t>(size));
  }

 private:
  template <typename T>
  T Read() {
    T v{};
    if (Ensure(sizeof(T))) {
      std::memcpy(&v, block_.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
    }
    return v;
  }

  bool Ensure(size_t size) {
    if (!ok_ || size > block_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  ByteBlock block_;
  size_t pos_;
  bool ok_;
};

}  // namespace netclus::store

#endif  // NETCLUS_STORE_BINARY_IO_H_
