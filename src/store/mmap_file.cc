#include "store/mmap_file.h"

#include <cstdio>
#include <vector>

#include "util/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define NETCLUS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace netclus::store {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  // Debug, not warning: a failed mmap probe is a normal fallback path
  // (the loader retries with a buffered read); real load failures warn
  // at the index_io layer.
  NC_SLOG_DEBUG("store_io_error").Kv("what", message);
}

}  // namespace

#if defined(NETCLUS_HAVE_MMAP)

std::shared_ptr<MappedFile> MappedFile::Open(const std::string& path,
                                             std::string* error,
                                             uint64_t page_budget_bytes) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, "cannot open for mmap: " + path);
    return nullptr;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    SetError(error, "cannot stat (or empty file): " + path);
    return nullptr;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapping == MAP_FAILED) {
    SetError(error, "mmap failed: " + path);
    return nullptr;
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->data_ = static_cast<const uint8_t*>(mapping);
  file->size_ = size;
  if (page_budget_bytes > 0) {
    BufferPool::Options options;
    options.budget_bytes = page_budget_bytes;
    file->pool_ = std::make_unique<BufferPool>(file->data_, size, options);
  }
  return file;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

#else  // !NETCLUS_HAVE_MMAP

std::shared_ptr<MappedFile> MappedFile::Open(const std::string& path,
                                             std::string* error,
                                             uint64_t /*page_budget_bytes*/) {
  SetError(error, "mmap unsupported on this platform (file: " + path + ")");
  return nullptr;
}

MappedFile::~MappedFile() = default;

#endif  // NETCLUS_HAVE_MMAP

ByteBlock ReadFileBlock(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetError(error, "cannot open for read: " + path);
    return ByteBlock();
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    SetError(error, "cannot size: " + path);
    return ByteBlock();
  }
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read =
      bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    SetError(error, "short read: " + path);
    return ByteBlock();
  }
  return ByteBlock::FromVector(std::move(bytes));
}

}  // namespace netclus::store
