// Scalar kernel + runtime dispatch for bulk varint decoding.

#include "store/simd/bulk_varint.h"

#include <atomic>

#include "store/simd/bulk_varint_inl.h"
#include "util/flags.h"

namespace netclus::store::simd {

namespace internal {
// Defined in the variant translation units (which know whether their
// kernel was compiled in): true when the kernel exists AND the host CPU
// executes it.
bool HostRunsSse4();
bool HostRunsAvx2();
}  // namespace internal

namespace {

Kernel ResolveFromEnv() {
  const std::string want = util::GetEnvString("NETCLUS_SIMD", "auto");
  if (want == "scalar") return Kernel::kScalar;
  if (want == "sse4") {
    return Supports(Kernel::kSse4) ? Kernel::kSse4 : Kernel::kScalar;
  }
  if (want == "avx2") {
    return Supports(Kernel::kAvx2) ? Kernel::kAvx2 : Kernel::kScalar;
  }
  // auto (and any unrecognized value): widest kernel the host runs.
  if (Supports(Kernel::kAvx2)) return Kernel::kAvx2;
  if (Supports(Kernel::kSse4)) return Kernel::kSse4;
  return Kernel::kScalar;
}

// -1 = unresolved; otherwise a Kernel value. Resolution is idempotent
// (same env, same CPU), so the benign first-call race needs no lock.
std::atomic<int> g_active{-1};

}  // namespace

const uint8_t* BulkDecodeVarint32Scalar(const uint8_t* p, const uint8_t* end,
                                        uint32_t* out, size_t count) {
  return internal::DecodeRunScalar(p, end, out, count);
}

bool Supports(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return true;
    case Kernel::kSse4:
      return internal::HostRunsSse4();
    case Kernel::kAvx2:
      return internal::HostRunsAvx2();
  }
  return false;
}

Kernel ActiveKernel() {
  int k = g_active.load(std::memory_order_relaxed);
  if (k < 0) {
    k = static_cast<int>(ResolveFromEnv());
    g_active.store(k, std::memory_order_relaxed);
  }
  return static_cast<Kernel>(k);
}

const char* KernelName(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSse4:
      return "sse4";
    case Kernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ForceKernel(Kernel k) {
  if (!Supports(k)) return false;
  g_active.store(static_cast<int>(k), std::memory_order_relaxed);
  return true;
}

void ResetKernelFromEnv() {
  g_active.store(-1, std::memory_order_relaxed);
}

const uint8_t* BulkDecodeVarint32(const uint8_t* p, const uint8_t* end,
                                  uint32_t* out, size_t count) {
  switch (ActiveKernel()) {
    case Kernel::kAvx2:
      return BulkDecodeVarint32Avx2(p, end, out, count);
    case Kernel::kSse4:
      return BulkDecodeVarint32Sse4(p, end, out, count);
    case Kernel::kScalar:
      break;
  }
  return internal::DecodeRunScalar(p, end, out, count);
}

}  // namespace netclus::store::simd
