// Bulk LEB128 varint decoding with runtime-dispatched SIMD kernels.
//
// The blocked posting codec (store/arena.h, v3 index format) frames lists
// as 128-entry blocks whose payloads are runs of 32-bit-bounded varints
// (store/varint.h, ZigZag32 transform: at most 5 bytes each, final byte
// <= 0x0f). Decoding such a run is the inner loop of every cover
// traversal, so it gets a dedicated kernel family:
//
//   * scalar   — portable reference, also the validation decoder;
//   * SSE4.1   — 16-byte windows, movemask on continuation bits, widening
//                shuffle fast path when a window is all 1-byte varints;
//   * AVX2     — the same idea over 32-byte windows.
//
// Selection happens once at runtime: CPUID (via __builtin_cpu_supports)
// picks the widest kernel the host executes, and the NETCLUS_SIMD env var
// ({auto, scalar, sse4, avx2}, default auto) can pin it — `scalar` is the
// differential-testing and bisection knob. All kernels decode the exact
// same varint grammar, so results are bit-identical by construction; the
// differential fuzz suite in tests/test_store.cc pins that.
//
// Bounds discipline: kernels never read at or past `end`, even
// speculatively — the input may sit at the tail of an mmap'ed index file
// where the next page is unmapped. Wide loads are only issued when the
// full window is in bounds; the remainder falls back to the scalar tail.
//
// This header is the runtime-dispatch entry point required by the
// simd-intrinsics lint rule (tools/netclus_lint.py): raw _mm_* intrinsics
// may only appear in src/store/simd/ translation units that implement
// kernels declared here.
#ifndef NETCLUS_STORE_SIMD_BULK_VARINT_H_
#define NETCLUS_STORE_SIMD_BULK_VARINT_H_

#include <cstddef>
#include <cstdint>

namespace netclus::store::simd {

enum class Kernel {
  kScalar = 0,
  kSse4 = 1,
  kAvx2 = 2,
};

/// Decodes exactly `count` varints from [p, end) into out[0..count).
/// Every varint must fit in 32 bits (<= 5 bytes, final byte <= 0x0f);
/// values are raw — still zigzagged — and the caller applies the delta
/// chain. Returns the byte past the last varint, or nullptr when the
/// input is truncated, overlong, or exceeds 32 bits. Dispatches to the
/// active kernel.
const uint8_t* BulkDecodeVarint32(const uint8_t* p, const uint8_t* end,
                                  uint32_t* out, size_t count);

/// Per-kernel entry points for differential tests and benches. The SSE4
/// and AVX2 variants must only be called when Supports() says so; on
/// non-x86 builds they return nullptr unconditionally.
const uint8_t* BulkDecodeVarint32Scalar(const uint8_t* p, const uint8_t* end,
                                        uint32_t* out, size_t count);
const uint8_t* BulkDecodeVarint32Sse4(const uint8_t* p, const uint8_t* end,
                                      uint32_t* out, size_t count);
const uint8_t* BulkDecodeVarint32Avx2(const uint8_t* p, const uint8_t* end,
                                      uint32_t* out, size_t count);

/// True when `k` is both compiled in and executable on this CPU.
bool Supports(Kernel k);

/// The kernel BulkDecodeVarint32 dispatches to, after resolving
/// NETCLUS_SIMD (first call) or a ForceKernel override.
Kernel ActiveKernel();

/// "scalar" / "sse4" / "avx2".
const char* KernelName(Kernel k);

/// Pins the dispatch (tests, benches). Returns false — and changes
/// nothing — when `k` is unsupported on this host.
bool ForceKernel(Kernel k);

/// Drops any override and re-reads NETCLUS_SIMD on the next dispatch.
void ResetKernelFromEnv();

}  // namespace netclus::store::simd

#endif  // NETCLUS_STORE_SIMD_BULK_VARINT_H_
