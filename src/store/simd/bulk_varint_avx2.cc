// AVX2 bulk-varint kernel: 32-byte windows.
//
// Same structure as the SSE4.1 kernel (see bulk_varint_sse4.cc), twice
// the window: one vpmovmskb gathers 32 continuation bits, an all-clear
// mask widens 32 single-byte varints with four vpmovzxbd, and a mixed
// window vectorizes its 1-byte prefix before handing the straddling
// varint to the shared strict scalar decoder.
//
// Compiled with -mavx2 only for this translation unit (see
// CMakeLists.txt); NETCLUS_SIMD_KERNEL_AVX2 gates the body so non-x86
// builds fall back to a null stub and dispatch never selects it.

#include "store/simd/bulk_varint.h"

#include "store/simd/bulk_varint_inl.h"

#if defined(NETCLUS_SIMD_KERNEL_AVX2)

#include <immintrin.h>

namespace netclus::store::simd {

namespace internal {
bool HostRunsAvx2() { return __builtin_cpu_supports("avx2") != 0; }
}  // namespace internal

const uint8_t* BulkDecodeVarint32Avx2(const uint8_t* p, const uint8_t* end,
                                      uint32_t* out, size_t count) {
  size_t i = 0;
  // Window discipline as in the SSE4 kernel: full 32-byte load in bounds
  // (no speculative reads past `end` — the input may end at an mmap
  // boundary) and 32 writable output lanes, since a mixed window stores
  // all 32 widened lanes but advances only past its verified prefix.
  while (i < count) {
    if (static_cast<size_t>(end - p) < 32 || count - i < 32) break;
    const __m256i window =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const uint32_t mask = static_cast<uint32_t>(_mm256_movemask_epi8(window));
    const unsigned singles =
        mask == 0 ? 32u : static_cast<unsigned>(__builtin_ctz(mask));
    if (singles > 0) {
      const __m128i lo = _mm256_castsi256_si128(window);
      const __m128i hi = _mm256_extracti128_si256(window, 1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          _mm256_cvtepu8_epi32(lo));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                          _mm256_cvtepu8_epi32(_mm_srli_si128(lo, 8)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 16),
                          _mm256_cvtepu8_epi32(hi));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 24),
                          _mm256_cvtepu8_epi32(_mm_srli_si128(hi, 8)));
      p += singles;
      i += singles;
      if (mask == 0) continue;
    }
    // One multi-byte varint straddling the window boundary.
    p = internal::DecodeOneVarint32(p, end, &out[i]);
    if (p == nullptr) return nullptr;
    ++i;
  }
  return internal::DecodeRunScalar(p, end, out + i, count - i);
}

}  // namespace netclus::store::simd

#else  // !NETCLUS_SIMD_KERNEL_AVX2

namespace netclus::store::simd {

namespace internal {
bool HostRunsAvx2() { return false; }
}  // namespace internal

const uint8_t* BulkDecodeVarint32Avx2(const uint8_t*, const uint8_t*,
                                      uint32_t*, size_t) {
  return nullptr;
}

}  // namespace netclus::store::simd

#endif  // NETCLUS_SIMD_KERNEL_AVX2
