// Shared scalar pieces of the bulk-varint kernels: the strict one-varint
// decoder and the scalar run loop. Included by every kernel translation
// unit in src/store/simd/ so all three kernels agree byte-for-byte on the
// accepted grammar (<= 5 bytes, value fits uint32, final byte <= 0x0f).
#ifndef NETCLUS_STORE_SIMD_BULK_VARINT_INL_H_
#define NETCLUS_STORE_SIMD_BULK_VARINT_INL_H_

#include <cstddef>
#include <cstdint>

namespace netclus::store::simd::internal {

/// Decodes one 32-bit-bounded varint from [p, end). Returns the byte past
/// it, or nullptr on truncation / overlong encoding / 33+ bit value.
inline const uint8_t* DecodeOneVarint32(const uint8_t* p, const uint8_t* end,
                                        uint32_t* value) {
  if (p >= end) return nullptr;
  uint32_t b = *p++;
  uint32_t v = b & 0x7fu;
  unsigned shift = 7;
  while ((b & 0x80u) != 0) {
    if (p >= end) return nullptr;
    b = *p++;
    if (shift == 28) {
      // Fifth byte: only 4 value bits left in a uint32, and a set
      // continuation bit (0x80 > 0x0f) would make a 6th byte.
      if (b > 0x0fu) return nullptr;
    }
    v |= (b & 0x7fu) << shift;
    shift += 7;
  }
  *value = v;
  return p;
}

/// Scalar run: `count` varints back to back. The reference decoder and
/// every kernel's tail path.
inline const uint8_t* DecodeRunScalar(const uint8_t* p, const uint8_t* end,
                                      uint32_t* out, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    p = DecodeOneVarint32(p, end, &out[i]);
    if (p == nullptr) return nullptr;
  }
  return p;
}

}  // namespace netclus::store::simd::internal

#endif  // NETCLUS_STORE_SIMD_BULK_VARINT_INL_H_
