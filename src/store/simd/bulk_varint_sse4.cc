// SSE4.1 bulk-varint kernel: 16-byte windows.
//
// _mm_movemask_epi8 over a window collects the continuation bits of all
// 16 bytes at once. A zero mask means 16 consecutive 1-byte varints —
// the common case for the small deltas the blocked codec produces — and
// they widen to uint32 lanes with two pmovzxbd pairs. A nonzero mask
// still vectorizes its 1-byte prefix (tzcnt of the mask counts it), then
// decodes the one multi-byte varint at the boundary with the shared
// strict scalar decoder and re-enters the loop.
//
// Compiled with -msse4.1 only for this translation unit (see
// CMakeLists.txt); NETCLUS_SIMD_KERNEL_SSE4 gates the body so non-x86
// builds fall back to a null stub and dispatch never selects it.

#include "store/simd/bulk_varint.h"

#include "store/simd/bulk_varint_inl.h"

#if defined(NETCLUS_SIMD_KERNEL_SSE4)

#include <smmintrin.h>

namespace netclus::store::simd {

namespace internal {
bool HostRunsSse4() { return __builtin_cpu_supports("sse4.1") != 0; }
}  // namespace internal

const uint8_t* BulkDecodeVarint32Sse4(const uint8_t* p, const uint8_t* end,
                                      uint32_t* out, size_t count) {
  size_t i = 0;
  // The vector path needs a full 16-byte load in bounds (never touch
  // bytes at or past `end`) and 16 writable output lanes: the 1-byte
  // prefix of a mixed window is stored as a full 16-lane widen and the
  // cursor advanced only past the verified prefix, so the overwritten
  // lanes are rewritten by later iterations.
  while (i < count) {
    if (static_cast<size_t>(end - p) < 16 || count - i < 16) break;
    const __m128i window = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(window));
    const unsigned singles =
        mask == 0 ? 16u : static_cast<unsigned>(__builtin_ctz(mask));
    if (singles > 0) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm_cvtepu8_epi32(window));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                       _mm_cvtepu8_epi32(_mm_srli_si128(window, 4)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8),
                       _mm_cvtepu8_epi32(_mm_srli_si128(window, 8)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 12),
                       _mm_cvtepu8_epi32(_mm_srli_si128(window, 12)));
      p += singles;
      i += singles;
      if (mask == 0) continue;
      if (i >= count) break;  // prefix filled the request; re-check tail
    }
    // One multi-byte varint straddling the window boundary.
    p = internal::DecodeOneVarint32(p, end, &out[i]);
    if (p == nullptr) return nullptr;
    ++i;
  }
  return internal::DecodeRunScalar(p, end, out + i, count - i);
}

}  // namespace netclus::store::simd

#else  // !NETCLUS_SIMD_KERNEL_SSE4

namespace netclus::store::simd {

namespace internal {
bool HostRunsSse4() { return false; }
}  // namespace internal

const uint8_t* BulkDecodeVarint32Sse4(const uint8_t*, const uint8_t*,
                                      uint32_t*, size_t) {
  return nullptr;
}

}  // namespace netclus::store::simd

#endif  // NETCLUS_SIMD_KERNEL_SSE4
