// Fixed-budget page cache over a read-only file mapping.
//
// Zero-copy (mmap) index loading keeps the whole file addressable, but
// the OS will happily let every touched page stay resident — an index
// must fit in RAM. The BufferPool bounds residency instead: it divides
// the mapping into fixed-size frames, tracks which frames the read path
// touches (PostingArena::ListBytes reports every list access), keeps them
// on an LRU list, and when the resident total exceeds the budget it
// evicts cold frames with madvise(MADV_DONTNEED). The mapping is private
// and never written, so eviction is invisible to correctness: the virtual
// addresses stay valid and a later access simply re-faults the page from
// the file. Query results are bit-identical with the pool on or off —
// only residency and latency change.
//
// Pinning: frames covering hot metadata (the Elias-Fano offset tables)
// are pinned at index load so list-extent lookups never re-fault; pinned
// frames are skipped by eviction. When everything under budget is pinned
// the pool runs over budget rather than evicting pinned frames (soft
// cap), which keeps Pin free of deadlock-by-budget.
//
// Budget: NETCLUS_PAGE_BUDGET accepts plain bytes or human suffixes
// ("16MiB", "1g"); 0/unset means unlimited (no pool is created).
//
// Thread safety: Touch/Pin/Unpin/DropAll/GetStats are safe to call
// concurrently (serving snapshots share one mapping across query
// threads); the pool is a single nc::Mutex domain, locked once per list
// access, not per entry.
#ifndef NETCLUS_STORE_BUFFER_POOL_H_
#define NETCLUS_STORE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace netclus::store {

class BufferPool {
 public:
  struct Options {
    uint64_t budget_bytes = 0;      ///< 0 = unlimited (callers skip the pool)
    size_t frame_bytes = 64 << 10;  ///< rounded up to the OS page size
  };

  struct Stats {
    uint64_t budget_bytes = 0;
    uint64_t frame_bytes = 0;
    uint64_t resident_bytes = 0;  ///< bytes in tracked-resident frames
    uint64_t pinned_frames = 0;
    uint64_t touches = 0;     ///< Touch calls
    uint64_t faults = 0;      ///< frames brought tracked-resident
    uint64_t evictions = 0;   ///< frames madvised away
  };

  /// A pool over [base, base + size) — an existing read-only private
  /// mapping the caller owns (MappedFile). Registers itself for Find().
  BufferPool(const uint8_t* base, size_t size, const Options& options);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Marks the frames covering [p, p + len) most-recently-used, then
  /// evicts LRU frames until the tracked-resident total fits the budget.
  /// Ranges outside the mapping are ignored.
  void Touch(const uint8_t* p, size_t len);

  /// Pin/unpin the frames covering a range: pinned frames are never
  /// evicted. Calls must balance.
  void Pin(const uint8_t* p, size_t len);
  void Unpin(const uint8_t* p, size_t len);

  /// Evicts every unpinned frame and madvises the whole mapping away —
  /// the cold-start knob for benches ("mmap-cold" latency columns) and
  /// the post-validation reset at index load (the load-time checksum and
  /// arena walks touch every page; queries should start from a cold,
  /// in-budget pool).
  void DropAll();

  Stats GetStats() const;

  const uint8_t* base() const { return base_; }
  size_t size() const { return size_; }

  /// The registered pool whose mapping contains `p`, or null. Lets
  /// PostingArena find the pool for the bytes it aliases without
  /// threading a pointer through every loader signature.
  static BufferPool* Find(const uint8_t* p);

  /// Parses NETCLUS_PAGE_BUDGET: 0 when unset/unparseable/0 (unlimited).
  static uint64_t BudgetFromEnv();

  /// "16MiB" / "64k" / "1073741824" -> bytes. Case-insensitive suffixes
  /// k/m/g/t with optional i/iB/B (all base-1024). False on junk.
  static bool ParseByteSize(const std::string& text, uint64_t* bytes);

 private:
  struct Frame {
    int32_t prev = -1;
    int32_t next = -1;
    uint32_t pins = 0;
    bool resident = false;
  };

  void TouchFrameLocked(size_t f) REQUIRES(mu_);
  void EvictToBudgetLocked() REQUIRES(mu_);
  void UnlinkLocked(size_t f) REQUIRES(mu_);
  void PushFrontLocked(size_t f) REQUIRES(mu_);
  void DiscardFrame(size_t f);  ///< madvise one frame away (no lock needed)

  const uint8_t* base_ = nullptr;
  size_t size_ = 0;
  size_t frame_bytes_ = 0;
  uint64_t budget_bytes_ = 0;

  mutable nc::Mutex mu_;
  std::vector<Frame> frames_ GUARDED_BY(mu_);
  int32_t lru_head_ GUARDED_BY(mu_) = -1;  ///< most recently used
  int32_t lru_tail_ GUARDED_BY(mu_) = -1;  ///< eviction candidate
  uint64_t resident_frames_ GUARDED_BY(mu_) = 0;
  uint64_t pinned_frames_ GUARDED_BY(mu_) = 0;
  uint64_t touches_ GUARDED_BY(mu_) = 0;
  uint64_t faults_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace netclus::store

#endif  // NETCLUS_STORE_BUFFER_POOL_H_
