#include "store/buffer_pool.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/flags.h"

#if defined(__unix__) || defined(__APPLE__)
#define NETCLUS_HAVE_MADVISE 1
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace netclus::store {

namespace {

// Registry of live pools for Find(). A handful of entries at most (one
// per mmap'ed index), so a linear scan under a mutex is fine.
nc::Mutex& RegistryMutex() {
  static nc::Mutex* mu = new nc::Mutex;
  return *mu;
}

std::vector<BufferPool*>& Registry() {
  static std::vector<BufferPool*>* pools = new std::vector<BufferPool*>;
  return *pools;
}

size_t OsPageBytes() {
#if defined(NETCLUS_HAVE_MADVISE)
  const long page = ::sysconf(_SC_PAGESIZE);
  return page > 0 ? static_cast<size_t>(page) : 4096;
#else
  return 4096;
#endif
}

}  // namespace

BufferPool::BufferPool(const uint8_t* base, size_t size,
                       const Options& options) {
  base_ = base;
  size_ = size;
  budget_bytes_ = options.budget_bytes;
  const size_t os_page = OsPageBytes();
  frame_bytes_ = std::max(options.frame_bytes, os_page);
  frame_bytes_ = (frame_bytes_ + os_page - 1) / os_page * os_page;
  const size_t num_frames = (size + frame_bytes_ - 1) / frame_bytes_;
  {
    nc::MutexLock lock(mu_);
    frames_.assign(num_frames, Frame());
  }
  nc::MutexLock lock(RegistryMutex());
  Registry().push_back(this);
}

BufferPool::~BufferPool() {
  nc::MutexLock lock(RegistryMutex());
  auto& pools = Registry();
  pools.erase(std::remove(pools.begin(), pools.end(), this), pools.end());
}

BufferPool* BufferPool::Find(const uint8_t* p) {
  nc::MutexLock lock(RegistryMutex());
  for (BufferPool* pool : Registry()) {
    if (p >= pool->base_ && p < pool->base_ + pool->size_) return pool;
  }
  return nullptr;
}

void BufferPool::UnlinkLocked(size_t f) {
  Frame& frame = frames_[f];
  if (frame.prev >= 0) {
    frames_[frame.prev].next = frame.next;
  } else {
    lru_head_ = frame.next;
  }
  if (frame.next >= 0) {
    frames_[frame.next].prev = frame.prev;
  } else {
    lru_tail_ = frame.prev;
  }
  frame.prev = frame.next = -1;
}

void BufferPool::PushFrontLocked(size_t f) {
  Frame& frame = frames_[f];
  frame.prev = -1;
  frame.next = lru_head_;
  if (lru_head_ >= 0) frames_[lru_head_].prev = static_cast<int32_t>(f);
  lru_head_ = static_cast<int32_t>(f);
  if (lru_tail_ < 0) lru_tail_ = static_cast<int32_t>(f);
}

void BufferPool::TouchFrameLocked(size_t f) {
  Frame& frame = frames_[f];
  if (!frame.resident) {
    frame.resident = true;
    ++resident_frames_;
    ++faults_;
    PushFrontLocked(f);
    return;
  }
  if (lru_head_ == static_cast<int32_t>(f)) return;  // already MRU
  UnlinkLocked(f);
  PushFrontLocked(f);
}

void BufferPool::DiscardFrame(size_t f) {
#if defined(NETCLUS_HAVE_MADVISE)
  const size_t begin = f * frame_bytes_;
  const size_t len = std::min(frame_bytes_, size_ - begin);
  // The mapping is PROT_READ MAP_PRIVATE and never written: DONTNEED
  // drops the physical pages, and any later read re-faults them from the
  // file with identical contents.
  ::madvise(const_cast<uint8_t*>(base_) + begin, len, MADV_DONTNEED);
#else
  (void)f;  // no madvise: the pool still tracks residency, evicts nothing
#endif
}

void BufferPool::EvictToBudgetLocked() {
  if (budget_bytes_ == 0) return;
  const uint64_t budget_frames = std::max<uint64_t>(1, budget_bytes_ / frame_bytes_);
  int32_t f = lru_tail_;
  while (resident_frames_ > budget_frames && f >= 0) {
    const int32_t prev = frames_[f].prev;
    if (frames_[f].pins == 0) {
      UnlinkLocked(static_cast<size_t>(f));
      frames_[f].resident = false;
      --resident_frames_;
      ++evictions_;
      DiscardFrame(static_cast<size_t>(f));
    }
    f = prev;  // pinned frames are skipped (soft cap)
  }
}

void BufferPool::Touch(const uint8_t* p, size_t len) {
  if (p < base_ || p >= base_ + size_ || len == 0) return;
  const size_t first = static_cast<size_t>(p - base_) / frame_bytes_;
  const size_t last =
      std::min(static_cast<size_t>(p - base_) + len - 1, size_ - 1) /
      frame_bytes_;
  nc::MutexLock lock(mu_);
  ++touches_;
  for (size_t f = first; f <= last; ++f) TouchFrameLocked(f);
  EvictToBudgetLocked();
}

void BufferPool::Pin(const uint8_t* p, size_t len) {
  if (p < base_ || p >= base_ + size_ || len == 0) return;
  const size_t first = static_cast<size_t>(p - base_) / frame_bytes_;
  const size_t last =
      std::min(static_cast<size_t>(p - base_) + len - 1, size_ - 1) /
      frame_bytes_;
  nc::MutexLock lock(mu_);
  for (size_t f = first; f <= last; ++f) {
    if (frames_[f].pins++ == 0) ++pinned_frames_;
    TouchFrameLocked(f);
  }
}

void BufferPool::Unpin(const uint8_t* p, size_t len) {
  if (p < base_ || p >= base_ + size_ || len == 0) return;
  const size_t first = static_cast<size_t>(p - base_) / frame_bytes_;
  const size_t last =
      std::min(static_cast<size_t>(p - base_) + len - 1, size_ - 1) /
      frame_bytes_;
  nc::MutexLock lock(mu_);
  for (size_t f = first; f <= last; ++f) {
    if (frames_[f].pins > 0 && --frames_[f].pins == 0) --pinned_frames_;
  }
}

void BufferPool::DropAll() {
  nc::MutexLock lock(mu_);
  for (size_t f = 0; f < frames_.size(); ++f) {
    if (!frames_[f].resident) continue;
    if (frames_[f].pins > 0) continue;
    UnlinkLocked(f);
    frames_[f].resident = false;
    --resident_frames_;
    ++evictions_;
  }
#if defined(NETCLUS_HAVE_MADVISE)
  // One call for the whole mapping beats per-frame madvise; pinned
  // frames lose physical residency too but re-fault on next access —
  // pinning protects against *eviction policy*, not explicit drops.
  ::madvise(const_cast<uint8_t*>(base_), size_, MADV_DONTNEED);
#endif
}

BufferPool::Stats BufferPool::GetStats() const {
  nc::MutexLock lock(mu_);
  Stats stats;
  stats.budget_bytes = budget_bytes_;
  stats.frame_bytes = frame_bytes_;
  stats.resident_bytes = resident_frames_ * frame_bytes_;
  stats.pinned_frames = pinned_frames_;
  stats.touches = touches_;
  stats.faults = faults_;
  stats.evictions = evictions_;
  return stats;
}

bool BufferPool::ParseByteSize(const std::string& text, uint64_t* bytes) {
  if (text.empty()) return false;
  if (!std::isdigit(static_cast<unsigned char>(text.front()))) return false;
  char* endp = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &endp, 10);
  if (endp == text.c_str()) return false;
  std::string suffix(endp);
  while (!suffix.empty() && std::isspace(static_cast<unsigned char>(suffix.front()))) {
    suffix.erase(suffix.begin());
  }
  for (char& c : suffix) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  uint64_t mult = 1;
  if (!suffix.empty()) {
    const char unit = suffix.front();
    switch (unit) {
      case 'k': mult = uint64_t{1} << 10; break;
      case 'm': mult = uint64_t{1} << 20; break;
      case 'g': mult = uint64_t{1} << 30; break;
      case 't': mult = uint64_t{1} << 40; break;
      case 'b': mult = 1; break;
      default: return false;
    }
    const std::string rest = suffix.substr(1);
    if (!(rest.empty() || rest == "i" || rest == "ib" ||
          (unit != 'b' && rest == "b"))) {
      return false;
    }
  }
  *bytes = static_cast<uint64_t>(value) * mult;
  return true;
}

uint64_t BufferPool::BudgetFromEnv() {
  const std::string raw = util::GetEnvString("NETCLUS_PAGE_BUDGET", "");
  if (raw.empty() || raw == "unlimited" || raw == "0") return 0;
  uint64_t bytes = 0;
  if (!ParseByteSize(raw, &bytes)) return 0;
  return bytes;
}

}  // namespace netclus::store
