// LEB128 varints and zigzag mapping — the codec under the compressed
// posting arenas (src/store/arena.h).
//
// Postings are stored as deltas between consecutive values: cluster ids in
// a CC(T) sequence move between neighboring clusters, trajectory ids in a
// TL list are near-sorted, and the float bit patterns of distance-sorted
// covers are non-decreasing — all small deltas, all 1-2 bytes instead of
// 4. Deltas can be negative (sequences are not sorted), so they pass
// through zigzag first.
//
// Decoding is bounds-checked against an explicit `end`: the arenas may be
// backed by an untrusted index file (possibly mmap'ed), and a malformed
// varint must surface as a null return, never as a read past the mapping.
#ifndef NETCLUS_STORE_VARINT_H_
#define NETCLUS_STORE_VARINT_H_

#include <cstdint>
#include <vector>

namespace netclus::store {

/// Appends `v` to `out` as a little-endian base-128 varint (1-10 bytes).
inline void PutVarint64(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

/// Decodes a varint from [p, end). Returns the byte past the varint, or
/// nullptr when the input is truncated or longer than 10 bytes.
inline const uint8_t* GetVarint64(const uint8_t* p, const uint8_t* end,
                                  uint64_t* v) {
  uint64_t result = 0;
  for (unsigned shift = 0; shift < 64 && p < end; shift += 7) {
    const uint8_t byte = *p++;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
  }
  return nullptr;  // truncated, or a 10+ byte varint
}

/// Zigzag: maps signed deltas to unsigned so small magnitudes of either
/// sign encode in few varint bytes.
inline uint64_t ZigZag64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Delta helpers over uint32 streams: the encoder tracks the previous
/// value, the decoder reverses it. Deltas are computed in 64-bit so the
/// full uint32 range round-trips.
inline void PutU32Delta(std::vector<uint8_t>& out, uint32_t value,
                        uint32_t prev) {
  PutVarint64(out, ZigZag64(static_cast<int64_t>(value) -
                            static_cast<int64_t>(prev)));
}

inline const uint8_t* GetU32Delta(const uint8_t* p, const uint8_t* end,
                                  uint32_t prev, uint32_t* value) {
  uint64_t raw = 0;
  p = GetVarint64(p, end, &raw);
  if (p == nullptr) return nullptr;
  // Unsigned addition: wraparound is the intended mod-2^32 inverse of the
  // encoder's delta, and — unlike int64 arithmetic — stays defined when a
  // hostile stream carries a delta near INT64_MAX.
  *value = static_cast<uint32_t>(static_cast<uint64_t>(prev) +
                                 static_cast<uint64_t>(UnZigZag64(raw)));
  return p;
}

/// 32-bit wrapped zigzag — the delta transform of the blocked (v3) list
/// codec. Deltas are taken mod 2^32 and zigzagged as int32, so every
/// encoded value fits in 32 bits (at most 5 varint bytes, final byte
/// <= 0x0f). That bound is what lets the SIMD bulk kernel
/// (store/simd/bulk_varint.h) decode raw varints straight into uint32
/// lanes; the flat (v2) codec above keeps its 64-bit transform for
/// format compatibility.
inline uint32_t ZigZag32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^
         static_cast<uint32_t>(static_cast<int32_t>(v) >> 31);
}

inline uint32_t UnZigZag32(uint32_t v) {
  return (v >> 1) ^ (0u - (v & 1u));
}

inline void PutU32Delta32(std::vector<uint8_t>& out, uint32_t value,
                          uint32_t prev) {
  PutVarint64(out, ZigZag32(static_cast<int32_t>(value - prev)));
}

inline const uint8_t* GetU32Delta32(const uint8_t* p, const uint8_t* end,
                                    uint32_t prev, uint32_t* value) {
  uint64_t raw = 0;
  p = GetVarint64(p, end, &raw);
  if (p == nullptr || raw > 0xffffffffull) return nullptr;
  *value = prev + UnZigZag32(static_cast<uint32_t>(raw));
  return p;
}

}  // namespace netclus::store

#endif  // NETCLUS_STORE_VARINT_H_
