// Read-only memory-mapped files for zero-copy index loading.
//
// The v2 index format stores posting arenas as verbatim byte ranges, so a
// loaded index can point straight into the mapping instead of copying:
// MappedFile::Open maps the file once, block() hands out a refcounted
// ByteBlock aliasing it, and the mapping is unmapped when the last block
// (i.e. the last index/snapshot referencing it) is released. Pages are
// faulted in on first touch — the checksum pass at load reads them
// sequentially, after which queries hit resident memory.
//
// Platforms without POSIX mmap get a graceful failure from Open; callers
// (index_io's LoadIndex) fall back to a whole-file heap read, which flows
// through the identical aliasing code path.
#ifndef NETCLUS_STORE_MMAP_FILE_H_
#define NETCLUS_STORE_MMAP_FILE_H_

#include <memory>
#include <string>

#include "store/arena.h"
#include "store/buffer_pool.h"

namespace netclus::store {

class MappedFile {
 public:
  /// Maps `path` read-only. Returns null with a message in `error` when
  /// the file cannot be opened/mapped (including: empty file, or a
  /// platform without mmap support). A nonzero `page_budget_bytes`
  /// attaches a BufferPool that caps how much of the mapping stays
  /// resident (see buffer_pool.h); 0 leaves residency to the OS.
  static std::shared_ptr<MappedFile> Open(const std::string& path,
                                          std::string* error,
                                          uint64_t page_budget_bytes = 0);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// The residency pool, or null when no budget was set.
  BufferPool* pool() const { return pool_.get(); }

  /// A ByteBlock aliasing the whole mapping; keeps the mapping alive.
  static ByteBlock Block(std::shared_ptr<MappedFile> file) {
    const uint8_t* data = file->data();
    const size_t size = file->size();
    return ByteBlock::Alias(std::move(file), data, size);
  }

 private:
  MappedFile() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::unique_ptr<BufferPool> pool_;
};

/// Reads the whole file into an owned ByteBlock (the copy-mode loader and
/// the mmap fallback). Empty block + message in `error` on failure.
ByteBlock ReadFileBlock(const std::string& path, std::string* error);

}  // namespace netclus::store

#endif  // NETCLUS_STORE_MMAP_FILE_H_
