#include "store/arena.h"

#include "util/strings.h"

namespace netclus::store {

bool PostingArena::FromBlocks(ByteBlock data, ByteBlock offsets,
                              size_t num_lists, ListKind kind,
                              PostingArena* out, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  const size_t expected_offset_bytes = (num_lists + 1) * sizeof(uint64_t);
  if (offsets.size() != expected_offset_bytes) {
    return fail(util::StrFormat("arena offset table: %zu bytes, want %zu",
                                offsets.size(), expected_offset_bytes));
  }
  PostingArena arena;
  arena.data_ = std::move(data);
  arena.offsets_ = std::move(offsets);
  arena.num_lists_ = num_lists;

  uint64_t prev = arena.offset(0);
  if (prev != 0) return fail("arena offsets must start at 0");
  for (size_t i = 1; i <= num_lists; ++i) {
    const uint64_t off = arena.offset(i);
    if (off < prev || off > arena.data_.size()) {
      return fail(util::StrFormat("arena offset %zu out of order/bounds", i));
    }
    prev = off;
  }
  if (prev != arena.data_.size()) {
    return fail("arena offsets do not cover the data block");
  }

  // Walk every list once: each varint must terminate inside its list and
  // the advertised entry count must match the stream. After this pass the
  // lazy views can never run off the end of a list.
  uint64_t entries = 0;
  for (size_t i = 0; i < num_lists; ++i) {
    const auto [p0, end] = arena.ListBytes(i);
    uint64_t count = 0;
    const uint8_t* p = GetVarint64(p0, end, &count);
    if (p == nullptr) return fail(util::StrFormat("arena list %zu: bad count", i));
    const unsigned varints_per_entry = kind == ListKind::kU32 ? 1 : 2;
    // Every varint is at least one byte, so a count the remaining bytes
    // cannot possibly hold is rejected up front — this also keeps the
    // `count * varints_per_entry` loop bound below from overflowing on a
    // crafted count near 2^64.
    if (count > static_cast<uint64_t>(end - p) / varints_per_entry) {
      return fail(util::StrFormat("arena list %zu: implausible count", i));
    }
    for (uint64_t e = 0; e < count * varints_per_entry; ++e) {
      uint64_t unused = 0;
      p = GetVarint64(p, end, &unused);
      if (p == nullptr) {
        return fail(util::StrFormat("arena list %zu: truncated entries", i));
      }
    }
    if (p != end) {
      return fail(util::StrFormat("arena list %zu: trailing bytes", i));
    }
    entries += count;
  }
  arena.total_entries_ = entries;
  *out = std::move(arena);
  return true;
}

}  // namespace netclus::store
