#include "store/arena.h"

#include "store/buffer_pool.h"
#include "util/strings.h"

namespace netclus::store {

namespace {

/// Validates one kBlocked list: skip headers in bounds, payload lengths
/// truthful, every payload varint 32-bit bounded, block structure
/// consistent with the advertised count. Uses the scalar kernel so
/// validation is identical regardless of SIMD dispatch.
bool ValidateBlockedList(const uint8_t* p, const uint8_t* end, uint64_t count,
                         unsigned varints_per_entry, std::string* why) {
  uint32_t scratch[2 * kBlockEntries];
  uint32_t chain[2] = {0, 0};
  uint64_t remaining = count;
  while (remaining > 0) {
    const uint64_t in_block =
        remaining < kBlockEntries ? remaining : kBlockEntries;
    for (unsigned c = 0; c < varints_per_entry; ++c) {
      p = GetU32Delta32(p, end, chain[c], &chain[c]);
      if (p == nullptr) {
        *why = "truncated skip header";
        return false;
      }
    }
    uint64_t payload = 0;
    p = GetVarint64(p, end, &payload);
    if (p == nullptr || payload > static_cast<uint64_t>(end - p)) {
      *why = "lying payload length";
      return false;
    }
    const uint8_t* payload_end = p + payload;
    const size_t varints =
        static_cast<size_t>(in_block - 1) * varints_per_entry;
    if (simd::BulkDecodeVarint32Scalar(p, payload_end, scratch, varints) !=
        payload_end) {
      *why = "malformed block payload";
      return false;
    }
    p = payload_end;
    remaining -= in_block;
  }
  if (p != end) {
    *why = "trailing bytes";
    return false;
  }
  return true;
}

}  // namespace

void PostingArena::TouchPool(const uint8_t* p, size_t len) const {
  pool_->Touch(p, len);
}

bool PostingArena::FromBlocks(ByteBlock data, ByteBlock offsets,
                              size_t num_lists, ListKind kind,
                              ListLayout layout, PostingArena* out,
                              std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  PostingArena arena;
  arena.layout_ = layout;
  if (layout == ListLayout::kFlat) {
    const size_t expected_offset_bytes = (num_lists + 1) * sizeof(uint64_t);
    if (offsets.size() != expected_offset_bytes) {
      return fail(util::StrFormat("arena offset table: %zu bytes, want %zu",
                                  offsets.size(), expected_offset_bytes));
    }
  } else {
    std::string ef_error;
    if (!EliasFanoView::Parse(offsets.data(), offsets.size(),
                              &arena.ef_offsets_, &ef_error)) {
      return fail("arena offset table: " + ef_error);
    }
    if (arena.ef_offsets_.size() != num_lists + 1) {
      return fail(util::StrFormat("arena offset table: %zu values, want %zu",
                                  arena.ef_offsets_.size(), num_lists + 1));
    }
  }
  arena.data_ = std::move(data);
  arena.offsets_ = std::move(offsets);
  arena.num_lists_ = num_lists;

  uint64_t prev = arena.offset(0);
  if (prev != 0) return fail("arena offsets must start at 0");
  for (size_t i = 1; i <= num_lists; ++i) {
    const uint64_t off = arena.offset(i);
    if (off < prev || off > arena.data_.size()) {
      return fail(util::StrFormat("arena offset %zu out of order/bounds", i));
    }
    prev = off;
  }
  if (prev != arena.data_.size()) {
    return fail("arena offsets do not cover the data block");
  }

  // Walk every list once: each varint must terminate inside its list and
  // the advertised entry count must match the stream. After this pass the
  // lazy views can never run off the end of a list.
  const unsigned varints_per_entry = kind == ListKind::kU32 ? 1 : 2;
  uint64_t entries = 0;
  for (size_t i = 0; i < num_lists; ++i) {
    const uint8_t* base = arena.data_.data();
    const uint8_t* p0 = base + arena.offset(i);
    const uint8_t* end = base + arena.offset(i + 1);
    uint64_t count = 0;
    const uint8_t* p = GetVarint64(p0, end, &count);
    if (p == nullptr) return fail(util::StrFormat("arena list %zu: bad count", i));
    // Every varint is at least one byte, so a count the remaining bytes
    // cannot possibly hold is rejected up front — this also keeps the
    // loop bounds below from overflowing on a crafted count near 2^64.
    // (Blocked lists spend >= 1 byte per entry too: payload deltas for
    // all but each block's first entry, and >= 2 header bytes per block.)
    const uint64_t max_entries =
        layout == ListLayout::kBlocked
            ? static_cast<uint64_t>(end - p)
            : static_cast<uint64_t>(end - p) / varints_per_entry;
    if (count > max_entries) {
      return fail(util::StrFormat("arena list %zu: implausible count", i));
    }
    if (layout == ListLayout::kBlocked) {
      std::string why;
      if (!ValidateBlockedList(p, end, count, varints_per_entry, &why)) {
        return fail(util::StrFormat("arena list %zu: ", i) + why);
      }
    } else {
      for (uint64_t e = 0; e < count * varints_per_entry; ++e) {
        uint64_t unused = 0;
        p = GetVarint64(p, end, &unused);
        if (p == nullptr) {
          return fail(util::StrFormat("arena list %zu: truncated entries", i));
        }
      }
      if (p != end) {
        return fail(util::StrFormat("arena list %zu: trailing bytes", i));
      }
    }
    entries += count;
  }
  arena.total_entries_ = entries;
  // When the arena bytes live inside a pooled mapping, every ListBytes
  // call reports its range so residency stays under the page budget.
  arena.pool_ = arena.data_.empty() ? nullptr
                                    : BufferPool::Find(arena.data_.data());
  if (arena.pool_ != nullptr) {
    // The offset table is consulted on every list access; pin it so
    // extent lookups never re-fault.
    arena.pool_->Pin(arena.offsets_.data(), arena.offsets_.size());
  }
  *out = std::move(arena);
  return true;
}

}  // namespace netclus::store
