// Compressed posting storage: flat varint arenas + zero-copy views.
//
// NetClus's footprint argument (PAPER.md Sec. 5, Table 9) rests on posting
// lists — cluster covering sequences CC(T), per-cluster trajectory lists
// TL, covering sets TC/SC — whose vector-of-vectors representation spends
// more on headers, capacity slack, and full-width ints than on payload. An
// arena packs all lists of one family into a single immutable byte buffer:
//
//   data:    list_0 | list_1 | ... | list_{n-1}
//   offsets: uint64 little-endian array, n+1 entries, offsets[i] = byte
//            offset of list_i in `data` (offsets[n] = data size)
//
// Each list is `varint(count)` followed by `count` entries, delta+zigzag
// varint coded (see varint.h). Two list kinds share the framing:
//   * u32 lists  — one varint per entry (CC sequences);
//   * pair lists — (u32 id, float) entries, two varints per entry: the id
//     delta and the delta of the float's bit pattern (TL / TC / SC, whose
//     distance-sorted floats have slowly-growing bit patterns).
//
// Both buffers live in refcounted ByteBlocks, so
//   * copying an index (MultiIndex::Clone, the serving layer's
//     copy-on-write snapshots) shares the frozen bytes instead of
//     duplicating them, and
//   * the v2 index file stores arenas verbatim — loading can alias the
//     bytes of an mmap'ed file (zero copy) or of a single heap read.
//
// Views decode lazily: PostingListView / PairListView are forward ranges
// that yield entries straight off the compressed stream, so the greedy
// solvers and the query engine traverse postings without materializing
// vectors. The same view types also wrap raw (uncompressed) element
// arrays, which lets call sites be agnostic about the storage mode.
#ifndef NETCLUS_STORE_ARENA_H_
#define NETCLUS_STORE_ARENA_H_

#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "store/varint.h"

namespace netclus::store {

/// Immutable refcounted byte buffer. Either owns its bytes (built from a
/// vector) or aliases a range inside another owner (an mmap'ed file, a
/// whole-file heap read) that it keeps alive.
class ByteBlock {
 public:
  ByteBlock() = default;

  static ByteBlock FromVector(std::vector<uint8_t> bytes) {
    auto owned = std::make_shared<std::vector<uint8_t>>(std::move(bytes));
    ByteBlock block;
    block.data_ = owned->data();
    block.size_ = owned->size();
    block.owner_ = std::move(owned);
    return block;
  }

  /// Aliases [data, data + size) inside `owner`, which stays alive for the
  /// lifetime of this block (and of anything copied from it).
  static ByteBlock Alias(std::shared_ptr<const void> owner,
                         const uint8_t* data, size_t size) {
    ByteBlock block;
    block.owner_ = std::move(owner);
    block.data_ = data;
    block.size_ = size;
    return block;
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Sub-range view sharing this block's owner. `offset + size` must be
  /// within bounds (checked by callers against the section table).
  ByteBlock Slice(size_t offset, size_t size) const {
    return Alias(owner_, data_ + offset, size);
  }

  /// Identity of the backing bytes — equal pointers mean shared storage
  /// (used by tests to pin the copy-on-write sharing behavior).
  const void* id() const { return data_; }

 private:
  std::shared_ptr<const void> owner_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Forward range over a u32 list: either a raw array or a compressed
/// arena list. Iteration decodes in place; no allocation.
class PostingListView {
 public:
  PostingListView() = default;

  static PostingListView Raw(const uint32_t* data, size_t count) {
    PostingListView view;
    view.raw_ = data;
    view.count_ = count;
    return view;
  }

  /// `begin` points at the list's count varint; decoding never reads at or
  /// past `end`. A malformed stream yields a truncated (possibly empty)
  /// view rather than out-of-bounds reads; arena construction validates
  /// streams up front so this only matters for defense in depth.
  static PostingListView Packed(const uint8_t* begin, const uint8_t* end) {
    PostingListView view;
    uint64_t count = 0;
    const uint8_t* p = GetVarint64(begin, end, &count);
    if (p == nullptr) return view;
    view.packed_ = p;
    view.packed_end_ = end;
    view.count_ = static_cast<size_t>(count);
    return view;
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t*;
    using reference = const uint32_t&;

    const_iterator() = default;

    reference operator*() const { return current_; }
    pointer operator->() const { return &current_; }

    const_iterator& operator++() {
      --remaining_;
      if (remaining_ > 0) Decode();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }

    bool operator==(const const_iterator& other) const {
      return remaining_ == other.remaining_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class PostingListView;
    void Decode() {
      if (raw_ != nullptr) {
        current_ = *raw_++;
        return;
      }
      uint32_t value = 0;
      const uint8_t* next = GetU32Delta(p_, end_, current_, &value);
      if (next == nullptr) {  // malformed stream: become end()
        remaining_ = 0;
        return;
      }
      p_ = next;
      current_ = value;
    }

    const uint32_t* raw_ = nullptr;
    const uint8_t* p_ = nullptr;
    const uint8_t* end_ = nullptr;
    uint32_t current_ = 0;
    size_t remaining_ = 0;  // entries left including current_
  };

  const_iterator begin() const {
    const_iterator it;
    it.remaining_ = count_;
    it.raw_ = raw_;
    it.p_ = packed_;
    it.end_ = packed_end_;
    if (count_ > 0) it.Decode();
    return it;
  }
  const_iterator end() const { return const_iterator(); }

  /// O(1) for raw lists, O(i) for packed — for tests and cold paths.
  uint32_t operator[](size_t i) const {
    auto it = begin();
    for (size_t k = 0; k < i; ++k) ++it;
    return *it;
  }

  std::vector<uint32_t> Materialize() const {
    std::vector<uint32_t> out;
    out.reserve(count_);
    for (const uint32_t v : *this) out.push_back(v);
    return out;
  }

 private:
  const uint32_t* raw_ = nullptr;
  const uint8_t* packed_ = nullptr;
  const uint8_t* packed_end_ = nullptr;
  size_t count_ = 0;
};

/// Forward range over an (id, weight) list — TlEntry, CoverEntry, and any
/// other {uint32, float} POD — raw or compressed.
template <typename Entry>
class PairListView {
  static_assert(std::is_trivially_copyable_v<Entry> && sizeof(Entry) == 8,
                "pair lists require {uint32 id, float weight} PODs");

 public:
  PairListView() = default;

  static PairListView Raw(const Entry* data, size_t count) {
    PairListView view;
    view.raw_ = data;
    view.count_ = count;
    return view;
  }

  static PairListView Packed(const uint8_t* begin, const uint8_t* end) {
    PairListView view;
    uint64_t count = 0;
    const uint8_t* p = GetVarint64(begin, end, &count);
    if (p == nullptr) return view;
    view.packed_ = p;
    view.packed_end_ = end;
    view.count_ = static_cast<size_t>(count);
    return view;
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;
    using pointer = const Entry*;
    using reference = const Entry&;

    const_iterator() = default;

    reference operator*() const { return current_; }
    pointer operator->() const { return &current_; }

    const_iterator& operator++() {
      --remaining_;
      if (remaining_ > 0) Decode();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }

    bool operator==(const const_iterator& other) const {
      return remaining_ == other.remaining_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class PairListView;
    void Decode() {
      if (raw_ != nullptr) {
        std::memcpy(&current_, raw_++, sizeof(Entry));
        return;
      }
      uint32_t id = 0, bits = 0;
      const uint8_t* next = GetU32Delta(p_, end_, prev_id_, &id);
      if (next != nullptr) next = GetU32Delta(next, end_, prev_bits_, &bits);
      if (next == nullptr) {  // malformed stream: become end()
        remaining_ = 0;
        return;
      }
      p_ = next;
      prev_id_ = id;
      prev_bits_ = bits;
      std::memcpy(&current_, &id, sizeof(uint32_t));
      std::memcpy(reinterpret_cast<uint8_t*>(&current_) + sizeof(uint32_t),
                  &bits, sizeof(uint32_t));
    }

    const Entry* raw_ = nullptr;
    const uint8_t* p_ = nullptr;
    const uint8_t* end_ = nullptr;
    uint32_t prev_id_ = 0;
    uint32_t prev_bits_ = 0;
    Entry current_{};
    size_t remaining_ = 0;
  };

  const_iterator begin() const {
    const_iterator it;
    it.remaining_ = count_;
    it.raw_ = raw_;
    it.p_ = packed_;
    it.end_ = packed_end_;
    if (count_ > 0) it.Decode();
    return it;
  }
  const_iterator end() const { return const_iterator(); }

  Entry operator[](size_t i) const {
    auto it = begin();
    for (size_t k = 0; k < i; ++k) ++it;
    return *it;
  }

  std::vector<Entry> Materialize() const {
    std::vector<Entry> out;
    out.reserve(count_);
    for (const Entry& e : *this) out.push_back(e);
    return out;
  }

 private:
  const Entry* raw_ = nullptr;
  const uint8_t* packed_ = nullptr;
  const uint8_t* packed_end_ = nullptr;
  size_t count_ = 0;
};

/// What a list family contains — drives the validation walk.
enum class ListKind {
  kU32,   ///< one varint per entry
  kPair,  ///< two varints per entry (id delta, float-bits delta)
};

/// One immutable family of compressed lists: data + offsets ByteBlocks.
class PostingArena {
 public:
  PostingArena() = default;

  size_t num_lists() const { return num_lists_; }
  uint64_t total_entries() const { return total_entries_; }

  /// Actually-resident compressed bytes (data + offset table).
  uint64_t bytes() const {
    return static_cast<uint64_t>(data_.size()) + offsets_.size();
  }

  const ByteBlock& data_block() const { return data_; }
  const ByteBlock& offsets_block() const { return offsets_; }

  PostingListView U32List(size_t i) const {
    const auto [begin, end] = ListBytes(i);
    return PostingListView::Packed(begin, end);
  }

  template <typename Entry>
  PairListView<Entry> PairList(size_t i) const {
    const auto [begin, end] = ListBytes(i);
    return PairListView<Entry>::Packed(begin, end);
  }

  /// Wraps loaded blocks, validating the offset table (monotonic, in
  /// bounds) and walking every list to check each varint stream
  /// terminates in bounds with the advertised entry count. Rejecting
  /// malformed input here means views never see broken streams.
  static bool FromBlocks(ByteBlock data, ByteBlock offsets, size_t num_lists,
                         ListKind kind, PostingArena* out, std::string* error);

 private:
  friend class PostingArenaBuilder;

  uint64_t offset(size_t i) const {
    uint64_t v = 0;
    std::memcpy(&v, offsets_.data() + i * sizeof(uint64_t), sizeof(uint64_t));
    return v;
  }

  std::pair<const uint8_t*, const uint8_t*> ListBytes(size_t i) const {
    const uint8_t* base = data_.data();
    return {base + offset(i), base + offset(i + 1)};
  }

  ByteBlock data_;
  ByteBlock offsets_;
  size_t num_lists_ = 0;
  uint64_t total_entries_ = 0;
};

/// Accumulates lists into a fresh arena. Encoding is deterministic: the
/// same lists in the same order produce byte-identical arenas.
class PostingArenaBuilder {
 public:
  void AddU32List(const uint32_t* data, size_t count) {
    PutVarint64(bytes_, count);
    uint32_t prev = 0;
    for (size_t i = 0; i < count; ++i) {
      PutU32Delta(bytes_, data[i], prev);
      prev = data[i];
    }
    CloseList(count);
  }
  void AddU32List(const std::vector<uint32_t>& list) {
    AddU32List(list.data(), list.size());
  }

  template <typename Entry>
  void AddPairList(const Entry* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<Entry> && sizeof(Entry) == 8);
    PutVarint64(bytes_, count);
    uint32_t prev_id = 0, prev_bits = 0;
    for (size_t i = 0; i < count; ++i) {
      uint32_t id = 0, bits = 0;
      std::memcpy(&id, &data[i], sizeof(uint32_t));
      std::memcpy(&bits,
                  reinterpret_cast<const uint8_t*>(&data[i]) + sizeof(uint32_t),
                  sizeof(uint32_t));
      PutU32Delta(bytes_, id, prev_id);
      PutU32Delta(bytes_, bits, prev_bits);
      prev_id = id;
      prev_bits = bits;
    }
    CloseList(count);
  }
  template <typename Entry>
  void AddPairList(const std::vector<Entry>& list) {
    AddPairList(list.data(), list.size());
  }

  PostingArena Finish() {
    PostingArena arena;
    arena.num_lists_ = ends_.size();
    arena.total_entries_ = total_entries_;
    std::vector<uint8_t> offset_bytes((ends_.size() + 1) * sizeof(uint64_t));
    uint64_t running = 0;
    std::memcpy(offset_bytes.data(), &running, sizeof(uint64_t));
    for (size_t i = 0; i < ends_.size(); ++i) {
      running = ends_[i];
      std::memcpy(offset_bytes.data() + (i + 1) * sizeof(uint64_t), &running,
                  sizeof(uint64_t));
    }
    arena.offsets_ = ByteBlock::FromVector(std::move(offset_bytes));
    arena.data_ = ByteBlock::FromVector(std::move(bytes_));
    return arena;
  }

 private:
  void CloseList(size_t count) {
    ends_.push_back(bytes_.size());
    total_entries_ += count;
  }

  std::vector<uint8_t> bytes_;
  std::vector<uint64_t> ends_;  // byte offset past each list
  uint64_t total_entries_ = 0;
};

}  // namespace netclus::store

#endif  // NETCLUS_STORE_ARENA_H_
