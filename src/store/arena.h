// Compressed posting storage: varint arenas + zero-copy views.
//
// NetClus's footprint argument (PAPER.md Sec. 5, Table 9) rests on posting
// lists — cluster covering sequences CC(T), per-cluster trajectory lists
// TL, covering sets TC/SC — whose vector-of-vectors representation spends
// more on headers, capacity slack, and full-width ints than on payload. An
// arena packs all lists of one family into a single immutable byte buffer:
//
//   data:    list_0 | list_1 | ... | list_{n-1}
//   offsets: list extents — a plain uint64 LE array (n+1 entries, flat
//            layout) or an Elias-Fano table (rank_select.h, blocked
//            layout), offsets[i] = byte offset of list_i in `data`
//            (offsets[n] = data size)
//
// Two list layouts share the arena structure:
//
//   * kFlat (v2 index format) — `varint(count)` then count entries,
//     delta+zigzag coded with the 64-bit transform (varint.h). Decoded
//     one element at a time.
//
//   * kBlocked (v3, the in-memory default) — `varint(count)` then the
//     entries framed as blocks of up to kBlockEntries (128), each block:
//
//       header:  varint(first-value delta, ZigZag32 from the previous
//                block's first value — per pair-list chain for pairs)
//                varint(payload byte length)
//       payload: the remaining block entries, ZigZag32 delta-coded from
//                the block's first value
//
//     The headers are skip headers: chaining first values through them
//     (not through the payload) means a reader can hop block to block in
//     O(blocks) without decoding payloads, and the 32-bit-bounded
//     ZigZag32 transform lets payloads decode through the SIMD bulk
//     kernel (store/simd/bulk_varint.h) into a stack scratch buffer —
//     that is the ForEach fast path the solvers' inner loops use.
//
// Two list kinds share each layout's framing:
//   * u32 lists  — one varint per entry (CC sequences);
//   * pair lists — (u32 id, float) entries, two varints per entry: the id
//     delta and the delta of the float's bit pattern (TL / TC / SC, whose
//     distance-sorted floats have slowly-growing bit patterns).
//
// Both buffers live in refcounted ByteBlocks, so
//   * copying an index (MultiIndex::Clone, the serving layer's
//     copy-on-write snapshots) shares the frozen bytes instead of
//     duplicating them, and
//   * the v2/v3 index files store arenas verbatim — loading can alias the
//     bytes of an mmap'ed file (zero copy) or of a single heap read. When
//     a BufferPool (buffer_pool.h) manages that mapping, every list
//     access reports its byte range so residency stays under
//     NETCLUS_PAGE_BUDGET.
//
// Views decode lazily: PostingListView / PairListView are forward ranges
// that yield entries straight off the compressed stream, so the greedy
// solvers and the query engine traverse postings without materializing
// vectors. The same view types also wrap raw (uncompressed) element
// arrays, which lets call sites be agnostic about the storage mode. All
// decode paths — iterator, ForEach, any SIMD kernel — reconstruct exact
// integers, so results are bit-identical across layouts and kernels.
#ifndef NETCLUS_STORE_ARENA_H_
#define NETCLUS_STORE_ARENA_H_

#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "store/rank_select.h"
#include "store/simd/bulk_varint.h"
#include "store/varint.h"

namespace netclus::store {

class BufferPool;

/// How a list's entries are framed in the data buffer.
enum class ListLayout {
  kFlat,     ///< v2: one delta-varint run per list
  kBlocked,  ///< v3: 128-entry blocks with skip headers (the default)
};

/// Entries per block in the kBlocked layout.
inline constexpr size_t kBlockEntries = 128;

/// Immutable refcounted byte buffer. Either owns its bytes (built from a
/// vector) or aliases a range inside another owner (an mmap'ed file, a
/// whole-file heap read) that it keeps alive.
class ByteBlock {
 public:
  ByteBlock() = default;

  static ByteBlock FromVector(std::vector<uint8_t> bytes) {
    auto owned = std::make_shared<std::vector<uint8_t>>(std::move(bytes));
    ByteBlock block;
    block.data_ = owned->data();
    block.size_ = owned->size();
    block.owner_ = std::move(owned);
    return block;
  }

  /// Aliases [data, data + size) inside `owner`, which stays alive for the
  /// lifetime of this block (and of anything copied from it).
  static ByteBlock Alias(std::shared_ptr<const void> owner,
                         const uint8_t* data, size_t size) {
    ByteBlock block;
    block.owner_ = std::move(owner);
    block.data_ = data;
    block.size_ = size;
    return block;
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Sub-range view sharing this block's owner. `offset + size` must be
  /// within bounds (checked by callers against the section table).
  ByteBlock Slice(size_t offset, size_t size) const {
    return Alias(owner_, data_ + offset, size);
  }

  /// Identity of the backing bytes — equal pointers mean shared storage
  /// (used by tests to pin the copy-on-write sharing behavior).
  const void* id() const { return data_; }

 private:
  std::shared_ptr<const void> owner_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Forward range over a u32 list: either a raw array or a compressed
/// arena list (flat or blocked). Iteration decodes in place; ForEach is
/// the bulk-decode fast path for blocked lists.
class PostingListView {
 public:
  PostingListView() = default;

  static PostingListView Raw(const uint32_t* data, size_t count) {
    PostingListView view;
    view.raw_ = data;
    view.count_ = count;
    return view;
  }

  /// `begin` points at the list's count varint; decoding never reads at or
  /// past `end`. A malformed stream yields a truncated (possibly empty)
  /// view rather than out-of-bounds reads; arena construction validates
  /// streams up front so this only matters for defense in depth.
  static PostingListView Packed(const uint8_t* begin, const uint8_t* end) {
    PostingListView view;
    uint64_t count = 0;
    const uint8_t* p = GetVarint64(begin, end, &count);
    if (p == nullptr) return view;
    view.packed_ = p;
    view.packed_end_ = end;
    view.count_ = static_cast<size_t>(count);
    return view;
  }

  /// Same contract over a kBlocked list.
  static PostingListView PackedBlocked(const uint8_t* begin,
                                       const uint8_t* end) {
    PostingListView view = Packed(begin, end);
    view.blocked_ = true;
    return view;
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t*;
    using reference = const uint32_t&;

    const_iterator() = default;

    reference operator*() const { return current_; }
    pointer operator->() const { return &current_; }

    const_iterator& operator++() {
      --remaining_;
      if (remaining_ > 0) Decode();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }

    bool operator==(const const_iterator& other) const {
      return remaining_ == other.remaining_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class PostingListView;
    void Decode() {
      if (raw_ != nullptr) {
        current_ = *raw_++;
        return;
      }
      if (!blocked_) {
        uint32_t value = 0;
        const uint8_t* next = GetU32Delta(p_, end_, current_, &value);
        if (next == nullptr) {  // malformed stream: become end()
          remaining_ = 0;
          return;
        }
        p_ = next;
        current_ = value;
        return;
      }
      if (in_block_left_ == 0) {
        // Block boundary: skip header (first-value delta, payload bytes).
        uint32_t first = 0;
        uint64_t payload = 0;
        const uint8_t* next = GetU32Delta32(p_, end_, first_prev_, &first);
        if (next != nullptr) next = GetVarint64(next, end_, &payload);
        if (next == nullptr ||
            payload > static_cast<uint64_t>(end_ - next)) {
          remaining_ = 0;
          return;
        }
        p_ = next;
        first_prev_ = first;
        current_ = first;
        const size_t in_block =
            remaining_ < kBlockEntries ? remaining_ : kBlockEntries;
        in_block_left_ = static_cast<uint32_t>(in_block - 1);
        return;
      }
      uint32_t value = 0;
      const uint8_t* next = GetU32Delta32(p_, end_, current_, &value);
      if (next == nullptr) {
        remaining_ = 0;
        return;
      }
      p_ = next;
      current_ = value;
      --in_block_left_;
    }

    const uint32_t* raw_ = nullptr;
    const uint8_t* p_ = nullptr;
    const uint8_t* end_ = nullptr;
    uint32_t current_ = 0;
    size_t remaining_ = 0;  // entries left including current_
    bool blocked_ = false;
    uint32_t in_block_left_ = 0;  // entries left in the current block
    uint32_t first_prev_ = 0;     // previous block's first value
  };

  const_iterator begin() const {
    const_iterator it;
    it.remaining_ = count_;
    it.raw_ = raw_;
    it.p_ = packed_;
    it.end_ = packed_end_;
    it.blocked_ = blocked_;
    if (count_ > 0) it.Decode();
    return it;
  }
  const_iterator end() const { return const_iterator(); }

  /// Bulk traversal — the hot-loop entry point. Blocked lists decode a
  /// block at a time into a stack scratch buffer through the SIMD bulk
  /// kernel; raw and flat lists loop in place. Yields exactly the
  /// iterator's sequence.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (raw_ != nullptr) {
      for (size_t i = 0; i < count_; ++i) fn(raw_[i]);
      return;
    }
    if (!blocked_) {
      for (const uint32_t v : *this) fn(v);
      return;
    }
    uint32_t scratch[kBlockEntries];
    const uint8_t* p = packed_;
    size_t remaining = count_;
    uint32_t first_prev = 0;
    while (remaining > 0) {
      const size_t in_block =
          remaining < kBlockEntries ? remaining : kBlockEntries;
      uint32_t first = 0;
      uint64_t payload = 0;
      const uint8_t* next = GetU32Delta32(p, packed_end_, first_prev, &first);
      if (next != nullptr) next = GetVarint64(next, packed_end_, &payload);
      if (next == nullptr || payload > static_cast<uint64_t>(packed_end_ - next)) {
        return;  // malformed: arena validation makes this unreachable
      }
      const uint8_t* payload_end = next + payload;
      if (simd::BulkDecodeVarint32(next, payload_end, scratch, in_block - 1) !=
          payload_end) {
        return;
      }
      fn(first);
      uint32_t prev = first;
      for (size_t j = 0; j + 1 < in_block; ++j) {
        prev += UnZigZag32(scratch[j]);
        fn(prev);
      }
      first_prev = first;
      p = payload_end;
      remaining -= in_block;
    }
  }

  /// O(1) for raw lists, O(blocks + in-block) for blocked (skip headers),
  /// O(i) for flat — for tests and cold paths.
  uint32_t operator[](size_t i) const {
    if (raw_ != nullptr) return raw_[i];
    if (blocked_) {
      const uint8_t* p = packed_;
      uint32_t first_prev = 0;
      size_t skip = i / kBlockEntries;
      // Hop whole blocks through the skip headers without decoding.
      while (skip-- > 0) {
        uint32_t first = 0;
        uint64_t payload = 0;
        const uint8_t* next = GetU32Delta32(p, packed_end_, first_prev, &first);
        if (next != nullptr) next = GetVarint64(next, packed_end_, &payload);
        if (next == nullptr ||
            payload > static_cast<uint64_t>(packed_end_ - next)) {
          return 0;
        }
        first_prev = first;
        p = next + payload;
      }
      uint32_t first = 0;
      uint64_t payload = 0;
      const uint8_t* next = GetU32Delta32(p, packed_end_, first_prev, &first);
      if (next != nullptr) next = GetVarint64(next, packed_end_, &payload);
      if (next == nullptr) return 0;
      uint32_t value = first;
      for (size_t k = 0; k < i % kBlockEntries; ++k) {
        next = GetU32Delta32(next, packed_end_, value, &value);
        if (next == nullptr) return 0;
      }
      return value;
    }
    auto it = begin();
    for (size_t k = 0; k < i; ++k) ++it;
    return *it;
  }

  std::vector<uint32_t> Materialize() const {
    std::vector<uint32_t> out;
    out.reserve(count_);
    for (const uint32_t v : *this) out.push_back(v);
    return out;
  }

 private:
  const uint32_t* raw_ = nullptr;
  const uint8_t* packed_ = nullptr;
  const uint8_t* packed_end_ = nullptr;
  size_t count_ = 0;
  bool blocked_ = false;
};

/// Forward range over an (id, weight) list — TlEntry, CoverEntry, and any
/// other {uint32, float} POD — raw or compressed (flat or blocked).
template <typename Entry>
class PairListView {
  static_assert(std::is_trivially_copyable_v<Entry> && sizeof(Entry) == 8,
                "pair lists require {uint32 id, float weight} PODs");

 public:
  PairListView() = default;

  static PairListView Raw(const Entry* data, size_t count) {
    PairListView view;
    view.raw_ = data;
    view.count_ = count;
    return view;
  }

  static PairListView Packed(const uint8_t* begin, const uint8_t* end) {
    PairListView view;
    uint64_t count = 0;
    const uint8_t* p = GetVarint64(begin, end, &count);
    if (p == nullptr) return view;
    view.packed_ = p;
    view.packed_end_ = end;
    view.count_ = static_cast<size_t>(count);
    return view;
  }

  static PairListView PackedBlocked(const uint8_t* begin, const uint8_t* end) {
    PairListView view = Packed(begin, end);
    view.blocked_ = true;
    return view;
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;
    using pointer = const Entry*;
    using reference = const Entry&;

    const_iterator() = default;

    reference operator*() const { return current_; }
    pointer operator->() const { return &current_; }

    const_iterator& operator++() {
      --remaining_;
      if (remaining_ > 0) Decode();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }

    bool operator==(const const_iterator& other) const {
      return remaining_ == other.remaining_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class PairListView;
    void SetCurrent(uint32_t id, uint32_t bits) {
      prev_id_ = id;
      prev_bits_ = bits;
      std::memcpy(&current_, &id, sizeof(uint32_t));
      std::memcpy(reinterpret_cast<uint8_t*>(&current_) + sizeof(uint32_t),
                  &bits, sizeof(uint32_t));
    }
    void Decode() {
      if (raw_ != nullptr) {
        std::memcpy(&current_, raw_++, sizeof(Entry));
        return;
      }
      if (!blocked_) {
        uint32_t id = 0, bits = 0;
        const uint8_t* next = GetU32Delta(p_, end_, prev_id_, &id);
        if (next != nullptr) next = GetU32Delta(next, end_, prev_bits_, &bits);
        if (next == nullptr) {  // malformed stream: become end()
          remaining_ = 0;
          return;
        }
        p_ = next;
        SetCurrent(id, bits);
        return;
      }
      if (in_block_left_ == 0) {
        uint32_t id = 0, bits = 0;
        uint64_t payload = 0;
        const uint8_t* next = GetU32Delta32(p_, end_, first_prev_id_, &id);
        if (next != nullptr) {
          next = GetU32Delta32(next, end_, first_prev_bits_, &bits);
        }
        if (next != nullptr) next = GetVarint64(next, end_, &payload);
        if (next == nullptr ||
            payload > static_cast<uint64_t>(end_ - next)) {
          remaining_ = 0;
          return;
        }
        p_ = next;
        first_prev_id_ = id;
        first_prev_bits_ = bits;
        SetCurrent(id, bits);
        const size_t in_block =
            remaining_ < kBlockEntries ? remaining_ : kBlockEntries;
        in_block_left_ = static_cast<uint32_t>(in_block - 1);
        return;
      }
      uint32_t id = 0, bits = 0;
      const uint8_t* next = GetU32Delta32(p_, end_, prev_id_, &id);
      if (next != nullptr) next = GetU32Delta32(next, end_, prev_bits_, &bits);
      if (next == nullptr) {
        remaining_ = 0;
        return;
      }
      p_ = next;
      SetCurrent(id, bits);
      --in_block_left_;
    }

    const Entry* raw_ = nullptr;
    const uint8_t* p_ = nullptr;
    const uint8_t* end_ = nullptr;
    uint32_t prev_id_ = 0;
    uint32_t prev_bits_ = 0;
    Entry current_{};
    size_t remaining_ = 0;
    bool blocked_ = false;
    uint32_t in_block_left_ = 0;
    uint32_t first_prev_id_ = 0;
    uint32_t first_prev_bits_ = 0;
  };

  const_iterator begin() const {
    const_iterator it;
    it.remaining_ = count_;
    it.raw_ = raw_;
    it.p_ = packed_;
    it.end_ = packed_end_;
    it.blocked_ = blocked_;
    if (count_ > 0) it.Decode();
    return it;
  }
  const_iterator end() const { return const_iterator(); }

  /// Bulk traversal — see PostingListView::ForEach. Blocked payloads
  /// (id delta, bits delta interleaved) bulk-decode into a stack scratch
  /// and rebuild entries with the two prefix chains.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (raw_ != nullptr) {
      for (size_t i = 0; i < count_; ++i) {
        Entry e;
        std::memcpy(&e, raw_ + i, sizeof(Entry));
        fn(e);
      }
      return;
    }
    if (!blocked_) {
      for (const Entry& e : *this) fn(e);
      return;
    }
    uint32_t scratch[2 * kBlockEntries];
    const uint8_t* p = packed_;
    size_t remaining = count_;
    uint32_t first_prev_id = 0, first_prev_bits = 0;
    while (remaining > 0) {
      const size_t in_block =
          remaining < kBlockEntries ? remaining : kBlockEntries;
      uint32_t id = 0, bits = 0;
      uint64_t payload = 0;
      const uint8_t* next =
          GetU32Delta32(p, packed_end_, first_prev_id, &id);
      if (next != nullptr) {
        next = GetU32Delta32(next, packed_end_, first_prev_bits, &bits);
      }
      if (next != nullptr) next = GetVarint64(next, packed_end_, &payload);
      if (next == nullptr ||
          payload > static_cast<uint64_t>(packed_end_ - next)) {
        return;  // malformed: arena validation makes this unreachable
      }
      const uint8_t* payload_end = next + payload;
      if (simd::BulkDecodeVarint32(next, payload_end, scratch,
                                   2 * (in_block - 1)) != payload_end) {
        return;
      }
      first_prev_id = id;
      first_prev_bits = bits;
      Entry e;
      std::memcpy(&e, &id, sizeof(uint32_t));
      std::memcpy(reinterpret_cast<uint8_t*>(&e) + sizeof(uint32_t), &bits,
                  sizeof(uint32_t));
      fn(e);
      for (size_t j = 0; j + 1 < in_block; ++j) {
        id += UnZigZag32(scratch[2 * j]);
        bits += UnZigZag32(scratch[2 * j + 1]);
        std::memcpy(&e, &id, sizeof(uint32_t));
        std::memcpy(reinterpret_cast<uint8_t*>(&e) + sizeof(uint32_t), &bits,
                    sizeof(uint32_t));
        fn(e);
      }
      p = payload_end;
      remaining -= in_block;
    }
  }

  /// O(1) raw, O(blocks + in-block) blocked, O(i) flat.
  Entry operator[](size_t i) const {
    if (raw_ != nullptr) return raw_[i];
    if (blocked_) {
      const uint8_t* p = packed_;
      uint32_t first_prev_id = 0, first_prev_bits = 0;
      size_t skip = i / kBlockEntries;
      while (skip-- > 0) {
        uint32_t id = 0, bits = 0;
        uint64_t payload = 0;
        const uint8_t* next =
            GetU32Delta32(p, packed_end_, first_prev_id, &id);
        if (next != nullptr) {
          next = GetU32Delta32(next, packed_end_, first_prev_bits, &bits);
        }
        if (next != nullptr) next = GetVarint64(next, packed_end_, &payload);
        if (next == nullptr ||
            payload > static_cast<uint64_t>(packed_end_ - next)) {
          return Entry{};
        }
        first_prev_id = id;
        first_prev_bits = bits;
        p = next + payload;
      }
      uint32_t id = 0, bits = 0;
      uint64_t payload = 0;
      const uint8_t* next = GetU32Delta32(p, packed_end_, first_prev_id, &id);
      if (next != nullptr) {
        next = GetU32Delta32(next, packed_end_, first_prev_bits, &bits);
      }
      if (next != nullptr) next = GetVarint64(next, packed_end_, &payload);
      if (next == nullptr) return Entry{};
      for (size_t k = 0; k < i % kBlockEntries; ++k) {
        next = GetU32Delta32(next, packed_end_, id, &id);
        if (next != nullptr) next = GetU32Delta32(next, packed_end_, bits, &bits);
        if (next == nullptr) return Entry{};
      }
      Entry e;
      std::memcpy(&e, &id, sizeof(uint32_t));
      std::memcpy(reinterpret_cast<uint8_t*>(&e) + sizeof(uint32_t), &bits,
                  sizeof(uint32_t));
      return e;
    }
    auto it = begin();
    for (size_t k = 0; k < i; ++k) ++it;
    return *it;
  }

  std::vector<Entry> Materialize() const {
    std::vector<Entry> out;
    out.reserve(count_);
    for (const Entry& e : *this) out.push_back(e);
    return out;
  }

 private:
  const Entry* raw_ = nullptr;
  const uint8_t* packed_ = nullptr;
  const uint8_t* packed_end_ = nullptr;
  size_t count_ = 0;
  bool blocked_ = false;
};

/// What a list family contains — drives the validation walk.
enum class ListKind {
  kU32,   ///< one varint per entry
  kPair,  ///< two varints per entry (id delta, float-bits delta)
};

/// One immutable family of compressed lists: data + offsets ByteBlocks.
class PostingArena {
 public:
  PostingArena() = default;

  size_t num_lists() const { return num_lists_; }
  uint64_t total_entries() const { return total_entries_; }
  ListLayout layout() const { return layout_; }

  /// Actually-resident compressed bytes (data + offset table).
  uint64_t bytes() const {
    return static_cast<uint64_t>(data_.size()) + offsets_.size();
  }

  /// Offset-table footprint alone — the rank/select win shows up here
  /// (plain: 8 bytes/list; Elias-Fano: ~2 + log2(avg list bytes) bits).
  uint64_t offsets_bytes() const { return offsets_.size(); }

  const ByteBlock& data_block() const { return data_; }
  const ByteBlock& offsets_block() const { return offsets_; }

  PostingListView U32List(size_t i) const {
    const auto [begin, end] = ListBytes(i);
    return layout_ == ListLayout::kBlocked
               ? PostingListView::PackedBlocked(begin, end)
               : PostingListView::Packed(begin, end);
  }

  template <typename Entry>
  PairListView<Entry> PairList(size_t i) const {
    const auto [begin, end] = ListBytes(i);
    return layout_ == ListLayout::kBlocked
               ? PairListView<Entry>::PackedBlocked(begin, end)
               : PairListView<Entry>::Packed(begin, end);
  }

  /// Wraps loaded blocks, validating the offset table (monotonic, in
  /// bounds) and walking every list to check each varint stream
  /// terminates in bounds with the advertised entry count (including, for
  /// kBlocked, the skip-header grammar: headers in bounds, payload
  /// lengths truthful, 32-bit-bounded deltas). Rejecting malformed input
  /// here means views never see broken streams. For kFlat, `offsets` is
  /// the plain uint64 table; for kBlocked it is an Elias-Fano table.
  static bool FromBlocks(ByteBlock data, ByteBlock offsets, size_t num_lists,
                         ListKind kind, ListLayout layout, PostingArena* out,
                         std::string* error);

  /// Back-compat wrapper: flat layout.
  static bool FromBlocks(ByteBlock data, ByteBlock offsets, size_t num_lists,
                         ListKind kind, PostingArena* out,
                         std::string* error) {
    return FromBlocks(std::move(data), std::move(offsets), num_lists, kind,
                      ListLayout::kFlat, out, error);
  }

 private:
  friend class PostingArenaBuilder;

  uint64_t offset(size_t i) const {
    if (layout_ == ListLayout::kBlocked) return ef_offsets_.Get(i);
    uint64_t v = 0;
    std::memcpy(&v, offsets_.data() + i * sizeof(uint64_t), sizeof(uint64_t));
    return v;
  }

  std::pair<const uint8_t*, const uint8_t*> ListBytes(size_t i) const {
    const uint8_t* base = data_.data();
    uint64_t lo = 0, hi = 0;
    if (layout_ == ListLayout::kBlocked) {
      ef_offsets_.GetPair(i, &lo, &hi);
    } else {
      lo = offset(i);
      hi = offset(i + 1);
    }
    if (pool_ != nullptr) TouchPool(base + lo, static_cast<size_t>(hi - lo));
    return {base + lo, base + hi};
  }

  void TouchPool(const uint8_t* p, size_t len) const;  // out of line

  ByteBlock data_;
  ByteBlock offsets_;
  EliasFanoView ef_offsets_;  // parsed view over offsets_ (kBlocked only)
  size_t num_lists_ = 0;
  uint64_t total_entries_ = 0;
  ListLayout layout_ = ListLayout::kFlat;
  BufferPool* pool_ = nullptr;  // owned by the MappedFile backing data_
};

/// Accumulates lists into a fresh arena. Encoding is deterministic: the
/// same lists in the same order produce byte-identical arenas. Defaults
/// to the blocked layout; the flat layout remains for writing v2 files.
class PostingArenaBuilder {
 public:
  explicit PostingArenaBuilder(ListLayout layout = ListLayout::kBlocked)
      : layout_(layout) {}

  void AddU32List(const uint32_t* data, size_t count) {
    PutVarint64(bytes_, count);
    if (layout_ == ListLayout::kFlat) {
      uint32_t prev = 0;
      for (size_t i = 0; i < count; ++i) {
        PutU32Delta(bytes_, data[i], prev);
        prev = data[i];
      }
    } else {
      uint32_t first_prev = 0;
      for (size_t at = 0; at < count; at += kBlockEntries) {
        const size_t in_block =
            count - at < kBlockEntries ? count - at : kBlockEntries;
        payload_.clear();
        uint32_t prev = data[at];
        for (size_t j = 1; j < in_block; ++j) {
          PutU32Delta32(payload_, data[at + j], prev);
          prev = data[at + j];
        }
        PutU32Delta32(bytes_, data[at], first_prev);
        PutVarint64(bytes_, payload_.size());
        bytes_.insert(bytes_.end(), payload_.begin(), payload_.end());
        first_prev = data[at];
      }
    }
    CloseList(count);
  }
  void AddU32List(const std::vector<uint32_t>& list) {
    AddU32List(list.data(), list.size());
  }

  template <typename Entry>
  void AddPairList(const Entry* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<Entry> && sizeof(Entry) == 8);
    PutVarint64(bytes_, count);
    if (layout_ == ListLayout::kFlat) {
      uint32_t prev_id = 0, prev_bits = 0;
      for (size_t i = 0; i < count; ++i) {
        const auto [id, bits] = SplitEntry(data[i]);
        PutU32Delta(bytes_, id, prev_id);
        PutU32Delta(bytes_, bits, prev_bits);
        prev_id = id;
        prev_bits = bits;
      }
    } else {
      uint32_t first_prev_id = 0, first_prev_bits = 0;
      for (size_t at = 0; at < count; at += kBlockEntries) {
        const size_t in_block =
            count - at < kBlockEntries ? count - at : kBlockEntries;
        const auto [first_id, first_bits] = SplitEntry(data[at]);
        payload_.clear();
        uint32_t prev_id = first_id, prev_bits = first_bits;
        for (size_t j = 1; j < in_block; ++j) {
          const auto [id, bits] = SplitEntry(data[at + j]);
          PutU32Delta32(payload_, id, prev_id);
          PutU32Delta32(payload_, bits, prev_bits);
          prev_id = id;
          prev_bits = bits;
        }
        PutU32Delta32(bytes_, first_id, first_prev_id);
        PutU32Delta32(bytes_, first_bits, first_prev_bits);
        PutVarint64(bytes_, payload_.size());
        bytes_.insert(bytes_.end(), payload_.begin(), payload_.end());
        first_prev_id = first_id;
        first_prev_bits = first_bits;
      }
    }
    CloseList(count);
  }
  template <typename Entry>
  void AddPairList(const std::vector<Entry>& list) {
    AddPairList(list.data(), list.size());
  }

  PostingArena Finish() {
    PostingArena arena;
    arena.layout_ = layout_;
    arena.num_lists_ = ends_.size();
    arena.total_entries_ = total_entries_;
    if (layout_ == ListLayout::kFlat) {
      std::vector<uint8_t> offset_bytes((ends_.size() + 1) * sizeof(uint64_t));
      uint64_t running = 0;
      std::memcpy(offset_bytes.data(), &running, sizeof(uint64_t));
      for (size_t i = 0; i < ends_.size(); ++i) {
        running = ends_[i];
        std::memcpy(offset_bytes.data() + (i + 1) * sizeof(uint64_t), &running,
                    sizeof(uint64_t));
      }
      arena.offsets_ = ByteBlock::FromVector(std::move(offset_bytes));
    } else {
      std::vector<uint64_t> offsets(ends_.size() + 1, 0);
      for (size_t i = 0; i < ends_.size(); ++i) offsets[i + 1] = ends_[i];
      std::vector<uint8_t> ef_bytes;
      EliasFanoView::Encode(offsets, &ef_bytes);
      arena.offsets_ = ByteBlock::FromVector(std::move(ef_bytes));
      std::string error;
      // Cannot fail on bytes Encode just produced; parse builds the
      // select samples the view needs.
      EliasFanoView::Parse(arena.offsets_.data(), arena.offsets_.size(),
                           &arena.ef_offsets_, &error);
    }
    arena.data_ = ByteBlock::FromVector(std::move(bytes_));
    return arena;
  }

 private:
  template <typename Entry>
  static std::pair<uint32_t, uint32_t> SplitEntry(const Entry& e) {
    uint32_t id = 0, bits = 0;
    std::memcpy(&id, &e, sizeof(uint32_t));
    std::memcpy(&bits, reinterpret_cast<const uint8_t*>(&e) + sizeof(uint32_t),
                sizeof(uint32_t));
    return {id, bits};
  }

  void CloseList(size_t count) {
    ends_.push_back(bytes_.size());
    total_entries_ += count;
  }

  ListLayout layout_;
  std::vector<uint8_t> bytes_;
  std::vector<uint8_t> payload_;  // per-block scratch, reused
  std::vector<uint64_t> ends_;    // byte offset past each list
  uint64_t total_entries_ = 0;
};

}  // namespace netclus::store

#endif  // NETCLUS_STORE_ARENA_H_
