// netclus::Engine — the one-stop public API.
//
// Owns the road network, the trajectory corpus, the candidate sites, and
// (after BuildIndex) the multi-resolution NetClus index, and exposes the
// paper's full query surface:
//
//   Engine engine(std::move(network), std::move(sites));
//   engine.AddTrajectory({n1, n2, ...});        // map-matched input
//   engine.AddGpsTrace(trace);                  // raw GPS input
//   engine.BuildIndex();                        // offline phase
//   auto result = engine.TopK(k, tau_m, psi);   // online TOPS query
//   engine.AddTrajectory(...);                  // dynamic updates keep
//                                               // the index current
//
// Exact baselines (Inc-Greedy / FM-greedy / branch-and-bound optimum on the
// full covering sets) are available through the same object for
// benchmarking and verification.
#ifndef NETCLUS_API_ENGINE_H_
#define NETCLUS_API_ENGINE_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "exec/plan.h"
#include "exec/stats.h"
#include "graph/road_network.h"
#include "graph/spf/distance_backend.h"
#include "obs/metrics.h"
#include "netclus/index_io.h"
#include "util/thread_annotations.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "tops/coverage.h"
#include "tops/fm_greedy.h"
#include "tops/inc_greedy.h"
#include "tops/optimal.h"
#include "tops/preference.h"
#include "tops/site_set.h"
#include "tops/variants.h"
#include "traj/map_matcher.h"
#include "traj/trajectory_store.h"

namespace netclus {

namespace serve {
class NetClusServer;
struct ServerOptions;
}  // namespace serve

class Engine {
 public:
  struct Options {
    index::MultiIndexConfig index;
    tops::DetourMode detour = tops::DetourMode::kSinglePoint;
    traj::MapMatcherConfig map_matcher;
    /// Worker threads for the offline build, the exact baselines, and the
    /// online queries (0 = the NETCLUS_THREADS environment default, which
    /// itself defaults to 1 — the exact serial behavior). All results are
    /// bit-identical at any thread count; see docs/parallelism.md.
    uint32_t threads = 0;
    /// Shortest-path backend for every network-distance computation: index
    /// build, covering sets, map matching, τ estimation, exact detour
    /// evaluation. kDefault resolves the NETCLUS_SPF environment variable
    /// ("dijkstra" | "bidir" | "ch"; unset = dijkstra). Distances — and
    /// with them everything distance-derived: indexes, covering sets,
    /// rankings for a given corpus — are bit-identical under every
    /// backend (see src/graph/spf/); only speed differs. The one
    /// exception is route *geometry*: ShortestPath may return a
    /// different equal-length route on ties, so a corpus ingested
    /// through AddGpsTrace (whose map matcher expands routes) can hold
    /// tie-equivalent but not node-identical trajectories across
    /// backends. AddTrajectory corpora are unaffected. CH preprocessing
    /// runs once, lazily, at the first distance use.
    graph::spf::BackendKind distance_backend = graph::spf::BackendKind::kDefault;
    /// How LoadIndexFromFile materializes a v2 binary index file. kAuto
    /// memory-maps it (zero-copy posting arenas; override with
    /// NETCLUS_INDEX_MMAP=0); kCopy forces a heap read; kMmap requires
    /// the mapping to succeed. v1 text files always stream-parse.
    index::IndexLoadMode index_load_mode = index::IndexLoadMode::kAuto;
  };

  /// One query: the single-shot entry (Run), the batch entry (TopKBatch),
  /// and the serving layer (serve::NetClusServer) all consume this one
  /// struct. `variant` selects the problem; the cost / capacity payload
  /// fields are only read for their variant.
  struct QuerySpec {
    exec::QueryVariant variant = exec::QueryVariant::kTops;
    uint32_t k = 5;
    double tau_m = 800.0;
    tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
    bool use_fm = false;
    std::vector<tops::SiteId> existing_services;
    /// TOPS-COST payload: site-indexed costs + budget
    /// (variant == kTopsCost only).
    std::vector<double> site_costs;
    double budget = 0.0;
    /// TOPS-CAPACITY payload: site-indexed capacities
    /// (variant == kTopsCapacity only).
    std::vector<double> site_capacities;

    /// The QueryConfig this spec denotes (kTops fields only), with the
    /// caller's thread budget. Kept as the replay-test surface; new
    /// callers go through ToRequest.
    index::QueryConfig ToConfig(uint32_t threads) const {
      index::QueryConfig config;
      config.k = k;
      config.tau_m = tau_m;
      config.use_fm_sketch = use_fm;
      config.existing_services = existing_services;
      config.threads = threads;
      return config;
    }

    /// The PlanRequest this spec denotes — the single spec → planner
    /// mapping point, so a new spec field cannot be silently dropped by
    /// one of the consumers. The request's cost / capacity spans borrow
    /// this spec's vectors: the spec must outlive the plan's execution.
    exec::PlanRequest ToRequest(uint32_t threads) const;
  };

  /// Takes ownership of the network and candidate sites.
  Engine(graph::RoadNetwork network, tops::SiteSet sites);
  Engine(graph::RoadNetwork network, tops::SiteSet sites, Options options);

  // --- corpus management ---------------------------------------------------

  /// Adds a map-matched trajectory (node sequence). If the index is built,
  /// it absorbs the update (Sec. 6).
  traj::TrajId AddTrajectory(std::vector<graph::NodeId> nodes);

  /// Map-matches a raw GPS trace and adds the result; returns the id or
  /// nullopt when matching fails.
  std::optional<traj::TrajId> AddGpsTrace(const traj::GpsTrace& trace);

  /// Removes a trajectory from the corpus (and the index, if built).
  /// Removing an unknown or already-removed id is a documented no-op (a
  /// warning is logged): callers replaying an update stream must not be
  /// able to crash the engine with a stale id.
  void RemoveTrajectory(traj::TrajId id);

  /// Registers a new candidate site at an existing node.
  tops::SiteId AddSite(graph::NodeId node);

  /// Untags a candidate site (the index elects new representatives).
  /// An unknown site id is a logged no-op, like RemoveTrajectory.
  void RemoveSite(tops::SiteId site);

  // --- offline phase --------------------------------------------------------

  /// Builds the multi-resolution NetClus index over the current corpus.
  void BuildIndex();
  bool index_built() const { return index_ != nullptr; }

  /// Persists the built index (the expensive offline artifact) to `path`
  /// in the v2 binary format (delta-varint postings, checksummed
  /// sections; docs/index_format.md), together with the distance backend
  /// (a CH hierarchy rides along, so a load never re-contracts).
  bool SaveIndexToFile(const std::string& path, std::string* error) const;

  /// Loads a previously saved index instead of rebuilding; validates that
  /// it matches the current network/corpus sizes. Both file formats load
  /// (the magic is sniffed); v2 files are mmap'ed by default so the
  /// posting arenas alias the file zero-copy — see
  /// Options::index_load_mode. A backend recorded in the file replaces
  /// this engine's configured one.
  bool LoadIndexFromFile(const std::string& path, std::string* error);

  // --- online queries (NetClus) ---------------------------------------------

  /// The one online entry point: plans `spec` (any variant) through the
  /// exec layer and runs CoverBuild → Solve → Assemble. TopK /
  /// TopKWithBudget / TopKWithCapacity, TopKBatch, and the serving layer
  /// are all shims over this same path, so their answers are identical
  /// spec for spec. Throws std::invalid_argument on malformed payloads
  /// (cost / capacity vectors must be site-indexed).
  index::QueryResult Run(const QuerySpec& spec) const;

  /// TOPS(k, τ, ψ) via NetClus. `use_fm` selects FMNETCLUS (binary ψ
  /// only). Shim over Run.
  index::QueryResult TopK(uint32_t k, double tau_m,
                          const tops::PreferenceFunction& psi,
                          bool use_fm = false,
                          const std::vector<tops::SiteId>& existing = {}) const;

  /// TOPS-COST via NetClus. Shim over Run (variant = kTopsCost).
  index::QueryResult TopKWithBudget(double budget, double tau_m,
                                    const tops::PreferenceFunction& psi,
                                    const std::vector<double>& site_costs) const;

  /// TOPS-CAPACITY via NetClus. Shim over Run (variant = kTopsCapacity).
  index::QueryResult TopKWithCapacity(
      uint32_t k, double tau_m, const tops::PreferenceFunction& psi,
      const std::vector<double>& site_capacities) const;

  /// Answers a batch of independent TOPS queries concurrently over the
  /// shared immutable index, using Options::threads workers. Results are in
  /// input order and identical — query by query — to issuing each spec
  /// through TopK sequentially. This is the serving entry point: one built
  /// index, many concurrent (k, τ, ψ) requests.
  ///
  /// Specs are planned through the exec layer and grouped by
  /// (instance, τ): each distinct approximate cover T̂C is built once and
  /// shared by every query of its group (identical results — the cover
  /// does not depend on k, ψ, FM, or ES; see docs/query_planning.md).
  /// Sharers report amortized cover_build_seconds/transient_bytes and
  /// cover_shared = true.
  std::vector<index::QueryResult> TopKBatch(
      std::span<const QuerySpec> specs) const;

  /// Planner/executor statistics for this engine's online queries (stage
  /// EWMA latencies, per-instance cover builds, sharing counters). Empty
  /// before BuildIndex; reset when the index is rebuilt or reloaded.
  exec::StatsRegistry::Snapshot ExecStats() const;

  /// Exports this engine's metrics registry (stage latency histograms,
  /// cover sharing/shedding counters) as Prometheus text or JSON. Empty
  /// export before BuildIndex. A server created via Serve() has its own
  /// registry — use NetClusServer::DumpMetrics there.
  std::string DumpMetrics(
      obs::ExportFormat format = obs::ExportFormat::kPrometheusText) const;

  // --- concurrent serving (src/serve) ---------------------------------------

  /// Turns the built engine into a long-lived concurrent service: copies
  /// the network/corpus/sites, clones the index, and returns a
  /// NetClusServer with snapshot isolation, a single-writer update
  /// pipeline, and a sharded query cache (see docs/serving.md). The
  /// server is fully self-contained — it (and any retained snapshot) may
  /// outlive this engine. Once serving, route mutations through the
  /// server, not through this engine. Defined in src/serve/server.cc.
  std::unique_ptr<serve::NetClusServer> Serve() const;
  std::unique_ptr<serve::NetClusServer> Serve(
      const serve::ServerOptions& options) const;

  // --- exact baselines (no index; build covering sets on demand) ------------

  /// Full covering sets at τ (the expensive structure; Sec. 3.2).
  tops::CoverageIndex BuildCoverage(double tau_m,
                                    uint64_t memory_budget_bytes = 0) const;

  /// Inc-Greedy on freshly built covering sets.
  tops::Selection ExactGreedy(uint32_t k, double tau_m,
                              const tops::PreferenceFunction& psi) const;

  /// Branch-and-bound optimum (small instances only).
  tops::OptimalResult ExactOptimal(uint32_t k, double tau_m,
                                   const tops::PreferenceFunction& psi,
                                   double time_limit_s = 120.0) const;

  /// Exact utility of a selection under (τ, ψ), evaluated with k bounded
  /// searches (no covering sets).
  double EvaluateExact(const std::vector<tops::SiteId>& selection, double tau_m,
                       const tops::PreferenceFunction& psi) const;

  // --- accessors -------------------------------------------------------------

  const graph::RoadNetwork& network() const { return *network_; }
  /// The engine's distance backend: built lazily on first distance use
  /// (so a load-then-serve deployment never contracts a hierarchy it is
  /// about to replace), or adopted from a loaded index file.
  const graph::spf::DistanceBackend& distance_backend() const {
    return *backend();
  }
  const traj::TrajectoryStore& store() const { return *store_; }
  const tops::SiteSet& sites() const { return *sites_; }
  const index::MultiIndex& index() const { return *index_; }
  const Options& options() const { return options_; }

 private:
  /// Lazily builds (under spf_mu_, so concurrent const callers are safe)
  /// and returns the distance backend.
  const graph::spf::DistanceBackend* backend() const EXCLUDES(spf_mu_);

  Options options_;
  // Everything query_ points at lives behind a stable heap address (network,
  // store, sites), so the implicit move keeps a built Engine's query engine
  // valid — Engine is safely movable after BuildIndex(). The mutex lives
  // behind a unique_ptr for the same reason (a mutex is immovable).
  std::unique_ptr<graph::RoadNetwork> network_;
  mutable std::unique_ptr<nc::Mutex> spf_mu_ = std::make_unique<nc::Mutex>();
  mutable std::shared_ptr<const graph::spf::DistanceBackend> spf_
      GUARDED_BY(spf_mu_);
  std::unique_ptr<traj::TrajectoryStore> store_;
  std::unique_ptr<tops::SiteSet> sites_;
  std::unique_ptr<traj::MapMatcher> matcher_;
  std::unique_ptr<index::MultiIndex> index_;
  std::unique_ptr<index::QueryEngine> query_;
};

}  // namespace netclus

#endif  // NETCLUS_API_ENGINE_H_
