#include "api/engine.h"

#include "exec/executor.h"
#include "exec/planner.h"
#include "netclus/index_io.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace netclus {

Engine::Engine(graph::RoadNetwork network, tops::SiteSet sites)
    : Engine(std::move(network), std::move(sites), Options()) {}

Engine::Engine(graph::RoadNetwork network, tops::SiteSet sites, Options options)
    : options_(options),
      network_(std::make_unique<graph::RoadNetwork>(std::move(network))),
      store_(std::make_unique<traj::TrajectoryStore>(network_.get())),
      sites_(std::make_unique<tops::SiteSet>(std::move(sites))) {}

const graph::spf::DistanceBackend* Engine::backend() const {
  const nc::MutexLock lock(*spf_mu_);
  if (spf_ == nullptr) {
    spf_ = graph::spf::MakeBackend(options_.distance_backend, network_.get(),
                                   options_.threads);
  }
  return spf_.get();
}

traj::TrajId Engine::AddTrajectory(std::vector<graph::NodeId> nodes) {
  const traj::TrajId id = store_->Add(std::move(nodes));
  if (index_ != nullptr) index_->AddTrajectory(*store_, id);
  return id;
}

std::optional<traj::TrajId> Engine::AddGpsTrace(const traj::GpsTrace& trace) {
  if (matcher_ == nullptr) {
    matcher_ = std::make_unique<traj::MapMatcher>(
        network_.get(), options_.map_matcher, backend());
  }
  traj::MatchResult match = matcher_->Match(trace);
  if (match.path.empty()) return std::nullopt;
  return AddTrajectory(std::move(match.path));
}

void Engine::RemoveTrajectory(traj::TrajId id) {
  if (id >= store_->total_count()) {
    NC_LOG_WARNING << "RemoveTrajectory(" << id
                   << "): unknown trajectory id (corpus has "
                   << store_->total_count() << " ids); ignored";
    return;
  }
  if (!store_->is_alive(id)) {
    NC_LOG_WARNING << "RemoveTrajectory(" << id
                   << "): trajectory already removed; ignored";
    return;
  }
  store_->Remove(id);
  if (index_ != nullptr) index_->RemoveTrajectory(id);
}

tops::SiteId Engine::AddSite(graph::NodeId node) {
  NC_CHECK_LT(node, network_->num_nodes());
  const tops::SiteId id = sites_->Add(node);
  if (index_ != nullptr) index_->AddSite(*store_, *sites_, id);
  return id;
}

void Engine::RemoveSite(tops::SiteId site) {
  if (site >= sites_->size()) {
    NC_LOG_WARNING << "RemoveSite(" << site << "): unknown site id (pool has "
                   << sites_->size() << " sites); ignored";
    return;
  }
  if (index_ != nullptr) index_->RemoveSite(*store_, *sites_, site);
}

void Engine::BuildIndex() {
  index::MultiIndexConfig config = options_.index;
  if (config.threads == 0) config.threads = options_.threads;
  index_ = std::make_unique<index::MultiIndex>(
      index::MultiIndex::Build(*store_, *sites_, config, backend()));
  query_ = std::make_unique<index::QueryEngine>(index_.get(), store_.get(),
                                                sites_.get());
}

bool Engine::SaveIndexToFile(const std::string& path, std::string* error) const {
  NC_CHECK(index_ != nullptr) << "call BuildIndex() first";
  return index::SaveIndex(*index_, backend(), path, error);
}

bool Engine::LoadIndexFromFile(const std::string& path, std::string* error) {
  auto loaded = std::make_unique<index::MultiIndex>();
  std::shared_ptr<const graph::spf::DistanceBackend> loaded_backend;
  if (!index::LoadIndex(path, network_->num_nodes(), store_->total_count(),
                        loaded.get(), error, network_.get(), &loaded_backend,
                        options_.index_load_mode)) {
    return false;
  }
  // The file records which backend built the index (and, for CH, the full
  // preprocessed hierarchy), so the snapshot carries its backend across
  // processes. Absent section = a pre-spf file: keep the configured one.
  // The matcher holds raw query workspaces into the outgoing backend, so
  // it must go before the backend does (it is rebuilt lazily).
  if (loaded_backend != nullptr) {
    matcher_.reset();
    const nc::MutexLock lock(*spf_mu_);
    spf_ = std::move(loaded_backend);
  }
  index_ = std::move(loaded);
  query_ = std::make_unique<index::QueryEngine>(index_.get(), store_.get(),
                                                sites_.get());
  return true;
}

exec::PlanRequest Engine::QuerySpec::ToRequest(uint32_t threads) const {
  exec::PlanRequest request =
      exec::RequestFromConfig(variant, psi, ToConfig(threads));
  if (variant == exec::QueryVariant::kTopsCost) {
    request.site_costs = site_costs;
    request.budget = budget;
  }
  if (variant == exec::QueryVariant::kTopsCapacity) {
    request.site_capacities = site_capacities;
  }
  return request;
}

index::QueryResult Engine::Run(const QuerySpec& spec) const {
  NC_CHECK(index_ != nullptr) << "call BuildIndex() first";
  exec::ExecContext* ctx = query_->exec_context();
  const exec::Planner planner(ctx);
  const exec::QueryPlan plan =
      planner.Plan(spec.ToRequest(options_.threads), *index_,
                   /*batch_size=*/1);
  return exec::Executor(index_.get(), store_.get(), sites_.get(), ctx)
      .Execute(plan);
}

index::QueryResult Engine::TopK(uint32_t k, double tau_m,
                                const tops::PreferenceFunction& psi,
                                bool use_fm,
                                const std::vector<tops::SiteId>& existing) const {
  QuerySpec spec;
  spec.k = k;
  spec.tau_m = tau_m;
  spec.psi = psi;
  spec.use_fm = use_fm;
  spec.existing_services = existing;
  return Run(spec);
}

std::vector<index::QueryResult> Engine::TopKBatch(
    std::span<const QuerySpec> specs) const {
  NC_CHECK(index_ != nullptr) << "call BuildIndex() first";
  // Plan every spec (the planner's batch-aware allocation reproduces the
  // historical two regimes: with at least one query per worker, queries
  // are the unit of concurrency; otherwise each query fans its inner
  // loops across all threads), then hand the batch to the executor, which
  // groups plans by (instance, τ) and builds each T̂C once. Every stage is
  // deterministic, so the answers are identical in both regimes and to
  // sequential TopK calls.
  exec::ExecContext* ctx = query_->exec_context();
  const exec::Planner planner(ctx);
  std::vector<exec::QueryPlan> plans;
  plans.reserve(specs.size());
  for (const QuerySpec& spec : specs) {
    plans.push_back(planner.Plan(
        exec::RequestFromConfig(exec::QueryVariant::kTops, spec.psi,
                                spec.ToConfig(options_.threads)),
        *index_, specs.size()));
  }
  return exec::Executor(index_.get(), store_.get(), sites_.get(), ctx)
      .ExecuteBatch(plans, options_.threads);
}

exec::StatsRegistry::Snapshot Engine::ExecStats() const {
  if (query_ == nullptr) return {};
  return query_->exec_context()->stats.snapshot();
}

std::string Engine::DumpMetrics(obs::ExportFormat format) const {
  if (query_ == nullptr) {
    return obs::MetricsRegistry().Export(format);
  }
  return query_->exec_context()->metrics.Export(format);
}

index::QueryResult Engine::TopKWithBudget(
    double budget, double tau_m, const tops::PreferenceFunction& psi,
    const std::vector<double>& site_costs) const {
  QuerySpec spec;
  spec.variant = exec::QueryVariant::kTopsCost;
  spec.tau_m = tau_m;
  spec.psi = psi;
  spec.site_costs = site_costs;
  spec.budget = budget;
  return Run(spec);
}

index::QueryResult Engine::TopKWithCapacity(
    uint32_t k, double tau_m, const tops::PreferenceFunction& psi,
    const std::vector<double>& site_capacities) const {
  QuerySpec spec;
  spec.variant = exec::QueryVariant::kTopsCapacity;
  spec.k = k;
  spec.tau_m = tau_m;
  spec.psi = psi;
  spec.site_capacities = site_capacities;
  return Run(spec);
}

tops::CoverageIndex Engine::BuildCoverage(double tau_m,
                                          uint64_t memory_budget_bytes) const {
  tops::CoverageConfig config;
  config.tau_m = tau_m;
  config.detour = options_.detour;
  config.memory_budget_bytes = memory_budget_bytes;
  config.threads = options_.threads;
  config.backend = backend();
  return tops::CoverageIndex::Build(*store_, *sites_, config);
}

tops::Selection Engine::ExactGreedy(uint32_t k, double tau_m,
                                    const tops::PreferenceFunction& psi) const {
  const tops::CoverageIndex coverage = BuildCoverage(tau_m);
  tops::GreedyConfig config;
  config.k = k;
  config.threads = options_.threads;
  return IncGreedy(coverage, psi, config);
}

tops::OptimalResult Engine::ExactOptimal(uint32_t k, double tau_m,
                                         const tops::PreferenceFunction& psi,
                                         double time_limit_s) const {
  const tops::CoverageIndex coverage = BuildCoverage(tau_m);
  tops::OptimalConfig config;
  config.k = k;
  config.time_limit_s = time_limit_s;
  return SolveOptimal(coverage, psi, config);
}

double Engine::EvaluateExact(const std::vector<tops::SiteId>& selection,
                             double tau_m,
                             const tops::PreferenceFunction& psi) const {
  return tops::CoverageIndex::EvaluateSelection(
      *store_, *sites_, selection, tau_m, psi, options_.detour, backend());
}

}  // namespace netclus
