// Inc-Greedy (Sec. 3.3, Algorithm 1): the (1 - 1/e)-approximate greedy
// solver for TOPS, with marginal-gain bookkeeping over the covering sets.
//
// Also supports warm-starting from existing service locations ES
// (Sec. 7.3): Q starts at ES, marginals are discounted accordingly, and the
// same (1 - 1/e) bound holds for the extra utility.
#ifndef NETCLUS_TOPS_INC_GREEDY_H_
#define NETCLUS_TOPS_INC_GREEDY_H_

#include <cstdint>
#include <vector>

#include "tops/coverage.h"
#include "tops/preference.h"
#include "tops/site_set.h"

namespace netclus::tops {

struct GreedyConfig {
  uint32_t k = 5;
  /// Existing service locations ES (Sec. 7.3): treated as already selected;
  /// not counted against k and not reported in Selection::sites.
  std::vector<SiteId> existing_services;
  /// Worker threads for the per-round marginal-gain scan and the initial
  /// site-weight pass (0 = NETCLUS_THREADS default). The argmax tie-break
  /// (marginal, then weight, then site id) is a total order evaluated
  /// chunk-by-chunk in ascending order, so selections are bit-identical to
  /// the serial path at every thread count.
  uint32_t threads = 0;
  /// Site counts at or below this use the serial argmax scan even when
  /// `threads` > 1 — a pool dispatch per greedy round costs more than
  /// scanning a few thousand doubles. Purely a performance heuristic (the
  /// chunked argmax is exactly equivalent); tests set it to 0 to force the
  /// parallel fold on small corpora.
  size_t argmax_serial_cutoff = 16384;
};

/// Result of any TOPS solver in this library.
struct Selection {
  std::vector<SiteId> sites;          ///< chosen sites, in selection order
  std::vector<double> marginal_gains; ///< utility gain per selection step
  double utility = 0.0;               ///< U(Q ∪ ES) under ψ
  double base_utility = 0.0;          ///< U(ES) alone (0 when ES is empty)
  double solve_seconds = 0.0;         ///< iterative phase only (covering
                                      ///< sets are an input, per Sec. 8.6)
};

/// Runs Inc-Greedy on a prebuilt coverage index.
Selection IncGreedy(const CoverageIndex& coverage, const PreferenceFunction& psi,
                    const GreedyConfig& config);

/// Recomputes U(Q) for an explicit selection from the coverage index
/// (exact; used to cross-check and to score sketch-based selections).
double UtilityOf(const CoverageIndex& coverage, const PreferenceFunction& psi,
                 const std::vector<SiteId>& selection);

}  // namespace netclus::tops

#endif  // NETCLUS_TOPS_INC_GREEDY_H_
