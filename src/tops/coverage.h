// Covering sets TC / SC and site weights (Sec. 3.2).
//
// For every candidate site s, TC(s) is the set of trajectories T with
// d_r(T, s) <= τ together with the detour distance d_r(T, s); SC(T) is the
// inverse map. This is the O(mn)-sized structure whose build cost and
// memory footprint make plain Inc-Greedy non-scalable (Sec. 3.4, Table 9) —
// NetClus exists to avoid materializing it at full resolution.
//
// Construction avoids the paper's 250 GB all-pairs distance matrix: each
// site runs a τ-bounded forward + reverse Dijkstra, and the trajectory
// store's node -> trajectory inverted index turns settled nodes into
// covered trajectories.
//
// Two detour semantics (DESIGN.md):
//  * kSinglePoint: d_r(T,s) = min_{v in T} d(v,s) + d(s,v)  — the round
//    trip from one trajectory node; this is the semantics the NetClus
//    guarantees (4R bounds) are stated in.
//  * kPairwise: min over leave/rejoin pairs k <= l of
//    d(v_k,s) + d(s,v_l) - along(v_k, v_l), clamped at 0, with each leg
//    individually <= τ. Along-path baseline = the user's actual route.
#ifndef NETCLUS_TOPS_COVERAGE_H_
#define NETCLUS_TOPS_COVERAGE_H_

#include <cstdint>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/road_network.h"
#include "graph/spf/distance_backend.h"
#include "store/arena.h"
#include "tops/preference.h"
#include "tops/site_set.h"
#include "traj/trajectory_store.h"
#include "util/memory.h"

namespace netclus::tops {

enum class DetourMode {
  kSinglePoint,
  kPairwise,
};

struct CoverageConfig {
  double tau_m = 800.0;
  DetourMode detour = DetourMode::kSinglePoint;
  /// Optional analytic memory budget; when exceeded the build aborts and
  /// Build() returns an index with oom() == true (Table 9's cutoff).
  uint64_t memory_budget_bytes = 0;
  /// Worker threads for the per-site searches (0 = NETCLUS_THREADS default).
  /// Each site's covering set is computed independently, so the result is
  /// identical at any thread count. A nonzero memory budget forces the
  /// serial path: the budget cutoff is defined by sequential site order.
  uint32_t threads = 0;
  /// Shortest-path backend for the per-site searches (not owned; must
  /// outlive the build). Null = per-worker plain Dijkstra, the
  /// pre-subsystem behavior. Distances — and therefore the covering
  /// sets — are bit-identical under every backend; see src/graph/spf/.
  const graph::spf::DistanceBackend* backend = nullptr;
  /// Pack TC/SC into delta-varint arenas after the build (src/store).
  /// The sets are identical — TC()/SC() views decode lazily — but the
  /// resident footprint drops well below the vector representation.
  /// Off by default: the per-query approximate covers of the NetClus
  /// path stay raw for latency; the long-lived exact baselines (Table 9)
  /// and memory-bound deployments turn it on.
  bool compress_postings = false;
};

/// One covering entry: trajectory (or site, in the inverse view) + d_r.
struct CoverEntry {
  uint32_t id;  ///< TrajId in TC, SiteId in SC
  float dr_m;
};

/// Lazy range over one covering set: raw vector storage or compressed
/// arena storage behind one iterator type, so the solver family
/// (Inc-Greedy, FM-greedy, Jaccard, variants) traverses either without
/// materializing vectors.
using CoverList = store::PairListView<CoverEntry>;

/// Build statistics, reported by the benches.
struct CoverageStats {
  double build_seconds = 0.0;
  uint64_t settled_nodes = 0;   ///< total Dijkstra-settled nodes
  uint64_t cover_entries = 0;   ///< Σ |TC(s)|
};

class CoverageIndex {
 public:
  /// Computes TC for all sites in `sites` (and SC as its inverse).
  /// Trajectories marked deleted in the store are skipped.
  static CoverageIndex Build(const traj::TrajectoryStore& store,
                             const SiteSet& sites, const CoverageConfig& config);

  /// Wraps precomputed covering sets (sorted or not; they are re-sorted).
  /// This is how NetClus runs the unmodified solver family on cluster
  /// representatives: the approximate covers T̂C (Eq. 10) become a coverage
  /// index whose "sites" are representatives. `num_trajectories` sizes the
  /// SC inverse; `num_live` is the utility denominator.
  static CoverageIndex FromCovers(std::vector<std::vector<CoverEntry>> tc,
                                  size_t num_trajectories, size_t num_live,
                                  double tau_m);

  /// True when the memory budget aborted the build; all queries on an OOM
  /// index are invalid.
  bool oom() const { return oom_; }

  double tau_m() const { return config_.tau_m; }
  const CoverageConfig& config() const { return config_; }
  size_t num_sites() const { return compressed_ ? tc_arena_.num_lists() : tc_.size(); }
  size_t num_trajectories() const {
    return compressed_ ? sc_arena_.num_lists() : sc_.size();
  }

  /// Live (non-deleted) trajectories in the store at build time; the
  /// denominator for utility percentages.
  size_t num_live_trajectories() const { return num_live_; }

  /// TC(s): covered trajectories sorted by ascending d_r (paper keeps the
  /// sets distance-sorted).
  CoverList TC(SiteId s) const {
    if (compressed_) return tc_arena_.PairList<CoverEntry>(s);
    return CoverList::Raw(tc_[s].data(), tc_[s].size());
  }

  /// SC(T): covering sites sorted by ascending d_r.
  CoverList SC(traj::TrajId t) const {
    if (compressed_) return sc_arena_.PairList<CoverEntry>(t);
    return CoverList::Raw(sc_[t].data(), sc_[t].size());
  }

  /// Packs TC/SC into compressed arenas and drops the vectors. Idempotent;
  /// views from TC()/SC() decode the same entries in the same order.
  void Compress();

  /// True once Compress() ran (or the build was configured to).
  bool compressed() const { return compressed_; }

  /// Site weight w_i under preference ψ: Σ_{T in TC(s)} ψ(T, s).
  double SiteWeight(SiteId s, const PreferenceFunction& psi) const;

  /// Exact d_r(T, s) for an arbitrary (trajectory, site) pair, computed on
  /// demand with bounded searches (used to evaluate solution quality
  /// without a full index). kInfDistance if above `tau_m`. `query` is any
  /// spf workspace (a plain DijkstraEngine still works).
  static double DetourDistance(const traj::TrajectoryStore& store,
                               graph::spf::DistanceQuery* query,
                               traj::TrajId t, graph::NodeId site_node,
                               double tau_m, DetourMode mode);

  /// Exact utility of a concrete site selection, evaluated from scratch
  /// with k bounded searches (cheap: used to score NetClus answers against
  /// Inc-Greedy answers without building a full CoverageIndex).
  static double EvaluateSelection(
      const traj::TrajectoryStore& store, const SiteSet& sites,
      const std::vector<SiteId>& selection, double tau_m,
      const PreferenceFunction& psi, DetourMode mode = DetourMode::kSinglePoint,
      const graph::spf::DistanceBackend* backend = nullptr);

  const CoverageStats& stats() const { return stats_; }

  /// Analytic memory footprint of TC + SC, bytes.
  uint64_t MemoryBytes() const;

 private:
  CoverageConfig config_;
  std::vector<std::vector<CoverEntry>> tc_;
  std::vector<std::vector<CoverEntry>> sc_;
  store::PostingArena tc_arena_;  ///< packed TC (when compressed_)
  store::PostingArena sc_arena_;  ///< packed SC (when compressed_)
  bool compressed_ = false;
  CoverageStats stats_;
  size_t num_live_ = 0;
  bool oom_ = false;
};

}  // namespace netclus::tops

#endif  // NETCLUS_TOPS_COVERAGE_H_
