#include "tops/coverage.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "util/float_bits.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace netclus::tops {

namespace {

using graph::NodeId;
using traj::TrajId;

// Per-site scratch that maps TrajId -> best detour found so far, using a
// stamped array so that clearing between sites is O(1).
class MinDetourScratch {
 public:
  explicit MinDetourScratch(size_t num_trajs)
      : best_(num_trajs, 0.0f), stamp_(num_trajs, 0) {}

  void NewSite() {
    ++epoch_;
    touched_.clear();
  }

  void Offer(TrajId t, float dr) {
    if (stamp_[t] != epoch_) {
      stamp_[t] = epoch_;
      best_[t] = dr;
      touched_.push_back(t);
    } else if (dr < best_[t]) {
      best_[t] = dr;
    }
  }

  const std::vector<TrajId>& touched() const { return touched_; }
  float best(TrajId t) const { return best_[t]; }

 private:
  std::vector<float> best_;
  std::vector<uint32_t> stamp_;
  std::vector<TrajId> touched_;
  uint32_t epoch_ = 0;
};

// Pairwise detour per trajectory for one site: collects (pos, rev, fwd) leg
// distances and sweeps positions in order, maintaining
// min_{k <= l} (rev(v_k) + prefix[k]) to add to (fwd(v_l) - prefix[l]).
struct PairwiseLegs {
  // Sparse per-position legs; kInf when the leg is out of range.
  std::vector<std::pair<uint32_t, float>> rev_legs;  // (pos, d(v,s))
  std::vector<std::pair<uint32_t, float>> fwd_legs;  // (pos, d(s,v))
};

// Per-worker scratch for the site loop: every site's covering set is
// computed with private state, so sites can be processed in any order (and
// concurrently) with identical results. The search workspace comes from
// the configured backend (plain Dijkstra when there is none).
struct SiteScratch {
  SiteScratch(const graph::spf::DistanceBackend* backend,
              const graph::RoadNetwork* net, size_t num_trajs)
      : query(graph::spf::MakeQueryOrDijkstra(backend, net)),
        detour(num_trajs) {}
  std::unique_ptr<graph::spf::DistanceQuery> query;
  MinDetourScratch detour;
  std::unordered_map<TrajId, PairwiseLegs> legs;
};

// Computes TC(s) into `tc` (sorted by ascending distance) and returns the
// number of Dijkstra-settled nodes.
uint64_t ComputeSiteCover(const traj::TrajectoryStore& store,
                          const SiteSet& sites, const CoverageConfig& config,
                          SiteScratch& scratch, SiteId s,
                          std::vector<CoverEntry>& tc) {
  const NodeId site_node = sites.node(s);
  uint64_t settled = 0;
  scratch.detour.NewSite();

  if (config.detour == DetourMode::kSinglePoint) {
    const std::vector<graph::RoundTrip> rts =
        scratch.query->BoundedRoundTrip(site_node, config.tau_m);
    settled += scratch.query->last_settled_count();
    for (const graph::RoundTrip& rt : rts) {
      for (const traj::Posting& posting : store.postings(rt.node)) {
        if (!store.is_alive(posting.traj)) continue;
        scratch.detour.Offer(posting.traj, static_cast<float>(rt.total()));
      }
    }
  } else {
    // Pairwise: both legs must individually fit in τ.
    scratch.legs.clear();
    const std::vector<graph::Settled> fwd = scratch.query->BoundedSearch(
        site_node, config.tau_m, graph::Direction::kForward);
    settled += scratch.query->last_settled_count();
    const std::vector<graph::Settled> rev = scratch.query->BoundedSearch(
        site_node, config.tau_m, graph::Direction::kReverse);
    settled += scratch.query->last_settled_count();
    for (const graph::Settled& st : rev) {
      // rev search distance = d(node, site): the "leave" leg.
      for (const traj::Posting& p : store.postings(st.node)) {
        if (!store.is_alive(p.traj)) continue;
        scratch.legs[p.traj].rev_legs.emplace_back(p.pos,
                                                   static_cast<float>(st.distance));
      }
    }
    for (const graph::Settled& st : fwd) {
      // fwd search distance = d(site, node): the "rejoin" leg.
      for (const traj::Posting& p : store.postings(st.node)) {
        if (!store.is_alive(p.traj)) continue;
        scratch.legs[p.traj].fwd_legs.emplace_back(p.pos,
                                                   static_cast<float>(st.distance));
      }
    }
    for (auto& [t, l] : scratch.legs) {
      const traj::Trajectory& trajectory = store.trajectory(t);
      std::sort(l.rev_legs.begin(), l.rev_legs.end());
      std::sort(l.fwd_legs.begin(), l.fwd_legs.end());
      // Sweep rejoin positions in order, keeping the best leave <= rejoin.
      double best = graph::kInfDistance;
      size_t ri = 0;
      double best_leave = graph::kInfDistance;  // min rev + prefix
      for (const auto& [pos, fwd_d] : l.fwd_legs) {
        while (ri < l.rev_legs.size() && l.rev_legs[ri].first <= pos) {
          const double leave =
              l.rev_legs[ri].second + trajectory.prefix(l.rev_legs[ri].first);
          best_leave = std::min(best_leave, leave);
          ++ri;
        }
        if (best_leave == graph::kInfDistance) continue;
        const double detour = best_leave + fwd_d - trajectory.prefix(pos);
        best = std::min(best, detour);
      }
      if (best != graph::kInfDistance) {
        scratch.detour.Offer(t, static_cast<float>(std::max(0.0, best)));
      }
    }
  }

  tc.clear();
  tc.reserve(scratch.detour.touched().size());
  for (TrajId t : scratch.detour.touched()) {
    const float dr = scratch.detour.best(t);
    if (dr <= config.tau_m) tc.push_back({t, dr});
  }
  std::sort(tc.begin(), tc.end(), [](const CoverEntry& a, const CoverEntry& b) {
    return a.dr_m < b.dr_m || (util::BitEqual(a.dr_m, b.dr_m) && a.id < b.id);
  });
  return settled;
}

}  // namespace

CoverageIndex CoverageIndex::Build(const traj::TrajectoryStore& store,
                                   const SiteSet& sites,
                                   const CoverageConfig& config) {
  CoverageIndex index;
  index.config_ = config;
  index.num_live_ = store.live_count();
  util::WallTimer timer;
  util::MemoryBudget budget(config.memory_budget_bytes);

  const graph::RoadNetwork& net = store.network();
  const size_t num_trajs = store.total_count();
  index.tc_.resize(sites.size());
  index.sc_.resize(num_trajs);

  // The memory-budget cutoff is defined by sequential site order, so a
  // nonzero budget forces the serial path (Table 9's OOM semantics).
  const unsigned threads =
      config.memory_budget_bytes > 0 ? 1 : util::ResolveThreads(config.threads);

  if (threads <= 1) {
    SiteScratch scratch(config.backend, &net, num_trajs);
    for (SiteId s = 0; s < sites.size(); ++s) {
      index.stats_.settled_nodes +=
          ComputeSiteCover(store, sites, config, scratch, s, index.tc_[s]);
      index.stats_.cover_entries += index.tc_[s].size();
      if (!budget.Charge(index.tc_[s].size() * sizeof(CoverEntry) * 2 + 64)) {
        index.oom_ = true;
        index.tc_.clear();
        index.sc_.clear();
        index.stats_.build_seconds = timer.Seconds();
        NC_LOG_WARNING << "CoverageIndex: memory budget ("
                       << util::HumanBytes(budget.limit_bytes())
                       << ") exceeded at site " << s << "/" << sites.size();
        return index;
      }
    }
  } else {
    std::atomic<uint64_t> settled{0};
    // Coarse chunks: each carries its own Dijkstra engine + scratch (O(nodes)
    // to set up), so ~4 chunks per thread amortizes that without skew — and
    // a single chunk when this call would execute inline anyway.
    const size_t grain = util::CoarseGrain(threads, sites.size());
    util::ParallelFor(
        threads, sites.size(),
        [&](size_t begin, size_t end) {
          SiteScratch scratch(config.backend, &net, num_trajs);
          uint64_t local_settled = 0;
          for (size_t s = begin; s < end; ++s) {
            local_settled += ComputeSiteCover(store, sites, config, scratch,
                                              static_cast<SiteId>(s), index.tc_[s]);
          }
          settled.fetch_add(local_settled, std::memory_order_relaxed);
        },
        grain);
    index.stats_.settled_nodes = settled.load();
    for (const auto& tc : index.tc_) index.stats_.cover_entries += tc.size();
  }

  // Inverse view SC, also sorted by ascending distance. The fill stays
  // sequential (it scatters across trajectories); the sorts are independent
  // per trajectory.
  for (SiteId s = 0; s < index.tc_.size(); ++s) {
    for (const CoverEntry& e : index.tc_[s]) {
      index.sc_[e.id].push_back({s, e.dr_m});
    }
  }
  util::ParallelFor(threads, index.sc_.size(), [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      std::sort(index.sc_[t].begin(), index.sc_[t].end(),
                [](const CoverEntry& a, const CoverEntry& b) {
                  return a.dr_m < b.dr_m ||
                         (util::BitEqual(a.dr_m, b.dr_m) && a.id < b.id);
                });
    }
  });
  if (config.compress_postings) index.Compress();
  index.stats_.build_seconds = timer.Seconds();
  return index;
}

void CoverageIndex::Compress() {
  if (compressed_) return;
  store::PostingArenaBuilder tc_builder;
  for (const auto& list : tc_) tc_builder.AddPairList(list);
  tc_arena_ = tc_builder.Finish();
  store::PostingArenaBuilder sc_builder;
  for (const auto& list : sc_) sc_builder.AddPairList(list);
  sc_arena_ = sc_builder.Finish();
  tc_.clear();
  tc_.shrink_to_fit();
  sc_.clear();
  sc_.shrink_to_fit();
  compressed_ = true;
}

CoverageIndex CoverageIndex::FromCovers(
    std::vector<std::vector<CoverEntry>> tc, size_t num_trajectories,
    size_t num_live, double tau_m) {
  CoverageIndex index;
  index.config_.tau_m = tau_m;
  index.num_live_ = num_live;
  index.tc_ = std::move(tc);
  index.sc_.resize(num_trajectories);
  auto by_distance = [](const CoverEntry& a, const CoverEntry& b) {
    return a.dr_m < b.dr_m || (util::BitEqual(a.dr_m, b.dr_m) && a.id < b.id);
  };
  for (auto& cover : index.tc_) {
    std::sort(cover.begin(), cover.end(), by_distance);
    index.stats_.cover_entries += cover.size();
  }
  for (SiteId s = 0; s < index.tc_.size(); ++s) {
    for (const CoverEntry& e : index.tc_[s]) {
      NC_CHECK_LT(e.id, num_trajectories);
      index.sc_[e.id].push_back({s, e.dr_m});
    }
  }
  for (auto& sc : index.sc_) std::sort(sc.begin(), sc.end(), by_distance);
  return index;
}

double CoverageIndex::SiteWeight(SiteId s, const PreferenceFunction& psi) const {
  double w = 0.0;
  TC(s).ForEach(
      [&](const CoverEntry& e) { w += psi.Score(e.dr_m, config_.tau_m); });
  return w;
}

double CoverageIndex::DetourDistance(const traj::TrajectoryStore& store,
                                     graph::spf::DistanceQuery* query,
                                     traj::TrajId t, graph::NodeId site_node,
                                     double tau_m, DetourMode mode) {
  const traj::Trajectory& trajectory = store.trajectory(t);
  if (mode == DetourMode::kSinglePoint) {
    // d(v, s) for all trajectory nodes via one reverse bounded search, then
    // d(s, v) via one forward bounded search; combine per node.
    const std::vector<graph::Settled> rev =
        query->BoundedSearch(site_node, tau_m, graph::Direction::kReverse);
    std::unordered_map<NodeId, double> to_site;
    for (const graph::Settled& st : rev) to_site[st.node] = st.distance;
    const std::vector<graph::Settled> fwd =
        query->BoundedSearch(site_node, tau_m, graph::Direction::kForward);
    std::unordered_map<NodeId, double> from_site;
    for (const graph::Settled& st : fwd) from_site[st.node] = st.distance;
    double best = graph::kInfDistance;
    for (size_t i = 0; i < trajectory.size(); ++i) {
      const NodeId v = trajectory.node(i);
      auto it1 = to_site.find(v);
      auto it2 = from_site.find(v);
      if (it1 == to_site.end() || it2 == from_site.end()) continue;
      best = std::min(best, it1->second + it2->second);
    }
    return best <= tau_m ? best : graph::kInfDistance;
  }
  // Pairwise mode.
  const std::vector<graph::Settled> rev =
      query->BoundedSearch(site_node, tau_m, graph::Direction::kReverse);
  std::unordered_map<NodeId, double> to_site;
  for (const graph::Settled& st : rev) to_site[st.node] = st.distance;
  const std::vector<graph::Settled> fwd =
      query->BoundedSearch(site_node, tau_m, graph::Direction::kForward);
  std::unordered_map<NodeId, double> from_site;
  for (const graph::Settled& st : fwd) from_site[st.node] = st.distance;
  double best = graph::kInfDistance;
  double best_leave = graph::kInfDistance;
  for (size_t i = 0; i < trajectory.size(); ++i) {
    const NodeId v = trajectory.node(i);
    auto leave_it = to_site.find(v);
    if (leave_it != to_site.end()) {
      best_leave = std::min(best_leave, leave_it->second + trajectory.prefix(i));
    }
    auto rejoin_it = from_site.find(v);
    if (rejoin_it != from_site.end() && best_leave != graph::kInfDistance) {
      best = std::min(best,
                      std::max(0.0, best_leave + rejoin_it->second -
                                        trajectory.prefix(i)));
    }
  }
  return best <= tau_m ? best : graph::kInfDistance;
}

double CoverageIndex::EvaluateSelection(const traj::TrajectoryStore& store,
                                        const SiteSet& sites,
                                        const std::vector<SiteId>& selection,
                                        double tau_m,
                                        const PreferenceFunction& psi,
                                        DetourMode mode,
                                        const graph::spf::DistanceBackend* backend) {
  const graph::RoadNetwork& net = store.network();
  const std::unique_ptr<graph::spf::DistanceQuery> query =
      graph::spf::MakeQueryOrDijkstra(backend, &net);
  // Per-trajectory best score across the selected sites; reuse the covering
  // inversion: bounded searches from each selected site only.
  std::vector<double> best_score(store.total_count(), 0.0);
  for (SiteId s : selection) {
    const NodeId site_node = sites.node(s);
    if (mode == DetourMode::kSinglePoint) {
      const std::vector<graph::RoundTrip> rts =
          query->BoundedRoundTrip(site_node, tau_m);
      // Min detour per trajectory for this site.
      std::unordered_map<TrajId, double> best_dr;
      for (const graph::RoundTrip& rt : rts) {
        for (const traj::Posting& p : store.postings(rt.node)) {
          if (!store.is_alive(p.traj)) continue;
          auto [it, inserted] = best_dr.emplace(p.traj, rt.total());
          if (!inserted && rt.total() < it->second) it->second = rt.total();
        }
      }
      for (const auto& [t, dr] : best_dr) {
        best_score[t] = std::max(best_score[t], psi.Score(dr, tau_m));
      }
    } else {
      // Pairwise: reuse DetourDistance per touched trajectory.
      const std::vector<graph::Settled> probe =
          query->BoundedSearch(site_node, tau_m, graph::Direction::kReverse);
      std::vector<TrajId> touched;
      for (const graph::Settled& st : probe) {
        for (const traj::Posting& p : store.postings(st.node)) {
          if (store.is_alive(p.traj)) touched.push_back(p.traj);
        }
      }
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
      for (TrajId t : touched) {
        const double dr =
            DetourDistance(store, query.get(), t, site_node, tau_m, mode);
        if (dr != graph::kInfDistance) {
          best_score[t] = std::max(best_score[t], psi.Score(dr, tau_m));
        }
      }
    }
  }
  double total = 0.0;
  for (TrajId t = 0; t < store.total_count(); ++t) {
    if (store.is_alive(t)) total += best_score[t];
  }
  return total;
}

uint64_t CoverageIndex::MemoryBytes() const {
  if (compressed_) return tc_arena_.bytes() + sc_arena_.bytes();
  return util::NestedVectorBytes(tc_) + util::NestedVectorBytes(sc_);
}

}  // namespace netclus::tops
