#include "tops/preference.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace netclus::tops {

PreferenceFunction PreferenceFunction::Binary() {
  return {Kind::kBinary, 0.0};
}

PreferenceFunction PreferenceFunction::Linear() {
  return {Kind::kLinear, 0.0};
}

PreferenceFunction PreferenceFunction::Exponential(double scale) {
  NC_CHECK_GT(scale, 0.0);
  return {Kind::kExponential, scale};
}

PreferenceFunction PreferenceFunction::ConvexProbability(double exponent) {
  NC_CHECK_GE(exponent, 1.0);
  return {Kind::kConvexProbability, exponent};
}

PreferenceFunction PreferenceFunction::NegativeDistance(double normalizer_m) {
  NC_CHECK_GT(normalizer_m, 0.0);
  return {Kind::kNegativeDistance, normalizer_m};
}

double PreferenceFunction::Score(double dr_m, double tau_m) const {
  if (dr_m < 0.0) dr_m = 0.0;
  if (kind_ == Kind::kNegativeDistance) {
    // τ is ignored (conceptually infinite for TOPS3).
    return std::max(0.0, 1.0 - dr_m / param_);
  }
  if (dr_m > tau_m) return 0.0;
  switch (kind_) {
    case Kind::kBinary:
      return 1.0;
    case Kind::kLinear:
      return tau_m <= 0.0 ? 1.0 : 1.0 - dr_m / tau_m;
    case Kind::kExponential:
      return tau_m <= 0.0 ? 1.0 : std::exp(-param_ * dr_m / tau_m);
    case Kind::kConvexProbability: {
      if (tau_m <= 0.0) return 1.0;
      const double base = 1.0 - dr_m / tau_m;
      return std::pow(base, param_);
    }
    case Kind::kNegativeDistance:
      break;  // handled above
  }
  return 0.0;
}

std::string PreferenceFunction::name() const {
  switch (kind_) {
    case Kind::kBinary:
      return "binary";
    case Kind::kLinear:
      return "linear";
    case Kind::kExponential:
      return "exponential";
    case Kind::kConvexProbability:
      return "convex-probability";
    case Kind::kNegativeDistance:
      return "negative-distance";
  }
  return "unknown";
}

}  // namespace netclus::tops
