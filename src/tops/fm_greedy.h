// FM-sketch accelerated greedy for the binary TOPS instance (Sec. 3.5).
//
// Each site's trajectory cover TC(s) is summarized as an FM sketch
// (O(log m) bits instead of an O(m) list); the marginal utility of s over
// the selected set Q is estimate(sketch(Q) | sketch(s)) - estimate(sketch(Q)).
// The scan over candidates is early-terminated: sites are kept sorted by
// their standalone utility, which upper-bounds any marginal (submodularity),
// so the scan stops at the first site whose standalone utility cannot beat
// the best marginal found so far.
#ifndef NETCLUS_TOPS_FM_GREEDY_H_
#define NETCLUS_TOPS_FM_GREEDY_H_

#include <cstdint>

#include "tops/inc_greedy.h"

namespace netclus::tops {

struct FmGreedyConfig {
  uint32_t k = 5;
  uint32_t num_sketches = 30;  ///< the paper's f (Table 8 sweeps this)
  uint64_t sketch_seed = 0x5eedf00d5eedf00dULL;
};

struct FmGreedyResult {
  Selection selection;          ///< utility = exact re-evaluation of sites
  double estimated_utility = 0.0;  ///< the sketch's own estimate
  double sketch_build_seconds = 0.0;
  uint64_t union_operations = 0;   ///< sketch unions performed (early
                                   ///< termination effectiveness metric)
};

/// Runs FM-greedy. ψ is implicitly binary (Def. 3); the coverage index
/// supplies TC. The reported Selection::utility is the exact binary utility
/// of the chosen sites.
FmGreedyResult FmGreedy(const CoverageIndex& coverage,
                        const FmGreedyConfig& config);

}  // namespace netclus::tops

#endif  // NETCLUS_TOPS_FM_GREEDY_H_
