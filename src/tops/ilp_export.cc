#include "tops/ilp_export.h"

#include <ostream>
#include <vector>

#include "util/logging.h"
#include "util/strings.h"

namespace netclus::tops {

namespace {

// Emits constraints forcing u_name <= max over scores[lo..hi) * x_site,
// recursively splitting as in Appendix A.1. Leaf ranges of size one reduce
// to u <= score * x. Returns the number of constraints written.
struct MaxSplitEmitter {
  std::ostream& os;
  const std::vector<std::pair<SiteId, double>>& terms;  // (site, psi score)
  IlpStats* stats;
  size_t next_aux = 0;
  size_t traj;

  // Emits "u <= max(terms[lo..hi))" and returns the variable name holding
  // that bound.
  std::string Emit(size_t lo, size_t hi) {
    NC_CHECK_LT(lo, hi);
    if (hi - lo == 1) {
      // Leaf: a fresh continuous var capped by score * x.
      const std::string var = util::StrFormat("u%zu_l%zu", traj, next_aux++);
      os << " c" << stats->num_constraints++ << ": " << var << " - "
         << terms[lo].second << " x" << terms[lo].first << " <= 0\n";
      ++stats->num_continuous_vars;
      return var;
    }
    const size_t mid = lo + (hi - lo) / 2;
    const std::string left = Emit(lo, mid);
    const std::string right = Emit(mid, hi);
    // u <= max(left, right) via indicator y:
    //   left  <= right + M y      right <= left + M (1 - y)
    //   u     <= right + M y      u     <= left + M (1 - y)
    const std::string u = util::StrFormat("u%zu_m%zu", traj, next_aux++);
    const std::string y = util::StrFormat("y%zu_%zu", traj, next_aux++);
    constexpr double kBigM = 2.0;  // scores live in [0,1]
    os << " c" << stats->num_constraints++ << ": " << left << " - " << right
       << " - " << kBigM << " " << y << " <= 0\n";
    os << " c" << stats->num_constraints++ << ": " << right << " - " << left
       << " + " << kBigM << " " << y << " <= " << kBigM << "\n";
    os << " c" << stats->num_constraints++ << ": " << u << " - " << right
       << " - " << kBigM << " " << y << " <= 0\n";
    os << " c" << stats->num_constraints++ << ": " << u << " - " << left
       << " + " << kBigM << " " << y << " <= " << kBigM << "\n";
    ++stats->num_continuous_vars;
    ++stats->num_binary_vars;
    binaries.push_back(y);
    return u;
  }

  std::vector<std::string> binaries;
};

}  // namespace

IlpStats ExportTopsLp(const CoverageIndex& coverage,
                      const PreferenceFunction& psi, uint32_t k,
                      std::ostream& os) {
  NC_CHECK(!coverage.oom());
  IlpStats stats;
  const size_t n = coverage.num_sites();
  const size_t m = coverage.num_trajectories();
  const double tau = coverage.tau_m();

  os << "\\ TOPS ILP (Sec. 3.1 / Appendix A.1): maximize sum of trajectory"
     << " utilities\n";
  os << "Maximize\n obj:";
  bool any = false;
  for (traj::TrajId t = 0; t < m; ++t) {
    if (coverage.SC(t).empty()) continue;
    os << (any ? " + " : " ") << "U" << t;
    any = true;
  }
  if (!any) os << " 0 x0";
  os << "\nSubject To\n";

  // Cardinality: sum x_i <= k   (Ineq. 5).
  os << " card:";
  for (SiteId s = 0; s < n; ++s) os << (s == 0 ? " " : " + ") << "x" << s;
  os << " <= " << k << "\n";
  ++stats.num_constraints;
  stats.num_binary_vars += n;

  // Per-trajectory linearized max constraints (Ineq. 6 -> Appendix A.1).
  std::vector<std::string> all_binaries;
  std::vector<std::string> all_continuous;
  for (traj::TrajId t = 0; t < m; ++t) {
    const auto sc = coverage.SC(t);
    if (sc.empty()) continue;
    std::vector<std::pair<SiteId, double>> terms;
    terms.reserve(sc.size());
    for (const CoverEntry& e : sc) {
      terms.emplace_back(e.id, psi.Score(e.dr_m, tau));
    }
    MaxSplitEmitter emitter{os, terms, &stats, 0, t, {}};
    const std::string top = emitter.Emit(0, terms.size());
    os << " c" << stats.num_constraints++ << ": U" << t << " - " << top
       << " <= 0\n";
    ++stats.num_continuous_vars;  // U_t
    for (const auto& y : emitter.binaries) all_binaries.push_back(y);
  }

  os << "Bounds\n";
  for (traj::TrajId t = 0; t < m; ++t) {
    if (!coverage.SC(t).empty()) os << " 0 <= U" << t << " <= 1\n";
  }
  os << "Binary\n";
  for (SiteId s = 0; s < n; ++s) os << " x" << s << "\n";
  for (const auto& y : all_binaries) os << " " << y << "\n";
  os << "End\n";
  return stats;
}

}  // namespace netclus::tops
