#include "tops/optimal.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace netclus::tops {

namespace {

class BranchAndBound {
 public:
  BranchAndBound(const CoverageIndex& coverage, const PreferenceFunction& psi,
                 const OptimalConfig& config)
      : coverage_(coverage),
        psi_(psi),
        config_(config),
        tau_(coverage.tau_m()),
        n_(static_cast<SiteId>(coverage.num_sites())) {
    utility_.assign(coverage.num_trajectories(), 0.0);
  }

  OptimalResult Run() {
    OptimalResult result;
    // Warm-start the incumbent with Inc-Greedy; with the (1 - 1/e) bound the
    // incumbent is near-optimal already, which makes pruning effective.
    GreedyConfig greedy_config;
    greedy_config.k = config_.k;
    Selection greedy = IncGreedy(coverage_, psi_, greedy_config);
    best_utility_ = greedy.utility;
    best_sites_ = greedy.sites;
    std::sort(best_sites_.begin(), best_sites_.end());

    timer_.Reset();
    timed_out_ = false;
    std::vector<SiteId> all_sites(n_);
    for (SiteId s = 0; s < n_; ++s) all_sites[s] = s;
    std::vector<SiteId> chosen;
    Dfs(&chosen, 0.0, all_sites);

    result.selection.sites = best_sites_;
    result.selection.utility = best_utility_;
    result.selection.solve_seconds = timer_.Seconds();
    result.proven_optimal = !timed_out_;
    result.upper_bound =
        timed_out_ ? std::max(open_bound_, best_utility_) : best_utility_;
    result.nodes_explored = nodes_;
    return result;
  }

 private:
  // Marginal gain of site s w.r.t. the current utility_ vector.
  double MarginalOf(SiteId s) const {
    double gain = 0.0;
    for (const CoverEntry& e : coverage_.TC(s)) {
      const double score = psi_.Score(e.dr_m, tau_);
      if (score > utility_[e.id]) gain += score - utility_[e.id];
    }
    return gain;
  }

  // Applies site s; returns per-trajectory previous values for undo.
  std::vector<std::pair<uint32_t, double>> Apply(SiteId s) {
    std::vector<std::pair<uint32_t, double>> undo;
    for (const CoverEntry& e : coverage_.TC(s)) {
      const double score = psi_.Score(e.dr_m, tau_);
      if (score > utility_[e.id]) {
        undo.emplace_back(e.id, utility_[e.id]);
        utility_[e.id] = score;
      }
    }
    return undo;
  }

  void Undo(const std::vector<std::pair<uint32_t, double>>& undo) {
    for (const auto& [t, old] : undo) utility_[t] = old;
  }

  void Incumbent(const std::vector<SiteId>& chosen, double utility) {
    if (utility > best_utility_) {
      best_utility_ = utility;
      best_sites_ = chosen;
      std::sort(best_sites_.begin(), best_sites_.end());
    }
  }

  // Enumerates subsets of `remaining` of size up to the open slots. At each
  // node, candidates are re-scored against the current state and visited in
  // descending marginal order; the child for candidates[i] may only use
  // candidates after i, which enumerates every subset exactly once (the
  // subset's first element under this node's ordering is unique). The
  // submodular bound U + Σ top-slots marginals prunes; because the state is
  // fixed within a node, the same bound restricted to the suffix re-prunes
  // each branch.
  void Dfs(std::vector<SiteId>* chosen, double current_utility,
           const std::vector<SiteId>& remaining) {
    ++nodes_;
    if (timed_out_) return;
    if ((nodes_ & 0x3ffULL) == 0 && timer_.Seconds() > config_.time_limit_s) {
      timed_out_ = true;
      return;
    }
    if (chosen->size() == config_.k) {
      Incumbent(*chosen, current_utility);
      return;
    }
    const uint32_t slots = config_.k - static_cast<uint32_t>(chosen->size());

    std::vector<std::pair<double, SiteId>> candidates;
    candidates.reserve(remaining.size());
    for (SiteId s : remaining) {
      const double marginal = MarginalOf(s);
      if (marginal > 0.0) candidates.emplace_back(marginal, s);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                return a.first > b.first ||
                       (a.first == b.first && a.second < b.second);
              });
    double bound = current_utility;
    for (uint32_t i = 0; i < slots && i < candidates.size(); ++i) {
      bound += candidates[i].first;
    }
    if (bound <= best_utility_ + 1e-12) {
      open_bound_ = std::max(open_bound_, bound);
      return;
    }
    if (candidates.empty()) {
      // No residual gain anywhere: current subset is as good as any
      // completion of it.
      Incumbent(*chosen, current_utility);
      return;
    }
    std::vector<SiteId> suffix;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (timed_out_) return;
      double branch_bound = current_utility;
      for (size_t j = i; j < candidates.size() && j < i + slots; ++j) {
        branch_bound += candidates[j].first;
      }
      if (branch_bound <= best_utility_ + 1e-12) {
        open_bound_ = std::max(open_bound_, branch_bound);
        break;  // candidates are sorted: later branches bound even lower
      }
      const SiteId s = candidates[i].second;
      const auto undo = Apply(s);
      double gained = 0.0;
      for (const auto& [t, old] : undo) gained += utility_[t] - old;
      chosen->push_back(s);
      suffix.clear();
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        suffix.push_back(candidates[j].second);
      }
      Dfs(chosen, current_utility + gained, suffix);
      chosen->pop_back();
      Undo(undo);
    }
  }

  const CoverageIndex& coverage_;
  const PreferenceFunction& psi_;
  OptimalConfig config_;
  double tau_;
  SiteId n_;

  std::vector<double> utility_;
  double best_utility_ = 0.0;
  std::vector<SiteId> best_sites_;
  double open_bound_ = 0.0;
  uint64_t nodes_ = 0;
  bool timed_out_ = false;
  util::WallTimer timer_;
};

}  // namespace

OptimalResult SolveOptimal(const CoverageIndex& coverage,
                           const PreferenceFunction& psi,
                           const OptimalConfig& config) {
  NC_CHECK(!coverage.oom()) << "SolveOptimal on an OOM coverage index";
  NC_CHECK_GT(config.k, 0u);
  BranchAndBound solver(coverage, psi, config);
  return solver.Run();
}

}  // namespace netclus::tops
