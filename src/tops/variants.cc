#include "tops/variants.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace netclus::tops {

namespace {

// Per-trajectory utility vector shared by the variant greedies.
struct UtilityState {
  explicit UtilityState(const CoverageIndex& coverage)
      : utility(coverage.num_trajectories(), 0.0) {}

  double MarginalOf(const CoverageIndex& coverage, const PreferenceFunction& psi,
                    SiteId s) const {
    double gain = 0.0;
    const double tau = coverage.tau_m();
    coverage.TC(s).ForEach([&](const CoverEntry& e) {
      const double score = psi.Score(e.dr_m, tau);
      if (score > utility[e.id]) gain += score - utility[e.id];
    });
    return gain;
  }

  double Apply(const CoverageIndex& coverage, const PreferenceFunction& psi,
               SiteId s) {
    double gain = 0.0;
    const double tau = coverage.tau_m();
    coverage.TC(s).ForEach([&](const CoverEntry& e) {
      const double score = psi.Score(e.dr_m, tau);
      if (score > utility[e.id]) {
        gain += score - utility[e.id];
        utility[e.id] = score;
      }
    });
    return gain;
  }

  std::vector<double> utility;
};

}  // namespace

CostResult CostGreedy(const CoverageIndex& coverage,
                      const PreferenceFunction& psi, const CostConfig& config) {
  NC_CHECK(!coverage.oom());
  NC_CHECK_EQ(config.site_costs.size(), coverage.num_sites());
  util::WallTimer timer;
  CostResult result;
  UtilityState state(coverage);

  const size_t n = coverage.num_sites();
  std::vector<bool> excluded(n, false);
  double spent = 0.0;

  // Greedy on marginal-gain per unit cost, pruning unaffordable sites.
  while (true) {
    SiteId best = kInvalidSite;
    double best_ratio = 0.0;
    const double remaining = config.budget - spent;
    for (SiteId s = 0; s < n; ++s) {
      if (excluded[s]) continue;
      const double cost = config.site_costs[s];
      NC_CHECK_GT(cost, 0.0);
      if (cost > remaining) {
        excluded[s] = true;  // pruned from S per Sec. 7.1
        continue;
      }
      const double marginal = state.MarginalOf(coverage, psi, s);
      const double ratio = marginal / cost;
      if (best == kInvalidSite || ratio > best_ratio) {
        best = s;
        best_ratio = ratio;
      }
    }
    if (best == kInvalidSite || best_ratio <= 0.0) break;
    const double gain = state.Apply(coverage, psi, best);
    excluded[best] = true;
    spent += config.site_costs[best];
    result.selection.sites.push_back(best);
    result.selection.marginal_gains.push_back(gain);
    result.selection.utility += gain;
  }
  result.total_cost = spent;

  // The s_max guard: the single affordable site with maximal standalone
  // utility; return whichever of {greedy set, {s_max}} is better. This is
  // what lifts the bound to (1 - 1/e) / 2 [Khuller et al. 24].
  SiteId smax = kInvalidSite;
  double smax_utility = 0.0;
  for (SiteId s = 0; s < n; ++s) {
    if (config.site_costs[s] > config.budget) continue;
    const double u = coverage.SiteWeight(s, psi);
    if (smax == kInvalidSite || u > smax_utility) {
      smax = s;
      smax_utility = u;
    }
  }
  if (smax != kInvalidSite && smax_utility > result.selection.utility) {
    result.used_single_site_guard = true;
    result.selection.sites = {smax};
    result.selection.marginal_gains = {smax_utility};
    result.selection.utility = smax_utility;
    result.total_cost = config.site_costs[smax];
  }
  result.selection.solve_seconds = timer.Seconds();
  return result;
}

std::vector<double> DrawNormalCosts(size_t num_sites, double mean,
                                    double stddev, double min_cost,
                                    uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> costs(num_sites);
  for (double& c : costs) c = std::max(min_cost, rng.Normal(mean, stddev));
  return costs;
}

CapacityResult CapacityGreedy(const CoverageIndex& coverage,
                              const PreferenceFunction& psi,
                              const CapacityConfig& config) {
  NC_CHECK(!coverage.oom());
  NC_CHECK_EQ(config.site_capacities.size(), coverage.num_sites());
  util::WallTimer timer;
  CapacityResult result;
  UtilityState state(coverage);
  const double tau = coverage.tau_m();
  const size_t n = coverage.num_sites();
  std::vector<bool> selected(n, false);

  const uint32_t k =
      static_cast<uint32_t>(std::min<size_t>(config.k, n));
  std::vector<double> gains;  // scratch
  for (uint32_t step = 0; step < k; ++step) {
    SiteId best = kInvalidSite;
    double best_marginal = -1.0;
    for (SiteId s = 0; s < n; ++s) {
      if (selected[s]) continue;
      // Capped marginal: sum of the top-cap per-trajectory gains (Sec 7.2:
      // α_i = min(|TC(s_i)|, cap(s_i))).
      const auto tc = coverage.TC(s);
      const size_t cap = static_cast<size_t>(
          std::max(0.0, std::floor(config.site_capacities[s])));
      gains.clear();
      for (const CoverEntry& e : tc) {
        const double score = psi.Score(e.dr_m, tau);
        if (score > state.utility[e.id]) gains.push_back(score - state.utility[e.id]);
      }
      double marginal = 0.0;
      if (gains.size() <= cap) {
        for (double g : gains) marginal += g;
      } else {
        std::nth_element(gains.begin(), gains.begin() + cap, gains.end(),
                         std::greater<>());
        for (size_t i = 0; i < cap; ++i) marginal += gains[i];
      }
      if (marginal > best_marginal) {
        best_marginal = marginal;
        best = s;
      }
    }
    if (best == kInvalidSite) break;
    selected[best] = true;

    // Serve the top-cap trajectories of the chosen site.
    const auto tc = coverage.TC(best);
    const size_t cap = static_cast<size_t>(
        std::max(0.0, std::floor(config.site_capacities[best])));
    std::vector<std::pair<double, uint32_t>> ranked;  // (gain, traj)
    for (const CoverEntry& e : tc) {
      const double score = psi.Score(e.dr_m, tau);
      if (score > state.utility[e.id]) {
        ranked.emplace_back(score - state.utility[e.id], e.id);
      }
    }
    std::sort(ranked.begin(), ranked.end(), std::greater<>());
    if (ranked.size() > cap) ranked.resize(cap);
    double gain = 0.0;
    for (const auto& [g, t] : ranked) {
      state.utility[t] += g;
      gain += g;
    }
    result.selection.sites.push_back(best);
    result.selection.marginal_gains.push_back(gain);
    result.selection.utility += gain;
    result.served_counts.push_back(static_cast<uint32_t>(ranked.size()));
  }
  result.selection.solve_seconds = timer.Seconds();
  return result;
}

CostResult CostCapacityGreedy(const CoverageIndex& coverage,
                              const PreferenceFunction& psi,
                              const CostCapacityConfig& config) {
  NC_CHECK(!coverage.oom());
  NC_CHECK_EQ(config.site_costs.size(), coverage.num_sites());
  NC_CHECK_EQ(config.site_capacities.size(), coverage.num_sites());
  util::WallTimer timer;
  CostResult result;
  UtilityState state(coverage);
  const double tau = coverage.tau_m();
  const size_t n = coverage.num_sites();
  std::vector<bool> excluded(n, false);
  double spent = 0.0;

  // Capped marginal of site s against the current state.
  std::vector<double> gains;
  auto capped_marginal = [&](SiteId s) {
    const size_t cap = static_cast<size_t>(
        std::max(0.0, std::floor(config.site_capacities[s])));
    gains.clear();
    coverage.TC(s).ForEach([&](const CoverEntry& e) {
      const double score = psi.Score(e.dr_m, tau);
      if (score > state.utility[e.id]) {
        gains.push_back(score - state.utility[e.id]);
      }
    });
    double marginal = 0.0;
    if (gains.size() <= cap) {
      for (double g : gains) marginal += g;
    } else {
      std::nth_element(gains.begin(), gains.begin() + cap, gains.end(),
                       std::greater<>());
      for (size_t i = 0; i < cap; ++i) marginal += gains[i];
    }
    return marginal;
  };

  while (true) {
    SiteId best = kInvalidSite;
    double best_ratio = 0.0;
    const double remaining = config.budget - spent;
    for (SiteId s = 0; s < n; ++s) {
      if (excluded[s]) continue;
      const double cost = config.site_costs[s];
      NC_CHECK_GT(cost, 0.0);
      if (cost > remaining) {
        excluded[s] = true;
        continue;
      }
      const double ratio = capped_marginal(s) / cost;
      if (best == kInvalidSite || ratio > best_ratio) {
        best = s;
        best_ratio = ratio;
      }
    }
    if (best == kInvalidSite || best_ratio <= 0.0) break;
    // Serve the chosen site's top-cap trajectories.
    const size_t cap = static_cast<size_t>(
        std::max(0.0, std::floor(config.site_capacities[best])));
    std::vector<std::pair<double, uint32_t>> ranked;
    coverage.TC(best).ForEach([&](const CoverEntry& e) {
      const double score = psi.Score(e.dr_m, tau);
      if (score > state.utility[e.id]) {
        ranked.emplace_back(score - state.utility[e.id], e.id);
      }
    });
    std::sort(ranked.begin(), ranked.end(), std::greater<>());
    if (ranked.size() > cap) ranked.resize(cap);
    double gain = 0.0;
    for (const auto& [g, t] : ranked) {
      state.utility[t] += g;
      gain += g;
    }
    excluded[best] = true;
    spent += config.site_costs[best];
    result.selection.sites.push_back(best);
    result.selection.marginal_gains.push_back(gain);
    result.selection.utility += gain;
  }
  result.total_cost = spent;

  // Single-site guard against the ratio trap, with the capacity cap applied
  // to the standalone utilities as well.
  SiteId smax = kInvalidSite;
  double smax_utility = 0.0;
  UtilityState empty(coverage);
  for (SiteId s = 0; s < n; ++s) {
    if (config.site_costs[s] > config.budget) continue;
    gains.clear();
    coverage.TC(s).ForEach(
        [&](const CoverEntry& e) { gains.push_back(psi.Score(e.dr_m, tau)); });
    const size_t cap = static_cast<size_t>(
        std::max(0.0, std::floor(config.site_capacities[s])));
    double utility = 0.0;
    if (gains.size() <= cap) {
      for (double g : gains) utility += g;
    } else {
      std::nth_element(gains.begin(), gains.begin() + cap, gains.end(),
                       std::greater<>());
      for (size_t i = 0; i < cap; ++i) utility += gains[i];
    }
    if (smax == kInvalidSite || utility > smax_utility) {
      smax = s;
      smax_utility = utility;
    }
  }
  if (smax != kInvalidSite && smax_utility > result.selection.utility) {
    result.used_single_site_guard = true;
    result.selection.sites = {smax};
    result.selection.marginal_gains = {smax_utility};
    result.selection.utility = smax_utility;
    result.total_cost = config.site_costs[smax];
  }
  result.selection.solve_seconds = timer.Seconds();
  return result;
}

std::vector<double> DrawNormalCapacities(size_t num_sites, double mean,
                                         double stddev, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> caps(num_sites);
  for (double& c : caps) c = std::max(1.0, rng.Normal(mean, stddev));
  return caps;
}

MarketShareResult MarketShareGreedy(const CoverageIndex& coverage,
                                    const MarketShareConfig& config) {
  NC_CHECK(!coverage.oom());
  NC_CHECK_GT(config.beta, 0.0);
  NC_CHECK_LE(config.beta, 1.0);
  util::WallTimer timer;
  MarketShareResult result;
  const PreferenceFunction psi = PreferenceFunction::Binary();
  UtilityState state(coverage);
  const size_t n = coverage.num_sites();
  const size_t m = coverage.num_live_trajectories();
  const double target = config.beta * static_cast<double>(m);
  std::vector<bool> selected(n, false);

  double covered = 0.0;
  while (covered + 1e-9 < target) {
    if (config.max_sites != 0 &&
        result.selection.sites.size() >= config.max_sites) {
      break;
    }
    SiteId best = kInvalidSite;
    double best_marginal = 0.0;
    for (SiteId s = 0; s < n; ++s) {
      if (selected[s]) continue;
      const double marginal = state.MarginalOf(coverage, psi, s);
      if (best == kInvalidSite || marginal > best_marginal) {
        best = s;
        best_marginal = marginal;
      }
    }
    if (best == kInvalidSite || best_marginal <= 0.0) break;  // saturated
    selected[best] = true;
    const double gain = state.Apply(coverage, psi, best);
    covered += gain;
    result.selection.sites.push_back(best);
    result.selection.marginal_gains.push_back(gain);
  }
  result.selection.utility = covered;
  result.covered_fraction = m == 0 ? 0.0 : covered / static_cast<double>(m);
  result.reached_target = covered + 1e-9 >= target;
  result.selection.solve_seconds = timer.Seconds();
  return result;
}

}  // namespace netclus::tops
