// Preference functions ψ (Def. 2) and the paper's named variants (Sec 7.4).
//
// ψ(T, s) = f(d_r(T, s)) for d_r <= τ, else 0, with f non-increasing and
// normalized to [0, 1]. The provided family:
//  * Binary            — TOPS1: 1 inside τ (Def. 3);
//  * Linear            — 1 - d/τ;
//  * Exponential       — exp(-scale * d/τ), a soft-decay preference;
//  * ConvexProbability — TOPS2: (1 - d/τ)^exponent with exponent >= 1, a
//    convex decreasing coverage probability as in Berman et al. [2];
//  * NegativeDistance  — TOPS3: minimizing total deviation. Implemented as
//    the affine-equivalent normalized score (d_max - d)/d_max with τ = ∞,
//    which has the same argmax as Σ max(-d) because each trajectory's
//    utility is an increasing affine transform (see DESIGN.md).
#ifndef NETCLUS_TOPS_PREFERENCE_H_
#define NETCLUS_TOPS_PREFERENCE_H_

#include <string>

namespace netclus::tops {

class PreferenceFunction {
 public:
  enum class Kind {
    kBinary,
    kLinear,
    kExponential,
    kConvexProbability,
    kNegativeDistance,
  };

  static PreferenceFunction Binary();
  static PreferenceFunction Linear();
  static PreferenceFunction Exponential(double scale = 3.0);
  static PreferenceFunction ConvexProbability(double exponent = 2.0);
  /// `normalizer_m` is d_max, the deviation at which the score reaches 0;
  /// callers typically pass the network diameter or the largest observed d_r.
  static PreferenceFunction NegativeDistance(double normalizer_m);

  /// Score in [0, 1] for a detour distance `dr_m` under threshold `tau_m`.
  /// Returns 0 beyond τ. f(0) = 1 for every kind.
  double Score(double dr_m, double tau_m) const;

  Kind kind() const { return kind_; }
  /// The kind-specific parameter (scale / exponent / normalizer; unused for
  /// Binary and Linear). (kind, param) fully determines the function, which
  /// is what the serving-layer query cache keys on.
  double param() const { return param_; }
  bool is_binary() const { return kind_ == Kind::kBinary; }
  std::string name() const;

 private:
  PreferenceFunction(Kind kind, double param) : kind_(kind), param_(param) {}

  Kind kind_;
  double param_;
};

}  // namespace netclus::tops

#endif  // NETCLUS_TOPS_PREFERENCE_H_
