#include "tops/inc_greedy.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace netclus::tops {

namespace {

// Shared greedy machinery: maintains per-trajectory utilities U_j and
// per-site marginal utilities, applying Algorithm 1's update rule. The α_ji
// values of the paper are kept implicit: α_ji = max(0, ψ(T_j, s_i) - U_j)
// at all times, so the update on a U_j change from `old` to `new` is
// marginal[s_i] -= max(0, ψ - old) - max(0, ψ - new).
class GreedyState {
 public:
  GreedyState(const CoverageIndex& coverage, const PreferenceFunction& psi,
              unsigned threads, size_t argmax_serial_cutoff)
      : coverage_(coverage), psi_(psi), tau_(coverage.tau_m()),
        threads_(threads), argmax_serial_cutoff_(argmax_serial_cutoff) {
    const size_t n = coverage.num_sites();
    weight_.resize(n);
    marginal_.resize(n);
    selected_.assign(n, false);
    // Each site's weight is an independent sum over its own covering set, so
    // the pass parallelizes without any cross-site floating-point mixing.
    util::ParallelFor(threads_, n, [&](size_t begin, size_t end) {
      for (size_t s = begin; s < end; ++s) {
        weight_[s] = coverage.SiteWeight(static_cast<SiteId>(s), psi);
        marginal_[s] = weight_[s];
      }
    });
    utility_.assign(coverage.num_trajectories(), 0.0);
  }

  /// Applies site `s` as selected; returns the exact utility gain.
  double Select(SiteId s) {
    selected_[s] = true;
    double gain = 0.0;
    coverage_.TC(s).ForEach([&](const CoverEntry& e) {
      const double score = psi_.Score(e.dr_m, tau_);
      const double old_u = utility_[e.id];
      if (score <= old_u) return;
      gain += score - old_u;
      // U_j increases: discount every covering site's marginal.
      coverage_.SC(e.id).ForEach([&](const CoverEntry& cover) {
        if (selected_[cover.id]) return;
        const double other_score = psi_.Score(cover.dr_m, tau_);
        const double before = std::max(0.0, other_score - old_u);
        const double after = std::max(0.0, other_score - score);
        marginal_[cover.id] -= before - after;
      });
      utility_[e.id] = score;
    });
    marginal_[s] = 0.0;
    total_utility_ += gain;
    return gain;
  }

  /// Site with maximal marginal utility; ties broken by maximal weight,
  /// then maximal index (Sec. 3.3). kInvalidSite when none remain.
  ///
  /// (marginal, weight, id) is a total order over unselected sites, so the
  /// argmax is associative: each chunk reports its own winner and the
  /// winners are folded in ascending chunk order with the exact serial
  /// tie-break — the result is bit-identical to the serial scan at every
  /// thread count. Small scans (a few thousand doubles — the typical
  /// clustered query space) stay serial: a pool dispatch per greedy round
  /// would cost more than the scan itself.
  SiteId ArgMaxMarginal() const {
    auto better = [this](SiteId challenger, SiteId best) {
      if (best == kInvalidSite) return true;
      return marginal_[challenger] > marginal_[best] ||
             (marginal_[challenger] == marginal_[best] &&
              (weight_[challenger] > weight_[best] ||
               (weight_[challenger] == weight_[best] && challenger > best)));
    };
    auto scan = [&](size_t begin, size_t end) {
      SiteId best = kInvalidSite;
      for (size_t s = begin; s < end; ++s) {
        if (selected_[s]) continue;
        if (better(static_cast<SiteId>(s), best)) best = static_cast<SiteId>(s);
      }
      return best;
    };
    if (marginal_.size() <= argmax_serial_cutoff_) {
      return scan(0, marginal_.size());
    }
    return util::ParallelReduce<SiteId>(
        threads_, marginal_.size(), kInvalidSite, scan,
        [&](SiteId acc, SiteId chunk_best) {
          if (chunk_best == kInvalidSite) return acc;
          return better(chunk_best, acc) ? chunk_best : acc;
        });
  }

  double marginal(SiteId s) const { return marginal_[s]; }
  double total_utility() const { return total_utility_; }

 private:
  const CoverageIndex& coverage_;
  const PreferenceFunction& psi_;
  double tau_;
  unsigned threads_;
  size_t argmax_serial_cutoff_;
  std::vector<double> weight_;
  std::vector<double> marginal_;
  std::vector<double> utility_;
  std::vector<bool> selected_;
  double total_utility_ = 0.0;
};

}  // namespace

Selection IncGreedy(const CoverageIndex& coverage, const PreferenceFunction& psi,
                    const GreedyConfig& config) {
  NC_CHECK(!coverage.oom()) << "IncGreedy on an OOM coverage index";
  util::WallTimer timer;
  Selection result;
  GreedyState state(coverage, psi, util::ResolveThreads(config.threads),
                    config.argmax_serial_cutoff);

  for (SiteId es : config.existing_services) {
    NC_CHECK_LT(es, coverage.num_sites());
    state.Select(es);
  }
  result.base_utility = state.total_utility();

  const uint32_t k = static_cast<uint32_t>(
      std::min<size_t>(config.k, coverage.num_sites()));
  for (uint32_t step = 0; step < k; ++step) {
    const SiteId s = state.ArgMaxMarginal();
    if (s == kInvalidSite) break;
    const double gain = state.Select(s);
    if (gain <= 0.0 && step > 0) {
      // No residual utility anywhere; further picks are arbitrary. Keep
      // selecting (the paper's formulation returns exactly k sites), but
      // gains stay zero.
    }
    result.sites.push_back(s);
    result.marginal_gains.push_back(gain);
  }
  result.utility = state.total_utility();
  result.solve_seconds = timer.Seconds();
  return result;
}

double UtilityOf(const CoverageIndex& coverage, const PreferenceFunction& psi,
                 const std::vector<SiteId>& selection) {
  std::vector<double> utility(coverage.num_trajectories(), 0.0);
  const double tau = coverage.tau_m();
  for (SiteId s : selection) {
    coverage.TC(s).ForEach([&](const CoverEntry& e) {
      utility[e.id] = std::max(utility[e.id], psi.Score(e.dr_m, tau));
    });
  }
  double total = 0.0;
  for (double u : utility) total += u;
  return total;
}

}  // namespace netclus::tops
