// TOPS extensions and variants (Sec. 7).
//
//  * TOPS-COST (7.1): site costs + budget B; cost-effectiveness greedy with
//    the s_max guard of Khuller et al., bound (1 - 1/e)/2.
//  * TOPS-CAPACITY (7.2): per-site trajectory capacity; a site's marginal is
//    the sum of its top-cap per-trajectory gains, and selection serves
//    exactly those trajectories.
//  * TOPS4 market share (7.4): smallest Q covering >= β |T|; set-cover
//    greedy, bound 1 + ln n.
// (TOPS1/TOPS2/TOPS3 are preference-function choices, see preference.h;
// existing services are a GreedyConfig field, see inc_greedy.h.)
#ifndef NETCLUS_TOPS_VARIANTS_H_
#define NETCLUS_TOPS_VARIANTS_H_

#include <cstdint>
#include <vector>

#include "tops/inc_greedy.h"
#include "util/rng.h"

namespace netclus::tops {

struct CostConfig {
  double budget = 5.0;
  std::vector<double> site_costs;  ///< size = num_sites, all > 0
};

struct CostResult {
  Selection selection;
  double total_cost = 0.0;
  bool used_single_site_guard = false;  ///< s_max beat the greedy set
};

/// TOPS-COST greedy (budgeted maximum coverage adaptation).
CostResult CostGreedy(const CoverageIndex& coverage,
                      const PreferenceFunction& psi, const CostConfig& config);

/// Draws per-site costs ~ Normal(mean, stddev), clamped to `min_cost`
/// (Sec. 8.7 uses mean 1.0, stddev in [0,1], min 0.1).
std::vector<double> DrawNormalCosts(size_t num_sites, double mean,
                                    double stddev, double min_cost,
                                    uint64_t seed);

struct CapacityConfig {
  uint32_t k = 5;
  std::vector<double> site_capacities;  ///< max trajectories per site
};

struct CapacityResult {
  Selection selection;
  /// Trajectories actually served per selected site (≤ its capacity).
  std::vector<uint32_t> served_counts;
};

/// TOPS-CAPACITY greedy.
CapacityResult CapacityGreedy(const CoverageIndex& coverage,
                              const PreferenceFunction& psi,
                              const CapacityConfig& config);

/// Draws per-site capacities ~ Normal(mean, stddev), clamped to >= 1.
std::vector<double> DrawNormalCapacities(size_t num_sites, double mean,
                                         double stddev, uint64_t seed);

struct CostCapacityConfig {
  double budget = 5.0;
  std::vector<double> site_costs;       ///< size = num_sites, all > 0
  std::vector<double> site_capacities;  ///< size = num_sites
};

/// The Sec. 7.5 combined extension: budgeted selection where each chosen
/// site additionally serves at most cap(s) trajectories. Greedy on capped
/// marginal gain per unit cost, with the single-site guard.
CostResult CostCapacityGreedy(const CoverageIndex& coverage,
                              const PreferenceFunction& psi,
                              const CostCapacityConfig& config);

struct MarketShareConfig {
  double beta = 0.5;        ///< fraction of trajectories to capture
  uint32_t max_sites = 0;   ///< safety cap; 0 = unlimited
};

struct MarketShareResult {
  Selection selection;
  double covered_fraction = 0.0;
  bool reached_target = false;
};

/// TOPS4: minimum services for a fixed market share (binary ψ).
MarketShareResult MarketShareGreedy(const CoverageIndex& coverage,
                                    const MarketShareConfig& config);

}  // namespace netclus::tops

#endif  // NETCLUS_TOPS_VARIANTS_H_
