// Exports the TOPS optimum as an integer linear program (Sec. 3.1 +
// Appendix A.1) in CPLEX LP text format.
//
// No ILP solver ships with this repository (the built-in branch & bound in
// optimal.h computes the same optimum), but the paper's exact formulation —
// including the big-M linearization of U_j <= max_i ψ_ji x_i via the
// recursive max-split with indicator variables y — is reproduced here so
// the instance can be solved with any external solver and cross-checked.
//
// Variables: x_i ∈ {0,1} (site opened), U_j ∈ [0,1] (trajectory utility),
// y_* ∈ {0,1} (linearization indicators). Objective: max Σ_j U_j subject to
// Σ x_i <= k.
#ifndef NETCLUS_TOPS_ILP_EXPORT_H_
#define NETCLUS_TOPS_ILP_EXPORT_H_

#include <iosfwd>

#include "tops/coverage.h"
#include "tops/preference.h"

namespace netclus::tops {

struct IlpStats {
  size_t num_binary_vars = 0;
  size_t num_continuous_vars = 0;
  size_t num_constraints = 0;
};

/// Writes the LP-format model for TOPS(k, τ, ψ) over `coverage` to `os`.
/// Returns counts for tests/reports.
IlpStats ExportTopsLp(const CoverageIndex& coverage,
                      const PreferenceFunction& psi, uint32_t k,
                      std::ostream& os);

}  // namespace netclus::tops

#endif  // NETCLUS_TOPS_ILP_EXPORT_H_
