#include "tops/site_set.h"

#include "util/logging.h"

namespace netclus::tops {

SiteSet::SiteSet(std::vector<graph::NodeId> nodes) {
  nodes_.reserve(nodes.size());
  for (graph::NodeId n : nodes) Add(n);
}

SiteSet SiteSet::AllNodes(const graph::RoadNetwork& net) {
  std::vector<graph::NodeId> nodes(net.num_nodes());
  for (graph::NodeId u = 0; u < net.num_nodes(); ++u) nodes[u] = u;
  return SiteSet(std::move(nodes));
}

SiteSet SiteSet::SampleNodes(const graph::RoadNetwork& net, size_t count,
                             uint64_t seed) {
  NC_CHECK_LE(count, net.num_nodes());
  util::Rng rng(seed);
  std::vector<uint32_t> sampled = rng.SampleWithoutReplacement(
      static_cast<uint32_t>(net.num_nodes()), static_cast<uint32_t>(count));
  return SiteSet(std::vector<graph::NodeId>(sampled.begin(), sampled.end()));
}

SiteId SiteSet::SiteAtNode(graph::NodeId node) const {
  auto it = node_to_site_.find(node);
  return it == node_to_site_.end() ? kInvalidSite : it->second;
}

SiteId SiteSet::Add(graph::NodeId node) {
  auto [it, inserted] =
      node_to_site_.emplace(node, static_cast<SiteId>(nodes_.size()));
  if (inserted) nodes_.push_back(node);
  return it->second;
}

}  // namespace netclus::tops
