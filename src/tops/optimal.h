// Exact TOPS solver (Sec. 3.1) via best-first branch & bound.
//
// The paper formulates the optimum as an ILP (Appendix A.1) and solves it
// with exponential cost on the Beijing-Small sample. With no ILP solver
// available offline, this module reproduces the optimum with exact
// combinatorial search: depth-first enumeration of k-subsets, pruned by the
// submodular upper bound
//     U(Q) + Σ top (k - |Q|) marginal gains of remaining sites w.r.t. Q,
// which is admissible because marginals only shrink as Q grows. Inc-Greedy
// warm-starts the incumbent, which makes the pruning effective.
//
// Anytime behaviour: on hitting the time limit the best incumbent and the
// outstanding bound gap are reported with proven_optimal = false.
#ifndef NETCLUS_TOPS_OPTIMAL_H_
#define NETCLUS_TOPS_OPTIMAL_H_

#include <cstdint>

#include "tops/inc_greedy.h"

namespace netclus::tops {

struct OptimalConfig {
  uint32_t k = 5;
  double time_limit_s = 120.0;
};

struct OptimalResult {
  Selection selection;
  bool proven_optimal = false;
  double upper_bound = 0.0;   ///< best-possible utility still outstanding
  uint64_t nodes_explored = 0;
};

OptimalResult SolveOptimal(const CoverageIndex& coverage,
                           const PreferenceFunction& psi,
                           const OptimalConfig& config);

}  // namespace netclus::tops

#endif  // NETCLUS_TOPS_OPTIMAL_H_
