#include "tops/fm_greedy.h"

#include <algorithm>
#include <numeric>

#include "sketch/fm_sketch.h"
#include "util/logging.h"
#include "util/timer.h"

namespace netclus::tops {

FmGreedyResult FmGreedy(const CoverageIndex& coverage,
                        const FmGreedyConfig& config) {
  NC_CHECK(!coverage.oom()) << "FmGreedy on an OOM coverage index";
  FmGreedyResult result;
  const size_t n = coverage.num_sites();

  // Build one sketch per site from its trajectory cover.
  util::WallTimer build_timer;
  std::vector<sketch::FmSketch> sketches;
  sketches.reserve(n);
  for (SiteId s = 0; s < n; ++s) {
    sketch::FmSketch sk(config.num_sketches, config.sketch_seed);
    coverage.TC(s).ForEach([&](const CoverEntry& e) { sk.Add(e.id); });
    sketches.push_back(std::move(sk));
  }
  result.sketch_build_seconds = build_timer.Seconds();

  // Standalone utility estimates, used both for the scan order and as the
  // submodular upper bound on marginals.
  std::vector<double> standalone(n);
  for (SiteId s = 0; s < n; ++s) standalone[s] = sketches[s].Estimate();
  std::vector<SiteId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](SiteId a, SiteId b) {
    return standalone[a] > standalone[b] || (standalone[a] == standalone[b] && a < b);
  });

  util::WallTimer solve_timer;
  sketch::FmSketch base(config.num_sketches, config.sketch_seed);
  double base_estimate = 0.0;
  std::vector<bool> selected(n, false);

  const uint32_t k = static_cast<uint32_t>(std::min<size_t>(config.k, n));
  for (uint32_t step = 0; step < k; ++step) {
    double best_marginal = -1.0;
    SiteId best = kInvalidSite;
    for (SiteId s : order) {
      if (selected[s]) continue;
      // Early termination: standalone utility bounds the marginal; the
      // order is descending, so every later site is bounded too.
      if (best != kInvalidSite && standalone[s] <= best_marginal) break;
      const double union_estimate = base.UnionEstimate(sketches[s]);
      ++result.union_operations;
      const double marginal = union_estimate - base_estimate;
      if (marginal > best_marginal) {
        best_marginal = marginal;
        best = s;
      }
    }
    if (best == kInvalidSite) break;
    selected[best] = true;
    base.Merge(sketches[best]);
    base_estimate = base.Estimate();
    result.selection.sites.push_back(best);
    result.selection.marginal_gains.push_back(best_marginal);
  }
  result.selection.solve_seconds = solve_timer.Seconds();
  result.estimated_utility = base_estimate;
  result.selection.utility = UtilityOf(coverage, PreferenceFunction::Binary(),
                                       result.selection.sites);
  return result;
}

}  // namespace netclus::tops
