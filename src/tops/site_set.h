// Candidate site set S (Sec. 2).
//
// Sites are network nodes after edge-splitting augmentation, so a SiteSet
// is a list of node ids with a reverse map. Site ids are dense indices into
// that list; all TOPS structures are keyed by SiteId.
#ifndef NETCLUS_TOPS_SITE_SET_H_
#define NETCLUS_TOPS_SITE_SET_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "graph/road_network.h"
#include "util/rng.h"

namespace netclus::tops {

using SiteId = uint32_t;
inline constexpr SiteId kInvalidSite = std::numeric_limits<SiteId>::max();

class SiteSet {
 public:
  SiteSet() = default;

  /// Builds from explicit node ids (duplicates are dropped).
  explicit SiteSet(std::vector<graph::NodeId> nodes);

  /// All network nodes are candidate sites (the paper's default, Sec. 8.1).
  static SiteSet AllNodes(const graph::RoadNetwork& net);

  /// A uniformly sampled subset of nodes (for scalability sweeps, Fig. 10).
  static SiteSet SampleNodes(const graph::RoadNetwork& net, size_t count,
                             uint64_t seed);

  size_t size() const { return nodes_.size(); }
  graph::NodeId node(SiteId s) const { return nodes_[s]; }
  const std::vector<graph::NodeId>& nodes() const { return nodes_; }

  /// Site at `node`, or kInvalidSite.
  SiteId SiteAtNode(graph::NodeId node) const;

  /// Appends a new candidate site at `node` (dynamic updates, Sec. 6);
  /// returns its id, or the existing id if the node already hosts a site.
  SiteId Add(graph::NodeId node);

 private:
  std::vector<graph::NodeId> nodes_;
  std::unordered_map<graph::NodeId, SiteId> node_to_site_;
};

}  // namespace netclus::tops

#endif  // NETCLUS_TOPS_SITE_SET_H_
