// Planar and geodetic point types.
//
// The library works internally in a local planar frame (meters) produced by
// geo::Projector; raw inputs (synthesized GPS traces, generator hotspots)
// may be expressed as LatLon.
#ifndef NETCLUS_GEO_POINT_H_
#define NETCLUS_GEO_POINT_H_

#include <cmath>

namespace netclus::geo {

/// A point in a local planar frame, in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
};

/// Euclidean distance in the planar frame (meters).
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (avoids the sqrt in hot loops).
inline double DistanceSq(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// A WGS84 coordinate in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

}  // namespace netclus::geo

#endif  // NETCLUS_GEO_POINT_H_
