#include "geo/polyline.h"

#include <algorithm>
#include <cmath>

namespace netclus::geo {

SegmentProjection ProjectOntoSegment(const Point& p, const Point& a, const Point& b) {
  SegmentProjection out;
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len_sq = abx * abx + aby * aby;
  if (len_sq <= 0.0) {
    out.closest = a;
    out.t = 0.0;
  } else {
    double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq;
    t = std::clamp(t, 0.0, 1.0);
    out.closest = {a.x + t * abx, a.y + t * aby};
    out.t = t;
  }
  out.distance = Distance(p, out.closest);
  return out;
}

double PolylineLength(const std::vector<Point>& pts) {
  double total = 0.0;
  for (size_t i = 1; i < pts.size(); ++i) total += Distance(pts[i - 1], pts[i]);
  return total;
}

Point InterpolateAlong(const std::vector<Point>& pts, double s) {
  if (pts.empty()) return {};
  if (s <= 0.0) return pts.front();
  for (size_t i = 1; i < pts.size(); ++i) {
    const double seg = Distance(pts[i - 1], pts[i]);
    if (s <= seg && seg > 0.0) {
      const double t = s / seg;
      return {pts[i - 1].x + t * (pts[i].x - pts[i - 1].x),
              pts[i - 1].y + t * (pts[i].y - pts[i - 1].y)};
    }
    s -= seg;
  }
  return pts.back();
}

}  // namespace netclus::geo
