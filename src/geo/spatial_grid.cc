#include "geo/spatial_grid.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace netclus::geo {

namespace {

constexpr size_t kInitialTableSize = 1 << 12;  // power of two

uint64_t HashKey(int64_t key) {
  return util::SplitMix64(static_cast<uint64_t>(key));
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// PointGrid
// ---------------------------------------------------------------------------

PointGrid::PointGrid(double cell_size) : cell_size_(cell_size) {
  NC_CHECK_GT(cell_size, 0.0);
  table_.resize(kInitialTableSize);
  table_mask_ = table_.size() - 1;
}

void PointGrid::CellOf(const Point& p, int64_t* cx, int64_t* cy) const {
  *cx = static_cast<int64_t>(std::floor(p.x / cell_size_));
  *cy = static_cast<int64_t>(std::floor(p.y / cell_size_));
}

int64_t PointGrid::CellKey(int64_t cx, int64_t cy) const {
  // Interleave-free packing: city-scale grids are far below 2^31 cells/axis.
  return (cx << 32) ^ (cy & 0xffffffffLL);
}

void PointGrid::Build(const std::vector<Point>& points) {
  table_.assign(NextPow2(std::max<size_t>(kInitialTableSize, points.size() / 4)), {});
  table_mask_ = table_.size() - 1;
  entries_ = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    Insert(static_cast<uint32_t>(i), points[i]);
  }
}

void PointGrid::Insert(uint32_t id, const Point& p) {
  int64_t cx, cy;
  CellOf(p, &cx, &cy);
  if (entries_ == 0) {
    min_cx_ = max_cx_ = cx;
    min_cy_ = max_cy_ = cy;
  } else {
    min_cx_ = std::min(min_cx_, cx);
    max_cx_ = std::max(max_cx_, cx);
    min_cy_ = std::min(min_cy_, cy);
    max_cy_ = std::max(max_cy_, cy);
  }
  const int64_t key = CellKey(cx, cy);
  auto& slot = table_[HashKey(key) & table_mask_];
  for (auto& bucket : slot) {
    if (bucket.key == key) {
      bucket.entries.push_back({id, p});
      ++entries_;
      return;
    }
  }
  slot.push_back(Bucket{key, {{id, p}}});
  ++entries_;
}

const std::vector<PointGrid::Entry>* PointGrid::CellEntries(int64_t cx,
                                                            int64_t cy) const {
  const int64_t key = CellKey(cx, cy);
  const auto& slot = table_[HashKey(key) & table_mask_];
  for (const auto& bucket : slot) {
    if (bucket.key == key) return &bucket.entries;
  }
  return nullptr;
}

std::vector<uint32_t> PointGrid::QueryRadius(const Point& center,
                                             double radius) const {
  std::vector<uint32_t> out;
  for (const auto& [dist, id] : QueryRadiusWithDistance(center, radius)) {
    out.push_back(id);
  }
  return out;
}

std::vector<std::pair<double, uint32_t>> PointGrid::QueryRadiusWithDistance(
    const Point& center, double radius) const {
  std::vector<std::pair<double, uint32_t>> out;
  if (radius < 0.0 || entries_ == 0) return out;
  int64_t cx0, cy0, cx1, cy1;
  CellOf({center.x - radius, center.y - radius}, &cx0, &cy0);
  CellOf({center.x + radius, center.y + radius}, &cx1, &cy1);
  // Clamp to occupied cells so huge radii stay cheap.
  cx0 = std::max(cx0, min_cx_);
  cy0 = std::max(cy0, min_cy_);
  cx1 = std::min(cx1, max_cx_);
  cy1 = std::min(cy1, max_cy_);
  const double r_sq = radius * radius;
  for (int64_t cy = cy0; cy <= cy1; ++cy) {
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      const auto* entries = CellEntries(cx, cy);
      if (entries == nullptr) continue;
      for (const auto& e : *entries) {
        const double d_sq = DistanceSq(center, e.p);
        if (d_sq <= r_sq) out.emplace_back(std::sqrt(d_sq), e.id);
      }
    }
  }
  return out;
}

uint32_t PointGrid::Nearest(const Point& center) const {
  if (entries_ == 0) return kNotFound;
  const std::vector<uint32_t> nearest = KNearest(center, 1);
  return nearest.empty() ? kNotFound : nearest[0];
}

std::vector<uint32_t> PointGrid::KNearest(const Point& center, size_t count) const {
  if (entries_ == 0 || count == 0) return {};
  // Radius-doubling search. Once at least `count` hits are inside radius r,
  // the true k-nearest are inside radius r as well, so the result is exact.
  double radius = cell_size_;
  std::vector<std::pair<double, uint32_t>> scored;
  while (true) {
    scored = QueryRadiusWithDistance(center, radius);
    if (scored.size() >= count || scored.size() == entries_) break;
    radius *= 2.0;
  }
  std::sort(scored.begin(), scored.end());
  std::vector<uint32_t> out;
  out.reserve(std::min(count, scored.size()));
  for (size_t i = 0; i < scored.size() && i < count; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

// ---------------------------------------------------------------------------
// SegmentGrid
// ---------------------------------------------------------------------------

SegmentGrid::SegmentGrid(double cell_size) : cell_size_(cell_size) {
  NC_CHECK_GT(cell_size, 0.0);
  table_.resize(kInitialTableSize);
  table_mask_ = table_.size() - 1;
}

int64_t SegmentGrid::CellKey(int64_t cx, int64_t cy) const {
  return (cx << 32) ^ (cy & 0xffffffffLL);
}

void SegmentGrid::Build(const std::vector<Point>& a, const std::vector<Point>& b) {
  NC_CHECK_EQ(a.size(), b.size());
  table_.assign(NextPow2(std::max<size_t>(kInitialTableSize, a.size() / 2)), {});
  table_mask_ = table_.size() - 1;
  count_ = a.size();
  seen_stamp_.assign(count_, 0);
  stamp_ = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const int64_t cx0 =
        static_cast<int64_t>(std::floor(std::min(a[i].x, b[i].x) / cell_size_));
    const int64_t cy0 =
        static_cast<int64_t>(std::floor(std::min(a[i].y, b[i].y) / cell_size_));
    const int64_t cx1 =
        static_cast<int64_t>(std::floor(std::max(a[i].x, b[i].x) / cell_size_));
    const int64_t cy1 =
        static_cast<int64_t>(std::floor(std::max(a[i].y, b[i].y) / cell_size_));
    for (int64_t cy = cy0; cy <= cy1; ++cy) {
      for (int64_t cx = cx0; cx <= cx1; ++cx) {
        const int64_t key = CellKey(cx, cy);
        auto& slot = table_[HashKey(key) & table_mask_];
        bool found = false;
        for (auto& bucket : slot) {
          if (bucket.key == key) {
            bucket.ids.push_back(static_cast<uint32_t>(i));
            found = true;
            break;
          }
        }
        if (!found) slot.push_back(Bucket{key, {static_cast<uint32_t>(i)}});
      }
    }
  }
}

std::vector<uint32_t> SegmentGrid::QueryRadius(const Point& center,
                                               double radius) const {
  std::vector<uint32_t> out;
  if (radius < 0.0 || count_ == 0) return out;
  ++stamp_;
  if (stamp_ == 0) {
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    stamp_ = 1;
  }
  const int64_t cx0 =
      static_cast<int64_t>(std::floor((center.x - radius) / cell_size_));
  const int64_t cy0 =
      static_cast<int64_t>(std::floor((center.y - radius) / cell_size_));
  const int64_t cx1 =
      static_cast<int64_t>(std::floor((center.x + radius) / cell_size_));
  const int64_t cy1 =
      static_cast<int64_t>(std::floor((center.y + radius) / cell_size_));
  for (int64_t cy = cy0; cy <= cy1; ++cy) {
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      const int64_t key = CellKey(cx, cy);
      const auto& slot = table_[HashKey(key) & table_mask_];
      for (const auto& bucket : slot) {
        if (bucket.key != key) continue;
        for (uint32_t id : bucket.ids) {
          if (seen_stamp_[id] != stamp_) {
            seen_stamp_[id] = stamp_;
            out.push_back(id);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace netclus::geo
