// Axis-aligned bounding box in the local planar frame.
#ifndef NETCLUS_GEO_BBOX_H_
#define NETCLUS_GEO_BBOX_H_

#include <algorithm>
#include <limits>

#include "geo/point.h"

namespace netclus::geo {

struct BBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  void Extend(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Empty() const { return min_x > max_x; }

  double Width() const { return Empty() ? 0.0 : max_x - min_x; }
  double Height() const { return Empty() ? 0.0 : max_y - min_y; }
  double AreaSqKm() const { return Width() * Height() / 1e6; }

  Point Center() const { return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0}; }
};

}  // namespace netclus::geo

#endif  // NETCLUS_GEO_BBOX_H_
