// Segment geometry used by the map-matcher and the GPS trace synthesizer.
#ifndef NETCLUS_GEO_POLYLINE_H_
#define NETCLUS_GEO_POLYLINE_H_

#include <vector>

#include "geo/point.h"

namespace netclus::geo {

/// Result of projecting a point onto a segment.
struct SegmentProjection {
  Point closest;    ///< nearest point on the segment
  double t = 0.0;   ///< parametric position in [0,1] along the segment
  double distance = 0.0;  ///< distance from the query point to `closest`
};

/// Projects `p` onto segment [a, b].
SegmentProjection ProjectOntoSegment(const Point& p, const Point& a, const Point& b);

/// Total length of a polyline (meters).
double PolylineLength(const std::vector<Point>& pts);

/// Point at arc-length `s` along the polyline (clamped to the ends).
Point InterpolateAlong(const std::vector<Point>& pts, double s);

}  // namespace netclus::geo

#endif  // NETCLUS_GEO_POLYLINE_H_
