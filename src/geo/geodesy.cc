#include "geo/geodesy.h"

#include <cmath>

namespace netclus::geo {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineMeters(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(std::min(1.0, h)));
}

Projector::Projector(const LatLon& reference) : reference_(reference) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kDegToRad;
  meters_per_deg_lon_ =
      kEarthRadiusMeters * kDegToRad * std::cos(reference.lat * kDegToRad);
}

Point Projector::Project(const LatLon& p) const {
  return {(p.lon - reference_.lon) * meters_per_deg_lon_,
          (p.lat - reference_.lat) * meters_per_deg_lat_};
}

LatLon Projector::Unproject(const Point& p) const {
  return {reference_.lat + p.y / meters_per_deg_lat_,
          reference_.lon + p.x / meters_per_deg_lon_};
}

}  // namespace netclus::geo
