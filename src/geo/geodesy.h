// Geodetic helpers: great-circle distance and a local planar projection.
#ifndef NETCLUS_GEO_GEODESY_H_
#define NETCLUS_GEO_GEODESY_H_

#include "geo/point.h"

namespace netclus::geo {

/// Mean Earth radius in meters.
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// Great-circle (haversine) distance between two WGS84 coordinates, meters.
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Equirectangular projection around a reference point. Accurate to well
/// under 0.1% at city scale (tens of km), which is all the generators and
/// the map-matcher need.
class Projector {
 public:
  explicit Projector(const LatLon& reference);

  /// Projects a WGS84 coordinate to local meters.
  Point Project(const LatLon& p) const;

  /// Inverse projection from local meters back to WGS84.
  LatLon Unproject(const Point& p) const;

  const LatLon& reference() const { return reference_; }

 private:
  LatLon reference_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace netclus::geo

#endif  // NETCLUS_GEO_GEODESY_H_
