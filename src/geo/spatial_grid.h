// Uniform-grid spatial index over points and segments.
//
// Used by:
//  * the map-matcher, to find candidate road segments near a GPS sample;
//  * the dataset generators, to snap hotspots and candidate sites to nodes;
//  * NetClus dynamic updates, to locate the nearest cluster center.
//
// A uniform grid beats an R-tree here: insertions are bulk, the data is
// city-scale and near-uniform after hotspot mixing, and queries are tiny
// radius lookups.
#ifndef NETCLUS_GEO_SPATIAL_GRID_H_
#define NETCLUS_GEO_SPATIAL_GRID_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"

namespace netclus::geo {

/// Grid index over points identified by dense uint32 ids.
class PointGrid {
 public:
  /// `cell_size` is the grid pitch in meters; choose ~ the typical query
  /// radius for best performance.
  explicit PointGrid(double cell_size = 250.0);

  /// Bulk-builds the index. Ids are positions in `points`.
  void Build(const std::vector<Point>& points);

  /// Adds one point with the given id (id must equal points-so-far count or
  /// be any unique value; the grid stores (id, point) pairs).
  void Insert(uint32_t id, const Point& p);

  /// Ids of all points within `radius` of `center` (unordered).
  std::vector<uint32_t> QueryRadius(const Point& center, double radius) const;

  /// (distance, id) pairs for all points within `radius`, unordered.
  std::vector<std::pair<double, uint32_t>> QueryRadiusWithDistance(
      const Point& center, double radius) const;

  /// Id of the nearest point to `center`, or kNotFound if the grid is empty.
  /// Expands the search ring until a hit is found.
  uint32_t Nearest(const Point& center) const;

  /// Up to `count` nearest points, ordered by increasing distance.
  std::vector<uint32_t> KNearest(const Point& center, size_t count) const;

  size_t size() const { return entries_; }

  static constexpr uint32_t kNotFound = std::numeric_limits<uint32_t>::max();

 private:
  struct Entry {
    uint32_t id;
    Point p;
  };

  int64_t CellKey(int64_t cx, int64_t cy) const;
  void CellOf(const Point& p, int64_t* cx, int64_t* cy) const;
  const std::vector<Entry>* CellEntries(int64_t cx, int64_t cy) const;

  double cell_size_;
  size_t entries_ = 0;
  // Occupied-cell bounding box; queries clamp their scan range to it so
  // that huge radii cost O(occupied area), not O(radius^2).
  int64_t min_cx_ = 0, max_cx_ = -1, min_cy_ = 0, max_cy_ = -1;
  // Open-addressed map from cell key to bucket index would be faster, but a
  // std::vector-backed hash map keeps the code simple; buckets are small.
  struct Bucket {
    int64_t key;
    std::vector<Entry> entries;
  };
  std::vector<std::vector<Bucket>> table_;
  size_t table_mask_ = 0;
};

/// Grid index over line segments identified by dense uint32 ids. Each
/// segment is registered in every cell its bounding box overlaps.
class SegmentGrid {
 public:
  explicit SegmentGrid(double cell_size = 250.0);

  /// Bulk-builds from parallel arrays of segment endpoints.
  void Build(const std::vector<Point>& a, const std::vector<Point>& b);

  /// Ids of segments whose bounding cells intersect the disc
  /// (center, radius). May contain false positives; callers re-check exact
  /// distance. Deduplicated.
  std::vector<uint32_t> QueryRadius(const Point& center, double radius) const;

  size_t size() const { return count_; }

 private:
  int64_t CellKey(int64_t cx, int64_t cy) const;

  double cell_size_;
  size_t count_ = 0;
  struct Bucket {
    int64_t key;
    std::vector<uint32_t> ids;
  };
  std::vector<std::vector<Bucket>> table_;
  size_t table_mask_ = 0;
  mutable std::vector<uint32_t> seen_stamp_;
  mutable uint32_t stamp_ = 0;
};

}  // namespace netclus::geo

#endif  // NETCLUS_GEO_SPATIAL_GRID_H_
