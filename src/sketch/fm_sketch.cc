#include "sketch/fm_sketch.h"

#include <bit>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace netclus::sketch {

namespace {
// Flajolet-Martin magic constant: E[2^R] = phi * n for large n.
constexpr double kPhi = 0.77351;
}  // namespace

FmSketch::FmSketch(uint32_t num_copies, uint64_t seed) : seed_(seed) {
  NC_CHECK_GT(num_copies, 0u);
  words_.assign(num_copies, 0u);
}

void FmSketch::Add(uint64_t element) {
  for (size_t i = 0; i < words_.size(); ++i) {
    const uint64_t h = util::SplitMix64(
        element ^ util::SplitMix64(seed_ + 0x9e3779b97f4a7c15ULL * (i + 1)));
    // Trailing zero count gives a geometric(1/2) bit position.
    const int pos = h == 0 ? 31 : std::min(31, std::countr_zero(h));
    words_[i] |= (1u << pos);
  }
}

void FmSketch::Merge(const FmSketch& other) {
  NC_CHECK_EQ(words_.size(), other.words_.size());
  NC_CHECK_EQ(seed_, other.seed_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

FmSketch FmSketch::Union(const FmSketch& other) const {
  FmSketch out = *this;
  out.Merge(other);
  return out;
}

double FmSketch::EstimateFromWords(const uint32_t* words, size_t count) {
  // R = index of the lowest zero bit = trailing-one count.
  double sum_r = 0.0;
  for (size_t i = 0; i < count; ++i) {
    sum_r += static_cast<double>(std::countr_one(words[i]));
  }
  const double mean_r = sum_r / static_cast<double>(count);
  const double estimate = std::exp2(mean_r) / kPhi;
  // An empty sketch has R = 0 => estimate 1/phi ~ 1.29; clamp to 0 when no
  // bit is set anywhere so that empty sets estimate as empty.
  bool any = false;
  for (size_t i = 0; i < count; ++i) {
    if (words[i] != 0) {
      any = true;
      break;
    }
  }
  return any ? estimate : 0.0;
}

double FmSketch::Estimate() const {
  return EstimateFromWords(words_.data(), words_.size());
}

double FmSketch::UnionEstimate(const FmSketch& other) const {
  NC_CHECK_EQ(words_.size(), other.words_.size());
  NC_CHECK_EQ(seed_, other.seed_);
  double sum_r = 0.0;
  bool any = false;
  for (size_t i = 0; i < words_.size(); ++i) {
    const uint32_t merged = words_[i] | other.words_[i];
    any = any || merged != 0;
    sum_r += static_cast<double>(std::countr_one(merged));
  }
  if (!any) return 0.0;
  const double mean_r = sum_r / static_cast<double>(words_.size());
  return std::exp2(mean_r) / kPhi;
}

void FmSketch::Clear() {
  for (uint32_t& w : words_) w = 0u;
}

bool FmSketch::IsEmpty() const {
  for (uint32_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

double FmSketch::StandardErrorFraction(uint32_t num_copies) {
  return 0.78 / std::sqrt(static_cast<double>(num_copies));
}

}  // namespace netclus::sketch
