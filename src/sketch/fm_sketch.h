// Flajolet-Martin probabilistic distinct counting (Sec. 3.5).
//
// An FM sketch is `f` independent 32-bit words; element x sets, in copy i,
// the bit whose index is the number of trailing zeros of an independent
// hash of x (bit j is set with probability 2^-(j+1)). The estimate uses the
// position R of the lowest unset bit: E[R] ~ log2(phi * n) with
// phi = 0.77351, so n_hat = 2^(mean R) / phi. Unions are exact under
// bitwise OR, which is what makes the sketch useful for incremental
// coverage counting: the marginal gain of a site over a selected set is
// estimate(base | site) - estimate(base).
//
// 32-bit words handle ~4 billion distinct elements, as in the paper, and
// OR over them is a single instruction.
#ifndef NETCLUS_SKETCH_FM_SKETCH_H_
#define NETCLUS_SKETCH_FM_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace netclus::sketch {

class FmSketch {
 public:
  /// `num_copies` is the paper's f (error decreases as f grows); all
  /// sketches that will be merged/compared must share the same `seed`.
  explicit FmSketch(uint32_t num_copies = 30,
                    uint64_t seed = 0x5eedf00d5eedf00dULL);

  /// Inserts an element (idempotent).
  void Add(uint64_t element);

  /// Bitwise-OR union; other must have the same copies and seed.
  void Merge(const FmSketch& other);

  /// Returns the union of this sketch and `other` without mutating either.
  FmSketch Union(const FmSketch& other) const;

  /// Estimated number of distinct inserted elements.
  double Estimate() const;

  /// Estimate of |this ∪ other| computed on the fly (no allocation).
  double UnionEstimate(const FmSketch& other) const;

  /// Resets to empty.
  void Clear();

  bool IsEmpty() const;

  uint32_t num_copies() const { return static_cast<uint32_t>(words_.size()); }
  uint64_t seed() const { return seed_; }

  /// Standard error of the estimate as a fraction, ~0.78 / sqrt(f).
  static double StandardErrorFraction(uint32_t num_copies);

  /// Analytic memory footprint in bytes.
  uint64_t MemoryBytes() const { return words_.capacity() * sizeof(uint32_t); }

 private:
  static double EstimateFromWords(const uint32_t* words, size_t count);

  uint64_t seed_;
  std::vector<uint32_t> words_;
};

}  // namespace netclus::sketch

#endif  // NETCLUS_SKETCH_FM_SKETCH_H_
