// Execution statistics for the planner/executor layer.
//
// A StatsRegistry accumulates, thread-safely, what the online path
// actually costs: per-instance cover-build counts and EWMA build
// latencies, EWMA latencies per executor stage (Plan / CoverBuild /
// Solve / Assemble), and cover-sharing counters. The serving layer
// exports a Snapshot through ServerStats so operators can see where
// query time goes and how often covers are reused; the planner reads
// the same numbers when describing its decisions.
//
// ExecContext bundles the registry with the little bit of per-engine
// mutable state the execution layer needs (the warn-once flag for the
// FM + existing-services fallback). One ExecContext lives per Engine,
// per QueryEngine, and per NetClusServer — "once per engine" semantics
// fall out of that ownership.
#ifndef NETCLUS_EXEC_STATS_H_
#define NETCLUS_EXEC_STATS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace netclus::exec {

class StatsRegistry {
 public:
  /// One executor stage's latency account. The EWMA (α = 0.2) tracks the
  /// recent regime; the totals make averages and rates derivable.
  struct StageStats {
    uint64_t count = 0;
    double ewma_seconds = 0.0;
    double total_seconds = 0.0;
  };

  /// Per-resolution-instance cover-build account.
  struct InstanceStats {
    uint64_t cover_builds = 0;
    double ewma_build_seconds = 0.0;
    uint64_t last_cover_bytes = 0;
  };

  struct Snapshot {
    StageStats plan;
    StageStats queue_wait;  ///< admission-to-first-stage wait (async serving)
    StageStats cover_build;
    StageStats solve;
    StageStats assemble;
    /// Indexed by instance id; sized to the largest instance seen.
    std::vector<InstanceStats> instances;
    uint64_t covers_built = 0;
    uint64_t covers_shared = 0;  ///< solves served by a reused cover
    uint64_t fm_fallbacks = 0;
    // Load-shedding accounts for the async serving layer.
    uint64_t shed_overload = 0;  ///< rejected at admission (queues full)
    uint64_t shed_deadline = 0;  ///< dropped after the soft deadline passed
    uint64_t stale_served = 0;   ///< answered from an older snapshot version
  };

  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  void RecordPlan(double seconds);
  void RecordQueueWait(double seconds);
  void RecordCoverBuild(size_t instance, double seconds, uint64_t bytes);
  void RecordCoverShared();
  void RecordSolve(double seconds);
  void RecordAssemble(double seconds);
  void RecordFmFallback();
  void RecordShedOverload();
  void RecordShedDeadline();
  void RecordStaleServed();

  Snapshot snapshot() const;

  /// Publishes this registry's accounts into `metrics`: real histogram
  /// instruments for the per-stage latencies (Record* observes into them
  /// from then on) and polled counter providers over the sharing/shedding
  /// atomics. Call before concurrent use (ExecContext's constructor does).
  void BindMetrics(obs::MetricsRegistry* metrics);

 private:
  /// One stage's account behind its own lock, so concurrent queries in
  /// different stages never contend (and the sharing counters below are
  /// plain atomics) — the hot serving path takes no registry-wide lock.
  struct StageSlot {
    mutable nc::Mutex mu;
    StageStats stats GUARDED_BY(mu);
    /// Optional registry instrument mirroring this stage; set once by
    /// BindMetrics (atomic so a late bind can't race recorders).
    std::atomic<obs::Histogram*> hist{nullptr};

    void Bump(double seconds) EXCLUDES(mu);
  };

  StageSlot plan_;
  StageSlot queue_wait_;
  StageSlot cover_build_;
  StageSlot solve_;
  StageSlot assemble_;
  mutable nc::Mutex instances_mu_;
  std::vector<InstanceStats> instances_ GUARDED_BY(instances_mu_);
  std::atomic<uint64_t> covers_built_{0};
  std::atomic<uint64_t> covers_shared_{0};
  std::atomic<uint64_t> fm_fallbacks_{0};
  std::atomic<uint64_t> shed_overload_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> stale_served_{0};
};

/// Per-engine execution context: the stats registry, the engine's metrics
/// registry (exported by Engine::DumpMetrics / NetClusServer::DumpMetrics),
/// and warn-once state. Shared (via shared_ptr) between the planner and
/// executor instances an engine creates, and across copies of a
/// QueryEngine.
struct ExecContext {
  // Declared before `stats` so it outlives the bound instruments.
  obs::MetricsRegistry metrics;
  StatsRegistry stats;
  std::atomic<bool> fm_fallback_warned{false};

  ExecContext() { stats.BindMetrics(&metrics); }
};

}  // namespace netclus::exec

#endif  // NETCLUS_EXEC_STATS_H_
