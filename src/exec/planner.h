// The Planner: one place that turns any online request into a canonical
// QueryPlan.
//
// Centralizes the three decisions the legacy path scattered across
// query.cc, Engine::TopKBatch, and the serving layer:
//  * instance selection — p = ⌊log_{1+γ}(τ/τ_min)⌋ via MultiIndex::
//    InstanceFor, recorded in the plan and its fingerprint;
//  * solver selection — including the FM + existing-services fallback
//    rule (FM-greedy has no ES support, so such plans run Inc-Greedy; the
//    executor logs the fallback once per engine, not per query);
//  * per-plan thread allocation — the batch-aware two-regime rule: with
//    at least one query per worker, queries are the unit of concurrency
//    (each plan gets 1 thread and the batch fans out); with a batch
//    smaller than the thread budget, each plan keeps the full budget for
//    its inner loops. Either way results are bit-identical (every stage
//    is deterministic at any thread count), so allocation is purely a
//    latency decision. The StatsRegistry's EWMA stage latencies are
//    exported alongside so operators can see what the allocation costs.
#ifndef NETCLUS_EXEC_PLANNER_H_
#define NETCLUS_EXEC_PLANNER_H_

#include <cstddef>

#include "exec/plan.h"
#include "exec/stats.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"

namespace netclus::exec {

/// The single QueryConfig → PlanRequest mapping point, layered on
/// Engine::QuerySpec::ToConfig the same way: a result-affecting field
/// added to QueryConfig has exactly one place to be threaded through.
/// Variant payloads (costs/budget/capacities) are set by the caller.
PlanRequest RequestFromConfig(QueryVariant variant,
                              const tops::PreferenceFunction& psi,
                              const index::QueryConfig& config);

class Planner {
 public:
  /// `ctx` (not owned, must outlive the planner) carries the stats
  /// registry the plan stage reports into.
  explicit Planner(ExecContext* ctx) : ctx_(ctx) {}

  /// Plans one request against `index`. `batch_size` is the number of
  /// plans the caller will execute together (1 for a lone query); it
  /// drives the thread-allocation regime exactly like the legacy
  /// Engine::TopKBatch rule, so a refactored caller keeps its thread
  /// layout — and its results — unchanged.
  QueryPlan Plan(const PlanRequest& request, const index::MultiIndex& index,
                 size_t batch_size) const;

 private:
  ExecContext* ctx_;
};

}  // namespace netclus::exec

#endif  // NETCLUS_EXEC_PLANNER_H_
