// The query-plan IR of the unified planning & staged execution layer.
//
// Every online query variant — plain TOPS, TOPS-COST, TOPS-CAPACITY, with
// or without FM sketches or existing services — canonicalizes into one
// QueryPlan: the resolved resolution instance p = ⌊log_{1+γ}(τ/τ_min)⌋,
// the solver the executor will run, the per-plan thread budget, and a
// stable PlanKey fingerprint (sorted/deduped existing services, normalized
// ψ, the instance) that the serving layer's result cache keys on and that
// the executor's cover-sharing stage groups by.
//
// Canonicalization never changes what is executed: the plan keeps the
// caller's existing-services order for execution (Inc-Greedy folds ES in
// input order and floating-point addition is non-associative), while the
// PlanKey carries the sorted/deduped form so equivalent requests share one
// cache identity. ψ normalization (see NormalizePsi) only rewrites a
// preference function into an equivalent one whose scores are bit-exact
// equal, so a cache hit is always bit-identical to recomputation.
#ifndef NETCLUS_EXEC_PLAN_H_
#define NETCLUS_EXEC_PLAN_H_

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tops/preference.h"
#include "tops/site_set.h"

namespace netclus::exec {

enum class QueryVariant : uint8_t {
  kTops = 0,
  kTopsCost = 1,
  kTopsCapacity = 2,
};

enum class SolverKind : uint8_t {
  kIncGreedy = 0,
  kFmGreedy = 1,
  kCostGreedy = 2,
  kCapacityGreedy = 3,
};

const char* VariantName(QueryVariant variant);
const char* SolverName(SolverKind solver);

/// What a caller asks for, before planning. The superset of the legacy
/// QueryConfig / Engine::QuerySpec surfaces plus the variant payloads.
struct PlanRequest {
  QueryVariant variant = QueryVariant::kTops;
  uint32_t k = 5;
  double tau_m = 800.0;
  tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  bool use_fm = false;
  uint32_t fm_copies = 30;
  std::vector<tops::SiteId> existing_services;
  /// TOPS-COST payload (site-indexed costs + budget). Borrowed, not
  /// copied: the caller's vector must outlive the plan's execution (the
  /// legacy path took the same const reference; plans with payloads are
  /// transient and never cached — see QueryPlan::cacheable).
  std::span<const double> site_costs;
  double budget = 0.0;
  /// TOPS-CAPACITY payload (site-indexed capacities). Borrowed like
  /// site_costs.
  std::span<const double> site_capacities;
  /// Worker threads (0 = NETCLUS_THREADS default), before the planner's
  /// batch-aware allocation.
  uint32_t threads = 0;
};

/// Identity of the cover-build stage: two plans with equal CoverKeys build
/// the exact same approximate trajectory cover T̂C (it depends only on the
/// instance, τ, and the corpus), so the executor builds it once and shares
/// it. τ is carried by bit pattern (-0.0 normalized to 0.0) so hashing and
/// equality agree with the result-cache convention.
struct CoverKey {
  uint64_t instance = 0;
  uint64_t tau_bits = 0;

  bool operator==(const CoverKey&) const = default;

  /// τ in meters, recovered from the bit pattern. The serving layer's
  /// delta-aware carryover reads (instance, τ) off cached keys to decide
  /// whether a publish touched the partition a cover belongs to.
  double tau_m() const { return std::bit_cast<double>(tau_bits); }
};

struct CoverKeyHash {
  size_t operator()(const CoverKey& key) const;
};

/// Stable canonical fingerprint of a plan: what the serving result cache
/// keys on (together with the snapshot version). Two requests that answer
/// identically on the same snapshot produce equal PlanKeys:
///  * existing services are sorted and deduplicated;
///  * ψ is normalized (NormalizePsi) and collapsed to (kind, param bits);
///  * τ and the ψ parameter are carried by bit pattern with -0.0
///    normalized to 0.0, so equality and hashing always agree;
///  * the resolved instance p rides along (it is derived from τ, but makes
///    the key self-describing for stats and debugging);
///  * fm_copies is zeroed when the request does not use FM sketches, so an
///    irrelevant knob cannot split cache entries.
struct PlanKey {
  uint8_t variant = 0;
  uint32_t k = 0;
  uint64_t tau_bits = 0;
  bool use_fm = false;
  uint32_t fm_copies = 0;
  uint8_t psi_kind = 0;
  uint64_t psi_param_bits = 0;
  uint64_t instance = 0;
  std::vector<tops::SiteId> existing;  ///< sorted, deduped

  bool operator==(const PlanKey&) const = default;

  /// 64-bit stable hash over every field (SplitMix64 chain).
  uint64_t Fingerprint() const;

  /// τ in meters, recovered from the bit pattern (see CoverKey::tau_m).
  double tau_m() const { return std::bit_cast<double>(tau_bits); }

  /// The cover-build identity this plan resolves to — the (instance, τ)
  /// partition delta-aware carryover reasons about.
  CoverKey cover_key() const { return CoverKey{instance, tau_bits}; }
};

/// The canonical executable plan. Produced by the Planner; consumed by the
/// Executor's CoverBuild → Solve → Assemble stages.
struct QueryPlan {
  QueryVariant variant = QueryVariant::kTops;
  /// The solver the planner *intends* to run, from the raw request. The
  /// executor never dispatches on this field: FM eligibility is decided
  /// at solve time on the *mapped* clustered-space existing services
  /// (which needs the cover's representative list and can differ from
  /// the raw ES in either direction — ES entries may map to nothing, or
  /// a kIncGreedy fallback plan may end up FM-eligible after all).
  /// Intent metadata for stats/logging only.
  SolverKind solver = SolverKind::kIncGreedy;
  uint32_t k = 5;
  double tau_m = 800.0;
  tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  bool use_fm = false;
  uint32_t fm_copies = 30;
  /// Execution-order existing services (the caller's order — see file
  /// comment). The sorted canonical form lives in `key.existing`.
  std::vector<tops::SiteId> existing_services;
  /// Borrowed payloads (see PlanRequest): valid only while the caller's
  /// vectors live, which covers every execution path because cost /
  /// capacity plans are executed synchronously and never cached.
  std::span<const double> site_costs;
  double budget = 0.0;
  std::span<const double> site_capacities;
  /// Resolved resolution instance p.
  size_t instance = 0;
  /// Per-plan worker threads after the planner's batch-aware allocation
  /// (0 = NETCLUS_THREADS default; 1 inside large batches where queries
  /// themselves are the unit of concurrency).
  uint32_t threads = 0;
  /// True when FM sketches were requested but existing services force the
  /// Inc-Greedy fallback (the executor logs this once per engine).
  bool fm_fallback = false;
  /// Plans whose full identity is captured by `key` (plain TOPS). Cost /
  /// capacity plans carry payload vectors the key does not cover, so the
  /// result cache must skip them.
  bool cacheable = false;
  /// Canonical fingerprint (see PlanKey).
  PlanKey key;

  CoverKey cover_key() const { return CoverKey{instance, key.tau_bits}; }
};

/// Rewrites ψ into a canonical equivalent whose Score() is bit-exact equal
/// for every (d_r, τ):
///  * ConvexProbability(1) → Linear (std::pow(x, 1.0) returns x exactly);
///  * a -0.0 parameter → 0.0 (Score never distinguishes them).
/// Anything else is returned unchanged. test_exec pins the bit-exactness.
tops::PreferenceFunction NormalizePsi(const tops::PreferenceFunction& psi);

/// Builds the canonical PlanKey for a request resolved to `instance`.
PlanKey CanonicalPlanKey(const PlanRequest& request, size_t instance);

}  // namespace netclus::exec

#endif  // NETCLUS_EXEC_PLAN_H_
