#include "exec/planner.h"

#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace netclus::exec {

PlanRequest RequestFromConfig(QueryVariant variant,
                              const tops::PreferenceFunction& psi,
                              const index::QueryConfig& config) {
  PlanRequest request;
  request.variant = variant;
  request.k = config.k;
  request.tau_m = config.tau_m;
  request.psi = psi;
  request.use_fm = config.use_fm_sketch;
  request.fm_copies = config.fm_copies;
  request.existing_services = config.existing_services;
  request.threads = config.threads;
  return request;
}

QueryPlan Planner::Plan(const PlanRequest& request,
                        const index::MultiIndex& index,
                        size_t batch_size) const {
  util::WallTimer timer;
  QueryPlan plan;
  plan.variant = request.variant;
  plan.k = request.k;
  plan.tau_m = request.tau_m;
  plan.psi = NormalizePsi(request.psi);
  plan.use_fm = request.use_fm;
  plan.fm_copies = request.fm_copies;
  plan.existing_services = request.existing_services;
  plan.site_costs = request.site_costs;
  plan.budget = request.budget;
  plan.site_capacities = request.site_capacities;
  plan.instance = index.InstanceFor(request.tau_m);

  // Solver selection. The FM path requires a binary ψ and no existing
  // services; ES forces the Inc-Greedy fallback so ES is respected (the
  // executor re-checks against the *mapped* clustered-space ES, which can
  // turn out empty, and logs the fallback once per engine).
  switch (request.variant) {
    case QueryVariant::kTops:
      if (request.use_fm && plan.psi.is_binary()) {
        plan.fm_fallback = !request.existing_services.empty();
        plan.solver = plan.fm_fallback ? SolverKind::kIncGreedy
                                       : SolverKind::kFmGreedy;
      } else {
        plan.solver = SolverKind::kIncGreedy;
      }
      plan.cacheable = true;
      break;
    case QueryVariant::kTopsCost:
      plan.solver = SolverKind::kCostGreedy;
      break;
    case QueryVariant::kTopsCapacity:
      plan.solver = SolverKind::kCapacityGreedy;
      break;
  }

  // Batch-aware thread allocation (the legacy TopKBatch rule): with at
  // least one query per worker the queries themselves are the
  // parallelism; otherwise each plan keeps the caller's full budget.
  const unsigned resolved = util::ResolveThreads(request.threads);
  plan.threads = batch_size >= resolved ? 1 : request.threads;

  plan.key = CanonicalPlanKey(request, plan.instance);
  if (ctx_ != nullptr) ctx_->stats.RecordPlan(timer.Seconds());
  // Level pre-check keeps the hot path free of the message construction
  // (NC_SLOG builds its line unconditionally).
  if (util::GetLogLevel() <= util::LogLevel::kTrace) {
    NC_SLOG_TRACE("plan")
        .Kv("fingerprint", plan.key.Fingerprint())
        .Kv("k", plan.k)
        .Kv("tau_m", plan.tau_m)
        .Kv("instance", plan.instance)
        .Kv("solver", static_cast<int>(plan.solver))
        .Kv("fm_fallback", plan.fm_fallback)
        .Kv("cacheable", plan.cacheable)
        .Kv("threads", plan.threads);
  }
  return plan;
}

}  // namespace netclus::exec
