#include "exec/plan.h"

#include <algorithm>
#include <bit>

#include "util/rng.h"

namespace netclus::exec {

namespace {

uint64_t Combine(uint64_t seed, uint64_t value) {
  return util::SplitMix64(
      seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

// -0.0 and 0.0 compare equal everywhere Score()/InstanceFor() look at
// them, so the canonical bit pattern folds them together.
uint64_t CanonicalDoubleBits(double d) {
  if (d == 0.0) d = 0.0;
  return std::bit_cast<uint64_t>(d);
}

}  // namespace

const char* VariantName(QueryVariant variant) {
  switch (variant) {
    case QueryVariant::kTops:
      return "tops";
    case QueryVariant::kTopsCost:
      return "tops-cost";
    case QueryVariant::kTopsCapacity:
      return "tops-capacity";
  }
  return "unknown";
}

const char* SolverName(SolverKind solver) {
  switch (solver) {
    case SolverKind::kIncGreedy:
      return "inc-greedy";
    case SolverKind::kFmGreedy:
      return "fm-greedy";
    case SolverKind::kCostGreedy:
      return "cost-greedy";
    case SolverKind::kCapacityGreedy:
      return "capacity-greedy";
  }
  return "unknown";
}

size_t CoverKeyHash::operator()(const CoverKey& key) const {
  return static_cast<size_t>(
      Combine(util::SplitMix64(key.instance), key.tau_bits));
}

uint64_t PlanKey::Fingerprint() const {
  uint64_t h = util::SplitMix64(variant);
  h = Combine(h, k);
  h = Combine(h, tau_bits);
  h = Combine(h, use_fm ? 1 : 0);
  h = Combine(h, fm_copies);
  h = Combine(h, psi_kind);
  h = Combine(h, psi_param_bits);
  h = Combine(h, instance);
  h = Combine(h, existing.size());
  for (tops::SiteId s : existing) h = Combine(h, s);
  return h;
}

tops::PreferenceFunction NormalizePsi(const tops::PreferenceFunction& psi) {
  if (psi.kind() == tops::PreferenceFunction::Kind::kConvexProbability &&
      psi.param() == 1.0) {
    // (1 - d/τ)^1 computes std::pow(x, 1.0), which IEEE 754 (and glibc's
    // correctly-rounded pow) returns as exactly x — the Linear score.
    // test_exec.PsiNormalizationIsBitExact pins this platform assumption.
    return tops::PreferenceFunction::Linear();
  }
  return psi;
}

PlanKey CanonicalPlanKey(const PlanRequest& request, size_t instance) {
  const tops::PreferenceFunction psi = NormalizePsi(request.psi);
  PlanKey key;
  key.variant = static_cast<uint8_t>(request.variant);
  key.k = request.k;
  key.tau_bits = CanonicalDoubleBits(request.tau_m);
  key.use_fm = request.use_fm;
  key.fm_copies = request.use_fm ? request.fm_copies : 0;
  key.psi_kind = static_cast<uint8_t>(psi.kind());
  key.psi_param_bits = CanonicalDoubleBits(psi.param());
  key.instance = instance;
  key.existing = request.existing_services;
  std::sort(key.existing.begin(), key.existing.end());
  key.existing.erase(std::unique(key.existing.begin(), key.existing.end()),
                     key.existing.end());
  return key;
}

}  // namespace netclus::exec
