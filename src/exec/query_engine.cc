// The legacy QueryEngine surface, reimplemented as thin shims over the
// planner/executor layer. Lives in exec (not netclus) so the netclus
// library does not depend back on exec — the same arrangement as
// Engine::Serve() living in src/serve/server.cc.
#include "netclus/query.h"

#include <utility>

#include "exec/cover_build.h"
#include "exec/executor.h"
#include "exec/planner.h"
#include "exec/stats.h"

namespace netclus::index {

QueryEngine::QueryEngine(const MultiIndex* index,
                         const traj::TrajectoryStore* store,
                         const tops::SiteSet* sites)
    : index_(index),
      store_(store),
      sites_(sites),
      ctx_(std::make_shared<exec::ExecContext>()) {}

QueryResult QueryEngine::Tops(const tops::PreferenceFunction& psi,
                              const QueryConfig& config) const {
  const exec::Planner planner(ctx_.get());
  const exec::QueryPlan plan = planner.Plan(
      exec::RequestFromConfig(exec::QueryVariant::kTops, psi, config), *index_,
      /*batch_size=*/1);
  return exec::Executor(index_, store_, sites_, ctx_.get()).Execute(plan);
}

QueryResult QueryEngine::TopsCost(const tops::PreferenceFunction& psi,
                                  const QueryConfig& config,
                                  const std::vector<double>& site_costs,
                                  double budget) const {
  exec::PlanRequest request =
      exec::RequestFromConfig(exec::QueryVariant::kTopsCost, psi, config);
  request.site_costs = site_costs;
  request.budget = budget;
  const exec::Planner planner(ctx_.get());
  const exec::QueryPlan plan = planner.Plan(request, *index_, /*batch_size=*/1);
  return exec::Executor(index_, store_, sites_, ctx_.get()).Execute(plan);
}

QueryResult QueryEngine::TopsCapacity(
    const tops::PreferenceFunction& psi, const QueryConfig& config,
    const std::vector<double>& site_capacities) const {
  exec::PlanRequest request =
      exec::RequestFromConfig(exec::QueryVariant::kTopsCapacity, psi, config);
  request.site_capacities = site_capacities;
  const exec::Planner planner(ctx_.get());
  const exec::QueryPlan plan = planner.Plan(request, *index_, /*batch_size=*/1);
  return exec::Executor(index_, store_, sites_, ctx_.get()).Execute(plan);
}

tops::CoverageIndex QueryEngine::BuildApproxCoverage(
    double tau_m, size_t instance, std::vector<tops::SiteId>* rep_sites,
    double* build_seconds, uint32_t threads) const {
  exec::BuiltCover cover =
      exec::BuildCover(*index_, *store_, tau_m, instance, threads);
  if (rep_sites != nullptr) *rep_sites = std::move(cover.rep_sites);
  if (build_seconds != nullptr) *build_seconds = cover.build_seconds;
  return std::move(cover.approx);
}

}  // namespace netclus::index
