// The Executor: staged execution of QueryPlans.
//
//   CoverBuild  — build (or reuse) the approximate trajectory cover T̂C
//                 for the plan's (instance, τ); shareable across plans
//                 because it does not depend on k, ψ, FM, or ES;
//   Solve       — map existing services into clustered space and run the
//                 plan's solver (Inc-Greedy / FM-greedy / cost /
//                 capacity) on the shared cover;
//   Assemble    — map the clustered-space selection back to real SiteIds
//                 and attribute timings/bytes.
//
// Sharing semantics: ExecuteBatch groups plans by CoverKey and builds
// each distinct cover exactly once; an external cover source (the serving
// layer's snapshot-versioned CoverCache) plugs in through CoverHooks so
// concurrent traffic reuses covers across calls. Every stage is
// deterministic at every thread count and a cover depends only on its
// key, so results are bit-identical to per-query execution — the
// differential suite in tests/test_exec.cc pins this against a replica
// of the pre-refactor pipeline.
//
// Cost attribution when a cover is shared: each of the g sharers reports
// cover_build_seconds = build/g and transient_bytes = bytes/g with
// cover_shared = true; a cover served from an external cache reports
// zero build cost (the query that built it already paid) and
// cover_shared = true.
#ifndef NETCLUS_EXEC_EXECUTOR_H_
#define NETCLUS_EXEC_EXECUTOR_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "exec/cover_build.h"
#include "exec/plan.h"
#include "exec/stats.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "tops/site_set.h"
#include "traj/trajectory_store.h"

namespace netclus::exec {

using CoverPtr = std::shared_ptr<const BuiltCover>;

/// External cover source (e.g. serve::CoverCache). `acquire` must return
/// a cover equivalent to calling `build` (same key → bit-identical cover,
/// guaranteed by BuildCover's determinism), calling `build` at most once;
/// it sets *reused to true when the returned cover was not built by this
/// call. No hooks = build per call.
struct CoverHooks {
  std::function<CoverPtr(const CoverKey& key,
                         const std::function<CoverPtr()>& build,
                         bool* reused)>
      acquire;
};

class Executor {
 public:
  /// All pointers are borrowed and must outlive the executor. `ctx`
  /// carries the stats registry and warn-once state of the owning engine.
  Executor(const index::MultiIndex* index, const traj::TrajectoryStore* store,
           const tops::SiteSet* sites, ExecContext* ctx,
           CoverHooks hooks = {});

  /// Executes one plan through the three stages.
  index::QueryResult Execute(const QueryPlan& plan) const;

  /// Throws std::invalid_argument on malformed payloads (cost / capacity
  /// vectors must be site-indexed). Execute/ExecuteBatch call this; the
  /// serving layer calls it eagerly at admission so a bad spec surfaces
  /// as kInvalidSpec instead of a worker-thread exception.
  void ValidatePlan(const QueryPlan& plan) const;

  /// Stage 1 alone: builds (or acquires through the hooks) the plan's
  /// cover. `*reused` is set when the cover was not built by this call.
  /// Lets the async serving layer run CoverBuild as its own scheduler
  /// task, separately from ExecuteOnCover.
  CoverPtr ObtainCover(const QueryPlan& plan, uint32_t build_threads,
                       bool* reused) const;

  /// Stages 2+3 on an already-obtained cover (which must match the plan's
  /// cover key). `cover_reused` selects Execute()'s cost attribution:
  /// reused covers report zero build cost. Execute(plan) is exactly
  /// ObtainCover + ExecuteOnCover; results are bit-identical.
  index::QueryResult ExecuteOnCover(const QueryPlan& plan,
                                    const CoverPtr& cover,
                                    bool cover_reused) const;

  /// Executes a batch: plans are grouped by CoverKey, each distinct cover
  /// is built once (the groups build concurrently under `threads`, the
  /// same two-regime rule as the solve fan-out), then every plan solves
  /// on its group's cover. Results are in input order and — selection by
  /// selection — identical to calling Execute on each plan.
  std::vector<index::QueryResult> ExecuteBatch(std::span<const QueryPlan> plans,
                                               uint32_t threads) const;

 private:
  tops::Selection SolveStage(const QueryPlan& plan, const BuiltCover& cover,
                             double* stage_seconds) const;
  index::QueryResult Assemble(const QueryPlan& plan, const BuiltCover& cover,
                              tops::Selection clustered, double cover_seconds,
                              uint64_t cover_bytes, bool cover_shared) const;

  const index::MultiIndex* index_;
  const traj::TrajectoryStore* store_;
  const tops::SiteSet* sites_;
  ExecContext* ctx_;
  CoverHooks hooks_;
};

}  // namespace netclus::exec

#endif  // NETCLUS_EXEC_EXECUTOR_H_
