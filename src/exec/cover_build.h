// The CoverBuild stage: the approximate trajectory covers T̂C of Sec. 5,
// packaged as a shareable unit.
//
// Given (instance p, τ): for every cluster representative r_i,
//   T̂C(r_i) = { T_j ∈ TL(g_i) ∪ TL(neighbors) : d̂_r(T_j, r_i) ≤ τ },
//   d̂_r(T_j, r_i) = d_r(T_j, c_j) + d_r(c_j, c_i) + d_r(c_i, r_i)   (Eq. 9)
// (minimum estimate when T_j is reachable through several clusters),
// wrapped in a tops::CoverageIndex over the representatives so the
// unchanged solver family runs on it. d̂_r ≥ d_r, so T̂C ⊆ TC and the
// Theorem 7 bounds hold.
//
// A BuiltCover depends only on (instance, τ) and the immutable corpus —
// not on k, ψ, FM, or existing services — which is exactly why the
// executor shares one build across every plan with the same CoverKey and
// the serving layer caches it per snapshot version (serve/cover_cache.h).
// Construction is deterministic at every thread count (the per-chunk
// scratch never changes the covers), so a shared cover is bit-identical
// to a per-query rebuild.
#ifndef NETCLUS_EXEC_COVER_BUILD_H_
#define NETCLUS_EXEC_COVER_BUILD_H_

#include <cstdint>
#include <vector>

#include "netclus/multi_index.h"
#include "tops/coverage.h"
#include "tops/site_set.h"
#include "traj/trajectory_store.h"

namespace netclus::exec {

/// One built clustered-space cover: the CoverageIndex over representatives
/// plus the representative SiteId per clustered-space index, with its build
/// cost so sharers can report amortized attribution.
struct BuiltCover {
  tops::CoverageIndex approx;
  std::vector<tops::SiteId> rep_sites;
  double build_seconds = 0.0;
  /// approx.MemoryBytes() + the rep_sites footprint — the transient bytes
  /// a non-shared query would have charged.
  uint64_t bytes = 0;
};

/// Builds T̂C for `instance` at `tau_m` over the current corpus. `threads`
/// follows the library convention (0 = NETCLUS_THREADS default); the
/// result is identical at any thread count.
BuiltCover BuildCover(const index::MultiIndex& index,
                      const traj::TrajectoryStore& store, double tau_m,
                      size_t instance, uint32_t threads);

}  // namespace netclus::exec

#endif  // NETCLUS_EXEC_COVER_BUILD_H_
