#include "exec/cover_build.h"

#include <utility>

#include "netclus/cluster_index.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace netclus::exec {

namespace {

using index::ClEntry;
using index::Cluster;
using index::ClusterIndex;
using index::TlEntry;
using tops::CoverEntry;
using tops::SiteId;
using traj::TrajId;

}  // namespace

BuiltCover BuildCover(const index::MultiIndex& index,
                      const traj::TrajectoryStore& store, double tau_m,
                      size_t instance_id, uint32_t threads) {
  util::WallTimer timer;
  const ClusterIndex& instance = index.instance(instance_id);

  // Representatives entering the clustered problem.
  std::vector<uint32_t> rep_cluster;  // clustered-space id -> cluster
  BuiltCover out;
  for (uint32_t g = 0; g < instance.num_clusters(); ++g) {
    const Cluster& cluster = instance.cluster(g);
    if (cluster.representative == tops::kInvalidSite) continue;
    rep_cluster.push_back(g);
    out.rep_sites.push_back(cluster.representative);
  }

  // T̂C per representative, chunked over representatives. Scratch (the
  // per-trajectory best estimate with stamping so that clearing is O(1) per
  // representative) is private to each chunk, and every representative's
  // cover depends only on the immutable index, so any chunk layout and
  // thread count produce the same covers.
  // Exactly one chunk per worker: the O(num_trajs) scratch arrays are the
  // dominant setup cost on this latency-critical path, so they must be
  // allocated at most `threads` times per query (and once when serial,
  // exactly as before the parallel subsystem).
  const size_t num_trajs = store.total_count();
  const unsigned t = util::ResolveThreads(threads);
  const size_t grain =
      util::CoarseGrain(threads, rep_cluster.size(), /*chunks_per_thread=*/1);

  std::vector<std::vector<CoverEntry>> covers(rep_cluster.size());
  util::ParallelFor(
      t, rep_cluster.size(),
      [&](size_t chunk_begin, size_t chunk_end) {
        std::vector<float> best(num_trajs, 0.0f);
        std::vector<uint32_t> stamp(num_trajs, 0);
        std::vector<TrajId> touched;
        uint32_t epoch = 0;

        for (size_t r = chunk_begin; r < chunk_end; ++r) {
          const uint32_t gi = rep_cluster[r];
          const Cluster& home = instance.cluster(gi);
          ++epoch;
          touched.clear();

          auto offer = [&](const TlEntry& e, float base) {
            const float est = e.dr_m + base;
            if (est > tau_m) return;
            if (stamp[e.traj] != epoch) {
              stamp[e.traj] = epoch;
              best[e.traj] = est;
              touched.push_back(e.traj);
            } else if (est < best[e.traj]) {
              best[e.traj] = est;
            }
          };

          // Home cluster: d̂_r = d_r(T, c_i) + d_r(c_i, r_i).
          home.tl.ForEach([&](const TlEntry& e) {
            if (store.is_alive(e.traj)) offer(e, home.rep_rt_m);
          });
          // Neighbor clusters:
          // d̂_r = d_r(T, c_j) + d_r(c_j, c_i) + d_r(c_i, r_i).
          for (const ClEntry& nb : home.cl) {
            const float base = nb.dr_m + home.rep_rt_m;
            if (base > tau_m) break;  // CL is distance-sorted: rest are worse
            instance.cluster(nb.cluster).tl.ForEach([&](const TlEntry& e) {
              if (store.is_alive(e.traj)) offer(e, base);
            });
          }

          auto& cover = covers[r];
          cover.reserve(touched.size());
          for (TrajId traj : touched) cover.push_back({traj, best[traj]});
        }
      },
      grain);
  out.approx = tops::CoverageIndex::FromCovers(std::move(covers), num_trajs,
                                               store.live_count(), tau_m);
  out.build_seconds = timer.Seconds();
  out.bytes =
      out.approx.MemoryBytes() + out.rep_sites.size() * sizeof(SiteId);
  return out;
}

}  // namespace netclus::exec
