#include "exec/executor.h"

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "netclus/cluster_index.h"
#include "tops/fm_greedy.h"
#include "tops/inc_greedy.h"
#include "tops/variants.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace netclus::exec {

namespace {

using tops::SiteId;

}  // namespace

Executor::Executor(const index::MultiIndex* index,
                   const traj::TrajectoryStore* store,
                   const tops::SiteSet* sites, ExecContext* ctx,
                   CoverHooks hooks)
    : index_(index), store_(store), sites_(sites), ctx_(ctx),
      hooks_(std::move(hooks)) {}

void Executor::ValidatePlan(const QueryPlan& plan) const {
  if (plan.variant == QueryVariant::kTopsCost &&
      plan.site_costs.size() != sites_->size()) {
    throw std::invalid_argument(
        "Tops: site_costs must have one entry per site (got " +
        std::to_string(plan.site_costs.size()) + ", want " +
        std::to_string(sites_->size()) + ")");
  }
  if (plan.variant == QueryVariant::kTopsCapacity &&
      plan.site_capacities.size() != sites_->size()) {
    throw std::invalid_argument(
        "Tops: site_capacities must have one entry per site (got " +
        std::to_string(plan.site_capacities.size()) + ", want " +
        std::to_string(sites_->size()) + ")");
  }
}

CoverPtr Executor::ObtainCover(const QueryPlan& plan, uint32_t build_threads,
                               bool* reused) const {
  const auto build = [&]() -> CoverPtr {
    auto cover = std::make_shared<BuiltCover>(
        BuildCover(*index_, *store_, plan.tau_m, plan.instance, build_threads));
    ctx_->stats.RecordCoverBuild(plan.instance, cover->build_seconds,
                                 cover->bytes);
    return cover;
  };
  if (hooks_.acquire) {
    CoverPtr cover = hooks_.acquire(plan.cover_key(), build, reused);
    if (*reused) ctx_->stats.RecordCoverShared();
    return cover;
  }
  *reused = false;
  return build();
}

tops::Selection Executor::SolveStage(const QueryPlan& plan,
                                     const BuiltCover& cover,
                                     double* stage_seconds) const {
  util::WallTimer timer;

  // Map existing services to their clusters' representatives, preserving
  // the plan's (caller's) order — Inc-Greedy folds ES in input order.
  std::vector<SiteId> existing_reps;
  if (plan.variant == QueryVariant::kTops && !plan.existing_services.empty()) {
    std::unordered_map<SiteId, SiteId> rep_index_of;
    for (SiteId i = 0; i < cover.rep_sites.size(); ++i) {
      rep_index_of[cover.rep_sites[i]] = i;
    }
    const index::ClusterIndex& instance = index_->instance(plan.instance);
    for (SiteId es : plan.existing_services) {
      const uint32_t g = instance.cluster_of(sites_->node(es));
      const SiteId rep = instance.cluster(g).representative;
      if (rep == tops::kInvalidSite) continue;
      auto it = rep_index_of.find(rep);
      if (it != rep_index_of.end()) existing_reps.push_back(it->second);
    }
  }

  tops::Selection clustered;
  switch (plan.variant) {
    case QueryVariant::kTops: {
      // The FM eligibility rule is decided on the *mapped* ES (which can
      // turn out empty even when the raw list is not), exactly like the
      // pre-refactor path.
      if (plan.use_fm && plan.psi.is_binary() && existing_reps.empty()) {
        tops::FmGreedyConfig fm_config;
        fm_config.k = plan.k;
        fm_config.num_sketches = plan.fm_copies;
        clustered = FmGreedy(cover.approx, fm_config).selection;
      } else {
        if (plan.use_fm && plan.psi.is_binary()) {
          ctx_->stats.RecordFmFallback();
          if (!ctx_->fm_fallback_warned.exchange(true)) {
            // Once per engine (not per call site): the flag lives in the
            // shared ExecContext, so NC_LOG_WARNING_ONCE would be wrong —
            // it is once per *process*.
            NC_SLOG_WARNING("fm_fallback")
                .Kv("reason", "FM-greedy has no existing-services support")
                .Kv("action", "falling back to Inc-Greedy so ES is respected")
                .Kv("note", "further fallbacks on this engine are silent");
          }
        }
        tops::GreedyConfig greedy_config;
        greedy_config.k = plan.k;
        greedy_config.existing_services = existing_reps;
        greedy_config.threads = plan.threads;
        clustered = IncGreedy(cover.approx, plan.psi, greedy_config);
      }
      break;
    }
    case QueryVariant::kTopsCost: {
      tops::CostConfig cost_config;
      cost_config.budget = plan.budget;
      cost_config.site_costs.reserve(cover.rep_sites.size());
      for (SiteId site : cover.rep_sites) {
        cost_config.site_costs.push_back(plan.site_costs[site]);
      }
      clustered = CostGreedy(cover.approx, plan.psi, cost_config).selection;
      break;
    }
    case QueryVariant::kTopsCapacity: {
      tops::CapacityConfig capacity_config;
      capacity_config.k = plan.k;
      capacity_config.site_capacities.reserve(cover.rep_sites.size());
      for (SiteId site : cover.rep_sites) {
        capacity_config.site_capacities.push_back(plan.site_capacities[site]);
      }
      clustered =
          CapacityGreedy(cover.approx, plan.psi, capacity_config).selection;
      break;
    }
  }
  *stage_seconds = timer.Seconds();
  ctx_->stats.RecordSolve(*stage_seconds);
  return clustered;
}

index::QueryResult Executor::Assemble(const QueryPlan& plan,
                                      const BuiltCover& cover,
                                      tops::Selection clustered,
                                      double cover_seconds,
                                      uint64_t cover_bytes,
                                      bool cover_shared) const {
  util::WallTimer timer;
  index::QueryResult out;
  out.selection = std::move(clustered);
  // The solver selected clustered-space indices; report real SiteIds.
  std::vector<SiteId> real_sites;
  real_sites.reserve(out.selection.sites.size());
  for (SiteId rep_index : out.selection.sites) {
    real_sites.push_back(cover.rep_sites[rep_index]);
  }
  out.selection.sites = std::move(real_sites);
  out.instance_used = plan.instance;
  out.clusters_considered = cover.rep_sites.size();
  out.cover_build_seconds = cover_seconds;
  out.transient_bytes = cover_bytes;
  out.cover_shared = cover_shared;
  ctx_->stats.RecordAssemble(timer.Seconds());
  return out;
}

index::QueryResult Executor::ExecuteOnCover(const QueryPlan& plan,
                                            const CoverPtr& cover,
                                            bool cover_reused) const {
  util::WallTimer total;
  double solve_seconds = 0.0;
  tops::Selection clustered = SolveStage(plan, *cover, &solve_seconds);
  index::QueryResult out =
      Assemble(plan, *cover, std::move(clustered),
               cover_reused ? 0.0 : cover->build_seconds,
               cover_reused ? 0 : cover->bytes, cover_reused);
  out.total_seconds = total.Seconds();
  return out;
}

index::QueryResult Executor::Execute(const QueryPlan& plan) const {
  util::WallTimer total;
  ValidatePlan(plan);
  bool reused = false;
  const CoverPtr cover = ObtainCover(plan, plan.threads, &reused);
  index::QueryResult out = ExecuteOnCover(plan, cover, reused);
  out.total_seconds = total.Seconds();
  return out;
}

std::vector<index::QueryResult> Executor::ExecuteBatch(
    std::span<const QueryPlan> plans, uint32_t threads) const {
  if (plans.empty()) return {};
  for (const QueryPlan& plan : plans) ValidatePlan(plan);

  // Group plans by cover identity (first-appearance order, so the layout
  // is deterministic regardless of thread count).
  std::unordered_map<CoverKey, size_t, CoverKeyHash> group_of;
  std::vector<size_t> plan_group(plans.size());
  std::vector<size_t> group_leader;  // first plan index of each group
  std::vector<size_t> group_size;
  for (size_t i = 0; i < plans.size(); ++i) {
    const auto [it, inserted] =
        group_of.try_emplace(plans[i].cover_key(), group_leader.size());
    if (inserted) {
      group_leader.push_back(i);
      group_size.push_back(0);
    }
    plan_group[i] = it->second;
    ++group_size[it->second];
  }

  // Stage 1 — CoverBuild, once per distinct (instance, τ). Same
  // two-regime rule as the solve fan-out: with at least one group per
  // worker the groups are the unit of concurrency.
  const unsigned resolved = util::ResolveThreads(threads);
  const uint32_t per_build_threads =
      group_leader.size() >= resolved ? 1 : threads;
  std::vector<CoverPtr> covers(group_leader.size());
  std::vector<uint8_t> group_reused(group_leader.size(), 0);
  const auto build_group = [&](size_t g) {
    bool reused = false;
    covers[g] = ObtainCover(plans[group_leader[g]], per_build_threads, &reused);
    group_reused[g] = reused ? 1 : 0;
  };
  if (per_build_threads == 1) {
    util::ParallelFor(
        threads, group_leader.size(),
        [&](size_t begin, size_t end) {
          for (size_t g = begin; g < end; ++g) build_group(g);
        },
        /*grain=*/1);
  } else {
    for (size_t g = 0; g < group_leader.size(); ++g) build_group(g);
  }

  // Stages 2+3 — Solve + Assemble per plan, on the shared covers. Cover
  // cost is amortized over the group (cache-served covers cost nothing
  // here; the building query already paid).
  const uint32_t per_query_threads = plans.size() >= resolved ? 1 : threads;
  const auto answer = [&](size_t i) {
    util::WallTimer own_timer;  // the query's own (non-shared) stages
    const QueryPlan& plan = plans[i];
    const size_t g = plan_group[i];
    const BuiltCover& cover = *covers[g];
    const bool from_cache = group_reused[g] != 0;
    const bool shared = from_cache || group_size[g] > 1;
    // Every non-leader solve reuses the group's cover (the leader's own
    // cache reuse, if any, was already counted in ObtainCover).
    if (i != group_leader[g]) ctx_->stats.RecordCoverShared();
    double solve_seconds = 0.0;
    tops::Selection clustered = SolveStage(plan, cover, &solve_seconds);
    const double cover_seconds =
        from_cache ? 0.0
                   : cover.build_seconds / static_cast<double>(group_size[g]);
    const uint64_t cover_bytes =
        from_cache ? 0 : cover.bytes / group_size[g];
    index::QueryResult out = Assemble(plan, cover, std::move(clustered),
                                      cover_seconds, cover_bytes, shared);
    // Amortized share of the cover plus everything this query ran itself
    // (solve + assemble) — the batch analogue of Execute()'s wall clock.
    out.total_seconds = cover_seconds + own_timer.Seconds();
    return out;
  };
  if (per_query_threads == 1) {
    return util::ParallelMap<index::QueryResult>(threads, plans.size(), answer,
                                                 /*grain=*/1);
  }
  std::vector<index::QueryResult> results;
  results.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) results.push_back(answer(i));
  return results;
}

}  // namespace netclus::exec
