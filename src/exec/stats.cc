#include "exec/stats.h"

namespace netclus::exec {

namespace {
constexpr double kEwmaAlpha = 0.2;
}  // namespace

void StatsRegistry::StageSlot::Bump(double seconds) {
  const std::lock_guard<std::mutex> lock(mu);
  stats.ewma_seconds = stats.count == 0
                           ? seconds
                           : kEwmaAlpha * seconds +
                                 (1.0 - kEwmaAlpha) * stats.ewma_seconds;
  ++stats.count;
  stats.total_seconds += seconds;
}

void StatsRegistry::RecordPlan(double seconds) { plan_.Bump(seconds); }

void StatsRegistry::RecordQueueWait(double seconds) {
  queue_wait_.Bump(seconds);
}

void StatsRegistry::RecordCoverBuild(size_t instance, double seconds,
                                     uint64_t bytes) {
  cover_build_.Bump(seconds);
  covers_built_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(instances_mu_);
  if (instance >= instances_.size()) instances_.resize(instance + 1);
  InstanceStats& per = instances_[instance];
  per.ewma_build_seconds =
      per.cover_builds == 0
          ? seconds
          : kEwmaAlpha * seconds + (1.0 - kEwmaAlpha) * per.ewma_build_seconds;
  ++per.cover_builds;
  per.last_cover_bytes = bytes;
}

void StatsRegistry::RecordCoverShared() {
  covers_shared_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordSolve(double seconds) { solve_.Bump(seconds); }

void StatsRegistry::RecordAssemble(double seconds) { assemble_.Bump(seconds); }

void StatsRegistry::RecordFmFallback() {
  fm_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordShedOverload() {
  shed_overload_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordShedDeadline() {
  shed_deadline_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordStaleServed() {
  stale_served_.fetch_add(1, std::memory_order_relaxed);
}

StatsRegistry::Snapshot StatsRegistry::snapshot() const {
  Snapshot out;
  {
    const std::lock_guard<std::mutex> lock(plan_.mu);
    out.plan = plan_.stats;
  }
  {
    const std::lock_guard<std::mutex> lock(queue_wait_.mu);
    out.queue_wait = queue_wait_.stats;
  }
  {
    const std::lock_guard<std::mutex> lock(cover_build_.mu);
    out.cover_build = cover_build_.stats;
  }
  {
    const std::lock_guard<std::mutex> lock(solve_.mu);
    out.solve = solve_.stats;
  }
  {
    const std::lock_guard<std::mutex> lock(assemble_.mu);
    out.assemble = assemble_.stats;
  }
  {
    const std::lock_guard<std::mutex> lock(instances_mu_);
    out.instances = instances_;
  }
  out.covers_built = covers_built_.load(std::memory_order_relaxed);
  out.covers_shared = covers_shared_.load(std::memory_order_relaxed);
  out.fm_fallbacks = fm_fallbacks_.load(std::memory_order_relaxed);
  out.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  out.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  out.stale_served = stale_served_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace netclus::exec
