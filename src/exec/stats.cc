#include "exec/stats.h"

namespace netclus::exec {

namespace {
constexpr double kEwmaAlpha = 0.2;
}  // namespace

void StatsRegistry::StageSlot::Bump(double seconds) {
  {
    const nc::MutexLock lock(mu);
    stats.ewma_seconds = stats.count == 0
                             ? seconds
                             : kEwmaAlpha * seconds +
                                   (1.0 - kEwmaAlpha) * stats.ewma_seconds;
    ++stats.count;
    stats.total_seconds += seconds;
  }
  if (obs::Histogram* h = hist.load(std::memory_order_acquire)) {
    h->Observe(seconds);
  }
}

void StatsRegistry::BindMetrics(obs::MetricsRegistry* metrics) {
  const auto bind_stage = [&](StageSlot* slot, const char* stage) {
    obs::Histogram* h = metrics->GetHistogram(
        "netclus_exec_stage_seconds", {{"stage", stage}},
        "Executor stage latency by stage");
    slot->hist.store(h, std::memory_order_release);
  };
  bind_stage(&plan_, "plan");
  bind_stage(&queue_wait_, "queue_wait");
  bind_stage(&cover_build_, "cover_build");
  bind_stage(&solve_, "solve");
  bind_stage(&assemble_, "assemble");

  const auto bind_count = [&](const char* name, const char* help,
                              const std::atomic<uint64_t>* value) {
    metrics->RegisterProvider(
        name, {}, help, /*counter=*/true, [value]() {
          return static_cast<double>(value->load(std::memory_order_relaxed));
        });
  };
  bind_count("netclus_exec_covers_built_total",
             "Approximate covering sets constructed", &covers_built_);
  bind_count("netclus_exec_covers_shared_total",
             "Solves served by a reused cover", &covers_shared_);
  bind_count("netclus_exec_fm_fallbacks_total",
             "FM + existing-services exact fallbacks", &fm_fallbacks_);
  bind_count("netclus_serve_shed_overload_total",
             "Requests rejected at admission (queues full)", &shed_overload_);
  bind_count("netclus_serve_shed_deadline_total",
             "Requests dropped past their soft deadline", &shed_deadline_);
  bind_count("netclus_serve_stale_served_total",
             "Requests answered from an older snapshot version",
             &stale_served_);
}

void StatsRegistry::RecordPlan(double seconds) { plan_.Bump(seconds); }

void StatsRegistry::RecordQueueWait(double seconds) {
  queue_wait_.Bump(seconds);
}

void StatsRegistry::RecordCoverBuild(size_t instance, double seconds,
                                     uint64_t bytes) {
  cover_build_.Bump(seconds);
  covers_built_.fetch_add(1, std::memory_order_relaxed);
  const nc::MutexLock lock(instances_mu_);
  if (instance >= instances_.size()) instances_.resize(instance + 1);
  InstanceStats& per = instances_[instance];
  per.ewma_build_seconds =
      per.cover_builds == 0
          ? seconds
          : kEwmaAlpha * seconds + (1.0 - kEwmaAlpha) * per.ewma_build_seconds;
  ++per.cover_builds;
  per.last_cover_bytes = bytes;
}

void StatsRegistry::RecordCoverShared() {
  covers_shared_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordSolve(double seconds) { solve_.Bump(seconds); }

void StatsRegistry::RecordAssemble(double seconds) { assemble_.Bump(seconds); }

void StatsRegistry::RecordFmFallback() {
  fm_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordShedOverload() {
  shed_overload_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordShedDeadline() {
  shed_deadline_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordStaleServed() {
  stale_served_.fetch_add(1, std::memory_order_relaxed);
}

StatsRegistry::Snapshot StatsRegistry::snapshot() const {
  Snapshot out;
  {
    const nc::MutexLock lock(plan_.mu);
    out.plan = plan_.stats;
  }
  {
    const nc::MutexLock lock(queue_wait_.mu);
    out.queue_wait = queue_wait_.stats;
  }
  {
    const nc::MutexLock lock(cover_build_.mu);
    out.cover_build = cover_build_.stats;
  }
  {
    const nc::MutexLock lock(solve_.mu);
    out.solve = solve_.stats;
  }
  {
    const nc::MutexLock lock(assemble_.mu);
    out.assemble = assemble_.stats;
  }
  {
    const nc::MutexLock lock(instances_mu_);
    out.instances = instances_;
  }
  out.covers_built = covers_built_.load(std::memory_order_relaxed);
  out.covers_shared = covers_shared_.load(std::memory_order_relaxed);
  out.fm_fallbacks = fm_fallbacks_.load(std::memory_order_relaxed);
  out.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  out.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  out.stale_served = stale_served_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace netclus::exec
